package img

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(5, -1); err == nil {
		t.Error("negative height accepted")
	}
	im, err := New(4, 3)
	if err != nil || len(im.Pix) != 4*3*Channels {
		t.Errorf("New: %v, len %d", err, len(im.Pix))
	}
}

func TestSyntheticDeterministicAndSeeded(t *testing.T) {
	a, err := NewSynthetic(32, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSynthetic(32, 16, 7)
	d, err := MaxAbsDiff(a, b)
	if err != nil || d != 0 {
		t.Errorf("same seed differs: %g, %v", d, err)
	}
	c, _ := NewSynthetic(32, 16, 8)
	d, _ = MaxAbsDiff(a, c)
	if d == 0 {
		t.Error("different seeds identical")
	}
	for _, v := range a.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("pixel out of range: %g", v)
		}
	}
}

func TestRows(t *testing.T) {
	im, _ := NewSynthetic(8, 6, 1)
	r, err := im.Rows(2, 4)
	if err != nil || len(r) != 2*8*Channels {
		t.Fatalf("Rows: %v len %d", err, len(r))
	}
	if r[0] != im.At(0, 2, 0) {
		t.Error("Rows misaligned")
	}
	for _, bad := range [][2]int{{-1, 2}, {0, 7}, {3, 3}, {4, 2}} {
		if _, err := im.Rows(bad[0], bad[1]); err == nil {
			t.Errorf("Rows(%v) accepted", bad)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a, _ := NewSynthetic(8, 8, 1)
	b := a.Clone()
	b.Pix[0] = -99
	if a.Pix[0] == -99 {
		t.Error("Clone shares storage")
	}
}

func TestMaxAbsDiffShapeMismatch(t *testing.T) {
	a, _ := New(2, 2)
	b, _ := New(2, 3)
	if _, err := MaxAbsDiff(a, b); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestPPMRoundtrip(t *testing.T) {
	src, _ := NewSynthetic(31, 17, 5)
	var buf bytes.Buffer
	if err := src.EncodePPM(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != src.PPMSize() {
		t.Errorf("PPMSize = %d, encoded %d", src.PPMSize(), buf.Len())
	}
	back, err := DecodePPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != 31 || back.H != 17 {
		t.Fatalf("decoded shape %dx%d", back.W, back.H)
	}
	// 8-bit quantization: half-ULP of 1/255.
	d, _ := MaxAbsDiff(src, back)
	if d > 0.5/255+1e-9 {
		t.Errorf("roundtrip error %g beyond quantization", d)
	}
}

func TestDecodePPMErrors(t *testing.T) {
	cases := []string{
		"",
		"P5\n2 2\n255\n",
		"P6\n2 2\n65535\n",
		"P6\nx y\n255\n",
		"P6\n2 2\n255\nAB", // truncated pixel data
	}
	for _, c := range cases {
		if _, err := DecodePPM(strings.NewReader(c)); err == nil {
			t.Errorf("DecodePPM(%q) accepted", c)
		}
	}
}

func TestMeanFilterConstantImageFixedPoint(t *testing.T) {
	im, _ := New(8, 5)
	for i := range im.Pix {
		im.Pix[i] = 0.25
	}
	out := MeanFilter(im)
	for i, v := range out.Pix {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("constant image changed at %d: %g", i, v)
		}
	}
}

func TestMeanFilterSmoothes(t *testing.T) {
	im, _ := New(9, 9)
	// Single bright pixel in the center.
	center := (4*9 + 4) * Channels
	im.Pix[center] = 1
	out := MeanFilter(im)
	if math.Abs(out.Pix[center]-1.0/9.0) > 1e-12 {
		t.Errorf("center after filter = %g, want 1/9", out.Pix[center])
	}
	// Energy is conserved away from borders (kernel sums to 1).
	var sum float64
	for y := 3; y <= 5; y++ {
		for x := 3; x <= 5; x++ {
			sum += out.At(x, y, 0)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("3x3 neighborhood sum = %g, want 1", sum)
	}
}

func TestMeanFilterStepsZeroCopies(t *testing.T) {
	im, _ := NewSynthetic(8, 8, 3)
	out := MeanFilterSteps(im, 0)
	if out == im {
		t.Error("zero steps returned the input aliased")
	}
	d, _ := MaxAbsDiff(im, out)
	if d != 0 {
		t.Error("zero steps changed pixels")
	}
}

func TestConvolveBandValidation(t *testing.T) {
	if _, err := ConvolveBand(make([]float64, 10), 4, 2, nil, nil); err == nil {
		t.Error("bad band length accepted")
	}
	stride := 4 * Channels
	band := make([]float64, 2*stride)
	if _, err := ConvolveBand(band, 4, 2, make([]float64, 3), nil); err == nil {
		t.Error("bad top halo accepted")
	}
	if _, err := ConvolveBand(band, 4, 2, nil, make([]float64, stride+1)); err == nil {
		t.Error("bad bottom halo accepted")
	}
}

// TestBandedEqualsSequential: splitting the image into bands, exchanging
// halos and convolving per band must reproduce MeanFilter exactly — the
// core correctness property behind the distributed benchmark.
func TestBandedEqualsSequential(t *testing.T) {
	im, _ := NewSynthetic(13, 23, 9)
	want := MeanFilter(im)
	for _, bands := range []int{1, 2, 3, 5, 23} {
		stride := im.W * Channels
		got, _ := New(im.W, im.H)
		// Uneven split like the benchmark's.
		base, rem := im.H/bands, im.H%bands
		lo := 0
		for b := 0; b < bands; b++ {
			rows := base
			if b < rem {
				rows++
			}
			hi := lo + rows
			band, err := im.Rows(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			var top, bottom []float64
			if lo > 0 {
				top, _ = im.Rows(lo-1, lo)
			}
			if hi < im.H {
				bottom, _ = im.Rows(hi, hi+1)
			}
			out, err := ConvolveBand(band, im.W, rows, top, bottom)
			if err != nil {
				t.Fatal(err)
			}
			copy(got.Pix[lo*stride:hi*stride], out)
			lo = hi
		}
		d, err := MaxAbsDiff(want, got)
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Errorf("bands=%d: banded result differs by %g", bands, d)
		}
	}
}

// Property: banded equals sequential for arbitrary small shapes and splits.
func TestBandedEqualsSequentialProperty(t *testing.T) {
	f := func(wRaw, hRaw, bandsRaw, seed uint8) bool {
		w := int(wRaw)%12 + 2
		h := int(hRaw)%12 + 2
		bands := int(bandsRaw)%h + 1
		im, err := NewSynthetic(w, h, uint64(seed))
		if err != nil {
			return false
		}
		want := MeanFilter(im)
		stride := w * Channels
		got, _ := New(w, h)
		base, rem := h/bands, h%bands
		lo := 0
		for b := 0; b < bands; b++ {
			rows := base
			if b < rem {
				rows++
			}
			if rows == 0 {
				continue
			}
			hi := lo + rows
			band, _ := im.Rows(lo, hi)
			var top, bottom []float64
			if lo > 0 {
				top, _ = im.Rows(lo-1, lo)
			}
			if hi < h {
				bottom, _ = im.Rows(hi, hi+1)
			}
			out, err := ConvolveBand(band, w, rows, top, bottom)
			if err != nil {
				return false
			}
			copy(got.Pix[lo*stride:hi*stride], out)
			lo = hi
		}
		d, err := MaxAbsDiff(want, got)
		return err == nil && d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKernelWorkCalibration(t *testing.T) {
	// The calibration constant must land the sequential full-scale run at
	// the paper's 5589.84 s on a 1 GFlop/s effective core.
	perStep := 5616.0 * 3744 * Channels * KernelWork.Flops / 1e9
	total := perStep * 1000
	if math.Abs(total-5589.84) > 5 {
		t.Errorf("calibrated sequential time = %g, want ≈5589.84", total)
	}
}
