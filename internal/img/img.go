// Package img supplies the image substrate of the paper's convolution
// benchmark: a deterministic synthetic replacement for the 5616×3744 RGB
// reference photograph (which we do not have), a PPM (P6) codec standing in
// for the paper's "load and decode / store and encode" phases, and the
// sequential mean-filter reference the distributed result is checked
// against bit-for-bit.
//
// Pixels are float64 RGB triplets in [0, 1], row-major and interleaved:
// index (y·W + x)·3 + c.
package img

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"repro/internal/stats"
)

// Channels is the number of color channels (RGB, as in the paper).
const Channels = 3

// Image is a dense float64 RGB image.
type Image struct {
	W, H int
	Pix  []float64 // len == W*H*Channels
}

// New allocates a zeroed image.
func New(w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("img: invalid dimensions %dx%d", w, h)
	}
	return &Image{W: w, H: h, Pix: make([]float64, w*h*Channels)}, nil
}

// NewSynthetic builds a deterministic test image: smooth gradients plus
// seeded high-frequency noise, so that convolution actually changes values
// everywhere and different seeds give different images.
func NewSynthetic(w, h int, seed uint64) (*Image, error) {
	im, err := New(w, h)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	for y := 0; y < h; y++ {
		fy := float64(y) / float64(h)
		for x := 0; x < w; x++ {
			fx := float64(x) / float64(w)
			i := (y*w + x) * Channels
			im.Pix[i+0] = clamp01(0.5 + 0.4*math.Sin(7*fx+3*fy) + 0.1*rng.Float64())
			im.Pix[i+1] = clamp01(0.3 + 0.5*fx*fy + 0.2*rng.Float64())
			im.Pix[i+2] = clamp01(0.6*fy + 0.3*math.Cos(11*fx) + 0.1*rng.Float64())
		}
	}
	return im, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// At returns the pixel channel value (no bounds checks beyond the slice's).
func (im *Image) At(x, y, c int) float64 {
	return im.Pix[(y*im.W+x)*Channels+c]
}

// Rows returns the flat pixel data of rows [lo, hi) — the unit the
// benchmark scatters over ranks.
func (im *Image) Rows(lo, hi int) ([]float64, error) {
	if lo < 0 || hi > im.H || lo >= hi {
		return nil, fmt.Errorf("img: bad row range [%d, %d) of %d", lo, hi, im.H)
	}
	return im.Pix[lo*im.W*Channels : hi*im.W*Channels], nil
}

// Clone deep-copies the image.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Pix: make([]float64, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// MaxAbsDiff reports the largest absolute channel difference between two
// images; it errs on shape mismatch.
func MaxAbsDiff(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("img: shape mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var m float64
	for i := range a.Pix {
		if d := math.Abs(a.Pix[i] - b.Pix[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// --- PPM (P6) codec ---------------------------------------------------------

// EncodePPM writes the image as binary PPM with 8-bit channels.
func (im *Image) EncodePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	buf := make([]byte, im.W*Channels)
	for y := 0; y < im.H; y++ {
		row := im.Pix[y*im.W*Channels : (y+1)*im.W*Channels]
		for i, v := range row {
			buf[i] = byte(clamp01(v)*255 + 0.5)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// PPMSize reports the encoded byte size without encoding — used to charge
// the storage model.
func (im *Image) PPMSize() int {
	header := len(fmt.Sprintf("P6\n%d %d\n255\n", im.W, im.H))
	return header + im.W*im.H*Channels
}

// DecodePPM parses a binary PPM produced by EncodePPM (maxval 255 only).
func DecodePPM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("img: reading PPM magic: %w", err)
	}
	if magic != "P6" {
		return nil, fmt.Errorf("img: unsupported PPM magic %q", magic)
	}
	var w, h, maxval int
	if _, err := fmt.Fscan(br, &w, &h, &maxval); err != nil {
		return nil, fmt.Errorf("img: reading PPM header: %w", err)
	}
	if maxval != 255 {
		return nil, fmt.Errorf("img: unsupported maxval %d", maxval)
	}
	// Exactly one whitespace byte separates header from data.
	if _, err := br.ReadByte(); err != nil {
		return nil, fmt.Errorf("img: PPM header terminator: %w", err)
	}
	im, err := New(w, h)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, w*h*Channels)
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("img: PPM pixel data: %w", err)
	}
	for i, b := range raw {
		im.Pix[i] = float64(b) / 255
	}
	return im, nil
}

// --- mean filter (the paper's convolution kernel) ---------------------------

// KernelWork is the modeled cost of producing one output channel value with
// the 3×3 mean filter. Calibrated so the sequential full-size benchmark
// (5616×3744×3 values × 1000 steps) lands at the paper's 5589.84 s on the
// Nehalem model (1 GFlop/s effective per core): 5589.84e9 / (5616·3744·3·1000).
var KernelWork = struct{ Flops, Bytes float64 }{Flops: 88.617, Bytes: 48}

// MeanFilter applies one 3×3 mean-filter step to the whole image with
// clamped (replicated) borders — the sequential reference.
func MeanFilter(src *Image) *Image {
	dst := &Image{W: src.W, H: src.H, Pix: make([]float64, len(src.Pix))}
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			for c := 0; c < Channels; c++ {
				var sum float64
				for dy := -1; dy <= 1; dy++ {
					yy := clampInt(y+dy, 0, src.H-1)
					for dx := -1; dx <= 1; dx++ {
						xx := clampInt(x+dx, 0, src.W-1)
						sum += src.Pix[(yy*src.W+xx)*Channels+c]
					}
				}
				dst.Pix[(y*src.W+x)*Channels+c] = sum / 9
			}
		}
	}
	return dst
}

// MeanFilterSteps iterates MeanFilter.
func MeanFilterSteps(src *Image, steps int) *Image {
	cur := src
	for i := 0; i < steps; i++ {
		cur = MeanFilter(cur)
	}
	if cur == src {
		cur = src.Clone()
	}
	return cur
}

// ConvolveBand mean-filters a horizontal band of `rows` image rows stored
// flat in band (width w), given the halo rows above and below. A nil halo
// marks an image border, replicated as in MeanFilter, so that a banded
// computation composed over all bands is bit-identical to the sequential
// reference.
func ConvolveBand(band []float64, w, rows int, top, bottom []float64) ([]float64, error) {
	stride := w * Channels
	if len(band) != rows*stride {
		return nil, fmt.Errorf("img: band length %d != rows %d × stride %d", len(band), rows, stride)
	}
	if top != nil && len(top) != stride {
		return nil, fmt.Errorf("img: top halo length %d != stride %d", len(top), stride)
	}
	if bottom != nil && len(bottom) != stride {
		return nil, fmt.Errorf("img: bottom halo length %d != stride %d", len(bottom), stride)
	}
	out := make([]float64, len(band))
	rowAt := func(y int) []float64 {
		switch {
		case y < 0:
			if top != nil {
				return top
			}
			return band[0:stride] // replicate image border
		case y >= rows:
			if bottom != nil {
				return bottom
			}
			return band[(rows-1)*stride : rows*stride]
		default:
			return band[y*stride : (y+1)*stride]
		}
	}
	for y := 0; y < rows; y++ {
		up, mid, down := rowAt(y-1), rowAt(y), rowAt(y+1)
		dst := out[y*stride : (y+1)*stride]
		for x := 0; x < w; x++ {
			for c := 0; c < Channels; c++ {
				// Accumulate in the same row-major order as MeanFilter so
				// the banded result is bit-identical to the sequential
				// reference, not merely close.
				var sum float64
				for _, row := range [3][]float64{up, mid, down} {
					for dx := -1; dx <= 1; dx++ {
						xx := clampInt(x+dx, 0, w-1)
						sum += row[xx*Channels+c]
					}
				}
				dst[x*Channels+c] = sum / 9
			}
		}
	}
	return out, nil
}

// ConvolveExtended mean-filters the interior of an "extended tile": pixel
// data of (h+2) rows × (w+2) columns whose outermost frame is ghost data
// (neighbor pixels, or replicated borders assembled by the caller). The
// result is the h×w interior, bit-identical to the corresponding region of
// MeanFilter on the full image. This is the kernel of the 2-D decomposed
// benchmark, where ghosts arrive from up to 8 neighbors.
func ConvolveExtended(ext []float64, w, h int) ([]float64, error) {
	extW := w + 2
	if len(ext) != (h+2)*extW*Channels {
		return nil, fmt.Errorf("img: extended tile length %d != (%d+2)x(%d+2)x%d",
			len(ext), h, w, Channels)
	}
	stride := extW * Channels
	out := make([]float64, h*w*Channels)
	for y := 0; y < h; y++ {
		up := ext[y*stride : (y+1)*stride]
		mid := ext[(y+1)*stride : (y+2)*stride]
		down := ext[(y+2)*stride : (y+3)*stride]
		dst := out[y*w*Channels : (y+1)*w*Channels]
		for x := 0; x < w; x++ {
			for c := 0; c < Channels; c++ {
				// Same accumulation order as MeanFilter (rows, then dx).
				var sum float64
				for _, row := range [3][]float64{up, mid, down} {
					for dx := 0; dx <= 2; dx++ {
						sum += row[(x+dx)*Channels+c]
					}
				}
				dst[x*Channels+c] = sum / 9
			}
		}
	}
	return out, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
