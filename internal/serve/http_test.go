package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get performs one request against the handler and returns status + body.
func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, w.Body.String()
}

func liveHandler(t *testing.T, opts Options) (http.Handler, *Service) {
	t.Helper()
	opts.Observe = true
	s := NewService(opts)
	return NewHandler(s, HandlerOptions{Logf: t.Logf}), s
}

func TestHTTPIndexAndBeforeRun(t *testing.T) {
	h, _ := liveHandler(t, Options{})
	if code, body := get(t, h, "/"); code != http.StatusOK || !strings.Contains(body, "/run?exp=conv") {
		t.Fatalf("index: code %d", code)
	}
	if code, _ := get(t, h, "/definitely-not-here"); code != http.StatusNotFound {
		t.Fatalf("unknown path not 404: %d", code)
	}
	// Service metrics are live before any run; run-scoped families are not.
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "secmon_up 1") {
		t.Fatalf("metrics: code %d", code)
	}
	if !strings.Contains(body, "serve_jobs_queued_total 0") || !strings.Contains(body, "serve_queue_depth 0") {
		t.Fatalf("metrics lack serve_* families before first run:\n%s", body)
	}
	for _, path := range []string{"/sections", "/trace.json", "/waitstate.json", "/efficiency.json", "/heatmap.csv"} {
		if code, _ := get(t, h, path); code != http.StatusNotFound {
			t.Fatalf("%s before any run: code %d, want 404", path, code)
		}
	}
	if code, body := get(t, h, "/jobs"); code != http.StatusOK || !strings.Contains(body, `"jobs": []`) {
		t.Fatalf("empty /jobs: code %d body %q", code, body)
	}
}

func TestHTTPRunRejectsBadParameters(t *testing.T) {
	h, _ := liveHandler(t, Options{})
	for _, path := range []string{
		"/run?exp=warp",
		"/run?exp=conv&p=0",
		"/run?steps=x",
		"/run?exp=conv&p=2&fault=bogus",
		"/run?exp=conv&p=2&fault=kill:rank=0&fault-seed=x",
		"/run?exp=conv&p=2&deadline=nope",
		"/run?exp=conv&p=2&deadline=-3s",
		"/run?exp=conv&p=2&seed=-1",
	} {
		if code, _ := get(t, h, path); code != http.StatusBadRequest {
			t.Fatalf("%s: code %d, want 400", path, code)
		}
	}
}

// TestHTTPRunWaitServesFullSurface runs one observed sweep synchronously
// and walks every analysis endpoint, plus the job addressing forms.
func TestHTTPRunWaitServesFullSurface(t *testing.T) {
	h, _ := liveHandler(t, Options{})
	code, body := get(t, h, "/run?exp=conv&p=4&steps=6&scale=32&seed=2017&wait=1&verify=1")
	if code != http.StatusOK {
		t.Fatalf("run: code %d body %q", code, body)
	}
	var run struct {
		JobID    string  `json:"job_id"`
		State    string  `json:"state"`
		Status   string  `json:"status"`
		Exp      string  `json:"exp"`
		P        int     `json:"p"`
		TraceID  string  `json:"trace_id"`
		Wall     float64 `json:"wall_seconds"`
		VerifyOK bool    `json:"verify_ok"`
		Error    string  `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &run); err != nil {
		t.Fatalf("run response not JSON: %v\n%s", err, body)
	}
	if run.Status != "finished" || run.State != "done" || run.Error != "" {
		t.Fatalf("run did not finish cleanly: %+v", run)
	}
	if run.JobID == "" || run.TraceID == "" || run.Wall <= 0 || !run.VerifyOK || run.Exp != "conv" || run.P != 4 {
		t.Fatalf("run response incomplete: %s", body)
	}

	endpoints := []string{
		"/sections", "/trace.json", "/spans.json", "/waitstate.json",
		"/critpath.json", "/efficiency.json", "/faults.json", "/verify.json",
		"/profile.json", "/heatmap.csv", "/metrics",
	}
	for _, ep := range endpoints {
		if code, body := get(t, h, ep); code != http.StatusOK {
			t.Fatalf("%s: code %d body %q", ep, code, body)
		}
		// Explicit job addressing selects the same run.
		sep := "?"
		if strings.Contains(ep, "?") {
			sep = "&"
		}
		if code, _ := get(t, h, ep+sep+"job="+run.JobID); code != http.StatusOK {
			t.Fatalf("%s?job=%s: code %d", ep, run.JobID, code)
		}
	}
	if code, _ := get(t, h, "/sections?job=j999999"); code != http.StatusNotFound {
		t.Fatalf("unknown job id not 404: %d", code)
	}

	code, body = get(t, h, "/jobs/"+run.JobID)
	if code != http.StatusOK || !strings.Contains(body, `"state": "done"`) {
		t.Fatalf("/jobs/{id}: code %d body %q", code, body)
	}
	code, body = get(t, h, "/jobs/"+run.JobID+"/result.csv")
	if code != http.StatusOK || !strings.HasPrefix(body, "t,") {
		t.Fatalf("result.csv: code %d prefix %q", code, body[:min(len(body), 40)])
	}
	code, body = get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, needle := range []string{
		"serve_jobs_done_total 1", "mpi_ranks_declared 4",
		"section_time_seconds", "section_verify_violations_total",
		"telemetry_wall_seconds", "section_efficiency_parallel",
	} {
		if !strings.Contains(body, needle) {
			t.Fatalf("metrics lack %q after verified run", needle)
		}
	}
}

// TestHTTPAsyncLifecycle drives the 202 path: submit, poll, observe the
// terminal document.
func TestHTTPAsyncLifecycle(t *testing.T) {
	g := newGatedRunner()
	h, _ := liveHandler(t, Options{Runner: g.run, SeqRunner: noSeq})
	code, body := get(t, h, "/run?exp=conv&p=2&steps=4&scale=32")
	if code != http.StatusAccepted {
		t.Fatalf("async run: code %d body %q", code, body)
	}
	var run struct {
		JobID  string `json:"job_id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &run); err != nil || run.JobID == "" {
		t.Fatalf("async response: %v %q", err, body)
	}
	if run.Status != "running" {
		t.Fatalf("async status %q", run.Status)
	}
	g.release()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body = get(t, h, "/jobs/"+run.JobID)
		if code != http.StatusOK {
			t.Fatalf("poll: code %d", code)
		}
		if strings.Contains(body, `"state": "done"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHTTPCompatConflict preserves the pre-queue single-flight contract
// behind the compat switch, for both the query knob and the header.
func TestHTTPCompatConflict(t *testing.T) {
	g := newGatedRunner()
	h, _ := liveHandler(t, Options{Runner: g.run, SeqRunner: noSeq})
	if code, body := get(t, h, "/run?exp=conv&p=2&steps=4&scale=32"); code != http.StatusAccepted {
		t.Fatalf("first run: code %d body %q", code, body)
	}
	if code, _ := get(t, h, "/run?exp=conv&p=2&compat=1"); code != http.StatusConflict {
		t.Fatalf("compat while busy: code %d, want 409", code)
	}
	req := httptest.NewRequest(http.MethodGet, "/run?exp=conv&p=2", nil)
	req.Header.Set("X-Secmon-Compat", "1")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusConflict {
		t.Fatalf("compat header while busy: code %d, want 409", w.Code)
	}
	g.release()
}

// TestHTTPCompatDefault covers the process-wide -compat flag equivalent.
func TestHTTPCompatDefault(t *testing.T) {
	g := newGatedRunner()
	s := NewService(Options{Runner: g.run, SeqRunner: noSeq})
	h := NewHandler(s, HandlerOptions{Compat: true, Logf: t.Logf})
	if code, body := get(t, h, "/run?exp=conv&p=2"); code != http.StatusOK {
		// Compat submissions still answer 200 even while live (the old
		// monitor's async accept), never 202.
		t.Fatalf("compat run: code %d body %q", code, body)
	}
	if code, _ := get(t, h, "/run?exp=conv&p=2"); code != http.StatusConflict {
		t.Fatalf("second compat run: code %d, want 409", code)
	}
	g.release()
}

// TestHTTPShed maps queue overflow to 429 with a Retry-After header.
func TestHTTPShed(t *testing.T) {
	g := newGatedRunner()
	h, _ := liveHandler(t, Options{
		Tenants: 1, QueueDepth: 1, MaxInflight: 1,
		Runner: g.run, SeqRunner: noSeq,
	})
	if code, _ := get(t, h, "/run?exp=conv&p=2&seed=1"); code != http.StatusAccepted {
		t.Fatalf("first: %d", code)
	}
	if code, _ := get(t, h, "/run?exp=conv&p=2&seed=2"); code != http.StatusAccepted {
		t.Fatalf("second: %d", code)
	}
	req := httptest.NewRequest(http.MethodGet, "/run?exp=conv&p=2&seed=3", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow: code %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(w.Body.String(), "retry_after_seconds") {
		t.Fatalf("shed body: %q", w.Body.String())
	}
	g.release()
}

// TestHTTPCancelEndpoint cancels a queued job over the wire.
func TestHTTPCancelEndpoint(t *testing.T) {
	g := newGatedRunner()
	h, _ := liveHandler(t, Options{MaxInflight: 1, Runner: g.run, SeqRunner: noSeq})
	if code, _ := get(t, h, "/run?exp=conv&p=2&seed=1"); code != http.StatusAccepted {
		t.Fatal("first run not accepted")
	}
	code, body := get(t, h, "/run?exp=conv&p=2&seed=2")
	if code != http.StatusAccepted {
		t.Fatal("second run not accepted")
	}
	var run struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal([]byte(body), &run); err != nil {
		t.Fatalf("json: %v", err)
	}
	code, body = get(t, h, "/jobs/"+run.JobID+"/cancel")
	if code != http.StatusOK || !strings.Contains(body, `"cancelled": true`) {
		t.Fatalf("cancel: code %d body %q", code, body)
	}
	if code, body := get(t, h, "/jobs/"+run.JobID); code != http.StatusOK || !strings.Contains(body, `"state": "cancelled"`) {
		t.Fatalf("cancelled job doc: code %d body %q", code, body)
	}
	if code, _ := get(t, h, "/jobs/"+run.JobID+"/result.csv"); code != http.StatusNotFound {
		t.Fatal("cancelled job served a result")
	}
	if code, _ := get(t, h, "/jobs/nope/cancel"); code != http.StatusNotFound {
		t.Fatal("unknown job cancel not 404")
	}
	g.release()
}

// TestHTTPCacheHitByteIdentical runs the same configuration twice over the
// wire and checks the second is answered from the cache with the identical
// artifact.
func TestHTTPCacheHitByteIdentical(t *testing.T) {
	h, _ := liveHandler(t, Options{})
	const q = "/run?exp=conv&p=4&steps=6&scale=32&seed=2017&wait=1"
	code, body := get(t, h, q)
	if code != http.StatusOK {
		t.Fatalf("first run: %d", code)
	}
	var first struct {
		JobID    string `json:"job_id"`
		CacheHit bool   `json:"cache_hit"`
	}
	if err := json.Unmarshal([]byte(body), &first); err != nil || first.CacheHit {
		t.Fatalf("first run: %v cache_hit=%v", err, first.CacheHit)
	}
	code, body = get(t, h, q)
	if code != http.StatusOK {
		t.Fatalf("second run: %d", code)
	}
	var second struct {
		JobID    string `json:"job_id"`
		CacheHit bool   `json:"cache_hit"`
	}
	if err := json.Unmarshal([]byte(body), &second); err != nil || !second.CacheHit {
		t.Fatalf("second run not a cache hit: %v %s", err, body)
	}
	_, csv1 := get(t, h, "/jobs/"+first.JobID+"/result.csv")
	_, csv2 := get(t, h, "/jobs/"+second.JobID+"/result.csv")
	if csv1 == "" || csv1 != csv2 {
		t.Fatalf("cache hit artifact differs (%d vs %d bytes)", len(csv1), len(csv2))
	}
	// A cache-served job has no live observability to show.
	if code, body := get(t, h, "/sections?job="+second.JobID); code != http.StatusNotFound ||
		!strings.Contains(body, "result cache") {
		t.Fatalf("cache-hit observability: code %d body %q", code, body)
	}
}

// TestHTTPDraining maps post-drain submissions to 503.
func TestHTTPDraining(t *testing.T) {
	run, _ := instantRunner()
	h, s := liveHandler(t, Options{Runner: run, SeqRunner: noSeq})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code, _ := get(t, h, "/run?exp=conv&p=2"); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain run: code %d, want 503", code)
	}
}

// TestHTTPFaultKnobs reuses the monitor's fault-launch grammar on the job
// surface: a multi-rule plan arrives as repeated fault= parameters, a
// killed run with retry=0 fails with the kill observable.
func TestHTTPFaultKnobs(t *testing.T) {
	h, _ := liveHandler(t, Options{})
	code, body := get(t, h,
		"/run?exp=conv&p=4&steps=6&scale=32&wait=1&seq=0&retry=0"+
			"&fault=kill:rank=2,after=5&fault=delay:src=*,dst=*,prob=1,secs=1e-6")
	if code != http.StatusOK || !strings.Contains(body, "fail-stop") {
		t.Fatalf("killed run: code %d body %q", code, body)
	}
	if !strings.Contains(body, "kill:") || !strings.Contains(body, "delay:") {
		t.Fatalf("multi-rule plan not rejoined: %q", body)
	}
	if !strings.Contains(body, `"error_kind": "injected_kill"`) {
		t.Fatalf("root cause not classified: %q", body)
	}
	if code, body := get(t, h, "/faults.json"); code != http.StatusOK || !strings.Contains(body, `"kill"`) {
		t.Fatalf("faults after kill: code %d body %q", code, body)
	}

	// Default policy: same kill plan is retried on a disarmed plan and the
	// job recovers.
	code, body = get(t, h,
		"/run?exp=conv&p=4&steps=6&scale=32&wait=1&seq=0&nocache=1"+
			"&fault=kill:rank=2,after=5")
	if code != http.StatusOK {
		t.Fatalf("retried run: code %d body %q", code, body)
	}
	if !strings.Contains(body, `"state": "done"`) || !strings.Contains(body, `"retried": "injected_kill"`) {
		t.Fatalf("kill not retried to success: %s", body)
	}
}
