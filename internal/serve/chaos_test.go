package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestChaosStorm is the in-repo chaos acceptance check: ≥200 concurrent
// /run submissions — a fifth with armed kill/delay fault plans — against a
// deliberately small queue. Every request must get a terminal answer
// (202 accepted or 429 shed), every admitted job must reach a terminal
// state, and the storm must not leak goroutines.
func TestChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm is not short")
	}
	// Let in-flight simulations from earlier tests unwind before counting.
	settleGoroutines(t, runtime.NumGoroutine()+64)
	baseline := runtime.NumGoroutine()

	s := NewService(Options{
		Tenants: 8, QueueDepth: 16, MaxInflight: 4,
		RetryBackoff: time.Millisecond,
	})
	h := NewHandler(s, HandlerOptions{Logf: t.Logf})
	srv := httptest.NewServer(h)
	defer srv.Close()

	const storm = 200
	type outcome struct {
		code  int
		jobID string
	}
	outcomes := make([]outcome, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Unique seeds keep the cache out of the way; every admitted
			// request is real work. A fifth of the storm arms a fault plan
			// (kill + hot delays), exercising the retry path under load.
			url := fmt.Sprintf("%s/run?exp=conv&p=%d&steps=4&scale=32&seed=%d&seq=0&tenant=t%d",
				srv.URL, 2+2*(i%2), 1000+i, i%8)
			if i%5 == 0 {
				url += fmt.Sprintf("&fault=kill:rank=1,after=3&fault=delay:src=*,dst=*,prob=0.5,secs=1e-6&fault-seed=%d", i)
			}
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("request %d died without a response: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var doc struct {
				JobID string `json:"job_id"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&doc)
			outcomes[i] = outcome{code: resp.StatusCode, jobID: doc.JobID}
		}(i)
	}
	wg.Wait()

	accepted, shed := 0, 0
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i, o := range outcomes {
		switch o.code {
		case http.StatusAccepted, http.StatusOK:
			accepted++
			if o.jobID == "" {
				t.Fatalf("request %d accepted without a job id", i)
			}
			j := s.Job(o.jobID)
			if j == nil {
				t.Fatalf("request %d: job %s not in the registry", i, o.jobID)
			}
			if err := j.Wait(ctx); err != nil {
				t.Fatalf("job %s never reached a terminal state: %v", o.jobID, err)
			}
			if st := j.State(); st != Done && st != Failed && st != Cancelled {
				t.Fatalf("job %s ended in non-terminal state %s", o.jobID, st)
			}
			if st := j.State(); st == Failed {
				// A failure under the default retry policy must carry a
				// classified root cause.
				v := snapshotJob(j)
				if v.errKind == "" {
					t.Fatalf("job %s failed without classification: %v", o.jobID, v.err)
				}
			}
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("request %d got unexpected status %d", i, o.code)
		}
	}
	if accepted+shed != storm {
		t.Fatalf("%d accepted + %d shed != %d requests", accepted, shed, storm)
	}
	if accepted == 0 {
		t.Fatal("storm admitted nothing")
	}
	t.Logf("storm: %d accepted, %d shed, done=%d failed=%d retried=%d",
		accepted, shed, s.metrics.done.Load(), s.metrics.failed.Load(), s.metrics.retried.Load())

	// Every fault-killed job must have recovered via the disarmed retry:
	// with the default policy nothing should end Failed.
	if s.metrics.failed.Load() != 0 {
		t.Fatalf("%d jobs failed despite the retry policy", s.metrics.failed.Load())
	}
	if s.metrics.retried.Load() == 0 {
		t.Fatal("storm armed fault plans but nothing was retried")
	}

	if err := s.Drain(ctx); err != nil {
		t.Fatalf("post-storm drain: %v", err)
	}
	// Goroutine-leak check: back to the pre-storm neighborhood.
	settleGoroutines(t, baseline+10)
}

// settleGoroutines waits for the runtime's goroutine count to fall to the
// bound; it fails the test if it never does.
func settleGoroutines(t *testing.T, bound int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= bound {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle below %d (now %d)\n%s",
				bound, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
