package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/sched"
)

// State is a job's lifecycle position. Terminal states are never left.
type State string

// Job states. Queued and Running are live; Done, Failed and Cancelled are
// terminal.
const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// ErrorKind coarsely classifies a failed job's root cause.
type ErrorKind string

// Failure classes: an injected fail-stop from the job's fault plan, a
// deadlock report, or an application error.
const (
	ErrKindInjectedKill ErrorKind = "injected_kill"
	ErrKindDeadlock     ErrorKind = "deadlock"
	ErrKindApp          ErrorKind = "app"
)

// classify distills a run error into its deterministic root cause and the
// coarse kind retry policy and job reports key on.
func classify(err error) (root error, kind ErrorKind) {
	root = mpi.RootCause(err)
	var re *mpi.RankError
	if errors.As(root, &re) && re.Injected() {
		return root, ErrKindInjectedKill
	}
	var de *mpi.DeadlockError
	if errors.As(root, &de) {
		return root, ErrKindDeadlock
	}
	return root, ErrKindApp
}

// ShedError is the backpressure rejection: the request was refused at
// admission (queue or tenant table full) and the client should come back
// after RetryAfter. It maps to HTTP 429.
type ShedError struct {
	RetryAfter time.Duration
	Reason     string
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: shedding load (%s), retry after %v", e.Reason, e.RetryAfter)
}

// ErrDraining rejects submissions after Drain has begun. It maps to 503.
var ErrDraining = errors.New("serve: draining, not admitting new jobs")

// errCancelled is the terminal error of a cancelled job.
var errCancelled = errors.New("serve: job cancelled")

// Runner executes one resolved configuration; the default is
// experiments.RunLive. Tests substitute fakes to script failures without
// running simulations.
type Runner func(opts experiments.LiveOptions) (*mpi.Report, error)

// SeqRunner measures the sequential baseline; default
// experiments.SeqBaseline.
type SeqRunner func(opts experiments.LiveOptions) (float64, error)

// Options configures a Service. Zero values select the documented
// defaults.
type Options struct {
	// Tenants caps the number of distinct tenants with queued work
	// (default 8). Admitting one more is shed with 429.
	Tenants int
	// QueueDepth caps each tenant's FIFO (default 16).
	QueueDepth int
	// MaxInflight caps concurrently running simulations (default: the
	// sched worker default, i.e. -j / GOMAXPROCS).
	MaxInflight int
	// Retries is the number of extra attempts granted to jobs that die to
	// their own armed fault plan (default 2). The retry runs with the plan
	// disarmed — see the package contract.
	Retries int
	// RetryBackoff is the base of the jittered exponential backoff between
	// attempts (default 25ms).
	RetryBackoff time.Duration
	// DefaultDeadline arms the deadlock detector for jobs that did not
	// choose a deadline (default 2m). It is what keeps a wedged simulation
	// from pinning a worker slot forever.
	DefaultDeadline time.Duration
	// CacheEntries bounds the result LRU (default 256; <0 disables).
	CacheEntries int
	// CacheDir, when non-empty, is loaded at construction and written by
	// Drain, so a restart serves warm hits.
	CacheDir string
	// HistoryLimit bounds the terminal-job registry (default 512): beyond
	// it the oldest terminal jobs are forgotten (404 on /jobs/{id}; cached
	// results remain addressable by configuration).
	HistoryLimit int
	// Observe attaches the full observability bundle (recorder, profiler,
	// telemetry, rank gauges) to every attempt, which the analysis
	// endpoints serve. The canonical trace collector that produces the
	// result artifact is always attached regardless.
	Observe bool
	// Runner and SeqRunner are test seams; nil selects the real
	// experiment launchers.
	Runner    Runner
	SeqRunner SeqRunner
}

func (o Options) withDefaults() Options {
	if o.Tenants <= 0 {
		o.Tenants = 8
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = sched.Workers(0)
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 2 * time.Minute
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.HistoryLimit <= 0 {
		o.HistoryLimit = 512
	}
	if o.Runner == nil {
		o.Runner = experiments.RunLive
	}
	if o.SeqRunner == nil {
		o.SeqRunner = experiments.SeqBaseline
	}
	return o
}

// Request is one submission.
type Request struct {
	// Opts is the run configuration; it is resolved (defaults filled,
	// validated) at submit.
	Opts experiments.LiveOptions
	// Tenant is the fairness identity ("" = "default").
	Tenant string
	// WithSeq runs the sequential baseline first so the Eq. 6 bounds are
	// populated in the observability surface.
	WithSeq bool
	// Verify attaches the runtime section/collective verifier.
	Verify bool
	// NoCache bypasses the result cache and single-flight dedup: the job
	// always executes. Its successful result still refreshes the cache.
	NoCache bool
	// NoRetry disables the fault-retry policy for this job: a fault-killed
	// attempt fails terminally with its partial observability intact
	// (compat mode relies on this to preserve the pre-queue contract).
	NoRetry bool
}

// Result is a completed job's artifact bundle: the run summary plus the
// canonical sorted event CSV (the byte-identical artifact the caching and
// retry idempotency contracts are stated over).
type Result struct {
	Wall float64 `json:"wall_seconds"`
	Seq  float64 `json:"seq_seconds,omitempty"`
	CSV  []byte  `json:"-"`
}

// Job is one admitted request. All fields are guarded by mu; the HTTP
// layer reads them through the snapshot accessors.
type Job struct {
	id      string
	tenant  string
	key     string
	opts    experiments.LiveOptions // resolved; Fault may be disarmed on retries
	withSeq bool
	verify  bool
	noRetry bool
	svc     *Service

	mu        sync.Mutex
	state     State
	attempts  int
	retryKind ErrorKind // kind that triggered the retry ("" if never retried)
	cancelled bool
	cancelCh  chan struct{}
	cacheHit  bool
	dedups    int
	created   time.Time
	started   time.Time
	finished  time.Time
	queueLat  time.Duration
	seq       float64
	err       error
	errKind   ErrorKind
	result    *Result
	bundle    *bundle
	done      chan struct{}
}

// ID returns the job id ("j000042").
func (j *Job) ID() string { return j.id }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the artifact of a Done job (nil otherwise).
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Err returns the terminal error of a Failed or Cancelled job.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel requests cancellation. A queued job transitions to Cancelled
// immediately; a running job finishes its current attempt (bounded by its
// deadline) and is then recorded as Cancelled, its result discarded.
// Returns false if the job was already terminal.
func (j *Job) Cancel() bool {
	s := j.svc
	s.mu.Lock()
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		s.mu.Unlock()
		return false
	}
	if !j.cancelled {
		j.cancelled = true
		close(j.cancelCh)
	}
	if j.state == Queued {
		// The fair queue drops it lazily at dispatch; terminal now.
		j.finishLocked(s, Cancelled, nil, errCancelled)
	}
	j.mu.Unlock()
	s.mu.Unlock()
	return true
}

func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// finishLocked performs the single terminal transition. Both s.mu and j.mu
// must be held.
func (j *Job) finishLocked(s *Service, st State, res *Result, err error) {
	if j.state.Terminal() {
		return
	}
	j.state = st
	j.result = res
	j.err = err
	if err != nil && st == Failed {
		_, j.errKind = classify(err)
	}
	j.finished = s.now()
	delete(s.pending, j.key)
	switch st {
	case Done:
		s.metrics.done.Add(1)
		if res != nil && !j.cacheHit {
			s.cache.put(j.key, res)
		}
	case Failed:
		s.metrics.failed.Add(1)
	case Cancelled:
		s.metrics.cancelled.Add(1)
	}
	close(j.done)
}

// Service is the multi-tenant sweep service.
type Service struct {
	opts Options

	mu       sync.Mutex
	queue    *sched.FairQueue[*Job]
	inflight int
	draining bool
	jobs     map[string]*Job
	order    []*Job          // submission order, for listing and eviction
	pending  map[string]*Job // cache key -> live job (single-flight)
	latest   *Job
	nextID   int
	// durEWMA is the exponentially weighted average of observed run
	// durations (seconds), feeding the Retry-After estimate.
	durEWMA float64

	cache   *resultCache
	metrics metrics
	wg      sync.WaitGroup
}

// NewService builds a service and, when Options.CacheDir is set, warms the
// result cache from disk (best effort: an absent or damaged directory
// starts cold).
func NewService(opts Options) *Service {
	opts = opts.withDefaults()
	s := &Service{
		opts:    opts,
		queue:   sched.NewFairQueue[*Job](opts.Tenants, opts.QueueDepth),
		jobs:    make(map[string]*Job),
		pending: make(map[string]*Job),
		cache:   newResultCache(opts.CacheEntries),
	}
	if opts.CacheDir != "" {
		s.cache.load(opts.CacheDir)
	}
	return s
}

func (s *Service) now() time.Time { return time.Now() }

// requestKey extends the run identity with the attachment knobs that
// change what a job's artifacts contain (the verifier adds trace events;
// the seq baseline adds bound fields).
func requestKey(opts experiments.LiveOptions, withSeq, verifyOn bool) string {
	return opts.CacheKey() +
		"|seq=" + strconv.FormatBool(withSeq) +
		"|verify=" + strconv.FormatBool(verifyOn)
}

// Submit admits one request: cache hit, single-flight attach, enqueue, or
// shed. The returned error is a *ShedError (429), ErrDraining (503) or a
// validation error (400).
func (s *Service) Submit(req Request) (*Job, error) {
	opts, err := req.Opts.Resolved()
	if err != nil {
		return nil, err
	}
	if opts.Deadline <= 0 {
		opts.Deadline = s.opts.DefaultDeadline
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	key := requestKey(opts, req.WithSeq, req.Verify)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if !req.NoCache {
		// Single-flight: attach to the identical live job.
		if leader := s.pending[key]; leader != nil {
			leader.mu.Lock()
			leader.dedups++
			leader.mu.Unlock()
			s.metrics.deduped.Add(1)
			s.latest = leader
			return leader, nil
		}
		if res := s.cache.get(key); res != nil {
			s.metrics.cacheHits.Add(1)
			j := s.newJobLocked(tenant, key, opts, req)
			j.mu.Lock()
			j.cacheHit = true
			j.started = j.created
			j.finishLocked(s, Done, res, nil)
			j.mu.Unlock()
			return j, nil
		}
		s.metrics.cacheMisses.Add(1)
	} else {
		s.metrics.cacheMisses.Add(1)
	}

	j := s.newJobLocked(tenant, key, opts, req)
	if qerr := s.queue.Push(tenant, j); qerr != nil {
		s.dropJobLocked(j)
		s.metrics.shed.Add(1)
		return nil, &ShedError{RetryAfter: s.retryAfterLocked(), Reason: qerr.Error()}
	}
	if !req.NoCache {
		s.pending[key] = j
	}
	s.metrics.queued.Add(1)
	s.dispatchLocked()
	return j, nil
}

// newJobLocked registers a fresh job; s.mu must be held.
func (s *Service) newJobLocked(tenant, key string, opts experiments.LiveOptions, req Request) *Job {
	s.nextID++
	j := &Job{
		id:       fmt.Sprintf("j%06d", s.nextID),
		tenant:   tenant,
		key:      key,
		opts:     opts,
		withSeq:  req.WithSeq,
		verify:   req.Verify,
		noRetry:  req.NoRetry,
		svc:      s,
		state:    Queued,
		created:  s.now(),
		cancelCh: make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.latest = j
	s.evictHistoryLocked()
	return j
}

// dropJobLocked unregisters a job that was never admitted (shed after
// registration); s.mu must be held.
func (s *Service) dropJobLocked(j *Job) {
	delete(s.jobs, j.id)
	if n := len(s.order); n > 0 && s.order[n-1] == j {
		s.order = s.order[:n-1]
	}
	if s.latest == j {
		s.latest = nil
		if n := len(s.order); n > 0 {
			s.latest = s.order[n-1]
		}
	}
	s.nextID-- // ids stay dense; the shed request never existed
}

// evictHistoryLocked forgets the oldest terminal jobs beyond HistoryLimit.
func (s *Service) evictHistoryLocked() {
	if len(s.order) <= s.opts.HistoryLimit {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.opts.HistoryLimit
	for _, j := range s.order {
		if excess > 0 && j.State().Terminal() {
			delete(s.jobs, j.id)
			excess--
			continue
		}
		kept = append(kept, j)
	}
	s.order = kept
}

// dispatchLocked starts queued jobs while worker slots are free; s.mu must
// be held.
func (s *Service) dispatchLocked() {
	for s.inflight < s.opts.MaxInflight {
		j, _, ok := s.queue.Pop()
		if !ok {
			return
		}
		j.mu.Lock()
		if j.state != Queued { // cancelled while queued
			j.mu.Unlock()
			continue
		}
		j.state = Running
		j.started = s.now()
		j.queueLat = j.started.Sub(j.created)
		lat := j.queueLat
		j.mu.Unlock()
		s.metrics.running.Add(1)
		s.metrics.queueLatency.observe(lat.Seconds())
		s.inflight++
		s.wg.Add(1)
		go s.run(j)
	}
}

// finish routes a terminal transition through both locks in order.
func (s *Service) finish(j *Job, st State, res *Result, err error) {
	s.mu.Lock()
	j.mu.Lock()
	j.finishLocked(s, st, res, err)
	j.mu.Unlock()
	if st == Done || st == Failed {
		s.observeDurationLocked(j)
	}
	s.mu.Unlock()
}

// observeDurationLocked folds a completed attempt's real duration into the
// EWMA behind Retry-After; s.mu must be held.
func (s *Service) observeDurationLocked(j *Job) {
	j.mu.Lock()
	d := j.finished.Sub(j.started).Seconds()
	j.mu.Unlock()
	if d <= 0 {
		return
	}
	const alpha = 0.3
	if s.durEWMA == 0 {
		s.durEWMA = d
	} else {
		s.durEWMA = alpha*d + (1-alpha)*s.durEWMA
	}
}

// retryAfterLocked estimates when a shed client should come back: the
// observed mean run duration scaled by the backlog per worker slot,
// clamped to [1s, 120s]. s.mu must be held.
func (s *Service) retryAfterLocked() time.Duration {
	mean := s.durEWMA
	if mean == 0 {
		mean = 1 // no observation yet: assume a second per run
	}
	backlog := float64(s.queue.Len()+s.inflight) / float64(s.opts.MaxInflight)
	est := time.Duration(mean * (backlog + 1) * float64(time.Second))
	if est < time.Second {
		est = time.Second
	}
	if est > 2*time.Minute {
		est = 2 * time.Minute
	}
	return est
}

// run executes a job's attempts until a terminal state.
func (s *Service) run(j *Job) {
	defer func() {
		s.mu.Lock()
		s.inflight--
		s.dispatchLocked()
		s.mu.Unlock()
		s.wg.Done()
	}()
	opts := j.opts
	for attempt := 1; ; attempt++ {
		if j.cancelRequested() {
			s.finish(j, Cancelled, nil, errCancelled)
			return
		}
		b := newBundle(s.opts.Observe, j.verify)
		opts.Tools = b.tools()
		j.mu.Lock()
		j.attempts = attempt
		j.bundle = b
		j.mu.Unlock()

		var seq float64
		var runErr error
		if j.withSeq {
			if seq, runErr = s.opts.SeqRunner(opts); runErr == nil && seq > 0 {
				b.setSeqTime(seq)
				j.mu.Lock()
				j.seq = seq
				j.mu.Unlock()
			}
		}
		var rep *mpi.Report
		if runErr == nil {
			rep, runErr = s.opts.Runner(opts)
		}
		if j.cancelRequested() {
			s.finish(j, Cancelled, nil, errCancelled)
			return
		}
		if runErr == nil {
			res := &Result{Wall: rep.WallTime, Seq: seq}
			if csv, err := b.eventsCSV(); err == nil {
				res.CSV = csv
			}
			s.finish(j, Done, res, nil)
			return
		}
		root, kind := classify(runErr)
		// Only failures the armed plan could have caused are retryable:
		// an injected fail-stop, or a deadlock while link faults (drops)
		// were armed. Application failures fail immediately.
		retryable := !j.noRetry && opts.Fault != nil && kind != ErrKindApp
		if !retryable || attempt > s.opts.Retries {
			s.finish(j, Failed, nil, root)
			return
		}
		s.metrics.retried.Add(1)
		j.mu.Lock()
		j.retryKind = kind
		j.mu.Unlock()
		// Healthy-node re-run: disarm the plan. Determinism of the
		// workload in (seed, machine, geometry) makes the retry's result
		// byte-identical to the clean path's.
		opts.Fault = nil
		if !s.backoff(j, attempt) {
			s.finish(j, Cancelled, nil, errCancelled)
			return
		}
	}
}

// backoff sleeps the jittered exponential delay before the next attempt;
// it returns false when the job was cancelled while waiting.
func (s *Service) backoff(j *Job, attempt int) bool {
	base := s.opts.RetryBackoff << (attempt - 1)
	if base > 2*time.Second {
		base = 2 * time.Second
	}
	delay := base + time.Duration(rand.Int63n(int64(base)+1))
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-j.cancelCh:
		return false
	}
}

// Job returns a registered job by id.
func (s *Service) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Latest returns the most recently submitted job (nil before the first).
func (s *Service) Latest() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest
}

// LatestObserved returns the most recent job carrying an observability
// bundle — the default subject of the analysis endpoints (cache-served
// jobs never executed, so they have nothing live to show).
func (s *Service) LatestObserved() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.order) - 1; i >= 0; i-- {
		j := s.order[i]
		j.mu.Lock()
		ok := j.bundle != nil
		j.mu.Unlock()
		if ok {
			return j
		}
	}
	return nil
}

// Jobs returns the registered jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// Active reports whether any job is queued or running (the compat
// single-flight guard).
func (s *Service) Active() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queue.Len() > 0 || s.inflight > 0 {
		return true
	}
	return false
}

// Draining reports whether Drain has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// CacheLen returns the number of cached results.
func (s *Service) CacheLen() int { return s.cache.len() }

// Drain stops admission, lets queued and running jobs finish within ctx's
// budget, cancels whatever remains, and persists the result cache to
// Options.CacheDir. Every admitted job is in a terminal state when Drain
// returns (running simulations cancelled past the budget still unwind in
// the background, bounded by their deadlines; their results are
// discarded).
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	timedOut := false
loop:
	for {
		s.mu.Lock()
		idle := s.queue.Len() == 0 && s.inflight == 0
		s.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-ctx.Done():
			timedOut = true
			break loop
		case <-tick.C:
		}
	}
	if timedOut {
		// Budget expired: cancel queued jobs outright and flag running
		// ones so they finish as Cancelled at their next checkpoint.
		s.mu.Lock()
		queued := s.queue.Drain()
		live := make([]*Job, 0, len(s.order))
		for _, j := range s.order {
			live = append(live, j)
		}
		s.mu.Unlock()
		for _, j := range queued {
			j.Cancel()
		}
		for _, j := range live {
			if !j.State().Terminal() {
				j.Cancel()
			}
		}
	}
	var saveErr error
	if s.opts.CacheDir != "" {
		saveErr = s.cache.save(s.opts.CacheDir)
	}
	if timedOut {
		if saveErr != nil {
			return fmt.Errorf("drain timed out; cache save failed: %w", saveErr)
		}
		return ctx.Err()
	}
	return saveErr
}
