package serve

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/mpi"
)

// gatedRunner is a scripted Runner whose executions block until released,
// so tests can hold worker slots occupied and observe queue behavior.
type gatedRunner struct {
	mu    sync.Mutex
	gate  chan struct{}
	calls int
}

func newGatedRunner() *gatedRunner {
	return &gatedRunner{gate: make(chan struct{})}
}

func (g *gatedRunner) run(opts experiments.LiveOptions) (*mpi.Report, error) {
	g.mu.Lock()
	g.calls++
	n := g.calls
	g.mu.Unlock()
	<-g.gate
	return &mpi.Report{WallTime: float64(n)}, nil
}

func (g *gatedRunner) release() { close(g.gate) }

func (g *gatedRunner) callCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.calls
}

// noSeq is a SeqRunner stub.
func noSeq(experiments.LiveOptions) (float64, error) { return 0, nil }

// instantRunner returns immediately with an incrementing wall time, so a
// re-execution is distinguishable from a cached result.
func instantRunner() (Runner, *atomic.Int64) {
	var n atomic.Int64
	return func(opts experiments.LiveOptions) (*mpi.Report, error) {
		return &mpi.Report{WallTime: float64(n.Add(1))}, nil
	}, &n
}

func convRequest(seed uint64) Request {
	return Request{Opts: experiments.LiveOptions{
		Experiment: "conv", Ranks: 2, Steps: 4, Scale: 32, Seed: seed,
	}}
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s did not reach a terminal state: %v", j.ID(), err)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := NewService(Options{Runner: func(experiments.LiveOptions) (*mpi.Report, error) {
		t.Fatal("runner must not execute an invalid request")
		return nil, nil
	}, SeqRunner: noSeq})
	if _, err := s.Submit(Request{Opts: experiments.LiveOptions{Experiment: "nope"}}); err == nil {
		t.Fatal("unknown experiment admitted")
	}
}

// TestCacheAndSingleFlight drives the dedup and caching ladder: identical
// live submissions attach to one job, a later identical submission is a
// cache hit with the first execution's result, and nocache forces a fresh
// execution.
func TestCacheAndSingleFlight(t *testing.T) {
	run, execs := instantRunner()
	gate := newGatedRunner()
	s := NewService(Options{SeqRunner: noSeq, Runner: func(o experiments.LiveOptions) (*mpi.Report, error) {
		<-gate.gate
		return run(o)
	}})

	j1, err := s.Submit(convRequest(7))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	j2, err := s.Submit(convRequest(7))
	if err != nil {
		t.Fatalf("dup submit: %v", err)
	}
	if j1 != j2 {
		t.Fatalf("identical live submissions got distinct jobs %s and %s", j1.ID(), j2.ID())
	}
	gate.release()
	waitJob(t, j1)
	if st := j1.State(); st != Done {
		t.Fatalf("job state %s, want done", st)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("deduped pair executed %d times", got)
	}

	j3, err := s.Submit(convRequest(7))
	if err != nil {
		t.Fatalf("cached submit: %v", err)
	}
	waitJob(t, j3)
	if j3 == j1 {
		t.Fatal("cache hit returned the original job instead of a fresh terminal one")
	}
	v := snapshotJob(j3)
	if !v.cacheHit || v.state != Done || v.wall != 1 {
		t.Fatalf("cache hit job: hit=%v state=%s wall=%v", v.cacheHit, v.state, v.wall)
	}
	if execs.Load() != 1 {
		t.Fatalf("cache hit re-executed (execs %d)", execs.Load())
	}

	req := convRequest(7)
	req.NoCache = true
	j4, err := s.Submit(req)
	if err != nil {
		t.Fatalf("nocache submit: %v", err)
	}
	waitJob(t, j4)
	if execs.Load() != 2 {
		t.Fatalf("nocache did not force an execution (execs %d)", execs.Load())
	}

	if hits, misses := s.metrics.cacheHits.Load(), s.metrics.cacheMisses.Load(); hits != 1 || misses != 2 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/2", hits, misses)
	}
	if s.metrics.deduped.Load() != 1 {
		t.Fatalf("dedup counter %d, want 1", s.metrics.deduped.Load())
	}
}

// TestShedBackpressure fills one tenant's queue and the tenant table, and
// checks both overflows shed with a sane Retry-After rather than queuing
// without bound.
func TestShedBackpressure(t *testing.T) {
	g := newGatedRunner()
	s := NewService(Options{
		Tenants: 1, QueueDepth: 1, MaxInflight: 1,
		Runner: g.run, SeqRunner: noSeq,
	})
	j1, err := s.Submit(convRequest(1)) // occupies the worker slot
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if _, err := s.Submit(convRequest(2)); err != nil { // queued
		t.Fatalf("submit 2: %v", err)
	}
	_, err = s.Submit(convRequest(3)) // queue full
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("overflow submit returned %v, want ShedError", err)
	}
	if shed.RetryAfter < time.Second || shed.RetryAfter > 2*time.Minute {
		t.Fatalf("Retry-After %v outside [1s, 2m]", shed.RetryAfter)
	}
	req := convRequest(4)
	req.Tenant = "other"
	if _, err := s.Submit(req); !errors.As(err, &shed) {
		t.Fatalf("tenant-table overflow returned %v, want ShedError", err)
	}
	if s.metrics.shed.Load() != 2 {
		t.Fatalf("shed counter %d, want 2", s.metrics.shed.Load())
	}
	g.release()
	waitJob(t, j1)
}

// TestFairScheduling floods one tenant and checks a light tenant's job is
// dispatched ahead of the flood's tail.
func TestFairScheduling(t *testing.T) {
	var mu sync.Mutex
	var order []string
	block := make(chan struct{})
	s := NewService(Options{
		MaxInflight: 1, SeqRunner: noSeq,
		Runner: func(o experiments.LiveOptions) (*mpi.Report, error) {
			mu.Lock()
			order = append(order, o.CacheKey())
			mu.Unlock()
			<-block
			return &mpi.Report{WallTime: 1}, nil
		},
	})
	// Occupy the only slot so subsequent submissions stay queued.
	blocker, err := s.Submit(convRequest(100))
	if err != nil {
		t.Fatalf("blocker: %v", err)
	}
	var jobs []*Job
	for seed := uint64(1); seed <= 4; seed++ { // flood tenant
		req := convRequest(seed)
		req.Tenant = "flood"
		j, err := s.Submit(req)
		if err != nil {
			t.Fatalf("flood %d: %v", seed, err)
		}
		jobs = append(jobs, j)
	}
	lightReq := convRequest(50)
	lightReq.Tenant = "light"
	light, err := s.Submit(lightReq)
	if err != nil {
		t.Fatalf("light: %v", err)
	}
	jobs = append(jobs, light, blocker)
	lightKey := light.opts.CacheKey()

	close(block)
	for _, j := range jobs {
		waitJob(t, j)
	}
	mu.Lock()
	defer mu.Unlock()
	// order[0] is the blocker; fair round-robin must run the light tenant's
	// job within the next two dispatches, not behind the whole flood.
	pos := -1
	for i, k := range order {
		if k == lightKey {
			pos = i
		}
	}
	if pos < 0 || pos > 2 {
		t.Fatalf("light tenant ran at position %d of %v; round-robin should interleave it", pos, len(order))
	}
}

// TestRetryDisarmsFaultAndMatchesCleanRun is the idempotency acceptance
// check: a job killed by its injected fault plan is retried with the plan
// disarmed, succeeds, and its canonical CSV is byte-identical to the
// clean-path run of the same configuration.
func TestRetryDisarmsFaultAndMatchesCleanRun(t *testing.T) {
	s := NewService(Options{RetryBackoff: time.Millisecond})

	clean, err := s.Submit(convRequest(2017))
	if err != nil {
		t.Fatalf("clean submit: %v", err)
	}
	waitJob(t, clean)
	if clean.State() != Done {
		t.Fatalf("clean run state %s: %v", clean.State(), clean.Err())
	}

	plan, err := fault.ParseSpec("kill:rank=1,after=3", 1)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	req := convRequest(2017)
	req.Opts.Fault = plan
	faulty, err := s.Submit(req)
	if err != nil {
		t.Fatalf("faulty submit: %v", err)
	}
	waitJob(t, faulty)
	v := snapshotJob(faulty)
	if v.state != Done {
		t.Fatalf("faulted job not recovered: state %s err %v", v.state, v.err)
	}
	if v.attempts < 2 || v.retried != ErrKindInjectedKill {
		t.Fatalf("expected an injected-kill retry, got attempts=%d retried=%q", v.attempts, v.retried)
	}
	cleanCSV := clean.Result().CSV
	retryCSV := faulty.Result().CSV
	if len(cleanCSV) == 0 || !bytes.Equal(cleanCSV, retryCSV) {
		t.Fatalf("retried run CSV differs from clean path (%d vs %d bytes)", len(retryCSV), len(cleanCSV))
	}
	if s.metrics.retried.Load() == 0 {
		t.Fatal("retry counter not incremented")
	}
}

// TestNoRetryFailsTerminally checks the compat knob: with retries off, a
// fault-killed job fails with the injected kill as root cause.
func TestNoRetryFailsTerminally(t *testing.T) {
	s := NewService(Options{})
	plan, err := fault.ParseSpec("kill:rank=1,after=3", 1)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	req := convRequest(2017)
	req.Opts.Fault = plan
	req.NoRetry = true
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitJob(t, j)
	v := snapshotJob(j)
	if v.state != Failed || v.errKind != ErrKindInjectedKill || v.attempts != 1 {
		t.Fatalf("no-retry kill: state=%s kind=%s attempts=%d err=%v", v.state, v.errKind, v.attempts, v.err)
	}
	if !strings.Contains(v.err.Error(), "fail-stop") {
		t.Fatalf("root cause lost: %v", v.err)
	}
}

// TestAppErrorNotRetried checks that failures not attributable to the
// armed plan fail immediately.
func TestAppErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	s := NewService(Options{SeqRunner: noSeq, Runner: func(experiments.LiveOptions) (*mpi.Report, error) {
		calls.Add(1)
		return nil, errors.New("boom: bad geometry")
	}})
	plan, _ := fault.ParseSpec("kill:rank=1,after=3", 1)
	req := convRequest(5)
	req.Opts.Fault = plan
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitJob(t, j)
	if j.State() != Failed || calls.Load() != 1 {
		t.Fatalf("app error: state=%s calls=%d, want failed after 1 attempt", j.State(), calls.Load())
	}
}

// TestCancel covers both cancellation paths: a queued job terminates
// immediately, a running one finishes as cancelled with its result
// discarded.
func TestCancel(t *testing.T) {
	g := newGatedRunner()
	s := NewService(Options{MaxInflight: 1, Runner: g.run, SeqRunner: noSeq})
	running, err := s.Submit(convRequest(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	queued, err := s.Submit(convRequest(2))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !queued.Cancel() {
		t.Fatal("queued cancel refused")
	}
	if queued.State() != Cancelled {
		t.Fatalf("queued job state %s after cancel", queued.State())
	}
	if queued.Cancel() {
		t.Fatal("second cancel claimed success on a terminal job")
	}
	if !running.Cancel() {
		t.Fatal("running cancel refused")
	}
	g.release()
	waitJob(t, running)
	if running.State() != Cancelled || running.Result() != nil {
		t.Fatalf("running job after cancel: state=%s result=%v", running.State(), running.Result())
	}
	if s.metrics.cancelled.Load() != 2 {
		t.Fatalf("cancelled counter %d, want 2", s.metrics.cancelled.Load())
	}
}

// TestDrainGraceful lets in-flight work finish and checks no admission
// afterwards.
func TestDrainGraceful(t *testing.T) {
	run, _ := instantRunner()
	s := NewService(Options{Runner: run, SeqRunner: noSeq})
	j, err := s.Submit(convRequest(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if j.State() != Done {
		t.Fatalf("job state %s after graceful drain", j.State())
	}
	if _, err := s.Submit(convRequest(2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit returned %v, want ErrDraining", err)
	}
}

// TestDrainTimeoutCancels checks the budgeted path: jobs that cannot
// finish are cancelled, and every admitted job is terminal when Drain
// returns.
func TestDrainTimeoutCancels(t *testing.T) {
	g := newGatedRunner()
	s := NewService(Options{MaxInflight: 1, Runner: g.run, SeqRunner: noSeq})
	var jobs []*Job
	for seed := uint64(1); seed <= 3; seed++ {
		j, err := s.Submit(convRequest(seed))
		if err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain returned %v, want deadline exceeded", err)
	}
	g.release() // let the wedged attempt unwind
	for _, j := range jobs {
		waitJob(t, j)
		if st := j.State(); !st.Terminal() {
			t.Fatalf("job %s not terminal after drain: %s", j.ID(), st)
		}
	}
}

// TestDrainPersistsCacheAcrossRestart is the restart-reuses-cache
// contract: results cached before a drain answer identically from a new
// service pointed at the same directory, without re-executing.
func TestDrainPersistsCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	run, execs := instantRunner()
	s := NewService(Options{Runner: run, SeqRunner: noSeq, CacheDir: dir})
	j, err := s.Submit(convRequest(11))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitJob(t, j)
	firstCSV := j.Result().CSV
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	s2 := NewService(Options{Runner: run, SeqRunner: noSeq, CacheDir: dir})
	if s2.CacheLen() == 0 {
		t.Fatal("restarted service did not load the persisted cache")
	}
	j2, err := s2.Submit(convRequest(11))
	if err != nil {
		t.Fatalf("restart submit: %v", err)
	}
	waitJob(t, j2)
	v := snapshotJob(j2)
	if !v.cacheHit || v.wall != 1 {
		t.Fatalf("restart did not serve the cached result: hit=%v wall=%v", v.cacheHit, v.wall)
	}
	if !bytes.Equal(firstCSV, j2.Result().CSV) {
		t.Fatal("persisted artifact differs from the original result")
	}
	if execs.Load() != 1 {
		t.Fatalf("restart re-executed (execs %d)", execs.Load())
	}
}

// TestHistoryEviction bounds the registry: old terminal jobs are forgotten
// past HistoryLimit.
func TestHistoryEviction(t *testing.T) {
	run, _ := instantRunner()
	s := NewService(Options{Runner: run, SeqRunner: noSeq, HistoryLimit: 4, CacheEntries: -1})
	var last *Job
	for seed := uint64(1); seed <= 10; seed++ {
		req := convRequest(seed)
		req.NoCache = true
		j, err := s.Submit(req)
		if err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
		waitJob(t, j)
		last = j
	}
	if got := len(s.Jobs()); got > 5 {
		t.Fatalf("registry holds %d jobs, limit 4 (+1 transient)", got)
	}
	if s.Job(last.ID()) == nil {
		t.Fatal("most recent job evicted")
	}
}
