package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// resultCache is the bounded LRU of successful run artifacts, keyed on the
// request key (resolved run identity + attachment knobs). It also knows how
// to persist itself: Drain writes an index plus one CSV artifact file per
// entry, and a restarted service loads them back, so warm keys answer
// without executing anything.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key     string
	res     *Result
	created time.Time
}

// newResultCache builds a cache holding up to capacity entries; capacity
// < 0 disables caching entirely (every get misses, every put is dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
	}
}

func (c *resultCache) get(key string) *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res
}

func (c *resultCache) put(key string, res *Result) {
	if c.cap < 0 || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, created: time.Now()})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheIndex is the on-disk schema of the persisted cache.
type cacheIndex struct {
	Schema  int              `json:"schema"`
	Entries []cacheIndexItem `json:"entries"`
}

type cacheIndexItem struct {
	Key     string  `json:"key"`
	File    string  `json:"file"`
	Wall    float64 `json:"wall_seconds"`
	Seq     float64 `json:"seq_seconds,omitempty"`
	Created int64   `json:"created_unix"`
}

// save writes the cache to dir: artifact CSVs plus an index.json written
// last (temp file + rename), so a crash mid-save leaves the previous index
// intact. Entries are written oldest-first so a reload reconstructs the
// same recency order.
func (c *resultCache) save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c.mu.Lock()
	var idx cacheIndex
	idx.Schema = 1
	type payload struct {
		file string
		csv  []byte
	}
	var files []payload
	n := 0
	for el := c.ll.Back(); el != nil; el = el.Prev() { // oldest first
		e := el.Value.(*cacheEntry)
		n++
		name := fmt.Sprintf("entry-%06d.csv", n)
		idx.Entries = append(idx.Entries, cacheIndexItem{
			Key: e.key, File: name,
			Wall: e.res.Wall, Seq: e.res.Seq,
			Created: e.created.Unix(),
		})
		files = append(files, payload{file: name, csv: e.res.CSV})
	}
	c.mu.Unlock()

	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.file), f.csv, 0o644); err != nil {
			return err
		}
	}
	blob, err := json.MarshalIndent(&idx, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "index.json.tmp")
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "index.json"))
}

// load warms the cache from a directory written by save. Best effort: a
// missing index starts cold, a missing artifact skips its entry.
func (c *resultCache) load(dir string) {
	blob, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return
	}
	var idx cacheIndex
	if err := json.Unmarshal(blob, &idx); err != nil || idx.Schema != 1 {
		return
	}
	for _, item := range idx.Entries { // oldest first, matching save
		csv, err := os.ReadFile(filepath.Join(dir, item.File))
		if err != nil {
			continue
		}
		c.put(item.Key, &Result{Wall: item.Wall, Seq: item.Seq, CSV: csv})
	}
}
