package serve

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"repro/internal/export"
	"repro/internal/mpi"
	"repro/internal/prof"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/verify"
)

// collectorLimit caps each job's trace buffer; past it the analysis
// carries a truncation warning instead of growing without bound.
const collectorLimit = 4 << 20

// rankGauges captures the runtime's live session gauges at Init so
// /metrics can report rank bring-up while the ranks are still executing.
// On a lazy run (exp=conv2d, or any session workload) the materialized
// gauge climbs from 0 toward the active count.
type rankGauges struct {
	mpi.BaseTool
	mu    sync.Mutex
	stats *mpi.RuntimeStats
}

func (g *rankGauges) Init(w *mpi.WorldInfo) {
	g.mu.Lock()
	g.stats = w.Stats
	g.mu.Unlock()
}

// write emits the Prometheus gauge family; a scrape before the first run's
// Init emits nothing.
func (g *rankGauges) write(w io.Writer) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	stats := g.stats
	g.mu.Unlock()
	if stats == nil {
		return nil
	}
	_, err := fmt.Fprintf(w,
		"# HELP mpi_ranks_declared Configured world size of the current run.\n"+
			"# TYPE mpi_ranks_declared gauge\nmpi_ranks_declared %d\n"+
			"# HELP mpi_ranks_active Ranks participating in the session.\n"+
			"# TYPE mpi_ranks_active gauge\nmpi_ranks_active %d\n"+
			"# HELP mpi_ranks_materialized Active ranks whose state the runtime has brought up so far.\n"+
			"# TYPE mpi_ranks_materialized gauge\nmpi_ranks_materialized %d\n",
		stats.DeclaredRanks(), stats.ActiveRanks(), stats.MaterializedRanks())
	return err
}

// bundle is one attempt's tool chain. The trace collector is always
// attached — it produces the canonical result artifact — while the rich
// observability tools (recorder, profiler, telemetry, gauges) ride along
// only when the service runs in Observe mode, and the verifier only when
// the request asked for it.
type bundle struct {
	rec       *export.Recorder
	profiler  *prof.Profiler
	collector *trace.Collector
	verifier  *verify.Tool
	gauges    *rankGauges
	tele      *telemetry.Tool
}

// newBundle assembles the tool chain for one attempt.
func newBundle(observe, verifyOn bool) *bundle {
	c := trace.NewCollector(collectorLimit)
	c.Messages = true
	c.Collectives = true
	// Thread-team compute regions feed the POP hybrid split; pure-MPI
	// experiments record none, so the flag costs them nothing.
	c.Omp = true
	b := &bundle{collector: c}
	if observe {
		b.rec = export.NewRecorder(export.Options{Messages: true, Collectives: true})
		b.profiler = prof.New()
		b.gauges = &rankGauges{}
		b.tele = telemetry.New(telemetry.Options{})
	}
	if verifyOn {
		b.verifier = verify.New()
	}
	return b
}

// tools returns the chain in attachment order (the profiler first, exactly
// as the sweep drivers chain their reference profiler).
func (b *bundle) tools() []mpi.Tool {
	var out []mpi.Tool
	if b.profiler != nil {
		out = append(out, b.profiler)
	}
	if b.rec != nil {
		out = append(out, b.rec)
	}
	out = append(out, b.collector)
	if b.gauges != nil {
		out = append(out, b.gauges)
	}
	if b.tele != nil {
		out = append(out, b.tele)
	}
	if b.verifier != nil {
		out = append(out, b.verifier)
	}
	return out
}

// setSeqTime feeds the sequential baseline into the tools that compute
// Eq. 6 bounds from it.
func (b *bundle) setSeqTime(seq float64) {
	if b.rec != nil {
		b.rec.SetSeqTime(seq)
	}
	if b.tele != nil {
		b.tele.SetSeqTime(seq)
	}
}

// eventsCSV renders the attempt's canonically sorted event stream — the
// byte-identical artifact the cache and retry contracts are stated over.
func (b *bundle) eventsCSV() ([]byte, error) {
	var buf bytes.Buffer
	if err := trace.WriteEventsCSV(&buf, b.collector.Buffer().Events()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
