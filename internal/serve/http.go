package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/pop"
	"repro/internal/telemetry"
	"repro/internal/verify"
	"repro/internal/waitstate"
)

// HandlerOptions configures the HTTP surface.
type HandlerOptions struct {
	// Compat makes every /run behave like the pre-queue monitor: 409
	// while anything is queued or running, synchronous semantics
	// otherwise. Individual requests opt in with compat=1 or the
	// X-Secmon-Compat header regardless of this default.
	Compat bool
	// Logf receives handler-level diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

// handler multiplexes the monitor endpoints over the service's job
// registry. Analysis endpoints select a job with ?job= (default: the most
// recent job that actually executed).
type handler struct {
	svc    *Service
	compat bool
	logf   func(format string, args ...any)
}

// NewHandler wires the endpoint set over a service.
func NewHandler(s *Service, opts HandlerOptions) http.Handler {
	h := &handler{svc: s, compat: opts.Compat, logf: opts.Logf}
	if h.logf == nil {
		h.logf = log.Printf
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", h.handleIndex)
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/sections", h.handleSections)
	mux.HandleFunc("/trace.json", h.handleTrace)
	mux.HandleFunc("/spans.json", h.handleSpans)
	mux.HandleFunc("/waitstate.json", h.handleWaitstate)
	mux.HandleFunc("/critpath.json", h.handleCritpath)
	mux.HandleFunc("/efficiency.json", h.handleEfficiency)
	mux.HandleFunc("/faults.json", h.handleFaults)
	mux.HandleFunc("/verify.json", h.handleVerify)
	mux.HandleFunc("/profile.json", h.handleProfile)
	mux.HandleFunc("/heatmap.csv", h.handleHeatmap)
	mux.HandleFunc("/run", h.handleRun)
	mux.HandleFunc("/jobs", h.handleJobs)
	mux.HandleFunc("/jobs/{id}", h.handleJob)
	mux.HandleFunc("/jobs/{id}/cancel", h.handleJobCancel)
	mux.HandleFunc("/jobs/{id}/result.csv", h.handleJobResult)
	// Runtime profiling of the monitor process itself: with sweeps running
	// behind /run, `go tool pprof http://.../debug/pprof/profile` lands in
	// the same simulation hot paths the bench binaries' -cpuprofile covers.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	return mux
}

func (h *handler) handleIndex(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><title>secmon</title>
<h1>MPI section sweep service</h1>
<p>Multi-tenant live observability over the paper's MPI_Section tool chain:
every /run is a job in a bounded fair queue with backpressure, retries and
a result cache.</p>
<ul>
<li><a href="/run?exp=conv&amp;p=64">/run?exp=conv&amp;p=64</a> — submit a job (202 + job id; add wait=1 to block;
    params: exp=conv|conv2d|lulesh, p, steps, scale, seed, threads, tenant, nocache=1, verify=1, seq=0,
    fault=kill:rank=2,after=100, fault-seed=N, deadline=30s, compat=1 for the pre-queue 409 behavior)</li>
<li><a href="/jobs">/jobs</a> — job registry: queue, states, retries, cache hits</li>
<li>/jobs/{id} — one job's lifecycle and root cause; /jobs/{id}/cancel; /jobs/{id}/result.csv — canonical event CSV</li>
<li><a href="/metrics">/metrics</a> — Prometheus: serve_* service families plus the selected run's section metrics</li>
<li><a href="/sections">/sections</a> — JSON aggregates: Fig. 3 metrics and Eq. 6 partial bounds</li>
<li><a href="/trace.json">/trace.json</a> — Chrome trace_event JSON (open in Perfetto / chrome://tracing)</li>
<li><a href="/spans.json">/spans.json</a> — OTLP-style span export</li>
<li><a href="/waitstate.json">/waitstate.json</a> — wait-state diagnosis: why the binding section caps the speedup</li>
<li><a href="/critpath.json">/critpath.json</a> — critical path through the happens-before graph</li>
<li><a href="/efficiency.json">/efficiency.json</a> — POP efficiency tree joined with the Eq. 6 binding</li>
<li><a href="/profile.json">/profile.json</a> — streaming telemetry snapshot (constant memory at any rank count)</li>
<li><a href="/heatmap.csv">/heatmap.csv</a> — bounded rank×time wait heatmap</li>
<li><a href="/faults.json">/faults.json</a> — injected faults and failure consequences</li>
<li><a href="/verify.json">/verify.json</a> — runtime verifier report</li>
</ul>
<p>Every analysis endpoint accepts ?job=&lt;id&gt; to select a run; the default is the latest executed job.</p>`)
}

// jobView is a consistent snapshot of one job for the handlers.
type jobView struct {
	j        *Job
	id       string
	tenant   string
	state    State
	running  bool
	opts     experiments.LiveOptions
	withSeq  bool
	verifyOn bool
	attempts int
	retried  ErrorKind
	cacheHit bool
	dedups   int
	created  time.Time
	started  time.Time
	finished time.Time
	queueLat time.Duration
	seq      float64
	wall     float64
	err      error
	errKind  ErrorKind
	result   *Result
	b        *bundle
}

func snapshotJob(j *Job) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		j: j, id: j.id, tenant: j.tenant, state: j.state,
		running: !j.state.Terminal(),
		opts:    j.opts, withSeq: j.withSeq, verifyOn: j.verify,
		attempts: j.attempts, retried: j.retryKind,
		cacheHit: j.cacheHit, dedups: j.dedups,
		created: j.created, started: j.started, finished: j.finished,
		queueLat: j.queueLat, seq: j.seq,
		err: j.err, errKind: j.errKind, result: j.result, b: j.bundle,
	}
	if j.result != nil {
		v.wall = j.result.Wall
		if v.seq == 0 {
			v.seq = j.result.Seq
		}
	}
	return v
}

// jobFor selects the job an analysis endpoint describes: the explicit
// ?job= id, else the latest job that executed (and therefore has live
// observability). The string is a ready-to-serve 404 message when nil.
func (h *handler) jobFor(req *http.Request) (*jobView, string) {
	if id := req.URL.Query().Get("job"); id != "" {
		j := h.svc.Job(id)
		if j == nil {
			return nil, fmt.Sprintf("unknown job id %q (see /jobs)", id)
		}
		v := snapshotJob(j)
		if v.b == nil {
			return &v, fmt.Sprintf("job %s was served from the result cache; re-run with nocache=1 for live observability", id)
		}
		return &v, ""
	}
	j := h.svc.LatestObserved()
	if j == nil {
		return nil, "no run yet: GET /run?exp=conv&p=64 first"
	}
	v := snapshotJob(j)
	return &v, ""
}

// observedJob resolves jobFor and writes the 404 itself when the selected
// job carries no live observability.
func (h *handler) observedJob(w http.ResponseWriter, req *http.Request) *jobView {
	v, msg := h.jobFor(req)
	if msg != "" || v == nil || v.b == nil {
		if msg == "" {
			msg = "no run yet: GET /run?exp=conv&p=64 first"
		}
		http.Error(w, msg, http.StatusNotFound)
		return nil
	}
	return v
}

func (h *handler) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		h.logf("json write: %v", err)
	}
}

func (h *handler) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, "# HELP secmon_up Monitor process liveness.\n# TYPE secmon_up gauge\nsecmon_up 1\n")
	if err := h.svc.WritePrometheus(w); err != nil {
		h.logf("metrics write: %v", err)
		return
	}
	v, _ := h.jobFor(req)
	if v == nil || v.b == nil {
		return
	}
	if err := v.b.gauges.write(w); err != nil {
		h.logf("metrics write: %v", err)
		return
	}
	if v.b.rec != nil {
		if err := v.b.rec.WritePrometheus(w); err != nil {
			h.logf("metrics write: %v", err)
			return
		}
	}
	if v.b.verifier != nil {
		if err := export.WriteVerifyPrometheus(w, v.b.verifier.Counts()); err != nil {
			h.logf("metrics write: %v", err)
		}
	}
	// Streaming telemetry families: bounded-cardinality per-section series
	// straight from the constant-memory accumulators.
	if v.b.tele != nil {
		if err := v.b.tele.WritePrometheus(w, telemetry.PromOptions{}); err != nil {
			h.logf("metrics write: %v", err)
		}
	}
	// POP efficiency gauges: replay the recorded stream on demand. An
	// empty stream (scrape before the first event) simply omits the
	// families.
	if t, err := popTree(v); err == nil && t != nil {
		if err := export.WriteEfficiencyPrometheus(w, t); err != nil {
			h.logf("metrics write: %v", err)
		}
	}
}

// sectionsResponse is the /sections JSON document.
type sectionsResponse struct {
	Job        string                   `json:"job"`
	Tenant     string                   `json:"tenant"`
	State      State                    `json:"state"`
	Experiment string                   `json:"experiment"`
	Ranks      int                      `json:"ranks"`
	Steps      int                      `json:"steps"`
	Scale      int                      `json:"scale"`
	Seed       uint64                   `json:"seed"`
	TraceID    string                   `json:"trace_id"`
	Running    bool                     `json:"running"`
	Error      string                   `json:"error,omitempty"`
	WallTime   float64                  `json:"wall_seconds"`
	Dropped    int                      `json:"dropped_events"`
	Warning    string                   `json:"warning,omitempty"`
	Sections   []export.SectionSnapshot `json:"sections"`
}

func (h *handler) handleSections(w http.ResponseWriter, req *http.Request) {
	v := h.observedJob(w, req)
	if v == nil {
		return
	}
	resp := sectionsResponse{
		Job: v.id, Tenant: v.tenant, State: v.state,
		Experiment: v.opts.Experiment,
		Ranks:      v.opts.Ranks,
		Steps:      v.opts.Steps,
		Scale:      v.opts.Scale,
		Seed:       v.opts.Seed,
		Running:    v.running,
		WallTime:   v.wall,
	}
	if v.err != nil {
		resp.Error = mpi.RootCause(v.err).Error()
	}
	if v.b.rec != nil {
		resp.TraceID = v.b.rec.TraceID().String()
		if resp.Running {
			resp.WallTime = v.b.rec.WallTime()
		}
		resp.Dropped = v.b.rec.Dropped()
		resp.Warning = v.b.rec.Warning()
		resp.Sections = v.b.rec.Sections()
	}
	h.writeJSON(w, resp)
}

func (h *handler) handleTrace(w http.ResponseWriter, req *http.Request) {
	v := h.observedJob(w, req)
	if v == nil {
		return
	}
	if v.b.rec == nil {
		http.Error(w, "run executed without the exporter attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
	if err := v.b.rec.WriteChromeTrace(w); err != nil {
		h.logf("trace write: %v", err)
	}
}

func (h *handler) handleSpans(w http.ResponseWriter, req *http.Request) {
	v := h.observedJob(w, req)
	if v == nil {
		return
	}
	if v.b.rec == nil {
		http.Error(w, "run executed without the exporter attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="spans.json"`)
	if err := v.b.rec.WriteOTLP(w); err != nil {
		h.logf("spans write: %v", err)
	}
}

// faultsResponse is the /faults.json document.
type faultsResponse struct {
	Job     string `json:"job"`
	TraceID string `json:"trace_id"`
	Running bool   `json:"running"`
	// Plan is the armed fault spec ("" for a healthy run). Attempts counts
	// executions including fault-triggered retries.
	Plan     string              `json:"plan,omitempty"`
	Seed     uint64              `json:"seed,omitempty"`
	Attempts int                 `json:"attempts"`
	Counts   []export.FaultCount `json:"counts"`
	Events   []fault.Event       `json:"events"`
}

func (h *handler) handleFaults(w http.ResponseWriter, req *http.Request) {
	v := h.observedJob(w, req)
	if v == nil {
		return
	}
	resp := faultsResponse{Job: v.id, Running: v.running, Attempts: v.attempts}
	if v.opts.Fault != nil {
		resp.Plan = v.opts.Fault.String()
		resp.Seed = v.opts.Fault.Seed
	}
	if v.b.rec != nil {
		resp.TraceID = v.b.rec.TraceID().String()
		resp.Counts = v.b.rec.FaultCounts()
		resp.Events = v.b.rec.Faults()
	}
	if resp.Events == nil {
		resp.Events = []fault.Event{}
	}
	if resp.Counts == nil {
		resp.Counts = []export.FaultCount{}
	}
	h.writeJSON(w, resp)
}

// verifyResponse is the /verify.json document.
type verifyResponse struct {
	Job     string `json:"job"`
	TraceID string `json:"trace_id"`
	Running bool   `json:"running"`
	// Enabled reports whether the job was launched with verify=1; the
	// remaining fields are meaningful only when it was.
	Enabled    bool               `json:"enabled"`
	OK         bool               `json:"ok"`
	Counts     map[string]uint64  `json:"counts"`
	Violations []verify.Violation `json:"violations"`
}

func (h *handler) handleVerify(w http.ResponseWriter, req *http.Request) {
	v := h.observedJob(w, req)
	if v == nil {
		return
	}
	resp := verifyResponse{Job: v.id, Running: v.running, Enabled: v.b.verifier != nil, OK: true,
		Counts: map[string]uint64{}, Violations: []verify.Violation{}}
	if v.b.rec != nil {
		resp.TraceID = v.b.rec.TraceID().String()
	}
	if v.b.verifier != nil {
		resp.OK = v.b.verifier.OK()
		resp.Counts = v.b.verifier.Counts()
		resp.Violations = v.b.verifier.Violations()
		if resp.Violations == nil {
			resp.Violations = []verify.Violation{}
		}
	}
	h.writeJSON(w, resp)
}

func (h *handler) handleProfile(w http.ResponseWriter, req *http.Request) {
	v := h.observedJob(w, req)
	if v == nil {
		return
	}
	if v.b.tele == nil {
		http.Error(w, "run executed without streaming telemetry attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := v.b.tele.Snapshot().WriteJSON(w); err != nil {
		h.logf("profile write: %v", err)
	}
}

func (h *handler) handleHeatmap(w http.ResponseWriter, req *http.Request) {
	v := h.observedJob(w, req)
	if v == nil {
		return
	}
	if v.b.tele == nil {
		http.Error(w, "run executed without streaming telemetry attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("Content-Disposition", `attachment; filename="heatmap.csv"`)
	if err := v.b.tele.Snapshot().WriteHeatmapCSV(w); err != nil {
		h.logf("heatmap write: %v", err)
	}
}

// analyze replays the selected job's recorded stream through the
// wait-state engine.
func analyze(v *jobView) (*waitstate.Analysis, error) {
	return waitstate.Analyze(v.b.collector.Buffer().Events(), waitstate.Options{SeqTime: v.seq})
}

// efficiencyIntervals is the fixed time-resolved grid /efficiency.json
// serves; finer grids belong to secanalyze -pop -intervals N.
const efficiencyIntervals = 8

// popTree replays the selected job's recorded stream through the POP
// engine.
func popTree(v *jobView) (*pop.Tree, error) {
	return pop.Analyze(v.b.collector.Buffer().Events(),
		pop.Options{SeqTime: v.seq, Intervals: efficiencyIntervals})
}

// waitstateResponse is the /waitstate.json document.
type waitstateResponse struct {
	Job        string `json:"job"`
	Experiment string `json:"experiment"`
	Running    bool   `json:"running"`
	// Binding is the section with the largest average per-process time —
	// the Eq. 6 bound holder — with its dominant wait-state cause.
	Binding *waitstate.SectionDiagnosis `json:"binding,omitempty"`
	*waitstate.Analysis
}

func (h *handler) handleWaitstate(w http.ResponseWriter, req *http.Request) {
	v := h.observedJob(w, req)
	if v == nil {
		return
	}
	a, err := analyze(v)
	if err != nil {
		http.Error(w, "no events recorded yet: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	resp := waitstateResponse{Job: v.id, Experiment: v.opts.Experiment, Running: v.running, Analysis: a}
	resp.Binding = a.Binding()
	resp.CritPath = nil
	h.writeJSON(w, resp)
}

// critpathResponse is the /critpath.json document.
type critpathResponse struct {
	Job        string  `json:"job"`
	Experiment string  `json:"experiment"`
	Running    bool    `json:"running"`
	Ranks      int     `json:"ranks"`
	Wall       float64 `json:"wall_seconds"`
	// CritLen is the summed segment length; Coverage its share of the wall
	// (1.0 when the stream includes the section events).
	CritLen  float64 `json:"crit_len_seconds"`
	Coverage float64 `json:"coverage"`
	// PerSection maps each section to its time on the path and share of it.
	PerSection []critpathSection       `json:"per_section"`
	Segments   []waitstate.PathSegment `json:"segments"`
	Warning    string                  `json:"warning,omitempty"`
}

type critpathSection struct {
	Section string  `json:"section"`
	Seconds float64 `json:"crit_seconds"`
	Share   float64 `json:"crit_share"`
}

func (h *handler) handleCritpath(w http.ResponseWriter, req *http.Request) {
	v := h.observedJob(w, req)
	if v == nil {
		return
	}
	a, err := analyze(v)
	if err != nil {
		http.Error(w, "no events recorded yet: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	resp := critpathResponse{
		Job: v.id, Experiment: v.opts.Experiment, Running: v.running,
		Ranks: a.Ranks, Wall: a.Wall, CritLen: a.CritLen,
		Segments: a.CritPath, Warning: a.Warning,
	}
	if a.Wall > 0 {
		resp.Coverage = a.CritLen / a.Wall
	}
	for _, d := range a.Sections {
		if d.CritTime > 0 {
			resp.PerSection = append(resp.PerSection, critpathSection{
				Section: d.Section, Seconds: d.CritTime, Share: d.CritShare,
			})
		}
	}
	h.writeJSON(w, resp)
}

// efficiencyResponse is the /efficiency.json document.
type efficiencyResponse struct {
	Job        string `json:"job"`
	Experiment string `json:"experiment"`
	Running    bool   `json:"running"`
	*pop.Tree
}

func (h *handler) handleEfficiency(w http.ResponseWriter, req *http.Request) {
	v := h.observedJob(w, req)
	if v == nil {
		return
	}
	t, err := popTree(v)
	if err != nil {
		http.Error(w, "no events recorded yet: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	h.writeJSON(w, efficiencyResponse{Job: v.id, Experiment: v.opts.Experiment, Running: v.running, Tree: t})
}

// jobSummary is the /jobs row and /jobs/{id} document.
type jobSummary struct {
	ID           string    `json:"id"`
	Tenant       string    `json:"tenant"`
	State        State     `json:"state"`
	Experiment   string    `json:"experiment"`
	Ranks        int       `json:"p"`
	Steps        int       `json:"steps"`
	Scale        int       `json:"scale"`
	Seed         uint64    `json:"seed"`
	Fault        string    `json:"fault,omitempty"`
	Verify       bool      `json:"verify,omitempty"`
	Attempts     int       `json:"attempts"`
	Retried      ErrorKind `json:"retried,omitempty"`
	CacheHit     bool      `json:"cache_hit"`
	Dedups       int       `json:"deduped_submits"`
	Created      time.Time `json:"created"`
	QueueSeconds float64   `json:"queue_seconds"`
	WallSeconds  float64   `json:"wall_seconds"`
	SeqSeconds   float64   `json:"seq_seconds,omitempty"`
	TraceID      string    `json:"trace_id,omitempty"`
	Error        string    `json:"error,omitempty"`
	ErrorKind    ErrorKind `json:"error_kind,omitempty"`
}

func summarize(v *jobView) jobSummary {
	sum := jobSummary{
		ID: v.id, Tenant: v.tenant, State: v.state,
		Experiment: v.opts.Experiment, Ranks: v.opts.Ranks,
		Steps: v.opts.Steps, Scale: v.opts.Scale, Seed: v.opts.Seed,
		Verify: v.verifyOn, Attempts: v.attempts, Retried: v.retried,
		CacheHit: v.cacheHit, Dedups: v.dedups, Created: v.created,
		QueueSeconds: v.queueLat.Seconds(),
		WallSeconds:  v.wall, SeqSeconds: v.seq,
	}
	if v.opts.Fault != nil {
		sum.Fault = v.opts.Fault.String()
	}
	if v.b != nil && v.b.rec != nil {
		sum.TraceID = v.b.rec.TraceID().String()
	}
	if v.err != nil {
		sum.Error = mpi.RootCause(v.err).Error()
		sum.ErrorKind = v.errKind
	}
	return sum
}

// jobsResponse is the /jobs document.
type jobsResponse struct {
	Draining bool         `json:"draining"`
	Queued   int          `json:"queued"`
	Inflight int          `json:"inflight"`
	Cache    int          `json:"cache_entries"`
	Jobs     []jobSummary `json:"jobs"`
}

func (h *handler) handleJobs(w http.ResponseWriter, req *http.Request) {
	s := h.svc
	s.mu.Lock()
	queued := s.queue.Len()
	inflight := s.inflight
	draining := s.draining
	s.mu.Unlock()
	resp := jobsResponse{
		Draining: draining, Queued: queued, Inflight: inflight,
		Cache: s.CacheLen(), Jobs: []jobSummary{},
	}
	for _, j := range s.Jobs() {
		v := snapshotJob(j)
		resp.Jobs = append(resp.Jobs, summarize(&v))
	}
	h.writeJSON(w, resp)
}

func (h *handler) pathJob(w http.ResponseWriter, req *http.Request) *Job {
	id := req.PathValue("id")
	j := h.svc.Job(id)
	if j == nil {
		http.Error(w, fmt.Sprintf("unknown job id %q (see /jobs)", id), http.StatusNotFound)
		return nil
	}
	return j
}

func (h *handler) handleJob(w http.ResponseWriter, req *http.Request) {
	j := h.pathJob(w, req)
	if j == nil {
		return
	}
	v := snapshotJob(j)
	h.writeJSON(w, summarize(&v))
}

func (h *handler) handleJobCancel(w http.ResponseWriter, req *http.Request) {
	j := h.pathJob(w, req)
	if j == nil {
		return
	}
	cancelled := j.Cancel()
	h.writeJSON(w, map[string]any{
		"id": j.ID(), "cancelled": cancelled, "state": j.State(),
	})
}

func (h *handler) handleJobResult(w http.ResponseWriter, req *http.Request) {
	j := h.pathJob(w, req)
	if j == nil {
		return
	}
	res := j.Result()
	if res == nil {
		http.Error(w, fmt.Sprintf("job %s has no result (state %s)", j.ID(), j.State()), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("Content-Disposition", `attachment; filename="result.csv"`)
	if _, err := w.Write(res.CSV); err != nil {
		h.logf("result write: %v", err)
	}
}

// queryInt parses an integer query parameter with a default.
func queryInt(req *http.Request, key string, def int) (int, error) {
	v := req.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", key, v)
	}
	return n, nil
}

// parseRunRequest translates /run query parameters into a Request.
func parseRunRequest(req *http.Request) (Request, error) {
	q := req.URL.Query()
	out := Request{Tenant: q.Get("tenant")}
	opts := experiments.LiveOptions{Experiment: q.Get("exp")}
	var err error
	if opts.Ranks, err = queryInt(req, "p", 4); err == nil {
		if opts.Steps, err = queryInt(req, "steps", 0); err == nil {
			if opts.Scale, err = queryInt(req, "scale", 0); err == nil {
				opts.Threads, err = queryInt(req, "threads", 0)
			}
		}
	}
	if err != nil {
		return out, err
	}
	if seed := q.Get("seed"); seed != "" {
		v, err := strconv.ParseUint(seed, 10, 64)
		if err != nil {
			return out, errors.New("parameter seed is not an unsigned integer")
		}
		opts.Seed = v
	}
	// Fault knobs: a spec (internal/fault syntax) arms deterministic
	// injection in the launched job. Go's query parser rejects the spec's
	// `;` rule separator outright, so multi-rule plans ride as repeated
	// fault= parameters (one rule each) and are rejoined here.
	if spec := strings.Join(q["fault"], ";"); spec != "" {
		seed := uint64(1)
		if v := q.Get("fault-seed"); v != "" {
			if seed, err = strconv.ParseUint(v, 10, 64); err != nil {
				return out, errors.New("parameter fault-seed is not an unsigned integer")
			}
		}
		if opts.Fault, err = fault.ParseSpec(spec, seed); err != nil {
			return out, err
		}
	}
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return out, errors.New("parameter deadline is not a positive duration")
		}
		opts.Deadline = d
	}
	out.Opts = opts
	out.WithSeq = q.Get("seq") != "0"
	out.Verify = q.Get("verify") == "1"
	out.NoCache = q.Get("nocache") == "1"
	out.NoRetry = q.Get("retry") == "0"
	return out, nil
}

// runResponse renders the /run reply for a job (the full document once
// terminal; the admission echo while live).
func runResponse(v *jobView) map[string]any {
	resp := map[string]any{
		"job_id": v.id,
		"state":  v.state,
		"status": map[bool]string{true: "running", false: "finished"}[v.running],
		"tenant": v.tenant,
		"exp":    v.opts.Experiment,
		"p":      v.opts.Ranks,
		"steps":  v.opts.Steps,
		"scale":  v.opts.Scale,
		"seed":   v.opts.Seed,
	}
	if v.opts.Fault != nil {
		resp["fault"] = v.opts.Fault.String()
	}
	if v.b != nil && v.b.rec != nil {
		resp["trace_id"] = v.b.rec.TraceID().String()
	}
	if v.cacheHit {
		resp["cache_hit"] = true
	}
	if !v.running {
		resp["wall_seconds"] = v.wall
		resp["attempts"] = v.attempts
		if v.retried != "" {
			resp["retried"] = v.retried
		}
		if v.b != nil && v.b.verifier != nil {
			resp["verify_ok"] = v.b.verifier.OK()
			resp["verify_violations"] = len(v.b.verifier.Violations())
		}
		if v.err != nil {
			// The raw error tree leads with whichever secondary victim
			// happened to be collected first; distill the primary cause (an
			// injected kill outranks the revocations it provokes).
			resp["error"] = mpi.RootCause(v.err).Error()
			if v.errKind != "" {
				resp["error_kind"] = v.errKind
			}
		}
	}
	return resp
}

// submitError maps Submit failures onto the HTTP surface: shed → 429 with
// Retry-After, draining → 503, anything else → 400.
func (h *handler) submitError(w http.ResponseWriter, err error) {
	var shed *ShedError
	if errors.As(err, &shed) {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(shed.RetryAfter.Seconds()))))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]any{
			"error":               shed.Error(),
			"retry_after_seconds": math.Ceil(shed.RetryAfter.Seconds()),
		})
		return
	}
	if errors.Is(err, ErrDraining) {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// handleRun admits a job. Default: 202 + job id (or 200 with the full
// document when wait=1 / the submission was answered from the cache).
// Compat mode preserves the pre-queue single-flight contract: 409 while
// anything is queued or running.
func (h *handler) handleRun(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	request, err := parseRunRequest(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	wait := q.Get("wait") == "1"
	compat := h.compat || q.Get("compat") == "1" || req.Header.Get("X-Secmon-Compat") != ""
	if compat {
		if h.svc.Active() {
			http.Error(w, "a run is already in progress", http.StatusConflict)
			return
		}
		// The pre-queue monitor always executed and surfaced fault kills
		// as failures with their partial observability; bypass cache,
		// dedup and the retry policy.
		request.NoCache = true
		request.NoRetry = true
	}
	job, err := h.svc.Submit(request)
	if err != nil {
		h.submitError(w, err)
		return
	}
	if wait {
		if err := job.Wait(req.Context()); err != nil {
			// Client went away; the job keeps running.
			return
		}
	}
	v := snapshotJob(job)
	resp := runResponse(&v)
	w.Header().Set("Content-Type", "application/json")
	// Compat clients predate the job model and expect a plain 200 accept.
	if v.running && !compat {
		w.WriteHeader(http.StatusAccepted)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		h.logf("run response write: %v", err)
	}
}
