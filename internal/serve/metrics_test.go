package serve

import (
	"strings"
	"testing"
	"time"
)

// TestMetricsGolden scripts a deterministic traffic sequence and compares
// the full serve_* exposition (minus the timing-dependent histogram
// internals) against a golden document.
func TestMetricsGolden(t *testing.T) {
	g := newGatedRunner()
	s := NewService(Options{
		Tenants: 1, QueueDepth: 1, MaxInflight: 1,
		Runner: g.run, SeqRunner: noSeq,
	})
	jA, err := s.Submit(convRequest(1)) // dispatched
	if err != nil {
		t.Fatalf("A: %v", err)
	}
	jB, err := s.Submit(convRequest(2)) // queued
	if err != nil {
		t.Fatalf("B: %v", err)
	}
	if _, err := s.Submit(convRequest(3)); err == nil { // shed
		t.Fatal("C not shed")
	}
	jB2, err := s.Submit(convRequest(2)) // deduped onto B
	if err != nil || jB2 != jB {
		t.Fatalf("dedup: %v", err)
	}
	g.release()
	waitJob(t, jA)
	waitJob(t, jB)
	if _, err := s.Submit(convRequest(2)); err != nil { // cache hit
		t.Fatalf("cached: %v", err)
	}
	// The finishing goroutine releases its slot after closing done; wait
	// for the gauges to settle.
	deadline := time.Now().Add(5 * time.Second)
	for s.Active() {
		if time.Now().After(deadline) {
			t.Fatal("service never went idle")
		}
		time.Sleep(time.Millisecond)
	}

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	exposition := b.String()

	var samples []string
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") ||
			strings.HasPrefix(line, "serve_queue_latency_seconds") {
			continue
		}
		samples = append(samples, line)
	}
	golden := []string{
		"serve_jobs_queued_total 2",
		"serve_jobs_running_total 2",
		"serve_jobs_done_total 3", // two executions + one cache-served job
		"serve_jobs_failed_total 0",
		"serve_jobs_shed_total 1",
		"serve_jobs_retried_total 0",
		"serve_jobs_cancelled_total 0",
		"serve_jobs_deduped_total 1",
		"serve_cache_hits_total 1",
		"serve_cache_misses_total 3", // A, B and the shed attempt
		"serve_queue_depth 0",
		"serve_inflight 0",
		"serve_cache_entries 2",
		"serve_draining 0",
	}
	if got, want := strings.Join(samples, "\n"), strings.Join(golden, "\n"); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Histogram internals: cumulative buckets, +Inf == _count == dispatches.
	var infBucket, count string
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, `serve_queue_latency_seconds_bucket{le="+Inf"} `) {
			infBucket = strings.Fields(line)[1]
		}
		if strings.HasPrefix(line, "serve_queue_latency_seconds_count ") {
			count = strings.Fields(line)[1]
		}
	}
	if infBucket != "2" || count != "2" {
		t.Fatalf("histogram +Inf=%q count=%q, want 2 dispatches", infBucket, count)
	}
}

// TestLatencyHistogramBuckets pins the bucket layout: powers of two from
// 1ms, strictly increasing, and observations land in the right bucket.
func TestLatencyHistogramBuckets(t *testing.T) {
	if latencyBucketLE(0) != 0.001 {
		t.Fatalf("first bucket %v", latencyBucketLE(0))
	}
	for i := 1; i < nLatencyBuckets; i++ {
		if latencyBucketLE(i) != 2*latencyBucketLE(i-1) {
			t.Fatalf("bucket %d not a doubling: %v", i, latencyBucketLE(i))
		}
	}
	var h latencyHistogram
	h.observe(0.0005) // bucket 0 (≤1ms)
	h.observe(0.003)  // bucket 2 (≤4ms)
	h.observe(1e9)    // beyond the last bound: only count and +Inf
	if h.buckets[0].Load() != 1 || h.buckets[2].Load() != 1 || h.count.Load() != 3 {
		t.Fatalf("bucket placement: b0=%d b2=%d count=%d",
			h.buckets[0].Load(), h.buckets[2].Load(), h.count.Load())
	}
	var total uint64
	for i := 0; i < nLatencyBuckets; i++ {
		total += h.buckets[i].Load()
	}
	if total != 2 {
		t.Fatalf("overflow observation leaked into a finite bucket (total %d)", total)
	}
	if h.sumMicros.Load() < uint64(1e9*1e6) {
		t.Fatalf("sum lost the large observation: %d", h.sumMicros.Load())
	}
}
