package serve

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
)

// metrics is the service's own telemetry: cardinality-bounded like the
// telemetry_* families of PR 8 — a fixed set of counters and one fixed-
// bucket histogram, no per-job or per-tenant labels, so the exposition
// size is constant regardless of traffic.
type metrics struct {
	queued    atomic.Uint64 // jobs admitted into the queue
	running   atomic.Uint64 // jobs dispatched onto a worker slot
	done      atomic.Uint64
	failed    atomic.Uint64
	shed      atomic.Uint64
	retried   atomic.Uint64
	cancelled atomic.Uint64
	deduped   atomic.Uint64

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	queueLatency latencyHistogram
}

// latencyHistogram is a fixed power-of-two bucket histogram (1ms .. 8.192s,
// then +Inf). The sum accumulates integer microseconds so concurrent
// observers produce an order-independent total.
type latencyHistogram struct {
	buckets   [nLatencyBuckets]atomic.Uint64
	count     atomic.Uint64
	sumMicros atomic.Uint64
}

const nLatencyBuckets = 14

// latencyBucketLE returns bucket i's upper bound in seconds.
func latencyBucketLE(i int) float64 { return 0.001 * float64(uint64(1)<<i) }

func (h *latencyHistogram) observe(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	for i := 0; i < nLatencyBuckets; i++ {
		if seconds <= latencyBucketLE(i) {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumMicros.Add(uint64(seconds * 1e6))
}

// counterFamily renders one Prometheus counter family.
func counterFamily(w io.Writer, name, help string, v uint64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	return err
}

// gaugeFamily renders one Prometheus gauge family.
func gaugeFamily(w io.Writer, name, help string, v int) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	return err
}

// writePrometheus renders the counter and histogram families in the text
// exposition format. Gauges that need live service state are written by
// Service.WritePrometheus around this.
func (m *metrics) writePrometheus(w io.Writer) error {
	counters := []struct {
		name, help string
		v          *atomic.Uint64
	}{
		{"serve_jobs_queued_total", "Jobs admitted into the fair queue.", &m.queued},
		{"serve_jobs_running_total", "Jobs dispatched onto a worker slot.", &m.running},
		{"serve_jobs_done_total", "Jobs finished successfully.", &m.done},
		{"serve_jobs_failed_total", "Jobs finished with a terminal error.", &m.failed},
		{"serve_jobs_shed_total", "Requests shed at admission (HTTP 429).", &m.shed},
		{"serve_jobs_retried_total", "Fault-attributed failures retried on a disarmed plan.", &m.retried},
		{"serve_jobs_cancelled_total", "Jobs cancelled before completing.", &m.cancelled},
		{"serve_jobs_deduped_total", "Submissions attached to an identical in-flight job.", &m.deduped},
		{"serve_cache_hits_total", "Submissions answered from the result cache.", &m.cacheHits},
		{"serve_cache_misses_total", "Submissions that had to execute.", &m.cacheMisses},
	}
	for _, c := range counters {
		if err := counterFamily(w, c.name, c.help, c.v.Load()); err != nil {
			return err
		}
	}
	const hn = "serve_queue_latency_seconds"
	if _, err := fmt.Fprintf(w, "# HELP %s Queue residency from admission to dispatch.\n# TYPE %s histogram\n", hn, hn); err != nil {
		return err
	}
	var cum uint64
	for i := 0; i < nLatencyBuckets; i++ {
		cum += m.queueLatency.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", hn,
			strconv.FormatFloat(latencyBucketLE(i), 'g', -1, 64), cum); err != nil {
			return err
		}
	}
	count := m.queueLatency.count.Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", hn, count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", hn,
		strconv.FormatFloat(float64(m.queueLatency.sumMicros.Load())/1e6, 'g', -1, 64), hn, count)
	return err
}

// WritePrometheus renders the serve_* families: the counters and the
// queue-latency histogram, plus point-in-time gauges for the queue,
// inflight count, cache size and drain flag.
func (s *Service) WritePrometheus(w io.Writer) error {
	if err := s.metrics.writePrometheus(w); err != nil {
		return err
	}
	s.mu.Lock()
	queued := s.queue.Len()
	inflight := s.inflight
	draining := 0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	gauges := []struct {
		name, help string
		v          int
	}{
		{"serve_queue_depth", "Jobs currently queued across every tenant.", queued},
		{"serve_inflight", "Jobs currently running.", inflight},
		{"serve_cache_entries", "Results currently cached.", s.cache.len()},
		{"serve_draining", "1 while the service is draining.", draining},
	}
	for _, g := range gauges {
		if err := gaugeFamily(w, g.name, g.help, g.v); err != nil {
			return err
		}
	}
	return nil
}
