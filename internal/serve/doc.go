// Package serve is the robustness layer that turns the secmon monitor into
// a multi-tenant sweep service: it owns admission, scheduling, backpressure,
// retries, result caching and the HTTP surface, so that hundreds of
// concurrent /run requests degrade gracefully instead of falling over. The
// cmd/secmon binary is a thin flag-parsing shell around this package;
// cmd/secload is the in-repo load driver that hammers it.
//
// # Job model
//
// Every admitted request becomes a first-class job: /run answers 202 with a
// job id, /jobs/{id} reports the lifecycle, and every analysis endpoint
// accepts ?job= to select which run it describes. A job moves through
//
//	queued → running → done | failed | cancelled
//
// and never leaves a terminal state. Exactly one terminal transition
// happens per job; Job.Wait returns when it has. Failed jobs carry the
// deterministic root cause (mpi.RootCause over the run's error tree, the
// same distillation the sweep CSVs' error column uses) plus a coarse
// classification: injected_kill, deadlock or app.
//
// # Queue and fairness invariants
//
// Admission is a sched.FairQueue: per-tenant FIFOs of bounded depth
// (-queue-depth), a bounded tenant table (-tenants), and token-per-tenant
// round-robin dispatch onto at most -max-inflight concurrent simulations.
// The invariants:
//
//   - Bounded memory: at most tenants × depth jobs are ever queued. A
//     request that would exceed either bound is shed immediately — it is
//     never silently dropped and never queued unboundedly.
//   - Fairness: between two scheduling turns of one tenant, every other
//     tenant with queued work gets exactly one turn. A tenant flooding its
//     queue delays only itself.
//   - No admission after Drain begins; queued jobs still run (or are
//     cancelled when the drain budget expires), so every admitted job
//     reaches a terminal state even across shutdown.
//
// # Backpressure
//
// Shedding answers 429 with a Retry-After computed from observed run
// durations: an EWMA of recent wall-clock run times scaled by the current
// backlog per worker slot. Clients that honor it converge on the service's
// actual drain rate instead of retry-storming.
//
// # Deadlines
//
// Every job runs with a deadlock deadline (request deadline= parameter,
// else the service default) propagated into mpi.Config.Deadline, so a
// wedged simulation — injected drop deadlock, application hang — ends in a
// DeadlockError report instead of pinning a worker slot forever. This is
// what makes the inflight bound a real capacity guarantee.
//
// # Retries
//
// A job that dies to its own armed fault plan (an injected fail-stop, or a
// deadlock while link faults were armed) is retried with jittered
// exponential backoff, at most -retries extra attempts. The retry runs
// with the plan disarmed: the injected fault models a transient
// infrastructure failure, so the retry models rescheduling onto a healthy
// node. Because workloads are deterministic in (seed, machine, geometry)
// and tools never perturb virtual time, a successful retry produces a
// result byte-identical to the clean-path run of the same configuration —
// the idempotency contract the chaos tests pin. Application failures are
// never retried.
//
// # Result cache
//
// Successful results are cached in a bounded LRU keyed on the resolved
// run identity (experiment, machine, geometry, seeds, fault plan key,
// deadline — experiments.LiveOptions.CacheKey). Identical in-flight
// requests are single-flighted: a submit whose key matches a queued or
// running job attaches to that job and shares its id and result. A cache
// hit answers instantly with the stored artifact; cache-served jobs carry
// no live observability bundle (nothing executed), so the analysis
// endpoints direct callers to re-run with nocache=1 when they need a live
// trace. Drain persists the cache index and artifacts to -cache-dir; a
// restarted service warms itself from disk and serves byte-identical
// artifacts for keys cached by its predecessor.
package serve
