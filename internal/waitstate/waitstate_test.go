package waitstate

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/convolution"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// --- hand-crafted ground-truth traces --------------------------------------

func enter(rank int, label string, t float64) trace.Event {
	return trace.Event{T: t, Rank: rank, Kind: trace.KindSectionEnter, Label: label}
}

func leave(rank int, label string, t float64) trace.Event {
	return trace.Event{T: t, Rank: rank, Kind: trace.KindSectionLeave, Label: label}
}

func recv(rank, peer, tag int, t, sendT, postT, arrT float64) trace.Event {
	return trace.Event{
		T: t, Rank: rank, Kind: trace.KindRecv, Peer: peer, Tag: tag, Bytes: 100,
		SendT: sendT, PostT: postT, ArrT: arrT,
	}
}

func sectionByName(t *testing.T, a *Analysis, name string) SectionDiagnosis {
	t.Helper()
	for _, d := range a.Sections {
		if d.Section == name {
			return d
		}
	}
	t.Fatalf("section %q missing from analysis: %+v", name, a.Sections)
	return SectionDiagnosis{}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestLateSenderGroundTruth: rank 0 computes in WORK until t=5 and only
// then sends; rank 1 posted the receive at t=1 inside HALO and blocks until
// the payload arrives at t=6. Ground truth: HALO wait_in = 5 of which 4 is
// late-sender and 1 transfer; WORK is charged 4 of wait_out.
func TestLateSenderGroundTruth(t *testing.T) {
	events := []trace.Event{
		enter(0, "MPI_MAIN", 0), enter(0, "WORK", 0),
		{T: 5, Rank: 0, Kind: trace.KindSend, Peer: 1, Tag: 0, Bytes: 100},
		leave(0, "WORK", 5), leave(0, "MPI_MAIN", 5),
		enter(1, "MPI_MAIN", 0), enter(1, "HALO", 1),
		recv(1, 0, 0, 6, 5, 1, 6),
		leave(1, "HALO", 6), leave(1, "MPI_MAIN", 6),
	}
	a, err := Analyze(events, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Ranks != 2 || !approx(a.Wall, 6) {
		t.Fatalf("ranks=%d wall=%g, want 2/6", a.Ranks, a.Wall)
	}
	halo := sectionByName(t, a, "HALO")
	if !approx(halo.WaitIn, 5) || !approx(halo.LateSender, 4) || !approx(halo.Transfer, 1) {
		t.Errorf("HALO wait split = in %g / late %g / transfer %g, want 5/4/1",
			halo.WaitIn, halo.LateSender, halo.Transfer)
	}
	if halo.DominantCause != CauseLateSender {
		t.Errorf("HALO dominant cause = %q, want %q", halo.DominantCause, CauseLateSender)
	}
	if halo.LateRecvN != 0 {
		t.Errorf("HALO late receivers = %d, want 0", halo.LateRecvN)
	}
	work := sectionByName(t, a, "WORK")
	if !approx(work.WaitOut, 4) {
		t.Errorf("WORK wait_out = %g, want 4 (the lateness it caused)", work.WaitOut)
	}
	if work.DominantCause != CauseCompute {
		t.Errorf("WORK dominant cause = %q, want compute", work.DominantCause)
	}
	if b := a.Binding(); b == nil || b.Section != "HALO" {
		t.Errorf("binding = %+v, want HALO", b)
	}
}

// TestLateReceiverGroundTruth: the payload arrives at t=1 but rank 1 only
// posts the receive at t=3 — no blocked time, but one late-receiver with
// two seconds of mailbox sit time.
func TestLateReceiverGroundTruth(t *testing.T) {
	events := []trace.Event{
		enter(0, "MPI_MAIN", 0),
		{T: 0, Rank: 0, Kind: trace.KindSend, Peer: 1, Tag: 0, Bytes: 100},
		leave(0, "MPI_MAIN", 4),
		enter(1, "MPI_MAIN", 0), enter(1, "HALO", 3),
		recv(1, 0, 0, 3, 0, 3, 1),
		leave(1, "HALO", 3), leave(1, "MPI_MAIN", 4),
	}
	a, err := Analyze(events, Options{})
	if err != nil {
		t.Fatal(err)
	}
	halo := sectionByName(t, a, "HALO")
	if !approx(halo.WaitIn, 0) {
		t.Errorf("HALO wait_in = %g, want 0 (receiver was late, not blocked)", halo.WaitIn)
	}
	if halo.LateRecvN != 1 || !approx(halo.LateRecvSat, 2) {
		t.Errorf("late receivers = %d (sat %g), want 1 (sat 2)", halo.LateRecvN, halo.LateRecvSat)
	}
	if halo.DominantCause != CauseCompute {
		t.Errorf("HALO dominant cause = %q, want compute (no wait)", halo.DominantCause)
	}
}

// TestCollectiveWaitGroundTruth: rank 0 reaches the barrier at t=1 and
// blocks on its internal (tag<0) message until rank 1 arrives at t=4. The
// wait must land in the collective-wait bucket of the enclosing SYNC
// section and on the Barrier collective stat, not in late-sender.
func TestCollectiveWaitGroundTruth(t *testing.T) {
	events := []trace.Event{
		enter(0, "MPI_MAIN", 0), enter(0, "SYNC", 1),
		{T: 1, Rank: 0, Kind: trace.KindCollective, Label: "Barrier"},
		recv(0, 1, -1000, 4.5, 4, 1, 4.5),
		{T: 4.5, Rank: 0, Kind: trace.KindCollectiveEnd, Label: "Barrier"},
		leave(0, "SYNC", 4.5), leave(0, "MPI_MAIN", 5),
		enter(1, "MPI_MAIN", 0), enter(1, "SYNC", 4),
		{T: 4, Rank: 1, Kind: trace.KindCollective, Label: "Barrier"},
		{T: 4, Rank: 1, Kind: trace.KindSend, Peer: 0, Tag: -1000, Bytes: 0},
		{T: 4.5, Rank: 1, Kind: trace.KindCollectiveEnd, Label: "Barrier"},
		leave(1, "SYNC", 4.5), leave(1, "MPI_MAIN", 5),
	}
	a, err := Analyze(events, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sync := sectionByName(t, a, "SYNC")
	if !approx(sync.CollWait, 3.5) || !approx(sync.LateSender, 0) {
		t.Errorf("SYNC coll_wait = %g late_sender = %g, want 3.5 / 0", sync.CollWait, sync.LateSender)
	}
	if sync.DominantCause != CauseCollectiveWait {
		t.Errorf("SYNC dominant cause = %q, want %q", sync.DominantCause, CauseCollectiveWait)
	}
	if len(a.Colls) != 1 || a.Colls[0].Name != "Barrier" {
		t.Fatalf("collectives = %+v, want one Barrier", a.Colls)
	}
	b := a.Colls[0]
	if b.Spans != 2 || !approx(b.Time, 4.0) || !approx(b.Wait, 3.5) {
		t.Errorf("Barrier spans=%d time=%g wait=%g, want 2/4/3.5", b.Spans, b.Time, b.Wait)
	}
}

// TestCriticalPathGroundTruth checks the backward walk on the late-sender
// trace: the path must ride the message edge back to rank 0 and its length
// must equal the wall time exactly.
func TestCriticalPathGroundTruth(t *testing.T) {
	events := []trace.Event{
		enter(0, "MPI_MAIN", 0), enter(0, "WORK", 0),
		{T: 5, Rank: 0, Kind: trace.KindSend, Peer: 1, Tag: 0, Bytes: 100},
		leave(0, "WORK", 5), leave(0, "MPI_MAIN", 5),
		enter(1, "MPI_MAIN", 0), enter(1, "HALO", 1),
		recv(1, 0, 0, 6, 5, 1, 6),
		leave(1, "HALO", 6), leave(1, "MPI_MAIN", 6),
	}
	a, err := Analyze(events, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(a.CritLen, a.Wall) {
		t.Fatalf("critical path length %g != wall %g", a.CritLen, a.Wall)
	}
	// Earliest-first: compute [0,5] on rank 0 in WORK, transfer [5,6] into
	// rank 1's HALO.
	if len(a.CritPath) != 2 {
		t.Fatalf("path = %+v, want 2 segments", a.CritPath)
	}
	c0, c1 := a.CritPath[0], a.CritPath[1]
	if c0.Kind != "compute" || c0.Rank != 0 || c0.Section != "WORK" || !approx(c0.From, 0) || !approx(c0.To, 5) {
		t.Errorf("segment 0 = %+v, want compute rank0 WORK [0,5]", c0)
	}
	if c1.Kind != "transfer" || c1.Rank != 1 || c1.Peer != 0 || !approx(c1.From, 5) || !approx(c1.To, 6) {
		t.Errorf("segment 1 = %+v, want transfer rank1 from rank0 [5,6]", c1)
	}
	halo := sectionByName(t, a, "HALO")
	work := sectionByName(t, a, "WORK")
	if !approx(work.CritTime, 5) || !approx(halo.CritTime, 1) {
		t.Errorf("crit time WORK=%g HALO=%g, want 5/1", work.CritTime, halo.CritTime)
	}
	if !approx(work.CritShare+halo.CritShare, 1) {
		t.Errorf("crit shares sum to %g, want 1", work.CritShare+halo.CritShare)
	}
}

// TestAnalyzeEmpty rejects an empty stream.
func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Fatal("Analyze(nil) succeeded, want error")
	}
}

// recordedRun executes a small convolution run with the trace collector
// attached and returns the replayable event stream.
func recordedRun(t *testing.T, ranks, steps int) []trace.Event {
	t.Helper()
	col := trace.NewCollector(0)
	col.Messages = true
	col.Collectives = true
	cfg := mpi.Config{
		Ranks: ranks, Model: machine.NehalemCluster(), Seed: 7,
		Tools: []mpi.Tool{col}, Timeout: 2 * time.Minute,
	}
	params := convolution.Params{
		Width: 5616, Height: 3744, Steps: steps, Scale: 16, Seed: 7, SkipKernel: true,
	}
	if _, err := convolution.Run(cfg, params); err != nil {
		t.Fatal(err)
	}
	return col.Buffer().Events()
}

// TestPropertyAccounting is the satellite property test on a real recorded
// run: per rank, wait + compute + residual must equal the wall time within
// tolerance, and the critical path must tile the makespan exactly.
func TestPropertyAccounting(t *testing.T) {
	events := recordedRun(t, 4, 3)
	a, err := Analyze(events, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Ranks != 4 {
		t.Fatalf("ranks = %d, want 4", a.Ranks)
	}
	tol := 1e-9 * a.Wall
	for _, rb := range a.Ranked {
		sum := rb.Wait + rb.Compute + rb.Residual
		if math.Abs(sum-a.Wall) > tol {
			t.Errorf("rank %d: wait %g + compute %g + residual %g = %g != wall %g",
				rb.Rank, rb.Wait, rb.Compute, rb.Residual, sum, a.Wall)
		}
		if rb.Wait < 0 || rb.Wait > rb.Wall+tol {
			t.Errorf("rank %d wait %g outside [0, wall %g]", rb.Rank, rb.Wait, rb.Wall)
		}
	}
	// The backward walk starts at the makespan and MPI_MAIN opens at t=0 on
	// every rank, so the path must tile [0, wall].
	if math.Abs(a.CritLen-a.Wall) > tol {
		t.Errorf("critical path %g != wall %g", a.CritLen, a.Wall)
	}
	var share float64
	for _, d := range a.Sections {
		share += d.CritShare
		if d.WaitIn+tol < d.LateSender+d.Transfer+d.CollWait {
			t.Errorf("%s: wait split exceeds wait_in", d.Section)
		}
	}
	if math.Abs(share-1) > 1e-9 {
		t.Errorf("critical-path shares sum to %g, want 1", share)
	}
	// Path segments must chain contiguously in time.
	for i := 1; i < len(a.CritPath); i++ {
		if math.Abs(a.CritPath[i].From-a.CritPath[i-1].To) > tol {
			t.Errorf("path gap between segment %d and %d: %+v -> %+v",
				i-1, i, a.CritPath[i-1], a.CritPath[i])
		}
	}
}

// TestDiagnosisDeterministic: analyzing the same deterministic run twice
// must produce identical reports (the experiment CSV columns depend on it).
func TestDiagnosisDeterministic(t *testing.T) {
	a1, err := Analyze(recordedRun(t, 3, 2), Options{SeqTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(recordedRun(t, 3, 2), Options{SeqTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Render() != a2.Render() {
		t.Error("two analyses of the same deterministic run differ")
	}
}

// TestRoundTripThroughCSV: the diagnosis must survive the CSV codec — the
// offline secanalyze path reads exactly what the collector wrote.
func TestRoundTripThroughCSV(t *testing.T) {
	events := recordedRun(t, 3, 2)
	var sb bytes.Buffer
	if err := trace.WriteEventsCSV(&sb, events); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadCSV(&sb)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := Analyze(events, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Render() != a2.Render() {
		t.Error("analysis differs after CSV round trip")
	}
}

// TestDeadPeerWaitClass: a dead-peer event classifies as its own wait
// component, attributed to the section stamped on the event, dominates the
// cause when largest, and flags the whole analysis as degraded.
func TestDeadPeerWaitClass(t *testing.T) {
	events := []trace.Event{
		{T: 0, Rank: 0, Kind: trace.KindSectionEnter, Label: "MPI_MAIN"},
		{T: 0, Rank: 1, Kind: trace.KindSectionEnter, Label: "MPI_MAIN"},
		{T: 1, Rank: 1, Kind: trace.KindSectionEnter, Label: "HALO"},
		// Rank 1 blocks at t=1 in HALO; the peer dies at t=4 (3s lost).
		{T: 4, Rank: 1, Kind: trace.KindDeadPeer, Label: "HALO", Peer: 0, PostT: 1},
		{T: 4, Rank: 1, Kind: trace.KindSectionLeave, Label: "HALO"},
		// The injected kill itself.
		{T: 1, Rank: 0, Kind: trace.KindFault, Label: "kill", Peer: -1},
		{T: 1, Rank: 0, Kind: trace.KindSectionLeave, Label: "MPI_MAIN"},
		{T: 4.5, Rank: 1, Kind: trace.KindSectionLeave, Label: "MPI_MAIN"},
	}
	a, err := Analyze(events, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Faults != 1 || a.DeadWaits != 1 {
		t.Fatalf("Faults=%d DeadWaits=%d, want 1 and 1", a.Faults, a.DeadWaits)
	}
	var halo *SectionDiagnosis
	for i := range a.Sections {
		if a.Sections[i].Section == "HALO" {
			halo = &a.Sections[i]
		}
	}
	if halo == nil {
		t.Fatalf("no HALO diagnosis in %+v", a.Sections)
	}
	if halo.DeadWait != 3 || halo.DeadPeerN != 1 || halo.WaitIn != 3 {
		t.Errorf("HALO dead wait = %v (n=%d, wait_in=%v), want 3s/1/3s", halo.DeadWait, halo.DeadPeerN, halo.WaitIn)
	}
	if halo.DominantCause != CauseDeadPeer {
		t.Errorf("HALO cause = %q, want %q", halo.DominantCause, CauseDeadPeer)
	}
	out := a.Render()
	if !strings.Contains(out, "DEGRADED RUN") || !strings.Contains(out, "dead-peer") {
		t.Errorf("report does not surface the degradation:\n%s", out)
	}
	// A healthy analysis must not carry the degraded banner.
	healthy, err := Analyze(events[:3], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(healthy.Render(), "DEGRADED") {
		t.Error("healthy run rendered as degraded")
	}
}
