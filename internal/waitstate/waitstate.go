// Package waitstate explains *why* a section binds the speedup. The Eq. 6
// partial bounds (internal/prof, internal/export) identify WHICH
// MPI_Section caps S(n0, p); this package consumes the tool layer's
// replayable event stream (internal/trace: section enter/leave, matched
// send/recv pairs with mpi.MatchInfo timestamps, collective participation
// spans) and computes the Scalasca-style diagnosis of WHY:
//
//   - per-message wait-state classification — late-sender (send posted
//     after the receive), residual transfer wait, late-receiver (message
//     sat in the mailbox), and collective wait (blocked time on tag<0
//     algorithm-internal traffic) — attributed to the enclosing section;
//   - the critical path through the per-rank happens-before graph: compute
//     segments stitched by the message edges whose arrival determined a
//     receive's completion, with per-section critical-path share;
//   - a per-section diagnosis record {section, p, Twait_in, Twait_out,
//     Tcrit_share, dominant_cause} joined against the Eq. 6 bound.
//
// The engine is offline and deterministic: the same event slice always
// yields the same Analysis, so experiment sweeps can emit diagnosis columns
// that are byte-identical under any -j.
package waitstate

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// DefaultEps is the timestamp tolerance used when Options.Eps is zero:
// virtual clocks are exact float64 arithmetic, so only representation
// error needs absorbing.
const DefaultEps = 1e-12

// Options configures an analysis.
type Options struct {
	// SeqTime is the sequential baseline Σ_j f_j(n0, 1); when positive each
	// section also gets its Eq. 6 partial speedup bound.
	SeqTime float64
	// Eps is the absolute timestamp tolerance (0 = DefaultEps).
	Eps float64
	// CommFrac is the wait-in fraction of a section's inclusive time above
	// which the dominant cause is a wait state rather than "compute"
	// (0 = 0.2, the conventional "communication-bound" knee).
	CommFrac float64
}

// Cause labels a section's dominant diagnosis.
const (
	CauseCompute        = "compute"
	CauseLateSender     = "late-sender"
	CauseTransfer       = "transfer"
	CauseCollectiveWait = "collective-wait"
	// CauseDeadPeer marks a section whose waits were dominated by blocking
	// on ranks that had died (or whose communicator was revoked) — time
	// that no amount of overlap can recover, only fault tolerance.
	CauseDeadPeer = "dead-peer"
)

// SectionDiagnosis is the per-section record the tentpole promises:
// {section, p, Twait_in, Twait_out, Tcrit_share, dominant_cause} joined
// against the Eq. 6 bound. Times are summed over ranks (virtual seconds).
type SectionDiagnosis struct {
	Section string `json:"section"`
	P       int    `json:"p"`
	// Total is the summed-over-ranks inclusive section time; AvgPerProc is
	// Total/P — the denominator of the Eq. 6 bound.
	Total      float64 `json:"total_seconds"`
	AvgPerProc float64 `json:"avg_per_proc_seconds"`
	// WaitIn is blocked receive time spent inside the section, split into
	// the late-sender, transfer, collective and dead-peer components.
	WaitIn     float64 `json:"wait_in_seconds"`
	LateSender float64 `json:"late_sender_seconds"`
	Transfer   float64 `json:"transfer_seconds"`
	CollWait   float64 `json:"collective_wait_seconds"`
	// DeadWait is time spent blocked on a dead or revoked peer (the trace's
	// dead-peer events: woken at the failure's propagation, T-PostT lost);
	// DeadPeerN counts those aborted waits.
	DeadWait  float64 `json:"dead_peer_wait_seconds,omitempty"`
	DeadPeerN int     `json:"dead_peer_total,omitempty"`
	// WaitOut is the late-sender wait this section CAUSED at other ranks'
	// receives (attributed to the sender's enclosing section at send time).
	WaitOut float64 `json:"wait_out_seconds"`
	// LateRecvN counts receives posted after the payload had arrived;
	// LateRecvSat sums how long those payloads sat in the mailbox.
	LateRecvN   int     `json:"late_receiver_total"`
	LateRecvSat float64 `json:"late_receiver_sat_seconds"`
	// Recvs counts classified receives inside the section.
	Recvs int `json:"recv_total"`
	// CritTime / CritShare are the section's time on the critical path and
	// its share of the path length.
	CritTime  float64 `json:"crit_seconds"`
	CritShare float64 `json:"crit_share"`
	// Bound is the Eq. 6 partial speedup bound (0 without Options.SeqTime).
	Bound float64 `json:"partial_bound,omitempty"`
	// DominantCause is one of the Cause* labels.
	DominantCause string `json:"dominant_cause"`
}

// RankSection is the per-(section, rank) accounting the POP efficiency
// tree (internal/pop) consumes: each rank's inclusive time in the section,
// the classified wait components inside it, and the thread-team compute
// region aggregates (KindOmpRegion events attributed to their enclosing
// section). Times are virtual seconds. The slice is ordered by section
// label then rank, so derived reports are deterministic.
type RankSection struct {
	Section string
	Rank    int
	// Incl is the rank's summed inclusive time over the section's
	// enter/leave instances; Wait the classified blocked receive time
	// attributed inside, split into the same components as
	// SectionDiagnosis.
	Incl       float64
	Wait       float64
	LateSender float64
	Transfer   float64
	CollWait   float64
	DeadWait   float64
	// OmpElapsed is thread-team region time inside the section on this
	// rank, OmpSingle the single-thread duration of the same work, and
	// OmpBusy the allocated thread-seconds (Σ team × elapsed). MaxTeam is
	// the largest team observed (0 when the trace has no region events).
	OmpElapsed float64
	OmpSingle  float64
	OmpBusy    float64
	MaxTeam    int
}

// RankBreakdown is the per-rank accounting the property tests pin down:
// Wait + Compute + Residual == Wall (the run's makespan) by construction,
// with Wait measured from the classified receives and Residual the idle
// tail after the rank's last event.
type RankBreakdown struct {
	Rank     int     `json:"rank"`
	Wall     float64 `json:"wall_seconds"` // rank's own last-event time
	Wait     float64 `json:"wait_seconds"` // classified blocked receive time
	Compute  float64 `json:"compute_seconds"`
	Residual float64 `json:"residual_seconds"`
}

// CollectiveStat aggregates one collective operation's participation.
type CollectiveStat struct {
	Name  string  `json:"name"`
	Spans int     `json:"spans"`        // per-rank participation spans seen
	Time  float64 `json:"span_seconds"` // summed span duration over ranks
	Wait  float64 `json:"wait_seconds"` // blocked time on its internal traffic
}

// PathSegment is one piece of the critical path, walked backward from the
// last-finishing rank. Kind is "compute" (the rank was executing) or
// "transfer" (the path rode a message edge; Peer is the sending rank).
type PathSegment struct {
	Rank    int     `json:"rank"`
	From    float64 `json:"from"`
	To      float64 `json:"to"`
	Kind    string  `json:"kind"`
	Section string  `json:"section"`
	Peer    int     `json:"peer,omitempty"`
}

// Analysis is the full diagnosis of one run.
type Analysis struct {
	Ranks    int                `json:"ranks"`
	Wall     float64            `json:"wall_seconds"`
	SeqTime  float64            `json:"seq_seconds,omitempty"`
	Msgs     int                `json:"messages"`
	Sections []SectionDiagnosis `json:"sections"`
	Ranked   []RankBreakdown    `json:"rank_breakdown"`
	Colls    []CollectiveStat   `json:"collectives"`
	// CritPath is the backward-walked path (earliest segment first);
	// CritLen is its summed length — equal to Wall when the trace includes
	// section events (MPI_MAIN opens at t=0 on every rank).
	CritPath []PathSegment `json:"critical_path"`
	CritLen  float64       `json:"crit_len_seconds"`
	// Faults counts injected-fault events in the stream (kill/drop/delay/
	// trunc); DeadWaits counts the dead-peer waits classified. A nonzero
	// value flags the run as degraded — its bounds describe a faulty
	// execution, not the healthy baseline.
	Faults    int `json:"faults,omitempty"`
	DeadWaits int `json:"dead_peer_waits,omitempty"`
	// Warning carries analysis caveats (e.g. a truncated event stream).
	Warning string `json:"warning,omitempty"`
	// RankSections is the per-(section, rank) matrix behind Sections —
	// the input of the POP efficiency factors (internal/pop). Excluded
	// from JSON to keep the waitstate documents at their summary grain.
	RankSections []RankSection `json:"-"`
}

// changePoint tracks the innermost section (or collective) on one rank
// from time t on.
type changePoint struct {
	t     float64
	label string
}

// rankTimeline is the per-rank replay state the analysis queries.
type rankTimeline struct {
	sections []changePoint // innermost section label over time
	colls    []changePoint // innermost open collective name over time
	recvs    []trace.Event // recv events, time-sorted
	deads    []trace.Event // dead-peer wait events, time-sorted
	omps     []trace.Event // thread-team compute regions, time-sorted
	firstT   float64
	lastT    float64
	seen     bool
}

// labelAt returns the innermost label at time t (the latest change point
// at or before t), or "".
func labelAt(cps []changePoint, t float64) string {
	i := sort.Search(len(cps), func(i int) bool { return cps[i].t > t })
	if i == 0 {
		return ""
	}
	return cps[i-1].label
}

// labelAtSend resolves the section a SEND belongs to. MessageSent fires
// before a coincident SectionLeave in program order, but the replay pops
// the section first on timestamp ties — so look just before the stamp and
// fall back to the exact lookup (zero-overhead models collapse enter and
// send onto one timestamp).
func labelAtSend(cps []changePoint, t, eps float64) string {
	if lbl := labelAt(cps, t-eps); lbl != "" {
		return lbl
	}
	return labelAt(cps, t)
}

// Analyze runs the engine over a replayable event stream. Events may be in
// any order (they are normalized with trace.SortEvents); section events are
// required for attribution, message events for wait classification.
func Analyze(events []trace.Event, opts Options) (*Analysis, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("waitstate: empty event stream")
	}
	if opts.Eps <= 0 {
		opts.Eps = DefaultEps
	}
	if opts.CommFrac <= 0 {
		opts.CommFrac = 0.2
	}
	evs := append([]trace.Event(nil), events...)
	trace.SortEvents(evs)

	// --- Replay: per-rank timelines, section inclusive totals, collectives.
	type stackEntry struct {
		label  string
		enterT float64
	}
	ranks := map[int]*rankTimeline{}
	tl := func(r int) *rankTimeline {
		rt := ranks[r]
		if rt == nil {
			rt = &rankTimeline{}
			ranks[r] = rt
		}
		return rt
	}
	secStacks := map[int][]stackEntry{}  // per-rank section stack
	collStacks := map[int][]stackEntry{} // per-rank collective stack
	diag := map[string]*SectionDiagnosis{}
	sec := func(label string) *SectionDiagnosis {
		d := diag[label]
		if d == nil {
			d = &SectionDiagnosis{Section: label}
			diag[label] = d
		}
		return d
	}
	colls := map[string]*CollectiveStat{}
	coll := func(name string) *CollectiveStat {
		cs := colls[name]
		if cs == nil {
			cs = &CollectiveStat{Name: name}
			colls[name] = cs
		}
		return cs
	}
	type rsKey struct {
		rank  int
		label string
	}
	rsecs := map[rsKey]*RankSection{}
	rsec := func(r int, label string) *RankSection {
		k := rsKey{r, label}
		rs := rsecs[k]
		if rs == nil {
			rs = &RankSection{Section: label, Rank: r}
			rsecs[k] = rs
		}
		return rs
	}
	var unmatched, faults int
	for _, e := range evs {
		rt := tl(e.Rank)
		if !rt.seen {
			rt.firstT, rt.seen = e.T, true
		}
		if e.T > rt.lastT {
			rt.lastT = e.T
		}
		switch e.Kind {
		case trace.KindSectionEnter:
			secStacks[e.Rank] = append(secStacks[e.Rank], stackEntry{e.Label, e.T})
			rt.sections = append(rt.sections, changePoint{e.T, e.Label})
		case trace.KindSectionLeave:
			st := secStacks[e.Rank]
			if n := len(st); n > 0 && st[n-1].label == e.Label {
				sec(e.Label).Total += e.T - st[n-1].enterT
				rsec(e.Rank, e.Label).Incl += e.T - st[n-1].enterT
				secStacks[e.Rank] = st[:n-1]
				top := ""
				if n > 1 {
					top = st[n-2].label
				}
				rt.sections = append(rt.sections, changePoint{e.T, top})
			} else {
				unmatched++
			}
		case trace.KindCollective:
			collStacks[e.Rank] = append(collStacks[e.Rank], stackEntry{e.Label, e.T})
			rt.colls = append(rt.colls, changePoint{e.T, e.Label})
		case trace.KindCollectiveEnd:
			st := collStacks[e.Rank]
			if n := len(st); n > 0 && st[n-1].label == e.Label {
				cs := coll(e.Label)
				cs.Spans++
				cs.Time += e.T - st[n-1].enterT
				collStacks[e.Rank] = st[:n-1]
				top := ""
				if n > 1 {
					top = st[n-2].label
				}
				rt.colls = append(rt.colls, changePoint{e.T, top})
			} else {
				unmatched++
			}
		case trace.KindRecv:
			rt.recvs = append(rt.recvs, e)
		case trace.KindDeadPeer:
			rt.deads = append(rt.deads, e)
		case trace.KindOmpRegion:
			rt.omps = append(rt.omps, e)
		case trace.KindFault:
			faults++
		}
	}
	p := len(ranks)
	var wall float64
	for _, rt := range ranks {
		if rt.lastT > wall {
			wall = rt.lastT
		}
	}

	// --- Wait-state classification per received message.
	rankWait := map[int]float64{}
	var msgs int
	for r, rt := range ranks {
		for _, e := range rt.recvs {
			msgs++
			wait := e.T - e.PostT
			if wait < 0 {
				wait = 0
			}
			rankWait[r] += wait
			lbl := labelAt(rt.sections, e.PostT)
			d := sec(lbl)
			rs := rsec(r, lbl)
			d.Recvs++
			d.WaitIn += wait
			rs.Wait += wait
			if sat := e.PostT - e.ArrT; sat > opts.Eps {
				d.LateRecvN++
				d.LateRecvSat += sat
			}
			if e.Tag < 0 {
				// Algorithm-internal collective traffic: the blocked time is
				// the rank waiting for the collective to make progress.
				d.CollWait += wait
				rs.CollWait += wait
				if name := labelAt(rt.colls, e.PostT); name != "" {
					coll(name).Wait += wait
				}
				continue
			}
			late := e.SendT - e.PostT
			if late < 0 {
				late = 0
			}
			if late > wait {
				late = wait
			}
			d.LateSender += late
			d.Transfer += wait - late
			rs.LateSender += late
			rs.Transfer += wait - late
			// Charge the lateness back to whatever the SENDER was doing when
			// it finally posted the send: that section's Twait_out.
			if late > 0 {
				if srt := ranks[e.Peer]; srt != nil {
					if lbl := labelAtSend(srt.sections, e.SendT, opts.Eps); lbl != "" {
						sec(lbl).WaitOut += late
					}
				}
			}
		}
		// Dead-peer waits: time the rank spent parked on an operation a
		// failure aborted. The emitting runtime stamps the section directly
		// (Label), so attribution survives even a section-free trace.
		for _, e := range rt.deads {
			wait := e.T - e.PostT
			if wait < 0 {
				wait = 0
			}
			rankWait[r] += wait
			lbl := e.Label
			if lbl == "" {
				lbl = labelAt(rt.sections, e.PostT)
			}
			d := sec(lbl)
			d.WaitIn += wait
			d.DeadWait += wait
			d.DeadPeerN++
			rs := rsec(r, lbl)
			rs.Wait += wait
			rs.DeadWait += wait
		}
		// Thread-team compute regions: attribute each region to the section
		// open at its start (the region ran entirely inside it — regions do
		// not straddle section boundaries) and aggregate the POP
		// thread-efficiency inputs.
		for _, e := range rt.omps {
			rs := rsec(r, labelAt(rt.sections, e.PostT))
			elapsed := e.T - e.PostT
			if elapsed < 0 {
				elapsed = 0
			}
			rs.OmpElapsed += elapsed
			rs.OmpSingle += e.ArrT
			rs.OmpBusy += float64(e.Bytes) * elapsed
			if e.Bytes > rs.MaxTeam {
				rs.MaxTeam = e.Bytes
			}
		}
	}

	// --- Critical path: backward walk from the last-finishing rank.
	crit, critSec := criticalPath(ranks, wall, opts.Eps)
	var critLen float64
	for _, s := range crit {
		critLen += s.To - s.From
	}

	// --- Assemble: diagnosis records, rank breakdown, collectives.
	a := &Analysis{
		Ranks: p, Wall: wall, SeqTime: opts.SeqTime, Msgs: msgs,
		CritPath: crit, CritLen: critLen, Faults: faults,
	}
	for _, rt := range ranks {
		a.DeadWaits += len(rt.deads)
	}
	if unmatched > 0 {
		a.Warning = fmt.Sprintf("warning: %d unmatched section/collective boundary events; the stream is truncated and aggregates are incomplete", unmatched)
	}
	for label, d := range diag {
		if label == "" {
			// Receives outside any section (trace without section events):
			// keep them under a pseudo-section so nothing is silently lost.
			d.Section = "(no section)"
		}
		d.P = p
		if p > 0 {
			d.AvgPerProc = d.Total / float64(p)
		}
		if opts.SeqTime > 0 && d.AvgPerProc > 0 {
			d.Bound = opts.SeqTime / d.AvgPerProc
		}
		d.CritTime = critSec[label]
		if critLen > 0 {
			d.CritShare = d.CritTime / critLen
		}
		d.DominantCause = dominantCause(d, opts.CommFrac)
		a.Sections = append(a.Sections, *d)
	}
	sort.Slice(a.Sections, func(i, j int) bool {
		if a.Sections[i].Total != a.Sections[j].Total {
			return a.Sections[i].Total > a.Sections[j].Total
		}
		return a.Sections[i].Section < a.Sections[j].Section
	})
	a.RankSections = make([]RankSection, 0, len(rsecs))
	for _, rs := range rsecs {
		out := *rs
		if out.Section == "" {
			out.Section = "(no section)"
		}
		a.RankSections = append(a.RankSections, out)
	}
	sort.Slice(a.RankSections, func(i, j int) bool {
		if a.RankSections[i].Section != a.RankSections[j].Section {
			return a.RankSections[i].Section < a.RankSections[j].Section
		}
		return a.RankSections[i].Rank < a.RankSections[j].Rank
	})
	rankIDs := make([]int, 0, p)
	for r := range ranks {
		rankIDs = append(rankIDs, r)
	}
	sort.Ints(rankIDs)
	for _, r := range rankIDs {
		rt := ranks[r]
		wait := rankWait[r]
		rw := rt.lastT - rt.firstT
		compute := rw - wait
		if compute < 0 {
			compute = 0
		}
		a.Ranked = append(a.Ranked, RankBreakdown{
			Rank: r, Wall: rw, Wait: wait,
			Compute:  compute,
			Residual: wall - rt.firstT - wait - compute,
		})
	}
	for _, cs := range colls {
		a.Colls = append(a.Colls, *cs)
	}
	sort.Slice(a.Colls, func(i, j int) bool {
		if a.Colls[i].Wait != a.Colls[j].Wait {
			return a.Colls[i].Wait > a.Colls[j].Wait
		}
		return a.Colls[i].Name < a.Colls[j].Name
	})
	return a, nil
}

// dominantCause classifies a section: compute-bound unless waits exceed
// commFrac of the inclusive time, then the largest wait component wins.
func dominantCause(d *SectionDiagnosis, commFrac float64) string {
	if d.Total <= 0 || d.WaitIn <= 0 {
		return CauseCompute
	}
	if d.WaitIn/d.Total < commFrac {
		return CauseCompute
	}
	cause, best := CauseLateSender, d.LateSender
	if d.Transfer > best {
		cause, best = CauseTransfer, d.Transfer
	}
	if d.CollWait > best {
		cause, best = CauseCollectiveWait, d.CollWait
	}
	if d.DeadWait > best {
		cause = CauseDeadPeer
	}
	return cause
}

// criticalPath walks the happens-before graph backward from the
// last-finishing rank. At each receive whose completion was determined by
// the message's arrival (T − ArrT <= eps with the payload arriving after
// the post), the path jumps along the message edge to the sender at its
// send time; everything between binding receives is compute attributed to
// the innermost section split at its change points. It returns the
// segments earliest-first plus the per-section path time (transfer time is
// charged to the receiving section that blocked on it).
func criticalPath(ranks map[int]*rankTimeline, wall float64, eps float64) ([]PathSegment, map[string]float64) {
	perSec := map[string]float64{}
	if len(ranks) == 0 {
		return nil, perSec
	}
	// Start on the rank that finishes last (lowest id on ties).
	cur, curT := -1, math.Inf(-1)
	for r, rt := range ranks {
		if rt.lastT > curT || (rt.lastT == curT && r < cur) {
			cur, curT = r, rt.lastT
		}
	}
	var rev []PathSegment
	addCompute := func(rt *rankTimeline, rank int, from, to float64) {
		if to <= from {
			return
		}
		// Split [from, to] at the innermost-section change points so the
		// per-section share is exact, walking backward.
		hi := to
		i := sort.Search(len(rt.sections), func(i int) bool { return rt.sections[i].t > to }) - 1
		for hi > from {
			lo, label := from, ""
			if i >= 0 {
				label = rt.sections[i].label
				if rt.sections[i].t > lo {
					lo = rt.sections[i].t
				}
			}
			if hi > lo {
				rev = append(rev, PathSegment{Rank: rank, From: lo, To: hi, Kind: "compute", Section: label})
				perSec[label] += hi - lo
			}
			hi = lo
			i--
		}
	}
	// The walk terminates: each transfer edge moves strictly back in time
	// (or the iteration cap fires on a degenerate zero-latency chain).
	maxHops := 16
	for _, rt := range ranks {
		maxHops += len(rt.recvs) + 1
	}
	for hop := 0; hop < maxHops; hop++ {
		rt := ranks[cur]
		// Latest binding receive at or before curT.
		recvs := rt.recvs
		i := sort.Search(len(recvs), func(i int) bool { return recvs[i].T > curT }) - 1
		for i >= 0 {
			e := recvs[i]
			if curT-e.T < -eps {
				i--
				continue
			}
			if e.T-e.ArrT <= eps && e.ArrT-e.PostT > -eps && ranks[e.Peer] != nil && e.SendT < e.T-eps {
				break
			}
			i--
		}
		if i < 0 {
			addCompute(rt, cur, rt.firstT, curT)
			break
		}
		e := recvs[i]
		addCompute(rt, cur, e.T, curT)
		label := labelAt(rt.sections, e.PostT)
		rev = append(rev, PathSegment{
			Rank: cur, From: e.SendT, To: e.T, Kind: "transfer", Section: label, Peer: e.Peer,
		})
		perSec[label] += e.T - e.SendT
		cur, curT = e.Peer, e.SendT
	}
	// Earliest-first for readers.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev, perSec
}

// Binding returns the section with the smallest Eq. 6 bound — the largest
// average per-process time, excluding the implicit MPI_MAIN umbrella — or
// nil when the trace has no section records. This is the section that caps
// the speedup; its DominantCause says why.
func (a *Analysis) Binding() *SectionDiagnosis {
	var best *SectionDiagnosis
	for i := range a.Sections {
		d := &a.Sections[i]
		if d.Section == "MPI_MAIN" || d.Section == "(no section)" || d.Total <= 0 {
			continue
		}
		if best == nil || d.AvgPerProc > best.AvgPerProc ||
			(d.AvgPerProc == best.AvgPerProc && d.Section < best.Section) {
			best = d
		}
	}
	return best
}
