package waitstate

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// The committed smoke trace is a small recorded convolution run (4 ranks,
// 2 steps) in the replayable CSV interchange format. CI replays it through
// `secanalyze -waitstate` to prove the offline pipeline end to end;
// regenerate it after an intentional format or model change with
//
//	go test ./internal/waitstate -run SmokeTrace -update-smoke
var updateSmoke = flag.Bool("update-smoke", false, "regenerate testdata/smoke_trace.csv")

const smokeTracePath = "testdata/smoke_trace.csv"

func TestSmokeTraceCurrent(t *testing.T) {
	if *updateSmoke {
		events := recordedRun(t, 4, 2)
		if err := os.MkdirAll(filepath.Dir(smokeTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(smokeTracePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteEventsCSV(f, events); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d events)", smokeTracePath, len(events))
	}
	f, err := os.Open(smokeTracePath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-smoke)", err)
	}
	defer f.Close()
	events, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	// The committed file must stay replayable AND byte-identical to what the
	// current runtime records — a drifted trace format or timing model shows
	// up here before it breaks the CI smoke step.
	fresh := recordedRun(t, 4, 2)
	if len(events) != len(fresh) {
		t.Fatalf("committed trace has %d events, current runtime records %d (regenerate with -update-smoke)",
			len(events), len(fresh))
	}
	a, err := Analyze(events, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Ranks != 4 || a.Msgs == 0 || a.Warning != "" {
		t.Fatalf("smoke analysis degenerate: ranks=%d msgs=%d warning=%q", a.Ranks, a.Msgs, a.Warning)
	}
	if diff := a.CritLen - a.Wall; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("critical path %g does not tile the wall %g", a.CritLen, a.Wall)
	}
	if a.Binding() == nil {
		t.Error("smoke trace yields no binding section")
	}
	// The replayed analysis must match the in-memory one exactly.
	af, err := Analyze(fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != af.Render() {
		t.Error("analysis of the committed trace differs from a fresh recording (regenerate with -update-smoke)")
	}
}
