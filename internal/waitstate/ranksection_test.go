package waitstate

import (
	"math"
	"sort"
	"testing"
)

// TestRankSectionsConsistency pins the contract internal/pop builds on:
// the per-rank section rows must tile the aggregate diagnosis exactly —
// summing Incl and the wait components over ranks reproduces each
// SectionDiagnosis — and the slice arrives sorted by (section, rank).
func TestRankSectionsConsistency(t *testing.T) {
	events := recordedRun(t, 4, 2)
	a, err := Analyze(events, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.RankSections) == 0 {
		t.Fatal("recorded run produced no RankSections")
	}
	if !sort.SliceIsSorted(a.RankSections, func(i, j int) bool {
		ri, rj := a.RankSections[i], a.RankSections[j]
		if ri.Section != rj.Section {
			return ri.Section < rj.Section
		}
		return ri.Rank < rj.Rank
	}) {
		t.Error("RankSections not sorted by (section, rank)")
	}
	type sums struct{ incl, wait, late, transfer, coll, dead float64 }
	bySec := map[string]*sums{}
	for _, rs := range a.RankSections {
		if rs.Rank < 0 || rs.Rank >= a.Ranks {
			t.Errorf("RankSection %s: rank %d outside [0,%d)", rs.Section, rs.Rank, a.Ranks)
		}
		s := bySec[rs.Section]
		if s == nil {
			s = &sums{}
			bySec[rs.Section] = s
		}
		s.incl += rs.Incl
		s.wait += rs.Wait
		s.late += rs.LateSender
		s.transfer += rs.Transfer
		s.coll += rs.CollWait
		s.dead += rs.DeadWait
	}
	tol := 1e-9 * a.Wall * float64(a.Ranks)
	for _, d := range a.Sections {
		s := bySec[d.Section]
		if s == nil {
			t.Errorf("section %s has no per-rank rows", d.Section)
			continue
		}
		for _, c := range []struct {
			name      string
			got, want float64
		}{
			{"Incl vs Total", s.incl, d.Total},
			{"Wait vs WaitIn", s.wait, d.WaitIn},
			{"LateSender", s.late, d.LateSender},
			{"Transfer", s.transfer, d.Transfer},
			{"CollWait", s.coll, d.CollWait},
			{"DeadWait", s.dead, d.DeadWait},
		} {
			if math.Abs(c.got-c.want) > tol {
				t.Errorf("section %s: Σ_r %s = %v, aggregate %v", d.Section, c.name, c.got, c.want)
			}
		}
	}
}
