package waitstate

import (
	"fmt"
	"strings"
)

// Render formats the analysis as the text report cmd/secanalyze -waitstate
// prints: the binding verdict first, then the per-section diagnosis table,
// the critical-path summary, the collective stats and the per-rank
// accounting.
func (a *Analysis) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "wait-state analysis: %d ranks, wall %.6gs, %d messages classified\n",
		a.Ranks, a.Wall, a.Msgs)
	if a.Faults > 0 || a.DeadWaits > 0 {
		fmt.Fprintf(&sb, "DEGRADED RUN: %d injected faults, %d waits aborted by dead/revoked peers — bounds describe the faulty execution\n",
			a.Faults, a.DeadWaits)
	}
	if a.Warning != "" {
		sb.WriteString(a.Warning + "\n")
	}
	if b := a.Binding(); b != nil {
		fmt.Fprintf(&sb, "binding section: %s (avg per-proc %.6gs", b.Section, b.AvgPerProc)
		if b.Bound > 0 {
			fmt.Fprintf(&sb, ", Eq. 6 bound %.4g", b.Bound)
		}
		fmt.Fprintf(&sb, ") — dominant cause: %s\n", b.DominantCause)
	}
	sb.WriteString("\nsection diagnosis (times summed over ranks):\n")
	fmt.Fprintf(&sb, "%-14s %12s %12s %12s %12s %12s %12s %12s %8s %6s  %s\n",
		"section", "total", "wait_in", "late_send", "transfer", "coll_wait", "dead_wait", "wait_out", "crit%", "bound", "cause")
	for _, d := range a.Sections {
		bound := "-"
		if d.Bound > 0 {
			bound = fmt.Sprintf("%.3g", d.Bound)
		}
		fmt.Fprintf(&sb, "%-14s %12.6g %12.6g %12.6g %12.6g %12.6g %12.6g %12.6g %7.1f%% %6s  %s\n",
			d.Section, d.Total, d.WaitIn, d.LateSender, d.Transfer, d.CollWait, d.DeadWait, d.WaitOut,
			100*d.CritShare, bound, d.DominantCause)
	}
	fmt.Fprintf(&sb, "\ncritical path: %d segments, length %.6gs (%.4g%% of wall)\n",
		len(a.CritPath), a.CritLen, pct(a.CritLen, a.Wall))
	byKind := map[string]float64{}
	for _, s := range a.CritPath {
		byKind[s.Kind] += s.To - s.From
	}
	fmt.Fprintf(&sb, "  compute %.6gs, transfer %.6gs\n", byKind["compute"], byKind["transfer"])
	if len(a.Colls) > 0 {
		sb.WriteString("\ncollectives:\n")
		for _, cs := range a.Colls {
			fmt.Fprintf(&sb, "  %-12s %6d spans, %12.6gs in-span, %12.6gs wait\n",
				cs.Name, cs.Spans, cs.Time, cs.Wait)
		}
	}
	sb.WriteString("\nper-rank accounting (wait + compute + residual = wall):\n")
	for _, rb := range a.Ranked {
		fmt.Fprintf(&sb, "  rank %4d  wall %12.6g  wait %12.6g  compute %12.6g  residual %12.6g\n",
			rb.Rank, rb.Wall, rb.Wait, rb.Compute, rb.Residual)
	}
	return sb.String()
}

func pct(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return 100 * num / den
}
