package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 {
		t.Fatalf("zero value not neutral: %+v", w)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	w.AddN(xs)
	if w.N() != len(xs) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if !almostEq(w.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("Var = %g, want %g", w.Var(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %g/%g, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordSingleSampleVariance(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Var() != 0 || w.Std() != 0 {
		t.Errorf("variance of one sample must be 0, got %g", w.Var())
	}
	if w.Min() != 42 || w.Max() != 42 {
		t.Errorf("Min/Max of single sample wrong: %g/%g", w.Min(), w.Max())
	}
}

// sanitize maps arbitrary fuzz floats into a finite, moderate range so the
// property under test is numerical stability of the algorithm, not float64
// overflow.
func sanitize(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		out = append(out, math.Mod(x, 1e6))
	}
	return out
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		a, b = sanitize(a), sanitize(b)
		var whole, left, right Welford
		whole.AddN(a)
		whole.AddN(b)
		left.AddN(a)
		right.AddN(b)
		left.Merge(right)
		return whole.N() == left.N() &&
			almostEq(whole.Mean(), left.Mean(), 1e-9) &&
			almostEq(whole.Var(), left.Var(), 1e-9)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var a, b Welford
	b.AddN([]float64{1, 2, 3})
	a.Merge(b)
	if a.N() != 3 || !almostEq(a.Mean(), 2, 1e-12) {
		t.Fatalf("merge into empty failed: %+v", a)
	}
	var empty Welford
	a.Merge(empty)
	if a.N() != 3 {
		t.Fatalf("merge of empty changed state: %+v", a)
	}
}

func TestMeanMinMaxErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Median(nil); err != ErrEmpty {
		t.Errorf("Median(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMustMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMean(nil) did not panic")
		}
	}()
	MustMean(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%g): %v", c.p, err)
		}
		if !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("negative percentile accepted")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("percentile > 100 accepted")
	}
	// Input must not be reordered.
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileSingleElement(t *testing.T) {
	got, err := Percentile([]float64{7}, 99)
	if err != nil || got != 7 {
		t.Errorf("Percentile single = %g, %v", got, err)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 8})
	if err != nil || !almostEq(got, 2.8284271247461903, 1e-12) {
		t.Errorf("GeoMean = %g, %v", got, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean accepted zero")
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Error("GeoMean(nil) must be ErrEmpty")
	}
}

func TestLinFitRecoversLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3 + 2*v
	}
	a, b, err := LinFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, 3, 1e-9) || !almostEq(b, 2, 1e-9) {
		t.Errorf("LinFit = (%g, %g), want (3, 2)", a, b)
	}
}

func TestLinFitErrors(t *testing.T) {
	if _, _, err := LinFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := LinFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := LinFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestImbalance(t *testing.T) {
	got, err := Imbalance([]float64{1, 1, 1, 1})
	if err != nil || got != 0 {
		t.Errorf("balanced imbalance = %g, %v", got, err)
	}
	got, _ = Imbalance([]float64{1, 3})
	if !almostEq(got, 0.5, 1e-12) {
		t.Errorf("imbalance = %g, want 0.5", got)
	}
	if _, err := Imbalance(nil); err != ErrEmpty {
		t.Error("Imbalance(nil) must be ErrEmpty")
	}
	got, _ = Imbalance([]float64{0, 0})
	if got != 0 {
		t.Errorf("zero-mean imbalance = %g, want 0", got)
	}
}

func TestCoefVar(t *testing.T) {
	got, err := CoefVar([]float64{5, 5, 5})
	if err != nil || got != 0 {
		t.Errorf("constant CV = %g, %v", got, err)
	}
	if _, err := CoefVar(nil); err != ErrEmpty {
		t.Error("CoefVar(nil) must be ErrEmpty")
	}
}

func TestVarianceMatchesWelford(t *testing.T) {
	f := func(xs []float64) bool {
		clean := sanitize(xs)
		var w Welford
		w.AddN(clean)
		return almostEq(Variance(clean), w.Var(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(1234), NewRNG(1234)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(1235)
	same := 0
	a = NewRNG(1234)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds collide too often: %d/1000", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(7)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.Normal(10, 2))
	}
	if !almostEq(w.Mean(), 10, 0.05) {
		t.Errorf("normal mean = %g, want ~10", w.Mean())
	}
	if !almostEq(w.Std(), 2, 0.05) {
		t.Errorf("normal std = %g, want ~2", w.Std())
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(-9, 0.5); v <= 0 {
			t.Fatalf("lognormal produced non-positive %g", v)
		}
	}
}

func TestRNGExp(t *testing.T) {
	r := NewRNG(11)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.Exp(4))
	}
	if !almostEq(w.Mean(), 0.25, 0.02) {
		t.Errorf("exp mean = %g, want ~0.25", w.Mean())
	}
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	r.Exp(0)
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Errorf("Intn never produced %d", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestSum(t *testing.T) {
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
	if Sum([]float64{1.5, 2.5, -1}) != 3 {
		t.Error("Sum wrong")
	}
}
