// Package stats provides the small statistical toolkit used throughout the
// repository: online (Welford) accumulators, order statistics, simple
// regression, and deterministic pseudo-random noise sources for the
// machine-model jitter.
//
// Everything here is allocation-conscious: profilers call into this package
// once per section event, and experiment sweeps aggregate millions of
// samples.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reducers that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Welford accumulates mean and variance online in a numerically stable way.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddN incorporates every sample in xs.
func (w *Welford) AddN(xs []float64) {
	for _, x := range xs {
		w.Add(x)
	}
}

// N reports the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean reports the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var reports the unbiased sample variance (0 when n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std reports the unbiased sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min reports the smallest sample (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max reports the largest sample (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Merge folds other into w, as if every sample of other had been added to w.
// Chan–Golub–LeVeque parallel combination.
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	w.m2 += other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	w.mean += delta * float64(other.n) / float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or an error when xs is empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// MustMean is Mean for callers that have already checked non-emptiness.
// It panics on an empty slice.
func MustMean(xs []float64) float64 {
	m, err := Mean(xs)
	if err != nil {
		panic(err)
	}
	return m
}

// Min returns the smallest element of xs, or an error when xs is empty.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs, or an error when xs is empty.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Variance returns the unbiased sample variance of xs (0 when len < 2).
func Variance(xs []float64) float64 {
	var w Welford
	w.AddN(xs)
	return w.Var()
}

// Std returns the unbiased sample standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or an error when xs is empty.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// GeoMean returns the geometric mean of xs; every element must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean needs positive samples")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// LinFit fits y = a + b*x by ordinary least squares and returns (a, b).
// It errs when fewer than two distinct x values are supplied.
func LinFit(x, y []float64) (a, b float64, err error) {
	if len(x) != len(y) {
		return 0, 0, errors.New("stats: LinFit length mismatch")
	}
	if len(x) < 2 {
		return 0, 0, ErrEmpty
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	n := float64(len(x))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, errors.New("stats: LinFit degenerate x values")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b, nil
}

// CoefVar returns the coefficient of variation (std/mean) of xs; an error
// when xs is empty and 0 when the mean is 0.
func CoefVar(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, nil
	}
	return Std(xs) / m, nil
}

// Imbalance reports the classic HPC load-imbalance factor max/mean - 1 for a
// set of per-rank times. A perfectly balanced set yields 0.
func Imbalance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	mx, _ := Max(xs)
	if m == 0 {
		return 0, nil
	}
	return mx/m - 1, nil
}
