package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xorshift128+). The machine model uses one RNG per rank
// so that jitter is reproducible for a given seed and independent of
// goroutine scheduling. The zero value is NOT valid; use NewRNG.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded deterministically from seed.
//
//seclint:allocs-ok RNG construction at rank bring-up: once per rank
func NewRNG(seed uint64) *RNG {
	// splitmix64 to spread the seed into two non-zero words.
	sm := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r := &RNG{s0: sm(), s1: sm()}
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a sample from N(mean, sigma^2) via Box–Muller.
func (r *RNG) Normal(mean, sigma float64) float64 {
	// Guard against log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + sigma*z
}

// LogNormal returns a sample whose logarithm is N(mu, sigma^2). This is the
// canonical heavy-tailed model for network latency jitter.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponential sample with the given rate (lambda).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}
