package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/stats"
)

// Config describes one parallel run.
type Config struct {
	// Ranks is the number of MPI processes (required, >= 1).
	Ranks int
	// ThreadsPerRank is the software team each rank may use for
	// OpenMP-style regions (default 1). It determines placement density.
	ThreadsPerRank int
	// Model is the machine cost model; nil selects an ideal machine with
	// one node per rank.
	Model *machine.Model
	// Seed drives every stochastic model component (jitter, OS noise).
	// Runs with equal seeds and configs produce identical virtual times.
	Seed uint64
	// Tools are attached in order; each receives every profiling hook.
	// They are shared across ranks and must be safe for concurrent use.
	Tools []Tool
	// Wallclock switches timing from the virtual clock to real elapsed
	// time: rank clocks read the host monotonic clock, model charges
	// become no-ops, and messages arrive when they are delivered. Used to
	// validate the runtime and the tools against physical execution; the
	// paper-scale experiments always use virtual time.
	Wallclock bool
	// CheckSections enables verification of the MPI_Section collective
	// invariants (identical enter/exit sequences on every rank of a
	// communicator, perfect nesting). The paper recommends the checks be
	// selectively enabled; they default off like its reference runtime.
	CheckSections bool
	// Timeout aborts the run if the ranks do not finish within this real
	// duration (0 means no watchdog). Intended for tests: a deadlocked
	// topology otherwise hangs the process. When it fires, the run is
	// revoked so blocked rank goroutines unwind instead of leaking.
	Timeout time.Duration
	// Fault attaches a deterministic fault-injection plan (nil = no
	// faults). The runtime consults it on section entry and the
	// point-to-point hot paths; with a nil plan those sites reduce to one
	// nil check and the 0 allocs/op contract is preserved.
	Fault *fault.Plan
	// Deadline enables the global deadlock detector: when every live rank
	// has been blocked with no progress for this long, the run aborts
	// with a DeadlockError listing each rank's parked operation. 0
	// disables detection (and its per-rank bookkeeping entirely).
	Deadline time.Duration
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Ranks <= 0 {
		return out, fmt.Errorf("mpi: Ranks must be >= 1, got %d", out.Ranks)
	}
	if out.ThreadsPerRank <= 0 {
		out.ThreadsPerRank = 1
	}
	if out.Model == nil {
		out.Model = machine.Ideal(out.Ranks, out.ThreadsPerRank)
	}
	return out, nil
}

// Report summarizes a completed run.
type Report struct {
	// WallTime is the virtual makespan: the largest final rank clock.
	WallTime float64
	// RankTimes holds each rank's final virtual clock.
	RankTimes []float64
	// Faults is the canonically sorted fault log: plan-injected events
	// plus observed consequences (empty for healthy unfaulted runs).
	Faults []fault.Event
	// Dead lists the world ranks that failed, ascending.
	Dead []int
}

// World owns the shared state of one run.
type World struct {
	cfg       Config
	placement *machine.Placement
	ranks     []*rankState
	nextComm  int64
	commMu    sync.Mutex

	sectionErrMu sync.Mutex
	sectionErrs  []error

	// Fault tolerance state (ft.go). ftMu guards the communicator
	// registry, the dead mask, the first-failure poison and the pending
	// fault-tolerant collectives.
	ftMu      sync.Mutex
	comms     []*commShared
	dead      []bool
	failPi    *poisonInfo
	ftPending map[*ftState]struct{}

	// Run-level abort (deadlock detector / watchdog).
	aborted   chan struct{}
	abortOnce sync.Once
	abortErr  error

	// Fault injection (faultinject.go); nil when no plan is armed.
	fi       *faultState
	faultMu  sync.Mutex
	faults   []fault.Event
	faultObs []FaultObserver
	// computeObs are the attached tools that also implement ComputeObserver,
	// collected once at Init so ComputeParallel's hook check is a cheap
	// len() == 0 in the common (unobserved) case.
	computeObs []ComputeObserver

	// Deadlock detection (deadlock.go).
	progress atomic.Uint64
}

// rankState is the per-rank mutable context, touched only by its goroutine.
type rankState struct {
	id    int
	clock float64
	rng   *stats.RNG
	world *World
	start time.Time // wallclock epoch (Wallclock mode only)

	// Scratch buffers for the typed send path and the tree collectives.
	// They are per-rank (hence shared by every communicator of the rank,
	// which is safe: one goroutine drives a rank, and collectives do not
	// nest), grow to the high-water mark of the run, and keep the steady
	// state of Reduce/Allreduce and SendFloat64s allocation-free.
	encScratch []byte    // wire encoding for typed sends
	accScratch []float64 // reduction accumulator
	vecScratch []float64 // decoded peer contribution during reductions

	// Fault injection (nil/zero unless a plan is armed; see armFaults).
	ops     uint64   // point-to-point op counter
	killAt  uint64   // fail-stop threshold (0 = none)
	linkSeq []uint64 // per-destination send ordinals for link rules

	// Deadlock detection (nil unless Config.Deadline > 0).
	blk *blockedInfo
}

func (r *rankState) advance(d float64) {
	if r.world.cfg.Wallclock {
		return
	}
	if d > 0 {
		r.clock += d
	}
}

// now reports the rank's current time: the virtual clock, or real elapsed
// seconds in Wallclock mode.
func (r *rankState) now() float64 {
	if r.world.cfg.Wallclock {
		return time.Since(r.start).Seconds()
	}
	return r.clock
}

// advanceTo moves the clock to at least t (no-op in Wallclock mode, where
// time moves by itself).
func (r *rankState) advanceTo(t float64) {
	if r.world.cfg.Wallclock {
		return
	}
	if t > r.clock {
		r.clock = t
	}
}

// MainSection is the label of the implicit outermost section, entered in
// Init and left in Finalize, as the paper specifies.
const MainSection = "MPI_MAIN"

// Run executes fn on cfg.Ranks rank goroutines and blocks until every rank
// returns. The *Comm passed to fn is that rank's handle on MPI_COMM_WORLD,
// already inside the implicit MPI_MAIN section. Rank errors are aggregated;
// section-invariant violations (when enabled) are reported after the run.
//
// Failure semantics: a panic in fn, an injected fail-stop from Config.Fault
// or an error return all remove the rank from the computation as a
// RankError and propagate ULFM-style — every communicator the dead rank
// belongs to is revoked, so peers blocked on it fail with an error
// wrapping ErrRevoked instead of hanging (see Comm.Shrink / Comm.Agree for
// how survivors continue). With Config.Deadline set, a run in which every
// live rank is blocked with no possible progress aborts with a
// DeadlockError naming each rank's parked operation. RootCause distills
// the aggregate error back to the originating failure.
func Run(cfg Config, fn func(*Comm) error) (*Report, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	placement, err := machine.NewPlacement(c.Model, c.Ranks, c.ThreadsPerRank)
	if err != nil {
		return nil, err
	}
	w := &World{cfg: c, placement: placement}
	w.dead = make([]bool, c.Ranks)
	w.ftPending = make(map[*ftState]struct{})
	w.aborted = make(chan struct{})
	w.ranks = make([]*rankState, c.Ranks)
	for i := range w.ranks {
		w.ranks[i] = &rankState{
			id:    i,
			rng:   stats.NewRNG(mixSeed(c.Seed, uint64(i))),
			world: w,
		}
	}
	w.armFaults(c.Fault)
	var det *detector
	if c.Deadline > 0 {
		det = newDetector(w, c.Deadline)
	}
	shared := w.newCommShared(identityGroup(c.Ranks))

	info := &WorldInfo{
		Size:           c.Ranks,
		ThreadsPerRank: c.ThreadsPerRank,
		Model:          c.Model,
	}
	for _, tool := range c.Tools {
		tool.Init(info)
		if fo, ok := tool.(FaultObserver); ok {
			w.faultObs = append(w.faultObs, fo)
		}
		if co, ok := tool.(ComputeObserver); ok {
			w.computeObs = append(w.computeObs, co)
		}
	}

	errs := make([]error, c.Ranks)
	finals := make([]float64, c.Ranks)
	done := make(chan struct{})
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(c.Ranks)
	for i := 0; i < c.Ranks; i++ {
		w.ranks[i].start = start
		go func(rank int) {
			defer wg.Done()
			rs := w.ranks[rank]
			comm := &Comm{shared: shared, rank: rank, rs: rs}
			defer func() {
				if p := recover(); p != nil {
					re := &RankError{Rank: rank}
					if kp, ok := p.(*killPanic); ok {
						re.Section, re.Err, re.killed = kp.section, kp.err, true
					} else {
						re.Section = comm.sectionLabel()
						re.Err = fmt.Errorf("panic: %v", p)
					}
					errs[rank] = re
					w.rankDied(rank, re, rs.now())
				}
				rs.markFinished()
				finals[rank] = rs.now()
			}()
			comm.SectionEnter(MainSection)
			err := fn(comm)
			comm.SectionExit(MainSection)
			if err != nil {
				// An erroring rank has left the computation: propagate
				// its departure so peers blocked on it unwind too.
				re := &RankError{Rank: rank, Section: comm.sectionLabel(), Err: err}
				errs[rank] = re
				w.rankDied(rank, re, rs.now())
			}
		}(i)
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	if det != nil {
		go det.run()
		defer det.stop()
	}
	if c.Timeout > 0 {
		select {
		case <-done:
		case <-time.After(c.Timeout):
			// Revoke the run so blocked rank goroutines unwind instead
			// of leaking, then give them a grace period. Ranks stuck in
			// real (non-runtime) work cannot be saved; preserve the old
			// leak-and-return behavior for them.
			w.abort(fmt.Errorf("mpi: run exceeded %v watchdog (deadlock?)", c.Timeout))
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				return nil, w.abortReason()
			}
		}
	} else {
		<-done
	}

	rep := &Report{RankTimes: make([]float64, c.Ranks)}
	for i := range w.ranks {
		rep.RankTimes[i] = finals[i]
		if finals[i] > rep.WallTime {
			rep.WallTime = finals[i]
		}
	}
	rep.Faults = w.faultLog()
	rep.Dead = w.deadRanks()
	for _, tool := range c.Tools {
		tool.Finalize(rep)
	}

	var all []error
	for _, e := range errs {
		if e != nil {
			all = append(all, e)
		}
	}
	if aerr := w.abortReason(); aerr != nil {
		all = append(all, aerr)
	}
	w.sectionErrMu.Lock()
	all = append(all, w.sectionErrs...)
	w.sectionErrMu.Unlock()
	if len(all) > 0 {
		return rep, errors.Join(all...)
	}
	return rep, nil
}

// mixSeed derives a per-rank seed from the run seed; splitmix64 finalizer.
func mixSeed(seed, rank uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(rank+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func identityGroup(n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return g
}

func (w *World) reportSectionError(err error) {
	w.sectionErrMu.Lock()
	defer w.sectionErrMu.Unlock()
	// Bound the list: one misnested loop could otherwise flood memory.
	if len(w.sectionErrs) < 64 {
		w.sectionErrs = append(w.sectionErrs, err)
	}
}
