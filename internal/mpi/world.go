package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/stats"
)

// Config describes one parallel run.
type Config struct {
	// Ranks is the number of MPI processes (required, >= 1).
	Ranks int
	// ThreadsPerRank is the software team each rank may use for
	// OpenMP-style regions (default 1). It determines placement density.
	ThreadsPerRank int
	// Model is the machine cost model; nil selects an ideal machine with
	// one node per rank.
	Model *machine.Model
	// Seed drives every stochastic model component (jitter, OS noise).
	// Runs with equal seeds and configs produce identical virtual times.
	Seed uint64
	// Tools are attached in order; each receives every profiling hook.
	// They are shared across ranks and must be safe for concurrent use.
	Tools []Tool
	// Wallclock switches timing from the virtual clock to real elapsed
	// time: rank clocks read the host monotonic clock, model charges
	// become no-ops, and messages arrive when they are delivered. Used to
	// validate the runtime and the tools against physical execution; the
	// paper-scale experiments always use virtual time.
	Wallclock bool
	// CheckSections enables verification of the MPI_Section collective
	// invariants (identical enter/exit sequences on every rank of a
	// communicator, perfect nesting). The paper recommends the checks be
	// selectively enabled; they default off like its reference runtime.
	CheckSections bool
	// Timeout aborts the run if the ranks do not finish within this real
	// duration (0 means no watchdog). Intended for tests: a deadlocked
	// topology otherwise hangs the process. When it fires, the run is
	// revoked so blocked rank goroutines unwind instead of leaking.
	Timeout time.Duration
	// Fault attaches a deterministic fault-injection plan (nil = no
	// faults). The runtime consults it on section entry and the
	// point-to-point hot paths; with a nil plan those sites reduce to one
	// nil check and the 0 allocs/op contract is preserved.
	Fault *fault.Plan
	// Deadline enables the global deadlock detector: when every live rank
	// has been blocked with no progress for this long, the run aborts
	// with a DeadlockError listing each rank's parked operation. 0
	// disables detection (and its per-rank bookkeeping entirely).
	Deadline time.Duration
	// Lazy enables session-style rank bring-up: rank state and goroutines
	// are materialized shard by shard — by a background spawner and on
	// demand when a message first targets a shard — instead of all at
	// Run(). Virtual times, CSVs and tool hooks are identical to an eager
	// run; only real-time bring-up order changes. Huge worlds start
	// producing traffic while most of their ranks are still unmaterialized.
	Lazy bool
	// Active restricts the run to a session: fn executes only on ranks for
	// which Active returns true, and ranks outside the session are never
	// materialized (they report a zero final clock). Implies Lazy. The
	// world communicator still spans every declared rank, so a session
	// must confine collectives (including Split) to communicators whose
	// members are all active; point-to-point traffic between active ranks
	// is unrestricted. nil means every rank is active.
	Active func(rank int) bool
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Ranks <= 0 {
		return out, fmt.Errorf("mpi: Ranks must be >= 1, got %d", out.Ranks)
	}
	if out.ThreadsPerRank <= 0 {
		out.ThreadsPerRank = 1
	}
	if out.Model == nil {
		out.Model = machine.Ideal(out.Ranks, out.ThreadsPerRank)
	}
	return out, nil
}

// Report summarizes a completed run.
type Report struct {
	// WallTime is the virtual makespan: the largest final rank clock.
	WallTime float64
	// RankTimes holds each rank's final virtual clock.
	RankTimes []float64
	// Faults is the canonically sorted fault log: plan-injected events
	// plus observed consequences (empty for healthy unfaulted runs).
	Faults []fault.Event
	// Dead lists the world ranks that failed, ascending.
	Dead []int
	// DeclaredRanks is the configured world size; ActiveRanks how many of
	// them the session ran fn on; MaterializedRanks how many active ranks
	// the runtime actually brought up (equal to ActiveRanks unless the run
	// aborted before lazy bring-up completed).
	DeclaredRanks     int
	ActiveRanks       int
	MaterializedRanks int
}

// World owns the shared state of one run.
type World struct {
	cfg       Config
	placement *machine.Placement
	// shards covers the declared ranks in fixed-size slabs (shard.go).
	// Headers exist from Run; state slabs materialize on first touch.
	shards   []rankShard
	nextComm int64
	commMu   sync.Mutex

	// Session / lazy bring-up (shard.go).
	lazy         bool           // lazy materialization enabled
	active       func(int) bool // nil = all ranks active
	activeCount  int            // ranks the session runs fn on
	runFn        func(*Comm) error
	worldComm    *commShared
	errs         []error   // per-world-rank errors, written by rankMain
	finals       []float64 // per-world-rank final clocks
	wg           sync.WaitGroup
	startT       time.Time
	materialized atomic.Int64 // active ranks brought up so far

	sectionErrMu sync.Mutex
	sectionErrs  []error

	// Fault tolerance state (ft.go). ftMu guards the communicator
	// registry, the dead mask, the first-failure poison and the pending
	// fault-tolerant collectives.
	ftMu      sync.Mutex
	comms     []*commShared
	dead      []bool
	failPi    *poisonInfo
	ftPending map[*ftState]struct{}

	// Run-level abort (deadlock detector / watchdog).
	aborted   chan struct{}
	abortOnce sync.Once
	abortErr  error

	// Fault injection (faultinject.go); nil when no plan is armed.
	fi       *faultState
	faultMu  sync.Mutex
	faults   []fault.Event
	faultObs []FaultObserver
	// computeObs are the attached tools that also implement ComputeObserver,
	// collected once at Init so ComputeParallel's hook check is a cheap
	// len() == 0 in the common (unobserved) case.
	computeObs []ComputeObserver

	// Deadlock detection (deadlock.go). detect arms the per-rank
	// bookkeeping; liveRanks/blockedRanks are the O(1) counters the
	// detector tick reads instead of scanning every rank.
	detect       bool
	progress     atomic.Uint64
	liveRanks    atomic.Int64
	blockedRanks atomic.Int64
}

// rankState is the per-rank mutable context, touched only by its goroutine.
// States live in shard slabs (shard.go); rng == nil marks a rank outside
// the session, whose state exists but never runs.
type rankState struct {
	id    int
	clock float64
	rng   *stats.RNG
	world *World
	shard *rankShard
	start time.Time // wallclock epoch (Wallclock mode only)

	// Scratch buffers for the typed send path and the tree collectives.
	// They are per-rank (hence shared by every communicator of the rank,
	// which is safe: one goroutine drives a rank, and collectives do not
	// nest), grow to the high-water mark of the run, and keep the steady
	// state of Reduce/Allreduce and SendFloat64s allocation-free.
	encScratch []byte    // wire encoding for typed sends
	accScratch []float64 // reduction accumulator
	vecScratch []float64 // decoded peer contribution during reductions
	// Batched-delivery scratch (SendGhostBatch): prepared envelopes, the
	// matched receives to wake after the shard lock drops, and the
	// sender-owned copy of each message's send stamp — envelope ownership
	// transfers at delivery, so the tool hooks must not read envelopes
	// the receivers may already have freed.
	batchEnvs    []*envelope
	batchMatches []postedMatch
	batchSendTs  []float64

	// Fault injection (nil/zero unless a plan is armed; see armFaults).
	ops     uint64   // point-to-point op counter
	killAt  uint64   // fail-stop threshold (0 = none)
	linkSeq []uint64 // per-destination send ordinals for link rules

	// Deadlock detection (nil unless Config.Deadline > 0).
	blk *blockedInfo
}

func (r *rankState) advance(d float64) {
	if r.world.cfg.Wallclock {
		return
	}
	if d > 0 {
		r.clock += d
	}
}

// now reports the rank's current time: the virtual clock, or real elapsed
// seconds in Wallclock mode.
func (r *rankState) now() float64 {
	if r.world.cfg.Wallclock {
		return time.Since(r.start).Seconds()
	}
	return r.clock
}

// advanceTo moves the clock to at least t (no-op in Wallclock mode, where
// time moves by itself).
func (r *rankState) advanceTo(t float64) {
	if r.world.cfg.Wallclock {
		return
	}
	if t > r.clock {
		r.clock = t
	}
}

// MainSection is the label of the implicit outermost section, entered in
// Init and left in Finalize, as the paper specifies.
const MainSection = "MPI_MAIN"

// Run executes fn on cfg.Ranks rank goroutines and blocks until every rank
// returns. The *Comm passed to fn is that rank's handle on MPI_COMM_WORLD,
// already inside the implicit MPI_MAIN section. Rank errors are aggregated;
// section-invariant violations (when enabled) are reported after the run.
//
// Failure semantics: a panic in fn, an injected fail-stop from Config.Fault
// or an error return all remove the rank from the computation as a
// RankError and propagate ULFM-style — every communicator the dead rank
// belongs to is revoked, so peers blocked on it fail with an error
// wrapping ErrRevoked instead of hanging (see Comm.Shrink / Comm.Agree for
// how survivors continue). With Config.Deadline set, a run in which every
// live rank is blocked with no possible progress aborts with a
// DeadlockError naming each rank's parked operation. RootCause distills
// the aggregate error back to the originating failure.
func Run(cfg Config, fn func(*Comm) error) (*Report, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	placement, err := machine.NewPlacement(c.Model, c.Ranks, c.ThreadsPerRank)
	if err != nil {
		return nil, err
	}
	w := &World{cfg: c, placement: placement}
	w.dead = make([]bool, c.Ranks)
	w.ftPending = make(map[*ftState]struct{})
	w.aborted = make(chan struct{})
	w.runFn = fn
	w.active = c.Active
	w.lazy = c.Lazy || c.Active != nil
	w.detect = c.Deadline > 0

	// Shard headers for the whole world; slabs materialize on first touch.
	nShards := (c.Ranks + shardSize - 1) / shardSize
	w.shards = make([]rankShard, nShards)
	for s := range w.shards {
		sh := &w.shards[s]
		sh.lo = s << shardBits
		sh.n = c.Ranks - sh.lo
		if sh.n > shardSize {
			sh.n = shardSize
		}
	}
	w.activeCount = c.Ranks
	if w.active != nil {
		w.activeCount = 0
		for i := 0; i < c.Ranks; i++ {
			if w.active(i) {
				w.activeCount++
			}
		}
	}

	w.armFaults(c.Fault)
	var det *detector
	if w.detect {
		w.liveRanks.Store(int64(w.activeCount))
		det = newDetector(w, c.Deadline)
	}
	w.worldComm = w.newCommShared(identityGroup(c.Ranks))

	info := &WorldInfo{
		Size:           c.Ranks,
		ThreadsPerRank: c.ThreadsPerRank,
		Model:          c.Model,
		Stats:          &RuntimeStats{w: w},
	}
	for _, tool := range c.Tools {
		tool.Init(info)
		if fo, ok := tool.(FaultObserver); ok {
			w.faultObs = append(w.faultObs, fo)
		}
		if co, ok := tool.(ComputeObserver); ok {
			w.computeObs = append(w.computeObs, co)
		}
	}

	w.errs = make([]error, c.Ranks)
	w.finals = make([]float64, c.Ranks)
	done := make(chan struct{})
	w.startT = time.Now()
	w.wg.Add(w.activeCount)
	if w.lazy {
		// Session bring-up: a background spawner walks the shards in order
		// while senders demand-materialize the shards they first target.
		go w.spawnAll()
	} else {
		for s := range w.shards {
			w.ensureShard(&w.shards[s])
		}
	}
	go func() {
		w.wg.Wait()
		close(done)
	}()
	if det != nil {
		go det.run()
		defer det.stop()
	}
	if c.Timeout > 0 {
		select {
		case <-done:
		case <-time.After(c.Timeout):
			// Revoke the run so blocked rank goroutines unwind instead
			// of leaking, then give them a grace period. Ranks stuck in
			// real (non-runtime) work cannot be saved; preserve the old
			// leak-and-return behavior for them.
			w.abort(fmt.Errorf("mpi: run exceeded %v watchdog (deadlock?)", c.Timeout))
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				return nil, w.abortReason()
			}
		}
	} else {
		<-done
	}

	rep := &Report{
		RankTimes:         make([]float64, c.Ranks),
		DeclaredRanks:     c.Ranks,
		ActiveRanks:       w.activeCount,
		MaterializedRanks: int(w.materialized.Load()),
	}
	for i := range w.finals {
		rep.RankTimes[i] = w.finals[i]
		if w.finals[i] > rep.WallTime {
			rep.WallTime = w.finals[i]
		}
	}
	rep.Faults = w.faultLog()
	rep.Dead = w.deadRanks()
	for _, tool := range c.Tools {
		tool.Finalize(rep)
	}

	var all []error
	for _, e := range w.errs {
		if e != nil {
			all = append(all, e)
		}
	}
	if aerr := w.abortReason(); aerr != nil {
		all = append(all, aerr)
	}
	w.sectionErrMu.Lock()
	all = append(all, w.sectionErrs...)
	w.sectionErrMu.Unlock()
	if len(all) > 0 {
		return rep, errors.Join(all...)
	}
	return rep, nil
}

// mixSeed derives a per-rank seed from the run seed; splitmix64 finalizer.
func mixSeed(seed, rank uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(rank+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func identityGroup(n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return g
}

func (w *World) reportSectionError(err error) {
	w.sectionErrMu.Lock()
	defer w.sectionErrMu.Unlock()
	// Bound the list: one misnested loop could otherwise flood memory.
	if len(w.sectionErrs) < 64 {
		w.sectionErrs = append(w.sectionErrs, err)
	}
}
