package mpi

import (
	"fmt"
	"sync"
)

// This file implements the paper's central abstraction, MPI_Section
// (Section 4): a temporal outline of a distributed code region entered by
// all MPI processes of a communicator.
//
//	int MPIX_Section_enter(MPI_Comm comm, const char *label);
//	int MPIX_Section_exit (MPI_Comm comm, const char *label);
//
// become Comm.SectionEnter / Comm.SectionExit. Both are asynchronous
// collective calls: they never synchronize ranks, they only record the
// rank-local virtual timestamp and notify tools. Sections may be nested but
// must nest perfectly, and all ranks of the communicator must enter the
// same sequence of sections — invariants the runtime verifies with
// non-intrusive bookkeeping when Config.CheckSections is set (the paper
// recommends the checks be selectively enabled to minimize impact).

// sectionFrame is one live section instance on one rank.
type sectionFrame struct {
	label string
	data  ToolData // preserved between enter and leave (Fig. 2)
}

// rankSections is the per-rank section context for one communicator.
type rankSections struct {
	stack  []sectionFrame
	seqPos int // position in the canonical sequence (checking mode)
	// exitData is the scratch ToolData handed to SectionLeave hooks. A
	// function-local copy would escape through the hook call and cost one
	// heap allocation per exit — even with no tools attached — which the
	// allocation-free fast path cannot afford. Only this rank's goroutine
	// touches it, and only between pop and hook return.
	exitData ToolData
}

type seqEntry struct {
	enter bool
	label string
}

// sectionRegistry holds the per-communicator stacks and, when checking is
// enabled, the canonical event sequence every rank must follow. The paper's
// reference implementation "simply manipulates a stack of contexts for each
// communicator"; this is that stack.
type sectionRegistry struct {
	mu        sync.Mutex
	perRank   []rankSections
	canonical []seqEntry
}

//seclint:allocs-ok registry construction at session bring-up
func newSectionRegistry(ranks int) *sectionRegistry {
	return &sectionRegistry{perRank: make([]rankSections, ranks)}
}

// SectionEnter enters the labeled section on this communicator. It is
// non-blocking; tools attached to the run receive the enter callback with a
// pointer to the 32-byte data slot they may fill.
//
//seclint:hotpath
func (c *Comm) SectionEnter(label string) {
	if fi := c.rs.world.fi; fi != nil && fi.plan.KillSection(c.WorldRank(), label) {
		panic(&killPanic{section: label, err: errFailStop})
	}
	reg := c.shared.sections
	reg.mu.Lock()
	rs := &reg.perRank[c.rank]
	rs.stack = append(rs.stack, sectionFrame{label: label})
	frame := &rs.stack[len(rs.stack)-1]
	if c.rs.world.cfg.CheckSections {
		c.checkSequenceLocked(reg, rs, seqEntry{enter: true, label: label})
	}
	reg.mu.Unlock()

	for _, t := range c.rs.world.cfg.Tools {
		//seclint:allocs-ok tool hooks are //seclint:hotpath roots, proven allocation-free in their own right
		t.SectionEnter(c, label, c.rs.now(), &frame.data)
	}
}

// SectionExit leaves the labeled section. Exiting a label other than the
// innermost open section is a nesting violation: it is reported (and the
// mismatched frame force-popped) so that a buggy caller cannot corrupt the
// stack silently.
//
//seclint:hotpath
func (c *Comm) SectionExit(label string) {
	reg := c.shared.sections
	reg.mu.Lock()
	rs := &reg.perRank[c.rank]
	var frame *sectionFrame
	if n := len(rs.stack); n == 0 {
		//seclint:allocs-ok section-mismatch error construction: failing path
		c.rs.world.reportSectionError(fmt.Errorf(
			"mpi: rank %d exited section %q with no section open (comm %d)",
			c.rank, label, c.shared.id))
	} else {
		top := &rs.stack[n-1]
		if top.label != label {
			//seclint:allocs-ok section-mismatch error construction: failing path
			c.rs.world.reportSectionError(fmt.Errorf(
				"mpi: rank %d exited section %q but %q is innermost (comm %d)",
				c.rank, label, top.label, c.shared.id))
		}
		frame = top
	}
	if c.rs.world.cfg.CheckSections {
		c.checkSequenceLocked(reg, rs, seqEntry{enter: false, label: label})
	}
	rs.exitData = ToolData{}
	if frame != nil {
		rs.exitData = frame.data
		rs.stack = rs.stack[:len(rs.stack)-1]
	}
	data := &rs.exitData
	reg.mu.Unlock()

	for _, t := range c.rs.world.cfg.Tools {
		//seclint:allocs-ok tool hooks are //seclint:hotpath roots, proven allocation-free in their own right
		t.SectionLeave(c, label, c.rs.now(), data)
	}
}

// SectionDepth reports how many sections are currently open on this rank
// for this communicator (including MPI_MAIN on the world communicator).
func (c *Comm) SectionDepth() int {
	reg := c.shared.sections
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return len(reg.perRank[c.rank].stack)
}

// SectionStack returns the labels of the currently open sections, outermost
// first — the "execution state with more semantics than the call-stack" the
// paper motivates for debuggers.
func (c *Comm) SectionStack() []string {
	reg := c.shared.sections
	reg.mu.Lock()
	defer reg.mu.Unlock()
	st := reg.perRank[c.rank].stack
	out := make([]string, len(st))
	for i := range st {
		out[i] = st[i].label
	}
	return out
}

// checkSequenceLocked verifies that this rank's event agrees with the
// canonical sequence (established by whichever rank gets there first).
// reg.mu must be held.
//
//seclint:allocs-ok debug-mode section auditing (Config.CheckSections), off by default
func (c *Comm) checkSequenceLocked(reg *sectionRegistry, rs *rankSections, e seqEntry) {
	pos := rs.seqPos
	rs.seqPos++
	if pos == len(reg.canonical) {
		reg.canonical = append(reg.canonical, e)
		return
	}
	if pos > len(reg.canonical) {
		// Cannot happen: appends occur under the same lock.
		c.rs.world.reportSectionError(fmt.Errorf(
			"mpi: internal section sequence overrun on rank %d", c.rank))
		return
	}
	want := reg.canonical[pos]
	if want != e {
		kind := func(enter bool) string {
			if enter {
				return "enter"
			}
			return "exit"
		}
		c.rs.world.reportSectionError(fmt.Errorf(
			"mpi: section sequence divergence on comm %d: rank %d did %s %q at step %d, other ranks did %s %q",
			c.shared.id, c.rank, kind(e.enter), e.label, pos, kind(want.enter), want.label))
	}
}

// Section runs body inside an enter/exit pair — the idiomatic Go spelling
// that guarantees perfect nesting by construction.
//
//seclint:hotpath
func (c *Comm) Section(label string, body func() error) error {
	c.SectionEnter(label)
	defer c.SectionExit(label)
	//seclint:allocs-ok runs the caller closure: its cost is measured and pinned at the caller
	return body()
}
