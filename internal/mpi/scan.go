package mpi

// Prefix reductions (MPI_Scan / MPI_Exscan), implemented with the
// linear-latency-hiding algorithm: rank r receives the prefix of ranks
// [0, r) from rank r-1, folds its contribution, and forwards to r+1. The
// paper's analysis code uses Scan to attribute cumulative imbalance.

const tagScan = internalTagBase - 100

// Scan computes the inclusive prefix reduction: rank r receives
// op(xs_0, ..., xs_r).
func (c *Comm) Scan(xs []float64, op Op) ([]float64, error) {
	c.collectiveBegin("Scan")
	defer c.collectiveEnd("Scan")
	acc := make([]float64, len(xs))
	copy(acc, xs)
	if c.rank > 0 {
		prev, _, err := c.RecvFloat64s(c.rank-1, tagScan)
		if err != nil {
			return nil, err
		}
		// acc = prev ⊕ mine, preserving operand order.
		tmp := make([]float64, len(prev))
		copy(tmp, prev)
		if err := op.apply(tmp, acc); err != nil {
			return nil, err
		}
		acc = tmp
	}
	if c.rank+1 < c.Size() {
		if err := c.SendFloat64s(c.rank+1, tagScan, acc); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Exscan computes the exclusive prefix reduction: rank r receives
// op(xs_0, ..., xs_(r-1)); rank 0 receives nil (undefined in MPI).
func (c *Comm) Exscan(xs []float64, op Op) ([]float64, error) {
	c.collectiveBegin("Exscan")
	defer c.collectiveEnd("Exscan")
	var prefix []float64
	if c.rank > 0 {
		prev, _, err := c.RecvFloat64s(c.rank-1, tagScan)
		if err != nil {
			return nil, err
		}
		prefix = prev
	}
	if c.rank+1 < c.Size() {
		forward := make([]float64, len(xs))
		copy(forward, xs)
		if prefix != nil {
			tmp := make([]float64, len(prefix))
			copy(tmp, prefix)
			if err := op.apply(tmp, forward); err != nil {
				return nil, err
			}
			forward = tmp
		}
		if err := c.SendFloat64s(c.rank+1, tagScan, forward); err != nil {
			return nil, err
		}
	}
	return prefix, nil
}
