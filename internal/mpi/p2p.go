package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// internalTagBase marks the tag space reserved for collective algorithms;
// user tags must be >= 0.
const internalTagBase = -1000

// Status describes a received message.
type Status struct {
	Source int // sender's rank in the communicator
	Tag    int
	Bytes  int
}

// envelope is a message in flight. Data is owned by the envelope (copied on
// send), so callers may reuse their buffers immediately. vbytes is the
// virtual (modeled) message size, normally len(data); scaled-down benchmark
// executions transport reduced real payloads while charging full-size
// transfer time.
type envelope struct {
	src, tag int
	data     []byte
	vbytes   int
	arrival  float64 // virtual time at which the payload is available
}

// posted is an outstanding receive.
type posted struct {
	src, tag int
	ch       chan *envelope
}

func (p *posted) matches(e *envelope) bool {
	return (p.src == AnySource || p.src == e.src) &&
		(p.tag == AnyTag || p.tag == e.tag)
}

// mailbox holds the unmatched traffic addressed to one rank.
type mailbox struct {
	mu    sync.Mutex
	sends []*envelope
	recvs []*posted
}

func newMailbox() *mailbox { return &mailbox{} }

// deliver matches e against posted receives or queues it. Called with the
// box unlocked.
func (b *mailbox) deliver(e *envelope) {
	b.mu.Lock()
	for i, p := range b.recvs {
		if p.matches(e) {
			b.recvs = append(b.recvs[:i], b.recvs[i+1:]...)
			b.mu.Unlock()
			p.ch <- e
			return
		}
	}
	b.sends = append(b.sends, e)
	b.mu.Unlock()
}

// post matches a receive against queued sends or registers it. It returns
// either an immediately matched envelope or a channel to wait on.
func (b *mailbox) post(p *posted) *envelope {
	b.mu.Lock()
	for i, e := range b.sends {
		if p.matches(e) {
			b.sends = append(b.sends[:i], b.sends[i+1:]...)
			b.mu.Unlock()
			return e
		}
	}
	b.recvs = append(b.recvs, p)
	b.mu.Unlock()
	return nil
}

// Request represents a nonblocking operation; Wait completes it.
type Request struct {
	comm *Comm
	// recv side; nil for completed sends
	pending *posted
	env     *envelope
	done    bool
	status  Status
	data    []byte
}

// Send transmits data to dst with the given tag. The runtime buffers
// eagerly, so Send never blocks on the receiver; it charges the sender's
// software overhead and stamps the message with its model-derived arrival
// time. data is copied.
func (c *Comm) Send(dst, tag int, data []byte) error {
	_, err := c.sendInternal(dst, tag, data, len(data))
	return err
}

// SendSized is Send with an explicit virtual message size: the receiver
// gets data, but transfer time is modeled for virtualBytes. Scaled-down
// benchmark executions use it to charge full-problem communication costs
// while moving reduced real payloads (see DESIGN.md §5).
func (c *Comm) SendSized(dst, tag int, data []byte, virtualBytes int) error {
	if virtualBytes < 0 {
		return fmt.Errorf("mpi: negative virtual size %d", virtualBytes)
	}
	_, err := c.sendInternal(dst, tag, data, virtualBytes)
	return err
}

// Isend is Send; the returned request completes immediately (eager
// buffering). It exists so ported MPI code keeps its shape.
func (c *Comm) Isend(dst, tag int, data []byte) (*Request, error) {
	if _, err := c.sendInternal(dst, tag, data, len(data)); err != nil {
		return nil, err
	}
	return &Request{comm: c, done: true}, nil
}

func (c *Comm) sendInternal(dst, tag int, data []byte, vbytes int) (float64, error) {
	if dst < 0 || dst >= c.Size() {
		return 0, fmt.Errorf("mpi: Send to invalid rank %d (size %d)", dst, c.Size())
	}
	if tag < 0 && tag > internalTagBase {
		return 0, fmt.Errorf("mpi: negative tag %d is reserved", tag)
	}
	w := c.rs.world
	model := w.cfg.Model
	c.rs.advance(model.Net.SendOverhead)

	srcWorld := c.shared.group[c.rank]
	dstWorld := c.shared.group[dst]
	sameNode := w.placement.SameNode(srcWorld, dstWorld)
	contenders := w.placement.NodesInUse()
	transfer := model.MsgTime(vbytes, sameNode, contenders, c.rs.rng)
	arrival := c.rs.now() + transfer

	buf := make([]byte, len(data))
	copy(buf, data)
	e := &envelope{src: c.rank, tag: tag, data: buf, vbytes: vbytes, arrival: arrival}
	c.shared.boxes[dst].deliver(e)

	for _, t := range w.cfg.Tools {
		t.MessageSent(c, dst, tag, vbytes, c.rs.now())
	}
	return arrival, nil
}

// Irecv posts a nonblocking receive for a message from src (or AnySource)
// with the given tag (or AnyTag). Complete it with Wait.
func (c *Comm) Irecv(src, tag int) (*Request, error) {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		return nil, fmt.Errorf("mpi: Irecv from invalid rank %d (size %d)", src, c.Size())
	}
	p := &posted{src: src, tag: tag, ch: make(chan *envelope, 1)}
	req := &Request{comm: c, pending: p}
	if e := c.shared.boxes[c.rank].post(p); e != nil {
		req.env = e
		req.pending = nil
	}
	return req, nil
}

// Wait completes a request. For receives it blocks until the message is
// matched, advances the virtual clock to the arrival stamp, and returns the
// payload and status. For sends it returns immediately.
func (r *Request) Wait() ([]byte, Status, error) {
	if r == nil {
		return nil, Status{}, fmt.Errorf("mpi: Wait on nil request")
	}
	if r.done {
		return r.data, r.status, nil
	}
	c := r.comm
	e := r.env
	if e == nil {
		e = <-r.pending.ch
	}
	model := c.rs.world.cfg.Model
	c.rs.advance(model.Net.RecvOverhead)
	c.rs.advanceTo(e.arrival)
	r.done = true
	r.data = e.data
	r.status = Status{Source: e.src, Tag: e.tag, Bytes: e.vbytes}
	for _, tool := range c.rs.world.cfg.Tools {
		tool.MessageRecv(c, e.src, e.tag, e.vbytes, c.rs.now())
	}
	return r.data, r.status, nil
}

// Waitall completes every request in order and returns their payloads and
// statuses — MPI_Waitall. It fails on the first erroring request.
func Waitall(reqs []*Request) ([][]byte, []Status, error) {
	data := make([][]byte, len(reqs))
	sts := make([]Status, len(reqs))
	for i, r := range reqs {
		var err error
		if data[i], sts[i], err = r.Wait(); err != nil {
			return nil, nil, fmt.Errorf("mpi: Waitall request %d: %w", i, err)
		}
	}
	return data, sts, nil
}

// Waitany completes one not-yet-completed request and reports its index —
// MPI_Waitany. Completed requests are skipped; with none pending it returns
// index -1. Unlike MPI it serves requests in array order when several are
// ready (our eager transport makes readiness unobservable without waiting).
func Waitany(reqs []*Request) (int, []byte, Status, error) {
	for i, r := range reqs {
		if r == nil || r.done {
			continue
		}
		data, st, err := r.Wait()
		return i, data, st, err
	}
	return -1, nil, Status{}, nil
}

// Iprobe reports whether a message from src (or AnySource) with tag (or
// AnyTag) is already waiting, and its status when so — MPI_Iprobe. The
// message stays queued; a subsequent Recv retrieves it.
func (c *Comm) Iprobe(src, tag int) (Status, bool, error) {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		return Status{}, false, fmt.Errorf("mpi: Iprobe from invalid rank %d (size %d)", src, c.Size())
	}
	probe := &posted{src: src, tag: tag}
	box := c.shared.boxes[c.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	for _, e := range box.sends {
		if probe.matches(e) {
			return Status{Source: e.src, Tag: e.tag, Bytes: e.vbytes}, true, nil
		}
	}
	return Status{}, false, nil
}

// Recv blocks for a message from src (or AnySource) with tag (or AnyTag)
// and returns its payload.
func (c *Comm) Recv(src, tag int) ([]byte, Status, error) {
	req, err := c.Irecv(src, tag)
	if err != nil {
		return nil, Status{}, err
	}
	return req.Wait()
}

// Sendrecv sends to dst and receives from src in one logically concurrent
// operation, the stencil workhorse. Deadlock-free under eager buffering.
func (c *Comm) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) ([]byte, Status, error) {
	return c.SendrecvSized(dst, sendTag, data, len(data), src, recvTag)
}

// SendrecvSized is Sendrecv with an explicit virtual size for the outgoing
// message (see SendSized).
func (c *Comm) SendrecvSized(dst, sendTag int, data []byte, virtualBytes, src, recvTag int) ([]byte, Status, error) {
	req, err := c.Irecv(src, recvTag)
	if err != nil {
		return nil, Status{}, err
	}
	if err := c.SendSized(dst, sendTag, data, virtualBytes); err != nil {
		return nil, Status{}, err
	}
	return req.Wait()
}

// --- typed float64 helpers -------------------------------------------------

// Float64sToBytes encodes xs little-endian; the inverse of BytesToFloat64s.
func Float64sToBytes(xs []float64) []byte {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf
}

// BytesToFloat64s decodes a buffer produced by Float64sToBytes.
func BytesToFloat64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpi: payload length %d is not a multiple of 8", len(b))
	}
	xs := make([]float64, len(b)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs, nil
}

// SendFloat64s sends a float64 vector.
func (c *Comm) SendFloat64s(dst, tag int, xs []float64) error {
	return c.Send(dst, tag, Float64sToBytes(xs))
}

// RecvFloat64s receives a float64 vector.
func (c *Comm) RecvFloat64s(src, tag int) ([]float64, Status, error) {
	b, st, err := c.Recv(src, tag)
	if err != nil {
		return nil, st, err
	}
	xs, err := BytesToFloat64s(b)
	return xs, st, err
}

// SendrecvFloat64s exchanges float64 vectors with neighbors.
func (c *Comm) SendrecvFloat64s(dst, sendTag int, xs []float64, src, recvTag int) ([]float64, Status, error) {
	b, st, err := c.Sendrecv(dst, sendTag, Float64sToBytes(xs), src, recvTag)
	if err != nil {
		return nil, st, err
	}
	out, err := BytesToFloat64s(b)
	return out, st, err
}
