package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// internalTagBase marks the tag space reserved for collective algorithms;
// user tags must be >= 0.
const internalTagBase = -1000

// Status describes a received message.
type Status struct {
	Source int // sender's rank in the communicator
	Tag    int
	Bytes  int
}

// envelope is a message in flight. data is owned by the envelope (copied
// into a pooled buffer on send), so senders may reuse their buffers
// immediately. nbytes is the real payload length; a ghost message carries
// nbytes > 0 with data == nil — the paper-scale sweeps transport no bytes
// at all while still charging full-size transfer time. vbytes is the
// virtual (modeled) message size, normally nbytes; scaled-down benchmark
// executions transport reduced real payloads while charging full-size
// transfer time.
type envelope struct {
	src, tag int
	data     []byte
	nbytes   int
	vbytes   int
	sendT    float64 // virtual time the send was posted (MessageSent's t)
	arrival  float64 // virtual time at which the payload is available
	// fail marks a poison envelope: no message, only a failure to report
	// to a parked receiver (see ft.go). nil on every real message.
	fail *poisonInfo
}

// ghost reports whether the message carries no real bytes.
func (e *envelope) ghost() bool { return e.data == nil && e.nbytes > 0 }

// takePayload moves the payload out of the envelope to the caller. Ghost
// messages materialize as a zeroed pooled buffer of the real length, so
// plain Recv works on them too.
func (e *envelope) takePayload() []byte {
	if e.data != nil {
		b := e.data
		e.data = nil
		return b
	}
	if e.nbytes == 0 {
		return nil
	}
	b := payloads.get(e.nbytes)
	clear(b)
	return b
}

// posted is an outstanding receive. The one-slot channel is reused across
// operations through postedPool.
type posted struct {
	src, tag int
	ch       chan *envelope
}

func (p *posted) matches(e *envelope) bool {
	return (p.src == AnySource || p.src == e.src) &&
		(p.tag == AnyTag || p.tag == e.tag)
}

// mailbox holds the unmatched traffic addressed to one rank. Boxes have no
// lock of their own: they live in boxShard slabs, and all queue access goes
// through the owning shard's mutex (one lock per shardSize ranks, which
// also lets a batched fan-out deliver a whole run of messages under a
// single acquisition).
type mailbox struct {
	sends []*envelope
	recvs []*posted
	// fail is set when the owning communicator is revoked (ft.go): new
	// receives fail fast and new sends bounce, while already-queued
	// messages stay matchable.
	fail *poisonInfo
}

// boxShard is one shard's worth of a communicator's mailboxes. Like rank
// shards, the slab materializes on first touch, so a 10k-rank communicator
// allocates mailbox state only for the shards traffic actually reaches.
type boxShard struct {
	mu    sync.Mutex
	ready atomic.Bool
	slab  []mailbox
	// pi records a revocation that arrived before (or while) the slab
	// materialized: boxes created later are born poisoned.
	pi *poisonInfo
}

// materialize allocates the slab for a shard covering ranks [lo, lo+n) of
// a group of groupLen members.
//
//seclint:allocs-ok lazy mailbox bring-up: once per shard
func (sh *boxShard) materialize(groupLen, lo int) {
	sh.mu.Lock()
	if !sh.ready.Load() {
		n := groupLen - lo
		if n > shardSize {
			n = shardSize
		}
		slab := make([]mailbox, n)
		if sh.pi != nil {
			for i := range slab {
				slab[i].fail = sh.pi
			}
		}
		sh.slab = slab
		sh.ready.Store(true)
	}
	sh.mu.Unlock()
}

// deliver matches e against the box's posted receives or queues it, under
// the shard lock. A non-nil return means the box is poisoned: the message
// was not delivered and the sender must fail with the carried reason.
func (sh *boxShard) deliver(b *mailbox, e *envelope) *poisonInfo {
	sh.mu.Lock()
	if pi := b.fail; pi != nil {
		sh.mu.Unlock()
		freeEnvelope(e)
		return pi
	}
	for i, p := range b.recvs {
		if p.matches(e) {
			b.recvs = append(b.recvs[:i], b.recvs[i+1:]...)
			sh.mu.Unlock()
			p.ch <- e
			return nil
		}
	}
	b.sends = append(b.sends, e)
	sh.mu.Unlock()
	return nil
}

// post matches a receive against queued sends or registers it. It returns
// either an immediately matched envelope or nil, in which case the caller
// waits on p.ch. On a poisoned box with no queued match it returns a
// poison envelope instead of parking the receive forever.
func (sh *boxShard) post(b *mailbox, p *posted) *envelope {
	sh.mu.Lock()
	for i, e := range b.sends {
		if p.matches(e) {
			b.sends = append(b.sends[:i], b.sends[i+1:]...)
			sh.mu.Unlock()
			return e
		}
	}
	if pi := b.fail; pi != nil {
		sh.mu.Unlock()
		e := newEnvelope()
		e.src = -1
		e.fail = pi
		return e
	}
	b.recvs = append(b.recvs, p)
	sh.mu.Unlock()
	return nil
}

// postedMatch pairs a matched receive with its envelope so batched delivery
// can complete the channel handoffs after the shard lock drops.
type postedMatch struct {
	p *posted
	e *envelope
}

// Request represents a nonblocking operation; Wait completes it.
type Request struct {
	comm *Comm
	// recv side; nil for completed sends
	pending *posted
	env     *envelope
	src     int     // requested source (comm rank or AnySource)
	postT   float64 // virtual time the receive was posted
	done    bool
	status  Status
	data    []byte
}

// Send transmits data to dst with the given tag. The runtime buffers
// eagerly, so Send never blocks on the receiver; it charges the sender's
// software overhead and stamps the message with its model-derived arrival
// time. data is copied.
//
//seclint:hotpath
func (c *Comm) Send(dst, tag int, data []byte) error {
	return c.sendInternal(dst, tag, data, len(data), len(data), false)
}

// SendSized is Send with an explicit virtual message size: the receiver
// gets data, but transfer time is modeled for virtualBytes. Scaled-down
// benchmark executions use it to charge full-problem communication costs
// while moving reduced real payloads (see DESIGN.md §5).
//
//seclint:hotpath
func (c *Comm) SendSized(dst, tag int, data []byte, virtualBytes int) error {
	if virtualBytes < 0 {
		return fmt.Errorf("mpi: negative virtual size %d", virtualBytes)
	}
	return c.sendInternal(dst, tag, data, len(data), virtualBytes, false)
}

// SendGhost transmits a message of nbytes whose payload bytes are never
// written or read: no buffer is allocated or copied on either side, while
// matching, ordering, tool hooks and the virtualBytes-modeled transfer
// time are exactly those of a real message. The sweeps use it when the
// executed kernel is skipped (convolution.Params.SkipKernel) and only the
// clock effects of communication matter. A plain Recv of a ghost message
// returns a zeroed buffer of length nbytes; RecvDiscard avoids even that.
//
//seclint:hotpath
func (c *Comm) SendGhost(dst, tag, nbytes, virtualBytes int) error {
	if nbytes < 0 {
		return fmt.Errorf("mpi: negative ghost size %d", nbytes)
	}
	if virtualBytes < 0 {
		return fmt.Errorf("mpi: negative virtual size %d", virtualBytes)
	}
	return c.sendInternal(dst, tag, nil, nbytes, virtualBytes, true)
}

// Isend is Send; the returned request completes immediately (eager
// buffering). It exists so ported MPI code keeps its shape.
func (c *Comm) Isend(dst, tag int, data []byte) (*Request, error) {
	if err := c.Send(dst, tag, data); err != nil {
		return nil, err
	}
	return &Request{comm: c, done: true}, nil
}

func (c *Comm) sendInternal(dst, tag int, data []byte, nbytes, vbytes int, ghost bool) error {
	if dst < 0 || dst >= c.Size() {
		return fmt.Errorf("mpi: Send to invalid rank %d (size %d)", dst, c.Size())
	}
	if tag < 0 && tag > internalTagBase {
		return fmt.Errorf("mpi: negative tag %d is reserved", tag)
	}
	w := c.rs.world
	model := w.cfg.Model
	c.rs.advance(model.Net.SendOverhead)

	srcWorld := c.shared.group[c.rank]
	dstWorld := c.shared.group[dst]
	sameNode := w.placement.SameNode(srcWorld, dstWorld)
	contenders := w.placement.NodesInUse()
	transfer := model.MsgTime(vbytes, sameNode, contenders, c.rs.rng)

	dropped := false
	if fi := w.fi; fi != nil {
		c.countOp()
		if fi.hasLink {
			dropped, nbytes, transfer = c.applyLinkFaults(srcWorld, dstWorld, nbytes, vbytes, transfer)
		}
	}

	if !dropped {
		e := newEnvelope()
		e.src, e.tag = c.rank, tag
		e.nbytes, e.vbytes = nbytes, vbytes
		e.sendT = c.rs.now()
		e.arrival = e.sendT + transfer
		if !ghost {
			n := nbytes
			if n > len(data) {
				n = len(data)
			}
			buf := payloads.get(n)
			copy(buf, data[:n])
			e.data = buf
		}
		sh, box := c.shared.box(dst)
		if pi := sh.deliver(box, e); pi != nil {
			return fmt.Errorf("mpi: rank %d: Send to rank %d failed: %w", c.rank, dst, pi.reason)
		}
		if w.lazy {
			// Session bring-up: a first message into a dormant shard
			// materializes it, so the receiver exists by the time anyone
			// waits on it.
			w.nudge(dstWorld)
		}
	}

	for _, t := range w.cfg.Tools {
		//seclint:allocs-ok tool hooks are //seclint:hotpath roots, proven allocation-free in their own right
		t.MessageSent(c, dst, tag, vbytes, c.rs.now())
	}
	return nil
}

// SendGhostBatch posts one ghost message per destination — the fan-out
// counterpart of SendGhost. Message i is exactly equivalent to
// SendGhost(dsts[i], tag, nbytes[i], vbytes[i]) called in order: per-message
// overheads, modeled transfer times, send stamps and tool hooks are
// identical, so sweeps switching a scatter loop to the batch produce
// byte-identical CSVs. The payoff is delivery: envelopes addressed to
// consecutive destinations in the same mailbox shard are enqueued under a
// single shard-lock acquisition instead of one per message. With a fault
// plan armed the call degrades to per-message SendGhost so injected
// link-fault schedules stay identical. On a revoked communicator a prefix
// of the batch may already have been delivered when the error returns.
//
//seclint:hotpath
func (c *Comm) SendGhostBatch(dsts []int, tag int, nbytes, vbytes []int) error {
	if len(dsts) != len(nbytes) || len(dsts) != len(vbytes) {
		return fmt.Errorf("mpi: SendGhostBatch length mismatch (%d dsts, %d nbytes, %d vbytes)",
			len(dsts), len(nbytes), len(vbytes))
	}
	if len(dsts) == 0 {
		return nil
	}
	w := c.rs.world
	if w.fi != nil {
		for i, dst := range dsts {
			if err := c.SendGhost(dst, tag, nbytes[i], vbytes[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if tag < 0 && tag > internalTagBase {
		return fmt.Errorf("mpi: negative tag %d is reserved", tag)
	}
	for i, dst := range dsts {
		if dst < 0 || dst >= c.Size() {
			return fmt.Errorf("mpi: Send to invalid rank %d (size %d)", dst, c.Size())
		}
		if nbytes[i] < 0 {
			return fmt.Errorf("mpi: negative ghost size %d", nbytes[i])
		}
		if vbytes[i] < 0 {
			return fmt.Errorf("mpi: negative virtual size %d", vbytes[i])
		}
	}

	// Charge and stamp every message first, in order, exactly as the
	// sequential loop would.
	model := w.cfg.Model
	srcWorld := c.shared.group[c.rank]
	contenders := w.placement.NodesInUse()
	envs := c.rs.batchEnvs[:0]
	sendTs := c.rs.batchSendTs[:0]
	for i, dst := range dsts {
		c.rs.advance(model.Net.SendOverhead)
		dstWorld := c.shared.group[dst]
		transfer := model.MsgTime(vbytes[i], w.placement.SameNode(srcWorld, dstWorld), contenders, c.rs.rng)
		e := newEnvelope()
		e.src, e.tag = c.rank, tag
		e.nbytes, e.vbytes = nbytes[i], vbytes[i]
		e.sendT = c.rs.now()
		e.arrival = e.sendT + transfer
		envs = append(envs, e)
		sendTs = append(sendTs, e.sendT)
	}
	c.rs.batchEnvs = envs
	c.rs.batchSendTs = sendTs

	// Deliver in runs of consecutive same-shard destinations, each run
	// under one shard-lock acquisition. Matched receives are woken after
	// the lock drops, preserving the unlocked-handoff discipline of the
	// single-message path.
	var failPi *poisonInfo
	failAt := len(dsts)
	delivered := 0
	for i := 0; i < len(dsts) && failPi == nil; {
		s := dsts[i] >> shardBits
		j := i + 1
		for j < len(dsts) && dsts[j]>>shardBits == s {
			j++
		}
		sh, _ := c.shared.box(dsts[i])
		matches := c.rs.batchMatches[:0]
		sh.mu.Lock()
		for k := i; k < j; k++ {
			b := &sh.slab[dsts[k]&shardMask]
			if pi := b.fail; pi != nil {
				failPi, failAt = pi, k
				break
			}
			e := envs[k]
			matched := false
			for ri, p := range b.recvs {
				if p.matches(e) {
					b.recvs = append(b.recvs[:ri], b.recvs[ri+1:]...)
					matches = append(matches, postedMatch{p: p, e: e})
					matched = true
					break
				}
			}
			if !matched {
				b.sends = append(b.sends, e)
			}
		}
		sh.mu.Unlock()
		for _, m := range matches {
			m.p.ch <- m.e
		}
		c.rs.batchMatches = matches[:0]
		if failPi == nil {
			delivered = j
		} else {
			delivered = failAt
		}
		if w.lazy {
			for k := i; k < delivered; k++ {
				w.nudge(c.shared.group[dsts[k]])
			}
		}
		i = j
	}
	for _, t := range w.cfg.Tools {
		for k := 0; k < delivered; k++ {
			//seclint:allocs-ok tool hooks are //seclint:hotpath roots, proven allocation-free in their own right
			t.MessageSent(c, dsts[k], tag, vbytes[k], sendTs[k])
		}
	}
	if failPi != nil {
		for k := failAt; k < len(envs); k++ {
			freeEnvelope(envs[k])
		}
		return fmt.Errorf("mpi: rank %d: Send to rank %d failed: %w", c.rank, dsts[failAt], failPi.reason)
	}
	return nil
}

// Irecv posts a nonblocking receive for a message from src (or AnySource)
// with the given tag (or AnyTag). Complete it with Wait.
func (c *Comm) Irecv(src, tag int) (*Request, error) {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		return nil, fmt.Errorf("mpi: Irecv from invalid rank %d (size %d)", src, c.Size())
	}
	if c.rs.world.fi != nil {
		c.countOp()
	}
	p := newPosted(src, tag)
	req := &Request{comm: c, pending: p, src: src, postT: c.rs.now()}
	sh, box := c.shared.box(c.rank)
	if e := sh.post(box, p); e != nil {
		req.env = e
		req.pending = nil
		freePosted(p) // never waited on: channel untouched
	}
	return req, nil
}

// recvEnvelope blocks for a matching message and returns its envelope with
// the clock advanced and the tool hooks fired — the request-free receive
// path Recv, RecvDiscard and the collectives run on.
func (c *Comm) recvEnvelope(src, tag int) (*envelope, error) {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		return nil, fmt.Errorf("mpi: Recv from invalid rank %d (size %d)", src, c.Size())
	}
	if c.rs.world.fi != nil {
		c.countOp()
	}
	p := newPosted(src, tag)
	postT := c.rs.now()
	sh, box := c.shared.box(c.rank)
	e := sh.post(box, p)
	if e == nil {
		if c.rs.blk != nil {
			c.rs.enterBlocked(c, "Recv", src, tag)
			e = <-p.ch
			c.rs.exitBlocked()
		} else {
			e = <-p.ch
		}
	}
	freePosted(p)
	if e.fail != nil {
		return nil, c.failRecv(e, postT, src)
	}
	c.completeRecv(e, postT)
	return e, nil
}

// failRecv consumes a poison envelope: the receive failed because the
// communicator was revoked while (or before) it was parked. The receiver's
// clock advances to the failure's virtual time, so the interval it spent
// blocked on the dead peer is measurable — and reported as a dead_peer
// fault event with the original post time.
func (c *Comm) failRecv(e *envelope, postT float64, src int) error {
	pi := e.fail
	releaseEnvelope(e)
	c.rs.advanceTo(pi.deathT)
	srcWorld := -1
	if src >= 0 && src < len(c.shared.group) {
		srcWorld = c.shared.group[src]
	}
	w := c.rs.world
	w.emitFault(fault.Event{
		T: c.rs.now(), Kind: fault.DeadPeer, Rank: c.WorldRank(),
		Src: srcWorld, Dst: c.WorldRank(), Comm: c.shared.id,
		Section: c.sectionLabel(), PostT: postT,
	})
	return fmt.Errorf("mpi: rank %d: receive aborted: %w", c.rank, pi.reason)
}

// completeRecv advances the receiver's clock to the arrival stamp and
// fires the tool hooks for e. postT is the virtual time the receive was
// posted — it rides into the MatchInfo handed to tools together with the
// envelope's matched send stamps.
func (c *Comm) completeRecv(e *envelope, postT float64) {
	model := c.rs.world.cfg.Model
	c.rs.advance(model.Net.RecvOverhead)
	c.rs.advanceTo(e.arrival)
	// Lazy clock synchronization: communication completion is where a
	// rank's progress becomes observable, so publish it to the shard
	// frontier here (never under any lock).
	c.rs.shard.noteClock(c.rs.clock)
	tools := c.rs.world.cfg.Tools
	if len(tools) == 0 {
		return
	}
	m := MatchInfo{SendT: e.sendT, PostT: postT, Arrival: e.arrival}
	for _, tool := range tools {
		//seclint:allocs-ok tool hooks are //seclint:hotpath roots, proven allocation-free in their own right
		tool.MessageRecv(c, e.src, e.tag, e.vbytes, c.rs.now(), m)
	}
}

// Wait completes a request. For receives it blocks until the message is
// matched, advances the virtual clock to the arrival stamp, and returns the
// payload and status. For sends it returns immediately. The returned
// payload is owned by the caller (see Release).
func (r *Request) Wait() ([]byte, Status, error) {
	if r == nil {
		return nil, Status{}, fmt.Errorf("mpi: Wait on nil request")
	}
	if r.done {
		return r.data, r.status, nil
	}
	c := r.comm
	e := r.env
	if e == nil {
		if c.rs.blk != nil {
			c.rs.enterBlocked(c, "Wait", r.src, r.pending.tag)
			e = <-r.pending.ch
			c.rs.exitBlocked()
		} else {
			e = <-r.pending.ch
		}
		freePosted(r.pending)
		r.pending = nil
	}
	r.env = nil
	if e.fail != nil {
		r.done = true
		return nil, Status{}, c.failRecv(e, r.postT, r.src)
	}
	c.completeRecv(e, r.postT)
	r.done = true
	r.status = Status{Source: e.src, Tag: e.tag, Bytes: e.vbytes}
	r.data = e.takePayload()
	releaseEnvelope(e)
	return r.data, r.status, nil
}

// Waitall completes every request in order and returns their payloads and
// statuses — MPI_Waitall. It fails on the first erroring request.
func Waitall(reqs []*Request) ([][]byte, []Status, error) {
	data := make([][]byte, len(reqs))
	sts := make([]Status, len(reqs))
	for i, r := range reqs {
		var err error
		if data[i], sts[i], err = r.Wait(); err != nil {
			return nil, nil, fmt.Errorf("mpi: Waitall request %d: %w", i, err)
		}
	}
	return data, sts, nil
}

// Waitany completes one not-yet-completed request and reports its index —
// MPI_Waitany. Completed requests are skipped; with none pending it returns
// index -1. Unlike MPI it serves requests in array order when several are
// ready (our eager transport makes readiness unobservable without waiting).
func Waitany(reqs []*Request) (int, []byte, Status, error) {
	for i, r := range reqs {
		if r == nil || r.done {
			continue
		}
		data, st, err := r.Wait()
		return i, data, st, err
	}
	return -1, nil, Status{}, nil
}

// Iprobe reports whether a message from src (or AnySource) with tag (or
// AnyTag) is already waiting, and its status when so — MPI_Iprobe. The
// message stays queued; a subsequent Recv retrieves it.
func (c *Comm) Iprobe(src, tag int) (Status, bool, error) {
	if src != AnySource && (src < 0 || src >= c.Size()) {
		return Status{}, false, fmt.Errorf("mpi: Iprobe from invalid rank %d (size %d)", src, c.Size())
	}
	probe := posted{src: src, tag: tag}
	sh, box := c.shared.box(c.rank)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range box.sends {
		if probe.matches(e) {
			return Status{Source: e.src, Tag: e.tag, Bytes: e.vbytes}, true, nil
		}
	}
	return Status{}, false, nil
}

// Recv blocks for a message from src (or AnySource) with tag (or AnyTag)
// and returns its payload. Ownership of the payload transfers to the
// caller: it stays valid indefinitely, and MAY be handed back to the
// runtime's buffer pool with Release once decoded or consumed.
//
//seclint:hotpath
func (c *Comm) Recv(src, tag int) ([]byte, Status, error) {
	e, err := c.recvEnvelope(src, tag)
	if err != nil {
		return nil, Status{}, err
	}
	st := Status{Source: e.src, Tag: e.tag, Bytes: e.vbytes}
	data := e.takePayload()
	releaseEnvelope(e)
	return data, st, nil
}

// RecvDiscard receives a message and drops its payload, recycling the
// buffer (ghost messages never materialize one). It is the receive side of
// SendGhost and the zero-allocation path for messages whose bytes the
// caller never reads.
//
//seclint:hotpath
func (c *Comm) RecvDiscard(src, tag int) (Status, error) {
	e, err := c.recvEnvelope(src, tag)
	if err != nil {
		return Status{}, err
	}
	st := Status{Source: e.src, Tag: e.tag, Bytes: e.vbytes}
	freeEnvelope(e)
	return st, nil
}

// Sendrecv sends to dst and receives from src in one logically concurrent
// operation, the stencil workhorse. Deadlock-free under eager buffering.
//
//seclint:hotpath
func (c *Comm) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) ([]byte, Status, error) {
	return c.SendrecvSized(dst, sendTag, data, len(data), src, recvTag)
}

// SendrecvSized is Sendrecv with an explicit virtual size for the outgoing
// message (see SendSized). Because sends buffer eagerly and never block,
// sending first and then receiving matches the posted-receive-first MPI
// formulation exactly.
func (c *Comm) SendrecvSized(dst, sendTag int, data []byte, virtualBytes, src, recvTag int) ([]byte, Status, error) {
	if err := c.SendSized(dst, sendTag, data, virtualBytes); err != nil {
		return nil, Status{}, err
	}
	return c.Recv(src, recvTag)
}

// SendrecvGhost is Sendrecv for ghost messages: nbytes of unmaterialized
// payload out (modeled as virtualBytes), and the matching inbound message
// received and discarded. The whole exchange allocates nothing.
func (c *Comm) SendrecvGhost(dst, sendTag, nbytes, virtualBytes, src, recvTag int) (Status, error) {
	if err := c.SendGhost(dst, sendTag, nbytes, virtualBytes); err != nil {
		return Status{}, err
	}
	return c.RecvDiscard(src, recvTag)
}

// --- typed float64 helpers -------------------------------------------------

// Float64sToBytes encodes xs little-endian; the inverse of BytesToFloat64s.
func Float64sToBytes(xs []float64) []byte {
	return AppendFloat64s(make([]byte, 0, 8*len(xs)), xs)
}

// AppendFloat64s appends the little-endian encoding of xs to dst and
// returns the extended buffer — the allocation-free variant of
// Float64sToBytes for callers that reuse a scratch buffer.
func AppendFloat64s(dst []byte, xs []float64) []byte {
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// BytesToFloat64s decodes a buffer produced by Float64sToBytes.
func BytesToFloat64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpi: payload length %d is not a multiple of 8", len(b))
	}
	return appendBytesToFloat64s(make([]float64, 0, len(b)/8), b), nil
}

// appendBytesToFloat64s decodes b (length already validated as a multiple
// of 8) onto dst.
func appendBytesToFloat64s(dst []float64, b []byte) []float64 {
	for i := 0; i+8 <= len(b); i += 8 {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(b[i:])))
	}
	return dst
}

// SendFloat64s sends a float64 vector. The encoding runs through the
// rank's scratch buffer, so the call allocates nothing.
//
//seclint:hotpath
func (c *Comm) SendFloat64s(dst, tag int, xs []float64) error {
	return c.sendFloat64sSized(dst, tag, xs, 8*len(xs))
}

// SendFloat64sSized is SendFloat64s with an explicit virtual message size
// (see SendSized).
func (c *Comm) SendFloat64sSized(dst, tag int, xs []float64, virtualBytes int) error {
	return c.sendFloat64sSized(dst, tag, xs, virtualBytes)
}

// sendFloat64sSized encodes xs into per-rank scratch and sends it with an
// explicit virtual size.
func (c *Comm) sendFloat64sSized(dst, tag int, xs []float64, vbytes int) error {
	buf := AppendFloat64s(c.rs.encScratch[:0], xs)
	c.rs.encScratch = buf[:0]
	return c.SendSized(dst, tag, buf, vbytes)
}

// RecvFloat64s receives a float64 vector. The wire buffer is recycled
// internally; the returned vector is freshly allocated and caller-owned.
func (c *Comm) RecvFloat64s(src, tag int) ([]float64, Status, error) {
	e, err := c.recvEnvelope(src, tag)
	if err != nil {
		return nil, Status{}, err
	}
	st := Status{Source: e.src, Tag: e.tag, Bytes: e.vbytes}
	xs, err := decodeEnvelopeFloat64s(e, nil)
	freeEnvelope(e)
	return xs, st, err
}

// recvFloat64sInto receives a float64 vector into dst (grown as needed),
// returning the filled slice — the zero-allocation receive the collectives
// fold from.
func (c *Comm) recvFloat64sInto(dst []float64, src, tag int) ([]float64, Status, error) {
	e, err := c.recvEnvelope(src, tag)
	if err != nil {
		return nil, Status{}, err
	}
	st := Status{Source: e.src, Tag: e.tag, Bytes: e.vbytes}
	xs, err := decodeEnvelopeFloat64s(e, dst[:0])
	freeEnvelope(e)
	return xs, st, err
}

// decodeEnvelopeFloat64s decodes e's payload onto dst. Ghost payloads
// decode as zeros of the advertised length.
func decodeEnvelopeFloat64s(e *envelope, dst []float64) ([]float64, error) {
	if e.nbytes%8 != 0 {
		return nil, fmt.Errorf("mpi: payload length %d is not a multiple of 8", e.nbytes)
	}
	n := e.nbytes / 8
	if e.ghost() {
		if cap(dst) < n {
			dst = make([]float64, 0, n)
		}
		dst = dst[:n]
		for i := range dst {
			dst[i] = 0
		}
		return dst, nil
	}
	return appendBytesToFloat64s(dst, e.data), nil
}

// SendrecvFloat64s exchanges float64 vectors with neighbors.
func (c *Comm) SendrecvFloat64s(dst, sendTag int, xs []float64, src, recvTag int) ([]float64, Status, error) {
	out, st, err := c.SendrecvFloat64sInto(dst, sendTag, xs, 8*len(xs), src, recvTag, nil)
	return out, st, err
}

// SendrecvFloat64sInto is the scratch-friendly sendrecv for float64
// vectors: xs is encoded through the rank's scratch buffer (no allocation),
// the outgoing transfer is modeled as virtualBytes, and the received vector
// is decoded into `into` (grown when too small) with the wire buffer
// recycled. The returned slice aliases `into` when it fit.
func (c *Comm) SendrecvFloat64sInto(dst, sendTag int, xs []float64, virtualBytes, src, recvTag int, into []float64) ([]float64, Status, error) {
	if err := c.sendFloat64sSized(dst, sendTag, xs, virtualBytes); err != nil {
		return nil, Status{}, err
	}
	if into == nil {
		return c.RecvFloat64s(src, recvTag)
	}
	return c.recvFloat64sInto(into, src, recvTag)
}
