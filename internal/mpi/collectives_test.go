package mpi

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// collSizes is the rank-count sweep used for every collective: powers of
// two, odd sizes, primes, and 1.
var collSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestBarrierAlignsClocks(t *testing.T) {
	cfg := testCfg(6)
	cfg.Model = nil // default ideal; latency zero, so exact alignment
	_, err := Run(cfg, func(c *Comm) error {
		// Desynchronize deliberately.
		c.Sleep(float64(c.Rank()))
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Now() < 5.0 {
			t.Errorf("rank %d clock %g did not reach the slowest rank", c.Rank(), c.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, p := range collSizes {
		for root := 0; root < p; root++ {
			p, root := p, root
			t.Run(fmt.Sprintf("p=%d root=%d", p, root), func(t *testing.T) {
				want := []byte(fmt.Sprintf("payload-from-%d", root))
				_, err := Run(testCfg(p), func(c *Comm) error {
					var in []byte
					if c.Rank() == root {
						in = want
					}
					got, err := c.Bcast(root, in)
					if err != nil {
						return err
					}
					if !bytes.Equal(got, want) {
						t.Errorf("rank %d got %q", c.Rank(), got)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestReduceOpsAllSizes(t *testing.T) {
	ops := []struct {
		op   Op
		want func(p int) []float64
	}{
		{OpSum, func(p int) []float64 {
			// ranks contribute [r, 2r]; sum = [p(p-1)/2, p(p-1)]
			s := float64(p*(p-1)) / 2
			return []float64{s, 2 * s}
		}},
		{OpMax, func(p int) []float64 { return []float64{float64(p - 1), 2 * float64(p-1)} }},
		{OpMin, func(p int) []float64 { return []float64{0, 0} }},
	}
	for _, p := range collSizes {
		for _, tc := range ops {
			p, tc := p, tc
			t.Run(fmt.Sprintf("p=%d op=%v", p, tc.op), func(t *testing.T) {
				root := (p - 1) / 2
				_, err := Run(testCfg(p), func(c *Comm) error {
					in := []float64{float64(c.Rank()), 2 * float64(c.Rank())}
					got, err := c.Reduce(root, in, tc.op)
					if err != nil {
						return err
					}
					if c.Rank() == root {
						if !reflect.DeepEqual(got, tc.want(p)) {
							t.Errorf("reduce %v = %v, want %v", tc.op, got, tc.want(p))
						}
					} else if got != nil {
						t.Errorf("non-root rank %d got %v", c.Rank(), got)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestReduceProd(t *testing.T) {
	_, err := Run(testCfg(4), func(c *Comm) error {
		got, err := c.Reduce(0, []float64{float64(c.Rank() + 1)}, OpProd)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && got[0] != 24 {
			t.Errorf("prod = %v, want 24", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceLengthMismatch(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		in := make([]float64, 1+c.Rank()) // different lengths per rank
		_, err := c.Reduce(0, in, OpSum)
		if c.Rank() == 0 && err == nil {
			t.Error("length mismatch not detected at root")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	for _, p := range collSizes {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			_, err := Run(testCfg(p), func(c *Comm) error {
				got, err := c.Allreduce([]float64{1, float64(c.Rank())}, OpSum)
				if err != nil {
					return err
				}
				want := []float64{float64(p), float64(p*(p-1)) / 2}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("rank %d: allreduce = %v, want %v", c.Rank(), got, want)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllreduceScalar(t *testing.T) {
	_, err := Run(testCfg(5), func(c *Comm) error {
		got, err := c.AllreduceFloat64(float64(c.Rank()), OpMax)
		if err != nil {
			return err
		}
		if got != 4 {
			t.Errorf("scalar allreduce = %g", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScalarNonRootNaN(t *testing.T) {
	_, err := Run(testCfg(3), func(c *Comm) error {
		got, err := c.ReduceFloat64(0, 1, OpSum)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if got != 3 {
				t.Errorf("root scalar reduce = %g", got)
			}
		} else if !math.IsNaN(got) {
			t.Errorf("non-root scalar reduce = %g, want NaN", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterRoundtrip(t *testing.T) {
	for _, p := range collSizes {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			root := p / 2
			_, err := Run(testCfg(p), func(c *Comm) error {
				// Variable-size contributions: rank r sends r+1 bytes.
				mine := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
				parts, err := c.Gather(root, mine)
				if err != nil {
					return err
				}
				if c.Rank() == root {
					for r := 0; r < p; r++ {
						want := bytes.Repeat([]byte{byte(r)}, r+1)
						if !bytes.Equal(parts[r], want) {
							t.Errorf("gathered[%d] = %v", r, parts[r])
						}
					}
				} else if parts != nil {
					t.Errorf("non-root got %v", parts)
				}
				// Scatter back doubled.
				var out [][]byte
				if c.Rank() == root {
					out = make([][]byte, p)
					for r := range out {
						out[r] = bytes.Repeat([]byte{byte(r)}, 2*(r+1))
					}
				}
				back, err := c.Scatter(root, out)
				if err != nil {
					return err
				}
				want := bytes.Repeat([]byte{byte(c.Rank())}, 2*(c.Rank()+1))
				if !bytes.Equal(back, want) {
					t.Errorf("scattered = %v, want %v", back, want)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestScatterValidatesParts(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Scatter(0, [][]byte{{1}}) // wrong count
			if err == nil {
				t.Error("short parts accepted")
			}
			// Unblock rank 1 with a real scatter.
			_, err = c.Scatter(0, [][]byte{{1}, {2}})
			return err
		}
		_, err := c.Scatter(0, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveRootValidation(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if _, err := c.Bcast(2, nil); err == nil {
			t.Error("Bcast root out of range accepted")
		}
		if _, err := c.Reduce(-1, nil, OpSum); err == nil {
			t.Error("Reduce root out of range accepted")
		}
		if _, err := c.Gather(7, nil); err == nil {
			t.Error("Gather root out of range accepted")
		}
		if _, err := c.Scatter(7, nil); err == nil {
			t.Error("Scatter root out of range accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range collSizes {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			_, err := Run(testCfg(p), func(c *Comm) error {
				got, err := c.Allgather([]byte{byte(c.Rank()), byte(c.Rank() * 2)})
				if err != nil {
					return err
				}
				for r := 0; r < p; r++ {
					want := []byte{byte(r), byte(r * 2)}
					if !bytes.Equal(got[r], want) {
						t.Errorf("rank %d allgather[%d] = %v", c.Rank(), r, got[r])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range collSizes {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			_, err := Run(testCfg(p), func(c *Comm) error {
				parts := make([][]byte, p)
				for r := range parts {
					parts[r] = []byte{byte(c.Rank()), byte(r)}
				}
				got, err := c.Alltoall(parts)
				if err != nil {
					return err
				}
				for r := 0; r < p; r++ {
					want := []byte{byte(r), byte(c.Rank())}
					if !bytes.Equal(got[r], want) {
						t.Errorf("rank %d alltoall[%d] = %v, want %v", c.Rank(), r, got[r], want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlltoallValidatesParts(t *testing.T) {
	_, err := Run(testCfg(3), func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Alltoall([][]byte{{1}}); err == nil {
				t.Error("short parts accepted")
			}
		}
		// Complete a real alltoall so every rank exits cleanly.
		parts := make([][]byte, 3)
		for i := range parts {
			parts[i] = []byte{0}
		}
		_, err := c.Alltoall(parts)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{OpSum: "sum", OpMax: "max", OpMin: "min", OpProd: "prod", Op(42): "Op(42)"}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q", int(op), op.String())
		}
	}
}

func TestOpApplyUnknown(t *testing.T) {
	bad := Op(99)
	if err := bad.apply([]float64{1}, []float64{2}); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestDupAndSplit(t *testing.T) {
	const p = 6
	_, err := Run(testCfg(p), func(c *Comm) error {
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if dup.Size() != p || dup.Rank() != c.Rank() {
			t.Errorf("dup identity wrong: %d/%d", dup.Rank(), dup.Size())
		}
		if dup.ID() == c.ID() {
			t.Error("dup shares communicator ID with parent")
		}
		// Traffic on the dup must not collide with the parent.
		if dup.Rank() == 0 {
			if err := dup.Send(1, 0, []byte("dup")); err != nil {
				return err
			}
			if err := c.Send(1, 0, []byte("parent")); err != nil {
				return err
			}
		}
		if dup.Rank() == 1 {
			b, _, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			if string(b) != "parent" {
				t.Errorf("parent comm got %q", b)
			}
			b, _, err = dup.Recv(0, 0)
			if err != nil {
				return err
			}
			if string(b) != "dup" {
				t.Errorf("dup comm got %q", b)
			}
		}

		// Split into even/odd, keyed to reverse the order.
		sub, err := c.Split(c.Rank()%2, -c.Rank())
		if err != nil {
			return err
		}
		if sub == nil {
			t.Fatalf("rank %d got nil subcomm", c.Rank())
		}
		if sub.Size() != p/2 {
			t.Errorf("subcomm size = %d", sub.Size())
		}
		// Reverse key order: world rank 4 is rank 0 of the even comm.
		wantRank := (p/2 - 1) - c.Rank()/2
		if sub.Rank() != wantRank {
			t.Errorf("world rank %d: sub rank = %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		if sub.WorldRank() != c.Rank() {
			t.Errorf("WorldRank lost: %d vs %d", sub.WorldRank(), c.Rank())
		}
		// A collective on the subcomm.
		sum, err := sub.AllreduceFloat64(float64(c.Rank()), OpSum)
		if err != nil {
			return err
		}
		want := 0.0
		for r := c.Rank() % 2; r < p; r += 2 {
			want += float64(r)
		}
		if sum != want {
			t.Errorf("subcomm allreduce = %g, want %g", sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	_, err := Run(testCfg(4), func(c *Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub, err := c.Split(color, c.Rank())
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("undefined color produced a communicator")
			}
			return nil
		}
		if sub == nil || sub.Size() != 3 {
			t.Errorf("rank %d: sub = %v", c.Rank(), sub)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitTwiceIndependent(t *testing.T) {
	_, err := Run(testCfg(4), func(c *Comm) error {
		a, err := c.Split(c.Rank()/2, c.Rank())
		if err != nil {
			return err
		}
		b, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if a.ID() == b.ID() {
			t.Error("two splits share an ID")
		}
		if a.Size() != 2 || b.Size() != 2 {
			t.Errorf("split sizes %d/%d", a.Size(), b.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
