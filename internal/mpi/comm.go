package mpi

import (
	"fmt"
	"sort"
	"sync"
)

// commShared is the state one communicator shares across its ranks.
type commShared struct {
	id    int64
	world *World
	group []int // comm rank -> world rank
	// boxShards holds the communicator's mailboxes in lazily materialized
	// shard slabs, indexed by comm rank >> shardBits (p2p.go).
	boxShards []boxShard

	sections *sectionRegistry

	splitMu  sync.Mutex
	splitGen map[int]*splitState // keyed by per-rank collective call index

	// Fault tolerance (ft.go): revoked closes when the communicator is
	// revoked; pi carries the reason and is immutable once set.
	revokeOnce sync.Once
	revoked    chan struct{}
	pi         *poisonInfo

	ftMu  sync.Mutex
	ftGen map[int]*ftState // keyed by per-rank Shrink/Agree call index
}

// Comm is one rank's handle on a communicator. Handles are cheap values
// tied to their rank's goroutine; methods must only be called from it.
type Comm struct {
	shared *commShared
	rank   int // rank within this communicator
	rs     *rankState

	splitCalls int // per-rank ordinal of Split/Dup calls on this comm
	sectionIdx int // per-rank position in the section sequence log
	ftCalls    int // per-rank ordinal of Shrink/Agree calls on this comm
}

func (w *World) newCommShared(group []int) *commShared {
	cs := w.newCommSharedClean(group)
	// A communicator born into an already-failed world starts revoked, so
	// post-mortem Splits cannot silently block on a dead member. Shrink
	// results bypass this via newCommSharedClean: their groups hold only
	// survivors.
	w.ftMu.Lock()
	pi := w.failPi
	w.ftMu.Unlock()
	if pi != nil {
		cs.revoke(pi)
	}
	return cs
}

// newCommSharedClean builds and registers a communicator without the
// failed-world auto-revocation — the constructor Shrink uses for the
// survivors' communicator.
//
//seclint:allocs-ok communicator construction: once per world or shrink, off the steady path
func (w *World) newCommSharedClean(group []int) *commShared {
	w.commMu.Lock()
	id := w.nextComm
	w.nextComm++
	w.commMu.Unlock()
	cs := &commShared{
		id:        id,
		world:     w,
		group:     group,
		boxShards: make([]boxShard, (len(group)+shardSize-1)/shardSize),
		splitGen:  make(map[int]*splitState),
		revoked:   make(chan struct{}),
		ftGen:     make(map[int]*ftState),
	}
	cs.sections = newSectionRegistry(len(group))
	w.ftMu.Lock()
	w.comms = append(w.comms, cs)
	w.ftMu.Unlock()
	return cs
}

// box returns the mailbox of a comm rank together with its shard, whose
// lock guards the box. The post-materialization cost is one atomic load.
func (cs *commShared) box(rank int) (*boxShard, *mailbox) {
	sh := &cs.boxShards[rank>>shardBits]
	if !sh.ready.Load() {
		sh.materialize(len(cs.group), rank>>shardBits<<shardBits)
	}
	return sh, &sh.slab[rank&shardMask]
}

// ID reports a process-unique identifier for the communicator; tools use it
// to keep per-communicator section state apart.
func (c *Comm) ID() int64 { return c.shared.id }

// Rank reports the calling rank within this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size reports the number of ranks in this communicator.
func (c *Comm) Size() int { return len(c.shared.group) }

// WorldRank reports the calling rank's identity in MPI_COMM_WORLD.
func (c *Comm) WorldRank() int { return c.shared.group[c.rank] }

// WorldRankOf translates a rank of this communicator to its MPI_COMM_WORLD
// identity (tools use it to attribute traffic globally). It panics on an
// out-of-range rank, matching slice semantics.
func (c *Comm) WorldRankOf(r int) int { return c.shared.group[r] }

// Now reports the calling rank's virtual clock in seconds.
func (c *Comm) Now() float64 { return c.rs.now() }

// World reports global run facts (size, machine model).
func (c *Comm) World() *WorldInfo {
	w := c.rs.world
	return &WorldInfo{
		Size:           w.cfg.Ranks,
		ThreadsPerRank: w.cfg.ThreadsPerRank,
		Model:          w.cfg.Model,
		Stats:          &RuntimeStats{w: w},
	}
}

// Compute executes nothing but charges w to the rank's virtual clock as
// single-threaded work, including a sampled OS-noise detour. Benchmarks
// call it right after doing the corresponding real computation.
//
//seclint:hotpath
func (c *Comm) Compute(w WorkUnit) {
	c.ComputeParallel(w, 1)
}

// ComputeParallel charges w as executed by a team of the given size,
// including fork/join overhead and OS noise. Team sizes above the rank's
// configured ThreadsPerRank are allowed: the placement already accounted
// node occupancy with ThreadsPerRank, so passing more merely oversubscribes.
//
//seclint:hotpath
func (c *Comm) ComputeParallel(w WorkUnit, team int) {
	world := c.rs.world
	model := world.cfg.Model
	d := world.placement.ComputeTime(c.WorldRank(), w, team)
	d += model.ForkJoinOverhead(team, world.placement.NodeThreads(c.WorldRank()))
	d += model.NoiseSample(d, c.rs.rng)
	if team > 1 && len(world.computeObs) > 0 {
		start := c.rs.now()
		c.rs.advance(d)
		// The single-thread duration of the same work is what thread-level
		// efficiency analyses compare against; it is computed only here so
		// the team==1 fast path (every pure-MPI Compute call) pays nothing.
		single := world.placement.ComputeTime(c.WorldRank(), w, 1)
		end := c.rs.now()
		for _, o := range world.computeObs {
			//seclint:allocs-ok tool hooks are //seclint:hotpath roots, proven allocation-free in their own right
			o.ComputeRegion(c, team, start, end, single)
		}
		return
	}
	c.rs.advance(d)
}

// Sleep advances the rank's virtual clock by d seconds (d <= 0 is a no-op).
// It models fixed-cost activities the machine model does not cover.
func (c *Comm) Sleep(d float64) { c.rs.advance(d) }

// StorageRead charges the time to read n bytes from the filesystem.
func (c *Comm) StorageRead(n int) {
	c.rs.advance(c.rs.world.cfg.Model.StorageTime(n))
}

// StorageWrite charges the time to write n bytes to the filesystem.
func (c *Comm) StorageWrite(n int) {
	c.rs.advance(c.rs.world.cfg.Model.StorageTime(n))
}

// Dup returns a new communicator with the same group. Collective.
func (c *Comm) Dup() (*Comm, error) {
	return c.Split(0, c.rank)
}

// splitState coordinates one collective Split call.
type splitState struct {
	mu      sync.Mutex
	arrived int
	entries []splitEntry
	done    chan struct{}
	// results, filled by the last arriver
	newShared map[int]*commShared // color -> shared
}

type splitEntry struct {
	rank, color, key int
}

// Split partitions the communicator by color; ranks passing the same color
// land in a common new communicator, ordered by key (ties by old rank).
// Collective: every rank of c must call it. A negative color returns a nil
// communicator for that rank (MPI_UNDEFINED).
func (c *Comm) Split(color, key int) (*Comm, error) {
	cs := c.shared
	call := c.splitCalls
	c.splitCalls++

	cs.splitMu.Lock()
	st, ok := cs.splitGen[call]
	if !ok {
		st = &splitState{done: make(chan struct{})}
		cs.splitGen[call] = st
	}
	cs.splitMu.Unlock()

	st.mu.Lock()
	st.entries = append(st.entries, splitEntry{rank: c.rank, color: color, key: key})
	st.arrived++
	last := st.arrived == c.Size()
	if last {
		st.newShared = buildSplit(cs.world, cs, st.entries)
		close(st.done)
	}
	st.mu.Unlock()
	c.rs.enterBlocked(c, "Split", -1, 0)
	select {
	case <-st.done:
		c.rs.exitBlocked()
	case <-cs.revoked:
		c.rs.exitBlocked()
		// A member died (or the run was aborted) before every rank
		// arrived: the split can never complete.
		select {
		case <-st.done:
			// Completed concurrently with the revocation; fall through
			// and let the follow-up Barrier surface the failure.
		default:
			return nil, fmt.Errorf("mpi: rank %d: Split aborted: %w", c.rank, cs.pi.reason)
		}
	}

	// Synchronize virtual clocks like the barrier a real split implies.
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	if color < 0 {
		return nil, nil
	}
	ns := st.newShared[color]
	// Locate my rank in the new group.
	me := c.shared.group[c.rank]
	for i, wr := range ns.group {
		if wr == me {
			return &Comm{shared: ns, rank: i, rs: c.rs}, nil
		}
	}
	return nil, fmt.Errorf("mpi: split lost rank %d", me)
}

func buildSplit(w *World, parent *commShared, entries []splitEntry) map[int]*commShared {
	byColor := map[int][]splitEntry{}
	for _, e := range entries {
		if e.color >= 0 {
			byColor[e.color] = append(byColor[e.color], e)
		}
	}
	out := make(map[int]*commShared, len(byColor))
	for color, es := range byColor {
		sort.Slice(es, func(i, j int) bool {
			if es[i].key != es[j].key {
				return es[i].key < es[j].key
			}
			return es[i].rank < es[j].rank
		})
		group := make([]int, len(es))
		for i, e := range es {
			group[i] = parent.group[e.rank]
		}
		out[color] = w.newCommShared(group)
	}
	return out
}
