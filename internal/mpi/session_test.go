package mpi

import (
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
)

// Session-runtime tests: lazy shard materialization, active-subset sessions,
// and the batched ghost fan-out fast path.

// TestActiveSessionMaterializesOnlyActiveRanks is the lazy-init ground
// truth: with an Active predicate selecting 8 of 1024 declared ranks, the
// runtime must never materialize (or run fn on) the other 1016. The active
// ranks exchange p2p messages only among themselves — world-spanning
// collectives would hang by contract (Config.Active doc).
func TestActiveSessionMaterializesOnlyActiveRanks(t *testing.T) {
	const declared, active = 1024, 8
	var ran atomic.Int64
	cfg := Config{
		Ranks:   declared,
		Model:   machine.Ideal(8, 1),
		Seed:    1,
		Active:  func(rank int) bool { return rank < active },
		Timeout: time.Minute,
	}
	rep, err := Run(cfg, func(c *Comm) error {
		ran.Add(1)
		if c.Rank() >= active {
			t.Errorf("fn ran on inactive rank %d", c.Rank())
			return nil
		}
		// A p2p ring over the active subset: every active rank both sends
		// and receives, so all 8 must materialize.
		next := (c.Rank() + 1) % active
		prev := (c.Rank() + active - 1) % active
		if err := c.SendGhost(next, 7, 64, 64); err != nil {
			return err
		}
		_, err := c.RecvDiscard(prev, 7)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != active {
		t.Errorf("fn ran on %d ranks, want %d", got, active)
	}
	if rep.DeclaredRanks != declared {
		t.Errorf("DeclaredRanks = %d, want %d", rep.DeclaredRanks, declared)
	}
	if rep.ActiveRanks != active {
		t.Errorf("ActiveRanks = %d, want %d", rep.ActiveRanks, active)
	}
	if rep.MaterializedRanks != active {
		t.Errorf("MaterializedRanks = %d, want %d", rep.MaterializedRanks, active)
	}
	if len(rep.RankTimes) != declared {
		t.Fatalf("RankTimes has %d entries, want %d", len(rep.RankTimes), declared)
	}
	for r := active; r < declared; r++ {
		if rep.RankTimes[r] != 0 {
			t.Fatalf("inactive rank %d has nonzero final clock %g", r, rep.RankTimes[r])
		}
	}
}

// TestLazyBatchFanOutAcrossShards exercises the batched-delivery path over
// multiple mailbox shards on a lazily brought-up world: rank 0 scatters one
// ghost message to every other rank with a single SendGhostBatch. 600 ranks
// span three shards, so the batch takes the run-splitting shard-lock path,
// and every rank must end up materialized. This test also runs under
// `go test -race` — it is the data-race coverage for the new mailbox path.
func TestLazyBatchFanOutAcrossShards(t *testing.T) {
	const ranks = 600 // 3 shards of 256/256/88
	cfg := Config{
		Ranks:   ranks,
		Model:   machine.Ideal(64, 16),
		Seed:    1,
		Lazy:    true,
		Timeout: time.Minute,
	}
	rep, err := Run(cfg, func(c *Comm) error {
		const tag = 9
		if c.Rank() == 0 {
			dsts := make([]int, 0, ranks-1)
			nbytes := make([]int, 0, ranks-1)
			vbytes := make([]int, 0, ranks-1)
			for r := 1; r < ranks; r++ {
				dsts = append(dsts, r)
				nbytes = append(nbytes, 128)
				vbytes = append(vbytes, 4096)
			}
			if err := c.SendGhostBatch(dsts, tag, nbytes, vbytes); err != nil {
				return err
			}
			// Collect one ack per rank so the run only ends after every
			// delivery was observed.
			for r := 1; r < ranks; r++ {
				if _, err := c.RecvDiscard(r, tag); err != nil {
					return err
				}
			}
			return nil
		}
		if _, err := c.RecvDiscard(0, tag); err != nil {
			return err
		}
		return c.SendGhost(0, tag, 8, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaterializedRanks != ranks {
		t.Errorf("MaterializedRanks = %d, want %d", rep.MaterializedRanks, ranks)
	}
	if rep.ActiveRanks != ranks {
		t.Errorf("ActiveRanks = %d, want %d", rep.ActiveRanks, ranks)
	}
}

// TestSendGhostBatchSteadyStateAllocs pins the batched fan-out to the same
// contract as the single-message path: zero allocations per operation in
// steady state (pooled envelopes, reused batch scratch on the rank state).
func TestSendGhostBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates shadow memory; alloc counts are meaningless")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const warmup, runs = 64, 100
	const tag = 3
	cfg := Config{Ranks: 4, Model: machine.Ideal(4, 1), Seed: 1, Timeout: time.Minute}
	dsts := []int{1, 2, 3}
	nbytes := []int{256, 256, 256}
	vbytes := []int{1024, 1024, 1024}
	var avg float64
	_, err := Run(cfg, func(c *Comm) error {
		step := func() error {
			if c.Rank() == 0 {
				if err := c.SendGhostBatch(dsts, tag, nbytes, vbytes); err != nil {
					return err
				}
				for _, r := range dsts {
					if _, err := c.RecvDiscard(r, tag); err != nil {
						return err
					}
				}
				return nil
			}
			if _, err := c.RecvDiscard(0, tag); err != nil {
				return err
			}
			return c.SendGhost(0, tag, 8, 8)
		}
		for i := 0; i < warmup; i++ {
			if err := step(); err != nil {
				return err
			}
		}
		if c.Rank() != 0 {
			// Mirror rank 0's AllocsPerRun schedule: one warmup call plus
			// `runs` measured calls.
			for i := 0; i < runs+1; i++ {
				if err := step(); err != nil {
					return err
				}
			}
			return nil
		}
		var stepErr error
		avg = testing.AllocsPerRun(runs, func() {
			if stepErr == nil {
				stepErr = step()
			}
		})
		return stepErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("steady-state SendGhostBatch fan-out: %v allocs/op, want 0", avg)
	}
}
