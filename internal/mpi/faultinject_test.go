package mpi

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fault"
)

// TestKillAfterNOps: the op-count fail-stop fires on the rank's own op
// ordinal, independent of what its peers do.
func TestKillAfterNOps(t *testing.T) {
	plan, err := fault.ParseSpec("kill:rank=1,after=3", 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ftCfg(2)
	cfg.Fault = plan
	rep, err := Run(cfg, func(c *Comm) error {
		// Ping-pong: each iteration is one send + one recv per rank, so
		// rank 1 reaches its 3rd p2p op inside iteration 2.
		for i := 0; i < 10; i++ {
			if c.Rank() == 0 {
				if serr := c.Send(1, i, []byte("ping")); serr != nil {
					return serr
				}
				if _, rerr := c.RecvDiscard(1, i); rerr != nil {
					return rerr
				}
			} else {
				if _, rerr := c.RecvDiscard(0, i); rerr != nil {
					return rerr
				}
				if serr := c.Send(0, i, []byte("pong")); serr != nil {
					return serr
				}
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("run with killed rank returned nil error")
	}
	root := RootCause(err)
	re, ok := root.(*RankError)
	if !ok || re.Rank != 1 || !re.killed {
		t.Fatalf("RootCause = %v, want injected kill of rank 1", root)
	}
	if !errors.Is(re.Err, errFailStop) {
		t.Errorf("kill cause = %v, want errFailStop", re.Err)
	}
	inj := InjectedOnly(rep.Faults)
	if len(inj) != 1 || inj[0].Kind != fault.Kill || inj[0].Rank != 1 {
		t.Fatalf("injected log = %+v, want exactly one kill of rank 1", inj)
	}
}

// TestDropPreventsDelivery: a dropped message is never delivered — the
// receiver ends up provably deadlocked — while the sender proceeds and the
// drop lands in the fault log.
func TestDropPreventsDelivery(t *testing.T) {
	plan, err := fault.ParseSpec("drop:src=0,dst=1,prob=1", 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dlCfg(2)
	cfg.Fault = plan
	rep, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, []byte("lost"))
		}
		_, rerr := c.RecvDiscard(0, 0)
		return rerr
	})
	if err == nil {
		t.Fatal("receiver of a dropped message should deadlock")
	}
	byRank := blockedByRank(t, err, 1)
	if got := byRank[1]; got.Op != "Recv" || got.Peer != 0 {
		t.Errorf("blocked %+v, want rank 1 in Recv on peer 0", got)
	}
	inj := InjectedOnly(rep.Faults)
	if len(inj) != 1 || inj[0].Kind != fault.Drop || inj[0].Src != 0 || inj[0].Dst != 1 {
		t.Fatalf("injected log = %+v, want one 0->1 drop", inj)
	}
}

// TestDelayShiftsVirtualArrival: an injected delay pushes the receiver's
// completion time out by the configured virtual seconds.
func TestDelayShiftsVirtualArrival(t *testing.T) {
	recvT := func(spec string) float64 {
		cfg := ftCfg(2)
		if spec != "" {
			plan, err := fault.ParseSpec(spec, 3)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Fault = plan
		}
		var at float64
		_, err := Run(cfg, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, []byte("data"))
			}
			if _, rerr := c.RecvDiscard(0, 0); rerr != nil {
				return rerr
			}
			at = c.Now()
			return nil
		})
		if err != nil {
			t.Fatalf("run(%q): %v", spec, err)
		}
		return at
	}
	base := recvT("")
	delayed := recvT("delay:src=0,dst=1,prob=1,secs=0.25")
	if got := delayed - base; got < 0.25 || got > 0.2501 {
		t.Errorf("delay shifted arrival by %v virtual seconds, want ~0.25", got)
	}
}

// TestTruncShortensPayload: a truncated message arrives with frac of its
// real bytes; the receiver sees the short payload, not the advertised size.
func TestTruncShortensPayload(t *testing.T) {
	plan, err := fault.ParseSpec("trunc:src=0,dst=1,prob=1,frac=0.5", 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ftCfg(2)
	cfg.Fault = plan
	rep, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, make([]byte, 100))
		}
		data, st, rerr := c.Recv(0, 0)
		if rerr != nil {
			return rerr
		}
		defer Release(data)
		// The status still advertises the full size — truncation delivers
		// fewer real bytes than advertised, like a corrupting transport.
		if len(data) != 50 || st.Bytes != 100 {
			t.Errorf("received %d bytes advertised as %d, want 50 advertised as 100", len(data), st.Bytes)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	inj := InjectedOnly(rep.Faults)
	if len(inj) != 1 || inj[0].Kind != fault.Trunc || inj[0].Bytes != 50 {
		t.Fatalf("injected log = %+v, want one trunc to 50 bytes", inj)
	}
}

// TestInjectedScheduleDeterministic: the same plan and workload produce a
// byte-identical injected-fault schedule on every run — the property that
// makes degraded-mode sweeps reproducible. Probabilistic link rules are
// decided from sender-owned ordinals, so goroutine interleaving must not
// show through.
func TestInjectedScheduleDeterministic(t *testing.T) {
	plan, err := fault.ParseSpec(
		"delay:src=*,dst=*,prob=0.3,secs=1e-5;trunc:src=*,dst=*,prob=0.2,frac=0.5", 1234)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []fault.Event {
		cfg := ftCfg(4)
		cfg.Fault = plan
		rep, err := Run(cfg, func(c *Comm) error {
			// A ring with per-round traffic: plenty of link ordinals.
			right, left := (c.Rank()+1)%c.Size(), (c.Rank()+c.Size()-1)%c.Size()
			for i := 0; i < 16; i++ {
				if serr := c.Send(right, i, make([]byte, 64)); serr != nil {
					return serr
				}
				if _, rerr := c.RecvDiscard(left, i); rerr != nil {
					return rerr
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return InjectedOnly(rep.Faults)
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("probabilistic plan injected nothing; schedule comparison is vacuous")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("schedules differ across runs:\n%+v\nvs\n%+v", a, b)
	}
}

// TestKillEventDeterministic: the kill event's time, section and rank are a
// pure function of the plan, stable across runs.
func TestKillEventDeterministic(t *testing.T) {
	plan, err := fault.ParseSpec("kill:rank=2,after=5", 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []fault.Event {
		cfg := ftCfg(4)
		cfg.Fault = plan
		rep, err := Run(cfg, func(c *Comm) error {
			c.SectionEnter("RING")
			right, left := (c.Rank()+1)%c.Size(), (c.Rank()+c.Size()-1)%c.Size()
			for i := 0; i < 8; i++ {
				if serr := c.Send(right, i, []byte("m")); serr != nil {
					return serr
				}
				if _, rerr := c.RecvDiscard(left, i); rerr != nil {
					return rerr
				}
			}
			c.SectionExit("RING")
			return nil
		})
		if err == nil {
			t.Fatal("run with killed rank returned nil error")
		}
		return InjectedOnly(rep.Faults)
	}
	a, b := run(), run()
	if len(a) != 1 || a[0].Kind != fault.Kill || a[0].Rank != 2 || a[0].Section != "RING" {
		t.Fatalf("injected log = %+v, want one kill of rank 2 in RING", a)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("kill event varies across runs: %+v vs %+v", a, b)
	}
}

// TestFaultObserverStreams: a Tool implementing FaultObserver receives the
// injected events live, in addition to the report's sorted log.
type faultSpyTool struct {
	BaseTool
	mu     sync.Mutex
	events []fault.Event
}

func (s *faultSpyTool) FaultEvent(ev fault.Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

func TestFaultObserverStreams(t *testing.T) {
	plan, err := fault.ParseSpec("delay:src=0,dst=1,prob=1,secs=1e-6", 2)
	if err != nil {
		t.Fatal(err)
	}
	spy := &faultSpyTool{}
	cfg := ftCfg(2)
	cfg.Fault = plan
	cfg.Tools = append(cfg.Tools, spy)
	rep, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, []byte("x"))
		}
		_, rerr := c.RecvDiscard(0, 0)
		return rerr
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	spy.mu.Lock()
	streamed := append([]fault.Event(nil), spy.events...)
	spy.mu.Unlock()
	fault.SortEvents(streamed)
	if !reflect.DeepEqual(streamed, rep.Faults) {
		t.Fatalf("streamed %+v != report %+v", streamed, rep.Faults)
	}
	if len(streamed) != 1 || streamed[0].Kind != fault.Delay {
		t.Fatalf("streamed = %+v, want one delay event", streamed)
	}
}

// TestNoPlanNoStateOrOverheadHooks: without a plan no per-rank injection
// state is armed (the zero-overhead contract's structural half; the
// allocation half is covered by alloc_test.go).
func TestNoPlanNoStateOrOverheadHooks(t *testing.T) {
	_, err := Run(ftCfg(2), func(c *Comm) error {
		w := c.rs.world
		if w.fi != nil {
			t.Error("fault state armed without a plan")
		}
		if c.rs.linkSeq != nil || c.rs.killAt != 0 {
			t.Error("per-rank injection state allocated without a plan")
		}
		if c.rs.blk == nil {
			t.Error("deadline set but blocked-tracking not armed")
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}
