package mpi

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// recordingTool captures every hook invocation for assertions.
type recordingTool struct {
	BaseTool
	mu       sync.Mutex
	inits    int
	finals   int
	enters   []string // "rank:label"
	leaves   []string
	pctrl    []int
	sent     int
	received int
	colls    []string
}

func (r *recordingTool) Init(*WorldInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inits++
}

func (r *recordingTool) Finalize(*Report) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finals++
}

func (r *recordingTool) SectionEnter(c *Comm, label string, t float64, data *ToolData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.enters = append(r.enters, key(c.Rank(), label))
}

func (r *recordingTool) SectionLeave(c *Comm, label string, t float64, data *ToolData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.leaves = append(r.leaves, key(c.Rank(), label))
}

func (r *recordingTool) Pcontrol(c *Comm, level int, t float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pctrl = append(r.pctrl, level)
}

func (r *recordingTool) MessageSent(c *Comm, dst, tag, bytes int, t float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sent++
}

func (r *recordingTool) MessageRecv(c *Comm, src, tag, bytes int, t float64, m MatchInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.received++
}

func (r *recordingTool) CollectiveBegin(c *Comm, name string, t float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.colls = append(r.colls, name)
}

func key(rank int, label string) string {
	return strings.Join([]string{string(rune('0' + rank)), label}, ":")
}

func countWith(xs []string, substr string) int {
	n := 0
	for _, x := range xs {
		if strings.Contains(x, substr) {
			n++
		}
	}
	return n
}

func TestMainSectionImplicit(t *testing.T) {
	tool := &recordingTool{}
	cfg := testCfg(3)
	cfg.Tools = []Tool{tool}
	_, err := Run(cfg, func(c *Comm) error {
		if got := c.SectionStack(); len(got) != 1 || got[0] != MainSection {
			t.Errorf("rank %d stack inside main = %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tool.inits != 1 || tool.finals != 1 {
		t.Errorf("Init/Finalize counts: %d/%d", tool.inits, tool.finals)
	}
	if n := countWith(tool.enters, MainSection); n != 3 {
		t.Errorf("MPI_MAIN entered %d times, want 3", n)
	}
	if n := countWith(tool.leaves, MainSection); n != 3 {
		t.Errorf("MPI_MAIN left %d times, want 3", n)
	}
}

func TestNestedSections(t *testing.T) {
	tool := &recordingTool{}
	cfg := testCfg(2)
	cfg.Tools = []Tool{tool}
	cfg.CheckSections = true
	_, err := Run(cfg, func(c *Comm) error {
		c.SectionEnter("outer")
		c.SectionEnter("inner")
		want := []string{MainSection, "outer", "inner"}
		if got := c.SectionStack(); !reflect.DeepEqual(got, want) {
			t.Errorf("stack = %v, want %v", got, want)
		}
		if c.SectionDepth() != 3 {
			t.Errorf("depth = %d", c.SectionDepth())
		}
		c.SectionExit("inner")
		c.SectionExit("outer")
		if c.SectionDepth() != 1 {
			t.Errorf("depth after exits = %d", c.SectionDepth())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := countWith(tool.enters, "inner"); n != 2 {
		t.Errorf("inner entered %d times", n)
	}
}

func TestSectionHelperNesting(t *testing.T) {
	cfg := testCfg(1)
	cfg.CheckSections = true
	_, err := Run(cfg, func(c *Comm) error {
		return c.Section("phase", func() error {
			if c.SectionDepth() != 2 {
				t.Errorf("depth in helper = %d", c.SectionDepth())
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSectionHelperPropagatesError(t *testing.T) {
	boom := errors.New("body failed")
	_, err := Run(testCfg(1), func(c *Comm) error {
		return c.Section("phase", func() error { return boom })
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestMisnestedExitReported(t *testing.T) {
	cfg := testCfg(1)
	_, err := Run(cfg, func(c *Comm) error {
		c.SectionEnter("a")
		c.SectionExit("b") // wrong label
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "innermost") {
		t.Fatalf("misnesting not reported: %v", err)
	}
}

func TestExitWithoutEnterReported(t *testing.T) {
	_, err := Run(testCfg(1), func(c *Comm) error {
		c.SectionExit(MainSection)  // pops MAIN
		c.SectionExit("ghost")      // nothing left
		c.SectionEnter(MainSection) // restore so Run's exit stays balanced
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "no section open") {
		t.Fatalf("underflow not reported: %v", err)
	}
}

func TestSequenceDivergenceDetected(t *testing.T) {
	cfg := testCfg(2)
	cfg.CheckSections = true
	_, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SectionEnter("compute")
			c.SectionExit("compute")
		} else {
			c.SectionEnter("io")
			c.SectionExit("io")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("divergence not reported: %v", err)
	}
}

func TestSequenceAgreementPasses(t *testing.T) {
	cfg := testCfg(4)
	cfg.CheckSections = true
	_, err := Run(cfg, func(c *Comm) error {
		for i := 0; i < 5; i++ {
			c.SectionEnter("step")
			c.SectionEnter("halo")
			c.SectionExit("halo")
			c.SectionExit("step")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckingOffToleratesDivergence(t *testing.T) {
	cfg := testCfg(2) // CheckSections false
	_, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SectionEnter("only-on-zero")
			c.SectionExit("only-on-zero")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("divergence reported with checking off: %v", err)
	}
}

func TestToolDataRoundtrip(t *testing.T) {
	// A tool stores a stamp on enter and must see it again on leave —
	// the 32-byte data argument of Fig. 2.
	type stampTool struct {
		BaseTool
		mu   sync.Mutex
		seen map[byte]bool
	}
	st := &stampTool{seen: map[byte]bool{}}
	tool := &funcTool{
		enter: func(c *Comm, label string, tm float64, data *ToolData) {
			if label == "stamped" {
				data[0] = byte(c.Rank() + 1)
				data[31] = 0xAB
			}
		},
		leave: func(c *Comm, label string, tm float64, data *ToolData) {
			if label == "stamped" {
				st.mu.Lock()
				defer st.mu.Unlock()
				if data[31] != 0xAB {
					t.Errorf("tool data tail lost: %v", data)
				}
				st.seen[data[0]] = true
			}
		},
	}
	cfg := testCfg(3)
	cfg.Tools = []Tool{tool}
	_, err := Run(cfg, func(c *Comm) error {
		c.SectionEnter("stamped")
		c.Sleep(1)
		c.SectionExit("stamped")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for r := 1; r <= 3; r++ {
		if !st.seen[byte(r)] {
			t.Errorf("stamp from rank %d missing", r-1)
		}
	}
}

// funcTool adapts closures to the Tool interface for tests.
type funcTool struct {
	BaseTool
	enter func(*Comm, string, float64, *ToolData)
	leave func(*Comm, string, float64, *ToolData)
}

func (f *funcTool) SectionEnter(c *Comm, l string, t float64, d *ToolData) {
	if f.enter != nil {
		f.enter(c, l, t, d)
	}
}

func (f *funcTool) SectionLeave(c *Comm, l string, t float64, d *ToolData) {
	if f.leave != nil {
		f.leave(c, l, t, d)
	}
}

func TestToolDataNestedInstancesIndependent(t *testing.T) {
	// Each nested section instance gets its own 32-byte slot.
	var mu sync.Mutex
	got := map[string]byte{}
	tool := &funcTool{
		enter: func(c *Comm, label string, tm float64, data *ToolData) {
			data[0] = label[0]
		},
		leave: func(c *Comm, label string, tm float64, data *ToolData) {
			mu.Lock()
			got[label] = data[0]
			mu.Unlock()
		},
	}
	cfg := testCfg(1)
	cfg.Tools = []Tool{tool}
	_, err := Run(cfg, func(c *Comm) error {
		c.SectionEnter("aaa")
		c.SectionEnter("bbb")
		c.SectionExit("bbb")
		c.SectionExit("aaa")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got["aaa"] != 'a' || got["bbb"] != 'b' {
		t.Errorf("tool data mixed across nested frames: %v", got)
	}
}

func TestPcontrolNotifiesTools(t *testing.T) {
	tool := &recordingTool{}
	cfg := testCfg(2)
	cfg.Tools = []Tool{tool}
	_, err := Run(cfg, func(c *Comm) error {
		c.Pcontrol(1)
		c.Pcontrol(0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tool.pctrl) != 4 {
		t.Errorf("pcontrol events = %v", tool.pctrl)
	}
}

func TestMessageHooksFire(t *testing.T) {
	tool := &recordingTool{}
	cfg := testCfg(2)
	cfg.Tools = []Tool{tool}
	_, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, []byte("x"))
		}
		_, _, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if tool.sent != 1 || tool.received != 1 {
		t.Errorf("message hooks: sent=%d received=%d", tool.sent, tool.received)
	}
}

func TestCollectiveHooksFire(t *testing.T) {
	tool := &recordingTool{}
	cfg := testCfg(4)
	cfg.Tools = []Tool{tool}
	_, err := Run(cfg, func(c *Comm) error {
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := countWith(tool.colls, "Barrier"); n != 4 {
		t.Errorf("Barrier hook fired %d times, want 4", n)
	}
}

func TestMultipleToolsChained(t *testing.T) {
	a, b := &recordingTool{}, &recordingTool{}
	cfg := testCfg(2)
	cfg.Tools = []Tool{a, b}
	_, err := Run(cfg, func(c *Comm) error {
		c.SectionEnter("s")
		c.SectionExit("s")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if countWith(a.enters, ":s") != 2 || countWith(b.enters, ":s") != 2 {
		t.Errorf("chained tools missed events: %d/%d",
			countWith(a.enters, ":s"), countWith(b.enters, ":s"))
	}
}

func TestSectionsPerCommunicatorIndependent(t *testing.T) {
	cfg := testCfg(4)
	cfg.CheckSections = true
	_, err := Run(cfg, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		// Different labels on different subcomms is legal: the sequence
		// invariant is per communicator.
		label := "even-phase"
		if c.Rank()%2 == 1 {
			label = "odd-phase"
		}
		sub.SectionEnter(label)
		sub.SectionExit(label)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSectionErrorListBounded(t *testing.T) {
	_, err := Run(testCfg(1), func(c *Comm) error {
		for i := 0; i < 1000; i++ {
			c.SectionExit("never-opened")
		}
		return nil
	})
	if err == nil {
		t.Fatal("errors not reported")
	}
	if n := len(strings.Split(err.Error(), "\n")); n > 100 {
		t.Errorf("error list unbounded: %d lines", n)
	}
}
