package mpi

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/machine"
	"repro/internal/stats"
)

// Randomized traffic stress: arbitrary (but deadlock-free) communication
// patterns must deliver every message exactly once, unmodified, with clocks
// monotone — the delivery-soundness property behind every benchmark.

// TestRandomPermutationTraffic: in each round, messages follow a random
// permutation; every rank sends one and receives one.
func TestRandomPermutationTraffic(t *testing.T) {
	f := func(seed uint32, pRaw, roundsRaw uint8) bool {
		p := int(pRaw)%7 + 2
		rounds := int(roundsRaw)%8 + 1
		rng := stats.NewRNG(uint64(seed))
		// Pre-generate one permutation and payload length per round.
		perms := make([][]int, rounds)
		sizes := make([]int, rounds)
		for r := range perms {
			perm := make([]int, p)
			for i := range perm {
				perm[i] = i
			}
			// Fisher–Yates.
			for i := p - 1; i > 0; i-- {
				j := rng.Intn(i + 1)
				perm[i], perm[j] = perm[j], perm[i]
			}
			perms[r] = perm
			sizes[r] = rng.Intn(2048)
		}
		var mu sync.Mutex
		received := map[string]bool{}
		cfg := Config{
			Ranks:   p,
			Model:   machine.Ideal(p, 1),
			Seed:    uint64(seed),
			Timeout: 60 * time.Second,
		}
		_, err := Run(cfg, func(c *Comm) error {
			for r := 0; r < rounds; r++ {
				dst := perms[r][c.Rank()]
				// Find who sends to me this round.
				src := -1
				for s, d := range perms[r] {
					if d == c.Rank() {
						src = s
					}
				}
				payload := make([]byte, sizes[r])
				for i := range payload {
					payload[i] = byte(c.Rank() + r + i)
				}
				req, err := c.Irecv(src, r)
				if err != nil {
					return err
				}
				if err := c.Send(dst, r, payload); err != nil {
					return err
				}
				data, st, err := req.Wait()
				if err != nil {
					return err
				}
				if st.Source != src || len(data) != sizes[r] {
					return fmt.Errorf("round %d: got %d bytes from %d, want %d from %d",
						r, len(data), st.Source, sizes[r], src)
				}
				for i, b := range data {
					if b != byte(src+r+i) {
						return fmt.Errorf("round %d: payload corrupted at %d", r, i)
					}
				}
				mu.Lock()
				key := fmt.Sprintf("%d->%d@%d", src, c.Rank(), r)
				if received[key] {
					mu.Unlock()
					return fmt.Errorf("duplicate delivery %s", key)
				}
				received[key] = true
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Log(err)
			return false
		}
		return len(received) == p*rounds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRandomCollectiveSequences: random sequences of collectives agree with
// locally computed references on every rank.
func TestRandomCollectiveSequences(t *testing.T) {
	f := func(seed uint32, pRaw, opsRaw uint8) bool {
		p := int(pRaw)%6 + 2
		nOps := int(opsRaw)%6 + 1
		rng := stats.NewRNG(uint64(seed))
		kinds := make([]int, nOps)
		roots := make([]int, nOps)
		for i := range kinds {
			kinds[i] = rng.Intn(4)
			roots[i] = rng.Intn(p)
		}
		cfg := Config{Ranks: p, Model: machine.Ideal(p, 1), Seed: uint64(seed), Timeout: 60 * time.Second}
		_, err := Run(cfg, func(c *Comm) error {
			for i := 0; i < nOps; i++ {
				switch kinds[i] {
				case 0:
					if err := c.Barrier(); err != nil {
						return err
					}
				case 1:
					got, err := c.AllreduceFloat64(float64(c.Rank()+i), OpSum)
					if err != nil {
						return err
					}
					want := 0.0
					for r := 0; r < p; r++ {
						want += float64(r + i)
					}
					if got != want {
						return fmt.Errorf("op %d: allreduce %g != %g", i, got, want)
					}
				case 2:
					payload := []byte(fmt.Sprintf("op%d-root%d", i, roots[i]))
					var in []byte
					if c.Rank() == roots[i] {
						in = payload
					}
					got, err := c.Bcast(roots[i], in)
					if err != nil {
						return err
					}
					if string(got) != string(payload) {
						return fmt.Errorf("op %d: bcast %q", i, got)
					}
				default:
					got, err := c.Allgather([]byte{byte(c.Rank()), byte(i)})
					if err != nil {
						return err
					}
					for r := 0; r < p; r++ {
						if got[r][0] != byte(r) || got[r][1] != byte(i) {
							return fmt.Errorf("op %d: allgather[%d] = %v", i, r, got[r])
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
