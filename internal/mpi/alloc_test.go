package mpi

import (
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/machine"
)

// Allocation-regression tests for the message fast path: after warmup, the
// point-to-point path (pooled envelopes + size-classed payload buffers +
// recycled posted-receive channels) must run allocation-free, and the tree
// collectives (per-rank scratch) must stay within a small constant. GC is
// disabled for the measurement window — a collection would drain the
// sync.Pools and show the refill as false allocations.

// pingPong is one synchronized round trip between ranks 0 and 1. Lockstep
// keeps the mailbox occupancy bounded, so the measured window exercises
// the steady state rather than queue growth.
func pingPong(c *Comm, payload []byte) error {
	peer := 1 - c.Rank()
	if c.Rank() == 0 {
		if err := c.Send(peer, 0, payload); err != nil {
			return err
		}
		buf, _, err := c.Recv(peer, 0)
		if err != nil {
			return err
		}
		Release(buf)
		return nil
	}
	buf, _, err := c.Recv(peer, 0)
	if err != nil {
		return err
	}
	Release(buf)
	return c.Send(peer, 0, payload)
}

func TestSendRecvSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates shadow memory; alloc counts are meaningless")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const warmup, runs = 64, 100
	payload := make([]byte, 1024)
	cfg := Config{Ranks: 2, Model: machine.Ideal(2, 1), Seed: 1, Timeout: time.Minute}
	var avg float64
	_, err := Run(cfg, func(c *Comm) error {
		for i := 0; i < warmup; i++ {
			if err := pingPong(c, payload); err != nil {
				return err
			}
		}
		if c.Rank() != 0 {
			// Mirror rank 0's AllocsPerRun schedule: one warmup call plus
			// `runs` measured calls.
			for i := 0; i < runs+1; i++ {
				if err := pingPong(c, payload); err != nil {
					return err
				}
			}
			return nil
		}
		var stepErr error
		avg = testing.AllocsPerRun(runs, func() {
			if stepErr == nil {
				stepErr = pingPong(c, payload)
			}
		})
		return stepErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("steady-state Send/Recv: %v allocs/op, want 0", avg)
	}
}

// waitStateTool is a no-op consumer of the matched-pair timestamps — the
// shape of a wait-state analyzer attached in production. It pins down that
// delivering MatchInfo to a tool costs nothing: the struct is passed by
// value, so the fast path stays allocation-free with the tool attached.
type waitStateTool struct {
	BaseTool
	recvs int
	wait  float64
}

func (w *waitStateTool) MessageRecv(c *Comm, src, tag, bytes int, t float64, m MatchInfo) {
	w.recvs++
	if d := t - m.PostT; d > 0 {
		w.wait += d
	}
}

func TestSendRecvSteadyStateAllocsWithWaitStateTool(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates shadow memory; alloc counts are meaningless")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const warmup, runs = 64, 100
	payload := make([]byte, 1024)
	tool := &waitStateTool{}
	cfg := Config{Ranks: 2, Model: machine.Ideal(2, 1), Seed: 1,
		Tools: []Tool{tool}, Timeout: time.Minute}
	var avg float64
	_, err := Run(cfg, func(c *Comm) error {
		for i := 0; i < warmup; i++ {
			if err := pingPong(c, payload); err != nil {
				return err
			}
		}
		if c.Rank() != 0 {
			for i := 0; i < runs+1; i++ {
				if err := pingPong(c, payload); err != nil {
					return err
				}
			}
			return nil
		}
		var stepErr error
		avg = testing.AllocsPerRun(runs, func() {
			if stepErr == nil {
				stepErr = pingPong(c, payload)
			}
		})
		return stepErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("steady-state Send/Recv with wait-state tool: %v allocs/op, want 0", avg)
	}
	if tool.recvs == 0 {
		t.Fatal("wait-state tool observed no receives")
	}
}

func TestAllreduceSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates shadow memory; alloc counts are meaningless")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const warmup, runs = 64, 100
	cfg := Config{Ranks: 8, Model: machine.Ideal(8, 1), Seed: 1, Timeout: time.Minute}
	var avg float64
	_, err := Run(cfg, func(c *Comm) error {
		xs := []float64{1, 2, 3, 4, float64(c.Rank()), 6, 7, 8}
		step := func() error {
			_, err := c.Allreduce(xs, OpSum)
			return err
		}
		for i := 0; i < warmup; i++ {
			if err := step(); err != nil {
				return err
			}
		}
		if c.Rank() != 0 {
			for i := 0; i < runs+1; i++ {
				if err := step(); err != nil {
					return err
				}
			}
			return nil
		}
		var stepErr error
		avg = testing.AllocsPerRun(runs, func() {
			if stepErr == nil {
				stepErr = step()
			}
		})
		return stepErr
	})
	if err != nil {
		t.Fatal(err)
	}
	// The public Allreduce hands every caller an owned result slice — one
	// allocation per rank per op is the contract (AllocsPerRun counts the
	// whole process, i.e. all 8 ranks). Anything above means the internal
	// scratch reuse (encode buffers, accumulator, recv vectors) regressed.
	if avg > 8 {
		t.Errorf("steady-state Allreduce: %v allocs/op across 8 ranks, want <= 8 (one result copy per rank)", avg)
	}
}

// BenchmarkSendRecv is the steady-state p2p micro-benchmark the fast path
// targets: 0 allocs/op.
func BenchmarkSendRecv(b *testing.B) {
	payload := make([]byte, 1024)
	cfg := Config{Ranks: 2, Model: machine.Ideal(2, 1), Seed: 1, Timeout: 10 * time.Minute}
	b.ReportAllocs()
	b.ResetTimer()
	_, err := Run(cfg, func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if err := pingPong(c, payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllreduce measures the vector collective with per-rank scratch.
func BenchmarkAllreduce(b *testing.B) {
	cfg := Config{Ranks: 8, Model: machine.Ideal(8, 1), Seed: 1, Timeout: 10 * time.Minute}
	b.ReportAllocs()
	b.ResetTimer()
	_, err := Run(cfg, func(c *Comm) error {
		xs := []float64{1, 2, 3, 4, float64(c.Rank()), 6, 7, 8}
		for i := 0; i < b.N; i++ {
			if _, err := c.Allreduce(xs, OpSum); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
