package mpi

import "fmt"

// CartComm is a Cartesian-topology view of a communicator, the analogue of
// MPI_Cart_create: ranks are arranged on an n-dimensional grid, optionally
// periodic per dimension, with neighbor lookup by axis shift. The paper's
// benchmarks are both Cartesian (a 1-D row decomposition and a 3-D rank
// cube), and a debugger or profiler given the topology can report
// neighborhood-aware imbalance.
type CartComm struct {
	*Comm
	dims     []int
	periodic []bool
	coords   []int
}

// CartCreate arranges the communicator's ranks in row-major order on a grid
// with the given dimensions. The product of dims must equal the
// communicator size; periodic selects wrap-around per dimension (len 0
// means all false, otherwise it must match dims).
func (c *Comm) CartCreate(dims []int, periodic []bool) (*CartComm, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("mpi: CartCreate needs at least one dimension")
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("mpi: CartCreate dimension %d invalid", d)
		}
		n *= d
	}
	if n != c.Size() {
		return nil, fmt.Errorf("mpi: grid %v holds %d ranks, communicator has %d", dims, n, c.Size())
	}
	switch {
	case len(periodic) == 0:
		periodic = make([]bool, len(dims))
	case len(periodic) != len(dims):
		return nil, fmt.Errorf("mpi: periodic length %d != dims length %d", len(periodic), len(dims))
	}
	cart := &CartComm{
		Comm:     c,
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
	}
	cart.coords = cart.rankToCoords(c.Rank())
	return cart, nil
}

// Dims returns a copy of the grid dimensions.
func (cc *CartComm) Dims() []int { return append([]int(nil), cc.dims...) }

// Coords returns the calling rank's grid coordinates.
func (cc *CartComm) Coords() []int { return append([]int(nil), cc.coords...) }

// rankToCoords converts a rank to row-major coordinates.
func (cc *CartComm) rankToCoords(rank int) []int {
	coords := make([]int, len(cc.dims))
	for i := len(cc.dims) - 1; i >= 0; i-- {
		coords[i] = rank % cc.dims[i]
		rank /= cc.dims[i]
	}
	return coords
}

// CoordsToRank converts grid coordinates to a rank; it errs when a
// non-periodic coordinate is out of range (periodic ones wrap).
func (cc *CartComm) CoordsToRank(coords []int) (int, error) {
	if len(coords) != len(cc.dims) {
		return 0, fmt.Errorf("mpi: coords length %d != dims length %d", len(coords), len(cc.dims))
	}
	rank := 0
	for i, v := range coords {
		d := cc.dims[i]
		if v < 0 || v >= d {
			if !cc.periodic[i] {
				return 0, fmt.Errorf("mpi: coordinate %d out of range [0,%d) in non-periodic dim %d", v, d, i)
			}
			v = ((v % d) + d) % d
		}
		rank = rank*d + v
	}
	return rank, nil
}

// ProcNull is returned by Shift for a neighbor beyond a non-periodic edge,
// mirroring MPI_PROC_NULL.
const ProcNull = -1

// Shift reports the source and destination ranks for a displacement along
// one dimension, as MPI_Cart_shift: dst is the neighbor at +disp, src the
// neighbor at -disp; either is ProcNull beyond a non-periodic boundary.
func (cc *CartComm) Shift(dim, disp int) (src, dst int, err error) {
	if dim < 0 || dim >= len(cc.dims) {
		return 0, 0, fmt.Errorf("mpi: Shift dimension %d out of range", dim)
	}
	at := func(offset int) int {
		coords := cc.Coords()
		coords[dim] += offset
		r, err := cc.CoordsToRank(coords)
		if err != nil {
			return ProcNull
		}
		return r
	}
	return at(-disp), at(+disp), nil
}

// NeighborSendrecv performs a Sendrecv along one dimension: sends data disp
// steps forward, receives from disp steps backward. A ProcNull partner
// makes the corresponding half a no-op (nil payload returned when there is
// no source).
func (cc *CartComm) NeighborSendrecv(dim, disp, tag int, data []byte) ([]byte, Status, error) {
	src, dst, err := cc.Shift(dim, disp)
	if err != nil {
		return nil, Status{}, err
	}
	var req *Request
	if src != ProcNull {
		if req, err = cc.Irecv(src, tag); err != nil {
			return nil, Status{}, err
		}
	}
	if dst != ProcNull {
		if err := cc.Send(dst, tag, data); err != nil {
			return nil, Status{}, err
		}
	}
	if req == nil {
		return nil, Status{}, nil
	}
	return req.Wait()
}
