package mpi

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Global deadlock detection. With Config.Deadline set, every rank
// publishes what it is blocked on (op, peer, tag, section) around each
// parking point, and a sampler goroutine watches the whole world: when
// every live rank has been blocked across consecutive samples with no
// progress in between, the run is quiesced — no message can ever arrive —
// so the detector aborts it with a DeadlockError carrying the per-rank
// report instead of hanging until the watchdog. Without a Deadline the
// tracking pointers stay nil and the fast path pays one nil check.

// rank block states.
const (
	blkRunning int32 = iota
	blkBlocked
	blkFinished
)

// blockedInfo is one rank's published parking state.
type blockedInfo struct {
	mu      sync.Mutex
	state   int32
	op      string
	peer    int // world rank, -1 when unknown/any
	tag     int
	comm    int64
	section string
	since   float64 // virtual time the rank parked
}

// BlockedOp describes one rank's position in a detected deadlock: the
// operation it is parked in, the peer it waits for (world rank, -1 for
// wildcards and peerless waits), and the innermost open section.
type BlockedOp struct {
	Rank    int     `json:"rank"`
	Op      string  `json:"op"`
	Peer    int     `json:"peer"`
	Tag     int     `json:"tag"`
	Comm    int64   `json:"comm"`
	Section string  `json:"section,omitempty"`
	Since   float64 `json:"since"`
}

// DeadlockError reports that every live rank of a run was blocked with no
// possible progress. Blocked lists the parked ranks ascending — the
// per-rank "blocked in op X, section Y, peer Z" report.
type DeadlockError struct {
	Deadline time.Duration
	Blocked  []BlockedOp
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mpi: deadlock detected: all %d live ranks blocked", len(e.Blocked))
	for _, op := range e.Blocked {
		fmt.Fprintf(&b, "; rank %d blocked in %s", op.Rank, op.Op)
		if op.Peer >= 0 {
			fmt.Fprintf(&b, " on peer %d", op.Peer)
		}
		if op.Tag != 0 {
			fmt.Fprintf(&b, " tag %d", op.Tag)
		}
		if op.Section != "" {
			fmt.Fprintf(&b, " in section %s", op.Section)
		}
	}
	return b.String()
}

// enterBlocked publishes that the rank is about to park in op, waiting on
// peer (comm rank of c, or AnySource/-1) with the given tag. No-op unless
// deadlock detection is active.
func (rs *rankState) enterBlocked(c *Comm, op string, peer, tag int) {
	b := rs.blk
	if b == nil {
		return
	}
	wpeer := -1
	if peer >= 0 && peer < len(c.shared.group) {
		wpeer = c.shared.group[peer]
	}
	b.mu.Lock()
	was := b.state
	b.state = blkBlocked
	b.op, b.peer, b.tag = op, wpeer, tag
	b.comm = c.shared.id
	b.section = c.sectionLabel()
	b.since = rs.now()
	b.mu.Unlock()
	if was != blkBlocked {
		rs.world.blockedRanks.Add(1)
	}
}

// exitBlocked publishes that the rank unparked, counting global progress.
func (rs *rankState) exitBlocked() {
	b := rs.blk
	if b == nil {
		return
	}
	b.mu.Lock()
	was := b.state
	b.state = blkRunning
	b.mu.Unlock()
	if was == blkBlocked {
		rs.world.blockedRanks.Add(-1)
	}
	rs.world.progress.Add(1)
}

// markFinished retires the rank from the detector's live set (normal
// return and death both end here).
func (rs *rankState) markFinished() {
	b := rs.blk
	if b == nil {
		return
	}
	b.mu.Lock()
	was := b.state
	b.state = blkFinished
	b.mu.Unlock()
	if was == blkBlocked {
		rs.world.blockedRanks.Add(-1)
	}
	rs.world.liveRanks.Add(-1)
	rs.world.progress.Add(1)
}

// detector samples the world's blocked state.
type detector struct {
	w        *World
	deadline time.Duration
	stopc    chan struct{}
	stopOnce sync.Once
}

// newDetector arms detection. Per-rank slots are allocated with the shard
// slabs (World.detect is set before any shard materializes); the detector
// itself holds no per-rank state.
func newDetector(w *World, deadline time.Duration) *detector {
	return &detector{w: w, deadline: deadline, stopc: make(chan struct{})}
}

func (d *detector) stop() { d.stopOnce.Do(func() { close(d.stopc) }) }

// run samples at deadline/8 and fires once three consecutive samples show
// every live rank blocked with an unchanged progress counter — a quiescent
// world, since any deliverable message unparks a rank (which bumps the
// counter). Three stable samples keep a momentarily-starved runnable
// goroutine from reading as deadlock, while still reporting well within
// the configured deadline.
//
// Each tick costs three atomic loads regardless of world size: ranks
// maintain liveRanks/blockedRanks at their own park/unpark points, so the
// probe work is proportional to state *changes*, not to the rank count.
// The O(ranks) walk in snapshot runs only once, to build the report of a
// detected deadlock. Lazy runs stay sound: an active rank whose goroutine
// has not been spawned yet counts as live but can never count as blocked,
// so the world cannot read as quiescent while bring-up is still pending.
func (d *detector) run() {
	interval := d.deadline / 8
	if interval < 200*time.Microsecond {
		interval = 200 * time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stable := 0
	var prevProgress uint64
	for {
		select {
		case <-d.stopc:
			return
		case <-ticker.C:
		}
		live := d.w.liveRanks.Load()
		blocked := d.w.blockedRanks.Load()
		all := live > 0 && blocked >= live
		prog := d.w.progress.Load()
		if all && stable > 0 && prog == prevProgress {
			stable++
		} else if all {
			stable = 1
		} else {
			stable = 0
		}
		prevProgress = prog
		if stable >= 3 {
			// Re-validate with the full walk: the counters said quiescent
			// three ticks running, now collect the per-rank report.
			if all, blocked := d.snapshot(); all {
				d.w.abort(&DeadlockError{Deadline: d.deadline, Blocked: blocked})
				return
			}
			stable = 0
		}
	}
}

// snapshot reports whether every live rank is blocked, and the blocked set.
// Only materialized shards are walked; unmaterialized active ranks count
// as live-but-running, vetoing the deadlock verdict.
func (d *detector) snapshot() (bool, []BlockedOp) {
	w := d.w
	live, parked := 0, 0
	var ops []BlockedOp
	for s := range w.shards {
		sh := &w.shards[s]
		if !sh.ready.Load() {
			for r := sh.lo; r < sh.lo+sh.n; r++ {
				if w.isActive(r) {
					live++
				}
			}
			continue
		}
		for i := range sh.states {
			b := sh.states[i].blk
			b.mu.Lock()
			st := b.state
			op := BlockedOp{
				Rank: sh.lo + i, Op: b.op, Peer: b.peer, Tag: b.tag,
				Comm: b.comm, Section: b.section, Since: b.since,
			}
			b.mu.Unlock()
			if st == blkFinished {
				continue
			}
			live++
			if st == blkBlocked {
				parked++
				ops = append(ops, op)
			}
		}
	}
	return live > 0 && parked == live, ops
}
