package mpi

import (
	"math"
	"testing"
	"time"

	"repro/internal/machine"
)

// TestVirtualClockMonotone: clocks never move backwards through any mix of
// operations.
func TestVirtualClockMonotone(t *testing.T) {
	cfg := Config{
		Ranks:   4,
		Model:   machine.NehalemCluster(),
		Seed:    7,
		Timeout: 30 * time.Second,
	}
	_, err := Run(cfg, func(c *Comm) error {
		last := c.Now()
		check := func(what string) {
			if c.Now() < last {
				t.Errorf("rank %d clock went backwards after %s: %g -> %g",
					c.Rank(), what, last, c.Now())
			}
			last = c.Now()
		}
		for i := 0; i < 10; i++ {
			c.Compute(WorkUnit{Flops: 1e6})
			check("compute")
			right := (c.Rank() + 1) % c.Size()
			left := (c.Rank() - 1 + c.Size()) % c.Size()
			if _, _, err := c.Sendrecv(right, 0, make([]byte, 1024), left, 0); err != nil {
				return err
			}
			check("sendrecv")
			if err := c.Barrier(); err != nil {
				return err
			}
			check("barrier")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNoTimeTravel: a receiver's clock after Recv is at least the sender's
// clock at Send plus the minimal latency — messages cannot arrive before
// they were sent.
func TestNoTimeTravel(t *testing.T) {
	model := machine.NehalemCluster()
	cfg := Config{Ranks: 2, Model: model, Seed: 3, Timeout: 30 * time.Second}
	_, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Sleep(5) // sender is far ahead
			return c.Send(1, 0, make([]byte, 100))
		}
		_, _, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if c.Now() < 5 {
			t.Errorf("receiver clock %g precedes send time 5", c.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvDoesNotWaitWhenMessageAlreadyThere: a receiver far ahead of the
// sender pays only its own overhead, not the (past) arrival time.
func TestRecvLateReceiver(t *testing.T) {
	model := machine.Ideal(2, 1)
	cfg := Config{Ranks: 2, Model: model, Seed: 3, Timeout: 30 * time.Second}
	_, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, make([]byte, 8)); err != nil {
				return err
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil { // ensure the send happened
			return err
		}
		c.Sleep(10)
		before := c.Now()
		_, _, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if c.Now() != before {
			t.Errorf("late receiver charged %g extra", c.Now()-before)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism: identical configs and seeds give bit-identical virtual
// times, regardless of goroutine scheduling.
func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		cfg := Config{Ranks: 8, Model: machine.NehalemCluster(), Seed: 42, Timeout: 30 * time.Second}
		rep, err := Run(cfg, func(c *Comm) error {
			for i := 0; i < 20; i++ {
				c.Compute(WorkUnit{Flops: 5e6, Bytes: 1e5})
				right := (c.Rank() + 1) % c.Size()
				left := (c.Rank() - 1 + c.Size()) % c.Size()
				if _, _, err := c.Sendrecv(right, 0, make([]byte, 4096), left, 0); err != nil {
					return err
				}
			}
			_, err := c.AllreduceFloat64(float64(c.Rank()), OpSum)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.RankTimes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d diverged across identical runs: %g vs %g", i, a[i], b[i])
		}
	}
	// And a different seed must actually change something.
	cfg := Config{Ranks: 8, Model: machine.NehalemCluster(), Seed: 43, Timeout: 30 * time.Second}
	rep, err := Run(cfg, func(c *Comm) error {
		for i := 0; i < 20; i++ {
			c.Compute(WorkUnit{Flops: 5e6, Bytes: 1e5})
			right := (c.Rank() + 1) % c.Size()
			left := (c.Rank() - 1 + c.Size()) % c.Size()
			if _, _, err := c.Sendrecv(right, 0, make([]byte, 4096), left, 0); err != nil {
				return err
			}
		}
		_, err := c.AllreduceFloat64(float64(c.Rank()), OpSum)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if rep.RankTimes[i] != a[i] {
			same = false
		}
	}
	if same {
		t.Error("changing the seed changed nothing")
	}
}

// TestComputeChargesModelTime: on an ideal machine the charge is exactly
// flops/rate.
func TestComputeChargesModelTime(t *testing.T) {
	cfg := testCfg(1)
	_, err := Run(cfg, func(c *Comm) error {
		before := c.Now()
		c.Compute(WorkUnit{Flops: 2e9}) // ideal rate 1e9 flop/s
		if got := c.Now() - before; math.Abs(got-2.0) > 1e-9 {
			t.Errorf("compute charged %g, want 2", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestComputeParallelFasterButWithOverhead: more threads reduce compute
// time; the fork/join overhead appears on top.
func TestComputeParallelFasterButWithOverhead(t *testing.T) {
	model := machine.DualBroadwell()
	model.Noise = machine.Noise{} // determinism for the comparison
	cfg := Config{Ranks: 1, ThreadsPerRank: 16, Model: model, Seed: 1, Timeout: 30 * time.Second}
	var serial, parallel float64
	_, err := Run(cfg, func(c *Comm) error {
		w := WorkUnit{Flops: 1e10}
		t0 := c.Now()
		c.ComputeParallel(w, 1)
		serial = c.Now() - t0
		t0 = c.Now()
		c.ComputeParallel(w, 16)
		parallel = c.Now() - t0
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if parallel >= serial {
		t.Errorf("16 threads (%g) not faster than 1 (%g)", parallel, serial)
	}
	wantCompute := serial / 16
	overhead := parallel - wantCompute
	if overhead <= 0 {
		t.Errorf("no fork/join overhead visible: %g vs %g", parallel, wantCompute)
	}
}

// TestNoiseAddsTime: with OS noise enabled the same computation takes
// longer on average.
func TestNoiseAddsTime(t *testing.T) {
	noisy := machine.NehalemCluster()
	quiet := machine.NehalemCluster()
	quiet.Noise = machine.Noise{}
	mean := func(m *machine.Model) float64 {
		cfg := Config{Ranks: 1, Model: m, Seed: 11, Timeout: 30 * time.Second}
		var total float64
		_, err := Run(cfg, func(c *Comm) error {
			for i := 0; i < 200; i++ {
				c.Compute(WorkUnit{Flops: 1e8})
			}
			total = c.Now()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	n, q := mean(noisy), mean(quiet)
	if n <= q {
		t.Errorf("noise did not add time: noisy %g <= quiet %g", n, q)
	}
}

// TestBarrierAlignsToSlowest with a real model: after a barrier every clock
// is at least the maximum pre-barrier clock.
func TestBarrierAlignsToSlowest(t *testing.T) {
	cfg := Config{Ranks: 5, Model: machine.NehalemCluster(), Seed: 2, Timeout: 30 * time.Second}
	_, err := Run(cfg, func(c *Comm) error {
		c.Sleep(float64(c.Size() - c.Rank())) // rank 0 slowest at 5s
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Now() < 5 {
			t.Errorf("rank %d at %g escaped the barrier early", c.Rank(), c.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStorageCharges: storage reads and writes advance the clock per model.
func TestStorageCharges(t *testing.T) {
	model := machine.NehalemCluster()
	cfg := Config{Ranks: 1, Model: model, Seed: 1, Timeout: 30 * time.Second}
	_, err := Run(cfg, func(c *Comm) error {
		t0 := c.Now()
		c.StorageRead(300_000_000) // 1s at 300 MB/s + latency
		want := model.StorageTime(300_000_000)
		if got := c.Now() - t0; math.Abs(got-want) > 1e-9 {
			t.Errorf("storage read charged %g, want %g", got, want)
		}
		t0 = c.Now()
		c.StorageWrite(150_000_000)
		want = model.StorageTime(150_000_000)
		if got := c.Now() - t0; math.Abs(got-want) > 1e-9 {
			t.Errorf("storage write charged %g, want %g", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSleepIgnoresNegative: defensive clock arithmetic.
func TestSleepIgnoresNegative(t *testing.T) {
	_, err := Run(testCfg(1), func(c *Comm) error {
		before := c.Now()
		c.Sleep(-3)
		if c.Now() != before {
			t.Error("negative sleep moved the clock")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWallTimeIsMaxRankTime.
func TestWallTimeIsMaxRankTime(t *testing.T) {
	rep, err := Run(testCfg(4), func(c *Comm) error {
		c.Sleep(float64(c.Rank()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallTime != 3 {
		t.Errorf("WallTime = %g, want 3", rep.WallTime)
	}
	for r, rt := range rep.RankTimes {
		if rt != float64(r) {
			t.Errorf("RankTimes[%d] = %g", r, rt)
		}
	}
}

// TestWorldInfo exposure.
func TestWorldInfo(t *testing.T) {
	model := machine.KNL()
	cfg := Config{Ranks: 3, ThreadsPerRank: 4, Model: model, Seed: 1, Timeout: 30 * time.Second}
	_, err := Run(cfg, func(c *Comm) error {
		w := c.World()
		if w.Size != 3 || w.ThreadsPerRank != 4 || w.Model != model {
			t.Errorf("WorldInfo = %+v", w)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIntraNodeCheaperThanInterNode: messages between co-located ranks cost
// less virtual time.
func TestIntraNodeCheaperThanInterNode(t *testing.T) {
	model := machine.NehalemCluster() // 8 ranks per node
	model.Net.JitterSigma = 0         // determinism
	cfg := Config{Ranks: 9, Model: model, Seed: 1, Timeout: 30 * time.Second}
	var intra, inter float64
	_, err := Run(cfg, func(c *Comm) error {
		const n = 1 << 16
		switch c.Rank() {
		case 0:
			if err := c.Send(1, 0, make([]byte, n)); err != nil { // same node
				return err
			}
			return c.Send(8, 1, make([]byte, n)) // node 1
		case 1:
			t0 := c.Now()
			_, _, err := c.Recv(0, 0)
			intra = c.Now() - t0
			return err
		case 8:
			t0 := c.Now()
			_, _, err := c.Recv(0, 1)
			inter = c.Now() - t0
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if intra >= inter {
		t.Errorf("intra-node (%g) not cheaper than inter-node (%g)", intra, inter)
	}
}
