package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// dlCfg uses a short deadline so the ground-truth deadlocks below resolve
// quickly; the elapsed-time assertions enforce the "terminates within the
// Deadline" contract rather than relying on the coarse watchdog.
func dlCfg(ranks int) Config {
	cfg := testCfg(ranks)
	cfg.Deadline = time.Second
	cfg.Timeout = 30 * time.Second
	return cfg
}

// blockedByRank indexes a deadlock report for assertions.
func blockedByRank(t *testing.T, err error, wantLen int) map[int]BlockedOp {
	t.Helper()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("no DeadlockError in %v", err)
	}
	if RootCause(err) != error(dl) {
		t.Errorf("RootCause = %v, want the deadlock report", RootCause(err))
	}
	if len(dl.Blocked) != wantLen {
		t.Fatalf("%d ranks in report, want %d: %+v", len(dl.Blocked), wantLen, dl.Blocked)
	}
	byRank := make(map[int]BlockedOp, len(dl.Blocked))
	for _, op := range dl.Blocked {
		byRank[op.Rank] = op
	}
	return byRank
}

// TestDeadlockMismatchedTag: rank 0's message to rank 1 carries tag 1 but
// rank 1 posts its receive for tag 2; every rank ends up parked in a
// receive that can never match. The detector must name all four ranks with
// the exact op, peer and tag each is stuck on.
func TestDeadlockMismatchedTag(t *testing.T) {
	start := time.Now()
	_, err := Run(dlCfg(4), func(c *Comm) error {
		c.SectionEnter("EXCHANGE")
		defer c.SectionExit("EXCHANGE")
		switch c.Rank() {
		case 0:
			if serr := c.Send(1, 1, []byte("x")); serr != nil {
				return serr
			}
			_, rerr := c.RecvDiscard(1, 1)
			return rerr
		case 1:
			_, rerr := c.RecvDiscard(0, 2) // tag mismatch: 0 sent tag 1
			return rerr
		default:
			_, rerr := c.RecvDiscard(1, 3)
			return rerr
		}
	})
	if err == nil {
		t.Fatal("mismatched-tag program returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("detection took %v, want well within a few deadlines", elapsed)
	}
	byRank := blockedByRank(t, err, 4)
	for rank, want := range map[int]struct{ peer, tag int }{
		0: {1, 1}, 1: {0, 2}, 2: {1, 3}, 3: {1, 3},
	} {
		got := byRank[rank]
		if got.Op != "Recv" || got.Peer != want.peer || got.Tag != want.tag {
			t.Errorf("rank %d blocked in %s on peer %d tag %d, want Recv on peer %d tag %d",
				rank, got.Op, got.Peer, got.Tag, want.peer, want.tag)
		}
		if got.Section != "EXCHANGE" {
			t.Errorf("rank %d blocked in section %q, want EXCHANGE", rank, got.Section)
		}
	}
}

// TestDeadlockRecvCycle: a pure receive cycle (rank i waits on rank i+1,
// nobody sends) — the canonical circular wait. Eager-buffered sends cannot
// form send/send cycles in this runtime, so receive cycles are the ground
// truth for cyclic deadlock.
func TestDeadlockRecvCycle(t *testing.T) {
	const n = 4
	_, err := Run(dlCfg(n), func(c *Comm) error {
		_, rerr := c.RecvDiscard((c.Rank()+1)%n, 7)
		return rerr
	})
	if err == nil {
		t.Fatal("receive cycle returned nil error")
	}
	byRank := blockedByRank(t, err, n)
	for rank := 0; rank < n; rank++ {
		got := byRank[rank]
		if got.Op != "Recv" || got.Peer != (rank+1)%n || got.Tag != 7 {
			t.Errorf("rank %d: blocked %+v, want Recv on peer %d tag 7", rank, got, (rank+1)%n)
		}
	}
}

// TestDeadlockRecvFromFinishedRank: rank 0 exits cleanly without sending;
// rank 1 then waits on it forever. The detector's live set must exclude the
// finished rank and report only the genuinely stuck one.
func TestDeadlockRecvFromFinishedRank(t *testing.T) {
	_, err := Run(dlCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			return nil
		}
		_, rerr := c.RecvDiscard(0, 0)
		return rerr
	})
	if err == nil {
		t.Fatal("recv from finished rank returned nil error")
	}
	byRank := blockedByRank(t, err, 1)
	got, ok := byRank[1]
	if !ok || got.Op != "Recv" || got.Peer != 0 {
		t.Fatalf("blocked set %+v, want rank 1 in Recv on peer 0", byRank)
	}
}

// TestNoFalsePositiveOnSlowRun: a healthy run that takes several detector
// sampling periods (staggered real-time work between messages) must not be
// reported as deadlocked.
func TestNoFalsePositiveOnSlowRun(t *testing.T) {
	cfg := dlCfg(2)
	cfg.Deadline = 200 * time.Millisecond // 25ms sampling period
	_, err := Run(cfg, func(c *Comm) error {
		for i := 0; i < 8; i++ {
			if c.Rank() == 0 {
				time.Sleep(30 * time.Millisecond) // longer than a sample
				if serr := c.Send(1, i, []byte("tick")); serr != nil {
					return serr
				}
			} else {
				if _, rerr := c.RecvDiscard(0, i); rerr != nil {
					return rerr
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("healthy slow run reported: %v", err)
	}
}

// TestDeadlockErrorString: the report must render the per-rank
// "blocked in op X on peer Z in section Y" line the issue asks for.
func TestDeadlockErrorString(t *testing.T) {
	dl := &DeadlockError{Deadline: time.Second, Blocked: []BlockedOp{
		{Rank: 0, Op: "Recv", Peer: 1, Tag: 5, Section: "HALO"},
		{Rank: 1, Op: "Wait", Peer: -1},
	}}
	got := dl.Error()
	for _, want := range []string{
		"all 2 live ranks blocked",
		"rank 0 blocked in Recv on peer 1 tag 5 in section HALO",
		"rank 1 blocked in Wait",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report %q missing %q", got, want)
		}
	}
}
