package mpi

import "repro/internal/machine"

// WorkUnit aliases machine.Work so benchmark code built on the mpi package
// does not need a second import for the common case.
type WorkUnit = machine.Work

// WorldInfo carries the run-wide facts handed to tools at Init.
type WorldInfo struct {
	Size           int
	ThreadsPerRank int
	Model          *machine.Model
	// Stats exposes live runtime gauges (declared vs. materialized ranks,
	// virtual-clock frontier); safe to poll from any goroutine while the
	// run executes. May be nil for WorldInfo values constructed by tests.
	Stats *RuntimeStats
}

// ToolDataSize is the size of the opaque per-section tool payload the
// runtime preserves between enter and leave events (32 bytes, Fig. 2 of
// the paper).
const ToolDataSize = 32

// ToolData is the opaque payload tools may stash on a section instance,
// e.g. their own synchronized timestamps.
type ToolData = [ToolDataSize]byte

// MatchInfo carries the matched-pair timestamps of one received message —
// the contract wait-state analysis (Scalasca-style late-sender /
// late-receiver classification) is built on. All three stamps are virtual
// seconds on the run's shared clock base:
//
//   - SendT is the moment the matching send was posted on the sender
//     (identical to the t of its MessageSent event).
//   - PostT is the moment the receive was posted on the receiver (Recv
//     entry, or Irecv post for nonblocking receives).
//   - Arrival is the moment the payload became available at the receiver
//     per the machine model (SendT + modeled transfer).
//
// The receive completes at t >= max(PostT, Arrival); t - PostT is the
// receiver's blocked time, and SendT - PostT > 0 identifies a late sender.
// The struct is passed by value — tools must not retain pointers into it.
type MatchInfo struct {
	SendT   float64
	PostT   float64
	Arrival float64
}

// Tool is the PMPI-analogue interception interface. A profiling or tracing
// tool implements it (usually by embedding BaseTool) and is attached via
// Config.Tools; the runtime then invokes the hooks inline from the rank
// goroutines. Implementations must be safe for concurrent use — events
// arrive from every rank.
//
// SectionEnter/SectionLeave mirror MPIX_Section_enter_cb and
// MPIX_Section_leave_cb from the paper: they receive the communicator, the
// label, the rank-local virtual timestamp, and the 32-byte data slot that
// the runtime preserves between the two events of one section instance.
type Tool interface {
	Init(w *WorldInfo)
	Finalize(r *Report)
	SectionEnter(c *Comm, label string, t float64, data *ToolData)
	SectionLeave(c *Comm, label string, t float64, data *ToolData)
	Pcontrol(c *Comm, level int, t float64)
	MessageSent(c *Comm, dst, tag, bytes int, t float64)
	MessageRecv(c *Comm, src, tag, bytes int, t float64, m MatchInfo)
	CollectiveBegin(c *Comm, name string, t float64)
	CollectiveEnd(c *Comm, name string, t float64)
}

// ComputeObserver is the optional tool extension for modeled thread-team
// compute regions (an attached tool implements it next to Tool, the same
// discovery pattern as FaultObserver). The runtime invokes it from
// Comm.ComputeParallel only for team sizes above one: single-threaded
// Compute calls are the bulk of every workload and carry no thread-level
// information, so the pure-MPI fast path stays hook-free. The callback
// receives the region's [start, end] span on the rank's virtual clock, the
// team size, and single — the modeled duration the same work would have
// taken one thread — which together are exactly the inputs of the POP
// MPI+OpenMP inefficiency split (internal/pop). Implementations must be
// safe for concurrent use; regions arrive from every rank.
type ComputeObserver interface {
	ComputeRegion(c *Comm, team int, start, end, single float64)
}

// BaseTool is a no-op Tool; embed it and override the hooks you need,
// the way PMPI symbols default to their no-op library versions.
type BaseTool struct{}

// Init implements Tool.
func (BaseTool) Init(*WorldInfo) {}

// Finalize implements Tool.
func (BaseTool) Finalize(*Report) {}

// SectionEnter implements Tool.
func (BaseTool) SectionEnter(*Comm, string, float64, *ToolData) {}

// SectionLeave implements Tool.
func (BaseTool) SectionLeave(*Comm, string, float64, *ToolData) {}

// Pcontrol implements Tool.
func (BaseTool) Pcontrol(*Comm, int, float64) {}

// MessageSent implements Tool.
func (BaseTool) MessageSent(*Comm, int, int, int, float64) {}

// MessageRecv implements Tool.
func (BaseTool) MessageRecv(*Comm, int, int, int, float64, MatchInfo) {}

// CollectiveBegin implements Tool.
func (BaseTool) CollectiveBegin(*Comm, string, float64) {}

// CollectiveEnd implements Tool.
func (BaseTool) CollectiveEnd(*Comm, string, float64) {}

var _ Tool = BaseTool{}

// Pcontrol is the MPI_Pcontrol analogue: it only notifies attached tools.
// The IPM-style phase-outlining baseline in internal/prof builds on it; the
// paper contrasts its tool-defined semantics with the standardized
// MPI_Section interface.
func (c *Comm) Pcontrol(level int) {
	for _, t := range c.rs.world.cfg.Tools {
		t.Pcontrol(c, level, c.rs.now())
	}
}
