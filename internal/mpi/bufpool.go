package mpi

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Payload buffers are recycled through size-classed sync.Pools so the
// steady state of a simulation — millions of fixed-size halo messages —
// runs without per-message allocation. Ownership rule: a buffer obtained
// from Recv/Wait belongs to the caller; passing it to Release hands it
// back to the runtime, after which the caller must not touch it again (see
// Release and the package doc for the full contract).
//
// Pool mechanics: buffers live in the pools boxed as *[]byte so Get/Put
// never box a slice header into an interface (which would itself
// allocate); the empty boxes are recycled through a second pool.

const (
	minClassBits = 6  // smallest pooled buffer: 64 B
	maxClassBits = 22 // largest pooled buffer: 4 MiB; larger falls back to make
	numClasses   = maxClassBits - minClassBits + 1
)

// classBudgetBytes caps the bytes each size class may keep parked in its
// pool. Without a cap, a 10k-rank sweep whose ranks all cycle buffers can
// park an unbounded high-water mark of idle memory between GC cycles; with
// it, put simply drops buffers beyond the budget and the garbage collector
// reclaims them. 8 MiB per class bounds the whole pool near 136 MiB worst
// case while still covering the steady state of every sweep in the repo
// (the paper-scale workloads cycle a working set far below the cap, so the
// 0 allocs/op fast path never sees a budget miss).
const classBudgetBytes = 8 << 20

type payloadPool struct {
	classes [numClasses]sync.Pool // of *[]byte, len == cap == class size
	// held approximates the bytes parked per class. sync.Pool can drop
	// items during GC without telling us, so the counter may drift above
	// the true value; a get that misses the pool resets its class to zero,
	// which restores accounting (the drift direction only ever makes the
	// pool drop extra puts, never grow past ~2x budget).
	held  [numClasses]atomic.Int64
	boxes sync.Pool // of *[]byte with nil contents
}

var payloads payloadPool

// classFor returns the smallest class whose buffers hold n bytes, or -1
// when n exceeds the largest class.
func classFor(n int) int {
	c := bits.Len(uint(n-1)) - minClassBits
	if c < 0 {
		return 0
	}
	if c >= numClasses {
		return -1
	}
	return c
}

// get returns a buffer of length n. Contents are unspecified (recycled
// buffers keep their previous bytes); callers overwrite or zero as needed.
func (p *payloadPool) get(n int) []byte {
	if n == 0 {
		return nil
	}
	c := classFor(n)
	if c < 0 {
		//seclint:allocs-ok oversize request: falls through the class pool by design
		return make([]byte, n)
	}
	if v := p.classes[c].Get(); v != nil {
		box := v.(*[]byte)
		b := *box
		*box = nil
		p.boxes.Put(box)
		if p.held[c].Add(-int64(cap(b))) < 0 {
			p.held[c].Store(0)
		}
		return b[:n]
	}
	// Pool miss: whatever held still claims for this class was GC-reclaimed
	// (or raced away); reset so future puts are not spuriously dropped.
	p.held[c].Store(0)
	//seclint:allocs-ok pool miss: amortized by recycling
	return make([]byte, n, 1<<(c+minClassBits))
}

// put recycles b. Buffers smaller than the smallest class or larger than
// the largest are dropped for the garbage collector.
func (p *payloadPool) put(b []byte) {
	n := cap(b)
	if n < 1<<minClassBits {
		return
	}
	// Class by capacity floor: a class-c buffer serves any request up to
	// 1<<(c+minClassBits) <= cap.
	c := bits.Len(uint(n)) - 1 - minClassBits
	if c >= numClasses {
		return
	}
	if p.held[c].Load() >= classBudgetBytes {
		return // class at budget: leave b to the garbage collector
	}
	p.held[c].Add(int64(n))
	var box *[]byte
	if v := p.boxes.Get(); v != nil {
		box = v.(*[]byte)
	} else {
		//seclint:allocs-ok box-pool miss: amortized by recycling
		box = new([]byte)
	}
	*box = b[:n]
	p.classes[c].Put(box)
}

// Release returns a payload buffer previously obtained from Recv, Wait or
// a typed receive helper to the runtime's buffer pool, eliminating the
// allocation for a future message of similar size. It is optional — the
// garbage collector reclaims unreleased payloads — and nil-safe. After
// Release the caller must not read or write b, and must not Release it
// again: the bytes will be handed to an unrelated future message.
//
//seclint:hotpath
func Release(b []byte) {
	payloads.put(b)
}

// envelopes and posted receives are recycled too; both are small fixed
// structs, but at one of each per message they dominate the allocation
// profile once payloads are pooled.

var envPool = sync.Pool{New: func() any { return new(envelope) }}

// newEnvelope returns a zeroed envelope from the pool.
func newEnvelope() *envelope {
	return envPool.Get().(*envelope)
}

// freeEnvelope recycles e and its payload buffer (when still attached).
func freeEnvelope(e *envelope) {
	if e.data != nil {
		payloads.put(e.data)
	}
	*e = envelope{}
	envPool.Put(e)
}

// releaseEnvelope recycles e without touching its payload — used after
// ownership of e.data moved to the receiver.
func releaseEnvelope(e *envelope) {
	*e = envelope{}
	envPool.Put(e)
}

// postedPool recycles posted receives together with their one-slot match
// channels, so Irecv/Recv do not allocate a channel per operation. A
// posted may be recycled only when its channel is provably empty: either
// it matched immediately (the channel was never used) or its single
// envelope has been received.
var postedPool = sync.Pool{New: func() any {
	return &posted{ch: make(chan *envelope, 1)}
}}

func newPosted(src, tag int) *posted {
	p := postedPool.Get().(*posted)
	p.src, p.tag = src, tag
	return p
}

func freePosted(p *posted) {
	postedPool.Put(p)
}
