package mpi

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Sharded rank state. Per-rank runtime context lives in fixed-size shard
// slabs instead of one flat array of pointers: a shard's slab (and the rank
// goroutines it backs) is materialized on first touch — by the background
// spawner of a lazy run, or by the first message addressed into the shard —
// so a 10,000-rank world does not pay 10,000 allocations and goroutine
// launches before the first byte moves. Each shard also carries a virtual-
// clock frontier, a lock-free high-water mark its ranks publish at
// communication points; cross-shard time observation (live gauges, the
// run report) folds the per-shard frontiers instead of taking any global
// lock.

const (
	// shardBits sets the shard granularity: 1<<shardBits ranks per shard.
	// 256 keeps slab allocation coarse enough to amortize (a 10k-rank world
	// is 40 slabs) while small enough that a lazy session touching a few
	// ranks materializes little.
	shardBits = 8
	shardSize = 1 << shardBits
	shardMask = shardSize - 1
)

// rankShard holds the runtime state of up to shardSize consecutive world
// ranks. The states slab is allocated under mu on first touch and then
// immutable in shape; pointer stability of &states[i] is what lets the rest
// of the runtime hold *rankState across the run.
type rankShard struct {
	lo int // first world rank covered
	n  int // ranks covered (the last shard may be partial)

	mu    sync.Mutex
	ready atomic.Bool // states materialized and goroutines launched
	// spawned counts the active ranks this shard launched (gauge input).
	spawned int

	states []rankState
	blks   []blockedInfo // deadlock-detector slots; nil unless armed

	// frontier is the shard's virtual-clock high-water mark, float64 bits.
	// Ranks publish lazily at communication points (completeRecv) and at
	// finish; non-negative clocks make the bit pattern order-preserving,
	// but noteClock compares as float64 anyway.
	frontier atomic.Uint64
}

// noteClock raises the shard frontier to at least t.
func (sh *rankShard) noteClock(t float64) {
	for {
		cur := sh.frontier.Load()
		if math.Float64frombits(cur) >= t {
			return
		}
		if sh.frontier.CompareAndSwap(cur, math.Float64bits(t)) {
			return
		}
	}
}

// shardOf returns the shard header covering a world rank. Headers exist for
// the whole world from Run on; only slabs are lazy.
func (w *World) shardOf(rank int) *rankShard { return &w.shards[rank>>shardBits] }

// isActive reports whether a world rank participates in the session.
//
//seclint:allocs-ok membership predicate: the closures installed at bring-up are index and bitset lookups
func (w *World) isActive(rank int) bool {
	return w.active == nil || w.active(rank)
}

// ensureShard materializes the shard's state slab and launches the rank
// goroutines of its active ranks. Idempotent and safe from any goroutine;
// the double-checked ready flag keeps the post-materialization cost at one
// atomic load.
//
//seclint:allocs-ok lazy shard bring-up: once per shard, amortized across the session
func (w *World) ensureShard(sh *rankShard) {
	if sh.ready.Load() {
		return
	}
	sh.mu.Lock()
	if sh.ready.Load() {
		sh.mu.Unlock()
		return
	}
	sh.states = make([]rankState, sh.n)
	if w.detect {
		sh.blks = make([]blockedInfo, sh.n)
	}
	spawned := 0
	for i := range sh.states {
		rank := sh.lo + i
		rs := &sh.states[i]
		rs.id = rank
		rs.world = w
		rs.shard = sh
		rs.start = w.startT
		if w.detect {
			rs.blk = &sh.blks[i]
			rs.blk.peer = -1
		}
		if !w.isActive(rank) {
			// Inactive ranks never run and never count as live: the
			// detector sees them as already finished.
			if rs.blk != nil {
				rs.blk.state = blkFinished
			}
			continue
		}
		rs.rng = stats.NewRNG(mixSeed(w.cfg.Seed, uint64(rank)))
		if fi := w.fi; fi != nil {
			if at, ok := fi.plan.KillAfter(rank); ok {
				rs.killAt = at
			}
		}
		spawned++
	}
	sh.spawned = spawned
	sh.ready.Store(true)
	sh.mu.Unlock()
	w.materialized.Add(int64(spawned))
	for i := range sh.states {
		rs := &sh.states[i]
		if rs.rng == nil {
			continue // inactive
		}
		go w.rankMain(rs)
	}
}

// nudge materializes the shard of a world rank a message was just delivered
// to — the communication-driven half of lazy bring-up. Only called on lazy
// runs; the background spawner covers shards nobody sends to.
func (w *World) nudge(worldRank int) {
	sh := w.shardOf(worldRank)
	if !sh.ready.Load() {
		w.ensureShard(sh)
	}
}

// spawnAll is the lazy run's background spawner: it walks the shards in
// order so every active rank's goroutine eventually launches even if no
// message ever targets its shard. Demand nudges from senders overtake it
// for communication-hot shards.
func (w *World) spawnAll() {
	for s := range w.shards {
		select {
		case <-w.aborted:
			return
		default:
		}
		w.ensureShard(&w.shards[s])
	}
}

// rankMain is one rank goroutine: the MPI_MAIN-wrapped execution of the
// run's rank function, with panic recovery and death propagation.
//
//seclint:allocs-ok rank goroutine prologue and epilogue: once per rank, not per op
func (w *World) rankMain(rs *rankState) {
	defer w.wg.Done()
	rank := rs.id
	comm := &Comm{shared: w.worldComm, rank: rank, rs: rs}
	defer func() {
		if p := recover(); p != nil {
			re := &RankError{Rank: rank}
			if kp, ok := p.(*killPanic); ok {
				re.Section, re.Err, re.killed = kp.section, kp.err, true
			} else {
				re.Section = comm.sectionLabel()
				re.Err = fmt.Errorf("panic: %v", p)
			}
			w.errs[rank] = re
			w.rankDied(rank, re, rs.now())
		}
		rs.markFinished()
		t := rs.now()
		w.finals[rank] = t
		rs.shard.noteClock(t)
	}()
	comm.SectionEnter(MainSection)
	err := w.runFn(comm)
	comm.SectionExit(MainSection)
	if err != nil {
		// An erroring rank has left the computation: propagate its
		// departure so peers blocked on it unwind too.
		re := &RankError{Rank: rank, Section: comm.sectionLabel(), Err: err}
		w.errs[rank] = re
		w.rankDied(rank, re, rs.now())
	}
}

// RuntimeStats exposes live gauges of a running (or finished) world. Tools
// receive one via WorldInfo.Stats at Init and may poll it concurrently
// while the run executes — monitors report rank bring-up and virtual-time
// progress without touching any runtime lock.
type RuntimeStats struct{ w *World }

// DeclaredRanks reports the world size of the run (Config.Ranks).
func (s *RuntimeStats) DeclaredRanks() int { return s.w.cfg.Ranks }

// ActiveRanks reports how many declared ranks participate in the session
// (all of them unless Config.Active restricts the set).
func (s *RuntimeStats) ActiveRanks() int { return s.w.activeCount }

// MaterializedRanks reports how many active ranks have had their state
// materialized and goroutine launched so far. On a lazy run it climbs from
// 0 as shards spin up; on an eager run it equals ActiveRanks from the
// start.
func (s *RuntimeStats) MaterializedRanks() int { return int(s.w.materialized.Load()) }

// Frontier reports the largest virtual-clock frontier any shard has
// published — the run's current virtual-time high-water mark.
func (s *RuntimeStats) Frontier() float64 {
	var max float64
	for i := range s.w.shards {
		if t := math.Float64frombits(s.w.shards[i].frontier.Load()); t > max {
			max = t
		}
	}
	return max
}
