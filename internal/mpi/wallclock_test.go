package mpi

import (
	"testing"
	"time"

	"repro/internal/machine"
)

// Wallclock mode: timing comes from the host clock; the runtime and tools
// behave identically otherwise.

func wallclockCfg(ranks int) Config {
	return Config{
		Ranks:     ranks,
		Model:     machine.Ideal(ranks, 1),
		Seed:      1,
		Wallclock: true,
		Timeout:   30 * time.Second,
	}
}

func TestWallclockTimeAdvancesByItself(t *testing.T) {
	_, err := Run(wallclockCfg(1), func(c *Comm) error {
		before := c.Now()
		time.Sleep(20 * time.Millisecond)
		after := c.Now()
		if after-before < 0.015 {
			t.Errorf("wallclock advanced only %g s across a 20ms sleep", after-before)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWallclockIgnoresModelCharges(t *testing.T) {
	rep, err := Run(wallclockCfg(1), func(c *Comm) error {
		// A virtual charge of 1000 seconds must NOT move the wall clock.
		before := c.Now()
		c.Compute(WorkUnit{Flops: 1e12})
		c.Sleep(1000)
		c.StorageRead(1 << 30)
		if c.Now()-before > 1 {
			t.Errorf("model charges moved the wall clock by %g s", c.Now()-before)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallTime > 5 {
		t.Errorf("report walltime %g s for a near-instant run", rep.WallTime)
	}
}

func TestWallclockMessagingWorks(t *testing.T) {
	_, err := Run(wallclockCfg(4), func(c *Comm) error {
		sum, err := c.AllreduceFloat64(float64(c.Rank()), OpSum)
		if err != nil {
			return err
		}
		if sum != 6 {
			t.Errorf("allreduce = %g", sum)
		}
		right := (c.Rank() + 1) % c.Size()
		left := (c.Rank() - 1 + c.Size()) % c.Size()
		got, _, err := c.Sendrecv(right, 0, []byte{byte(c.Rank())}, left, 0)
		if err != nil {
			return err
		}
		if got[0] != byte(left) {
			t.Errorf("ring got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWallclockSectionTimestampsMonotone(t *testing.T) {
	var enterT, leaveT float64
	tool := &funcTool{
		enter: func(c *Comm, l string, tm float64, _ *ToolData) {
			if l == "work" {
				enterT = tm
			}
		},
		leave: func(c *Comm, l string, tm float64, _ *ToolData) {
			if l == "work" {
				leaveT = tm
			}
		},
	}
	cfg := wallclockCfg(1)
	cfg.Tools = []Tool{tool}
	_, err := Run(cfg, func(c *Comm) error {
		c.SectionEnter("work")
		time.Sleep(10 * time.Millisecond)
		c.SectionExit("work")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if leaveT-enterT < 0.008 {
		t.Errorf("section duration %g s across a 10ms sleep", leaveT-enterT)
	}
}

func TestWallclockReportRankTimesPositive(t *testing.T) {
	rep, err := Run(wallclockCfg(3), func(c *Comm) error {
		time.Sleep(5 * time.Millisecond)
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, rt := range rep.RankTimes {
		if rt <= 0 {
			t.Errorf("rank %d wall time %g", r, rt)
		}
	}
}
