package mpi

import (
	"fmt"
	"math"
)

// Collective internal tags. User tags are >= 0; the runtime reserves the
// space below internalTagBase. Per-pair FIFO matching keeps successive
// collectives from interfering even though they reuse tags.
const (
	tagBarrier = internalTagBase - iota
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
)

// Op identifies a reduction operator over float64 vectors.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

func (op Op) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpProd:
		return "prod"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// apply folds src into dst element-wise.
func (op Op) apply(dst, src []float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("mpi: reduction length mismatch %d vs %d", len(dst), len(src))
	}
	switch op {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	case OpProd:
		for i, v := range src {
			dst[i] *= v
		}
	default:
		return fmt.Errorf("mpi: unknown reduction %v", op)
	}
	return nil
}

func (c *Comm) collectiveBegin(name string) {
	for _, t := range c.rs.world.cfg.Tools {
		t.CollectiveBegin(c, name, c.rs.now())
	}
}

func (c *Comm) collectiveEnd(name string) {
	for _, t := range c.rs.world.cfg.Tools {
		t.CollectiveEnd(c, name, c.rs.now())
	}
}

// Barrier blocks until every rank of the communicator reaches it, using the
// dissemination algorithm (ceil(log2 p) rounds), and aligns virtual clocks
// accordingly.
func (c *Comm) Barrier() error {
	c.collectiveBegin("Barrier")
	defer c.collectiveEnd("Barrier")
	p := c.Size()
	if p == 1 {
		return nil
	}
	for step := 1; step < p; step *= 2 {
		dst := (c.rank + step) % p
		src := (c.rank - step + p) % p
		if _, _, err := c.Sendrecv(dst, tagBarrier, nil, src, tagBarrier); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's buffer to every rank over a binomial tree and
// returns the received copy (root returns its own data unchanged).
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if err := c.checkRoot(root); err != nil {
		return nil, err
	}
	c.collectiveBegin("Bcast")
	defer c.collectiveEnd("Bcast")
	p := c.Size()
	if p == 1 {
		return data, nil
	}
	// Standard binomial tree rooted at `root` (MPICH construction): a
	// virtual rank receives from the peer that differs in its lowest set
	// bit, then forwards down the remaining bits.
	vrank := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			parent := ((vrank - mask) + root) % p
			b, _, err := c.Recv(parent, tagBcast)
			if err != nil {
				return nil, err
			}
			data = b
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if child := vrank + mask; child < p {
			if err := c.Send((child+root)%p, tagBcast, data); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// Reduce folds each rank's vector with op; the reduced vector lands on
// root (other ranks get nil). Binomial-tree reduction.
func (c *Comm) Reduce(root int, xs []float64, op Op) ([]float64, error) {
	acc, err := c.reduceScratch(root, xs, op, "Reduce")
	if err != nil || acc == nil {
		return nil, err
	}
	// Copy out of the rank scratch: the caller owns the result.
	out := make([]float64, len(acc))
	copy(out, acc)
	return out, nil
}

// reduceScratch runs the binomial-tree reduction with the fold accumulator
// and the peer-decode buffer living in the rank's preallocated scratch. At
// root it returns the accumulator itself — valid only until the next
// collective or typed receive on this rank — so Allreduce can re-encode it
// without an intermediate copy. Non-root ranks return nil.
func (c *Comm) reduceScratch(root int, xs []float64, op Op, name string) ([]float64, error) {
	if err := c.checkRoot(root); err != nil {
		return nil, err
	}
	c.collectiveBegin(name)
	defer c.collectiveEnd(name)
	p := c.Size()
	rs := c.rs
	if cap(rs.accScratch) < len(xs) {
		rs.accScratch = make([]float64, len(xs))
	}
	acc := rs.accScratch[:len(xs)]
	copy(acc, xs)
	if p == 1 {
		return acc, nil
	}
	vrank := (c.rank - root + p) % p
	for step := 1; step < p; step *= 2 {
		if vrank%(2*step) == 0 {
			peer := vrank + step
			if peer < p {
				b, _, err := c.recvFloat64sInto(rs.vecScratch, (peer+root)%p, tagReduce)
				if err != nil {
					return nil, err
				}
				rs.vecScratch = b
				if err := op.apply(acc, b); err != nil {
					return nil, err
				}
			}
		} else {
			parent := vrank - step
			if err := c.SendFloat64s((parent+root)%p, tagReduce, acc); err != nil {
				return nil, err
			}
			break
		}
	}
	if c.rank == root {
		return acc, nil
	}
	return nil, nil
}

// Allreduce is Reduce to rank 0 followed by Bcast; every rank receives the
// reduced vector. The tree traffic runs entirely on rank scratch and pooled
// wire buffers: the only per-call allocation is the returned vector.
func (c *Comm) Allreduce(xs []float64, op Op) ([]float64, error) {
	c.collectiveBegin("Allreduce")
	defer c.collectiveEnd("Allreduce")
	red, err := c.reduceScratch(0, xs, op, "Reduce")
	if err != nil {
		return nil, err
	}
	var payload []byte
	if c.rank == 0 {
		payload = AppendFloat64s(c.rs.encScratch[:0], red)
		c.rs.encScratch = payload[:0]
	}
	b, err := c.Bcast(0, payload)
	if err != nil {
		return nil, err
	}
	out, err := BytesToFloat64s(b)
	if c.rank != 0 {
		// Non-root ranks own the received wire buffer; recycle it. Root's
		// b aliases its encode scratch and must stay with the rank.
		Release(b)
	}
	return out, err
}

// Gather collects each rank's buffer at root: root receives a slice indexed
// by rank (its own entry is a copy of data); other ranks receive nil.
// Linear algorithm — the root bottleneck is intentional, it is what the
// paper's GATHER section measures.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if err := c.checkRoot(root); err != nil {
		return nil, err
	}
	c.collectiveBegin("Gather")
	defer c.collectiveEnd("Gather")
	if c.rank != root {
		return nil, c.Send(root, tagGather, data)
	}
	out := make([][]byte, c.Size())
	own := make([]byte, len(data))
	copy(own, data)
	out[root] = own
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		b, _, err := c.Recv(r, tagGather)
		if err != nil {
			return nil, err
		}
		out[r] = b
	}
	return out, nil
}

// Scatter distributes parts[r] from root to every rank r and returns the
// local part. parts is only read at root and must have one entry per rank.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	if err := c.checkRoot(root); err != nil {
		return nil, err
	}
	c.collectiveBegin("Scatter")
	defer c.collectiveEnd("Scatter")
	if c.rank != root {
		b, _, err := c.Recv(root, tagScatter)
		return b, err
	}
	if len(parts) != c.Size() {
		return nil, fmt.Errorf("mpi: Scatter needs %d parts, got %d", c.Size(), len(parts))
	}
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if err := c.Send(r, tagScatter, parts[r]); err != nil {
			return nil, err
		}
	}
	own := make([]byte, len(parts[root]))
	copy(own, parts[root])
	return own, nil
}

// Allgather gives every rank every rank's buffer, via the ring algorithm
// (p-1 neighbor exchanges).
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	c.collectiveBegin("Allgather")
	defer c.collectiveEnd("Allgather")
	p := c.Size()
	out := make([][]byte, p)
	own := make([]byte, len(data))
	copy(own, data)
	out[c.rank] = own
	if p == 1 {
		return out, nil
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	send := own
	for step := 0; step < p-1; step++ {
		recvFrom := (c.rank - step - 1 + 2*p) % p
		b, _, err := c.Sendrecv(right, tagAllgather, send, left, tagAllgather)
		if err != nil {
			return nil, err
		}
		out[recvFrom] = b
		send = b
	}
	return out, nil
}

// Alltoall performs a personalized all-to-all exchange: rank r receives
// parts[r] from every rank. parts must have one entry per rank.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	c.collectiveBegin("Alltoall")
	defer c.collectiveEnd("Alltoall")
	p := c.Size()
	if len(parts) != p {
		return nil, fmt.Errorf("mpi: Alltoall needs %d parts, got %d", p, len(parts))
	}
	out := make([][]byte, p)
	own := make([]byte, len(parts[c.rank]))
	copy(own, parts[c.rank])
	out[c.rank] = own
	reqs := make([]*Request, 0, p-1)
	for off := 1; off < p; off++ {
		src := (c.rank - off + p) % p
		req, err := c.Irecv(src, tagAlltoall)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	for off := 1; off < p; off++ {
		dst := (c.rank + off) % p
		if err := c.Send(dst, tagAlltoall, parts[dst]); err != nil {
			return nil, err
		}
	}
	for _, req := range reqs {
		b, st, err := req.Wait()
		if err != nil {
			return nil, err
		}
		out[st.Source] = b
	}
	return out, nil
}

// ReduceFloat64 reduces a scalar; a convenience over Reduce.
func (c *Comm) ReduceFloat64(root int, x float64, op Op) (float64, error) {
	v, err := c.Reduce(root, []float64{x}, op)
	if err != nil {
		return 0, err
	}
	if c.rank != root {
		return math.NaN(), nil
	}
	return v[0], nil
}

// AllreduceFloat64 all-reduces a scalar.
func (c *Comm) AllreduceFloat64(x float64, op Op) (float64, error) {
	v, err := c.Allreduce([]float64{x}, op)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}

func (c *Comm) checkRoot(root int) error {
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("mpi: root %d out of range (size %d)", root, c.Size())
	}
	return nil
}
