// Package mpi implements the in-process message-passing runtime this
// repository uses in place of a real MPI library. One goroutine plays each
// rank; communicators, tagged point-to-point messaging (with wildcards and
// nonblocking operations) and tree-based collectives follow MPI semantics.
//
// Two things distinguish it from a toy:
//
//   - Virtual time. Every rank carries a virtual clock (float64 seconds).
//     Real computation runs on real data, but its duration is charged
//     through a machine.Model (see internal/machine), and messages carry
//     model-derived arrival stamps. This reproduces the paper's 456-core
//     cluster and 272-hardware-thread KNL experiments deterministically on
//     a laptop.
//
//   - A PMPI-like tool layer. Tools (profilers, tracers) register hooks
//     that the runtime invokes on message, collective, Pcontrol and —
//     centrally for the paper — MPI_Section events (MPIX_Section_enter /
//     MPIX_Section_exit, Figs. 1–2 of the paper), including the 32-byte
//     tool-data payload preserved between enter and leave.
//
// Matched-pair timestamp contract: every MessageRecv hook receives a
// MatchInfo with the matching send's post time (SendT), the receive's own
// post time (PostT) and the modeled payload arrival — the inputs
// Scalasca-style wait-state classification (internal/waitstate) needs
// without re-matching sends to receives offline. MatchInfo is passed by
// value on the allocation-free fast path; see its doc for the exact
// semantics of each stamp.
//
// # Fault injection and fault tolerance
//
// The runtime can execute a deterministic failure schedule and survive
// it. Config.Fault attaches a fault.Plan (see internal/fault for the spec
// syntax) whose rules the hot paths consult:
//
//   - kill rules fail-stop a rank after its Nth point-to-point operation
//     or on its first entry into a named section;
//   - drop, delay and trunc rules perturb messages on a (src, dst) link
//     with a per-message probability decided purely by the plan seed and
//     the link's message ordinal — the schedule is identical across
//     scheduler interleavings and -j worker counts.
//
// When Config.Fault is nil the checks compile to a single nil comparison:
// the no-plan fast path stays at 0 allocs/op (pinned by
// TestSendRecvSteadyStateAllocs).
//
// Failures surface as errors, not crashes. A panic inside a rank function
// — including an injected fail-stop — is recovered into a
// RankError{Rank, Section, Err}; peers blocked on the dead rank are
// unblocked with poison envelopes, observe ErrRevoked-wrapped failures
// and report a dead_peer fault event carrying the time they spent
// blocked. Propagation follows ULFM: Comm.Revoke poisons a communicator
// (pending and future operations return ErrRevoked), Comm.Shrink builds a
// replacement communicator over the survivors, and Comm.Agree runs a
// fault-tolerant agreement that reports dead participants instead of
// hanging. Run collects every rank's failure into its returned error;
// RootCause distills the primary cause (an injected kill outranks the
// secondary ErrRevoked / dead-peer noise it provokes).
//
// Hangs are bounded too: Config.Deadline arms a global deadlock detector.
// If no rank makes progress for the deadline, the run aborts with a
// DeadlockError whose report lists every blocked rank — the operation it
// is stuck in, the section it was executing, and the peer it is waiting
// on.
//
// Every injected fault and observed consequence is appended to
// Report.Faults (canonically ordered via fault.SortEvents) and streamed
// to any attached Tool implementing FaultObserver, which is how the
// trace, export and waitstate layers see failures; Report.Dead lists the
// ranks that did not survive the run.
//
// # Sharded rank state, per-shard clocks, and lazy sessions
//
// The runtime targets extreme-scale runs — 10,000+ declared ranks — so
// nothing rank-proportional is global and nothing is paid before a rank is
// used:
//
//   - Rank state lives in fixed-size shards (shardSize ranks each, see
//     shard.go). A shard's state slab is materialized on first touch under
//     the shard's own mutex; rank-state pointers are stable thereafter.
//     Mailboxes are sharded the same way (boxShard in p2p.go): delivery
//     locks one shard, not the world, and SendGhostBatch enqueues runs of
//     consecutive same-shard destinations under a single lock acquisition
//     while staying message-for-message identical (charges, stamps, tool
//     hooks) to the equivalent SendGhost loop.
//
//   - Virtual-clock frontiers are per shard. Ranks publish their clock to
//     the shard's atomic frontier lazily — at receive completion and at
//     rank finish, the points where clocks become externally meaningful —
//     instead of synchronizing through a global structure on every
//     advance. RuntimeStats.Frontier folds the shard maxima on demand; the
//     deadlock detector's steady-state tick reads three counters instead
//     of walking every rank.
//
//   - Sessions bring ranks up lazily. With Config.Lazy the rank goroutines
//     materialize shard by shard in the background and on demand when a
//     message first addresses them, so start-up cost tracks the ranks
//     actually touched, not the declared world size. Config.Active
//     restricts the session to a rank subset (implying Lazy): inactive
//     ranks never materialize, never run fn, and report zero final clocks.
//     By contract an Active session must confine collectives — including
//     Split and Barrier — to communicators whose members are all active;
//     the world communicator still spans every declared rank, so a
//     world-spanning collective would wait forever on ranks that will
//     never arrive. Point-to-point traffic among active ranks is
//     unrestricted.
//
// WorldInfo.Stats hands tools a live RuntimeStats view of the bring-up
// (declared vs. active vs. materialized ranks, virtual-time frontier),
// and Report carries the final counts. None of this costs the small case
// anything: an eager 8-rank run materializes its single shard inline at
// Run, exactly as before.
package mpi
