package mpi

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/fault"
)

// This file is the runtime's user-level fault tolerance layer, modeled on
// ULFM (User Level Failure Mitigation, the fault-tolerance chapter proposed
// for the MPI standard): one rank's failure is propagated to every peer
// blocked on it instead of hanging the run, pending and future operations
// on affected communicators fail with ErrRevoked, and survivors can rebuild
// a working communicator with Comm.Shrink / agree on a verdict with
// Comm.Agree.
//
// The propagation mechanism is a "poison envelope": revoking a communicator
// marks each mailbox failed and hands every parked receive a pooled
// envelope whose fail pointer carries the reason. Receivers already own a
// one-slot channel per posted receive, so waking them costs nothing on the
// healthy path — the fast path pays exactly one nil check per operation
// (see the package doc's zero-overhead contract).

// ErrRevoked is the sentinel wrapped by every operation that fails because
// its communicator was revoked — by an explicit Comm.Revoke, by a peer
// rank's death, or by the deadlock detector aborting the run. Match it with
// errors.Is.
var ErrRevoked = errors.New("mpi: communication revoked")

// RankError reports one rank's failure: a panic in the rank function, an
// injected fail-stop from a fault plan, or an error return that removed the
// rank from the computation. Section is the innermost open section at the
// time of death ("" when none was open).
type RankError struct {
	Rank    int
	Section string
	Err     error
	// killed marks an injected fail-stop (fault plan), as opposed to an
	// application failure. RootCause uses it to rank candidates.
	killed bool
}

func (e *RankError) Error() string {
	if e.Section != "" {
		return fmt.Sprintf("mpi: rank %d failed in section %s: %v", e.Rank, e.Section, e.Err)
	}
	return fmt.Sprintf("mpi: rank %d failed: %v", e.Rank, e.Err)
}

func (e *RankError) Unwrap() error { return e.Err }

// Injected reports whether the failure is an injected fail-stop from a
// fault plan rather than an application error. Retry policies key on it: an
// injected kill models a transient infrastructure failure, so re-running
// the job on a "healthy node" (without the plan) is sound, where retrying
// an application failure is not.
func (e *RankError) Injected() bool { return e.killed }

// killPanic is the panic payload of an injected fail-stop; Run's recovery
// translates it into a RankError with killed set.
type killPanic struct {
	section string
	err     error
}

// poisonInfo is the shared failure context delivered to every operation a
// revocation aborts. deathT is the virtual time the failure happened; a
// woken receiver advances its clock to it, so the time lost blocking on a
// dead peer is measurable (and deterministic) in virtual terms.
type poisonInfo struct {
	reason error
	deathT float64
}

// poison marks every box of the shard revoked and wakes its parked
// receives with poison envelopes. Idempotent; the first reason wins.
// Queued sends stay matchable: a message that was already delivered before
// the failure can still be received, mirroring ULFM's completion of
// already-matched operations. The shard-level pi also covers slabs that
// have not materialized yet — their boxes are born poisoned.
func (sh *boxShard) poison(pi *poisonInfo) {
	sh.mu.Lock()
	if sh.pi == nil {
		sh.pi = pi
	}
	pi = sh.pi
	var woken []*posted
	for i := range sh.slab {
		b := &sh.slab[i]
		if b.fail == nil {
			b.fail = pi
		}
		if len(b.recvs) > 0 {
			woken = append(woken, b.recvs...)
			b.recvs = nil
		}
	}
	sh.mu.Unlock()
	for _, p := range woken {
		e := newEnvelope()
		e.src = -1
		e.fail = pi
		// The one-slot channel of a still-queued posted receive is
		// provably empty, so this never blocks.
		p.ch <- e
	}
}

// Revoke revokes the communicator, ULFM's MPI_Comm_revoke: every pending
// and future operation on it — on every rank — fails with an error wrapping
// ErrRevoked. Survivors continue on a communicator built by Shrink.
func (c *Comm) Revoke() {
	pi := &poisonInfo{
		reason: fmt.Errorf("%w by rank %d on comm %d", ErrRevoked, c.WorldRank(), c.shared.id),
		deathT: c.rs.now(),
	}
	c.shared.revoke(pi)
}

// revoke poisons every mailbox of the communicator and wakes ranks parked
// in Split on it. Idempotent.
//
//seclint:allocs-ok revocation is a one-shot failure event
func (cs *commShared) revoke(pi *poisonInfo) {
	cs.revokeOnce.Do(func() {
		cs.pi = pi
		close(cs.revoked)
	})
	for i := range cs.boxShards {
		cs.boxShards[i].poison(pi)
	}
}

// contains reports whether the world rank is a member of the communicator.
func (cs *commShared) contains(worldRank int) bool {
	for _, wr := range cs.group {
		if wr == worldRank {
			return true
		}
	}
	return false
}

// rankDied records a rank's death and propagates it: every communicator the
// rank belongs to is revoked (waking all blocked peers), and pending
// Shrink/Agree collectives re-evaluate their completion with the shrunk
// live set. Called from the rank goroutine's recovery path.
//
//seclint:allocs-ok rank-failure bring-down path
func (w *World) rankDied(rank int, re *RankError, t float64) {
	w.ftMu.Lock()
	w.dead[rank] = true
	if w.failPi == nil {
		w.failPi = &poisonInfo{
			reason: fmt.Errorf("%w: %w", ErrRevoked, re),
			deathT: t,
		}
	}
	pi := w.failPi
	comms := make([]*commShared, 0, len(w.comms))
	for _, cs := range w.comms {
		if cs.contains(rank) {
			comms = append(comms, cs)
		}
	}
	pending := make([]*ftState, 0, len(w.ftPending))
	for st := range w.ftPending {
		pending = append(pending, st)
	}
	w.ftMu.Unlock()

	// Log the death — unless the rank is itself a casualty of an earlier
	// revocation, in which case the log already carries the root failure
	// and a second kill event would misattribute it.
	if re.killed || !errors.Is(re.Err, ErrRevoked) {
		w.emitFault(fault.Event{
			T: t, Kind: fault.Kill, Rank: rank, Src: -1, Dst: -1,
			Section: re.Section,
		})
	}
	for _, cs := range comms {
		cs.revoke(pi)
	}
	for _, st := range pending {
		st.tryComplete()
	}
}

// liveGroup returns the comm ranks of cs whose world ranks are still alive.
//
//seclint:allocs-ok failure recovery: rebuilds the surviving group once per fault
func (w *World) liveGroup(cs *commShared) []int {
	w.ftMu.Lock()
	defer w.ftMu.Unlock()
	live := make([]int, 0, len(cs.group))
	for r, wr := range cs.group {
		if !w.dead[wr] {
			live = append(live, r)
		}
	}
	return live
}

// Dead reports the world ranks that failed during the run, ascending.
func (w *World) deadRanks() []int {
	w.ftMu.Lock()
	defer w.ftMu.Unlock()
	var out []int
	for r, d := range w.dead {
		if d {
			out = append(out, r)
		}
	}
	return out
}

// ftState coordinates one fault-tolerant collective (Shrink or Agree). It
// deliberately bypasses the mailboxes: both calls must make progress on a
// revoked communicator, which is their whole purpose.
type ftState struct {
	cs *commShared
	op string // "Shrink" or "Agree"

	mu        sync.Mutex
	arrived   map[int]bool // comm rank -> arrived
	flags     map[int]bool // comm rank -> Agree contribution
	maxT      float64      // latest arriver's clock: the collective's sync point
	completed bool
	result    bool        // AND of live contributions (Agree)
	newShared *commShared // survivors' communicator (Shrink)
	done      chan struct{}
}

// ftCall returns (creating if needed) the ftState for this rank's call-th
// fault-tolerant collective on the communicator.
func (c *Comm) ftCall(op string) *ftState {
	cs := c.shared
	call := c.ftCalls
	c.ftCalls++
	cs.ftMu.Lock()
	st, ok := cs.ftGen[call]
	if !ok {
		st = &ftState{
			cs:      cs,
			op:      op,
			arrived: make(map[int]bool),
			flags:   make(map[int]bool),
			done:    make(chan struct{}),
		}
		cs.ftGen[call] = st
		w := cs.world
		w.ftMu.Lock()
		w.ftPending[st] = struct{}{}
		w.ftMu.Unlock()
	}
	cs.ftMu.Unlock()
	return st
}

// arrive registers the calling rank's contribution and re-evaluates
// completion.
func (st *ftState) arrive(rank int, flag bool, t float64) {
	st.mu.Lock()
	st.arrived[rank] = true
	st.flags[rank] = flag
	if t > st.maxT {
		st.maxT = t
	}
	st.mu.Unlock()
	st.tryComplete()
}

// tryComplete completes the collective once every live member has arrived.
// Rank deaths call it again, so the collective converges even when members
// die while it is in flight.
//
//seclint:allocs-ok agreement completion during failure recovery
func (st *ftState) tryComplete() {
	w := st.cs.world
	live := w.liveGroup(st.cs)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.completed {
		return
	}
	for _, r := range live {
		if !st.arrived[r] {
			return
		}
	}
	st.result = true
	for _, r := range live {
		if !st.flags[r] {
			st.result = false
		}
	}
	if st.op == "Shrink" {
		group := make([]int, 0, len(live))
		for _, r := range live {
			group = append(group, st.cs.group[r])
		}
		st.newShared = w.newCommSharedClean(group)
	}
	st.completed = true
	w.ftMu.Lock()
	delete(w.ftPending, st)
	w.ftMu.Unlock()
	close(st.done)
}

// wait parks the calling rank until the collective completes or the run is
// aborted by the deadlock detector.
func (st *ftState) wait(c *Comm, op string) error {
	w := c.rs.world
	c.rs.enterBlocked(c, op, -1, 0)
	defer c.rs.exitBlocked()
	select {
	case <-st.done:
		return nil
	case <-w.aborted:
		return fmt.Errorf("mpi: rank %d: %s aborted: %w", c.rank, op, w.abortReason())
	}
}

// Shrink builds a new communicator from the surviving ranks — ULFM's
// MPI_Comm_shrink. It is collective over the *live* ranks of c (dead ranks
// are excused, including ranks that die while the call is in flight) and
// works on a revoked communicator. The caller's handle on the new
// communicator is returned; rank order follows the old communicator.
func (c *Comm) Shrink() (*Comm, error) {
	st := c.ftCall("Shrink")
	st.arrive(c.rank, true, c.rs.now())
	if err := st.wait(c, "Shrink"); err != nil {
		return nil, err
	}
	st.mu.Lock()
	ns := st.newShared
	maxT := st.maxT
	st.mu.Unlock()
	c.rs.advanceTo(maxT)
	me := c.shared.group[c.rank]
	for i, wr := range ns.group {
		if wr == me {
			return &Comm{shared: ns, rank: i, rs: c.rs}, nil
		}
	}
	return nil, fmt.Errorf("mpi: rank %d: Shrink called by a dead rank", c.rank)
}

// Agree returns the logical AND of every live rank's flag — ULFM's
// MPI_Comm_agree, the fault-tolerant consensus survivors use to decide
// whether to continue. Like Shrink it completes on revoked communicators
// and excuses dead ranks.
func (c *Comm) Agree(flag bool) (bool, error) {
	st := c.ftCall("Agree")
	st.arrive(c.rank, flag, c.rs.now())
	if err := st.wait(c, "Agree"); err != nil {
		return false, err
	}
	st.mu.Lock()
	res := st.result
	maxT := st.maxT
	st.mu.Unlock()
	c.rs.advanceTo(maxT)
	return res, nil
}

// abort poisons the whole run with err: every communicator is revoked and
// every parked rank — including Shrink/Agree waiters — wakes with an error.
// The deadlock detector and the Timeout watchdog are its only callers.
func (w *World) abort(err error) {
	w.abortOnce.Do(func() {
		pi := &poisonInfo{reason: fmt.Errorf("%w: %w", ErrRevoked, err)}
		w.ftMu.Lock()
		w.abortErr = err
		if w.failPi == nil {
			w.failPi = pi
		}
		comms := append([]*commShared(nil), w.comms...)
		w.ftMu.Unlock()
		close(w.aborted)
		for _, cs := range comms {
			cs.revoke(pi)
		}
	})
}

// abortReason reports the run-level abort error, nil while the run is
// healthy.
func (w *World) abortReason() error {
	w.ftMu.Lock()
	defer w.ftMu.Unlock()
	return w.abortErr
}

// RootCause extracts the most informative failure from a Run error tree:
// an injected fail-stop first, then a deadlock report, then the first
// application rank failure that is not a secondary ErrRevoked casualty,
// then the error itself. Sweep drivers record it in the `error` CSV column,
// where a deterministic root beats a scheduling-dependent join of
// casualties.
func RootCause(err error) error {
	if err == nil {
		return nil
	}
	var killed, dl, primary, anyRank error
	var walk func(e error)
	walk = func(e error) {
		if e == nil {
			return
		}
		switch v := e.(type) {
		case *RankError:
			if v.killed {
				if killed == nil {
					killed = v
				}
			} else if !errors.Is(v.Err, ErrRevoked) {
				if primary == nil {
					primary = v
				}
			}
			if anyRank == nil {
				anyRank = v
			}
		case *DeadlockError:
			if dl == nil {
				dl = v
			}
		}
		switch u := e.(type) {
		case interface{ Unwrap() []error }:
			for _, c := range u.Unwrap() {
				walk(c)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	for _, c := range []error{killed, dl, primary, anyRank} {
		if c != nil {
			return c
		}
	}
	return err
}
