package mpi

import (
	"errors"

	"repro/internal/fault"
)

// Fault-injection plumbing: the runtime consults Config.Fault (a
// fault.Plan) at three points — the per-rank op counter on every
// point-to-point call (fail-stop after N ops), section entry (fail-stop on
// a named section), and the sender side of every message (drop / delay /
// truncate, decided from the sender-owned per-link ordinal so the schedule
// is independent of goroutine interleaving).
//
// Zero-overhead contract: when Config.Fault is nil, w.fi is nil and every
// injection site is a single pointer-is-nil branch; no state is allocated,
// and the 0 allocs/op fast path (alloc_test.go) is untouched.

// faultState is the world's armed fault plan.
type faultState struct {
	plan    *fault.Plan
	hasLink bool
}

// errFailStop is the cause carried by injected kills.
var errFailStop = errors.New("fail-stop injected by fault plan")

// armFaults arms the plan (nil = no-op). Per-rank state is not touched
// here: kill thresholds are applied as shards materialize (shard.go), and
// link-ordinal arrays are allocated on a rank's first faulted send — so
// arming costs O(1) instead of O(ranks²) at extreme scale.
func (w *World) armFaults(plan *fault.Plan) {
	if plan == nil {
		return
	}
	w.fi = &faultState{plan: plan, hasLink: plan.HasLinkRules()}
}

// countOp advances the rank's p2p op counter and fail-stops the rank when
// its kill threshold is reached. Only called when a plan is armed.
func (c *Comm) countOp() {
	rs := c.rs
	rs.ops++
	if rs.killAt != 0 && rs.ops >= rs.killAt {
		panic(&killPanic{section: c.sectionLabel(), err: errFailStop})
	}
}

// applyLinkFaults evaluates the plan's link rules against the next message
// on the (srcWorld, dstWorld) link and applies the decision: a dropped
// message is never delivered (the sender proceeds, as with real lossy
// transports), a delayed one arrives later, a truncated one carries fewer
// real bytes than advertised. Each applied fault is logged. Returns the
// possibly-updated (dropped, nbytes, transfer).
//
//seclint:allocs-ok fault-injection path: runs only with a fault plan armed
func (c *Comm) applyLinkFaults(srcWorld, dstWorld, nbytes, vbytes int, transfer float64) (bool, int, float64) {
	rs := c.rs
	if rs.linkSeq == nil {
		// First faulted send of this rank: allocate its link ordinals now
		// instead of for every declared rank at arm time. Sender-owned, so
		// no synchronization is needed.
		rs.linkSeq = make([]uint64, rs.world.cfg.Ranks)
	}
	idx := rs.linkSeq[dstWorld]
	rs.linkSeq[dstWorld]++
	w := rs.world
	d := w.fi.plan.LinkFault(srcWorld, dstWorld, idx)
	if d.Drop {
		w.emitFault(fault.Event{
			T: rs.now(), Kind: fault.Drop, Rank: srcWorld,
			Src: srcWorld, Dst: dstWorld, Comm: c.shared.id, Bytes: vbytes,
		})
		return true, nbytes, transfer
	}
	if d.Delay > 0 {
		transfer += d.Delay
		w.emitFault(fault.Event{
			T: rs.now(), Kind: fault.Delay, Rank: srcWorld,
			Src: srcWorld, Dst: dstWorld, Comm: c.shared.id, Bytes: vbytes,
			Delay: d.Delay,
		})
	}
	if d.Frac < 1 {
		nbytes = int(float64(nbytes) * d.Frac)
		w.emitFault(fault.Event{
			T: rs.now(), Kind: fault.Trunc, Rank: srcWorld,
			Src: srcWorld, Dst: dstWorld, Comm: c.shared.id, Bytes: nbytes,
		})
	}
	return false, nbytes, transfer
}

// sectionLabel reports the innermost open section on this communicator for
// the calling rank ("" when none). Failure-path only.
func (c *Comm) sectionLabel() string {
	reg := c.shared.sections
	reg.mu.Lock()
	defer reg.mu.Unlock()
	st := reg.perRank[c.rank].stack
	if len(st) == 0 {
		return ""
	}
	return st[len(st)-1].label
}

// FaultObserver is the optional tool extension for live fault events: a
// Tool that also implements it receives every injected fault and observed
// failure consequence as it happens. The runtime discovers observers once
// at Run start, so non-observing tools cost nothing.
type FaultObserver interface {
	FaultEvent(ev fault.Event)
}

// emitFault appends ev to the run's fault log and streams it to observers.
// Only failure paths and armed injection sites call it.
//
//seclint:allocs-ok fault reporting: never on the steady path
func (w *World) emitFault(ev fault.Event) {
	w.faultMu.Lock()
	w.faults = append(w.faults, ev)
	w.faultMu.Unlock()
	for _, o := range w.faultObs {
		o.FaultEvent(ev)
	}
}

// faultLog returns the canonically sorted fault events of the run.
func (w *World) faultLog() []fault.Event {
	w.faultMu.Lock()
	out := append([]fault.Event(nil), w.faults...)
	w.faultMu.Unlock()
	fault.SortEvents(out)
	return out
}

// InjectedOnly filters a fault log down to the plan-injected events (kill,
// drop, delay, trunc), dropping the observed consequences (dead_peer).
// Injected schedules are a pure function of the plan; consequence events
// also depend on how far each peer had progressed when the failure reached
// it, which real goroutine scheduling influences.
func InjectedOnly(events []fault.Event) []fault.Event {
	out := make([]fault.Event, 0, len(events))
	for _, ev := range events {
		if ev.Kind != fault.DeadPeer {
			out = append(out, ev)
		}
	}
	return out
}
