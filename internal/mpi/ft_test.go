package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
)

// ftCfg is testCfg with a deadline, so a propagation bug surfaces as a
// deadlock report instead of tripping the coarse watchdog.
func ftCfg(ranks int) Config {
	cfg := testCfg(ranks)
	cfg.Deadline = 5 * time.Second
	return cfg
}

// TestPanicInRankRecovered is the regression test for the former
// process-killing behavior: a panic in one rank function must come back as
// a RankError and must unblock the peers parked on the dead rank.
func TestPanicInRankRecovered(t *testing.T) {
	_, err := Run(ftCfg(4), func(c *Comm) error {
		// No defer for the exit: a deferred SectionExit would pop the
		// frame during unwinding, before Run's recovery samples it.
		c.SectionEnter("WORK")
		if c.Rank() == 2 {
			panic("deliberate test panic")
		}
		// Everyone else blocks on the panicking rank.
		if _, err := c.RecvDiscard(2, 7); err != nil {
			return err
		}
		c.SectionExit("WORK")
		return nil
	})
	if err == nil {
		t.Fatal("run with a panicking rank returned nil error")
	}
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("no RankError in %v", err)
	}
	root := RootCause(err)
	rre, ok := root.(*RankError)
	if !ok || rre.Rank != 2 {
		t.Fatalf("RootCause = %v, want rank 2 RankError", root)
	}
	if rre.Section != "WORK" {
		t.Errorf("RankError.Section = %q, want WORK", rre.Section)
	}
	if !strings.Contains(rre.Error(), "deliberate test panic") {
		t.Errorf("RankError lost the panic payload: %v", rre)
	}
	if !errors.Is(err, ErrRevoked) {
		t.Errorf("peer failures should wrap ErrRevoked: %v", err)
	}
}

// TestErrorReturnPropagates: a rank that returns an error leaves the
// computation; peers blocked on it must unwind rather than hang.
func TestErrorReturnPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(ftCfg(2), func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		_, err := c.RecvDiscard(1, 0)
		return err
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	root := RootCause(err)
	var re *RankError
	if !errors.As(root, &re) || re.Rank != 1 {
		t.Fatalf("RootCause = %v, want rank 1", root)
	}
}

// TestPanicUnblocksWithoutDeadline: peer unblocking must not depend on the
// deadlock detector — death propagation alone wakes parked ranks.
func TestPanicUnblocksWithoutDeadline(t *testing.T) {
	cfg := testCfg(3)
	cfg.Timeout = 30 * time.Second // watchdog only; must not fire
	start := time.Now()
	_, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("die")
		}
		_, err := c.RecvDiscard(0, 0)
		return err
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("unblocking took %v; peers likely leaked until watchdog", elapsed)
	}
	if !errors.Is(err, ErrRevoked) {
		t.Errorf("blocked peers should fail with ErrRevoked: %v", err)
	}
}

// TestRevokeWakesPendingOps: an explicit Comm.Revoke poisons pending and
// future operations on the communicator with ErrRevoked.
func TestRevokeWakesPendingOps(t *testing.T) {
	errs := make(chan error, 1)
	_, err := Run(ftCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			// Give rank 1 a moment to park in its receive, then revoke.
			time.Sleep(50 * time.Millisecond)
			c.Revoke()
			// Future ops fail too.
			if serr := c.Send(1, 3, []byte("x")); !errors.Is(serr, ErrRevoked) {
				t.Errorf("Send after Revoke = %v, want ErrRevoked", serr)
			}
			return nil
		}
		_, rerr := c.RecvDiscard(0, 99)
		errs <- rerr
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rerr := <-errs
	if !errors.Is(rerr, ErrRevoked) {
		t.Fatalf("parked recv woke with %v, want ErrRevoked", rerr)
	}
}

// TestQueuedMessageSurvivesRevoke: a message delivered before the
// revocation stays receivable (ULFM completes already-matched operations).
func TestQueuedMessageSurvivesRevoke(t *testing.T) {
	_, err := Run(ftCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 5, []byte("pre")); err != nil {
				return err
			}
			c.Revoke()
			return nil
		}
		// Wait until the revoke has landed, then drain the queued message.
		for {
			time.Sleep(10 * time.Millisecond)
			if _, _, err := c.Iprobe(0, 5); err != nil {
				return err
			}
			sh, box := c.shared.box(c.rank)
			sh.mu.Lock()
			poisoned := box.fail != nil
			sh.mu.Unlock()
			if poisoned {
				break
			}
		}
		data, st, rerr := c.Recv(0, 5)
		if rerr != nil {
			return rerr
		}
		if string(data) != "pre" || st.Source != 0 {
			t.Errorf("queued message corrupted: %q %+v", data, st)
		}
		Release(data)
		// The next receive (nothing queued) must fail fast.
		if _, _, rerr := c.Recv(0, 5); !errors.Is(rerr, ErrRevoked) {
			t.Errorf("post-revoke recv = %v, want ErrRevoked", rerr)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestShrinkAndAgreeAfterDeath: the ULFM survivor flow. Rank 2 is killed by
// a fault plan; the others see their collective fail, Shrink to a 3-rank
// communicator, Agree to continue, and finish a reduction without rank 2.
func TestShrinkAndAgreeAfterDeath(t *testing.T) {
	plan, err := fault.ParseSpec("kill:rank=2,section=LOOP", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ftCfg(4)
	cfg.Fault = plan
	sums := make(chan float64, 4)
	rep, err := Run(cfg, func(c *Comm) error {
		c.SectionEnter("LOOP")
		// Rank 2 never gets here. Everyone else fails in the collective.
		_, aerr := c.Allreduce([]float64{1}, OpSum)
		c.SectionExit("LOOP")
		if aerr == nil {
			return errors.New("allreduce with a dead member succeeded")
		}
		if !errors.Is(aerr, ErrRevoked) {
			return aerr
		}
		nc, serr := c.Shrink()
		if serr != nil {
			return serr
		}
		if nc.Size() != 3 {
			t.Errorf("shrunk size = %d, want 3", nc.Size())
		}
		cont, gerr := c.Agree(true)
		if gerr != nil {
			return gerr
		}
		if !cont {
			t.Error("Agree(true) among survivors = false")
		}
		out, rerr := nc.Allreduce([]float64{float64(c.WorldRank())}, OpSum)
		if rerr != nil {
			return rerr
		}
		sums <- out[0]
		return nil
	})
	if err == nil {
		t.Fatal("run with killed rank returned nil aggregate error")
	}
	root := RootCause(err)
	var re *RankError
	if !errors.As(root, &re) || re.Rank != 2 || re.Section != "LOOP" {
		t.Fatalf("RootCause = %v, want injected kill of rank 2 in LOOP", root)
	}
	close(sums)
	n := 0
	for s := range sums {
		n++
		if s != 0+1+3 {
			t.Errorf("survivor sum = %v, want 4", s)
		}
	}
	if n != 3 {
		t.Fatalf("%d survivors finished, want 3", n)
	}
	if len(rep.Dead) != 1 || rep.Dead[0] != 2 {
		t.Errorf("Report.Dead = %v, want [2]", rep.Dead)
	}
}

// TestAgreeAndsFlags: Agree is a logical AND over live contributions.
func TestAgreeAndsFlags(t *testing.T) {
	_, err := Run(ftCfg(3), func(c *Comm) error {
		got, err := c.Agree(c.Rank() != 1)
		if err != nil {
			return err
		}
		if got {
			t.Errorf("rank %d: Agree = true, want false", c.Rank())
		}
		got, err = c.Agree(true)
		if err != nil {
			return err
		}
		if !got {
			t.Errorf("rank %d: second Agree = false, want true", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestSplitAbortsOnDeath: ranks parked in Split must unwind when a member
// dies before arriving.
func TestSplitAbortsOnDeath(t *testing.T) {
	_, err := Run(ftCfg(3), func(c *Comm) error {
		if c.Rank() == 2 {
			panic("no split for me")
		}
		_, serr := c.Split(0, c.Rank())
		if serr == nil {
			return errors.New("Split with a dead member succeeded")
		}
		if !errors.Is(serr, ErrRevoked) {
			return serr
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected aggregate error")
	}
	var re *RankError
	if !errors.As(RootCause(err), &re) || re.Rank != 2 {
		t.Fatalf("RootCause = %v, want rank 2 death", RootCause(err))
	}
}

// TestReportFaultsRecordsDeath: the run report carries the kill and the
// dead-peer consequences, canonically sorted.
func TestReportFaultsRecordsDeath(t *testing.T) {
	rep, err := Run(ftCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			panic("down")
		}
		_, rerr := c.RecvDiscard(0, 0)
		return rerr
	})
	if err == nil {
		t.Fatal("expected error")
	}
	var kills, deads int
	for _, ev := range rep.Faults {
		switch ev.Kind {
		case fault.Kill:
			kills++
			if ev.Rank != 0 {
				t.Errorf("kill event rank = %d, want 0", ev.Rank)
			}
		case fault.DeadPeer:
			deads++
			if ev.Rank != 1 || ev.Src != 0 {
				t.Errorf("dead_peer event = %+v, want rank 1 waiting on 0", ev)
			}
		}
	}
	if kills != 1 || deads == 0 {
		t.Fatalf("faults = %+v, want 1 kill and >=1 dead_peer", rep.Faults)
	}
}

// TestRootCausePrecedence: injected kills outrank secondary revocation
// casualties in RootCause's ranking.
func TestRootCausePrecedence(t *testing.T) {
	killed := &RankError{Rank: 2, Err: errFailStop, killed: true}
	casualty := &RankError{Rank: 0, Err: ErrRevoked}
	joined := errors.Join(casualty, killed)
	if got := RootCause(joined); got != killed {
		t.Errorf("RootCause = %v, want the injected kill", got)
	}
	if RootCause(nil) != nil {
		t.Error("RootCause(nil) != nil")
	}
	plain := errors.New("plain")
	if got := RootCause(plain); got != plain {
		t.Errorf("RootCause(plain) = %v", got)
	}
}

// TestHealthyRunNoFaultState: an unfaulted run must not arm injection
// state or record fault events.
func TestHealthyRunNoFaultState(t *testing.T) {
	rep, err := Run(Config{Ranks: 2, Model: machine.Ideal(2, 1), Seed: 1, Timeout: 30 * time.Second}, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, []byte("hi"))
		}
		_, err := c.RecvDiscard(0, 0)
		return err
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rep.Faults) != 0 || len(rep.Dead) != 0 {
		t.Errorf("healthy run recorded faults %v dead %v", rep.Faults, rep.Dead)
	}
}
