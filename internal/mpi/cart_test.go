package mpi

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCartCreateValidation(t *testing.T) {
	_, err := Run(testCfg(6), func(c *Comm) error {
		if _, err := c.CartCreate(nil, nil); err == nil {
			t.Error("empty dims accepted")
		}
		if _, err := c.CartCreate([]int{2, 2}, nil); err == nil {
			t.Error("wrong-size grid accepted")
		}
		if _, err := c.CartCreate([]int{-2, -3}, nil); err == nil {
			t.Error("negative dims accepted")
		}
		if _, err := c.CartCreate([]int{2, 3}, []bool{true}); err == nil {
			t.Error("mismatched periodic accepted")
		}
		cart, err := c.CartCreate([]int{2, 3}, []bool{false, true})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(cart.Dims(), []int{2, 3}) {
			t.Errorf("Dims = %v", cart.Dims())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartCoordsRoundtrip(t *testing.T) {
	_, err := Run(testCfg(12), func(c *Comm) error {
		cart, err := c.CartCreate([]int{3, 2, 2}, nil)
		if err != nil {
			return err
		}
		coords := cart.Coords()
		// Row-major: rank = (x*2 + y)*2 + z.
		want := []int{c.Rank() / 4, (c.Rank() / 2) % 2, c.Rank() % 2}
		if !reflect.DeepEqual(coords, want) {
			t.Errorf("rank %d coords = %v, want %v", c.Rank(), coords, want)
		}
		back, err := cart.CoordsToRank(coords)
		if err != nil || back != c.Rank() {
			t.Errorf("roundtrip %v -> %d (err %v)", coords, back, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartCoordsToRankBounds(t *testing.T) {
	_, err := Run(testCfg(4), func(c *Comm) error {
		cart, err := c.CartCreate([]int{2, 2}, []bool{true, false})
		if err != nil {
			return err
		}
		// Periodic dim wraps.
		r, err := cart.CoordsToRank([]int{-1, 0})
		if err != nil || r != 2 {
			t.Errorf("periodic wrap = %d, %v", r, err)
		}
		// Non-periodic dim rejects.
		if _, err := cart.CoordsToRank([]int{0, 2}); err == nil {
			t.Error("out-of-range non-periodic coordinate accepted")
		}
		if _, err := cart.CoordsToRank([]int{0}); err == nil {
			t.Error("short coords accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartShift(t *testing.T) {
	_, err := Run(testCfg(4), func(c *Comm) error {
		cart, err := c.CartCreate([]int{4}, []bool{false})
		if err != nil {
			return err
		}
		src, dst, err := cart.Shift(0, 1)
		if err != nil {
			return err
		}
		wantSrc, wantDst := c.Rank()-1, c.Rank()+1
		if wantSrc < 0 {
			wantSrc = ProcNull
		}
		if wantDst > 3 {
			wantDst = ProcNull
		}
		if src != wantSrc || dst != wantDst {
			t.Errorf("rank %d shift = (%d, %d), want (%d, %d)", c.Rank(), src, dst, wantSrc, wantDst)
		}
		if _, _, err := cart.Shift(1, 1); err == nil {
			t.Error("invalid dimension accepted")
		}
		// Periodic ring.
		ring, err := c.CartCreate([]int{4}, []bool{true})
		if err != nil {
			return err
		}
		src, dst, _ = ring.Shift(0, 1)
		if src != (c.Rank()+3)%4 || dst != (c.Rank()+1)%4 {
			t.Errorf("ring shift = (%d, %d)", src, dst)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartNeighborSendrecvLine(t *testing.T) {
	const p = 5
	_, err := Run(testCfg(p), func(c *Comm) error {
		cart, err := c.CartCreate([]int{p}, nil)
		if err != nil {
			return err
		}
		got, st, err := cart.NeighborSendrecv(0, 1, 7, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if got != nil {
				t.Errorf("rank 0 received %v from nowhere", got)
			}
			return nil
		}
		if got[0] != byte(c.Rank()-1) || st.Source != c.Rank()-1 {
			t.Errorf("rank %d got %v from %d", c.Rank(), got, st.Source)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartNeighborSendrecvTorus(t *testing.T) {
	_, err := Run(testCfg(6), func(c *Comm) error {
		cart, err := c.CartCreate([]int{2, 3}, []bool{true, true})
		if err != nil {
			return err
		}
		for dim := 0; dim < 2; dim++ {
			got, st, err := cart.NeighborSendrecv(dim, 1, 20+dim, []byte{byte(c.Rank())})
			if err != nil {
				return err
			}
			coords := cart.Coords()
			coords[dim]--
			want, err := cart.CoordsToRank(coords)
			if err != nil {
				return err
			}
			if got == nil || int(got[0]) != want || st.Source != want {
				t.Errorf("rank %d dim %d got %v from %d, want %d",
					c.Rank(), dim, got, st.Source, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartRankCoordsProperty(t *testing.T) {
	f := func(a, b, cRaw uint8) bool {
		dims := []int{int(a)%3 + 1, int(b)%3 + 1, int(cRaw)%3 + 1}
		size := dims[0] * dims[1] * dims[2]
		ok := true
		_, err := Run(testCfg(size), func(c *Comm) error {
			cart, err := c.CartCreate(dims, nil)
			if err != nil {
				return err
			}
			back, err := cart.CoordsToRank(cart.Coords())
			if err != nil || back != c.Rank() {
				ok = false
			}
			for i, v := range cart.Coords() {
				if v < 0 || v >= dims[i] {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestScanInclusive(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			_, err := Run(testCfg(p), func(c *Comm) error {
				got, err := c.Scan([]float64{float64(c.Rank() + 1)}, OpSum)
				if err != nil {
					return err
				}
				want := float64((c.Rank() + 1) * (c.Rank() + 2) / 2)
				if got[0] != want {
					t.Errorf("rank %d scan = %g, want %g", c.Rank(), got[0], want)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestScanNonCommutativeOrder(t *testing.T) {
	// With OpMax the result is order-insensitive, so use Sum on distinct
	// magnitudes to confirm the prefix covers exactly ranks [0, r].
	_, err := Run(testCfg(4), func(c *Comm) error {
		got, err := c.Scan([]float64{float64(int(1) << (4 * c.Rank()))}, OpSum)
		if err != nil {
			return err
		}
		want := 0.0
		for r := 0; r <= c.Rank(); r++ {
			want += float64(int(1) << (4 * r))
		}
		if got[0] != want {
			t.Errorf("rank %d scan = %g, want %g", c.Rank(), got[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExscan(t *testing.T) {
	_, err := Run(testCfg(5), func(c *Comm) error {
		got, err := c.Exscan([]float64{1}, OpSum)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if got != nil {
				t.Errorf("rank 0 exscan = %v, want nil", got)
			}
			return nil
		}
		if got[0] != float64(c.Rank()) {
			t.Errorf("rank %d exscan = %g, want %d", c.Rank(), got[0], c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanMatchesAllreducePrefixProperty(t *testing.T) {
	f := func(vals []float64, pRaw uint8) bool {
		p := int(pRaw)%6 + 1
		if len(vals) < p {
			return true
		}
		for i := range vals[:p] {
			if vals[i] != vals[i] { // NaN
				return true
			}
		}
		ok := true
		_, err := Run(testCfg(p), func(c *Comm) error {
			got, err := c.Scan([]float64{vals[c.Rank()]}, OpMax)
			if err != nil {
				return err
			}
			want := vals[0]
			for r := 1; r <= c.Rank(); r++ {
				if vals[r] > want {
					want = vals[r]
				}
			}
			if got[0] != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
