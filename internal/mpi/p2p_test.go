package mpi

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/machine"
)

// testCfg returns a small deterministic config with a watchdog so broken
// topologies fail instead of hanging the suite.
func testCfg(ranks int) Config {
	return Config{
		Ranks:   ranks,
		Model:   machine.Ideal(ranks, 1),
		Seed:    1,
		Timeout: 30 * time.Second,
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{Ranks: 0}, func(*Comm) error { return nil }); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := Run(Config{Ranks: -3}, func(*Comm) error { return nil }); err == nil {
		t.Error("negative ranks accepted")
	}
}

func TestRunSingleRank(t *testing.T) {
	ran := false
	rep, err := Run(testCfg(1), func(c *Comm) error {
		ran = true
		if c.Rank() != 0 || c.Size() != 1 || c.WorldRank() != 0 {
			t.Errorf("identity wrong: rank=%d size=%d", c.Rank(), c.Size())
		}
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("run failed: %v ran=%v", err, ran)
	}
	if len(rep.RankTimes) != 1 {
		t.Fatalf("RankTimes = %v", rep.RankTimes)
	}
}

func TestRunPropagatesRankErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(testCfg(4), func(c *Comm) error {
		if c.Rank() == 2 {
			return boom
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 1 {
			panic("rank exploded")
		}
		// Rank 0 must not be left blocking on rank 1.
		return nil
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestWatchdogCatchesDeadlock(t *testing.T) {
	cfg := testCfg(2)
	cfg.Timeout = 200 * time.Millisecond
	_, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			_, _, err := c.Recv(1, 7) // rank 1 never sends
			return err
		}
		return nil
	})
	if err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestSendRecvRoundtrip(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, []byte("hello"))
		}
		b, st, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(b) != "hello" {
			t.Errorf("payload = %q", b)
		}
		if st.Source != 0 || st.Tag != 5 || st.Bytes != 5 {
			t.Errorf("status = %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // must not affect what rank 1 sees
			return nil
		}
		b, _, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if b[0] != 1 {
			t.Errorf("send did not copy: got %v", b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			t.Error("out-of-range destination accepted")
		}
		if err := c.Send(-1, 0, nil); err == nil {
			t.Error("negative destination accepted")
		}
		if err := c.Send(1-c.Rank(), -7, nil); err == nil {
			t.Error("reserved negative tag accepted")
		}
		// Keep both ranks alive for matched traffic below.
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvValidation(t *testing.T) {
	_, err := Run(testCfg(1), func(c *Comm) error {
		if _, err := c.Irecv(3, 0); err == nil {
			t.Error("out-of-range source accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingPerPair(t *testing.T) {
	const n = 50
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			b, _, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if b[0] != byte(i) {
				t.Errorf("message %d overtaken by %d", i, b[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("one")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("two"))
		}
		// Receive in reverse tag order: matching must be by tag, not FIFO.
		b2, _, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		b1, _, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(b2) != "two" || string(b1) != "one" {
			t.Errorf("tag matching wrong: %q %q", b1, b2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	_, err := Run(testCfg(3), func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, 40+c.Rank(), []byte{byte(c.Rank())})
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			b, st, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if int(b[0]) != st.Source || st.Tag != 40+st.Source {
				t.Errorf("status inconsistent: %+v payload %v", st, b)
			}
			seen[st.Source] = true
		}
		if !seen[1] || !seen[2] {
			t.Errorf("sources seen: %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvBeforeSend(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.Irecv(1, 9)
			if err != nil {
				return err
			}
			b, st, err := req.Wait()
			if err != nil {
				return err
			}
			if string(b) != "late" || st.Source != 1 {
				t.Errorf("posted recv got %q %+v", b, st)
			}
			// Waiting twice is idempotent.
			b2, _, err := req.Wait()
			if err != nil || !bytes.Equal(b2, b) {
				t.Errorf("second Wait: %q %v", b2, err)
			}
			return nil
		}
		return c.Send(0, 9, []byte("late"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendCompletesImmediately(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 0, []byte("x"))
			if err != nil {
				return err
			}
			if _, _, err := req.Wait(); err != nil {
				return err
			}
			return nil
		}
		_, _, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitNilRequest(t *testing.T) {
	var r *Request
	if _, _, err := r.Wait(); err == nil {
		t.Error("nil request Wait did not error")
	}
}

func TestSendrecvRing(t *testing.T) {
	const p = 8
	_, err := Run(testCfg(p), func(c *Comm) error {
		right := (c.Rank() + 1) % p
		left := (c.Rank() - 1 + p) % p
		got, st, err := c.Sendrecv(right, 11, []byte{byte(c.Rank())}, left, 11)
		if err != nil {
			return err
		}
		if got[0] != byte(left) || st.Source != left {
			t.Errorf("rank %d: ring got %v from %d", c.Rank(), got, st.Source)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Codec(t *testing.T) {
	f := func(xs []float64) bool {
		got, err := BytesToFloat64s(Float64sToBytes(xs))
		if err != nil {
			return false
		}
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			// NaN-safe bit comparison.
			if math.Float64bits(got[i]) != math.Float64bits(xs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if _, err := BytesToFloat64s([]byte{1, 2, 3}); err == nil {
		t.Error("misaligned payload accepted")
	}
}

func TestWaitallAndWaitany(t *testing.T) {
	_, err := Run(testCfg(4), func(c *Comm) error {
		if c.Rank() == 0 {
			for r := 1; r < 4; r++ {
				if err := c.Send(r, 5, []byte{byte(r)}); err != nil {
					return err
				}
			}
			return nil
		}
		// Each non-root posts two receives: one real, one matched later.
		a, err := c.Irecv(0, 5)
		if err != nil {
			return err
		}
		data, sts, err := Waitall([]*Request{a})
		if err != nil {
			return err
		}
		if len(data) != 1 || data[0][0] != byte(c.Rank()) || sts[0].Source != 0 {
			t.Errorf("rank %d: Waitall got %v %v", c.Rank(), data, sts)
		}
		// Waitany over an already-completed request returns -1.
		idx, _, _, err := Waitany([]*Request{a})
		if err != nil || idx != -1 {
			t.Errorf("Waitany over done requests = %d, %v", idx, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitanyPicksPending(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 3, []byte("x"))
		}
		done, err := c.Isend(0, 99, nil) // completed immediately... but 0 never receives; harmless eager
		if err != nil {
			return err
		}
		_ = done
		pending, err := c.Irecv(0, 3)
		if err != nil {
			return err
		}
		idx, data, st, err := Waitany([]*Request{done, pending})
		if err != nil {
			return err
		}
		if idx != 1 || string(data) != "x" || st.Tag != 3 {
			t.Errorf("Waitany = %d %q %+v", idx, data, st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobe(t *testing.T) {
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 9, []byte("peek")); err != nil {
				return err
			}
			return c.Barrier()
		}
		// Nothing with tag 8.
		if _, ok, err := c.Iprobe(0, 8); err != nil || ok {
			t.Errorf("Iprobe(0,8) = %v, %v", ok, err)
		}
		if err := c.Barrier(); err != nil { // message surely enqueued
			return err
		}
		st, ok, err := c.Iprobe(AnySource, AnyTag)
		if err != nil || !ok {
			t.Fatalf("Iprobe missed pending message: %v %v", ok, err)
		}
		if st.Source != 0 || st.Tag != 9 || st.Bytes != 4 {
			t.Errorf("probe status = %+v", st)
		}
		// The message is still retrievable.
		b, _, err := c.Recv(0, 9)
		if err != nil || string(b) != "peek" {
			t.Errorf("Recv after probe: %q %v", b, err)
		}
		// And now the queue is empty again.
		if _, ok, _ := c.Iprobe(AnySource, AnyTag); ok {
			t.Error("probe found a consumed message")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobeValidation(t *testing.T) {
	_, err := Run(testCfg(1), func(c *Comm) error {
		if _, _, err := c.Iprobe(5, 0); err == nil {
			t.Error("invalid source accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvFloat64s(t *testing.T) {
	want := []float64{3.14, -2.72, 0, math.Inf(1)}
	_, err := Run(testCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.SendFloat64s(1, 0, want)
		}
		got, _, err := c.RecvFloat64s(0, 0)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyRanksAllPairs(t *testing.T) {
	const p = 16
	_, err := Run(testCfg(p), func(c *Comm) error {
		// Everyone sends one message to everyone else, then receives p-1.
		for d := 0; d < p; d++ {
			if d == c.Rank() {
				continue
			}
			if err := c.Send(d, 0, []byte{byte(c.Rank())}); err != nil {
				return err
			}
		}
		seen := make([]bool, p)
		for i := 0; i < p-1; i++ {
			b, st, err := c.Recv(AnySource, 0)
			if err != nil {
				return err
			}
			if seen[st.Source] || int(b[0]) != st.Source {
				t.Errorf("duplicate or wrong source %d", st.Source)
			}
			seen[st.Source] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
