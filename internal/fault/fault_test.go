package fault

import (
	"math"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "kill:rank=2,after=100;kill:rank=1,section=HALO;drop:src=0,dst=1,prob=0.5;delay:src=*,dst=*,prob=0.2,secs=0.0001;trunc:src=*,dst=3,prob=0.1,frac=0.5"
	p, err := ParseSpec(spec, 42)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(p.Rules) != 5 {
		t.Fatalf("got %d rules, want 5", len(p.Rules))
	}
	if got := p.String(); got != spec {
		t.Errorf("String() = %q, want %q", got, spec)
	}
	p2, err := ParseSpec(p.String(), 42)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if p2.String() != p.String() {
		t.Errorf("round trip diverged: %q vs %q", p2.String(), p.String())
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"kill:after=3",                   // no rank
		"kill:rank=1",                    // neither after nor section
		"kill:rank=1,after=3,section=X",  // both
		"kill:rank=1,after=0",            // zero threshold
		"drop:src=0,dst=1",               // no prob
		"drop:src=0,dst=1,prob=2",        // prob out of range
		"delay:src=0,prob=0.5",           // no secs
		"trunc:dst=1,prob=0.5",           // no frac
		"trunc:dst=1,prob=0.5,frac=1.5",  // frac out of range
		"dead_peer:src=0,dst=1,prob=0.5", // not injectable
		"bogus:rank=1",                   // unknown kind
		"drop:src=0,dst=1,prob=0.5,x=y",  // unknown field
		"kill rank=1",                    // missing colon
		"kill:rank=-2,after=1",           // negative rank
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", spec)
		}
	}
}

func TestKillLookups(t *testing.T) {
	p, err := ParseSpec("kill:rank=2,after=100;kill:rank=2,after=50;kill:rank=1,section=HALO", 7)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := p.KillAfter(2); !ok || n != 50 {
		t.Errorf("KillAfter(2) = %d, %v; want 50, true (earliest rule wins)", n, ok)
	}
	if _, ok := p.KillAfter(1); ok {
		t.Errorf("KillAfter(1) should be false (section rule only)")
	}
	if !p.KillSection(1, "HALO") {
		t.Errorf("KillSection(1, HALO) = false, want true")
	}
	if p.KillSection(1, "EXCHANGE") || p.KillSection(0, "HALO") {
		t.Errorf("KillSection matched wrong rank or section")
	}
	var nilPlan *Plan
	if _, ok := nilPlan.KillAfter(0); ok || nilPlan.KillSection(0, "X") || nilPlan.HasLinkRules() {
		t.Errorf("nil plan must inject nothing")
	}
}

func TestLinkFaultDeterminismAndRate(t *testing.T) {
	p, err := ParseSpec("drop:src=0,dst=1,prob=0.25", 2017)
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasLinkRules() {
		t.Fatal("HasLinkRules = false")
	}
	const n = 20000
	drops := 0
	for i := uint64(0); i < n; i++ {
		d1 := p.LinkFault(0, 1, i)
		d2 := p.LinkFault(0, 1, i)
		if d1 != d2 {
			t.Fatalf("LinkFault not deterministic at idx %d: %+v vs %+v", i, d1, d2)
		}
		if d1.Delay != 0 || d1.Frac != 1 {
			t.Fatalf("drop rule produced delay/trunc: %+v", d1)
		}
		if d1.Drop {
			drops++
		}
		if d := p.LinkFault(1, 0, i); d.Drop {
			t.Fatalf("reverse link 1->0 should not match src=0,dst=1 rule")
		}
	}
	rate := float64(drops) / n
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("drop rate %.3f, want ~0.25", rate)
	}
	// A different seed must produce a different schedule.
	p2 := &Plan{Seed: 2018, Rules: p.Rules}
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if p.LinkFault(0, 1, i).Drop == p2.LinkFault(0, 1, i).Drop {
			same++
		}
	}
	if same == 1000 {
		t.Errorf("seeds 2017 and 2018 produced identical schedules")
	}
}

func TestLinkFaultCombines(t *testing.T) {
	p, err := ParseSpec("delay:src=*,dst=*,prob=1,secs=0.001;trunc:src=*,dst=*,prob=1,frac=0.5;trunc:src=*,dst=*,prob=1,frac=0.25", 9)
	if err != nil {
		t.Fatal(err)
	}
	d := p.LinkFault(3, 4, 0)
	if d.Drop {
		t.Errorf("no drop rule but Drop=true")
	}
	if d.Delay != 0.001 {
		t.Errorf("Delay = %g, want 0.001", d.Delay)
	}
	if d.Frac != 0.25 {
		t.Errorf("Frac = %g, want 0.25 (smallest wins)", d.Frac)
	}
}

func TestSortEventsCanonical(t *testing.T) {
	events := []Event{
		{T: 2, Kind: Kill, Rank: 1},
		{T: 1, Kind: DeadPeer, Rank: 0, Src: 1, Dst: 0},
		{T: 1, Kind: Drop, Rank: 0, Src: 0, Dst: 2},
		{T: 1, Kind: Drop, Rank: 0, Src: 0, Dst: 1},
	}
	SortEvents(events)
	if events[0].Dst != 1 || events[1].Dst != 2 || events[2].Kind != DeadPeer || events[3].Kind != Kill {
		t.Errorf("unexpected canonical order: %+v", events)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Kill, Drop, Delay, Trunc, DeadPeer} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Errorf("ParseKind accepted unknown name")
	}
}
