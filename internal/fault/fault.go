// Package fault defines deterministic, seeded fault-injection plans for the
// in-process MPI runtime (internal/mpi). A Plan is an immutable set of rules
// — rank fail-stop at the Nth operation or on entering a named section,
// per-link message drop, extra latency, payload truncation — whose every
// decision is a pure function of (plan seed, link endpoints, per-link
// message ordinal). Two runs with the same plan therefore inject byte-
// identical fault schedules regardless of goroutine scheduling or sweep
// parallelism, which is what makes degraded-mode experiments reproducible.
//
// The package is deliberately free of runtime dependencies: the mpi package
// consults a Plan on its hot paths, and tools observe the resulting Events.
// When no plan is attached the runtime skips this package entirely (the
// no-plan zero-overhead contract documented in internal/mpi).
package fault

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies an injected fault (or its observed consequence).
type Kind int

// Fault kinds. Kill, Drop, Delay and Trunc are injected by rules; DeadPeer
// is the consequence the runtime reports when an operation fails because a
// peer rank died.
const (
	Kill Kind = iota
	Drop
	Delay
	Trunc
	DeadPeer
)

var kindNames = map[Kind]string{
	Kill:     "kill",
	Drop:     "drop",
	Delay:    "delay",
	Trunc:    "trunc",
	DeadPeer: "dead_peer",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalJSON encodes the kind as its spec name ("kill", "drop", ...) so
// JSON consumers (e.g. secmon's /faults.json) see readable events.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON inverts MarshalJSON.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// ParseKind inverts Kind.String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", s)
}

// Wildcard matches any rank on a link-rule endpoint.
const Wildcard = -1

// Rule is one injection directive. Kill rules target a world rank and fire
// either after the rank's AfterOps-th point-to-point operation or on its
// first entry into Section. Link rules (Drop, Delay, Trunc) target messages
// on a (Src, Dst) world-rank link (Wildcard endpoints match every rank) and
// fire with probability Prob per message, decided deterministically from
// the plan seed and the link's message ordinal.
type Rule struct {
	Kind Kind

	// Kill rules.
	Rank     int    // world rank to kill
	AfterOps uint64 // fail-stop when the rank's op counter reaches this (0 = unused)
	Section  string // fail-stop on first entry into this section ("" = unused)

	// Link rules.
	Src, Dst int     // world-rank endpoints; Wildcard matches any
	Prob     float64 // per-message firing probability in [0, 1]
	Delay    float64 // Delay: extra seconds added to the modeled arrival
	Frac     float64 // Trunc: fraction of the real payload kept, in (0, 1)
}

func (r Rule) matchesLink(src, dst int) bool {
	return (r.Src == Wildcard || r.Src == src) && (r.Dst == Wildcard || r.Dst == dst)
}

// Plan is an immutable fault schedule. The zero value injects nothing; nil
// plans are valid everywhere and mean "no faults".
type Plan struct {
	// Seed drives every probabilistic decision. Equal seeds (and rules)
	// yield identical schedules on every run.
	Seed  uint64
	Rules []Rule
}

// LinkDecision is the aggregate effect of every link rule on one message.
type LinkDecision struct {
	Drop  bool
	Delay float64 // extra seconds added to the arrival stamp
	Frac  float64 // payload fraction kept; 1 means untouched
}

// HasLinkRules reports whether any rule targets message links; the runtime
// skips per-message bookkeeping entirely when false.
func (p *Plan) HasLinkRules() bool {
	if p == nil {
		return false
	}
	for _, r := range p.Rules {
		switch r.Kind {
		case Drop, Delay, Trunc:
			return true
		}
	}
	return false
}

// KillAfter returns the op count at which the given world rank fail-stops,
// or (0, false) when no op-count kill rule targets it. With several rules
// the earliest threshold wins.
func (p *Plan) KillAfter(rank int) (uint64, bool) {
	if p == nil {
		return 0, false
	}
	var best uint64 = math.MaxUint64
	for _, r := range p.Rules {
		if r.Kind == Kill && r.Rank == rank && r.AfterOps > 0 && r.AfterOps < best {
			best = r.AfterOps
		}
	}
	return best, best != math.MaxUint64
}

// KillSection reports whether the given world rank fail-stops on entering
// the labeled section.
func (p *Plan) KillSection(rank int, label string) bool {
	if p == nil {
		return false
	}
	for _, r := range p.Rules {
		if r.Kind == Kill && r.Rank == rank && r.Section != "" && r.Section == label {
			return true
		}
	}
	return false
}

// LinkFault evaluates every link rule against the idx-th message on the
// (src, dst) link and returns the combined decision. idx must be the
// per-link ordinal assigned by the sender (0, 1, 2, ...): because the
// ordinal is owned by the sending rank, the decision is independent of
// goroutine scheduling.
func (p *Plan) LinkFault(src, dst int, idx uint64) LinkDecision {
	d := LinkDecision{Frac: 1}
	if p == nil {
		return d
	}
	for i, r := range p.Rules {
		switch r.Kind {
		case Drop, Delay, Trunc:
		default:
			continue
		}
		if !r.matchesLink(src, dst) {
			continue
		}
		if p.roll(i, src, dst, idx) >= r.Prob {
			continue
		}
		switch r.Kind {
		case Drop:
			d.Drop = true
		case Delay:
			d.Delay += r.Delay
		case Trunc:
			if r.Frac < d.Frac {
				d.Frac = r.Frac
			}
		}
	}
	return d
}

// roll derives a uniform [0, 1) variate for rule i applied to message idx
// on link (src, dst) — a pure splitmix64-style hash of its arguments.
func (p *Plan) roll(i, src, dst int, idx uint64) float64 {
	h := p.Seed ^ 0x9e3779b97f4a7c15*uint64(i+1)
	h = mix64(h)
	h = mix64(h ^ (uint64(uint32(src))<<32 | uint64(uint32(dst))))
	h = mix64(h ^ idx)
	return float64(h>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Event records one injected fault or observed failure consequence, on the
// run's virtual clock. Src and Dst are world-rank link endpoints (-1 when
// not applicable); Rank is the affected rank (the killed rank for Kill, the
// observing rank for DeadPeer). For DeadPeer events PostT is the moment the
// failed operation started blocking, so T-PostT is the time lost waiting on
// the dead peer.
type Event struct {
	T       float64 `json:"t"`
	Kind    Kind    `json:"kind"`
	Rank    int     `json:"rank"`
	Src     int     `json:"src"`
	Dst     int     `json:"dst"`
	Comm    int64   `json:"comm"`
	Section string  `json:"section,omitempty"`
	Bytes   int     `json:"bytes,omitempty"`
	Delay   float64 `json:"delay,omitempty"`
	PostT   float64 `json:"postt,omitempty"`
}

// SortEvents orders events canonically (time, kind, rank, link) so that a
// run's fault log is byte-identical however its goroutines interleaved.
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}

// ParseSpec parses the compact command-line plan syntax used by the sweep
// drivers' -fault-spec flag: rules separated by ';', fields by ','.
//
//	kill:rank=2,after=100        fail-stop rank 2 at its 100th p2p op
//	kill:rank=1,section=HALO     fail-stop rank 1 entering section HALO
//	drop:src=0,dst=1,prob=0.5    drop half the 0->1 messages
//	delay:src=*,prob=0.2,secs=1e-4  delay 20% of all messages by 100us
//	trunc:dst=3,prob=0.1,frac=0.5   truncate 10% of messages to rank 3
//
// Endpoints default to '*' (Wildcard). seed drives the probabilistic rolls.
func ParseSpec(spec string, seed uint64) (*Plan, error) {
	p := &Plan{Seed: seed}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, fields, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("fault: rule %q: want kind:field=value,...", part)
		}
		kind, err := ParseKind(strings.TrimSpace(kindStr))
		if err != nil {
			return nil, err
		}
		if kind == DeadPeer {
			return nil, fmt.Errorf("fault: rule %q: dead_peer is an observed consequence, not injectable", part)
		}
		r := Rule{Kind: kind, Rank: Wildcard, Src: Wildcard, Dst: Wildcard}
		for _, f := range strings.Split(fields, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(f), "=")
			if !ok {
				return nil, fmt.Errorf("fault: rule %q: field %q: want key=value", part, f)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			switch key {
			case "rank":
				if r.Rank, err = parseRank(val); err != nil {
					return nil, fmt.Errorf("fault: rule %q: %w", part, err)
				}
			case "after":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil || n == 0 {
					return nil, fmt.Errorf("fault: rule %q: after must be a positive integer, got %q", part, val)
				}
				r.AfterOps = n
			case "section":
				r.Section = val
			case "src":
				if r.Src, err = parseRank(val); err != nil {
					return nil, fmt.Errorf("fault: rule %q: %w", part, err)
				}
			case "dst":
				if r.Dst, err = parseRank(val); err != nil {
					return nil, fmt.Errorf("fault: rule %q: %w", part, err)
				}
			case "prob":
				if r.Prob, err = strconv.ParseFloat(val, 64); err != nil || r.Prob < 0 || r.Prob > 1 {
					return nil, fmt.Errorf("fault: rule %q: prob must be in [0,1], got %q", part, val)
				}
			case "secs":
				if r.Delay, err = strconv.ParseFloat(val, 64); err != nil || r.Delay < 0 {
					return nil, fmt.Errorf("fault: rule %q: secs must be >= 0, got %q", part, val)
				}
			case "frac":
				if r.Frac, err = strconv.ParseFloat(val, 64); err != nil || r.Frac <= 0 || r.Frac >= 1 {
					return nil, fmt.Errorf("fault: rule %q: frac must be in (0,1), got %q", part, val)
				}
			default:
				return nil, fmt.Errorf("fault: rule %q: unknown field %q", part, key)
			}
		}
		if err := validate(r, part); err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("fault: empty spec")
	}
	return p, nil
}

func parseRank(s string) (int, error) {
	if s == "*" {
		return Wildcard, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("rank must be '*' or a non-negative integer, got %q", s)
	}
	return n, nil
}

func validate(r Rule, part string) error {
	switch r.Kind {
	case Kill:
		if r.Rank == Wildcard {
			return fmt.Errorf("fault: rule %q: kill needs rank=N", part)
		}
		if (r.AfterOps == 0) == (r.Section == "") {
			return fmt.Errorf("fault: rule %q: kill needs exactly one of after= or section=", part)
		}
	case Drop, Delay, Trunc:
		if r.Prob <= 0 {
			return fmt.Errorf("fault: rule %q: link rule needs prob>0", part)
		}
		if r.Kind == Delay && r.Delay <= 0 {
			return fmt.Errorf("fault: rule %q: delay needs secs>0", part)
		}
		if r.Kind == Trunc && r.Frac == 0 {
			return fmt.Errorf("fault: rule %q: trunc needs frac in (0,1)", part)
		}
	}
	return nil
}

// String renders the plan back in ParseSpec syntax (modulo field order),
// for logs and the /faults.json endpoint.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(r.Kind.String())
		b.WriteByte(':')
		var fields []string
		rank := func(n int) string {
			if n == Wildcard {
				return "*"
			}
			return strconv.Itoa(n)
		}
		switch r.Kind {
		case Kill:
			fields = append(fields, "rank="+rank(r.Rank))
			if r.AfterOps > 0 {
				fields = append(fields, "after="+strconv.FormatUint(r.AfterOps, 10))
			}
			if r.Section != "" {
				fields = append(fields, "section="+r.Section)
			}
		default:
			fields = append(fields, "src="+rank(r.Src), "dst="+rank(r.Dst),
				"prob="+strconv.FormatFloat(r.Prob, 'g', -1, 64))
			if r.Kind == Delay {
				fields = append(fields, "secs="+strconv.FormatFloat(r.Delay, 'g', -1, 64))
			}
			if r.Kind == Trunc {
				fields = append(fields, "frac="+strconv.FormatFloat(r.Frac, 'g', -1, 64))
			}
		}
		b.WriteString(strings.Join(fields, ","))
	}
	return b.String()
}

// Key renders the plan as a canonical cache-key fragment: the seed plus the
// spec rendering, "" for a nil plan. Two plans with equal keys inject
// byte-identical fault schedules into equal workloads (the package's core
// determinism contract), so result caches may treat the key as a complete
// description of the plan's effect on a run.
func (p *Plan) Key() string {
	if p == nil {
		return ""
	}
	return strconv.FormatUint(p.Seed, 10) + "|" + p.String()
}

// HasKillRules reports whether any rule is a fail-stop. Serving layers use
// it to decide whether a job's failure could have been caused by the plan
// itself (and is therefore retryable on a clean re-run).
func (p *Plan) HasKillRules() bool {
	if p == nil {
		return false
	}
	for _, r := range p.Rules {
		if r.Kind == Kill {
			return true
		}
	}
	return false
}
