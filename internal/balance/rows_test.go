package balance

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
)

func TestAnalyzeRowsFromCSVRoundtrip(t *testing.T) {
	// Full pipeline: run → per-rank CSV → rows → offline analysis must
	// agree with the live analysis.
	p := prof.New()
	cfg := mpi.Config{
		Ranks: 4, Model: machine.Ideal(4, 1), Seed: 1,
		Tools: []mpi.Tool{p}, Timeout: 60 * time.Second,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		for i := 0; i < 5; i++ {
			c.SectionEnter("skew")
			c.Sleep(1 + float64(c.Rank()))
			c.SectionExit("skew")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	profile, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	live, err := Analyze(profile.Section("skew"))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := profile.WritePerRankCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := prof.ReadPerRankCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var skew []prof.PerRankRow
	for _, r := range rows {
		if r.Label == "skew" {
			skew = append(skew, r)
		}
	}
	offline, err := AnalyzeRows(skew)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(offline.Imbalance-live.Imbalance) > 1e-9 {
		t.Errorf("imbalance: offline %g vs live %g", offline.Imbalance, live.Imbalance)
	}
	if math.Abs(offline.PersistentShare-live.PersistentShare) > 1e-9 {
		t.Errorf("persistent: offline %g vs live %g", offline.PersistentShare, live.PersistentShare)
	}
	if math.Abs(offline.Gini-live.Gini) > 1e-9 {
		t.Errorf("gini: offline %g vs live %g", offline.Gini, live.Gini)
	}
	if offline.SlowestRank != 3 {
		t.Errorf("slowest = %d", offline.SlowestRank)
	}
}

func TestAnalyzeRowsValidation(t *testing.T) {
	if _, err := AnalyzeRows(nil); err == nil {
		t.Error("empty rows accepted")
	}
	mixed := []prof.PerRankRow{
		{Label: "a", Ranks: 2, Rank: 0},
		{Label: "b", Ranks: 2, Rank: 1},
	}
	if _, err := AnalyzeRows(mixed); err == nil {
		t.Error("mixed labels accepted")
	}
	oob := []prof.PerRankRow{{Label: "a", Ranks: 2, Rank: 5}}
	if _, err := AnalyzeRows(oob); err == nil {
		t.Error("out-of-range rank accepted")
	}
}
