package balance

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
	"repro/internal/stats"
)

// runProfile executes fn on ranks ideal ranks and returns the profile.
func runProfile(t *testing.T, ranks int, fn func(*mpi.Comm) error) *prof.Profile {
	t.Helper()
	p := prof.New()
	cfg := mpi.Config{
		Ranks: ranks, Model: machine.Ideal(ranks, 1), Seed: 1,
		Tools: []mpi.Tool{p}, Timeout: 60 * time.Second,
	}
	if _, err := mpi.Run(cfg, fn); err != nil {
		t.Fatal(err)
	}
	profile, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	return profile
}

func TestAnalyzeBalancedSection(t *testing.T) {
	profile := runProfile(t, 4, func(c *mpi.Comm) error {
		for i := 0; i < 5; i++ {
			c.SectionEnter("even")
			c.Sleep(1)
			c.SectionExit("even")
		}
		return nil
	})
	a, err := Analyze(profile.Section("even"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Imbalance > 1e-9 || a.Gini > 1e-9 {
		t.Errorf("balanced section: imbalance=%g gini=%g", a.Imbalance, a.Gini)
	}
	if len(a.Outliers) != 0 {
		t.Errorf("outliers on balanced data: %v", a.Outliers)
	}
	if !strings.Contains(a.Verdict(), "balanced") {
		t.Errorf("verdict = %q", a.Verdict())
	}
}

func TestAnalyzePersistentImbalance(t *testing.T) {
	// Rank 3 is always 3× slower: persistent.
	profile := runProfile(t, 4, func(c *mpi.Comm) error {
		for i := 0; i < 10; i++ {
			c.SectionEnter("skewed")
			d := 1.0
			if c.Rank() == 3 {
				d = 3
			}
			c.Sleep(d)
			c.SectionExit("skewed")
		}
		return nil
	})
	a, err := Analyze(profile.Section("skewed"))
	if err != nil {
		t.Fatal(err)
	}
	if a.PersistentShare < 0.9 {
		t.Errorf("persistent share = %g, want ~1", a.PersistentShare)
	}
	if a.SlowestRank != 3 {
		t.Errorf("slowest rank = %d", a.SlowestRank)
	}
	if math.Abs(a.Imbalance-1.0) > 1e-9 { // totals [10,10,10,30]: 30/15 − 1
		t.Errorf("imbalance = %g, want 1", a.Imbalance)
	}
	if !strings.Contains(a.Verdict(), "persistent") {
		t.Errorf("verdict = %q", a.Verdict())
	}
}

func TestAnalyzeTransientImbalance(t *testing.T) {
	// Every rank alternates fast/slow out of phase: per-rank means are
	// equal, within-rank variance is high → transient.
	profile := runProfile(t, 4, func(c *mpi.Comm) error {
		for i := 0; i < 10; i++ {
			c.SectionEnter("jittery")
			if (i+c.Rank())%2 == 0 {
				c.Sleep(0.5)
			} else {
				c.Sleep(1.5)
			}
			c.SectionExit("jittery")
		}
		return nil
	})
	a, err := Analyze(profile.Section("jittery"))
	if err != nil {
		t.Fatal(err)
	}
	if a.PersistentShare > 0.1 {
		t.Errorf("persistent share = %g, want ~0", a.PersistentShare)
	}
	if a.Imbalance > 0.01 {
		t.Errorf("totals imbalance = %g, want ~0 (phases cancel)", a.Imbalance)
	}
}

func TestAnalyzeOutlierDetection(t *testing.T) {
	profile := runProfile(t, 16, func(c *mpi.Comm) error {
		c.SectionEnter("spike")
		d := 1.0
		if c.Rank() == 7 {
			d = 5
		}
		c.Sleep(d)
		c.SectionExit("spike")
		return nil
	})
	a, err := Analyze(profile.Section("spike"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Outliers) != 1 || a.Outliers[0] != 7 {
		t.Errorf("outliers = %v, want [7]", a.Outliers)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("nil section accepted")
	}
	if _, err := Analyze(&prof.SectionStats{}); err == nil {
		t.Error("empty section accepted")
	}
}

func TestGini(t *testing.T) {
	if g := gini(nil); g != 0 {
		t.Errorf("gini(nil) = %g", g)
	}
	if g := gini([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-12 {
		t.Errorf("uniform gini = %g", g)
	}
	if g := gini([]float64{0, 0, 0}); g != 0 {
		t.Errorf("all-zero gini = %g", g)
	}
	// One rank holds everything: gini → (n-1)/n.
	g := gini([]float64{0, 0, 0, 10})
	if math.Abs(g-0.75) > 1e-12 {
		t.Errorf("concentrated gini = %g, want 0.75", g)
	}
	// Order must not matter.
	if gini([]float64{3, 1, 2}) != gini([]float64{1, 2, 3}) {
		t.Error("gini is order-sensitive")
	}
}

func TestAnalyzeProfileSorting(t *testing.T) {
	profile := runProfile(t, 4, func(c *mpi.Comm) error {
		// "hot" is big and imbalanced; "cool" is big but balanced.
		c.SectionEnter("hot")
		c.Sleep(1 + float64(c.Rank()))
		c.SectionExit("hot")
		c.SectionEnter("cool")
		c.Sleep(10)
		c.SectionExit("cool")
		return nil
	})
	analyses, err := AnalyzeProfile(profile)
	if err != nil {
		t.Fatal(err)
	}
	idx := func(label string) int {
		for i, a := range analyses {
			if a.Label == label {
				return i
			}
		}
		return -1
	}
	// The imbalanced section must rank above the balanced one (MPI_MAIN
	// inherits the skew, so only the relative order of hot/cool is
	// deterministic here).
	if hi, ci := idx("hot"), idx("cool"); hi < 0 || ci < 0 || hi > ci {
		t.Errorf("hot at %d, cool at %d; want hot first", hi, ci)
	}
}

func TestHeatStrip(t *testing.T) {
	s := &prof.SectionStats{
		Label:        "phase",
		Ranks:        4,
		PerRankTotal: []float64{0, 1, 2, 4},
	}
	h := Heat(s)
	if !strings.HasPrefix(h, "phase") || !strings.Contains(h, "|") {
		t.Errorf("heat = %q", h)
	}
	cells := h[strings.IndexByte(h, '|')+1 : strings.LastIndexByte(h, '|')]
	if len(cells) != 4 {
		t.Fatalf("cells = %q", cells)
	}
	if cells[0] != ' ' || cells[3] != '@' {
		t.Errorf("scaling wrong: %q", cells)
	}
	// Zero section renders without dividing by zero.
	zero := &prof.SectionStats{Label: "z", Ranks: 2, PerRankTotal: []float64{0, 0}}
	if !strings.Contains(Heat(zero), "|  |") {
		t.Errorf("zero heat = %q", Heat(zero))
	}
}

func TestReportRendering(t *testing.T) {
	profile := runProfile(t, 4, func(c *mpi.Comm) error {
		c.SectionEnter("work")
		c.Sleep(1 + float64(c.Rank()))
		c.SectionExit("work")
		return nil
	})
	out, err := Report(profile, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"section", "work", "persistent", "per-rank heat"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Without heat strips.
	out, err = Report(profile, 0)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "per-rank heat") {
		t.Error("heat strips rendered despite topHeat=0")
	}
}

func TestPersistentShareDecompositionExact(t *testing.T) {
	// Hand-built stats: two ranks, constant per-instance durations 1 and 3
	// → within-variance 0 → persistent share 1.
	s := &prof.SectionStats{
		Label: "x", Ranks: 2,
		PerRankTotal: []float64{10, 30},
		PerRank:      make([]stats.Welford, 2),
	}
	for i := 0; i < 10; i++ {
		s.PerRank[0].Add(1)
		s.PerRank[1].Add(3)
	}
	a, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.PersistentShare-1) > 1e-12 {
		t.Errorf("persistent share = %g, want 1", a.PersistentShare)
	}
}
