// Package balance implements the section load-balancing analysis the paper
// announces as future work (§8: "an MPI Section analysis interface
// describing the load-balancing of Sections as shown in Figure 3"). Given a
// section profile it quantifies how unevenly a section's time is spread
// over ranks, decomposes the imbalance into a persistent part (the same
// ranks are always slow — a decomposition problem) and a transient part
// (different ranks are slow at different steps — jitter or dynamic load),
// flags outlier ranks, and renders a per-rank heat strip.
package balance

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/prof"
	"repro/internal/stats"
)

// Analysis is the load-balance verdict for one section.
type Analysis struct {
	Label string
	Ranks int
	// MeanTotal is the average per-rank total time.
	MeanTotal float64
	// Imbalance is max/mean − 1 over per-rank totals (0 = perfect).
	Imbalance float64
	// Gini is the Gini coefficient of the per-rank totals ∈ [0, 1).
	Gini float64
	// PersistentShare ∈ [0, 1] is the fraction of the total variance
	// explained by stable rank-to-rank differences; the remainder is
	// transient (step-to-step) variation.
	PersistentShare float64
	// Outliers lists ranks whose total exceeds mean + 2σ.
	Outliers []int
	// SlowestRank and its total.
	SlowestRank  int
	SlowestTotal float64
}

// Analyze computes the verdict for one section's stats. It errs when the
// section has no per-rank data.
func Analyze(s *prof.SectionStats) (*Analysis, error) {
	if s == nil || len(s.PerRankTotal) == 0 {
		return nil, fmt.Errorf("balance: section has no per-rank data")
	}
	a := &Analysis{Label: s.Label, Ranks: s.Ranks}
	totals := s.PerRankTotal
	mean, err := stats.Mean(totals)
	if err != nil {
		return nil, err
	}
	a.MeanTotal = mean
	if v, err := stats.Imbalance(totals); err == nil {
		a.Imbalance = v
	}
	a.Gini = gini(totals)

	// Persistent vs transient decomposition (one-way ANOVA on the
	// per-instance durations): between-rank variance of the means vs the
	// mean within-rank variance.
	if len(s.PerRank) == len(totals) {
		var between stats.Welford
		var withinSum float64
		n := 0
		for r := range s.PerRank {
			w := &s.PerRank[r]
			if w.N() == 0 {
				continue
			}
			between.Add(w.Mean())
			withinSum += w.Var()
			n++
		}
		if n > 1 {
			betweenVar := between.Var()
			within := withinSum / float64(n)
			if total := betweenVar + within; total > 0 {
				a.PersistentShare = betweenVar / total
			}
		}
	}

	// Outliers: totals beyond mean + 2σ.
	sigma := stats.Std(totals)
	for r, v := range totals {
		if sigma > 0 && v > mean+2*sigma {
			a.Outliers = append(a.Outliers, r)
		}
		if v > a.SlowestTotal {
			a.SlowestTotal = v
			a.SlowestRank = r
		}
	}
	return a, nil
}

// AnalyzeProfile analyzes every section of a profile, sorted by decreasing
// imbalance-weighted cost (imbalance × total time), i.e. where rebalancing
// would pay the most.
func AnalyzeProfile(p *prof.Profile) ([]*Analysis, error) {
	var out []*Analysis
	for _, s := range p.Sections {
		a, err := Analyze(s)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		wi := out[i].Imbalance * out[i].MeanTotal * float64(out[i].Ranks)
		wj := out[j].Imbalance * out[j].MeanTotal * float64(out[j].Ranks)
		if wi != wj {
			return wi > wj
		}
		return out[i].Label < out[j].Label
	})
	return out, nil
}

// AnalyzeRows performs the same analysis from exported per-rank profile
// rows (prof.ReadPerRankCSV), enabling offline analysis in cmd/secanalyze.
// All rows must belong to the same (comm, label) section.
func AnalyzeRows(rows []prof.PerRankRow) (*Analysis, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("balance: no rows")
	}
	label, comm := rows[0].Label, rows[0].Comm
	ranks := rows[0].Ranks
	totals := make([]float64, ranks)
	var between stats.Welford
	var withinSum float64
	n := 0
	for _, r := range rows {
		if r.Label != label || r.Comm != comm {
			return nil, fmt.Errorf("balance: mixed sections %q/%q in one analysis", label, r.Label)
		}
		if r.Rank < 0 || r.Rank >= ranks {
			return nil, fmt.Errorf("balance: rank %d out of range [0,%d)", r.Rank, ranks)
		}
		totals[r.Rank] = r.Total
		if r.Instances > 0 {
			between.Add(r.DurMean)
			withinSum += r.DurStd * r.DurStd
			n++
		}
	}
	a := &Analysis{Label: label, Ranks: ranks}
	mean, err := stats.Mean(totals)
	if err != nil {
		return nil, err
	}
	a.MeanTotal = mean
	if v, err := stats.Imbalance(totals); err == nil {
		a.Imbalance = v
	}
	a.Gini = gini(totals)
	if n > 1 {
		betweenVar := between.Var()
		within := withinSum / float64(n)
		if total := betweenVar + within; total > 0 {
			a.PersistentShare = betweenVar / total
		}
	}
	sigma := stats.Std(totals)
	for r, v := range totals {
		if sigma > 0 && v > mean+2*sigma {
			a.Outliers = append(a.Outliers, r)
		}
		if v > a.SlowestTotal {
			a.SlowestTotal = v
			a.SlowestRank = r
		}
	}
	return a, nil
}

// gini computes the Gini coefficient of non-negative values.
func gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	var cum, total float64
	for i, v := range sorted {
		cum += v * float64(2*(i+1)-n-1)
		total += v
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(n) * total)
}

// heatGlyphs maps a normalized load to a character, cold to hot.
const heatGlyphs = " .:-=+*#%@"

// Heat renders the per-rank totals of a section as one heat strip:
// each rank one character, scaled to the hottest rank.
func Heat(s *prof.SectionStats) string {
	maxV := 0.0
	for _, v := range s.PerRankTotal {
		if v > maxV {
			maxV = v
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s |", s.Label)
	for _, v := range s.PerRankTotal {
		idx := 0
		if maxV > 0 {
			idx = int(v / maxV * float64(len(heatGlyphs)-1))
		}
		sb.WriteByte(heatGlyphs[idx])
	}
	sb.WriteString("|")
	return sb.String()
}

// Report renders the full analysis of a profile: one verdict line per
// section plus a per-rank heat strip for the most imbalanced ones.
func Report(p *prof.Profile, topHeat int) (string, error) {
	analyses, err := AnalyzeProfile(p)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %8s %12s %8s %11s %9s %s\n",
		"section", "ranks", "mean/rank(s)", "max/µ-1", "persistent", "gini", "outliers")
	for _, a := range analyses {
		out := "-"
		if len(a.Outliers) > 0 {
			parts := make([]string, len(a.Outliers))
			for i, r := range a.Outliers {
				parts[i] = fmt.Sprintf("%d", r)
			}
			out = strings.Join(parts, ",")
		}
		fmt.Fprintf(&sb, "%-24s %8d %12.5g %8.3f %10.0f%% %9.3f %s\n",
			a.Label, a.Ranks, a.MeanTotal, a.Imbalance, 100*a.PersistentShare, a.Gini, out)
	}
	if topHeat > 0 {
		sb.WriteString("\nper-rank heat (cold ' ' → hot '@'), most imbalanced first:\n")
		shown := 0
		for _, a := range analyses {
			if shown >= topHeat {
				break
			}
			for _, s := range p.Sections {
				if s.Label == a.Label && s.Comm >= 0 {
					sb.WriteString(Heat(s))
					sb.WriteString("\n")
					shown++
					break
				}
			}
		}
	}
	return sb.String(), nil
}

// Verdict gives a one-line human interpretation of an analysis.
func (a *Analysis) Verdict() string {
	switch {
	case a.Imbalance < 0.05:
		return fmt.Sprintf("%s: balanced (max/µ−1 = %.1f%%)", a.Label, 100*a.Imbalance)
	case a.PersistentShare > 0.6:
		return fmt.Sprintf("%s: persistent imbalance (%.0f%% of variance rank-bound; rank %d slowest) — repartition the domain",
			a.Label, 100*a.PersistentShare, a.SlowestRank)
	case a.PersistentShare < 0.3:
		return fmt.Sprintf("%s: transient imbalance (%.0f%% persistent) — jitter or dynamic load; consider looser synchronization",
			a.Label, 100*a.PersistentShare)
	default:
		return fmt.Sprintf("%s: mixed imbalance (max/µ−1 = %.1f%%, %.0f%% persistent)",
			a.Label, 100*a.Imbalance, 100*a.PersistentShare)
	}
}
