// Package core implements the paper's analytical contribution: the speedup
// metric, its classic bounds (Amdahl, Gustafson–Barsis, Karp–Flatt), and —
// centrally — *partial speedup bounding* (paper §2, Eq. 3–6):
//
// Model the application as a sum of per-section times T_i = f_i(n, p).
// Under strong scaling (fixed n = n0) every section individually bounds the
// achievable speedup:
//
//	∀i:  S(n0, p) ≤ Σ_j f_j(n0, 1) / f_i(n0, p)
//
// where f_i(n0, p) is the average per-process time in section i at scale p.
// A section whose time stops shrinking with p (its inflexion point) caps
// the whole program's speedup long before Amdahl's p→∞ asymptote — and
// unlike Amdahl's "sequential fraction", the bound is computed directly
// from measurable section timings (the paper's Fig. 6 and Fig. 10).
package core

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadInput flags analytically meaningless arguments (non-positive times
// or scales).
var ErrBadInput = errors.New("core: invalid input")

// Speedup returns seq/par — Eq. 1 of the paper.
func Speedup(seq, par float64) (float64, error) {
	if seq <= 0 || par <= 0 {
		return 0, fmt.Errorf("%w: Speedup(seq=%g, par=%g)", ErrBadInput, seq, par)
	}
	return seq / par, nil
}

// Efficiency returns S/p, the per-processor yield of the speedup.
func Efficiency(seq, par float64, p int) (float64, error) {
	if p <= 0 {
		return 0, fmt.Errorf("%w: Efficiency with p=%d", ErrBadInput, p)
	}
	s, err := Speedup(seq, par)
	if err != nil {
		return 0, err
	}
	return s / float64(p), nil
}

// AmdahlBound returns the Amdahl speedup bound 1/(fs + (1-fs)/p) — Eq. 2 —
// for serial fraction fs ∈ [0, 1] on p processors.
func AmdahlBound(fs float64, p int) (float64, error) {
	if fs < 0 || fs > 1 || p <= 0 {
		return 0, fmt.Errorf("%w: AmdahlBound(fs=%g, p=%d)", ErrBadInput, fs, p)
	}
	den := fs + (1-fs)/float64(p)
	if den == 0 { // fs == 0 and p → the ideal line
		return float64(p), nil
	}
	return 1 / den, nil
}

// AmdahlLimit returns the asymptotic Amdahl bound 1/fs (infinite for fs=0).
func AmdahlLimit(fs float64) (float64, error) {
	if fs < 0 || fs > 1 {
		return 0, fmt.Errorf("%w: AmdahlLimit(fs=%g)", ErrBadInput, fs)
	}
	if fs == 0 {
		return math.Inf(1), nil
	}
	return 1 / fs, nil
}

// GustafsonSpeedup returns the Gustafson–Barsis scaled speedup
// s + p·(1−s) for serial fraction s measured on the parallel system.
func GustafsonSpeedup(s float64, p int) (float64, error) {
	if s < 0 || s > 1 || p <= 0 {
		return 0, fmt.Errorf("%w: GustafsonSpeedup(s=%g, p=%d)", ErrBadInput, s, p)
	}
	return s + float64(p)*(1-s), nil
}

// KarpFlatt returns the experimentally determined serial fraction
// e = (1/S − 1/p) / (1 − 1/p) from a measured speedup S on p > 1
// processors — the paper's third classic metric.
func KarpFlatt(speedup float64, p int) (float64, error) {
	if speedup <= 0 || p <= 1 {
		return 0, fmt.Errorf("%w: KarpFlatt(S=%g, p=%d)", ErrBadInput, speedup, p)
	}
	pf := float64(p)
	return (1/speedup - 1/pf) / (1 - 1/pf), nil
}

// PartialBound is Eq. 6 evaluated from measurements: given the total
// sequential time of the whole program and the average per-process time
// spent in one section at scale p, the section bounds the strong-scaling
// speedup by seqTotal / sectionAvgPerProc.
func PartialBound(seqTotal, sectionAvgPerProc float64) (float64, error) {
	if seqTotal <= 0 || sectionAvgPerProc <= 0 {
		return 0, fmt.Errorf("%w: PartialBound(seq=%g, section=%g)",
			ErrBadInput, seqTotal, sectionAvgPerProc)
	}
	return seqTotal / sectionAvgPerProc, nil
}

// PartialBoundFromTotal is PartialBound expressed with the summed-over-ranks
// section time, the form of the paper's Fig. 6: B = p·Tseq / TotT_i(p).
func PartialBoundFromTotal(seqTotal, sectionTotal float64, p int) (float64, error) {
	if p <= 0 || sectionTotal <= 0 {
		return 0, fmt.Errorf("%w: PartialBoundFromTotal(total=%g, p=%d)",
			ErrBadInput, sectionTotal, p)
	}
	return PartialBound(seqTotal, sectionTotal/float64(p))
}

// InflexionIndex locates the inflexion point of a section-time series
// measured over increasing scales: the index of the global minimum, i.e.
// the last scale at which adding resources still helped. It returns -1 for
// an empty series. Ties resolve to the earliest index (adding resources
// past a plateau is already unproductive).
func InflexionIndex(times []float64) int {
	best := -1
	for i, v := range times {
		if best < 0 || v < times[best] {
			best = i
		}
	}
	return best
}

// HasInflexion reports whether the series rises again after its minimum —
// the paper's criterion for "parallelism budget exhausted" (Fig. 10): some
// later scale is strictly slower than the best one.
func HasInflexion(times []float64) bool {
	idx := InflexionIndex(times)
	if idx < 0 {
		return false
	}
	for _, v := range times[idx+1:] {
		if v > times[idx] {
			return true
		}
	}
	return false
}
