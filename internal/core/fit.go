package core

import (
	"fmt"
	"math"
)

// Model fitting over measured scaling data. The paper (§2) grounds partial
// bounding in the classic speedup-model literature; this file makes two of
// those models executable against measurements:
//
//   - FitAmdahl estimates the serial fraction that best explains a measured
//     speedup curve (least squares over Eq. 2), turning the Karp–Flatt
//     point metric into a whole-curve fit.
//
//   - FitSectionTime fits a section's per-process time to the three-term
//     law T(p) = a + b/p + c·p — serialized time, perfectly parallel time,
//     and linearly growing overhead (communication, fork/join). Its
//     minimizer p* = sqrt(b/c) is a *predicted* inflexion point, usable
//     before the section has actually stopped scaling.

// FitAmdahl returns the serial fraction fs ∈ [0, 1] minimizing the squared
// error between AmdahlBound(fs, p) and the measured speedups. It needs at
// least two points with p > 1.
func FitAmdahl(scales []int, speedups []float64) (float64, error) {
	if len(scales) != len(speedups) {
		return 0, fmt.Errorf("%w: FitAmdahl length mismatch", ErrBadInput)
	}
	n := 0
	for i, p := range scales {
		if p > 1 && speedups[i] > 0 {
			n++
		}
	}
	if n < 2 {
		return 0, fmt.Errorf("%w: FitAmdahl needs >= 2 points with p > 1", ErrBadInput)
	}
	sse := func(fs float64) float64 {
		var e float64
		for i, p := range scales {
			if p <= 1 || speedups[i] <= 0 {
				continue
			}
			s, err := AmdahlBound(fs, p)
			if err != nil {
				return math.Inf(1)
			}
			d := s - speedups[i]
			e += d * d
		}
		return e
	}
	// Golden-section search on [0, 1]: sse is unimodal in fs.
	const phi = 0.6180339887498949
	lo, hi := 0.0, 1.0
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := sse(x1), sse(x2)
	for i := 0; i < 200 && hi-lo > 1e-12; i++ {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = sse(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = sse(x2)
		}
	}
	return (lo + hi) / 2, nil
}

// SectionTimeFit is the fitted T(p) = A + B/p + C·p law.
type SectionTimeFit struct {
	A, B, C float64
	// RMSE is the root-mean-square residual of the fit.
	RMSE float64
}

// Predict evaluates the fitted law at scale p.
func (f *SectionTimeFit) Predict(p int) (float64, error) {
	if p <= 0 {
		return 0, fmt.Errorf("%w: Predict(p=%d)", ErrBadInput, p)
	}
	return f.A + f.B/float64(p) + f.C*float64(p), nil
}

// PredictedInflexion reports the scale minimizing the fitted law:
// p* = sqrt(B/C). ok is false when the law is monotone (C or B
// non-positive), i.e. no interior minimum exists.
func (f *SectionTimeFit) PredictedInflexion() (p float64, ok bool) {
	if f.B <= 0 || f.C <= 0 {
		return 0, false
	}
	return math.Sqrt(f.B / f.C), true
}

// FitSectionTime least-squares fits T(p) = A + B/p + C·p to measured
// per-process section times. It needs at least three distinct scales.
func FitSectionTime(scales []int, times []float64) (*SectionTimeFit, error) {
	if len(scales) != len(times) || len(scales) < 3 {
		return nil, fmt.Errorf("%w: FitSectionTime needs >= 3 matched points", ErrBadInput)
	}
	distinct := map[int]bool{}
	for _, p := range scales {
		if p <= 0 {
			return nil, fmt.Errorf("%w: non-positive scale %d", ErrBadInput, p)
		}
		distinct[p] = true
	}
	if len(distinct) < 3 {
		return nil, fmt.Errorf("%w: FitSectionTime needs >= 3 distinct scales", ErrBadInput)
	}
	// Normal equations for the basis {1, 1/p, p}.
	var m [3][3]float64
	var rhs [3]float64
	for i, pi := range scales {
		x := [3]float64{1, 1 / float64(pi), float64(pi)}
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				m[r][c] += x[r] * x[c]
			}
			rhs[r] += x[r] * times[i]
		}
	}
	sol, err := solve3(m, rhs)
	if err != nil {
		return nil, err
	}
	fit := &SectionTimeFit{A: sol[0], B: sol[1], C: sol[2]}
	var sse float64
	for i, pi := range scales {
		pred, _ := fit.Predict(pi)
		d := pred - times[i]
		sse += d * d
	}
	fit.RMSE = math.Sqrt(sse / float64(len(scales)))
	return fit, nil
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(m [3][3]float64, b [3]float64) ([3]float64, error) {
	var x [3]float64
	// Augment.
	var a [3][4]float64
	for r := 0; r < 3; r++ {
		copy(a[r][:3], m[r][:])
		a[r][3] = b[r]
	}
	for col := 0; col < 3; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-14 {
			return x, fmt.Errorf("%w: singular system (degenerate scales)", ErrBadInput)
		}
		a[col], a[piv] = a[piv], a[col]
		for r := col + 1; r < 3; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	for r := 2; r >= 0; r-- {
		v := a[r][3]
		for c := r + 1; c < 3; c++ {
			v -= a[r][c] * x[c]
		}
		x[r] = v / a[r][r]
	}
	return x, nil
}

// PredictStudyInflexion fits the three-term law to a section of a study and
// reports the predicted inflexion scale, the fit, and whether the law has
// an interior minimum at all.
func (s *Study) PredictStudyInflexion(label string) (*SectionTimeFit, float64, bool, error) {
	scales, avg := s.SectionSeries(label)
	fit, err := FitSectionTime(scales, avg)
	if err != nil {
		return nil, 0, false, err
	}
	p, ok := fit.PredictedInflexion()
	return fit, p, ok, nil
}
