package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// demoStudy builds a study resembling the convolution benchmark: CONVOLVE
// scales perfectly, HALO grows with p.
func demoStudy(t *testing.T) *Study {
	t.Helper()
	s, err := NewStudy(1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 8, 16, 32, 64} {
		conv := 1000.0 / float64(p)  // per-process compute
		halo := 0.5 * float64(p) / 8 // per-process comm, growing
		wall := conv + halo
		totals := map[string]float64{
			"CONVOLVE": conv * float64(p),
			"HALO":     halo * float64(p),
		}
		if err := s.AddPoint(p, wall, totals); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestNewStudyValidation(t *testing.T) {
	if _, err := NewStudy(0); err == nil {
		t.Error("zero seq accepted")
	}
	s, _ := NewStudy(10)
	if err := s.AddPoint(0, 1, nil); err == nil {
		t.Error("scale 0 accepted")
	}
	if err := s.AddPoint(2, 0, nil); err == nil {
		t.Error("wall 0 accepted")
	}
}

func TestAddPointSortsAndCopies(t *testing.T) {
	s, _ := NewStudy(10)
	m := map[string]float64{"x": 1}
	if err := s.AddPoint(8, 2, m); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPoint(2, 6, m); err != nil {
		t.Fatal(err)
	}
	m["x"] = 999 // must not leak into the study
	if s.Points[0].Scale != 2 || s.Points[1].Scale != 8 {
		t.Errorf("points unsorted: %+v", s.Points)
	}
	if s.Points[0].SectionTotal["x"] != 1 {
		t.Error("AddPoint aliased the caller's map")
	}
}

func TestSpeedupAt(t *testing.T) {
	s := demoStudy(t)
	got, err := s.SpeedupAt(8)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000.0 / (125 + 0.5)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("SpeedupAt(8) = %g, want %g", got, want)
	}
	if _, err := s.SpeedupAt(999); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestSpeedupsAscending(t *testing.T) {
	s := demoStudy(t)
	scales, sps := s.Speedups()
	if len(scales) != 6 || len(sps) != 6 {
		t.Fatalf("lengths: %d/%d", len(scales), len(sps))
	}
	for i := 1; i < len(scales); i++ {
		if scales[i] <= scales[i-1] {
			t.Error("scales not ascending")
		}
	}
}

func TestBoundsAtAndMinBound(t *testing.T) {
	s := demoStudy(t)
	bounds, err := s.BoundsAt(64)
	if err != nil {
		t.Fatal(err)
	}
	// HALO per-process at 64 = 4s → bound 250; CONVOLVE = 15.625 → 64.
	if math.Abs(bounds["HALO"]-250) > 1e-9 {
		t.Errorf("HALO bound = %g, want 250", bounds["HALO"])
	}
	if math.Abs(bounds["CONVOLVE"]-64) > 1e-9 {
		t.Errorf("CONVOLVE bound = %g, want 64", bounds["CONVOLVE"])
	}
	label, bound, err := s.MinBoundAt(64)
	if err != nil || label != "CONVOLVE" || math.Abs(bound-64) > 1e-9 {
		t.Errorf("MinBoundAt = %q %g %v", label, bound, err)
	}
	if _, err := s.BoundsAt(3); err == nil {
		t.Error("unknown scale accepted")
	}
	if _, _, err := s.MinBoundAt(3); err == nil {
		t.Error("unknown scale accepted by MinBoundAt")
	}
}

func TestBoundTableFig6Shape(t *testing.T) {
	s := demoStudy(t)
	rows := s.BoundTable("HALO")
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// HALO grows with p, so its bound must decrease.
	for i := 1; i < len(rows); i++ {
		if rows[i].Bound >= rows[i-1].Bound {
			t.Errorf("HALO bound not decreasing: %+v", rows)
		}
	}
	// Cross-check one row by hand: p=16, total = 16 * 0.5*16/8 = 16.
	var r16 *BoundRow
	for i := range rows {
		if rows[i].Scale == 16 {
			r16 = &rows[i]
		}
	}
	if r16 == nil || math.Abs(r16.Total-16) > 1e-9 || math.Abs(r16.Bound-1000) > 1e-9 {
		t.Errorf("row16 = %+v", r16)
	}
	if got := s.BoundTable("NOPE"); got != nil {
		t.Errorf("unknown label rows = %v", got)
	}
}

func TestSectionSeriesAndInflexion(t *testing.T) {
	s, _ := NewStudy(100)
	// A section whose per-process time is U-shaped in scale.
	perProc := map[int]float64{1: 50, 2: 25, 4: 13, 8: 9, 16: 11, 32: 20}
	for p, v := range perProc {
		_ = s.AddPoint(p, v+1, map[string]float64{"phase": v * float64(p)})
	}
	scales, avg := s.SectionSeries("phase")
	if len(scales) != 6 {
		t.Fatalf("series length %d", len(scales))
	}
	scale, rises, ok := s.InflexionScale("phase")
	if !ok || scale != 8 || !rises {
		t.Errorf("inflexion = %d rises=%v ok=%v, want 8 true true", scale, rises, ok)
	}
	_ = avg
	iscale, bound, err := s.BoundAtInflexion("phase")
	if err != nil || iscale != 8 {
		t.Fatalf("BoundAtInflexion: %d %v", iscale, err)
	}
	if math.Abs(bound-100.0/9.0) > 1e-9 {
		t.Errorf("bound at inflexion = %g, want %g", bound, 100.0/9.0)
	}
	if _, _, ok := s.InflexionScale("ghost"); ok {
		t.Error("unknown section has an inflexion scale")
	}
	if _, _, err := s.BoundAtInflexion("ghost"); err == nil {
		t.Error("unknown section accepted by BoundAtInflexion")
	}
}

func TestLabels(t *testing.T) {
	s := demoStudy(t)
	got := s.Labels()
	if len(got) != 2 || got[0] != "CONVOLVE" || got[1] != "HALO" {
		t.Errorf("labels = %v", got)
	}
}

func TestValidatePassesOnConsistentData(t *testing.T) {
	if err := demoStudy(t).Validate(); err != nil {
		t.Errorf("consistent study failed validation: %v", err)
	}
}

func TestValidateCatchesSectionBeyondWall(t *testing.T) {
	s, _ := NewStudy(100)
	_ = s.AddPoint(4, 10, map[string]float64{"huge": 40 * 4}) // 40s/proc > 10s wall
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "exceeds wall") {
		t.Errorf("validation missed overlong section: %v", err)
	}
}

func TestValidateCatchesBoundViolation(t *testing.T) {
	s, _ := NewStudy(1000)
	// Speedup 1000/1 = 1000 but section avg 5s/proc (within 1s wall? no —
	// craft: wall=1, section avg= 0.9 -> bound 1111 fine. To violate, make
	// section avg small... bound = seq/avg; violation requires avg > wall·(seq/ wall·S)…
	// Simply: section avg within wall but bound < speedup is impossible;
	// so violation only via inconsistent inputs where avg > wall is caught
	// by the first check. Build a direct inconsistency instead: wall too
	// small for the claimed seq but section fits.
	_ = s.AddPoint(2, 1, map[string]float64{"s": 2}) // avg 1 == wall → bound 1000 == speedup: passes
	if err := s.Validate(); err != nil {
		t.Errorf("boundary case must pass: %v", err)
	}
}

// TestStudyBoundsDominateSpeedupProperty: for randomly generated consistent
// studies, Validate always holds — bounds dominate measured speedup by
// construction (Eq. 6).
func TestStudyBoundsDominateSpeedupProperty(t *testing.T) {
	f := func(seqRaw uint16, walls []uint16, parts []uint8) bool {
		seq := float64(seqRaw)/10 + 1
		s, err := NewStudy(seq)
		if err != nil {
			return false
		}
		if len(parts) == 0 {
			parts = []uint8{1}
		}
		scale := 1
		for _, wRaw := range walls {
			scale *= 2
			wall := float64(wRaw)/100 + 0.01
			var sum float64
			for _, p := range parts {
				sum += float64(p) + 1
			}
			totals := map[string]float64{}
			for i, p := range parts {
				frac := (float64(p) + 1) / sum
				totals[string(rune('a'+i%26))] += frac * wall * float64(scale)
			}
			if err := s.AddPoint(scale, wall, totals); err != nil {
				return false
			}
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStudyString(t *testing.T) {
	s := demoStudy(t)
	str := s.String()
	if !strings.Contains(str, "seq: 1000") || !strings.Contains(str, "64") {
		t.Errorf("String = %q", str)
	}
}

func TestControllerFindsMinimum(t *testing.T) {
	// Section time vs threads: minimum at 8.
	cost := func(th int) float64 {
		return 100.0/float64(th) + 2*float64(th)
	}
	c, err := NewController(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20 && !c.Settled(); i++ {
		th := c.Recommend()
		if err := c.Observe(th, cost(th)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Settled() {
		t.Fatal("controller never settled")
	}
	// True minimum of 100/t + 2t over powers of two is t=8 (28.5).
	if c.Best() != 8 {
		t.Errorf("Best = %d, want 8", c.Best())
	}
	if c.Recommend() != c.Best() {
		t.Error("settled recommendation differs from best")
	}
}

func TestControllerMonotoneWorkload(t *testing.T) {
	// Perfect scaling: no inflexion; controller must settle at max.
	c, _ := NewController(16)
	for i := 0; i < 20 && !c.Settled(); i++ {
		th := c.Recommend()
		_ = c.Observe(th, 100.0/float64(th))
	}
	if c.Best() != 16 {
		t.Errorf("Best = %d, want 16", c.Best())
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(0); err == nil {
		t.Error("max=0 accepted")
	}
	c, _ := NewController(4)
	if err := c.Observe(0, 1); err == nil {
		t.Error("team=0 accepted")
	}
	if err := c.Observe(1, 0); err == nil {
		t.Error("duration=0 accepted")
	}
}

func TestRecommendCap(t *testing.T) {
	got, err := RecommendCap([]int{1, 2, 4, 8}, []float64{10, 6, 5, 7})
	if err != nil || got != 4 {
		t.Errorf("RecommendCap = %d, %v", got, err)
	}
	if _, err := RecommendCap([]int{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched slices accepted")
	}
	if _, err := RecommendCap(nil, nil); err == nil {
		t.Error("empty slices accepted")
	}
}
