package core

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one measured scale of a strong-scaling study: the wall time and
// the per-section timings at Scale processing units (MPI ranks in §5.1,
// OpenMP threads in §5.2 — the algebra is identical, which is the paper's
// point about MPI+X).
type Point struct {
	// Scale is the number of processing units p.
	Scale int
	// Wall is the measured wall time at this scale.
	Wall float64
	// SectionTotal maps section label to the summed-over-ranks inclusive
	// time at this scale.
	SectionTotal map[string]float64
}

// avgPerProc reports a section's average per-process time at this point.
func (pt *Point) avgPerProc(label string) (float64, bool) {
	tot, ok := pt.SectionTotal[label]
	if !ok || pt.Scale <= 0 {
		return 0, false
	}
	return tot / float64(pt.Scale), true
}

// Study is a strong-scaling dataset: a sequential baseline plus measured
// points over increasing scales. It is the input to every partial-bounding
// analysis (Figs. 5(d), 6 and 10 of the paper).
type Study struct {
	// SeqTime is the total sequential time Σ_j f_j(n0, 1).
	SeqTime float64
	// Points, kept sorted by Scale.
	Points []Point
}

// NewStudy creates a study from the sequential wall time.
func NewStudy(seqTime float64) (*Study, error) {
	if seqTime <= 0 {
		return nil, fmt.Errorf("%w: NewStudy(seq=%g)", ErrBadInput, seqTime)
	}
	return &Study{SeqTime: seqTime}, nil
}

// AddPoint records one measured scale. Points may arrive in any order.
func (s *Study) AddPoint(scale int, wall float64, sectionTotal map[string]float64) error {
	if scale <= 0 || wall <= 0 {
		return fmt.Errorf("%w: AddPoint(scale=%d, wall=%g)", ErrBadInput, scale, wall)
	}
	cp := make(map[string]float64, len(sectionTotal))
	for k, v := range sectionTotal {
		cp[k] = v
	}
	s.Points = append(s.Points, Point{Scale: scale, Wall: wall, SectionTotal: cp})
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].Scale < s.Points[j].Scale })
	return nil
}

// PointAt returns the point measured at the given scale, or nil.
func (s *Study) PointAt(scale int) *Point {
	for i := range s.Points {
		if s.Points[i].Scale == scale {
			return &s.Points[i]
		}
	}
	return nil
}

// SpeedupAt reports the measured speedup at the given scale.
func (s *Study) SpeedupAt(scale int) (float64, error) {
	pt := s.PointAt(scale)
	if pt == nil {
		return 0, fmt.Errorf("%w: no point at scale %d", ErrBadInput, scale)
	}
	return Speedup(s.SeqTime, pt.Wall)
}

// Speedups returns the scales and measured speedups, ascending in scale.
func (s *Study) Speedups() (scales []int, speedups []float64) {
	for _, pt := range s.Points {
		sp, err := Speedup(s.SeqTime, pt.Wall)
		if err != nil {
			continue
		}
		scales = append(scales, pt.Scale)
		speedups = append(speedups, sp)
	}
	return scales, speedups
}

// BoundsAt evaluates Eq. 6 for every section measured at the given scale:
// label → partial speedup bound.
func (s *Study) BoundsAt(scale int) (map[string]float64, error) {
	pt := s.PointAt(scale)
	if pt == nil {
		return nil, fmt.Errorf("%w: no point at scale %d", ErrBadInput, scale)
	}
	out := make(map[string]float64, len(pt.SectionTotal))
	for label := range pt.SectionTotal {
		avg, ok := pt.avgPerProc(label)
		if !ok || avg <= 0 {
			continue
		}
		b, err := PartialBound(s.SeqTime, avg)
		if err != nil {
			return nil, err
		}
		out[label] = b
	}
	return out, nil
}

// MinBoundAt reports the tightest (smallest) partial bound at the given
// scale and the section imposing it — the program's current scalability
// bottleneck.
func (s *Study) MinBoundAt(scale int) (label string, bound float64, err error) {
	bounds, err := s.BoundsAt(scale)
	if err != nil {
		return "", 0, err
	}
	if len(bounds) == 0 {
		return "", 0, fmt.Errorf("%w: no sections at scale %d", ErrBadInput, scale)
	}
	bound = -1
	for l, b := range bounds {
		if bound < 0 || b < bound || (b == bound && l < label) {
			label, bound = l, b
		}
	}
	return label, bound, nil
}

// BoundRow is one line of the paper's Fig. 6 table.
type BoundRow struct {
	Scale int
	// Total is the summed-over-ranks section time at this scale.
	Total float64
	// Bound is the partial speedup bound B = p·Tseq / Total.
	Bound float64
}

// BoundTable evaluates one section's partial bound across every measured
// scale — the paper's Fig. 6 for the HALO section.
func (s *Study) BoundTable(label string) []BoundRow {
	var out []BoundRow
	for _, pt := range s.Points {
		tot, ok := pt.SectionTotal[label]
		if !ok || tot <= 0 {
			continue
		}
		b, err := PartialBoundFromTotal(s.SeqTime, tot, pt.Scale)
		if err != nil {
			continue
		}
		out = append(out, BoundRow{Scale: pt.Scale, Total: tot, Bound: b})
	}
	return out
}

// SectionSeries returns a section's average per-process time across scales
// — the curve whose minimum is the inflexion point.
func (s *Study) SectionSeries(label string) (scales []int, avg []float64) {
	for _, pt := range s.Points {
		if v, ok := pt.avgPerProc(label); ok {
			scales = append(scales, pt.Scale)
			avg = append(avg, v)
		}
	}
	return scales, avg
}

// InflexionScale reports the scale at which the section's per-process time
// is minimal and whether the series rises afterwards (a true inflexion in
// the paper's sense). ok is false when the section was never measured.
func (s *Study) InflexionScale(label string) (scale int, rises, ok bool) {
	scales, avg := s.SectionSeries(label)
	idx := InflexionIndex(avg)
	if idx < 0 {
		return 0, false, false
	}
	return scales[idx], HasInflexion(avg), true
}

// BoundAtInflexion evaluates the partial bound of a section at its
// inflexion point — the paper's §5.2 headline computation
// (S ≤ Ts / ΣT_i at 24 KNL threads).
func (s *Study) BoundAtInflexion(label string) (scale int, bound float64, err error) {
	scale, _, ok := s.InflexionScale(label)
	if !ok {
		return 0, 0, fmt.Errorf("%w: section %q not measured", ErrBadInput, label)
	}
	pt := s.PointAt(scale)
	avg, _ := pt.avgPerProc(label)
	bound, err = PartialBound(s.SeqTime, avg)
	return scale, bound, err
}

// Labels lists every section appearing in any point, sorted.
func (s *Study) Labels() []string {
	set := map[string]bool{}
	for _, pt := range s.Points {
		for l := range pt.SectionTotal {
			set[l] = true
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Validate checks the structural soundness of the study against Eq. 6: at
// every scale, the measured speedup must not exceed any section's partial
// bound, provided the section's per-process time fits inside the wall time.
// It returns a descriptive error on the first violation — which, on
// measured data, indicates inconsistent inputs rather than broken math.
func (s *Study) Validate() error {
	for _, pt := range s.Points {
		sp, err := Speedup(s.SeqTime, pt.Wall)
		if err != nil {
			return err
		}
		for label := range pt.SectionTotal {
			avg, ok := pt.avgPerProc(label)
			if !ok || avg <= 0 {
				continue
			}
			if avg > pt.Wall*(1+1e-9) {
				return fmt.Errorf("core: section %q at scale %d exceeds wall time (%g > %g)",
					label, pt.Scale, avg, pt.Wall)
			}
			b, err := PartialBound(s.SeqTime, avg)
			if err != nil {
				return err
			}
			if sp > b*(1+1e-9) {
				return fmt.Errorf("core: speedup %g exceeds bound %g of section %q at scale %d",
					sp, b, label, pt.Scale)
			}
		}
	}
	return nil
}

// String summarizes the study.
func (s *Study) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "core.Study{seq: %.6gs, points:", s.SeqTime)
	for _, pt := range s.Points {
		fmt.Fprintf(&sb, " %d", pt.Scale)
	}
	sb.WriteString("}")
	return sb.String()
}
