package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedup(t *testing.T) {
	got, err := Speedup(10, 2)
	if err != nil || got != 5 {
		t.Errorf("Speedup = %g, %v", got, err)
	}
	for _, bad := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		if _, err := Speedup(bad[0], bad[1]); err == nil {
			t.Errorf("Speedup(%v) accepted", bad)
		}
	}
}

func TestEfficiency(t *testing.T) {
	got, err := Efficiency(10, 2, 10)
	if err != nil || got != 0.5 {
		t.Errorf("Efficiency = %g, %v", got, err)
	}
	if _, err := Efficiency(10, 2, 0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestAmdahlBound(t *testing.T) {
	// fs=0.1, p→∞ gives 10; at p=10 gives 1/(0.1+0.09) ≈ 5.263.
	got, err := AmdahlBound(0.1, 10)
	if err != nil || math.Abs(got-1/0.19) > 1e-12 {
		t.Errorf("AmdahlBound = %g, %v", got, err)
	}
	got, _ = AmdahlBound(0, 16)
	if got != 16 {
		t.Errorf("fs=0 bound = %g, want ideal 16", got)
	}
	got, _ = AmdahlBound(1, 1000)
	if got != 1 {
		t.Errorf("fs=1 bound = %g, want 1", got)
	}
	if _, err := AmdahlBound(-0.1, 2); err == nil {
		t.Error("negative fs accepted")
	}
	if _, err := AmdahlBound(1.1, 2); err == nil {
		t.Error("fs > 1 accepted")
	}
	if _, err := AmdahlBound(0.5, 0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestAmdahlLimit(t *testing.T) {
	got, err := AmdahlLimit(0.25)
	if err != nil || got != 4 {
		t.Errorf("AmdahlLimit = %g, %v", got, err)
	}
	got, _ = AmdahlLimit(0)
	if !math.IsInf(got, 1) {
		t.Errorf("fs=0 limit = %g, want +Inf", got)
	}
	if _, err := AmdahlLimit(2); err == nil {
		t.Error("fs out of range accepted")
	}
}

func TestAmdahlBoundMonotoneInP(t *testing.T) {
	f := func(fsRaw uint8, p1Raw, p2Raw uint8) bool {
		fs := float64(fsRaw) / 255
		p1 := int(p1Raw)%100 + 1
		p2 := p1 + int(p2Raw)%100 + 1
		b1, err1 := AmdahlBound(fs, p1)
		b2, err2 := AmdahlBound(fs, p2)
		if err1 != nil || err2 != nil {
			return false
		}
		limit, _ := AmdahlLimit(fs)
		return b2 >= b1-1e-12 && b1 <= limit+1e-9 && b2 <= limit+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGustafson(t *testing.T) {
	got, err := GustafsonSpeedup(0.05, 64)
	want := 0.05 + 64*0.95
	if err != nil || math.Abs(got-want) > 1e-12 {
		t.Errorf("Gustafson = %g, want %g", got, want)
	}
	got, _ = GustafsonSpeedup(0, 64)
	if got != 64 {
		t.Errorf("fully parallel scaled speedup = %g", got)
	}
	if _, err := GustafsonSpeedup(-0.1, 4); err == nil {
		t.Error("negative s accepted")
	}
}

func TestKarpFlatt(t *testing.T) {
	// From S = AmdahlBound(fs, p), Karp–Flatt must recover fs exactly.
	for _, fs := range []float64{0.01, 0.1, 0.3} {
		for _, p := range []int{2, 8, 64} {
			s, _ := AmdahlBound(fs, p)
			e, err := KarpFlatt(s, p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(e-fs) > 1e-9 {
				t.Errorf("KarpFlatt(Amdahl(%g, %d)) = %g", fs, p, e)
			}
		}
	}
	if _, err := KarpFlatt(4, 1); err == nil {
		t.Error("p=1 accepted")
	}
	if _, err := KarpFlatt(0, 4); err == nil {
		t.Error("S=0 accepted")
	}
}

func TestPartialBound(t *testing.T) {
	// The paper's Fig. 6 first row: B(64) = 5589.84 / (3025.44/64) = 118.25.
	b, err := PartialBoundFromTotal(5589.84, 3025.44, 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-118.25) > 0.01 {
		t.Errorf("Fig. 6 bound = %g, want 118.25", b)
	}
	// And §5.2's KNL computation: S ≤ 882.48/(43.84+64.29) = 8.16.
	b, err = PartialBound(882.48, 43.84+64.29)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-8.16) > 0.005 {
		t.Errorf("KNL Lagrange bound = %g, want ≈8.16", b)
	}
	// LagrangeElements alone: 882.48/64.29 = 13.72.
	b, _ = PartialBound(882.48, 64.29)
	if math.Abs(b-13.72) > 0.01 {
		t.Errorf("LagrangeElements bound = %g, want ≈13.72", b)
	}
	if _, err := PartialBound(0, 1); err == nil {
		t.Error("zero seq accepted")
	}
	if _, err := PartialBound(1, 0); err == nil {
		t.Error("zero section accepted")
	}
	if _, err := PartialBoundFromTotal(1, 1, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := PartialBoundFromTotal(1, -1, 2); err == nil {
		t.Error("negative total accepted")
	}
}

func TestInflexionIndex(t *testing.T) {
	cases := []struct {
		xs   []float64
		want int
	}{
		{nil, -1},
		{[]float64{5}, 0},
		{[]float64{5, 3, 2, 4, 8}, 2},
		{[]float64{5, 4, 3, 2, 1}, 4}, // still improving: min at end
		{[]float64{2, 2, 2}, 0},       // plateau: earliest wins
		{[]float64{1, 5, 0.5, 7}, 2},
	}
	for _, c := range cases {
		if got := InflexionIndex(c.xs); got != c.want {
			t.Errorf("InflexionIndex(%v) = %d, want %d", c.xs, got, c.want)
		}
	}
}

func TestHasInflexion(t *testing.T) {
	if HasInflexion(nil) {
		t.Error("empty series has inflexion")
	}
	if HasInflexion([]float64{4, 3, 2, 1}) {
		t.Error("monotone decreasing series has inflexion")
	}
	if !HasInflexion([]float64{4, 2, 3}) {
		t.Error("rising tail not detected")
	}
	if HasInflexion([]float64{4, 2, 2}) {
		t.Error("flat tail is not an inflexion")
	}
}

func TestPartialBoundDominatesSpeedupProperty(t *testing.T) {
	// For any decomposition of the parallel wall time into sections, every
	// section's bound is ≥ the measured speedup.
	f := func(seqRaw, wallRaw uint16, parts []uint8) bool {
		seq := float64(seqRaw)/100 + 1
		wall := float64(wallRaw)/1000 + 0.05
		if len(parts) == 0 {
			return true
		}
		s, _ := Speedup(seq, wall)
		// Normalize parts to sum to the wall time (per-process averages).
		var sum float64
		for _, p := range parts {
			sum += float64(p) + 1
		}
		for _, p := range parts {
			section := (float64(p) + 1) / sum * wall
			b, err := PartialBound(seq, section)
			if err != nil {
				return false
			}
			if s > b*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
