package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitAmdahlRecoversExactFraction(t *testing.T) {
	for _, fs := range []float64{0.01, 0.05, 0.2, 0.5} {
		scales := []int{2, 4, 8, 16, 32, 64}
		speedups := make([]float64, len(scales))
		for i, p := range scales {
			speedups[i], _ = AmdahlBound(fs, p)
		}
		got, err := FitAmdahl(scales, speedups)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-fs) > 1e-6 {
			t.Errorf("FitAmdahl = %g, want %g", got, fs)
		}
	}
}

func TestFitAmdahlNoisyData(t *testing.T) {
	fs := 0.1
	scales := []int{2, 4, 8, 16, 32}
	speedups := make([]float64, len(scales))
	noise := []float64{1.02, 0.97, 1.03, 0.99, 1.01}
	for i, p := range scales {
		s, _ := AmdahlBound(fs, p)
		speedups[i] = s * noise[i]
	}
	got, err := FitAmdahl(scales, speedups)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-fs) > 0.03 {
		t.Errorf("noisy fit = %g, want ≈%g", got, fs)
	}
}

func TestFitAmdahlValidation(t *testing.T) {
	if _, err := FitAmdahl([]int{2}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitAmdahl([]int{1, 1}, []float64{1, 1}); err == nil {
		t.Error("p=1-only data accepted")
	}
	if _, err := FitAmdahl([]int{2, 4}, []float64{-1, 0}); err == nil {
		t.Error("non-positive speedups accepted")
	}
}

func TestFitSectionTimeRecoversLaw(t *testing.T) {
	a, b, c := 0.5, 100.0, 0.25
	scales := []int{1, 2, 4, 8, 16, 32, 64}
	times := make([]float64, len(scales))
	for i, p := range scales {
		times[i] = a + b/float64(p) + c*float64(p)
	}
	fit, err := FitSectionTime(scales, times)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-a) > 1e-8 || math.Abs(fit.B-b) > 1e-8 || math.Abs(fit.C-c) > 1e-8 {
		t.Errorf("fit = %+v, want (%g, %g, %g)", fit, a, b, c)
	}
	if fit.RMSE > 1e-8 {
		t.Errorf("exact data RMSE = %g", fit.RMSE)
	}
	p, ok := fit.PredictedInflexion()
	if !ok || math.Abs(p-math.Sqrt(b/c)) > 1e-8 {
		t.Errorf("predicted inflexion = %g, %v; want %g", p, ok, math.Sqrt(b/c))
	}
	// Prediction at an unmeasured scale.
	pred, err := fit.Predict(128)
	if err != nil {
		t.Fatal(err)
	}
	want := a + b/128 + c*128
	if math.Abs(pred-want) > 1e-8 {
		t.Errorf("Predict(128) = %g, want %g", pred, want)
	}
	if _, err := fit.Predict(0); err == nil {
		t.Error("Predict(0) accepted")
	}
}

func TestFitSectionTimeMonotoneHasNoInflexion(t *testing.T) {
	// Perfectly scaling section: C = 0 → no interior minimum.
	scales := []int{1, 2, 4, 8}
	times := []float64{16, 8, 4, 2}
	fit, err := FitSectionTime(scales, times)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fit.PredictedInflexion(); ok {
		t.Errorf("monotone law produced an inflexion: %+v", fit)
	}
}

func TestFitSectionTimeValidation(t *testing.T) {
	if _, err := FitSectionTime([]int{1, 2}, []float64{1, 2}); err == nil {
		t.Error("two points accepted")
	}
	if _, err := FitSectionTime([]int{1, 1, 1}, []float64{1, 1, 1}); err == nil {
		t.Error("degenerate scales accepted")
	}
	if _, err := FitSectionTime([]int{0, 1, 2}, []float64{1, 1, 1}); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := FitSectionTime([]int{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestFitSectionTimePredictsInflexionFromEarlyPoints(t *testing.T) {
	// Fit only scales up to 8, where the curve is still falling; the
	// predicted inflexion must land near the true minimum at 20.
	b, c := 100.0, 0.25 // p* = sqrt(400) = 20
	scales := []int{1, 2, 4, 8}
	times := make([]float64, len(scales))
	for i, p := range scales {
		times[i] = 1 + b/float64(p) + c*float64(p)
	}
	fit, err := FitSectionTime(scales, times)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := fit.PredictedInflexion()
	if !ok || math.Abs(p-20) > 0.5 {
		t.Errorf("early prediction = %g, want ≈20", p)
	}
}

func TestPredictStudyInflexion(t *testing.T) {
	s, _ := NewStudy(1000)
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		perProc := 2 + 64/float64(p) + 0.5*float64(p)
		_ = s.AddPoint(p, perProc, map[string]float64{"phase": perProc * float64(p)})
	}
	fit, pStar, ok, err := s.PredictStudyInflexion("phase")
	if err != nil || !ok {
		t.Fatalf("prediction failed: %v ok=%v", err, ok)
	}
	if math.Abs(pStar-math.Sqrt(128)) > 0.2 {
		t.Errorf("p* = %g, want ≈%g", pStar, math.Sqrt(128))
	}
	if fit.RMSE > 1e-6 {
		t.Errorf("RMSE = %g", fit.RMSE)
	}
	if _, _, _, err := s.PredictStudyInflexion("ghost"); err == nil {
		t.Error("unknown section accepted")
	}
}

func TestSolve3Property(t *testing.T) {
	// For random well-conditioned systems, solve3(M, M·x) recovers x.
	f := func(seeds [12]uint8) bool {
		var m [3][3]float64
		var x [3]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] = float64(seeds[i*3+j]) / 32
			}
			m[i][i] += 10 // diagonal dominance for conditioning
			x[i] = float64(seeds[9+i])/16 - 8
		}
		var b [3]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				b[i] += m[i][j] * x[j]
			}
		}
		got, err := solve3(m, b)
		if err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			if math.Abs(got[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSolve3Singular(t *testing.T) {
	m := [3][3]float64{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}}
	if _, err := solve3(m, [3]float64{1, 2, 3}); err == nil {
		t.Error("singular system accepted")
	}
}
