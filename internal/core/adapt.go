package core

import "fmt"

// This file implements the paper's future-work proposal (§8): "dynamically
// restraining parallelism for non-scalable sections". A Controller watches
// one section's duration as the application varies its thread count and
// recommends the team size to use next, converging on the scale right
// before the section's inflexion point.

// Controller is a deterministic online hill-climber over team sizes for one
// section. Protocol per timestep: call Recommend to get the team size, run
// the section at that size, then report the measured duration with Observe.
type Controller struct {
	max       int
	current   int
	best      int
	bestTime  float64
	direction int // +1 growing, -1 shrinking, 0 settled
	measured  map[int]float64
}

// NewController returns a controller exploring team sizes in [1, max],
// starting at 1 and growing.
func NewController(max int) (*Controller, error) {
	if max < 1 {
		return nil, fmt.Errorf("%w: NewController(max=%d)", ErrBadInput, max)
	}
	return &Controller{
		max:       max,
		current:   1,
		best:      1,
		bestTime:  -1,
		direction: +1,
		measured:  map[int]float64{},
	}, nil
}

// Recommend reports the team size to use for the next execution.
func (c *Controller) Recommend() int { return c.current }

// Settled reports whether the controller has stopped exploring.
func (c *Controller) Settled() bool { return c.direction == 0 }

// Best reports the best team size observed so far.
func (c *Controller) Best() int { return c.best }

// Observe feeds the measured duration of a section executed with the given
// team size and updates the recommendation. Durations must be positive.
func (c *Controller) Observe(team int, duration float64) error {
	if team < 1 || duration <= 0 {
		return fmt.Errorf("%w: Observe(team=%d, duration=%g)", ErrBadInput, team, duration)
	}
	c.measured[team] = duration
	if c.bestTime < 0 || duration < c.bestTime {
		c.best, c.bestTime = team, duration
	}
	if c.direction == 0 {
		return nil
	}
	// Hill-climb by doubling/halving; when the trend reverses, settle on
	// the best size seen. Past the inflexion point more threads only add
	// overhead, so a single reversal is conclusive under a monotone-ish
	// overhead model.
	if team == c.best {
		next := c.current * 2
		if c.direction < 0 {
			next = c.current / 2
		}
		if next < 1 || next > c.max || c.measured[next] != 0 {
			c.direction = 0
			c.current = c.best
			return nil
		}
		c.current = next
		return nil
	}
	// The latest measurement was worse than the best: reverse once, then
	// settle.
	if c.direction > 0 {
		c.direction = 0
		c.current = c.best
		return nil
	}
	c.direction = 0
	c.current = c.best
	return nil
}

// RecommendCap is the offline form: given a section's measured per-process
// times across team sizes (parallel slices), it returns the team size to
// cap the section at — the scale of its minimum duration.
func RecommendCap(teams []int, times []float64) (int, error) {
	if len(teams) != len(times) || len(teams) == 0 {
		return 0, fmt.Errorf("%w: RecommendCap needs matching non-empty slices", ErrBadInput)
	}
	idx := InflexionIndex(times)
	return teams[idx], nil
}
