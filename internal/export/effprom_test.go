package export

import (
	"strings"
	"testing"

	"repro/internal/pop"
)

// effTree builds a small two-section tree with known factors.
func effTree() *pop.Tree {
	halo := pop.Factors{Parallel: 0.41, LoadBalance: 0.95, Comm: 0.43, Transfer: 0.45,
		Serialisation: 0.96, Thread: 1, OmpRegion: 1, SerialRegion: 1, Total: 0.41}
	conv := pop.Factors{Parallel: 0.9, LoadBalance: 0.9, Comm: 1, Transfer: 1,
		Serialisation: 1, Thread: 0.65, OmpRegion: 0.8, SerialRegion: 0.8125, Total: 0.585}
	t := &pop.Tree{
		Ranks: 4, Threads: 2, Wall: 3.5,
		Sections: []pop.SectionEfficiency{
			{Section: `HALO"x`, P: 4, Factors: &halo, Dominant: "transfer"},
			{Section: "CONVOLVE", P: 4, Factors: &conv, Dominant: "omp-region"},
		},
	}
	t.Binding = &t.Sections[0]
	return t
}

func TestWriteEfficiencyPrometheus(t *testing.T) {
	var b strings.Builder
	if err := WriteEfficiencyPrometheus(&b, effTree()); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, needle := range []string{
		"# TYPE section_efficiency_degraded gauge",
		"section_efficiency_degraded 0",
		"# TYPE section_efficiency_parallel gauge",
		`section_efficiency_parallel{section="HALO\"x"} 0.41`, // label escaping
		`section_efficiency_parallel{section="CONVOLVE"} 0.9`,
		`section_efficiency_load_balance{section="CONVOLVE"} 0.9`,
		`section_efficiency_transfer{section="HALO\"x"} 0.45`,
		`section_efficiency_serialisation{section="HALO\"x"} 0.96`,
		`section_efficiency_thread{section="CONVOLVE"} 0.65`,
		`section_efficiency_omp_region{section="CONVOLVE"} 0.8`,
		`section_efficiency_serial_region{section="CONVOLVE"} 0.8125`,
		"# TYPE section_efficiency_binding gauge",
		`section_efficiency_binding{section="HALO\"x",factor="transfer"} 0.45`,
	} {
		if !strings.Contains(got, needle) {
			t.Errorf("exposition missing %q:\n%s", needle, got)
		}
	}
}

// TestWriteEfficiencyPrometheusDegraded: a faulted run keeps the family
// headers and the degraded flag but withholds every per-section sample.
func TestWriteEfficiencyPrometheusDegraded(t *testing.T) {
	tree := effTree()
	tree.Degraded = true
	for i := range tree.Sections {
		tree.Sections[i].Factors = nil
	}
	tree.Binding.Factors = nil
	var b strings.Builder
	if err := WriteEfficiencyPrometheus(&b, tree); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, "section_efficiency_degraded 1") {
		t.Errorf("degraded flag missing:\n%s", got)
	}
	if !strings.Contains(got, "# TYPE section_efficiency_parallel gauge") {
		t.Errorf("family headers must survive degradation:\n%s", got)
	}
	for _, stray := range []string{"section=\"HALO", "section=\"CONVOLVE", "section_efficiency_binding{"} {
		if strings.Contains(got, stray) {
			t.Errorf("degraded exposition leaks samples (%q):\n%s", stray, got)
		}
	}
}
