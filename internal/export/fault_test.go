package export_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/export"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mpi"
)

// runFaulty drives a 2-rank send/recv pair inside a section with the given
// fault plan and an attached Recorder, returning both the report and the
// recorder.
func runFaulty(t *testing.T, spec string, seed uint64) (*mpi.Report, *export.Recorder) {
	t.Helper()
	plan, err := fault.ParseSpec(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	rec := export.NewRecorder(export.Options{Messages: true})
	cfg := mpi.Config{
		Ranks:   2,
		Model:   machine.NehalemCluster(),
		Seed:    1,
		Fault:   plan,
		Tools:   []mpi.Tool{rec},
		Timeout: time.Minute,
	}
	rep, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		return c.Section("HALO", func() error {
			for i := 0; i < 4; i++ {
				if c.Rank() == 0 {
					if err := c.Send(1, i, []byte("payload")); err != nil {
						return err
					}
				} else if _, err := c.RecvDiscard(0, i); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rep, rec
}

// TestRecorderStreamsFaults pins the FaultObserver side of the exporter:
// the streamed log matches the report's canonical log, and the per-kind
// counts aggregate correctly.
func TestRecorderStreamsFaults(t *testing.T) {
	rep, rec := runFaulty(t, "delay:src=0,dst=1,prob=1,secs=1e-5", 42)
	if len(rep.Faults) != 4 {
		t.Fatalf("report has %d faults, want 4 delays", len(rep.Faults))
	}
	if got := rec.Faults(); !reflect.DeepEqual(got, rep.Faults) {
		t.Fatalf("recorder log diverges from report:\n got %+v\nwant %+v", got, rep.Faults)
	}
	counts := rec.FaultCounts()
	if len(counts) != 1 || counts[0].Kind != "delay" || counts[0].Count != 4 {
		t.Fatalf("fault counts = %+v, want one delay×4 cell", counts)
	}
}

// TestPrometheusFaultCounters: the section_fault_total family renders one
// deterministic row per (section, kind), and is absent on healthy runs.
func TestPrometheusFaultCounters(t *testing.T) {
	_, rec := runFaulty(t, "delay:src=0,dst=1,prob=1,secs=1e-5", 42)
	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE section_fault_total counter") {
		t.Fatalf("missing section_fault_total family:\n%s", out)
	}
	if !strings.Contains(out, `section_fault_total{section="",kind="delay"} 4`) {
		t.Fatalf("missing delay counter row:\n%s", out)
	}

	healthy := export.NewRecorder(export.Options{})
	buf.Reset()
	if err := healthy.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "section_fault_total") {
		t.Fatal("healthy run exposes a fault family")
	}
}

// TestChromeTraceFaultInstants: each fault event becomes a ph:"i" instant
// with a scope key, placed on the afflicted rank's track.
func TestChromeTraceFaultInstants(t *testing.T) {
	_, rec := runFaulty(t, "trunc:src=0,dst=1,prob=1,frac=0.5", 7)
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var instants int
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "i" {
			continue
		}
		instants++
		if ev["cat"] != "fault" {
			t.Errorf("instant has cat %v, want fault", ev["cat"])
		}
		if s, ok := ev["s"].(string); !ok || (s != "p" && s != "g") {
			t.Errorf("instant scope = %v, want p or g", ev["s"])
		}
		name, _ := ev["name"].(string)
		if !strings.HasPrefix(name, "fault: ") {
			t.Errorf("instant name = %q", name)
		}
	}
	if instants != 4 {
		t.Fatalf("got %d fault instants, want 4", instants)
	}
}
