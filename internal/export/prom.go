package export

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders the streaming aggregator's state in the Prometheus
// text exposition format (version 0.0.4). The recorder keeps every family
// current while the ranks are still running, so a scrape — or cmd/secmon's
// /metrics endpoint — observes the run live:
//
//	section_time_seconds         summary  per-rank inclusive section time
//	section_exclusive_seconds    summary  per-rank exclusive section time
//	section_entry_imbalance_seconds summary  Fig. 3 imb_in = Tin − Tmin
//	section_imbalance_seconds    summary  Fig. 3 imb = (Tmax−Tmin) − Tsection
//	section_instances_total      counter  completed instances
//	section_span_seconds_total   counter  Σ (Tmax − Tmin) over instances
//	section_load_imbalance_ratio gauge    max/mean − 1 over per-rank totals
//	section_partial_speedup_bound gauge   Eq. 6 bound (needs Options.SeqTime)
//	section_wait_in_seconds_total counter blocked receive time in the section
//	section_late_sender_seconds_total counter late-sender share of wait_in
//	section_transfer_wait_seconds_total counter transfer share of wait_in
//	section_collective_wait_seconds_total counter collective-internal wait
//	section_late_receiver_total  counter receives posted after arrival
//	section_fault_total          counter injected faults per {section,kind}
//	mpi_messages_total           counter  point-to-point events recorded
//	mpi_message_bytes_total      counter  bytes carried by recorded messages
//	dropped_events               counter  spans/frames discarded by the cap
//	export_run_finished          gauge    1 after Finalize
//	export_wall_seconds          gauge    makespan (live: latest event time)
//
// Summaries carry _count/_sum plus the exact {quantile="0"|"1"} extremes
// the Welford accumulators track for free.

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// promLabels renders the shared {comm,section} label set.
func promLabels(comm int64, section string, extra string) string {
	s := fmt.Sprintf(`comm="%d",section="%s"`, comm, promEscape(section))
	if extra != "" {
		s += "," + extra
	}
	return "{" + s + "}"
}

// summaryFamily writes one summary family across every section.
type promSection struct {
	comm  int64
	label string
	count int
	sum   float64
	min   float64
	max   float64
}

func writeSummary(w io.Writer, name, help string, rows []promSection) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name); err != nil {
		return err
	}
	for _, s := range rows {
		if s.count == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %.17g\n%s%s %.17g\n%s_count%s %d\n%s_sum%s %.17g\n",
			name, promLabels(s.comm, s.label, `quantile="0"`), s.min,
			name, promLabels(s.comm, s.label, `quantile="1"`), s.max,
			name, promLabels(s.comm, s.label, ""), s.count,
			name, promLabels(s.comm, s.label, ""), s.sum); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the live aggregates as Prometheus text. It is
// safe to call concurrently with a running MPI program — that is exactly
// the scrape-while-running scenario it exists for.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type aggCopy struct {
		sectionAgg
		total, exclTotal float64
		loadImb          float64
	}
	aggs := make([]aggCopy, 0, len(r.aggs))
	for _, a := range r.aggs {
		c := aggCopy{sectionAgg: *a}
		for _, v := range a.perRank {
			c.total += v
		}
		for _, v := range a.perRankEx {
			c.exclTotal += v
		}
		// Detach the shared slices: the copy must not alias live state.
		c.perRank = nil
		c.perRankEx = nil
		c.loadImb = loadImbalance(a.perRank)
		aggs = append(aggs, c)
	}
	var msgCount int
	var msgBytes int64
	for _, m := range r.msgs {
		if m.send {
			msgCount++
			msgBytes += int64(m.bytes)
		}
	}
	faultRows := make([]FaultCount, 0, len(r.faultAgg))
	for k, n := range r.faultAgg {
		faultRows = append(faultRows, FaultCount{Section: k.section, Kind: k.kind, Count: n})
	}
	dropped := r.dropped
	finished := r.finished
	wall := r.wall
	if !finished {
		wall = r.maxT
	}
	seqTime := r.opts.SeqTime
	r.mu.Unlock()

	sort.Slice(aggs, func(i, j int) bool {
		if aggs[i].comm != aggs[j].comm {
			return aggs[i].comm < aggs[j].comm
		}
		return aggs[i].label < aggs[j].label
	})

	mk := func(f func(a aggCopy) promSection) []promSection {
		rows := make([]promSection, 0, len(aggs))
		for _, a := range aggs {
			rows = append(rows, f(a))
		}
		return rows
	}
	if err := writeSummary(w, "section_time_seconds",
		"Per-rank inclusive time spent in each MPI section.",
		mk(func(a aggCopy) promSection {
			return promSection{a.comm, a.label, a.dur.N(), a.total, a.dur.Min(), a.dur.Max()}
		})); err != nil {
		return err
	}
	if err := writeSummary(w, "section_exclusive_seconds",
		"Per-rank exclusive time (inclusive minus nested sections).",
		mk(func(a aggCopy) promSection {
			return promSection{a.comm, a.label, a.excl.N(), a.exclTotal, a.excl.Min(), a.excl.Max()}
		})); err != nil {
		return err
	}
	if err := writeSummary(w, "section_entry_imbalance_seconds",
		"Fig. 3 entry imbalance imb_in = Tin - Tmin per rank per instance.",
		mk(func(a aggCopy) promSection {
			return promSection{a.comm, a.label, a.entryImb.N(),
				a.entryImb.Mean() * float64(a.entryImb.N()), a.entryImb.Min(), a.entryImb.Max()}
		})); err != nil {
		return err
	}
	if err := writeSummary(w, "section_imbalance_seconds",
		"Fig. 3 section imbalance imb = (Tmax-Tmin) - Tsection per rank per instance.",
		mk(func(a aggCopy) promSection {
			return promSection{a.comm, a.label, a.imb.N(),
				a.imb.Mean() * float64(a.imb.N()), a.imb.Min(), a.imb.Max()}
		})); err != nil {
		return err
	}

	if _, err := fmt.Fprint(w, "# HELP section_instances_total Completed section instances (entered and left by every rank).\n# TYPE section_instances_total counter\n"); err != nil {
		return err
	}
	for _, a := range aggs {
		if _, err := fmt.Fprintf(w, "section_instances_total%s %d\n",
			promLabels(a.comm, a.label, ""), a.instances); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "# HELP section_span_seconds_total Summed distributed span Tmax - Tmin over completed instances.\n# TYPE section_span_seconds_total counter\n"); err != nil {
		return err
	}
	for _, a := range aggs {
		if _, err := fmt.Fprintf(w, "section_span_seconds_total%s %.17g\n",
			promLabels(a.comm, a.label, ""), a.spanTotal); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "# HELP section_load_imbalance_ratio Load imbalance max/mean - 1 over per-rank inclusive totals.\n# TYPE section_load_imbalance_ratio gauge\n"); err != nil {
		return err
	}
	for _, a := range aggs {
		if _, err := fmt.Fprintf(w, "section_load_imbalance_ratio%s %.17g\n",
			promLabels(a.comm, a.label, ""), a.loadImb); err != nil {
			return err
		}
	}
	waitCounter := func(name, help string, value func(a aggCopy) float64) error {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name); err != nil {
			return err
		}
		for _, a := range aggs {
			if a.recvs == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %.17g\n", name, promLabels(a.comm, a.label, ""), value(a)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := waitCounter("section_wait_in_seconds_total",
		"Blocked receive time accumulated inside the section (Scalasca wait-state input).",
		func(a aggCopy) float64 { return a.waitIn }); err != nil {
		return err
	}
	if err := waitCounter("section_late_sender_seconds_total",
		"Late-sender share of section_wait_in_seconds_total (send posted after the receive).",
		func(a aggCopy) float64 { return a.lateSend }); err != nil {
		return err
	}
	if err := waitCounter("section_transfer_wait_seconds_total",
		"In-flight transfer share of section_wait_in_seconds_total.",
		func(a aggCopy) float64 { return a.transfer }); err != nil {
		return err
	}
	if err := waitCounter("section_collective_wait_seconds_total",
		"Blocked time on collective-internal traffic inside the section.",
		func(a aggCopy) float64 { return a.collWait }); err != nil {
		return err
	}
	if err := waitCounter("section_late_receiver_total",
		"Receives posted after the payload had already arrived (message sat in the mailbox).",
		func(a aggCopy) float64 { return float64(a.lateRecv) }); err != nil {
		return err
	}
	if len(faultRows) > 0 {
		sort.Slice(faultRows, func(i, j int) bool {
			if faultRows[i].Section != faultRows[j].Section {
				return faultRows[i].Section < faultRows[j].Section
			}
			return faultRows[i].Kind < faultRows[j].Kind
		})
		if _, err := fmt.Fprint(w, "# HELP section_fault_total Injected faults and observed failure consequences by section and kind.\n# TYPE section_fault_total counter\n"); err != nil {
			return err
		}
		for _, fr := range faultRows {
			if _, err := fmt.Fprintf(w, "section_fault_total{section=\"%s\",kind=\"%s\"} %d\n",
				promEscape(fr.Section), promEscape(fr.Kind), fr.Count); err != nil {
				return err
			}
		}
	}
	if seqTime > 0 {
		if _, err := fmt.Fprint(w, "# HELP section_partial_speedup_bound Eq. 6 partial speedup bound seq / avg-per-proc section time.\n# TYPE section_partial_speedup_bound gauge\n"); err != nil {
			return err
		}
		for _, a := range aggs {
			if a.ranks == 0 || a.total <= 0 {
				continue
			}
			bound := seqTime / (a.total / float64(a.ranks))
			if _, err := fmt.Fprintf(w, "section_partial_speedup_bound%s %.17g\n",
				promLabels(a.comm, a.label, ""), bound); err != nil {
				return err
			}
		}
	}

	boolGauge := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	_, err := fmt.Fprintf(w,
		"# HELP mpi_messages_total Point-to-point messages recorded.\n# TYPE mpi_messages_total counter\nmpi_messages_total %d\n"+
			"# HELP mpi_message_bytes_total Bytes carried by recorded point-to-point messages.\n# TYPE mpi_message_bytes_total counter\nmpi_message_bytes_total %d\n"+
			"# HELP dropped_events Events discarded by the retention cap; non-zero means truncated aggregates.\n# TYPE dropped_events counter\ndropped_events %d\n"+
			"# HELP export_run_finished Whether the run has finalized (0 while ranks are still executing).\n# TYPE export_run_finished gauge\nexport_run_finished %d\n"+
			"# HELP export_wall_seconds Virtual makespan; the latest observed event time while live.\n# TYPE export_wall_seconds gauge\nexport_wall_seconds %.17g\n",
		msgCount, msgBytes, dropped, boolGauge(finished), wall)
	return err
}
