package export

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/fault"
)

// This file renders the recorded run in the Chrome trace_event JSON format
// (the "JSON Array with metadata" flavor), loadable in Perfetto and
// chrome://tracing:
//
//   - one process ("track") per MPI rank, named via process_name metadata;
//   - B/E duration slices for sections (and collectives, when recorded),
//     replayed in each rank's execution order so nesting is exact;
//   - s/f flow events tying each point-to-point send to its receive;
//   - C counter samples on a dedicated "section metrics" track carrying the
//     per-instance Fig. 3 mean imbalance of every section.
//
// Virtual-time seconds map to trace microseconds.

// chromeEvent is one trace_event record. Every event carries the required
// ph/ts/pid/tid/name keys; the optional fields are format-specific.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope (g/p/t)
	Args map[string]any `json:"args,omitempty"`

	// seq orders same-timestamp events of one rank by execution order; it
	// is stripped from the JSON.
	seq uint64 `json:"-"`
}

// chromeDoc is the top-level JSON object.
type chromeDoc struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// metricsPidOffset places the counter track after the last rank pid.
const metricsPidOffset = 1

const secToUs = 1e6

// WriteChromeTrace renders the events recorded so far; it may be called
// mid-run (live snapshot) or after Finalize (full trace).
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	r.mu.Lock()
	spans := append([]Span(nil), r.spans...)
	counters := append([]counterSample(nil), r.counters...)
	msgs := append([]msgEvent(nil), r.msgs...)
	faults := append([]fault.Event(nil), r.faults...)
	traceID := r.traceID
	ranks := r.ranks
	dropped := r.dropped
	r.mu.Unlock()
	fault.SortEvents(faults)

	// Rank tracks: every rank that produced a span or message, plus the
	// world size recorded at Init (so an idle rank still gets its track and
	// a p=64 run always shows 64 tracks).
	maxRank := ranks - 1
	for _, sp := range spans {
		if sp.Rank > maxRank {
			maxRank = sp.Rank
		}
	}
	for _, m := range msgs {
		if m.src > maxRank {
			maxRank = m.src
		}
		if m.dst > maxRank {
			maxRank = m.dst
		}
	}
	for _, fe := range faults {
		if fe.Rank > maxRank {
			maxRank = fe.Rank
		}
	}
	metricsPid := maxRank + metricsPidOffset + 1

	var events []chromeEvent
	for rank := 0; rank <= maxRank; rank++ {
		events = append(events,
			chromeEvent{Name: "process_name", Ph: "M", Pid: rank, Tid: rank,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)}},
			chromeEvent{Name: "process_sort_index", Ph: "M", Pid: rank, Tid: rank,
				Args: map[string]any{"sort_index": rank}},
		)
	}
	if len(counters) > 0 {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: metricsPid, Tid: 0,
			Args: map[string]any{"name": "section metrics"},
		})
	}

	slices := make([]chromeEvent, 0, 2*len(spans))
	for _, sp := range spans {
		cat := "section"
		if sp.Collective {
			cat = "collective"
		}
		slices = append(slices,
			chromeEvent{
				Name: sp.Label, Ph: "B", Ts: sp.Start * secToUs,
				Pid: sp.Rank, Tid: sp.Rank, Cat: cat, seq: sp.EnterSeq,
				Args: map[string]any{
					"comm":    sp.Comm,
					"span_id": fmt.Sprintf("%016x", sp.ID),
				},
			},
			chromeEvent{
				Name: sp.Label, Ph: "E", Ts: sp.End * secToUs,
				Pid: sp.Rank, Tid: sp.Rank, Cat: cat, seq: sp.LeaveSeq,
			},
		)
	}
	slices = append(slices, flowEvents(msgs)...)
	// Chrome replays B/E per thread in array order when timestamps tie;
	// sorting by (ts, pid, per-rank execution seq) therefore reproduces the
	// exact nesting each rank executed.
	sort.SliceStable(slices, func(i, j int) bool {
		if slices[i].Ts != slices[j].Ts {
			return slices[i].Ts < slices[j].Ts
		}
		if slices[i].Pid != slices[j].Pid {
			return slices[i].Pid < slices[j].Pid
		}
		return slices[i].seq < slices[j].seq
	})
	events = append(events, slices...)

	// Fault instants: one ph:"i" marker per injected fault or observed
	// failure consequence, process-scoped on the afflicted rank's track
	// (global when the event has no rank). Perfetto draws them as flags, so
	// a kill or a dropped message is visible right where the slices distort.
	for _, fe := range faults {
		ev := chromeEvent{
			Name: "fault: " + fe.Kind.String(), Ph: "i", Ts: fe.T * secToUs,
			Cat: "fault", S: "p",
		}
		if fe.Rank >= 0 {
			ev.Pid, ev.Tid = fe.Rank, fe.Rank
		} else {
			ev.S = "g"
		}
		args := map[string]any{"kind": fe.Kind.String()}
		if fe.Section != "" {
			args["section"] = fe.Section
		}
		if fe.Src >= 0 {
			args["src"] = fe.Src
		}
		if fe.Dst >= 0 {
			args["dst"] = fe.Dst
		}
		if fe.Bytes != 0 {
			args["bytes"] = fe.Bytes
		}
		if fe.Delay != 0 {
			args["delay_us"] = fe.Delay * secToUs
		}
		ev.Args = args
		events = append(events, ev)
	}

	sort.SliceStable(counters, func(i, j int) bool {
		if counters[i].t != counters[j].t {
			return counters[i].t < counters[j].t
		}
		return counters[i].label < counters[j].label
	})
	for _, cs := range counters {
		events = append(events, chromeEvent{
			Name: "imbalance " + cs.label, Ph: "C", Ts: cs.t * secToUs,
			Pid: metricsPid, Tid: 0, Cat: "metrics",
			Args: map[string]any{"seconds": cs.value},
		})
	}

	doc := chromeDoc{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"trace_id":       traceID.String(),
			"dropped_events": dropped,
			"source":         "repro/internal/export",
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// flowEvents matches send events to their receives (FIFO per src/dst/tag
// channel, MPI's non-overtaking order) and emits s/f flow pairs. Unmatched
// halves (mid-run snapshot, truncated stream) are skipped: a dangling flow
// arrow renders as garbage in Perfetto.
func flowEvents(msgs []msgEvent) []chromeEvent {
	type chanKey struct {
		src, dst, tag int
	}
	owner := func(m msgEvent) int {
		if m.send {
			return m.src
		}
		return m.dst
	}
	// Deterministic replay order: time, then owning rank, then the rank's
	// execution sequence (seq values are only comparable within one rank).
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].t != msgs[j].t {
			return msgs[i].t < msgs[j].t
		}
		if owner(msgs[i]) != owner(msgs[j]) {
			return owner(msgs[i]) < owner(msgs[j])
		}
		return msgs[i].seq < msgs[j].seq
	})
	pending := map[chanKey][]msgEvent{}
	flowID := 0
	var out []chromeEvent
	for _, m := range msgs {
		k := chanKey{m.src, m.dst, m.tag}
		if m.send {
			pending[k] = append(pending[k], m)
			continue
		}
		q := pending[k]
		if len(q) == 0 {
			continue
		}
		send := q[0]
		pending[k] = q[1:]
		flowID++
		id := fmt.Sprintf("p2p-%d", flowID)
		args := map[string]any{"tag": m.tag, "bytes": m.bytes}
		// Wait split from the receive half's matched-pair stamps (zero on
		// pre-MatchInfo snapshots): how long the receiver blocked and how
		// much of that the sender's lateness explains.
		if wait := m.t - m.postT; wait > 0 && m.arrival > 0 {
			args["wait_us"] = wait * secToUs
			if late := m.sendT - m.postT; late > 0 {
				if late > wait {
					late = wait
				}
				args["late_sender_us"] = late * secToUs
			}
			if m.postT > m.arrival {
				args["late_receiver"] = true
			}
		}
		out = append(out,
			chromeEvent{Name: "p2p", Ph: "s", Ts: send.t * secToUs,
				Pid: send.src, Tid: send.src, Cat: "p2p", ID: id, Args: args, seq: send.seq},
			chromeEvent{Name: "p2p", Ph: "f", BP: "e", Ts: m.t * secToUs,
				Pid: m.dst, Tid: m.dst, Cat: "p2p", ID: id, seq: m.seq},
		)
	}
	return out
}
