// Package export is the repository's second, independent consumer of the
// PMPI-like tool layer: a streaming observability exporter. Where
// internal/prof is the paper's MALP-style reference analysis tool, this
// package converts the same MPI_Section enter/leave, point-to-point and
// collective events into the formats modern observability pipelines speak:
//
//   - Chrome trace_event JSON (WriteChromeTrace) loadable in Perfetto or
//     chrome://tracing — one track per rank, nested section slices, flow
//     arrows for p2p messages, counter tracks for per-section imbalance;
//   - OTLP-style span JSON (WriteOTLP) — one trace per run, one span per
//     section instance per rank, parent links recovered from the nesting
//     stack, and the 32-byte tool-data payload surfaced as span attributes;
//   - Prometheus text exposition (WritePrometheus) backed by a streaming
//     aggregator that maintains per-section online statistics
//     (stats.Welford) while the ranks are still running.
//
// Recorder demonstrates the paper's tool-agnosticism claim end to end: it
// attaches through the same mpi.Config.Tools chain as internal/prof, uses
// the Fig. 2 tool-data slot to stamp span identity between enter and leave,
// and computes the Fig. 3 temporal metrics independently — chaining it next
// to the profiler must not perturb either tool's measurements (see the
// parity tests).
package export

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/stats"
)

// TraceID identifies one run's trace (16 bytes, OTLP-sized).
type TraceID [16]byte

// String renders the trace id as 32 hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the id is unset.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// runCounter salts derived trace ids so successive runs in one process get
// distinct traces.
var runCounter atomic.Uint64

// deriveTraceID builds a deterministic-per-run id from a splitmix64 walk.
func deriveTraceID() TraceID {
	var id TraceID
	z := runCounter.Add(1)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for i := 0; i < 2; i++ {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		binary.BigEndian.PutUint64(id[i*8:], z)
	}
	return id
}

// payloadMagic marks a tool-data slot written by this package (Fig. 2: the
// payload layout is tool-defined; the magic lets the leave side recognize
// its own stamp even with other tools in the chain).
var payloadMagic = [4]byte{'E', 'X', 'P', 'T'}

// DefaultMaxSpans bounds completed-span retention when Options.MaxSpans is
// zero: enough for the paper-scale p=456 convolution sweep, small enough
// that a runaway loop cannot exhaust memory.
const DefaultMaxSpans = 1 << 21

// Unbounded disables a retention limit when set as Options.MaxSpans.
const Unbounded = -1

// Options configures a Recorder.
type Options struct {
	// MaxSpans caps retained completed spans (0 = DefaultMaxSpans,
	// Unbounded = no cap). Spans past the cap are counted as dropped and
	// surfaced by Dropped/Warning — never silently discarded.
	MaxSpans int
	// Messages records point-to-point events as Perfetto flow arrows.
	Messages bool
	// Collectives records collective begin/end as slices on the rank track.
	Collectives bool
	// SeqTime is the sequential baseline Σ_j f_j(n0, 1); when positive the
	// exporter also computes each section's Eq. 6 partial speedup bound.
	SeqTime float64
	// TraceID pins the run's trace id; zero derives a fresh one at Init.
	TraceID TraceID
}

// Span is one completed section (or collective) instance on one rank.
type Span struct {
	ID     uint64
	Parent uint64 // 0 for top-level spans
	Label  string
	// Collective marks spans recorded from CollectiveBegin/End rather than
	// section enter/leave.
	Collective bool
	Comm       int64
	// Rank is the MPI_COMM_WORLD identity (the trace track).
	Rank int
	// CommRank is the rank within Comm.
	CommRank   int
	Start, End float64
	// Excl is the exclusive duration: End−Start minus nested section time.
	Excl float64
	// EnterSeq/LeaveSeq order same-timestamp events within one rank so the
	// trace replays with the nesting the rank actually executed.
	EnterSeq, LeaveSeq uint64
	// Data is the 32-byte tool payload as it stood at leave (sections only).
	Data mpi.ToolData
}

// msgEvent is one half of a point-to-point message (send or recv side).
// Receive halves carry the matched-pair timestamps (mpi.MatchInfo) so the
// Chrome-trace flow arrows can annotate each edge with its wait split.
type msgEvent struct {
	send     bool
	src, dst int // world ranks
	tag      int
	bytes    int
	t        float64
	seq      uint64
	sendT    float64
	postT    float64
	arrival  float64
}

// counterSample is one point on a per-section imbalance counter track: the
// instance's mean Fig. 3 imbalance, stamped at the instance's Tmax.
type counterSample struct {
	label string
	t     float64
	value float64
}

type secKey struct {
	comm  int64
	label string
}

type rankKey struct {
	comm int64
	rank int
}

// faultKey aggregates fault events per (section, kind) for the Prometheus
// section_fault_total family. Link faults outside any section aggregate
// under the empty section label.
type faultKey struct {
	section string
	kind    string
}

type instKey struct {
	comm  int64
	label string
	index int
}

// openSpan is a live section instance on one rank.
type openSpan struct {
	span      Span
	childTime float64
	index     int // per-(rank,label) instance index
}

// instAcc gathers one instance's per-rank boundary times until every rank
// of the communicator contributed, then folds into the aggregate — the same
// completion rule internal/prof uses, so both tools agree on Fig. 3.
type instAcc struct {
	enters []float64
	leaves []float64
}

// InstanceMetrics are the raw Fig. 3 quantities of one completed section
// instance: Tmin (first entry), Tmax (last exit), and the mean entry and
// section imbalances over the communicator's ranks.
type InstanceMetrics struct {
	Tmin         float64 `json:"tmin"`
	Tmax         float64 `json:"tmax"`
	EntryImbMean float64 `json:"entry_imb_mean"`
	ImbMean      float64 `json:"imb_mean"`
}

// sectionAgg is the live per-section streaming aggregate.
type sectionAgg struct {
	comm      int64
	label     string
	parent    string
	ranks     int
	instances int
	dur       stats.Welford
	excl      stats.Welford
	entryImb  stats.Welford
	imb       stats.Welford
	spanTotal float64
	perRank   []float64
	perRankEx []float64
	last      InstanceMetrics
	hasLast   bool
	// Wait-state accumulators (Scalasca-style, from mpi.MatchInfo): blocked
	// receive time inside the section split into late-sender time, residual
	// transfer wait, and collective-internal wait (tag < 0 traffic).
	waitIn   float64
	lateSend float64
	transfer float64
	collWait float64
	lateRecv int // receives posted after the payload already arrived
	recvs    int
}

// Recorder is the exporter's mpi.Tool. Attach it via mpi.Config.Tools —
// alone or chained with other tools; every method is safe for concurrent
// use from all rank goroutines, and every Write*/snapshot accessor may be
// called while the run is still in flight (that is the "live" part).
type Recorder struct {
	mpi.BaseTool

	mu       sync.Mutex
	opts     Options
	world    *mpi.WorldInfo
	traceID  TraceID
	seqs     []uint64 // per-world-rank event sequence counters
	stacks   map[rankKey][]openSpan
	nextIdx  map[rankKey]map[string]int
	collOpen map[int][]openSpan // per-world-rank open collectives
	inst     map[instKey]*instAcc
	aggs     map[secKey]*sectionAgg
	spans    []Span
	counters []counterSample
	msgs     []msgEvent
	faults   []fault.Event
	faultAgg map[faultKey]int
	dropped  int
	maxT     float64
	finished bool
	wall     float64
	ranks    int
}

// NewRecorder returns a Recorder with the given options.
func NewRecorder(opts Options) *Recorder {
	if opts.MaxSpans == 0 {
		opts.MaxSpans = DefaultMaxSpans
	}
	if opts.TraceID.IsZero() {
		// Derived eagerly so callers can report the ID before the run
		// starts (cmd/secmon's async /run response).
		opts.TraceID = deriveTraceID()
	}
	return &Recorder{
		opts:     opts,
		traceID:  opts.TraceID,
		stacks:   map[rankKey][]openSpan{},
		nextIdx:  map[rankKey]map[string]int{},
		collOpen: map[int][]openSpan{},
		inst:     map[instKey]*instAcc{},
		aggs:     map[secKey]*sectionAgg{},
		faultAgg: map[faultKey]int{},
	}
}

// SetSeqTime installs (or replaces) the sequential baseline used for the
// Eq. 6 partial bounds; callers that measure the baseline after
// constructing the recorder (cmd/secmon's /run) use it.
func (r *Recorder) SetSeqTime(seq float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.opts.SeqTime = seq
}

// TraceID reports the run's trace id (derived at Init when not pinned).
func (r *Recorder) TraceID() TraceID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traceID
}

// Init implements mpi.Tool.
func (r *Recorder) Init(w *mpi.WorldInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.world = w
	r.ranks = w.Size
	r.seqs = make([]uint64, w.Size)
	if r.traceID.IsZero() {
		r.traceID = deriveTraceID()
	}
}

// nextSeqLocked advances the world rank's event sequence.
func (r *Recorder) nextSeqLocked(worldRank int) uint64 {
	if worldRank >= len(r.seqs) { // sub-communicator before Init (tests)
		grown := make([]uint64, worldRank+1)
		copy(grown, r.seqs)
		r.seqs = grown
	}
	r.seqs[worldRank]++
	return r.seqs[worldRank]
}

// spanID derives a span's identity from its rank and per-rank event
// sequence. Ranks race for r.mu, so a global allocation counter would hand
// out different ids run to run; this derivation depends only on each
// rank's own (deterministic, virtual-time) execution order, which keeps
// golden traces, OTLP spans and Fig. 2 payload stamps byte-stable.
func spanID(worldRank int, seq uint64) uint64 {
	return uint64(worldRank+1)<<40 | seq
}

// observeLocked tracks the latest event timestamp for live wall estimates.
func (r *Recorder) observeLocked(t float64) {
	if t > r.maxT {
		r.maxT = t
	}
}

// SectionEnter implements mpi.Tool: it opens a span, stamps span identity
// into the Fig. 2 tool-data slot, and starts the instance accumulator.
func (r *Recorder) SectionEnter(c *mpi.Comm, label string, t float64, data *mpi.ToolData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observeLocked(t)
	world := c.WorldRank()
	rk := rankKey{comm: c.ID(), rank: c.Rank()}

	idxs := r.nextIdx[rk]
	if idxs == nil {
		idxs = map[string]int{}
		r.nextIdx[rk] = idxs
	}
	idx := idxs[label]
	idxs[label] = idx + 1

	sp := Span{
		Label:    label,
		Comm:     c.ID(),
		Rank:     world,
		CommRank: c.Rank(),
		Start:    t,
		EnterSeq: r.nextSeqLocked(world),
	}
	sp.ID = spanID(world, sp.EnterSeq)
	parentLabel := ""
	if st := r.stacks[rk]; len(st) > 0 {
		sp.Parent = st[len(st)-1].span.ID
		parentLabel = st[len(st)-1].span.Label
	}
	r.stacks[rk] = append(r.stacks[rk], openSpan{span: sp, index: idx})

	if data != nil {
		stampPayload(data, sp.ID, sp.Parent, t)
	}

	ik := instKey{comm: c.ID(), label: label, index: idx}
	acc := r.inst[ik]
	if acc == nil {
		acc = &instAcc{}
		r.inst[ik] = acc
	}
	acc.enters = append(acc.enters, t)

	if a := r.aggs[secKey{comm: c.ID(), label: label}]; a == nil {
		r.aggs[secKey{comm: c.ID(), label: label}] = &sectionAgg{
			comm:      c.ID(),
			label:     label,
			parent:    parentLabel,
			ranks:     c.Size(),
			perRank:   make([]float64, c.Size()),
			perRankEx: make([]float64, c.Size()),
		}
	}
}

// SectionLeave implements mpi.Tool: it closes the span, folds the duration
// into the streaming aggregates, and completes the instance when the last
// rank leaves.
func (r *Recorder) SectionLeave(c *mpi.Comm, label string, t float64, data *mpi.ToolData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observeLocked(t)
	world := c.WorldRank()
	rk := rankKey{comm: c.ID(), rank: c.Rank()}
	st := r.stacks[rk]
	if len(st) == 0 || st[len(st)-1].span.Label != label {
		// Misnested usage: the runtime reports it; drop the sample rather
		// than corrupting exporter state (same policy as internal/prof).
		return
	}
	open := st[len(st)-1]
	r.stacks[rk] = st[:len(st)-1]

	sp := open.span
	sp.End = t
	sp.LeaveSeq = r.nextSeqLocked(world)
	dur := t - sp.Start
	sp.Excl = dur - open.childTime
	if data != nil {
		sp.Data = *data
	}
	if n := len(r.stacks[rk]); n > 0 {
		r.stacks[rk][n-1].childTime += dur
	}
	r.retainSpanLocked(sp)

	sk := secKey{comm: c.ID(), label: label}
	a := r.aggs[sk]
	if a == nil { // leave without recorded enter cannot happen, but be safe
		a = &sectionAgg{
			comm: c.ID(), label: label, ranks: c.Size(),
			perRank:   make([]float64, c.Size()),
			perRankEx: make([]float64, c.Size()),
		}
		r.aggs[sk] = a
	}
	a.dur.Add(dur)
	a.excl.Add(sp.Excl)
	a.perRank[c.Rank()] += dur
	a.perRankEx[c.Rank()] += sp.Excl

	ik := instKey{comm: c.ID(), label: label, index: open.index}
	acc := r.inst[ik]
	if acc == nil {
		return
	}
	acc.leaves = append(acc.leaves, t)
	if len(acc.leaves) == c.Size() {
		r.foldInstanceLocked(a, acc)
		delete(r.inst, ik)
	}
}

// foldInstanceLocked computes the Fig. 3 metrics for one completed
// instance, mirroring prof.Profiler.foldInstance so both tools report the
// same numbers.
func (r *Recorder) foldInstanceLocked(a *sectionAgg, acc *instAcc) {
	tmin, _ := stats.Min(acc.enters)
	tmax, _ := stats.Max(acc.leaves)
	a.spanTotal += tmax - tmin
	a.instances++
	var entrySum, imbSum float64
	for _, tin := range acc.enters {
		a.entryImb.Add(tin - tmin)
		entrySum += tin - tmin
	}
	for _, tout := range acc.leaves {
		tsection := tout - tmin
		imb := (tmax - tmin) - tsection
		a.imb.Add(imb)
		imbSum += imb
	}
	n := float64(len(acc.leaves))
	a.last = InstanceMetrics{
		Tmin:         tmin,
		Tmax:         tmax,
		EntryImbMean: entrySum / n,
		ImbMean:      imbSum / n,
	}
	a.hasLast = true
	r.counters = append(r.counters, counterSample{label: a.label, t: tmax, value: a.last.ImbMean})
}

// retainSpanLocked appends a completed span, honoring the retention cap.
func (r *Recorder) retainSpanLocked(sp Span) {
	if r.opts.MaxSpans != Unbounded && len(r.spans) >= r.opts.MaxSpans {
		r.dropped++
		return
	}
	r.spans = append(r.spans, sp)
}

// CollectiveBegin implements mpi.Tool.
func (r *Recorder) CollectiveBegin(c *mpi.Comm, name string, t float64) {
	if !r.opts.Collectives {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observeLocked(t)
	world := c.WorldRank()
	sp := Span{
		Label:      name,
		Collective: true,
		Comm:       c.ID(),
		Rank:       world,
		CommRank:   c.Rank(),
		Start:      t,
		EnterSeq:   r.nextSeqLocked(world),
	}
	sp.ID = spanID(world, sp.EnterSeq)
	if st := r.stacks[rankKey{comm: c.ID(), rank: c.Rank()}]; len(st) > 0 {
		sp.Parent = st[len(st)-1].span.ID
	}
	r.collOpen[world] = append(r.collOpen[world], openSpan{span: sp})
}

// CollectiveEnd implements mpi.Tool.
func (r *Recorder) CollectiveEnd(c *mpi.Comm, name string, t float64) {
	if !r.opts.Collectives {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observeLocked(t)
	world := c.WorldRank()
	st := r.collOpen[world]
	if len(st) == 0 || st[len(st)-1].span.Label != name {
		return
	}
	sp := st[len(st)-1].span
	r.collOpen[world] = st[:len(st)-1]
	sp.End = t
	sp.Excl = t - sp.Start
	sp.LeaveSeq = r.nextSeqLocked(world)
	r.retainSpanLocked(sp)
}

// MessageSent implements mpi.Tool.
func (r *Recorder) MessageSent(c *mpi.Comm, dst, tag, bytes int, t float64) {
	if !r.opts.Messages {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observeLocked(t)
	world := c.WorldRank()
	r.msgs = append(r.msgs, msgEvent{
		send: true, src: world, dst: c.WorldRankOf(dst),
		tag: tag, bytes: bytes, t: t, seq: r.nextSeqLocked(world),
	})
}

// MessageRecv implements mpi.Tool: besides recording the flow-arrow half,
// it classifies the receive's blocked time from the matched-pair stamps and
// folds it into the innermost open section's wait-state counters.
func (r *Recorder) MessageRecv(c *mpi.Comm, src, tag, bytes int, t float64, m mpi.MatchInfo) {
	if !r.opts.Messages {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observeLocked(t)
	world := c.WorldRank()
	r.msgs = append(r.msgs, msgEvent{
		send: false, src: c.WorldRankOf(src), dst: world,
		tag: tag, bytes: bytes, t: t, seq: r.nextSeqLocked(world),
		sendT: m.SendT, postT: m.PostT, arrival: m.Arrival,
	})
	// Attribute to the receiving rank's innermost open section on this comm.
	st := r.stacks[rankKey{comm: c.ID(), rank: c.Rank()}]
	if len(st) == 0 {
		return
	}
	a := r.aggs[secKey{comm: c.ID(), label: st[len(st)-1].span.Label}]
	if a == nil {
		return
	}
	wait := t - m.PostT
	if wait < 0 {
		wait = 0
	}
	a.recvs++
	a.waitIn += wait
	if m.PostT > m.Arrival {
		a.lateRecv++
	}
	if tag < 0 {
		a.collWait += wait
		return
	}
	late := m.SendT - m.PostT
	if late < 0 {
		late = 0
	}
	if late > wait {
		late = wait
	}
	a.lateSend += late
	a.transfer += wait - late
}

// FaultEvent implements mpi.FaultObserver: injected faults and their
// observed consequences stream into the recorder as they happen, so a
// scrape (or the Chrome trace of a live snapshot) sees the degradation the
// moment it is injected. Events are retained verbatim for /faults.json-style
// consumers and aggregated per (section, kind) for the section_fault_total
// Prometheus family.
func (r *Recorder) FaultEvent(ev fault.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observeLocked(ev.T)
	r.faults = append(r.faults, ev)
	r.faultAgg[faultKey{section: ev.Section, kind: ev.Kind.String()}]++
}

// Faults returns the fault events recorded so far in canonical order
// (fault.SortEvents), so the same run yields a byte-identical JSON log
// however the rank goroutines interleaved.
func (r *Recorder) Faults() []fault.Event {
	r.mu.Lock()
	out := append([]fault.Event(nil), r.faults...)
	r.mu.Unlock()
	fault.SortEvents(out)
	return out
}

// FaultCount is one (section, kind) cell of the fault aggregate.
type FaultCount struct {
	Section string `json:"section,omitempty"`
	Kind    string `json:"kind"`
	Count   int    `json:"count"`
}

// FaultCounts snapshots the per-(section, kind) fault totals, sorted by
// section then kind — the deterministic order the Prometheus writer and
// cmd/secmon's /faults.json both render.
func (r *Recorder) FaultCounts() []FaultCount {
	r.mu.Lock()
	out := make([]FaultCount, 0, len(r.faultAgg))
	for k, n := range r.faultAgg {
		out = append(out, FaultCount{Section: k.section, Kind: k.kind, Count: n})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Section != out[j].Section {
			return out[i].Section < out[j].Section
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Finalize implements mpi.Tool: it records the run report and discards any
// still-open frames (counted as dropped — a span without a leave has no
// duration to export).
func (r *Recorder) Finalize(rep *mpi.Report) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finished = true
	r.wall = rep.WallTime
	for k, st := range r.stacks {
		r.dropped += len(st)
		delete(r.stacks, k)
	}
	for k, st := range r.collOpen {
		r.dropped += len(st)
		delete(r.collOpen, k)
	}
}

// Finished reports whether Finalize ran.
func (r *Recorder) Finished() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.finished
}

// WallTime reports the final virtual makespan after Finalize, or the
// latest event timestamp observed so far during a live run.
func (r *Recorder) WallTime() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		return r.wall
	}
	return r.maxT
}

// Dropped reports how many spans (or unclosed frames) were discarded.
// Non-zero drops mean the aggregates describe a truncated stream.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Warning returns a human-readable warning line when events were dropped,
// and "" when the stream is complete — callers print it verbatim.
func (r *Recorder) Warning() string {
	if n := r.Dropped(); n > 0 {
		return fmt.Sprintf("warning: %d events dropped (span cap %d); aggregates and traces describe a truncated stream", n, r.opts.MaxSpans)
	}
	return ""
}

// SectionSnapshot is a point-in-time copy of one section's streaming
// aggregate, JSON-ready for cmd/secmon's /sections endpoint.
type SectionSnapshot struct {
	Comm   int64  `json:"comm"`
	Label  string `json:"label"`
	Parent string `json:"parent,omitempty"`
	Ranks  int    `json:"ranks"`
	// Instances counts completed instances (entered and left by every rank).
	Instances int `json:"instances"`
	// Total / ExclTotal are summed-over-ranks inclusive / exclusive times.
	Total      float64 `json:"total_seconds"`
	ExclTotal  float64 `json:"excl_seconds"`
	AvgPerProc float64 `json:"avg_per_proc_seconds"`
	DurMean    float64 `json:"dur_mean_seconds"`
	DurStd     float64 `json:"dur_std_seconds"`
	DurMin     float64 `json:"dur_min_seconds"`
	DurMax     float64 `json:"dur_max_seconds"`
	// EntryImbMean / ImbMean are the Fig. 3 aggregates: mean Tin−Tmin and
	// mean (Tmax−Tmin)−Tsection over every rank of every instance.
	EntryImbMean float64 `json:"entry_imb_mean_seconds"`
	ImbMean      float64 `json:"imb_mean_seconds"`
	ImbMax       float64 `json:"imb_max_seconds"`
	// SpanTotal sums the distributed span Tmax−Tmin over instances.
	SpanTotal float64 `json:"span_total_seconds"`
	// LoadImbalance is max/mean − 1 over per-rank inclusive totals.
	LoadImbalance float64 `json:"load_imbalance"`
	// Bound is the Eq. 6 partial speedup bound seq / avgPerProc (0 when no
	// sequential baseline was configured).
	Bound float64 `json:"partial_bound,omitempty"`
	// LastInstance carries the raw Fig. 3 numbers of the most recently
	// completed instance (Tmin, Tmax, imbalance means).
	LastInstance *InstanceMetrics `json:"last_instance,omitempty"`
	// PerRankTotal is each rank's summed inclusive time.
	PerRankTotal []float64 `json:"per_rank_total_seconds"`
	// Wait-state split (requires Options.Messages): total blocked receive
	// time inside the section, its late-sender / transfer / collective
	// components, the count of late-receiver messages, and the number of
	// receives observed.
	WaitIn       float64 `json:"wait_in_seconds"`
	LateSender   float64 `json:"late_sender_seconds"`
	TransferWait float64 `json:"transfer_wait_seconds"`
	CollWait     float64 `json:"collective_wait_seconds"`
	LateRecvs    int     `json:"late_receiver_total"`
	Recvs        int     `json:"recv_total"`
}

// Sections snapshots the streaming aggregates, sorted by total inclusive
// time descending (ties by label) like prof.Profile.
func (r *Recorder) Sections() []SectionSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SectionSnapshot, 0, len(r.aggs))
	for _, a := range r.aggs {
		s := SectionSnapshot{
			Comm:          a.comm,
			Label:         a.label,
			Parent:        a.parent,
			Ranks:         a.ranks,
			Instances:     a.instances,
			Total:         stats.Sum(a.perRank),
			ExclTotal:     stats.Sum(a.perRankEx),
			DurMean:       a.dur.Mean(),
			DurStd:        a.dur.Std(),
			DurMin:        a.dur.Min(),
			DurMax:        a.dur.Max(),
			EntryImbMean:  a.entryImb.Mean(),
			ImbMean:       a.imb.Mean(),
			ImbMax:        a.imb.Max(),
			SpanTotal:     a.spanTotal,
			PerRankTotal:  append([]float64(nil), a.perRank...),
			LoadImbalance: loadImbalance(a.perRank),
			WaitIn:        a.waitIn,
			LateSender:    a.lateSend,
			TransferWait:  a.transfer,
			CollWait:      a.collWait,
			LateRecvs:     a.lateRecv,
			Recvs:         a.recvs,
		}
		if a.ranks > 0 {
			s.AvgPerProc = s.Total / float64(a.ranks)
		}
		if r.opts.SeqTime > 0 && s.AvgPerProc > 0 {
			s.Bound = r.opts.SeqTime / s.AvgPerProc
		}
		if a.hasLast {
			inst := a.last
			s.LastInstance = &inst
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// Spans copies the completed spans (unordered — writers sort as needed).
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// loadImbalance is max/mean − 1 with zero-safe handling.
func loadImbalance(perRank []float64) float64 {
	v, err := stats.Imbalance(perRank)
	if err != nil || math.IsNaN(v) {
		return 0
	}
	return v
}

// stampPayload writes the exporter's Fig. 2 tool-data layout: a 4-byte
// magic, the world-visible span and parent ids, and the enter timestamp.
// The leave callback (and the OTLP writer) read it back; any profiler
// could do the same with its own layout — that is the paper's point.
func stampPayload(data *mpi.ToolData, spanID, parentID uint64, t float64) {
	copy(data[0:4], payloadMagic[:])
	binary.BigEndian.PutUint32(data[4:8], uint32(len(payloadMagic)))
	binary.BigEndian.PutUint64(data[8:16], spanID)
	binary.BigEndian.PutUint64(data[16:24], parentID)
	binary.BigEndian.PutUint64(data[24:32], math.Float64bits(t))
}

// DecodePayload parses a tool-data slot stamped by this package. ok is
// false when the slot holds another tool's (or no) payload.
func DecodePayload(data mpi.ToolData) (spanID, parentID uint64, enterT float64, ok bool) {
	if [4]byte(data[0:4]) != payloadMagic {
		return 0, 0, 0, false
	}
	spanID = binary.BigEndian.Uint64(data[8:16])
	parentID = binary.BigEndian.Uint64(data[16:24])
	enterT = math.Float64frombits(binary.BigEndian.Uint64(data[24:32]))
	return spanID, parentID, enterT, true
}

var _ mpi.Tool = (*Recorder)(nil)
var _ mpi.FaultObserver = (*Recorder)(nil)
