package export_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/convolution"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/mpi"
	"repro/internal/prof"
)

// TestConvolutionP64BothTools is the subsystem's acceptance run: the §5.1
// convolution at p=64 with the reference profiler and the exporter chained
// on one tool list. It checks (1) a Perfetto-loadable trace with 64 rank
// tracks and balanced nested slices, (2) Prometheus families
// section_time_seconds / section_imbalance_seconds present per section,
// and (3) the Fig. 3 metrics agreeing between the two tools — chaining
// must not perturb measurements.
func TestConvolutionP64BothTools(t *testing.T) {
	if testing.Short() {
		t.Skip("p=64 acceptance run skipped in -short mode")
	}
	opts := experiments.LiveOptions{
		Experiment: "conv",
		Ranks:      64,
		Steps:      6,
		Scale:      32,
		Seed:       2017,
	}
	seq, err := experiments.SeqBaseline(opts)
	if err != nil {
		t.Fatal(err)
	}
	profiler := prof.New()
	rec := export.NewRecorder(export.Options{
		Messages:    true,
		Collectives: true,
		SeqTime:     seq,
	})
	opts.Tools = []mpi.Tool{profiler, rec}
	rep, err := experiments.RunLive(opts)
	if err != nil {
		t.Fatal(err)
	}

	// (1) Perfetto trace: 64 rank tracks, balanced nested slices.
	var trace bytes.Buffer
	if err := rec.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, trace.Bytes())
	tracks := validateTraceEvents(t, events)
	rankTracks := map[int]bool{}
	for k := range tracks {
		rankTracks[k[0]] = true
	}
	if len(rankTracks) != 64 {
		t.Fatalf("trace has %d rank tracks with slices, want 64", len(rankTracks))
	}

	// (2) Prometheus families for every convolution section.
	var prom bytes.Buffer
	if err := rec.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, label := range convolution.Labels() {
		for _, family := range []string{"section_time_seconds", "section_imbalance_seconds"} {
			needle := family + `_count{comm="0",section="` + label + `"}`
			if !strings.Contains(out, needle) {
				t.Errorf("prometheus output missing %s", needle)
			}
		}
	}
	if !strings.Contains(out, "section_partial_speedup_bound") {
		t.Error("Eq. 6 bound family missing despite sequential baseline")
	}

	// (3) Fig. 3 metric parity between the chained tools.
	profile, err := profiler.Result()
	if err != nil {
		t.Fatal(err)
	}
	if profile.WallTime != rep.WallTime || rec.WallTime() != rep.WallTime {
		t.Fatalf("wall times diverge: prof %g, export %g, report %g",
			profile.WallTime, rec.WallTime(), rep.WallTime)
	}
	recSecs := map[string]export.SectionSnapshot{}
	for _, s := range rec.Sections() {
		recSecs[s.Label] = s
	}
	near := func(a, b float64) bool {
		d := math.Abs(a - b)
		return d <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
	}
	for _, ps := range profile.Sections {
		rs, ok := recSecs[ps.Label]
		if !ok {
			t.Fatalf("recorder missing section %q", ps.Label)
		}
		if rs.Instances != ps.Instances {
			t.Errorf("%s: instances %d != %d", ps.Label, rs.Instances, ps.Instances)
		}
		if !near(rs.Total, ps.TotalTime()) || !near(rs.SpanTotal, ps.SpanTotal) ||
			!near(rs.EntryImbMean, ps.EntryImb.Mean()) || !near(rs.ImbMean, ps.Imb.Mean()) {
			t.Errorf("%s: Fig. 3 metrics diverge between tools", ps.Label)
		}
	}
	if rec.Dropped() != 0 {
		t.Fatalf("acceptance run dropped %d events", rec.Dropped())
	}
}
