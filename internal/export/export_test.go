package export_test

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/export"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
)

// runWorkload executes a small deterministic program — nested sections,
// skewed compute, p2p ring traffic and a barrier — with the given tools.
func runWorkload(t *testing.T, p int, seed uint64, tools ...mpi.Tool) *mpi.Report {
	t.Helper()
	cfg := mpi.Config{
		Ranks:         p,
		Model:         machine.NehalemCluster(),
		Seed:          seed,
		Tools:         tools,
		CheckSections: true,
		Timeout:       2 * time.Minute,
	}
	rep, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		for step := 0; step < 3; step++ {
			err := c.Section("OUTER", func() error {
				if err := c.Section("COMPUTE", func() error {
					c.Compute(mpi.WorkUnit{Flops: (1 + float64(c.Rank())/4) * 1e8})
					return nil
				}); err != nil {
					return err
				}
				return c.Section("RING", func() error {
					dst := (c.Rank() + 1) % c.Size()
					src := (c.Rank() - 1 + c.Size()) % c.Size()
					_, _, err := c.Sendrecv(dst, step, []byte("halo"), src, step)
					return err
				})
			})
			if err != nil {
				return err
			}
			if err := c.Section("SYNC", c.Barrier); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRecorderAggregates(t *testing.T) {
	rec := export.NewRecorder(export.Options{Messages: true, Collectives: true})
	rep := runWorkload(t, 4, 7, rec)

	if !rec.Finished() {
		t.Fatal("recorder not finalized")
	}
	if got := rec.WallTime(); got != rep.WallTime {
		t.Fatalf("wall time %g != report %g", got, rep.WallTime)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("unexpected drops: %d", rec.Dropped())
	}
	if w := rec.Warning(); w != "" {
		t.Fatalf("unexpected warning %q", w)
	}

	secs := rec.Sections()
	byLabel := map[string]export.SectionSnapshot{}
	for _, s := range secs {
		byLabel[s.Label] = s
	}
	for _, label := range []string{"MPI_MAIN", "OUTER", "COMPUTE", "RING", "SYNC"} {
		s, ok := byLabel[label]
		if !ok {
			t.Fatalf("section %q missing from snapshot", label)
		}
		want := 3
		if label == "MPI_MAIN" {
			want = 1
		}
		if s.Instances != want {
			t.Errorf("%s: instances = %d, want %d", label, s.Instances, want)
		}
		if s.Ranks != 4 {
			t.Errorf("%s: ranks = %d, want 4", label, s.Ranks)
		}
		if s.Total <= 0 {
			t.Errorf("%s: nonpositive total %g", label, s.Total)
		}
		if s.LastInstance == nil {
			t.Errorf("%s: missing last-instance Fig. 3 metrics", label)
		} else if s.LastInstance.Tmax < s.LastInstance.Tmin {
			t.Errorf("%s: Tmax %g < Tmin %g", label, s.LastInstance.Tmax, s.LastInstance.Tmin)
		}
		if len(s.PerRankTotal) != 4 {
			t.Errorf("%s: per-rank totals %v", label, s.PerRankTotal)
		}
	}
	// COMPUTE is deliberately skewed: entry imbalance of the following
	// sections must be visible.
	if byLabel["SYNC"].EntryImbMean <= 0 {
		t.Errorf("SYNC entry imbalance = %g, want > 0 for skewed compute",
			byLabel["SYNC"].EntryImbMean)
	}
	// OUTER nests COMPUTE+RING: its exclusive time must be far below its
	// inclusive time.
	if out := byLabel["OUTER"]; out.ExclTotal >= out.Total {
		t.Errorf("OUTER excl %g >= total %g", out.ExclTotal, out.Total)
	}
	if byLabel["OUTER"].Parent != "MPI_MAIN" || byLabel["COMPUTE"].Parent != "OUTER" {
		t.Errorf("parent links wrong: OUTER<-%q COMPUTE<-%q",
			byLabel["OUTER"].Parent, byLabel["COMPUTE"].Parent)
	}
}

func TestRecorderPayloadStamping(t *testing.T) {
	rec := export.NewRecorder(export.Options{})
	runWorkload(t, 2, 3, rec)
	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	for _, sp := range spans {
		if sp.Collective {
			continue
		}
		id, parent, enterT, ok := export.DecodePayload(sp.Data)
		if !ok {
			t.Fatalf("span %q: payload not stamped", sp.Label)
		}
		if id != sp.ID || parent != sp.Parent {
			t.Fatalf("span %q: payload ids (%d,%d) != span ids (%d,%d)",
				sp.Label, id, parent, sp.ID, sp.Parent)
		}
		if enterT != sp.Start {
			t.Fatalf("span %q: payload enter %g != start %g", sp.Label, enterT, sp.Start)
		}
	}
}

func TestRecorderSpanCapCountsDrops(t *testing.T) {
	rec := export.NewRecorder(export.Options{MaxSpans: 5})
	runWorkload(t, 4, 1, rec)
	if len(rec.Spans()) != 5 {
		t.Fatalf("retained %d spans, want 5", len(rec.Spans()))
	}
	if rec.Dropped() == 0 {
		t.Fatal("drops not counted")
	}
	if w := rec.Warning(); !strings.Contains(w, "dropped") {
		t.Fatalf("warning missing: %q", w)
	}
	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped_events ") ||
		strings.Contains(buf.String(), "dropped_events 0\n") {
		t.Fatalf("prometheus output does not surface drops:\n%s", buf.String())
	}
}

// TestParityWithProfiler chains the reference profiler and the exporter on
// one run and requires the Fig. 3 metrics to agree — the acceptance
// criterion that the PMPI-analogue chaining composes without perturbing
// either tool.
func TestParityWithProfiler(t *testing.T) {
	profiler := prof.New()
	rec := export.NewRecorder(export.Options{Messages: true, Collectives: true})
	runWorkload(t, 8, 42, profiler, rec)

	profile, err := profiler.Result()
	if err != nil {
		t.Fatal(err)
	}
	recSecs := map[string]export.SectionSnapshot{}
	for _, s := range rec.Sections() {
		recSecs[s.Label] = s
	}
	if len(profile.Sections) != len(recSecs) {
		t.Fatalf("profiler has %d sections, recorder %d", len(profile.Sections), len(recSecs))
	}
	// Both tools receive identical virtual timestamps; only the fold order
	// across ranks may differ, so Welford-derived means are compared to a
	// tight relative tolerance and the order-free quantities exactly.
	near := func(a, b float64) bool {
		d := math.Abs(a - b)
		return d <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
	}
	for _, ps := range profile.Sections {
		rs, ok := recSecs[ps.Label]
		if !ok {
			t.Fatalf("recorder missing section %q", ps.Label)
		}
		if rs.Instances != ps.Instances {
			t.Errorf("%s: instances %d != %d", ps.Label, rs.Instances, ps.Instances)
		}
		for r := range ps.PerRankTotal {
			if ps.PerRankTotal[r] != rs.PerRankTotal[r] {
				t.Errorf("%s rank %d: per-rank total %g != %g",
					ps.Label, r, rs.PerRankTotal[r], ps.PerRankTotal[r])
			}
		}
		if !near(rs.Total, ps.TotalTime()) {
			t.Errorf("%s: total %g != %g", ps.Label, rs.Total, ps.TotalTime())
		}
		if !near(rs.ExclTotal, ps.TotalExclusive()) {
			t.Errorf("%s: excl %g != %g", ps.Label, rs.ExclTotal, ps.TotalExclusive())
		}
		if !near(rs.SpanTotal, ps.SpanTotal) {
			t.Errorf("%s: span %g != %g", ps.Label, rs.SpanTotal, ps.SpanTotal)
		}
		if !near(rs.EntryImbMean, ps.EntryImb.Mean()) {
			t.Errorf("%s: entry imb %g != %g", ps.Label, rs.EntryImbMean, ps.EntryImb.Mean())
		}
		if !near(rs.ImbMean, ps.Imb.Mean()) {
			t.Errorf("%s: imb %g != %g", ps.Label, rs.ImbMean, ps.Imb.Mean())
		}
		if !near(rs.LoadImbalance, ps.LoadImbalance()) {
			t.Errorf("%s: load imb %g != %g", ps.Label, rs.LoadImbalance, ps.LoadImbalance())
		}
	}
}

// TestChainingDoesNotPerturb runs the same seeded workload with and
// without the exporter chained after the profiler: the virtual-time
// measurements must be bit-identical — tools observe, they never steer.
func TestChainingDoesNotPerturb(t *testing.T) {
	alone := prof.New()
	repAlone := runWorkload(t, 4, 99, alone)

	chainedProf := prof.New()
	rec := export.NewRecorder(export.Options{Messages: true, Collectives: true})
	repChained := runWorkload(t, 4, 99, chainedProf, rec)

	if repAlone.WallTime != repChained.WallTime {
		t.Fatalf("wall time perturbed: %g != %g", repAlone.WallTime, repChained.WallTime)
	}
	pa, err := alone.Result()
	if err != nil {
		t.Fatal(err)
	}
	pc, err := chainedProf.Result()
	if err != nil {
		t.Fatal(err)
	}
	for _, sa := range pa.Sections {
		sc := pc.Section(sa.Label)
		if sc == nil {
			t.Fatalf("section %q lost", sa.Label)
		}
		if sa.TotalTime() != sc.TotalTime() || sa.Instances != sc.Instances {
			t.Errorf("%s: measurements perturbed (%g/%d vs %g/%d)", sa.Label,
				sa.TotalTime(), sa.Instances, sc.TotalTime(), sc.Instances)
		}
	}
}

// TestLiveScrapeWhileRunning exercises the streaming aggregator: a
// goroutine scrapes Prometheus text and section snapshots concurrently
// with the executing ranks. Run under -race this is the two-consumer
// concurrency guarantee of the tool chain.
func TestLiveScrapeWhileRunning(t *testing.T) {
	rec := export.NewRecorder(export.Options{Messages: true, Collectives: true})
	profiler := prof.New()
	stop := make(chan struct{})
	scraped := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				scraped <- n
				return
			default:
			}
			var buf bytes.Buffer
			if err := rec.WritePrometheus(&buf); err != nil {
				t.Error(err)
			}
			rec.Sections()
			rec.WallTime()
			n++
		}
	}()
	runWorkload(t, 6, 11, profiler, rec)
	close(stop)
	if n := <-scraped; n == 0 {
		t.Fatal("scraper never ran")
	}
	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, family := range []string{
		"section_time_seconds", "section_imbalance_seconds",
		"section_instances_total", "dropped_events", "export_run_finished 1",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("prometheus output missing %q", family)
		}
	}
}
