package export

import (
	"fmt"
	"io"

	"repro/internal/pop"
)

// WriteEfficiencyPrometheus renders a POP efficiency tree (internal/pop)
// as section_efficiency_* gauges in the same text exposition format as
// Recorder.WritePrometheus; cmd/secmon appends the families to /metrics.
//
// The degraded flag is always emitted so dashboards can gate on it; on a
// degraded (faulted) run the per-section factor samples are withheld —
// the scrape-side analogue of the JSON null factors — and only the flag
// and the binding-section marker remain. The binding family carries the
// Eq. 6 bound holder's dominant factor as a label, so a single series,
// section_efficiency_binding, names both the section that caps the
// speedup and why.
func WriteEfficiencyPrometheus(w io.Writer, t *pop.Tree) error {
	degraded := 0
	if t.Degraded {
		degraded = 1
	}
	if _, err := fmt.Fprintf(w, "# HELP section_efficiency_degraded Whether the run is degraded by injected faults (efficiency factors withheld).\n# TYPE section_efficiency_degraded gauge\nsection_efficiency_degraded %d\n", degraded); err != nil {
		return err
	}
	families := []struct {
		name, help string
		get        func(*pop.Factors) float64
	}{
		{"parallel", "POP parallel efficiency (load_balance x communication) per section.", func(f *pop.Factors) float64 { return f.Parallel }},
		{"load_balance", "POP load-balance efficiency (mean/max useful time) per section.", func(f *pop.Factors) float64 { return f.LoadBalance }},
		{"communication", "POP communication efficiency (transfer x serialisation) per section.", func(f *pop.Factors) float64 { return f.Comm }},
		{"transfer", "POP transfer efficiency (ideal-network runtime over real) per section.", func(f *pop.Factors) float64 { return f.Transfer }},
		{"serialisation", "POP serialisation efficiency (dependency-chain losses) per section.", func(f *pop.Factors) float64 { return f.Serialisation }},
		{"thread", "POP thread efficiency (omp_region x serial_region) per section.", func(f *pop.Factors) float64 { return f.Thread }},
		{"omp_region", "POP OpenMP-region efficiency (useful share of thread time in parallel regions) per section.", func(f *pop.Factors) float64 { return f.OmpRegion }},
		{"serial_region", "POP serial-region efficiency (capacity lost to threads idling outside parallel regions) per section.", func(f *pop.Factors) float64 { return f.SerialRegion }},
	}
	for _, fam := range families {
		full := "section_efficiency_" + fam.name
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", full, fam.help, full); err != nil {
			return err
		}
		for i := range t.Sections {
			se := &t.Sections[i]
			if se.Factors == nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{section=\"%s\"} %g\n", full, promEscape(se.Section), fam.get(se.Factors)); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprint(w, "# HELP section_efficiency_binding The Eq. 6 bound-holding section's dominant (lowest) efficiency factor.\n# TYPE section_efficiency_binding gauge\n"); err != nil {
		return err
	}
	if b := t.Binding; b != nil && b.Factors != nil {
		name, v := b.Factors.Dominant()
		if _, err := fmt.Fprintf(w, "section_efficiency_binding{section=\"%s\",factor=\"%s\"} %g\n",
			promEscape(b.Section), promEscape(name), v); err != nil {
			return err
		}
	}
	return nil
}
