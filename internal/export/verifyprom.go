package export

import (
	"fmt"
	"io"
	"sort"
)

// WriteVerifyPrometheus renders the runtime verifier's per-class violation
// counters in the same text exposition format as Recorder.WritePrometheus.
// It takes the counts map (verify.Tool.Counts) rather than the tool itself
// so the export layer stays independent of the verifier package; cmd/secmon
// appends this family to /metrics when a run was launched with verify=1.
//
// The family is always emitted — a clean run scrapes as an explicit zero
// (the `class="any"` aggregate), not an absent series, so alerting on
// increase() works from the first scrape.
func WriteVerifyPrometheus(w io.Writer, counts map[string]uint64) error {
	if _, err := fmt.Fprint(w, "# HELP section_verify_violations_total Section/collective contract violations detected by the runtime verifier, by class.\n# TYPE section_verify_violations_total counter\n"); err != nil {
		return err
	}
	classes := make([]string, 0, len(counts))
	var total uint64
	for class, n := range counts {
		classes = append(classes, class)
		total += n
	}
	sort.Strings(classes)
	if _, err := fmt.Fprintf(w, "section_verify_violations_total{class=\"any\"} %d\n", total); err != nil {
		return err
	}
	for _, class := range classes {
		if _, err := fmt.Fprintf(w, "section_verify_violations_total{class=\"%s\"} %d\n", promEscape(class), counts[class]); err != nil {
			return err
		}
	}
	return nil
}
