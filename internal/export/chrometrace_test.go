package export_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/export"
)

var update = flag.Bool("update", false, "rewrite golden files")

// decodeTrace unmarshals a Chrome trace JSON document.
func decodeTrace(t *testing.T, data []byte) (events []map[string]any) {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	return doc.TraceEvents
}

// validateTraceEvents enforces the trace_event schema subset every
// consumer (Perfetto, chrome://tracing, catapult) relies on: required
// keys on every event, and balanced, label-matched B/E pairs per tid.
func validateTraceEvents(t *testing.T, events []map[string]any) (tracks map[[2]int]bool) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	type tidKey = [2]int
	stacks := map[tidKey][]string{}
	tracks = map[tidKey]bool{}
	for i, e := range events {
		for _, key := range []string{"ph", "ts", "pid", "tid", "name"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event %d missing required key %q: %v", i, key, e)
			}
		}
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		k := tidKey{int(e["pid"].(float64)), int(e["tid"].(float64))}
		switch ph {
		case "B":
			stacks[k] = append(stacks[k], name)
			tracks[k] = true
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				t.Fatalf("event %d: E %q on pid/tid %v with empty stack", i, name, k)
			}
			if top := st[len(st)-1]; top != name {
				t.Fatalf("event %d: E %q does not match open slice %q", i, name, top)
			}
			stacks[k] = st[:len(st)-1]
		case "M", "C", "s", "f", "i":
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ph)
		}
	}
	for k, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("pid/tid %v: %d unclosed B events %v", k, len(st), st)
		}
	}
	return tracks
}

func TestChromeTraceSchema(t *testing.T) {
	rec := export.NewRecorder(export.Options{Messages: true, Collectives: true})
	runWorkload(t, 4, 5, rec)

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	validateTraceEvents(t, events)

	var sawFlowStart, sawFlowEnd, sawCounter, sawMeta bool
	flowIDs := map[string]int{}
	for _, e := range events {
		switch e["ph"] {
		case "s":
			sawFlowStart = true
			flowIDs[e["id"].(string)]++
		case "f":
			sawFlowEnd = true
			flowIDs[e["id"].(string)]++
		case "C":
			sawCounter = true
			if _, ok := e["args"].(map[string]any)["seconds"]; !ok {
				t.Fatalf("counter without seconds arg: %v", e)
			}
		case "M":
			sawMeta = true
		}
	}
	if !sawFlowStart || !sawFlowEnd {
		t.Fatal("p2p flow events missing")
	}
	for id, n := range flowIDs {
		if n != 2 {
			t.Fatalf("flow %s has %d halves, want 2", id, n)
		}
	}
	if !sawCounter {
		t.Fatal("imbalance counter track missing")
	}
	if !sawMeta {
		t.Fatal("process_name metadata missing")
	}
}

// TestChromeTraceGolden pins the exact serialized trace of a fully
// deterministic run. The golden file is itself the schema example shipped
// with the repo; regenerate with `go test ./internal/export -update`.
func TestChromeTraceGolden(t *testing.T) {
	rec := export.NewRecorder(export.Options{
		Messages:    true,
		Collectives: true,
		TraceID:     export.TraceID{0xde, 0xad, 0xbe, 0xef, 5: 1, 15: 2},
	})
	runWorkload(t, 2, 12345, rec)

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_chrome_trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace diverges from golden file %s;\nrun `go test ./internal/export -run Golden -update` after intended format changes", golden)
	}
	validateTraceEvents(t, decodeTrace(t, want))
}

func TestOTLPExport(t *testing.T) {
	id := export.TraceID{1, 2, 3}
	rec := export.NewRecorder(export.Options{TraceID: id, Collectives: true})
	runWorkload(t, 2, 9, rec)

	var buf bytes.Buffer
	if err := rec.WriteOTLP(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Spans []struct {
					TraceID      string `json:"traceId"`
					SpanID       string `json:"spanId"`
					ParentSpanID string `json:"parentSpanId"`
					Name         string `json:"name"`
					Start        string `json:"startTimeUnixNano"`
					End          string `json:"endTimeUnixNano"`
					Attributes   []struct {
						Key string `json:"key"`
					} `json:"attributes"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("OTLP JSON does not parse: %v", err)
	}
	if len(doc.ResourceSpans) != 2 {
		t.Fatalf("want one resource per rank (2), got %d", len(doc.ResourceSpans))
	}
	ids := map[string]string{} // spanId -> name
	var total int
	for _, rs := range doc.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				total++
				if sp.TraceID != id.String() {
					t.Fatalf("span %q carries trace %s, want %s", sp.Name, sp.TraceID, id)
				}
				if sp.SpanID == "" || sp.Start == "" || sp.End == "" {
					t.Fatalf("span %q missing identity/time: %+v", sp.Name, sp)
				}
				ids[sp.SpanID] = sp.Name
			}
		}
	}
	if total == 0 {
		t.Fatal("no spans exported")
	}
	// Every parent link must resolve to an exported span, and every
	// non-root must ultimately nest under MPI_MAIN.
	for _, rs := range doc.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				if sp.ParentSpanID == "" {
					if sp.Name != "MPI_MAIN" {
						t.Fatalf("root span is %q, want MPI_MAIN", sp.Name)
					}
					continue
				}
				if _, ok := ids[sp.ParentSpanID]; !ok {
					t.Fatalf("span %q has dangling parent %s", sp.Name, sp.ParentSpanID)
				}
				hasToolData := false
				for _, a := range sp.Attributes {
					if a.Key == "mpi.tool_data" {
						hasToolData = true
					}
				}
				if !hasToolData && sp.Name != "Barrier" {
					t.Fatalf("section span %q lacks tool_data attribute", sp.Name)
				}
			}
		}
	}
}
