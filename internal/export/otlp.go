package export

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file renders completed spans in the OTLP/JSON shape (the
// ExportTraceServiceRequest layout of the OpenTelemetry protocol): one
// trace per run, one span per section instance per rank, parent links from
// the nesting stack, and the raw 32-byte tool-data payload exposed as span
// attributes. It is "OTLP-style": the JSON matches the proto field names
// (resourceSpans / scopeSpans / spans, string-encoded 64-bit integers,
// hex-encoded ids) without depending on the OpenTelemetry SDK — the
// container already holds everything the standard library offers, and
// nothing more is needed.

type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

func attrStr(key, v string) otlpAttr { return otlpAttr{Key: key, Value: otlpValue{StringValue: &v}} }
func attrF64(key string, v float64) otlpAttr {
	return otlpAttr{Key: key, Value: otlpValue{DoubleValue: &v}}
}
func attrInt(key string, v int64) otlpAttr {
	s := fmt.Sprintf("%d", v)
	return otlpAttr{Key: key, Value: otlpValue{IntValue: &s}}
}
func attrBool(key string, v bool) otlpAttr {
	return otlpAttr{Key: key, Value: otlpValue{BoolValue: &v}}
}

type otlpSpan struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	ParentSpanID      string     `json:"parentSpanId,omitempty"`
	Name              string     `json:"name"`
	Kind              int        `json:"kind"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []otlpAttr `json:"attributes"`
}

type otlpScope struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResource struct {
	Attributes []otlpAttr `json:"attributes"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpDoc struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

// spanKindInternal is OTLP's SPAN_KIND_INTERNAL.
const spanKindInternal = 1

// spanIDHex renders a span id the OTLP way: 8 bytes, 16 hex digits.
func spanIDHex(id uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return hex.EncodeToString(b[:])
}

// virtualUnixNano maps a virtual-time second to a nanosecond tick string.
// The run starts at virtual zero; OTLP consumers only need monotonicity
// and correct durations, both of which the virtual clock guarantees.
func virtualUnixNano(t float64) string {
	if t < 0 {
		t = 0
	}
	return fmt.Sprintf("%d", uint64(t*1e9))
}

// WriteOTLP renders every completed span recorded so far as one OTLP-style
// trace document. Each MPI rank becomes one resource (service.instance.id
// = its world rank) so per-rank span trees group the way OTLP backends
// expect; parent links reproduce the section nesting stack; the 32-byte
// Fig. 2 tool-data payload rides along as span attributes, both raw (hex)
// and decoded.
func (r *Recorder) WriteOTLP(w io.Writer) error {
	r.mu.Lock()
	spans := append([]Span(nil), r.spans...)
	traceID := r.traceID.String()
	r.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Rank != spans[j].Rank {
			return spans[i].Rank < spans[j].Rank
		}
		return spans[i].EnterSeq < spans[j].EnterSeq
	})

	byRank := map[int][]otlpSpan{}
	var rankOrder []int
	for _, sp := range spans {
		o := otlpSpan{
			TraceID:           traceID,
			SpanID:            spanIDHex(sp.ID),
			Name:              sp.Label,
			Kind:              spanKindInternal,
			StartTimeUnixNano: virtualUnixNano(sp.Start),
			EndTimeUnixNano:   virtualUnixNano(sp.End),
			Attributes: []otlpAttr{
				attrInt("mpi.comm", sp.Comm),
				attrInt("mpi.comm_rank", int64(sp.CommRank)),
				attrInt("mpi.world_rank", int64(sp.Rank)),
				attrBool("mpi.collective", sp.Collective),
				attrF64("section.exclusive_seconds", sp.Excl),
			},
		}
		if sp.Parent != 0 {
			o.ParentSpanID = spanIDHex(sp.Parent)
		}
		if !sp.Collective {
			o.Attributes = append(o.Attributes,
				attrStr("mpi.tool_data", hex.EncodeToString(sp.Data[:])))
			if id, parent, enterT, ok := DecodePayload(sp.Data); ok {
				o.Attributes = append(o.Attributes,
					attrStr("mpi.tool_data.span_id", spanIDHex(id)),
					attrStr("mpi.tool_data.parent_span_id", spanIDHex(parent)),
					attrF64("mpi.tool_data.enter_seconds", enterT))
			}
		}
		if _, seen := byRank[sp.Rank]; !seen {
			rankOrder = append(rankOrder, sp.Rank)
		}
		byRank[sp.Rank] = append(byRank[sp.Rank], o)
	}

	doc := otlpDoc{}
	for _, rank := range rankOrder {
		doc.ResourceSpans = append(doc.ResourceSpans, otlpResourceSpans{
			Resource: otlpResource{Attributes: []otlpAttr{
				attrStr("service.name", "mpi-sections"),
				attrStr("service.instance.id", fmt.Sprintf("rank-%d", rank)),
				attrInt("mpi.world_rank", int64(rank)),
			}},
			ScopeSpans: []otlpScopeSpans{{
				Scope: otlpScope{Name: "repro/internal/export", Version: "1"},
				Spans: byRank[rank],
			}},
		})
	}
	return json.NewEncoder(w).Encode(doc)
}
