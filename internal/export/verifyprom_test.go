package export

import (
	"strings"
	"testing"
)

func TestWriteVerifyPrometheus(t *testing.T) {
	var b strings.Builder
	if err := WriteVerifyPrometheus(&b, nil); err != nil {
		t.Fatal(err)
	}
	clean := b.String()
	if !strings.Contains(clean, "# TYPE section_verify_violations_total counter") ||
		!strings.Contains(clean, `section_verify_violations_total{class="any"} 0`) {
		t.Errorf("clean exposition missing the explicit zero:\n%s", clean)
	}

	b.Reset()
	counts := map[string]uint64{
		"section-mismatch":    2,
		"section-unclosed":    1,
		"collective-order\"x": 1, // exercises label escaping
	}
	if err := WriteVerifyPrometheus(&b, counts); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, needle := range []string{
		`section_verify_violations_total{class="any"} 4`,
		`section_verify_violations_total{class="section-mismatch"} 2`,
		`section_verify_violations_total{class="section-unclosed"} 1`,
		`section_verify_violations_total{class="collective-order\"x"} 1`,
	} {
		if !strings.Contains(got, needle) {
			t.Errorf("exposition missing %q:\n%s", needle, got)
		}
	}
	// Classes render in sorted order for stable diffs.
	if strings.Index(got, "section-mismatch") > strings.Index(got, "section-unclosed") {
		t.Errorf("classes not sorted:\n%s", got)
	}
}
