package pop

import (
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/trace"
)

// Ground-truth traces: two-rank streams built by hand so every POP factor
// is analytically known, exercising each leaf of the tree in isolation.
// All use one section "W" per rank; waitstate attributes waits to the
// section open at the receive's post time.

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) <= eps }

// section wraps inner events in a W span on one rank.
func section(rank int, t0, t1 float64, inner ...trace.Event) []trace.Event {
	evs := []trace.Event{{T: t0, Rank: rank, Kind: trace.KindSectionEnter, Comm: 1, Label: "W"}}
	evs = append(evs, inner...)
	return append(evs, trace.Event{T: t1, Rank: rank, Kind: trace.KindSectionLeave, Comm: 1, Label: "W"})
}

// imbalanceTrace: rank 0 computes for 10 s, rank 1 for 5 s, no messages.
// u = {10, 5}: LoadBalance = 7.5/10 = 0.75, Comm = 1, Parallel = 0.75.
func imbalanceTrace() []trace.Event {
	return append(section(0, 0, 10), section(1, 0, 5)...)
}

// transferTrace: both ranks compute 5 s, then block 5 s on a receive whose
// sender posted on time (SendT = PostT) — pure transfer wait. u = {5, 5},
// Tmax = 10, Tideal = 5: LB = 1, Transfer = 0.5, Serialisation = 1.
func transferTrace() []trace.Event {
	var evs []trace.Event
	for r := 0; r < 2; r++ {
		peer := 1 - r
		evs = append(evs, section(r, 0, 10,
			trace.Event{T: 5, Rank: r, Kind: trace.KindSend, Comm: 1, Peer: peer, Tag: 1, Bytes: 8},
			trace.Event{T: 10, Rank: r, Kind: trace.KindRecv, Comm: 1, Peer: peer, Tag: 1, Bytes: 8,
				SendT: 5, PostT: 5, ArrT: 10},
		)...)
	}
	return evs
}

// serialTrace: a dependency chain. Rank 0 computes [0,4], sends, then waits
// [4,8] for rank 1's reply (sent at 8 — pure late-sender). Rank 1 computes
// [0,1], waits [1,4] for rank 0's message (sent at 4 — late-sender),
// computes [4,8], sends. u = {4, 5}: LB = 4.5/5 = 0.9, Comm = 5/8 = 0.625,
// Transfer = 1 (no transfer wait), Serialisation = 0.625.
func serialTrace() []trace.Event {
	evs := section(0, 0, 8,
		trace.Event{T: 4, Rank: 0, Kind: trace.KindSend, Comm: 1, Peer: 1, Tag: 1, Bytes: 8},
		trace.Event{T: 8, Rank: 0, Kind: trace.KindRecv, Comm: 1, Peer: 1, Tag: 2, Bytes: 8,
			SendT: 8, PostT: 4, ArrT: 8},
	)
	return append(evs, section(1, 0, 8,
		trace.Event{T: 4, Rank: 1, Kind: trace.KindRecv, Comm: 1, Peer: 0, Tag: 1, Bytes: 8,
			SendT: 4, PostT: 1, ArrT: 4},
		trace.Event{T: 8, Rank: 1, Kind: trace.KindSend, Comm: 1, Peer: 0, Tag: 2, Bytes: 8},
	)...)
}

// hybridTrace: one rank, 10 s section, one 4-thread region spanning [0,8]
// whose single-thread time is 24 s. Serial part S = 2, busy = 4×8+2 = 34,
// useful = 24+2 = 26, capacity = 4×10 = 40: OmpRegion = 26/34,
// SerialRegion = 34/40 = 0.85, Thread = 26/40 = 0.65.
func hybridTrace() []trace.Event {
	return section(0, 0, 10,
		trace.Event{T: 8, Rank: 0, Kind: trace.KindOmpRegion, Comm: 1, Bytes: 4, PostT: 0, ArrT: 24},
	)
}

// checkIdentities asserts the multiplicative structure and [0,1] range of
// one scope's factors — the satellite property: ParallelEff = LoadBalance ×
// CommEff within 1e-9, and every factor a true efficiency.
func checkIdentities(t *testing.T, scope string, f *Factors) {
	t.Helper()
	if f == nil {
		return
	}
	for name, v := range map[string]float64{
		"parallel": f.Parallel, "load_balance": f.LoadBalance, "communication": f.Comm,
		"transfer": f.Transfer, "serialisation": f.Serialisation, "thread": f.Thread,
		"omp_region": f.OmpRegion, "serial_region": f.SerialRegion, "total": f.Total,
	} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			t.Errorf("%s: %s = %v, want within [0,1]", scope, name, v)
		}
	}
	if !approx(f.Parallel, f.LoadBalance*f.Comm) {
		t.Errorf("%s: parallel %v != load_balance %v x comm %v", scope, f.Parallel, f.LoadBalance, f.Comm)
	}
	if !approx(f.Comm, f.Transfer*f.Serialisation) {
		t.Errorf("%s: comm %v != transfer %v x serialisation %v", scope, f.Comm, f.Transfer, f.Serialisation)
	}
	if !approx(f.Thread, f.OmpRegion*f.SerialRegion) {
		t.Errorf("%s: thread %v != omp_region %v x serial_region %v", scope, f.Thread, f.OmpRegion, f.SerialRegion)
	}
	if !approx(f.Total, f.Parallel*f.Thread) {
		t.Errorf("%s: total %v != parallel %v x thread %v", scope, f.Total, f.Parallel, f.Thread)
	}
}

// checkTree runs the identity checks over every scope of a tree.
func checkTree(t *testing.T, tree *Tree) {
	t.Helper()
	if tree.Global != nil {
		checkIdentities(t, "(run)", tree.Global.Factors)
	}
	for i := range tree.Sections {
		checkIdentities(t, tree.Sections[i].Section, tree.Sections[i].Factors)
	}
	for _, iv := range tree.Intervals {
		checkIdentities(t, "interval", iv.Factors)
	}
}

func analyzeT(t *testing.T, evs []trace.Event, opts Options) *Tree {
	t.Helper()
	tree, err := Analyze(evs, opts)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	checkTree(t, tree)
	return tree
}

func TestLoadImbalanceGroundTruth(t *testing.T) {
	tree := analyzeT(t, imbalanceTrace(), Options{})
	f := tree.Section("W").Factors
	if f == nil {
		t.Fatal("section W: nil factors on a clean run")
	}
	if !approx(f.LoadBalance, 0.75) || !approx(f.Comm, 1) || !approx(f.Parallel, 0.75) {
		t.Errorf("imbalance: LB %v Comm %v Parallel %v, want 0.75 / 1 / 0.75", f.LoadBalance, f.Comm, f.Parallel)
	}
	if tree.Section("W").Dominant != "load-balance" {
		t.Errorf("dominant = %q, want load-balance", tree.Section("W").Dominant)
	}
	if want := "W binds at p=2: load-balance efficiency 0.75"; tree.Diagnosis != want {
		t.Errorf("diagnosis = %q, want %q", tree.Diagnosis, want)
	}
}

func TestTransferGroundTruth(t *testing.T) {
	tree := analyzeT(t, transferTrace(), Options{})
	se := tree.Section("W")
	f := se.Factors
	if !approx(f.LoadBalance, 1) || !approx(f.Transfer, 0.5) || !approx(f.Serialisation, 1) ||
		!approx(f.Comm, 0.5) || !approx(f.Parallel, 0.5) {
		t.Errorf("transfer: got %+v, want LB 1, Transfer 0.5, Ser 1, Comm 0.5, Parallel 0.5", *f)
	}
	if se.Dominant != "transfer" {
		t.Errorf("dominant = %q, want transfer", se.Dominant)
	}
	if !approx(se.TMax, 10) || !approx(se.TIdeal, 5) || !approx(se.UsefulMax, 5) {
		t.Errorf("timings: Tmax %v Tideal %v Umax %v, want 10 / 5 / 5", se.TMax, se.TIdeal, se.UsefulMax)
	}
}

func TestSerialisationGroundTruth(t *testing.T) {
	tree := analyzeT(t, serialTrace(), Options{})
	se := tree.Section("W")
	f := se.Factors
	if !approx(f.LoadBalance, 0.9) || !approx(f.Transfer, 1) || !approx(f.Serialisation, 0.625) ||
		!approx(f.Comm, 0.625) || !approx(f.Parallel, 0.5625) {
		t.Errorf("serialisation: got %+v, want LB 0.9, Transfer 1, Ser 0.625, Comm 0.625, Parallel 0.5625", *f)
	}
	if se.Dominant != "serialisation" {
		t.Errorf("dominant = %q, want serialisation", se.Dominant)
	}
	if !strings.Contains(tree.Diagnosis, "W binds at p=2: serialisation efficiency 0.62") {
		t.Errorf("diagnosis = %q", tree.Diagnosis)
	}
}

func TestHybridGroundTruth(t *testing.T) {
	tree := analyzeT(t, hybridTrace(), Options{})
	if tree.Threads != 4 {
		t.Errorf("Threads = %d, want 4", tree.Threads)
	}
	f := tree.Section("W").Factors
	if !approx(f.OmpRegion, 26.0/34.0) || !approx(f.SerialRegion, 0.85) || !approx(f.Thread, 0.65) {
		t.Errorf("hybrid: OmpRegion %v SerialRegion %v Thread %v, want %v / 0.85 / 0.65",
			f.OmpRegion, f.SerialRegion, f.Thread, 26.0/34.0)
	}
	if !approx(f.Parallel, 1) || !approx(f.Total, 0.65) {
		t.Errorf("hybrid: Parallel %v Total %v, want 1 / 0.65", f.Parallel, f.Total)
	}
	if d := tree.Section("W").Dominant; d != "serial-region" && d != "omp-region" {
		t.Errorf("dominant = %q, want a thread leaf", d)
	}
}

func TestSeqTimeAddsBound(t *testing.T) {
	tree := analyzeT(t, transferTrace(), Options{SeqTime: 40})
	se := tree.Section("W")
	// Eq. 6: B = T_seq / avg-per-proc = 40 / 10 = 4.
	if !approx(se.Bound, 4) {
		t.Errorf("bound = %v, want 4", se.Bound)
	}
	if !strings.Contains(tree.Diagnosis, "Eq. 6 bound") {
		t.Errorf("diagnosis %q lacks the Eq. 6 join", tree.Diagnosis)
	}
}

// TestIntervalsGroundTruth splits the transfer trace in two: the first half
// is pure compute (parallel 1), the second pure transfer wait (parallel 0).
func TestIntervalsGroundTruth(t *testing.T) {
	tree := analyzeT(t, transferTrace(), Options{Intervals: 2})
	if len(tree.Intervals) != 2 {
		t.Fatalf("got %d intervals, want 2", len(tree.Intervals))
	}
	i0, i1 := tree.Intervals[0], tree.Intervals[1]
	if !approx(i0.From, 0) || !approx(i0.To, 5) || !approx(i1.From, 5) || !approx(i1.To, 10) {
		t.Errorf("interval bounds: [%v,%v] [%v,%v], want [0,5] [5,10]", i0.From, i0.To, i1.From, i1.To)
	}
	if f := i0.Factors; !approx(f.Parallel, 1) {
		t.Errorf("interval 0 parallel = %v, want 1", f.Parallel)
	}
	if f := i1.Factors; !approx(f.Parallel, 0) || !approx(f.Transfer, 0) {
		t.Errorf("interval 1 parallel %v transfer %v, want 0 / 0", f.Parallel, f.Transfer)
	}
}

// TestDegradedRunWithholdsFactors: a fault event must null every factor
// object and switch the diagnosis to the degraded verdict.
func TestDegradedRunWithholdsFactors(t *testing.T) {
	evs := append(transferTrace(),
		trace.Event{T: 1, Rank: 0, Kind: trace.KindFault, Comm: 1, Label: "delay"})
	tree := analyzeT(t, evs, Options{Intervals: 2})
	if !tree.Degraded || tree.Faults != 1 {
		t.Fatalf("Degraded %v Faults %d, want true / 1", tree.Degraded, tree.Faults)
	}
	if tree.Global.Factors != nil {
		t.Error("global factors present on a degraded run")
	}
	for _, se := range tree.Sections {
		if se.Factors != nil {
			t.Errorf("section %s: factors present on a degraded run", se.Section)
		}
	}
	for _, iv := range tree.Intervals {
		if iv.Factors != nil {
			t.Error("interval factors present on a degraded run")
		}
	}
	if !strings.Contains(tree.Diagnosis, "degraded run") || !strings.Contains(tree.Diagnosis, "efficiencies withheld") {
		t.Errorf("diagnosis = %q, want the degraded verdict", tree.Diagnosis)
	}
}

func TestEmptyStreamIsAnError(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Fatal("Analyze(nil) succeeded, want error")
	}
}

// TestSmokeTraceProperties replays the committed recorded trace — a real
// 4-rank convolution run — and checks the identities on every scope plus
// the binding join.
func TestSmokeTraceProperties(t *testing.T) {
	f, err := os.Open("../waitstate/testdata/smoke_trace.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	tree := analyzeT(t, evs, Options{SeqTime: 10, Intervals: 8})
	if tree.Binding == nil || tree.Binding.Factors == nil {
		t.Fatal("recorded run: no binding section record")
	}
	if !strings.Contains(tree.Diagnosis, "binds at p=4:") {
		t.Errorf("diagnosis = %q, want the binding join", tree.Diagnosis)
	}
	if len(tree.Intervals) != 8 {
		t.Errorf("got %d intervals, want 8", len(tree.Intervals))
	}
	if tree.Global.Factors.Parallel <= 0 || tree.Global.Factors.Parallel >= 1 {
		t.Errorf("run-level parallel efficiency %v, want within (0,1) on a real run", tree.Global.Factors.Parallel)
	}
}

func TestRenderAndCSV(t *testing.T) {
	tree := analyzeT(t, serialTrace(), Options{SeqTime: 32, Intervals: 2})
	out := tree.Render()
	for _, want := range []string{
		"POP efficiency tree: p=2",
		"diagnosis: W binds at p=2: serialisation efficiency 0.62",
		"run: parallel",
		"time-resolved",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() lacks %q:\n%s", want, out)
		}
	}
	var sb strings.Builder
	if err := tree.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	csv := sb.String()
	if !strings.HasPrefix(csv, "section,p,t_max,") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	for _, want := range []string{"(run),2,", "W,2,", "serialisation"} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV lacks %q:\n%s", want, csv)
		}
	}
}

// TestDegradedCSVBlanksFactors: the CSV keeps its shape on degraded runs
// but leaves every factor cell empty.
func TestDegradedCSVBlanksFactors(t *testing.T) {
	evs := append(imbalanceTrace(),
		trace.Event{T: 1, Rank: 0, Kind: trace.KindFault, Comm: 1, Label: "kill"})
	tree := analyzeT(t, evs, Options{})
	var sb strings.Builder
	if err := tree.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("degraded CSV too short:\n%s", sb.String())
	}
	for _, line := range lines[1:] {
		if !strings.Contains(line, ",,") {
			t.Errorf("degraded CSV row has factor values: %q", line)
		}
	}
}

func TestDominantPicksLowestLeaf(t *testing.T) {
	f := &Factors{Parallel: 0.4, LoadBalance: 0.8, Comm: 0.5, Transfer: 0.9,
		Serialisation: 0.55, Thread: 1, OmpRegion: 1, SerialRegion: 1, Total: 0.4}
	if name, v := f.Dominant(); name != "serialisation" || !approx(v, 0.55) {
		t.Errorf("Dominant() = %q %v, want serialisation 0.55", name, v)
	}
}
