package pop

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Render returns the human-readable report: the run header with the
// binding diagnosis, the run-level factor identity, the per-section table
// and (when computed) the time-resolved series.
func (t *Tree) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "POP efficiency tree: p=%d", t.Ranks)
	if t.Threads > 1 {
		fmt.Fprintf(&b, " × %d threads", t.Threads)
	}
	fmt.Fprintf(&b, ", wall %.6g s\n", t.Wall)
	if t.Warning != "" {
		fmt.Fprintln(&b, t.Warning)
	}
	if t.Degraded {
		fmt.Fprintf(&b, "degraded run (%d faults, %d dead-peer waits): efficiency factors withheld\n",
			t.Faults, t.DeadWaits)
	}
	if t.Diagnosis != "" {
		fmt.Fprintf(&b, "diagnosis: %s\n", t.Diagnosis)
	}
	if g := t.Global; g != nil && g.Factors != nil {
		f := g.Factors
		fmt.Fprintf(&b, "\nrun: parallel %.3f = load-balance %.3f × comm %.3f (transfer %.3f × serialisation %.3f)",
			f.Parallel, f.LoadBalance, f.Comm, f.Transfer, f.Serialisation)
		if t.Threads > 1 {
			fmt.Fprintf(&b, "\n     thread %.3f = omp-region %.3f × serial-region %.3f; total %.3f",
				f.Thread, f.OmpRegion, f.SerialRegion, f.Total)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "\n%-28s %8s %8s %8s %8s %8s %8s  %-14s %10s  %s\n",
		"section", "parallel", "loadbal", "comm", "transfer", "serial", "thread", "dominant", "bound", "cause")
	for i := range t.Sections {
		se := &t.Sections[i]
		bound := ""
		if se.Bound > 0 {
			bound = fmt.Sprintf("%.5g", se.Bound)
		}
		if se.Factors == nil {
			fmt.Fprintf(&b, "%-28s %8s %8s %8s %8s %8s %8s  %-14s %10s  %s\n",
				se.Section, "-", "-", "-", "-", "-", "-", "-", bound, se.Cause)
			continue
		}
		f := se.Factors
		fmt.Fprintf(&b, "%-28s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f  %-14s %10s  %s\n",
			se.Section, f.Parallel, f.LoadBalance, f.Comm, f.Transfer, f.Serialisation, f.Thread,
			se.Dominant, bound, se.Cause)
	}
	if len(t.Intervals) > 0 {
		fmt.Fprintf(&b, "\ntime-resolved run-level factors (%d intervals):\n", len(t.Intervals))
		for _, iv := range t.Intervals {
			if iv.Factors == nil {
				fmt.Fprintf(&b, "  [%10.5g, %10.5g)  withheld (degraded run)\n", iv.From, iv.To)
				continue
			}
			f := iv.Factors
			fmt.Fprintf(&b, "  [%10.5g, %10.5g)  parallel %.3f  load-balance %.3f  transfer %.3f  serialisation %.3f\n",
				iv.From, iv.To, f.Parallel, f.LoadBalance, f.Transfer, f.Serialisation)
		}
	}
	return b.String()
}

// WriteCSV emits the run scope plus every section as one CSV row each.
// Degraded runs keep the timing inputs and leave the factor cells blank —
// the same convention as the sweep CSVs' pop_* columns.
func (t *Tree) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"section", "p", "t_max", "t_ideal", "useful_max", "useful_avg",
		"parallel_eff", "load_balance", "comm_eff", "transfer_eff", "serialisation_eff",
		"thread_eff", "omp_region_eff", "serial_region_eff",
		"dominant_factor", "partial_bound", "cause",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	row := func(se *SectionEfficiency) []string {
		cells := []string{
			se.Section, strconv.Itoa(se.P),
			g(se.TMax), g(se.TIdeal), g(se.UsefulMax), g(se.UsefulAvg),
		}
		if f := se.Factors; f != nil {
			cells = append(cells,
				g(f.Parallel), g(f.LoadBalance), g(f.Comm), g(f.Transfer), g(f.Serialisation),
				g(f.Thread), g(f.OmpRegion), g(f.SerialRegion), se.Dominant)
		} else {
			cells = append(cells, "", "", "", "", "", "", "", "", "")
		}
		bound := ""
		if se.Bound > 0 {
			bound = g(se.Bound)
		}
		return append(cells, bound, se.Cause)
	}
	if t.Global != nil {
		if err := cw.Write(row(t.Global)); err != nil {
			return err
		}
	}
	for i := range t.Sections {
		if err := cw.Write(row(&t.Sections[i])); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
