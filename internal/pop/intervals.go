package pop

import "repro/internal/trace"

// timeResolved slices the run's wall time into n equal intervals and
// evaluates the run-level factor tree over each — Haldar-style
// time-resolved metrics computed directly from the raw event stream. Per
// interval and rank, the active time is the overlap with the rank's
// [first event, last event] span; classified wait spans (receive post →
// completion, split at post + late-sender time into the serialisation and
// transfer sides) subtract from the useful time; thread-team regions
// prorate their aggregates by overlap. Accumulation is order-independent,
// so the input need not be sorted. Degraded runs keep the interval grid
// but withhold the factors.
func timeResolved(events []trace.Event, p int, wall float64, n int, degraded bool) []Interval {
	if n <= 0 || wall <= 0 || p <= 0 {
		return nil
	}
	width := wall / float64(n)
	type span struct{ first, last float64 }
	ranks := map[int]*span{}
	for _, e := range events {
		s := ranks[e.Rank]
		if s == nil {
			ranks[e.Rank] = &span{e.T, e.T}
			continue
		}
		if e.T < s.first {
			s.first = e.T
		}
		if e.T > s.last {
			s.last = e.T
		}
	}
	idx := map[int]int{}
	for r := range ranks {
		idx[r] = len(idx)
	}
	rows := make([][]rankTotals, n)
	for i := range rows {
		rows[i] = make([]rankTotals, len(idx))
	}
	// add distributes [from, to] across the interval grid for one rank.
	add := func(ri int, from, to float64, f func(rt *rankTotals, d float64)) {
		if to <= from {
			return
		}
		i0, i1 := int(from/width), int(to/width)
		if i0 < 0 {
			i0 = 0
		}
		if i1 >= n {
			i1 = n - 1
		}
		for i := i0; i <= i1; i++ {
			lo, hi := float64(i)*width, float64(i+1)*width
			if from > lo {
				lo = from
			}
			if to < hi {
				hi = to
			}
			if hi > lo {
				f(&rows[i][ri], hi-lo)
			}
		}
	}
	for r, s := range ranks {
		add(idx[r], s.first, s.last, func(rt *rankTotals, d float64) {
			rt.T += d
			rt.useful += d
		})
	}
	for _, e := range events {
		ri, ok := idx[e.Rank]
		if !ok {
			continue
		}
		switch e.Kind {
		case trace.KindRecv:
			if e.T <= e.PostT {
				continue
			}
			add(ri, e.PostT, e.T, func(rt *rankTotals, d float64) { rt.useful -= d })
			if e.Tag < 0 {
				continue // collective wait: all serialisation-side
			}
			late := e.SendT - e.PostT
			if late < 0 {
				late = 0
			}
			if late > e.T-e.PostT {
				late = e.T - e.PostT
			}
			add(ri, e.PostT+late, e.T, func(rt *rankTotals, d float64) { rt.transfer += d })
		case trace.KindDeadPeer:
			if e.T > e.PostT {
				add(ri, e.PostT, e.T, func(rt *rankTotals, d float64) { rt.useful -= d })
			}
		case trace.KindOmpRegion:
			elapsed := e.T - e.PostT
			if elapsed <= 0 {
				continue
			}
			team, single := float64(e.Bytes), e.ArrT
			add(ri, e.PostT, e.T, func(rt *rankTotals, d float64) {
				rt.ompElapsed += d
				rt.ompBusy += team * d
				rt.ompSingle += single * d / elapsed
				if e.Bytes > rt.maxTeam {
					rt.maxTeam = e.Bytes
				}
			})
		}
	}
	out := make([]Interval, n)
	for i := range out {
		iv := Interval{From: float64(i) * width, To: float64(i+1) * width}
		if i == n-1 {
			iv.To = wall
		}
		if !degraded {
			f, _, _, _, _ := computeFactors(rows[i], p)
			iv.Factors = &f
		}
		out[i] = iv
	}
	return out
}
