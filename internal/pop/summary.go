package pop

// Summary-fed factor construction. The trace-driven path (FromAnalysis)
// owns the replay; this file exports the same factor formulas for callers
// that already hold per-rank totals — the streaming telemetry layer
// (internal/telemetry) aggregates them online and never materializes an
// event stream, so it cannot go through waitstate.Analyze.

// RankTotals is one rank's contribution to a scope, in seconds. Useful may
// arrive un-clamped; the factor formulas normalize it into [0, T]. The
// fields mirror the unexported rankTotals rows FromAnalysis builds from a
// trace, so both paths score identically given identical totals.
type RankTotals struct {
	// T is the rank's total time in the scope.
	T float64
	// Useful is T minus classified waits (and idle).
	Useful float64
	// Transfer is the transfer-wait component inside the scope.
	Transfer float64
	// OmpElapsed is thread-team region time, OmpSingle the single-thread
	// duration of the same work, OmpBusy the allocated thread-seconds
	// (Σ team × elapsed).
	OmpElapsed float64
	OmpSingle  float64
	OmpBusy    float64
	// MaxTeam is the largest team observed (0/1 = pure MPI).
	MaxTeam int
}

// FromTotals assembles one scope's efficiency record from per-rank totals:
// the POP factor tree plus its timing inputs. p is the divisor of the
// load-balance mean, so ranks absent from rows count as fully idle;
// degraded withholds the factors exactly like the trace-driven path does
// for faulted runs.
func FromTotals(name string, p int, rows []RankTotals, degraded bool) SectionEfficiency {
	converted := make([]rankTotals, len(rows))
	for i, r := range rows {
		converted[i] = rankTotals{
			T: r.T, useful: r.Useful, transfer: r.Transfer,
			ompElapsed: r.OmpElapsed, ompSingle: r.OmpSingle,
			ompBusy: r.OmpBusy, maxTeam: r.MaxTeam,
		}
	}
	return newSection(name, p, converted, degraded)
}
