// Package pop computes the POP (Performance Optimisation and Productivity
// Centre of Excellence) multiplicative efficiency tree from the replayable
// trace stream, turning the Eq. 6 verdict "section X binds the speedup"
// into a named root cause. It consumes the per-(section, rank) matrix the
// wait-state engine already produces (waitstate.Analysis.RankSections) and
// reports, per MPI section and for the whole run, the factor tree
//
//	ParallelEff = LoadBalance × CommEff
//	CommEff     = TransferEff × SerialisationEff
//	ThreadEff   = OmpRegionEff × SerialRegionEff   (hybrid MPI+OpenMP runs)
//	TotalEff    = ParallelEff × ThreadEff
//
// with every factor in [0, 1] and each level's identity holding to within
// floating-point rounding (the property tests pin 1e-9).
//
// # Factor definitions
//
// For one scope (a section, the whole run, or a time interval) let T_r be
// rank r's total time in the scope, W_r its classified blocked-receive
// (wait) time inside it, X_r the transfer-wait component of W_r, and
// u_r = max(T_r − W_r, 0) the rank's useful (non-waiting) time. With
// Tmax = max_r T_r over the p ranks:
//
//	LoadBalance      = mean_r(u_r) / max_r(u_r)
//	CommEff          = max_r(u_r) / Tmax
//	TransferEff      = Tideal / Tmax,   Tideal = max_r max(T_r − X_r, u_r)
//	SerialisationEff = max_r(u_r) / Tideal
//
// Tideal is the scope's runtime on an ideal (zero-latency, infinite-
// bandwidth) network, where only the dependency structure — late senders,
// collective waits, dead-peer waits — still forces ranks to block: the
// classical Scalasca/Dimemas-style split of communication inefficiency
// into data movement (transfer) and dependency chains (serialisation).
// Ranks that never enter the scope contribute u_r = 0 and show up as load
// imbalance, matching POP semantics. A scope with Tmax = 0 scores a
// neutral all-ones tree.
//
// # Hybrid MPI+OpenMP split
//
// Thread-team compute regions (trace.KindOmpRegion events, recorded by the
// runtime's ComputeObserver hook) carry the region's elapsed time e_i, the
// team size n_i, and the single-thread duration s_i of the same work. Per
// rank, with P_r = Σ e_i clamped to u_r, busy_r = Σ n_i·e_i, work_r = Σ s_i,
// serial_r = u_r − P_r, and N_r the largest team observed:
//
//	OmpRegionEff    = Σ_r(work_r + serial_r) / Σ_r(busy_r + serial_r)
//	SerialRegionEff = Σ_r(busy_r + serial_r) / Σ_r(N_r · u_r)
//
// OmpRegionEff measures how much of the thread time spent inside parallel
// regions was useful single-thread-equivalent work (fork/join overhead and
// imperfect loop speedup erode it); SerialRegionEff measures the capacity
// lost to threads idling while the master executes serial code. Their
// product, ThreadEff = Σ(work + serial) / Σ(N·u), is the useful fraction
// of the rank's total thread capacity. A pure-MPI scope (no region events)
// has N_r = 1 and P_r = 0, so the thread level is identically 1.
//
// # Join with the Eq. 6 bound
//
// Tree.Binding is the efficiency record of waitstate.Binding()'s section —
// the Eq. 6 bound holder — and Tree.Diagnosis is its one-line verdict
// naming the lowest (dominant) leaf factor, e.g.
//
//	HALO binds at p=64: transfer efficiency 0.41 (Eq. 6 bound 9.3×)
//
// # Degraded runs
//
// A trace carrying injected faults or dead-peer waits describes a faulty
// execution, not the healthy baseline: the tree keeps its timing inputs
// but withholds every factor (Factors pointers are nil, JSON null), the
// same convention the sweep CSVs use for their blank degraded cells.
package pop
