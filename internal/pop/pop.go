package pop

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/waitstate"
)

// Options configures tree construction.
type Options struct {
	// SeqTime is the sequential baseline Σ_j f_j(n0, 1); when positive each
	// section's record also carries its Eq. 6 partial speedup bound.
	SeqTime float64
	// Intervals > 0 adds a time-resolved run-level factor series over that
	// many equal slices of the wall time (Analyze only; FromAnalysis has no
	// event stream to slice).
	Intervals int
}

// Factors is one scope's multiplicative efficiency tree. Every factor is
// clamped to [0, 1]; Parallel = LoadBalance × Comm, Comm = Transfer ×
// Serialisation, Thread = OmpRegion × SerialRegion and Total = Parallel ×
// Thread hold by construction (see the package docs for the formulas).
type Factors struct {
	Parallel      float64 `json:"parallel"`
	LoadBalance   float64 `json:"load_balance"`
	Comm          float64 `json:"communication"`
	Transfer      float64 `json:"transfer"`
	Serialisation float64 `json:"serialisation"`
	Thread        float64 `json:"thread"`
	OmpRegion     float64 `json:"omp_region"`
	SerialRegion  float64 `json:"serial_region"`
	Total         float64 `json:"total"`
}

// Dominant returns the lowest leaf factor — the named root cause of the
// scope's inefficiency — and its value. Leaves are load-balance, transfer,
// serialisation, omp-region and serial-region; the first in that order
// wins ties.
func (f *Factors) Dominant() (string, float64) {
	name, v := "load-balance", f.LoadBalance
	for _, leaf := range []struct {
		name string
		v    float64
	}{
		{"transfer", f.Transfer},
		{"serialisation", f.Serialisation},
		{"omp-region", f.OmpRegion},
		{"serial-region", f.SerialRegion},
	} {
		if leaf.v < v {
			name, v = leaf.name, leaf.v
		}
	}
	return name, v
}

// SectionEfficiency is one scope's record: the timing inputs plus the
// factor tree. Factors is nil on a degraded (faulted) run — the JSON
// renders as null and CSV cells stay blank.
type SectionEfficiency struct {
	Section string `json:"section"`
	P       int    `json:"p"`
	// TMax is the slowest rank's time in the scope; TIdeal the scope's
	// runtime on an ideal network; UsefulMax/UsefulAvg the max and mean
	// per-rank useful (non-waiting) time.
	TMax      float64  `json:"t_max_seconds"`
	TIdeal    float64  `json:"t_ideal_seconds"`
	UsefulMax float64  `json:"useful_max_seconds"`
	UsefulAvg float64  `json:"useful_avg_seconds"`
	Factors   *Factors `json:"factors"`
	// Dominant names the lowest leaf factor ("" when Factors is nil).
	Dominant string `json:"dominant_factor,omitempty"`
	// Bound is the section's Eq. 6 partial speedup bound and Cause the
	// wait-state engine's dominant-cause label — the join that names both
	// WHICH section caps the speedup and WHY.
	Bound float64 `json:"partial_bound,omitempty"`
	Cause string  `json:"waitstate_cause,omitempty"`
}

// Interval is one slice of the time-resolved run-level factor series.
type Interval struct {
	From    float64  `json:"from_seconds"`
	To      float64  `json:"to_seconds"`
	Factors *Factors `json:"factors"`
}

// Tree is the full POP efficiency document for one run.
type Tree struct {
	Ranks int `json:"ranks"`
	// Threads is the largest thread team observed (1 = pure MPI).
	Threads int     `json:"threads"`
	Wall    float64 `json:"wall_seconds"`
	SeqTime float64 `json:"seq_seconds,omitempty"`
	// Degraded flags a faulted execution; every Factors pointer is nil.
	Degraded  bool `json:"degraded"`
	Faults    int  `json:"faults,omitempty"`
	DeadWaits int  `json:"dead_peer_waits,omitempty"`
	// Global is the whole-run scope ("(run)"): per-rank time from first
	// event to the end of the run, so early-finishing ranks read as load
	// imbalance.
	Global   *SectionEfficiency  `json:"global"`
	Sections []SectionEfficiency `json:"sections"`
	// Intervals is the time-resolved series (Options.Intervals > 0).
	Intervals []Interval `json:"intervals,omitempty"`
	// Binding is the record of the section that holds the Eq. 6 bound
	// (waitstate.Binding()); Diagnosis its one-line verdict.
	Binding   *SectionEfficiency `json:"binding,omitempty"`
	Diagnosis string             `json:"diagnosis,omitempty"`
	Warning   string             `json:"warning,omitempty"`
}

// Section returns the named section's record, or nil.
func (t *Tree) Section(name string) *SectionEfficiency {
	for i := range t.Sections {
		if t.Sections[i].Section == name {
			return &t.Sections[i]
		}
	}
	return nil
}

// rankTotals is one rank's contribution to a scope (a section, the whole
// run, or a time interval). useful may arrive un-clamped; computeFactors
// normalizes it into [0, T].
type rankTotals struct {
	T          float64 // the rank's total time in the scope
	useful     float64 // T minus classified waits (and idle)
	transfer   float64 // transfer-wait component inside the scope
	ompElapsed float64 // thread-team region time
	ompSingle  float64 // single-thread duration of that region work
	ompBusy    float64 // allocated thread-seconds (Σ team × elapsed)
	maxTeam    int     // largest team observed (0/1 = pure MPI)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// computeFactors evaluates the factor formulas (package docs) over one
// scope's per-rank rows; p is the divisor of the load-balance mean so
// ranks absent from rows count as fully idle. A scope nobody entered
// (Tmax = 0) scores a neutral all-ones tree.
func computeFactors(rows []rankTotals, p int) (f Factors, tMax, tIdeal, uMax, uAvg float64) {
	f = Factors{
		Parallel: 1, LoadBalance: 1, Comm: 1, Transfer: 1, Serialisation: 1,
		Thread: 1, OmpRegion: 1, SerialRegion: 1, Total: 1,
	}
	if p <= 0 {
		return
	}
	var uSum, usefulSum, busySum, capSum float64
	for _, r := range rows {
		if r.T > tMax {
			tMax = r.T
		}
		u := r.useful
		if u < 0 {
			u = 0
		}
		if u > r.T {
			u = r.T
		}
		uSum += u
		if u > uMax {
			uMax = u
		}
		ideal := r.T - r.transfer
		if ideal < u {
			ideal = u
		}
		if ideal > tIdeal {
			tIdeal = ideal
		}
		team := float64(r.maxTeam)
		if team < 1 {
			team = 1
		}
		par := r.ompElapsed
		if par > u {
			par = u
		}
		serial := u - par
		busy := r.ompBusy
		if busy < r.ompSingle {
			busy = r.ompSingle
		}
		usefulSum += r.ompSingle + serial
		busySum += busy + serial
		capSum += team * u
	}
	uAvg = uSum / float64(p)
	if tMax <= 0 {
		tIdeal, uMax, uAvg = 0, 0, 0
		return
	}
	if uMax > 0 {
		f.LoadBalance = clamp01(uAvg / uMax)
	}
	f.Comm = clamp01(uMax / tMax)
	f.Transfer = clamp01(tIdeal / tMax)
	if tIdeal > 0 {
		f.Serialisation = clamp01(uMax / tIdeal)
	}
	f.Parallel = f.LoadBalance * f.Comm
	if busySum > 0 {
		f.OmpRegion = clamp01(usefulSum / busySum)
	}
	if capSum > 0 {
		f.SerialRegion = clamp01(busySum / capSum)
	}
	f.Thread = f.OmpRegion * f.SerialRegion
	f.Total = f.Parallel * f.Thread
	return
}

// newSection assembles one scope's record; degraded withholds the factors.
func newSection(name string, p int, rows []rankTotals, degraded bool) SectionEfficiency {
	f, tMax, tIdeal, uMax, uAvg := computeFactors(rows, p)
	se := SectionEfficiency{
		Section: name, P: p,
		TMax: tMax, TIdeal: tIdeal, UsefulMax: uMax, UsefulAvg: uAvg,
	}
	if !degraded {
		fc := f
		se.Factors = &fc
		se.Dominant, _ = fc.Dominant()
	}
	return se
}

// FromAnalysis builds the tree from a completed wait-state analysis. The
// per-section scopes come from Analysis.RankSections; the global scope
// from the per-rank breakdown (idle tails count against load balance).
func FromAnalysis(a *waitstate.Analysis, opts Options) *Tree {
	t := &Tree{
		Ranks: a.Ranks, Threads: 1, Wall: a.Wall, SeqTime: a.SeqTime,
		Faults: a.Faults, DeadWaits: a.DeadWaits, Warning: a.Warning,
		Degraded: a.Faults > 0 || a.DeadWaits > 0,
	}
	bySec := map[string][]waitstate.RankSection{}
	type rankAgg struct{ transfer, ompElapsed, ompSingle, ompBusy float64 }
	perRank := map[int]*rankAgg{}
	maxTeam := map[int]int{}
	for _, rs := range a.RankSections {
		bySec[rs.Section] = append(bySec[rs.Section], rs)
		ra := perRank[rs.Rank]
		if ra == nil {
			ra = &rankAgg{}
			perRank[rs.Rank] = ra
		}
		ra.transfer += rs.Transfer
		ra.ompElapsed += rs.OmpElapsed
		ra.ompSingle += rs.OmpSingle
		ra.ompBusy += rs.OmpBusy
		if rs.MaxTeam > maxTeam[rs.Rank] {
			maxTeam[rs.Rank] = rs.MaxTeam
		}
		if rs.MaxTeam > t.Threads {
			t.Threads = rs.MaxTeam
		}
	}
	for _, d := range a.Sections {
		var rows []rankTotals
		for _, rs := range bySec[d.Section] {
			rows = append(rows, rankTotals{
				T: rs.Incl, useful: rs.Incl - rs.Wait, transfer: rs.Transfer,
				ompElapsed: rs.OmpElapsed, ompSingle: rs.OmpSingle,
				ompBusy: rs.OmpBusy, maxTeam: rs.MaxTeam,
			})
		}
		se := newSection(d.Section, a.Ranks, rows, t.Degraded)
		se.Bound = d.Bound
		se.Cause = d.DominantCause
		t.Sections = append(t.Sections, se)
	}
	// Global scope: each rank spans from its first event to the end of the
	// run (Wait + Compute + Residual in the breakdown's terms), its useful
	// time is the classified compute, and waits/regions sum over sections.
	var global []rankTotals
	for _, rb := range a.Ranked {
		row := rankTotals{
			T:      rb.Wait + rb.Compute + rb.Residual,
			useful: rb.Compute,
		}
		if ra := perRank[rb.Rank]; ra != nil {
			row.transfer = ra.transfer
			row.ompElapsed = ra.ompElapsed
			row.ompSingle = ra.ompSingle
			row.ompBusy = ra.ompBusy
		}
		row.maxTeam = maxTeam[rb.Rank]
		global = append(global, row)
	}
	g := newSection("(run)", a.Ranks, global, t.Degraded)
	t.Global = &g
	if b := a.Binding(); b != nil {
		if se := t.Section(b.Section); se != nil {
			t.Binding = se
			t.Diagnosis = t.diagnose(se)
		}
	}
	return t
}

// diagnose renders the one-line verdict joining the Eq. 6 bound holder
// with its dominant efficiency factor.
func (t *Tree) diagnose(se *SectionEfficiency) string {
	if t.Degraded {
		return fmt.Sprintf("%s binds at p=%d: degraded run (%d faults, %d dead-peer waits); efficiencies withheld",
			se.Section, t.Ranks, t.Faults, t.DeadWaits)
	}
	name, v := se.Factors.Dominant()
	line := fmt.Sprintf("%s binds at p=%d: %s efficiency %.2f", se.Section, t.Ranks, name, v)
	if se.Bound > 0 {
		line += fmt.Sprintf(" (Eq. 6 bound %.3g×)", se.Bound)
	}
	return line
}

// Analyze replays an event stream through the wait-state engine and builds
// the tree, plus the time-resolved interval series when requested. It is
// the one-call form cmd/secanalyze and cmd/secmon use.
func Analyze(events []trace.Event, opts Options) (*Tree, error) {
	a, err := waitstate.Analyze(events, waitstate.Options{SeqTime: opts.SeqTime})
	if err != nil {
		return nil, err
	}
	t := FromAnalysis(a, opts)
	if opts.Intervals > 0 {
		t.Intervals = timeResolved(events, a.Ranks, a.Wall, opts.Intervals, t.Degraded)
	}
	return t, nil
}
