package sched

import (
	"errors"
	"sync"
	"testing"
)

// TestFairQueueRoundRobin: a tenant with a deep backlog shares the dequeue
// schedule one-for-one with tenants holding a single item — the
// token-per-tenant fairness contract.
func TestFairQueueRoundRobin(t *testing.T) {
	q := NewFairQueue[string](4, 16)
	for i := 0; i < 6; i++ {
		if err := q.Push("flood", "f"); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push("light", "l"); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("medium", "m"); err != nil {
		t.Fatal(err)
	}

	var order []string
	for {
		item, _, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, item)
	}
	want := []string{"f", "l", "m", "f", "f", "f", "f", "f"}
	if len(order) != len(want) {
		t.Fatalf("popped %d items, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", order, want)
		}
	}
}

// TestFairQueueBounds: per-tenant depth and the tenant table are both hard
// caps reported by sentinel errors — admission never blocks and never grows
// without bound.
func TestFairQueueBounds(t *testing.T) {
	q := NewFairQueue[int](2, 2)
	for i := 0; i < 2; i++ {
		if err := q.Push("a", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push("a", 9); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull tenant queue: err=%v, want ErrQueueFull", err)
	}
	if err := q.Push("b", 0); err != nil {
		t.Fatal(err)
	}
	if err := q.Push("c", 0); !errors.Is(err, ErrTenantTableFull) {
		t.Fatalf("third tenant: err=%v, want ErrTenantTableFull", err)
	}
	if got := q.Len(); got != 3 {
		t.Fatalf("Len=%d, want 3", got)
	}
	if got := q.TenantLen("a"); got != 2 {
		t.Fatalf("TenantLen(a)=%d, want 2", got)
	}

	// A rejected tenant is not half-admitted: after the table-full error
	// its queue stays absent and the survivors drain cleanly.
	if got := q.TenantLen("c"); got != 0 {
		t.Fatalf("rejected tenant holds %d items", got)
	}
	if got := len(q.Drain()); got != 3 {
		t.Fatalf("Drain returned %d items, want 3", got)
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop succeeded on a drained queue")
	}
}

// TestFairQueueConcurrent exercises mixed push/pop under the race detector;
// every pushed item must come out exactly once.
func TestFairQueueConcurrent(t *testing.T) {
	const producers, perProducer = 8, 50
	q := NewFairQueue[int](producers, perProducer)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tenant := string(rune('a' + p))
			for i := 0; i < perProducer; i++ {
				if err := q.Push(tenant, p*perProducer+i); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	seen := make(map[int]bool)
	var mu sync.Mutex
	var cg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				item, _, ok := q.Pop()
				if !ok {
					select {
					case <-done:
						if item, _, ok = q.Pop(); !ok {
							return
						}
					default:
						continue
					}
				}
				mu.Lock()
				if seen[item] {
					t.Errorf("item %d popped twice", item)
				}
				seen[item] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	cg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("consumed %d items, want %d", len(seen), producers*perProducer)
	}
}
