package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetParallelism(3)
	if got := Workers(0); got != 3 {
		t.Fatalf("Workers(0) after SetParallelism(3) = %d", got)
	}
	SetParallelism(0)
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) after reset = %d", got)
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-2) = %d", got)
	}
}

func TestForEachRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		counts := make([]atomic.Int64, 57)
		if err := ForEach(workers, len(counts), func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("job %d failed", i) }
	for _, workers := range []int{1, 4, 16} {
		err := ForEach(workers, 32, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, 24, 31
				return boom(i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err = %v, want job 3 failed", workers, err)
		}
	}
}

func TestForEachStopsClaimingAfterFailure(t *testing.T) {
	var started atomic.Int64
	sentinel := errors.New("stop")
	_ = ForEach(1, 1000, func(i int) error {
		started.Add(1)
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if got := started.Load(); got != 3 {
		t.Fatalf("sequential run started %d jobs after failure at 2", got)
	}
}

func TestMapOrderStable(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		out, err := Map(workers, 40, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("Map error path: out=%v err=%v", out, err)
	}
}

func TestLimiter(t *testing.T) {
	l := NewLimiter(2)
	l.Acquire()
	l.Acquire()
	done := make(chan struct{})
	go func() {
		l.Acquire()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("third Acquire succeeded with capacity 2")
	default:
	}
	l.Release()
	<-done
	l.Release()
	l.Release()
}

func TestLimiterResizeWakesWaiters(t *testing.T) {
	l := NewLimiter(1)
	l.Acquire()
	done := make(chan struct{})
	go func() {
		l.Acquire()
		close(done)
	}()
	l.Resize(2)
	<-done
}
