// Package sched is the bounded worker pool the experiment sweep drivers
// run on. Every figure of the paper is a strong-scaling sweep whose
// (p, threads) points are mutually independent simulations; sched executes
// them concurrently while keeping results deterministic, seed-stable and
// order-stable: each job writes only its own index-addressed slot, and the
// callers fold the slots in the original sweep order, so output bytes are
// identical for every worker count (asserted by the -j determinism tests
// in internal/experiments).
//
// The worker count comes from the drivers' Jobs option (a -j flag on the
// binaries); zero selects the process default, normally GOMAXPROCS but
// overridable with SetParallelism.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers overrides the Workers(0) resolution when positive;
// SetParallelism stores it (cmd/secmon's -j flag, for example).
var defaultWorkers atomic.Int64

// SetParallelism fixes the process-wide default worker count that
// Workers(0) resolves to. n <= 0 restores the GOMAXPROCS default.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Workers resolves a -j style flag value: j >= 1 is taken as given,
// anything else selects the process default (SetParallelism, otherwise
// GOMAXPROCS).
func Workers(j int) int {
	if j >= 1 {
		return j
	}
	if d := defaultWorkers.Load(); d > 0 {
		return int(d)
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers concurrent
// goroutines and blocks until every started job has returned. Jobs are
// claimed in index order. fn must confine its writes to state owned by
// index i (typically a slot of a pre-sized results slice); under that
// contract the aggregate result is independent of the worker count.
//
// On failure the error of the lowest-index failing job is returned —
// deterministic even when several jobs fail — and jobs not yet started are
// skipped.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = Workers(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Run inline: no goroutine hop, exact sequential semantics.
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx = -1
		errVal error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, errVal = i, err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return errVal
}

// Map runs fn over [0, n) with ForEach's scheduling and returns the
// results in index order: the order-stable gather the sweep drivers fold
// from. On error the partial results are discarded.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Limiter bounds in-flight work process-wide; experiments.RunLive routes
// on-demand runs through one so a monitor cannot oversubscribe the host
// while a sweep is regenerating figures.
type Limiter struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	used int
}

// NewLimiter returns a limiter admitting capacity concurrent holders
// (minimum 1).
func NewLimiter(capacity int) *Limiter {
	if capacity < 1 {
		capacity = 1
	}
	l := &Limiter{cap: capacity}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Resize changes the capacity (minimum 1) and wakes waiters that now fit.
func (l *Limiter) Resize(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	l.mu.Lock()
	l.cap = capacity
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Acquire blocks until a slot is free and takes it.
func (l *Limiter) Acquire() {
	l.mu.Lock()
	for l.used >= l.cap {
		l.cond.Wait()
	}
	l.used++
	l.mu.Unlock()
}

// Release frees a slot taken with Acquire.
func (l *Limiter) Release() {
	l.mu.Lock()
	if l.used > 0 {
		l.used--
	}
	l.mu.Unlock()
	l.cond.Signal()
}
