package sched

import "sync"

// FairQueue is a bounded multi-tenant admission queue with token-per-tenant
// round-robin dequeue order: each tenant owns a FIFO of at most depth
// entries, and Pop serves tenants in rotation, one item per turn, so a
// tenant flooding its queue cannot starve a tenant submitting a single
// item. It is the admission structure the serve layer schedules jobs from;
// capacity violations are reported to the caller (who sheds with a 429)
// rather than blocking, so the queue can never grow without bound.
//
// FairQueue is safe for concurrent use. It does not block: producers that
// find a full tenant queue get ErrQueueFull back immediately, and consumers
// that find every queue empty get (zero, false).
type FairQueue[T any] struct {
	mu      sync.Mutex
	depth   int
	tenants int
	queues  map[string][]T
	// ring holds the round-robin rotation: tenant names in first-seen
	// order. next indexes the tenant whose turn the following Pop is.
	ring []string
	next int
	size int
}

// FairQueueError distinguishes the two admission failures so callers can
// shape their backpressure responses (both map to HTTP 429 upstream).
type FairQueueError string

func (e FairQueueError) Error() string { return string(e) }

// ErrQueueFull reports a tenant FIFO at capacity; ErrTenantTableFull
// reports that admitting a new tenant would exceed the tenant cap.
const (
	ErrQueueFull       = FairQueueError("sched: tenant queue full")
	ErrTenantTableFull = FairQueueError("sched: tenant table full")
)

// NewFairQueue returns a queue admitting at most tenants distinct tenants
// of at most depth queued items each (minimums 1).
func NewFairQueue[T any](tenants, depth int) *FairQueue[T] {
	if tenants < 1 {
		tenants = 1
	}
	if depth < 1 {
		depth = 1
	}
	return &FairQueue[T]{
		depth:   depth,
		tenants: tenants,
		queues:  make(map[string][]T, tenants),
	}
}

// Push enqueues item for tenant, admitting the tenant into the rotation on
// first use. It never blocks: a full tenant FIFO returns ErrQueueFull and a
// full tenant table returns ErrTenantTableFull.
func (q *FairQueue[T]) Push(tenant string, item T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	queue, known := q.queues[tenant]
	if !known {
		if len(q.ring) >= q.tenants {
			return ErrTenantTableFull
		}
		q.ring = append(q.ring, tenant)
	}
	if len(queue) >= q.depth {
		return ErrQueueFull
	}
	q.queues[tenant] = append(queue, item)
	q.size++
	return nil
}

// Pop removes and returns the next item in round-robin tenant order. The
// rotation pointer advances one tenant per successful Pop — the
// token-per-tenant schedule — and skips tenants with empty queues without
// consuming their position relative to each other. Returns ok=false when
// every queue is empty.
func (q *FairQueue[T]) Pop() (item T, tenant string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return item, "", false
	}
	for i := 0; i < len(q.ring); i++ {
		t := q.ring[q.next]
		q.next = (q.next + 1) % len(q.ring)
		if queue := q.queues[t]; len(queue) > 0 {
			item = queue[0]
			// Shift rather than re-slice so consumed heads are freed.
			copy(queue, queue[1:])
			var zero T
			queue[len(queue)-1] = zero
			q.queues[t] = queue[:len(queue)-1]
			q.size--
			return item, t, true
		}
	}
	return item, "", false
}

// Len returns the total queued item count.
func (q *FairQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// TenantLen returns the queued item count for one tenant.
func (q *FairQueue[T]) TenantLen(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queues[tenant])
}

// Drain empties every queue and returns the removed items in round-robin
// order (the order Pop would have served them). The tenant rotation is
// preserved so a queue reused after Drain keeps its fairness state.
func (q *FairQueue[T]) Drain() []T {
	var out []T
	for {
		item, _, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, item)
	}
}
