package chart

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	s := Series{Name: "speedup", X: []float64{1, 2, 4, 8}, Y: []float64{1, 2, 3.5, 6}}
	out, err := Render(Options{Title: "demo", XLabel: "p", YLabel: "S"}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* speedup") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "x: p") || !strings.Contains(out, "y: S") {
		t.Error("axis labels missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no markers drawn")
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(Options{}); err != ErrNoData {
		t.Errorf("no series: err = %v", err)
	}
	if _, err := Render(Options{}, Series{Name: "empty"}); err != ErrNoData {
		t.Errorf("empty series: err = %v", err)
	}
	nan := Series{Name: "nan", X: []float64{1}, Y: []float64{math.NaN()}}
	if _, err := Render(Options{}, nan); err != ErrNoData {
		t.Errorf("NaN-only series: err = %v", err)
	}
	if _, err := Render(Options{Width: 4, Height: 2}, Series{X: []float64{1}, Y: []float64{1}}); err == nil {
		t.Error("tiny plot area accepted")
	}
}

// plotRows returns only the bordered plotting rows (excluding legend and
// axis annotations).
func plotRows(out string) []string {
	var rows []string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "|") {
			rows = append(rows, l)
		}
	}
	return rows
}

// countMarkers counts occurrences of ch inside the plot area only.
func countMarkers(out string, ch byte) int {
	n := 0
	for _, l := range plotRows(out) {
		n += strings.Count(l, string(ch))
	}
	return n
}

func TestRenderLogAxes(t *testing.T) {
	s := Series{Name: "t", X: []float64{1, 10, 100, 1000}, Y: []float64{100, 10, 1, 0.1}}
	out, err := Render(Options{LogX: true, LogY: true, XLabel: "p", YLabel: "s"}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(log x y)") {
		t.Error("log annotation missing")
	}
	// On log-log, a power law is a straight line: the marker columns must
	// be evenly spaced. Extract marker positions from the plot rows.
	var cols []int
	for _, l := range plotRows(out) {
		if i := strings.IndexByte(l, '*'); i >= 0 {
			cols = append(cols, i)
		}
	}
	if len(cols) != 4 {
		t.Fatalf("marker rows = %d, want 4:\n%s", len(cols), out)
	}
	d1 := cols[1] - cols[0]
	for i := 2; i < len(cols); i++ {
		d := cols[i] - cols[i-1]
		if absInt(d-d1) > 1 {
			t.Errorf("log-x spacing uneven: %v", cols)
		}
	}
}

func TestRenderLogSkipsNonPositive(t *testing.T) {
	s := Series{Name: "mixed", X: []float64{0, 1, 10}, Y: []float64{-1, 1, 10}}
	out, err := Render(Options{LogX: true, LogY: true}, s)
	if err != nil {
		t.Fatal(err)
	}
	if countMarkers(out, '*') != 2 {
		t.Errorf("expected 2 plottable markers:\n%s", out)
	}
}

func TestRenderMultipleSeriesDistinctGlyphs(t *testing.T) {
	a := Series{Name: "a", X: []float64{1, 2}, Y: []float64{1, 2}}
	b := Series{Name: "b", X: []float64{1, 2}, Y: []float64{2, 1}}
	out, err := Render(Options{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Errorf("legend wrong:\n%s", out)
	}
}

func TestRenderExtremesOnEdges(t *testing.T) {
	s := Series{Name: "s", X: []float64{0, 10}, Y: []float64{0, 100}}
	out, err := Render(Options{Width: 40, Height: 10}, s)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	// Max value appears on the first plot row, min on the last.
	if !strings.Contains(lines[0], "100") {
		t.Errorf("top label missing: %q", lines[0])
	}
	first := lines[0]
	if !strings.Contains(first, "*") {
		t.Errorf("max point not on top row:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	s := Series{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}
	out, err := Render(Options{}, s)
	if err != nil {
		t.Fatal(err)
	}
	if countMarkers(out, '*') < 3 {
		t.Errorf("flat series markers missing:\n%s", out)
	}
}

func TestRenderMismatchedLengths(t *testing.T) {
	s := Series{Name: "s", X: []float64{1, 2, 3}, Y: []float64{1}}
	out, err := Render(Options{}, s)
	if err != nil {
		t.Fatal(err)
	}
	if countMarkers(out, '*') != 1 {
		t.Errorf("length clamping wrong:\n%s", out)
	}
}

func TestRenderDefaultDimensions(t *testing.T) {
	s := Series{Name: "s", X: []float64{1, 2}, Y: []float64{1, 2}}
	out, err := Render(Options{}, s)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 20 plot rows + x-axis + legend (no title/labels).
	if len(lines) != 22 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
