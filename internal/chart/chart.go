// Package chart renders small ASCII line/scatter charts for the experiment
// binaries: the paper's figures are log-scale plots (time or speedup vs.
// process/thread count), and seeing the curve — not just the table — is how
// one spots an inflexion point at a glance.
package chart

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Options controls the plot.
type Options struct {
	// Title is printed above the plot.
	Title string
	// Width and Height of the plotting area in characters (defaults 72×20).
	Width, Height int
	// LogX/LogY select logarithmic axes (points must then be positive).
	LogX, LogY bool
	// XLabel/YLabel annotate the axes.
	XLabel, YLabel string
}

// glyphs assigns a marker per series.
const glyphs = "*+ox#@%&"

// ErrNoData is returned when nothing plottable was supplied.
var ErrNoData = errors.New("chart: no plottable data")

// Render draws the series into a string.
func Render(opts Options, series ...Series) (string, error) {
	w, h := opts.Width, opts.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	if w < 16 || h < 4 {
		return "", fmt.Errorf("chart: plot area %dx%d too small", w, h)
	}

	tx := func(v float64) (float64, bool) { return axis(v, opts.LogX) }
	ty := func(v float64) (float64, bool) { return axis(v, opts.LogY) }

	// Collect transformed points and ranges.
	type pt struct {
		x, y float64
		s    int
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			pts = append(pts, pt{x: x, y: y, s: si})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if len(pts) == 0 {
		return "", ErrNoData
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	col := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(w-1))
		return clamp(c, 0, w-1)
	}
	row := func(y float64) int {
		r := int((y - minY) / (maxY - minY) * float64(h-1))
		return h - 1 - clamp(r, 0, h-1) // invert: big values on top
	}
	// Connect consecutive points of each series with interpolated markers,
	// then stamp the points themselves on top.
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		var prev *pt
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				prev = nil
				continue
			}
			cur := pt{x: x, y: y, s: si}
			if prev != nil {
				drawLine(grid, col(prev.x), row(prev.y), col(cur.x), row(cur.y), '.')
			}
			prev = &cur
		}
		prev = nil
		for i := 0; i < n; i++ {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky {
				continue
			}
			grid[row(y)][col(x)] = g
		}
	}

	var sb strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&sb, "%s\n", opts.Title)
	}
	yLo, yHi := untransform(minY, opts.LogY), untransform(maxY, opts.LogY)
	for r := 0; r < h; r++ {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%10.3g", yHi)
		case h - 1:
			label = fmt.Sprintf("%10.3g", yLo)
		case h / 2:
			label = fmt.Sprintf("%10.3g", untransform((minY+maxY)/2, opts.LogY))
		}
		fmt.Fprintf(&sb, "%s |%s|\n", label, grid[r])
	}
	xLo, xHi := untransform(minX, opts.LogX), untransform(maxX, opts.LogX)
	fmt.Fprintf(&sb, "%10s  %-.3g%s%.3g\n", "",
		xLo, strings.Repeat(" ", max(1, w-12)), xHi)
	if opts.XLabel != "" || opts.YLabel != "" {
		fmt.Fprintf(&sb, "%10s  x: %s   y: %s", "", opts.XLabel, opts.YLabel)
		if opts.LogX || opts.LogY {
			sb.WriteString("   (log")
			if opts.LogX {
				sb.WriteString(" x")
			}
			if opts.LogY {
				sb.WriteString(" y")
			}
			sb.WriteString(")")
		}
		sb.WriteString("\n")
	}
	// Legend.
	if len(series) > 0 {
		fmt.Fprintf(&sb, "%10s  ", "")
		for si, s := range series {
			if si > 0 {
				sb.WriteString("   ")
			}
			fmt.Fprintf(&sb, "%c %s", glyphs[si%len(glyphs)], s.Name)
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// axis transforms one coordinate, reporting false for unplottable values.
func axis(v float64, log bool) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	if !log {
		return v, true
	}
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

func untransform(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

// drawLine stamps ch along the straight segment (x0,y0)-(x1,y1), leaving
// existing non-space cells alone so markers and earlier series survive.
func drawLine(grid [][]byte, x0, y0, x1, y1 int, ch byte) {
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if grid[y0][x0] == ' ' {
			grid[y0][x0] = ch
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
