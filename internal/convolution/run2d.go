package convolution

import (
	"bytes"
	"fmt"

	"repro/internal/img"
	"repro/internal/mpi"
)

// 2-D domain decomposition of the same benchmark. The paper's §3 argues
// that halo volume drives the memory/communication trade-off of
// decomposition dimensionality: a 1-D split exchanges two full image rows
// per process regardless of p, while a 2-D split exchanges tile edges whose
// total shrinks as the tiles do. Run2D implements the 2-D variant —
// including the corner exchanges a 3×3 stencil needs — bit-identical to the
// sequential reference, so the HALO sections of both variants can be
// compared on equal footing (see experiments.Compare Decomp).

// Grid2D reports the process grid Run2D uses for p ranks: the divisor pair
// px×py = p with px ≤ py and px maximal (closest to square).
func Grid2D(p int) (px, py int, err error) {
	if p <= 0 {
		return 0, 0, fmt.Errorf("convolution: invalid rank count %d", p)
	}
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			px, py = d, p/d
		}
	}
	return px, py, nil
}

// Halo1DBytesPerProc reports the per-step, per-process halo volume of the
// 1-D decomposition at full problem size (independent of p for interior
// ranks: two full rows).
func (p Params) Halo1DBytesPerProc() int {
	return 2 * p.Width * img.Channels * 8
}

// Halo2DBytesPerProc reports the per-step, per-process halo volume of the
// 2-D decomposition for an interior tile of the px×py grid.
func (p Params) Halo2DBytesPerProc(px, py int) int {
	tileW := (p.Width + px - 1) / px
	tileH := (p.Height + py - 1) / py
	edges := 2*tileW + 2*tileH
	corners := 4
	return (edges + corners) * img.Channels * 8
}

// Run2D executes the benchmark with a 2-D decomposition. Output semantics
// match Run.
func Run2D(cfg mpi.Config, p Params) (*Result, error) {
	if err := p.Validate2D(cfg.Ranks); err != nil {
		return nil, err
	}
	px, py, err := Grid2D(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	var out *img.Image
	rep, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		res, err := runRank2D(c, p, px, py)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = res
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Output: out, Report: rep}, nil
}

// tile2D is the per-rank decomposition geometry.
type tile2D struct {
	cart       *mpi.CartComm
	cx, cy     int // grid coordinates (column, row)
	px, py     int
	xlo, xhi   int // executed column range
	ylo, yhi   int
	fxlo, fxhi int // full-size column range (for cost charging)
	fylo, fyhi int
	w, h       int // executed tile dims
}

func (t *tile2D) fullW() int { return t.fxhi - t.fxlo }
func (t *tile2D) fullH() int { return t.fyhi - t.fylo }

// neighborRank returns the rank at grid offset (dx, dy), or -1 outside.
func (t *tile2D) neighborRank(dx, dy int) int {
	nx, ny := t.cx+dx, t.cy+dy
	if nx < 0 || ny < 0 || nx >= t.px || ny >= t.py {
		return -1
	}
	r, err := t.cart.CoordsToRank([]int{ny, nx})
	if err != nil {
		return -1
	}
	return r
}

func runRank2D(c *mpi.Comm, p Params, px, py int) (*img.Image, error) {
	cart, err := c.CartCreate([]int{py, px}, nil)
	if err != nil {
		return nil, err
	}
	coords := cart.Coords()
	t := &tile2D{cart: cart, cy: coords[0], cx: coords[1], px: px, py: py}
	execW, execH := p.execWidth(), p.execHeight()
	t.xlo, t.xhi = partition(execW, px, t.cx)
	t.ylo, t.yhi = partition(execH, py, t.cy)
	t.fxlo, t.fxhi = partition(p.Width, px, t.cx)
	t.fylo, t.fyhi = partition(p.Height, py, t.cy)
	t.w, t.h = t.xhi-t.xlo, t.yhi-t.ylo
	ch := img.Channels

	// ---- LOAD (same as 1-D).
	var source *img.Image
	err = c.Section(SecLoad, func() error {
		if c.Rank() == 0 {
			if !p.SkipKernel {
				var err error
				source, err = img.NewSynthetic(execW, execH, p.Seed)
				if err != nil {
					return err
				}
				// Through the real codec, like the 1-D variant and the
				// sequential reference.
				var buf bytes.Buffer
				if err := source.EncodePPM(&buf); err != nil {
					return err
				}
				source, err = img.DecodePPM(&buf)
				if err != nil {
					return err
				}
			}
			fullPPM := p.Width*p.Height*ch + 20
			c.StorageRead(fullPPM)
			c.Compute(decodeWork.Scale(float64(p.Width * p.Height * ch)))
		}
		return c.Barrier()
	})
	if err != nil {
		return nil, err
	}

	// ---- SCATTER: root carves tiles and sends them (linear fan-out).
	extractTile := func(im *img.Image, xlo, xhi, ylo, yhi int) []float64 {
		w := xhi - xlo
		tl := make([]float64, 0, (yhi-ylo)*w*ch)
		for y := ylo; y < yhi; y++ {
			row := im.Pix[(y*im.W+xlo)*ch : (y*im.W+xhi)*ch]
			tl = append(tl, row...)
		}
		return tl
	}
	var tile []float64
	err = c.Section(SecScatter, func() error {
		const tag = 110
		if c.Rank() == 0 {
			if p.SkipKernel {
				// Ghost fan-out: one batched delivery instead of p-1
				// individual sends. Message order, charges and stamps match
				// the per-rank loop exactly (descending rank, as before);
				// at 10k ranks the batch collapses ~40 shard-lock
				// acquisitions' worth of delivery out of the hot path.
				n := c.Size() - 1
				dsts := make([]int, 0, n)
				nbytes := make([]int, 0, n)
				vbytes := make([]int, 0, n)
				for r := c.Size() - 1; r >= 1; r-- {
					rcy := r / px
					rcx := r % px
					rxlo, rxhi := partition(execW, px, rcx)
					rylo, ryhi := partition(execH, py, rcy)
					fxlo, fxhi := partition(p.Width, px, rcx)
					fylo, fyhi := partition(p.Height, py, rcy)
					dsts = append(dsts, r)
					nbytes = append(nbytes, (rxhi-rxlo)*(ryhi-rylo)*ch*8)
					vbytes = append(vbytes, (fxhi-fxlo)*(fyhi-fylo)*ch*8)
				}
				return c.SendGhostBatch(dsts, tag, nbytes, vbytes)
			}
			for r := c.Size() - 1; r >= 1; r-- {
				rcy := r / px
				rcx := r % px
				rxlo, rxhi := partition(execW, px, rcx)
				rylo, ryhi := partition(execH, py, rcy)
				fxlo, fxhi := partition(p.Width, px, rcx)
				fylo, fyhi := partition(p.Height, py, rcy)
				vbytes := (fxhi - fxlo) * (fyhi - fylo) * ch * 8
				data := extractTile(source, rxlo, rxhi, rylo, ryhi)
				if err := c.SendFloat64sSized(r, tag, data, vbytes); err != nil {
					return err
				}
			}
			tile = extractTile(source, t.xlo, t.xhi, t.ylo, t.yhi)
			return nil
		}
		if p.SkipKernel {
			_, err := c.RecvDiscard(0, tag)
			return err
		}
		var err error
		tile, _, err = c.RecvFloat64s(0, tag)
		return err
	})
	if err != nil {
		return nil, err
	}
	if !p.SkipKernel && len(tile) != t.w*t.h*ch {
		return nil, fmt.Errorf("convolution: rank %d tile %d != %dx%d", c.Rank(), len(tile), t.w, t.h)
	}

	// ---- time-step loop.
	perStepWork := kernelWork.Scale(float64(t.fullW() * t.fullH() * ch))
	var ext []float64
	if !p.SkipKernel {
		ext = make([]float64, (t.h+2)*(t.w+2)*ch)
	}
	for step := 0; step < p.Steps; step++ {
		if err := c.Section(SecHalo, func() error {
			if p.SkipKernel {
				return t.exchangeHalos2DGhost(c)
			}
			return t.exchangeHalos2D(c, p, tile, ext)
		}); err != nil {
			return nil, err
		}
		if err := c.Section(SecConvolve, func() error {
			if !p.SkipKernel {
				next, err := img.ConvolveExtended(ext, t.w, t.h)
				if err != nil {
					return err
				}
				tile = next
			}
			c.Compute(perStepWork)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// ---- GATHER: tiles back to rank 0.
	var result *img.Image
	err = c.Section(SecGather, func() error {
		const tag = 111
		if c.Rank() != 0 {
			vbytes := t.fullW() * t.fullH() * ch * 8
			if p.SkipKernel {
				return c.SendGhost(0, tag, t.w*t.h*ch*8, vbytes)
			}
			return c.SendFloat64sSized(0, tag, tile, vbytes)
		}
		if p.SkipKernel {
			for r := 1; r < c.Size(); r++ {
				if _, err := c.RecvDiscard(r, tag); err != nil {
					return err
				}
			}
			return nil
		}
		var err error
		result, err = img.New(execW, execH)
		if err != nil {
			return err
		}
		place := func(data []float64, xlo, xhi, ylo, yhi int) {
			w := xhi - xlo
			for y := ylo; y < yhi; y++ {
				copy(result.Pix[(y*execW+xlo)*ch:(y*execW+xhi)*ch],
					data[(y-ylo)*w*ch:(y-ylo+1)*w*ch])
			}
		}
		place(tile, t.xlo, t.xhi, t.ylo, t.yhi)
		for r := 1; r < c.Size(); r++ {
			raw, _, err := c.Recv(r, tag)
			if err != nil {
				return err
			}
			data, err := mpi.BytesToFloat64s(raw)
			if err != nil {
				return err
			}
			mpi.Release(raw)
			rcy, rcx := r/px, r%px
			rxlo, rxhi := partition(execW, px, rcx)
			rylo, ryhi := partition(execH, py, rcy)
			place(data, rxlo, rxhi, rylo, ryhi)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// ---- STORE (same as 1-D).
	err = c.Section(SecStore, func() error {
		if c.Rank() == 0 {
			fullPPM := p.Width*p.Height*ch + 20
			c.Compute(decodeWork.Scale(float64(p.Width * p.Height * ch)))
			c.StorageWrite(fullPPM)
		}
		return c.Barrier()
	})
	if err != nil {
		return nil, err
	}
	if p.SkipKernel {
		return nil, nil
	}
	return result, nil
}
