package convolution

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/img"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
)

// smallParams is a fully-executed configuration small enough for tests.
func smallParams() Params {
	return Params{Width: 24, Height: 20, Steps: 3, Scale: 1, Seed: 11}
}

func idealCfg(ranks int) mpi.Config {
	return mpi.Config{
		Ranks:   ranks,
		Model:   machine.Ideal(ranks, 1),
		Seed:    1,
		Timeout: 60 * time.Second,
	}
}

func TestValidate(t *testing.T) {
	p := smallParams()
	if err := p.Validate(4); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Width: 0, Height: 10, Steps: 1, Scale: 1},
		{Width: 10, Height: 0, Steps: 1, Scale: 1},
		{Width: 10, Height: 10, Steps: 0, Scale: 1},
		{Width: 10, Height: 10, Steps: 1, Scale: 0},
	}
	for i, b := range bad {
		if err := b.Validate(2); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	// More ranks than executed rows.
	if err := smallParams().Validate(21); err == nil {
		t.Error("overdecomposed run accepted")
	}
	if err := (Params{}).Validate(0); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestPartitionProperties(t *testing.T) {
	f := func(nRaw, ranksRaw uint8) bool {
		n := int(nRaw)%500 + 1
		ranks := int(ranksRaw)%n + 1
		prevHi := 0
		total := 0
		for r := 0; r < ranks; r++ {
			lo, hi := partition(n, ranks, r)
			if lo != prevHi || hi < lo {
				return false
			}
			rows := hi - lo
			// Even to within one row.
			if rows < n/ranks || rows > n/ranks+1 {
				return false
			}
			total += rows
			prevHi = hi
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPartitionPaperImbalance(t *testing.T) {
	// 3744 rows over 64 ranks: 32 ranks get 59 rows, 32 get 58.
	with59, with58 := 0, 0
	for r := 0; r < 64; r++ {
		lo, hi := partition(3744, 64, r)
		switch hi - lo {
		case 59:
			with59++
		case 58:
			with58++
		default:
			t.Fatalf("rank %d got %d rows", r, hi-lo)
		}
	}
	if with59 != 32 || with58 != 32 {
		t.Errorf("split = %d×59 + %d×58", with59, with58)
	}
}

// TestDistributedMatchesSequential is the central correctness property:
// the MPI result equals the sequential mean-filter reference bit-for-bit,
// for several rank counts including uneven splits.
func TestDistributedMatchesSequential(t *testing.T) {
	p := smallParams()
	ref, _, err := Sequential(p, machine.Ideal(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 3, 4, 7, 20} {
		ranks := ranks
		t.Run(fmt.Sprintf("ranks=%d", ranks), func(t *testing.T) {
			res, err := Run(idealCfg(ranks), p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Output == nil {
				t.Fatal("no output image")
			}
			d, err := img.MaxAbsDiff(ref, res.Output)
			if err != nil {
				t.Fatal(err)
			}
			if d != 0 {
				t.Errorf("distributed differs from sequential by %g", d)
			}
		})
	}
}

// TestDistributedMatchesSequentialProperty fuzzes shapes, steps and ranks.
func TestDistributedMatchesSequentialProperty(t *testing.T) {
	f := func(wRaw, hRaw, stepsRaw, ranksRaw, seed uint8) bool {
		p := Params{
			Width:  int(wRaw)%10 + 3,
			Height: int(hRaw)%10 + 3,
			Steps:  int(stepsRaw)%3 + 1,
			Scale:  1,
			Seed:   uint64(seed),
		}
		ranks := int(ranksRaw)%p.Height + 1
		ref, _, err := Sequential(p, machine.Ideal(1, 1))
		if err != nil {
			return false
		}
		res, err := Run(idealCfg(ranks), p)
		if err != nil {
			return false
		}
		d, err := img.MaxAbsDiff(ref, res.Output)
		return err == nil && d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestScaledExecutionChargesFullCosts(t *testing.T) {
	// The same full-size problem at two execution scales must cost nearly
	// identical virtual time (the pixel math differs, the charges do not).
	model := machine.NehalemCluster()
	model.Noise = machine.Noise{}
	model.Net.JitterSigma = 0
	base := Params{Width: 512, Height: 256, Steps: 5, Seed: 3, SkipKernel: true}
	var walls []float64
	for _, scale := range []int{1, 4} {
		p := base
		p.Scale = scale
		cfg := mpi.Config{Ranks: 8, Model: model, Seed: 5, Timeout: 60 * time.Second}
		res, err := Run(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		walls = append(walls, res.Report.WallTime)
	}
	rel := (walls[0] - walls[1]) / walls[0]
	if rel < -0.01 || rel > 0.01 {
		t.Errorf("scale changed virtual cost: %v (rel %g)", walls, rel)
	}
}

func TestSkipKernelReturnsNoImage(t *testing.T) {
	p := smallParams()
	p.SkipKernel = true
	res, err := Run(idealCfg(2), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != nil {
		t.Error("SkipKernel returned an image")
	}
}

func TestSectionsProfiled(t *testing.T) {
	profiler := prof.New()
	cfg := idealCfg(4)
	cfg.Tools = []mpi.Tool{profiler}
	cfg.CheckSections = true // the benchmark must satisfy the invariants
	if _, err := Run(cfg, smallParams()); err != nil {
		t.Fatal(err)
	}
	profile, err := profiler.Result()
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range Labels() {
		s := profile.Section(label)
		if s == nil {
			t.Errorf("section %s missing", label)
			continue
		}
		wantInstances := 1
		if label == SecHalo || label == SecConvolve {
			wantInstances = smallParams().Steps
		}
		if s.Instances != wantInstances {
			t.Errorf("%s instances = %d, want %d", label, s.Instances, wantInstances)
		}
		if s.Ranks != 4 {
			t.Errorf("%s ranks = %d", label, s.Ranks)
		}
	}
}

func TestConvolveDominatesAtSmallScaleOnCluster(t *testing.T) {
	// On the cluster model with few ranks, CONVOLVE must dwarf HALO — the
	// left side of the paper's Fig. 5(a).
	profiler := prof.New()
	cfg := mpi.Config{
		Ranks: 4, Model: machine.NehalemCluster(), Seed: 9,
		Tools: []mpi.Tool{profiler}, Timeout: 60 * time.Second,
	}
	p := Params{Width: 1024, Height: 512, Steps: 10, Scale: 4, Seed: 3, SkipKernel: true}
	if _, err := Run(cfg, p); err != nil {
		t.Fatal(err)
	}
	profile, _ := profiler.Result()
	conv := profile.Section(SecConvolve).TotalTime()
	halo := profile.Section(SecHalo).TotalTime()
	if conv <= halo {
		t.Errorf("CONVOLVE (%g) does not dominate HALO (%g) at 4 ranks", conv, halo)
	}
}

func TestSequentialTimeMatchesCalibration(t *testing.T) {
	// Full paper problem on the Nehalem model: sequential time within 2%
	// of the paper's 5589.84 s.
	p := Paper()
	_, seq, err := Sequential(p, machine.NehalemCluster())
	if err != nil {
		t.Fatal(err)
	}
	if seq < 5589.84*0.98 || seq > 5589.84*1.02 {
		t.Errorf("sequential model time = %g, want ≈5589.84", seq)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(idealCfg(0), smallParams()); err == nil {
		t.Error("zero ranks accepted")
	}
	p := smallParams()
	p.Steps = -1
	if _, err := Run(idealCfg(2), p); err == nil {
		t.Error("negative steps accepted")
	}
}
