package convolution

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/img"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
)

func TestGrid2D(t *testing.T) {
	cases := []struct{ p, px, py int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {12, 3, 4},
		{16, 4, 4}, {64, 8, 8}, {7, 1, 7}, {36, 6, 6},
	}
	for _, cse := range cases {
		px, py, err := Grid2D(cse.p)
		if err != nil {
			t.Fatal(err)
		}
		if px != cse.px || py != cse.py {
			t.Errorf("Grid2D(%d) = %dx%d, want %dx%d", cse.p, px, py, cse.px, cse.py)
		}
		if px*py != cse.p || px > py {
			t.Errorf("Grid2D(%d) invalid: %dx%d", cse.p, px, py)
		}
	}
	if _, _, err := Grid2D(0); err == nil {
		t.Error("Grid2D(0) accepted")
	}
}

// TestRun2DMatchesSequential: the decomposition with edge+corner halos must
// reproduce the sequential mean filter bit for bit.
func TestRun2DMatchesSequential(t *testing.T) {
	p := Params{Width: 26, Height: 22, Steps: 3, Scale: 1, Seed: 13}
	ref, _, err := Sequential(p, machine.Ideal(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 4, 6, 9, 12} {
		ranks := ranks
		t.Run(fmt.Sprintf("ranks=%d", ranks), func(t *testing.T) {
			res, err := Run2D(idealCfg(ranks), p)
			if err != nil {
				t.Fatal(err)
			}
			d, err := img.MaxAbsDiff(ref, res.Output)
			if err != nil {
				t.Fatal(err)
			}
			if d != 0 {
				t.Errorf("2-D result differs from sequential by %g", d)
			}
		})
	}
}

// Property over shapes, steps and grids.
func TestRun2DMatchesSequentialProperty(t *testing.T) {
	f := func(wRaw, hRaw, stepsRaw, ranksRaw, seed uint8) bool {
		p := Params{
			Width:  int(wRaw)%10 + 4,
			Height: int(hRaw)%10 + 4,
			Steps:  int(stepsRaw)%3 + 1,
			Scale:  1,
			Seed:   uint64(seed),
		}
		ranks := int(ranksRaw)%4 + 1
		px, py, err := Grid2D(ranks)
		if err != nil || p.Width < px || p.Height < py {
			return true
		}
		ref, _, err := Sequential(p, machine.Ideal(1, 1))
		if err != nil {
			return false
		}
		res, err := Run2D(idealCfg(ranks), p)
		if err != nil {
			return false
		}
		d, err := img.MaxAbsDiff(ref, res.Output)
		return err == nil && d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRun2DMatches1D: both decompositions agree with each other.
func TestRun2DMatches1D(t *testing.T) {
	p := Params{Width: 32, Height: 24, Steps: 4, Scale: 1, Seed: 21}
	r1, err := Run(idealCfg(4), p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run2D(idealCfg(4), p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := img.MaxAbsDiff(r1.Output, r2.Output)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("1-D and 2-D differ by %g", d)
	}
}

func TestRun2DValidation(t *testing.T) {
	p := Params{Width: 4, Height: 4, Steps: 1, Scale: 1, Seed: 1}
	// 9 ranks → 3×3 grid on a 4×4 image: fits; 25 ranks → 5×5 does not.
	if _, err := Run2D(idealCfg(25), p); err == nil {
		t.Error("grid larger than image accepted")
	}
	bad := p
	bad.Steps = 0
	if _, err := Run2D(idealCfg(4), bad); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestHaloVolume2DSmaller: the §3 claim — per-process halo volume of the
// 2-D split shrinks with p while the 1-D volume stays constant.
func TestHaloVolume2DSmaller(t *testing.T) {
	p := Paper()
	oneD := p.Halo1DBytesPerProc()
	prev := 1 << 62
	for _, ranks := range []int{4, 16, 64, 256} {
		px, py, _ := Grid2D(ranks)
		twoD := p.Halo2DBytesPerProc(px, py)
		if twoD >= oneD {
			t.Errorf("p=%d: 2-D halo %d not below 1-D %d", ranks, twoD, oneD)
		}
		if twoD >= prev {
			t.Errorf("p=%d: 2-D halo %d did not shrink (prev %d)", ranks, twoD, prev)
		}
		prev = twoD
	}
}

// TestRun2DHaloCheaperAtScale: the byte advantage shows up in the measured
// HALO section on the cluster model.
func TestRun2DHaloCheaperAtScale(t *testing.T) {
	p := Params{Width: 2048, Height: 2048, Steps: 10, Scale: 8, Seed: 3, SkipKernel: true}
	model := machine.NehalemCluster()
	model.Noise = machine.Noise{}
	model.Net.JitterSigma = 0
	haloOf := func(run func(mpi.Config, Params) (*Result, error)) float64 {
		profiler := prof.New()
		cfg := mpi.Config{
			Ranks: 64, Model: model, Seed: 3,
			Tools: []mpi.Tool{profiler}, Timeout: idealCfg(1).Timeout,
		}
		if _, err := run(cfg, p); err != nil {
			t.Fatal(err)
		}
		profile, err := profiler.Result()
		if err != nil {
			t.Fatal(err)
		}
		return profile.Section(SecHalo).AvgPerProcess()
	}
	h1 := haloOf(Run)
	h2 := haloOf(Run2D)
	if h2 >= h1 {
		t.Errorf("2-D HALO (%g) not cheaper than 1-D (%g) at 64 ranks", h2, h1)
	}
}

// TestRun2DSectionsProfiled: the section anatomy holds in the 2-D variant.
func TestRun2DSectionsProfiled(t *testing.T) {
	profiler := prof.New()
	cfg := idealCfg(4)
	cfg.Tools = []mpi.Tool{profiler}
	cfg.CheckSections = true
	p := Params{Width: 16, Height: 12, Steps: 2, Scale: 1, Seed: 5}
	if _, err := Run2D(cfg, p); err != nil {
		t.Fatal(err)
	}
	profile, err := profiler.Result()
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range Labels() {
		if profile.Section(label) == nil {
			t.Errorf("section %s missing in 2-D run", label)
		}
	}
}
