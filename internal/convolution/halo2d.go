package convolution

import (
	"repro/internal/img"
	"repro/internal/mpi"
)

// Halo exchange of the 2-D decomposition: four edges plus the four corner
// pixels a 3×3 stencil needs, with border replication at the global image
// boundary chosen so the result matches MeanFilter's clamping bit for bit.

// Tags: the direction the message travels.
const (
	tagRowUp    = 210 // my top row, sent to the upper neighbor
	tagRowDown  = 211 // my bottom row, sent to the lower neighbor
	tagColLeft  = 212 // my left column, sent to the left neighbor
	tagColRight = 213 // my right column, sent to the right neighbor
	tagCornerNW = 220 // corner pixels, by travel direction
	tagCornerNE = 221
	tagCornerSW = 222
	tagCornerSE = 223
)

// exchangeHalos2DGhost performs the exact message sequence of
// exchangeHalos2D — same neighbors, tags, real sizes and virtual sizes, in
// the same order — without materializing any payload. SkipKernel sweeps run
// on it: virtual clocks advance identically, nothing is packed or copied.
func (t *tile2D) exchangeHalos2DGhost(c *mpi.Comm) error {
	ch := img.Channels
	w, h := t.w, t.h
	fullRowBytes := t.fullW() * ch * 8
	fullColBytes := t.fullH() * ch * 8
	cornerBytes := ch * 8
	if up := t.neighborRank(0, -1); up >= 0 {
		if _, err := c.SendrecvGhost(up, tagRowUp, w*ch*8, fullRowBytes, up, tagRowDown); err != nil {
			return err
		}
	}
	if down := t.neighborRank(0, +1); down >= 0 {
		if _, err := c.SendrecvGhost(down, tagRowDown, w*ch*8, fullRowBytes, down, tagRowUp); err != nil {
			return err
		}
	}
	if left := t.neighborRank(-1, 0); left >= 0 {
		if _, err := c.SendrecvGhost(left, tagColLeft, h*ch*8, fullColBytes, left, tagColRight); err != nil {
			return err
		}
	}
	if right := t.neighborRank(+1, 0); right >= 0 {
		if _, err := c.SendrecvGhost(right, tagColRight, h*ch*8, fullColBytes, right, tagColLeft); err != nil {
			return err
		}
	}
	for _, d := range cornerDirs {
		if diag := t.neighborRank(d.dx, d.dy); diag >= 0 {
			if _, err := c.SendrecvGhost(diag, d.sendTag, ch*8, cornerBytes, diag, d.recvTag); err != nil {
				return err
			}
		}
	}
	return nil
}

// cornerDir describes one diagonal exchange; the tags encode the travel
// direction.
type cornerDir struct {
	dx, dy  int
	sendTag int
	recvTag int // opposite travel direction
}

var cornerDirs = []cornerDir{
	{-1, -1, tagCornerNW, tagCornerSE},
	{+1, -1, tagCornerNE, tagCornerSW},
	{-1, +1, tagCornerSW, tagCornerNE},
	{+1, +1, tagCornerSE, tagCornerNW},
}

// exchangeHalos2D fills ext (the (h+2)×(w+2) extended tile) from tile and
// the eight neighbors.
func (t *tile2D) exchangeHalos2D(c *mpi.Comm, p Params, tile, ext []float64) error {
	ch := img.Channels
	w, h := t.w, t.h
	extW := w + 2
	extAt := func(y, x int) int { return (y*extW + x) * ch }
	tileAt := func(y, x int) int { return (y*w + x) * ch }

	// Interior copy.
	for y := 0; y < h; y++ {
		copy(ext[extAt(y+1, 1):extAt(y+1, 1)+w*ch], tile[tileAt(y, 0):tileAt(y, 0)+w*ch])
	}

	fullRowBytes := t.fullW() * ch * 8
	fullColBytes := t.fullH() * ch * 8
	cornerBytes := ch * 8

	// --- vertical edges ------------------------------------------------
	topRow := tile[tileAt(0, 0) : tileAt(0, 0)+w*ch]
	bottomRow := tile[tileAt(h-1, 0) : tileAt(h-1, 0)+w*ch]
	if up := t.neighborRank(0, -1); up >= 0 {
		got, _, err := c.SendrecvSized(up, tagRowUp, mpi.Float64sToBytes(topRow),
			fullRowBytes, up, tagRowDown)
		if err != nil {
			return err
		}
		row, err := mpi.BytesToFloat64s(got)
		if err != nil {
			return err
		}
		mpi.Release(got)
		copy(ext[extAt(0, 1):extAt(0, 1)+w*ch], row)
	} else {
		copy(ext[extAt(0, 1):extAt(0, 1)+w*ch], topRow) // replicate global top
	}
	if down := t.neighborRank(0, +1); down >= 0 {
		got, _, err := c.SendrecvSized(down, tagRowDown, mpi.Float64sToBytes(bottomRow),
			fullRowBytes, down, tagRowUp)
		if err != nil {
			return err
		}
		row, err := mpi.BytesToFloat64s(got)
		if err != nil {
			return err
		}
		mpi.Release(got)
		copy(ext[extAt(h+1, 1):extAt(h+1, 1)+w*ch], row)
	} else {
		copy(ext[extAt(h+1, 1):extAt(h+1, 1)+w*ch], bottomRow)
	}

	// --- horizontal edges (columns packed into contiguous buffers) -----
	packCol := func(x int) []float64 {
		col := make([]float64, h*ch)
		for y := 0; y < h; y++ {
			copy(col[y*ch:(y+1)*ch], tile[tileAt(y, x):tileAt(y, x)+ch])
		}
		return col
	}
	placeCol := func(x int, col []float64) {
		for y := 0; y < h; y++ {
			copy(ext[extAt(y+1, x):extAt(y+1, x)+ch], col[y*ch:(y+1)*ch])
		}
	}
	leftCol, rightCol := packCol(0), packCol(w-1)
	if left := t.neighborRank(-1, 0); left >= 0 {
		got, _, err := c.SendrecvSized(left, tagColLeft, mpi.Float64sToBytes(leftCol),
			fullColBytes, left, tagColRight)
		if err != nil {
			return err
		}
		col, err := mpi.BytesToFloat64s(got)
		if err != nil {
			return err
		}
		mpi.Release(got)
		placeCol(0, col)
	} else {
		placeCol(0, leftCol)
	}
	if right := t.neighborRank(+1, 0); right >= 0 {
		got, _, err := c.SendrecvSized(right, tagColRight, mpi.Float64sToBytes(rightCol),
			fullColBytes, right, tagColLeft)
		if err != nil {
			return err
		}
		col, err := mpi.BytesToFloat64s(got)
		if err != nil {
			return err
		}
		mpi.Release(got)
		placeCol(w+1, col)
	} else {
		placeCol(w+1, rightCol)
	}

	// --- corners --------------------------------------------------------
	for _, d := range cornerDirs {
		// My corner pixel in that direction.
		sx, sy := 0, 0
		if d.dx > 0 {
			sx = w - 1
		}
		if d.dy > 0 {
			sy = h - 1
		}
		// Ghost slot receiving the opposite corner of the diagonal
		// neighbor.
		gx, gy := 0, 0
		if d.dx > 0 {
			gx = w + 1
		}
		if d.dy > 0 {
			gy = h + 1
		}
		diag := t.neighborRank(d.dx, d.dy)
		if diag >= 0 {
			pixel := tile[tileAt(sy, sx) : tileAt(sy, sx)+ch]
			got, _, err := c.SendrecvSized(diag, d.sendTag, mpi.Float64sToBytes(pixel),
				cornerBytes, diag, d.recvTag)
			if err != nil {
				return err
			}
			vals, err := mpi.BytesToFloat64s(got)
			if err != nil {
				return err
			}
			mpi.Release(got)
			copy(ext[extAt(gy, gx):extAt(gy, gx)+ch], vals)
			continue
		}
		// Replication per MeanFilter clamping: prefer the vertical clamp
		// (missing up/down neighbor ⇒ take the adjacent ghost column
		// entry), then the horizontal clamp.
		vMissing := t.neighborRank(0, d.dy) < 0
		hMissing := t.neighborRank(d.dx, 0) < 0
		var src int
		switch {
		case vMissing:
			// Clamp y: the value sits in the already-filled ghost COLUMN
			// at my edge row (or is my own corner when both are missing —
			// the ghost column was itself replicated then).
			srcY := 1
			if d.dy > 0 {
				srcY = h
			}
			src = extAt(srcY, gx)
		case hMissing:
			// Clamp x: value from the filled ghost ROW at my edge column.
			srcX := 1
			if d.dx > 0 {
				srcX = w
			}
			src = extAt(gy, srcX)
		default:
			// Unreachable: diag exists iff both axis neighbors exist on a
			// full grid; defensive fallback to the nearest interior pixel.
			src = extAt(1, 1)
		}
		copy(ext[extAt(gy, gx):extAt(gy, gx)+ch], ext[src:src+ch])
	}
	return nil
}
