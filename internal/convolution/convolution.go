// Package convolution implements the paper's §5.1 benchmark: a repeated
// 3×3 mean-filter convolution of a large RGB image, 1-D decomposed over MPI
// ranks, with the six instrumented MPI_Sections of the paper's Fig. 4:
//
//	LOAD     — rank 0 loads and decodes the image, others wait
//	SCATTER  — image bands distributed from rank 0
//	CONVOLVE — local stencil computation, every step
//	HALO     — ghost-row exchange with both neighbors, every step
//	GATHER   — bands collected back on rank 0
//	STORE    — rank 0 encodes and stores the result, others wait
//
// Execution is scale-aware: the real pixel data may be a 1/Scale-sized
// replica of the paper's 5616×3744 image (so runs finish quickly and the
// result stays verifiable against the sequential reference), while all
// virtual-clock charges — kernel work, halo bytes, scatter/gather bytes,
// storage traffic — are those of the full-size problem.
package convolution

import (
	"bytes"
	"fmt"

	"repro/internal/img"
	"repro/internal/machine"
	"repro/internal/mpi"
)

// Section labels, exactly as in the paper.
const (
	SecLoad     = "LOAD"
	SecScatter  = "SCATTER"
	SecConvolve = "CONVOLVE"
	SecHalo     = "HALO"
	SecGather   = "GATHER"
	SecStore    = "STORE"
)

// Labels lists the benchmark's section labels in phase order.
func Labels() []string {
	return []string{SecLoad, SecScatter, SecConvolve, SecHalo, SecGather, SecStore}
}

// Params configures one benchmark run.
type Params struct {
	// Width, Height are the FULL problem dimensions used for every cost
	// charge (paper: 5616 × 3744).
	Width, Height int
	// Steps is the number of convolution time-steps (paper: 1000).
	Steps int
	// Scale divides the dimensions of the really-executed image (>= 1).
	// Scale 1 executes the full problem.
	Scale int
	// Seed drives the synthetic input image.
	Seed uint64
	// SkipKernel skips the real pixel arithmetic (cost charges are
	// unaffected). Used by the large experiment sweeps; correctness runs
	// keep it false.
	SkipKernel bool
}

// Paper returns the paper's full-size configuration, executed on 1/8-scale
// pixel data.
func Paper() Params {
	return Params{Width: 5616, Height: 3744, Steps: 1000, Scale: 8, Seed: 2017, SkipKernel: true}
}

// Validate checks the configuration against a rank count.
func (p Params) Validate(ranks int) error {
	if p.Width <= 0 || p.Height <= 0 {
		return fmt.Errorf("convolution: invalid dimensions %dx%d", p.Width, p.Height)
	}
	if p.Steps <= 0 {
		return fmt.Errorf("convolution: Steps must be positive, got %d", p.Steps)
	}
	if p.Scale < 1 {
		return fmt.Errorf("convolution: Scale must be >= 1, got %d", p.Scale)
	}
	if ranks <= 0 {
		return fmt.Errorf("convolution: need at least one rank")
	}
	if p.execHeight() < ranks {
		return fmt.Errorf("convolution: executed height %d smaller than %d ranks (reduce Scale)",
			p.execHeight(), ranks)
	}
	if p.Height < ranks {
		return fmt.Errorf("convolution: full height %d smaller than %d ranks", p.Height, ranks)
	}
	return nil
}

// Validate2D checks the configuration against the px×py process grid the
// 2-D decomposition uses for this rank count. It is the relaxed geometry
// check Run2D needs: each grid dimension must fit the corresponding image
// dimension, rather than the 1-D requirement that the executed *height*
// cover every rank — which is what caps the 1-D variant near the paper's
// scales and would reject a 10,000-rank run outright (a 100×100 grid over
// the paper image is fine; 10,000 rows of a 234-row scaled image are not).
func (p Params) Validate2D(ranks int) error {
	if p.Width <= 0 || p.Height <= 0 {
		return fmt.Errorf("convolution: invalid dimensions %dx%d", p.Width, p.Height)
	}
	if p.Steps <= 0 {
		return fmt.Errorf("convolution: Steps must be positive, got %d", p.Steps)
	}
	if p.Scale < 1 {
		return fmt.Errorf("convolution: Scale must be >= 1, got %d", p.Scale)
	}
	px, py, err := Grid2D(ranks)
	if err != nil {
		return err
	}
	if p.execWidth() < px || p.execHeight() < py {
		return fmt.Errorf("convolution: executed image %dx%d smaller than %dx%d grid (reduce Scale)",
			p.execWidth(), p.execHeight(), px, py)
	}
	if p.Width < px || p.Height < py {
		return fmt.Errorf("convolution: full image %dx%d smaller than %dx%d grid",
			p.Width, p.Height, px, py)
	}
	return nil
}

func (p Params) execWidth() int  { return max(1, p.Width/p.Scale) }
func (p Params) execHeight() int { return max(1, p.Height/p.Scale) }

// partition splits n rows over ranks as evenly as possible, the first rem
// ranks receiving one extra row — the source of the paper's tiny inherent
// imbalance at p=64 (3744 = 58×64 + 32).
func partition(n, ranks, rank int) (lo, hi int) {
	base, rem := n/ranks, n%ranks
	lo = rank*base + min(rank, rem)
	hi = lo + base
	if rank < rem {
		hi++
	}
	return lo, hi
}

// decodeWork is the modeled per-channel-value cost of PPM decode/encode.
var decodeWork = machine.Work{Flops: 4, Bytes: 3}

// kernelWork is the modeled per-channel-value cost of one mean-filter step.
var kernelWork = machine.Work{Flops: img.KernelWork.Flops, Bytes: img.KernelWork.Bytes}

// Result carries the distributed output and the run report.
type Result struct {
	// Output is the gathered, convolved image at execution scale (nil when
	// SkipKernel was set — there is nothing meaningful to return).
	Output *img.Image
	// Report is the virtual-time run report.
	Report *mpi.Report
}

// Run executes the benchmark under cfg (which supplies rank count, machine
// model, seed and attached tools).
func Run(cfg mpi.Config, p Params) (*Result, error) {
	if err := p.Validate(cfg.Ranks); err != nil {
		return nil, err
	}
	var out *img.Image
	rep, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		res, err := runRank(c, p)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = res
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Output: out, Report: rep}, nil
}

// runRank is the per-rank benchmark body.
func runRank(c *mpi.Comm, p Params) (*img.Image, error) {
	rank, ranks := c.Rank(), c.Size()
	execW, execH := p.execWidth(), p.execHeight()
	stride := execW * img.Channels
	fullRowBytes := p.Width * img.Channels * 8

	// ---- LOAD: rank 0 loads and decodes; everyone waits (paper Fig. 4).
	// A SkipKernel sweep never touches pixel data anywhere below, so it
	// skips the synthetic image entirely; the charges are identical.
	var source *img.Image
	err := c.Section(SecLoad, func() error {
		if rank == 0 {
			if !p.SkipKernel {
				var err error
				source, err = img.NewSynthetic(execW, execH, p.Seed)
				if err != nil {
					return err
				}
				// Encode/decode through the real PPM codec; always charge
				// full-size storage + decode.
				var buf bytes.Buffer
				if err := source.EncodePPM(&buf); err != nil {
					return err
				}
				source, err = img.DecodePPM(&buf)
				if err != nil {
					return err
				}
			}
			fullPPM := len(fmt.Sprintf("P6\n%d %d\n255\n", p.Width, p.Height)) +
				p.Width*p.Height*img.Channels
			c.StorageRead(fullPPM)
			c.Compute(decodeWork.Scale(float64(p.Width * p.Height * img.Channels)))
		}
		return c.Barrier() // others' wait is LOAD time, as in the paper
	})
	if err != nil {
		return nil, err
	}

	// ---- SCATTER: rank 0 sends each rank its band (linear root fan-out,
	// the root bottleneck MPI_Scatterv exhibits). Virtual sizes are the
	// full-problem band sizes.
	var band []float64
	execLo, execHi := partition(execH, ranks, rank)
	fullLo, fullHi := partition(p.Height, ranks, rank)
	execRows := execHi - execLo
	fullRows := fullHi - fullLo
	err = c.Section(SecScatter, func() error {
		const tag = 100
		if rank == 0 {
			for r := ranks - 1; r >= 1; r-- {
				rLo, rHi := partition(execH, ranks, r)
				rFullLo, rFullHi := partition(p.Height, ranks, r)
				vbytes := (rFullHi - rFullLo) * fullRowBytes
				if p.SkipKernel {
					// Ghost band: no pixels exist, but the message carries
					// the band's real byte count and full-problem vbytes.
					if err := c.SendGhost(r, tag, (rHi-rLo)*stride*8, vbytes); err != nil {
						return err
					}
					continue
				}
				rows, err := source.Rows(rLo, rHi)
				if err != nil {
					return err
				}
				if err := c.SendFloat64sSized(r, tag, rows, vbytes); err != nil {
					return err
				}
			}
			if p.SkipKernel {
				return nil
			}
			own, err := source.Rows(0, execHi)
			if err != nil {
				return err
			}
			band = append([]float64(nil), own...)
			return nil
		}
		if p.SkipKernel {
			_, err := c.RecvDiscard(0, tag)
			return err
		}
		var err error
		band, _, err = c.RecvFloat64s(0, tag)
		return err
	})
	if err != nil {
		return nil, err
	}
	if !p.SkipKernel && len(band) != execRows*stride {
		return nil, fmt.Errorf("convolution: rank %d band %d != %d rows", rank, len(band), execRows)
	}

	// ---- time-step loop: HALO then CONVOLVE, p.Steps times.
	up, down := rank-1, rank+1
	perStepWork := kernelWork.Scale(float64(fullRows * p.Width * img.Channels))
	rowBytes := stride * 8
	var topHalo, bottomHalo []float64
	var topScratch, botScratch []float64 // persistent receive buffers
	for step := 0; step < p.Steps; step++ {
		err = c.Section(SecHalo, func() error {
			const tagUp, tagDown = 200, 201
			if p.SkipKernel {
				// Ghost exchange: full matching, ordering and timing, zero
				// payload traffic.
				if up >= 0 {
					if _, err := c.SendrecvGhost(up, tagUp, rowBytes, fullRowBytes, up, tagDown); err != nil {
						return err
					}
				}
				if down < ranks {
					if _, err := c.SendrecvGhost(down, tagDown, rowBytes, fullRowBytes, down, tagUp); err != nil {
						return err
					}
				}
				return nil
			}
			topHalo, bottomHalo = nil, nil
			// Exchange with the upper neighbor: send my first row up,
			// receive their last row.
			if up >= 0 {
				firstRow := band[0:stride]
				got, _, err := c.SendrecvFloat64sInto(up, tagUp, firstRow,
					fullRowBytes, up, tagDown, topScratch)
				if err != nil {
					return err
				}
				topScratch, topHalo = got, got
			}
			if down < ranks {
				lastRow := band[(execRows-1)*stride:]
				got, _, err := c.SendrecvFloat64sInto(down, tagDown, lastRow,
					fullRowBytes, down, tagUp, botScratch)
				if err != nil {
					return err
				}
				botScratch, bottomHalo = got, got
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		err = c.Section(SecConvolve, func() error {
			if !p.SkipKernel {
				next, err := img.ConvolveBand(band, execW, execRows, topHalo, bottomHalo)
				if err != nil {
					return err
				}
				band = next
			}
			c.Compute(perStepWork)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// ---- GATHER: bands back to rank 0 (linear root fan-in).
	var result *img.Image
	err = c.Section(SecGather, func() error {
		const tag = 300
		if rank != 0 {
			if p.SkipKernel {
				return c.SendGhost(0, tag, execRows*stride*8, fullRows*fullRowBytes)
			}
			return c.SendFloat64sSized(0, tag, band, fullRows*fullRowBytes)
		}
		if p.SkipKernel {
			for r := 1; r < ranks; r++ {
				if _, err := c.RecvDiscard(r, tag); err != nil {
					return err
				}
			}
			return nil
		}
		var err error
		result, err = img.New(execW, execH)
		if err != nil {
			return err
		}
		copy(result.Pix[0:execHi*stride], band)
		for r := 1; r < ranks; r++ {
			raw, _, err := c.Recv(r, tag)
			if err != nil {
				return err
			}
			rows, err := mpi.BytesToFloat64s(raw)
			if err != nil {
				return err
			}
			mpi.Release(raw)
			rLo, rHi := partition(execH, ranks, r)
			copy(result.Pix[rLo*stride:rHi*stride], rows)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// ---- STORE: rank 0 encodes and writes; everyone waits.
	err = c.Section(SecStore, func() error {
		if rank == 0 {
			if !p.SkipKernel {
				var buf bytes.Buffer
				if err := result.EncodePPM(&buf); err != nil {
					return err
				}
			}
			fullPPM := len(fmt.Sprintf("P6\n%d %d\n255\n", p.Width, p.Height)) +
				p.Width*p.Height*img.Channels
			c.Compute(decodeWork.Scale(float64(p.Width * p.Height * img.Channels)))
			c.StorageWrite(fullPPM)
		}
		return c.Barrier()
	})
	if err != nil {
		return nil, err
	}
	if p.SkipKernel {
		return nil, nil
	}
	return result, nil
}

// Sequential computes the reference result (at execution scale) and the
// modeled sequential time of the FULL problem — the Speedup numerator.
func Sequential(p Params, model *machine.Model) (*img.Image, float64, error) {
	if err := p.Validate(1); err != nil {
		return nil, 0, err
	}
	// The modeled time below is analytic; pixel data only matters when the
	// kernel really executes, so SkipKernel sweeps never build the image.
	var out *img.Image
	if !p.SkipKernel {
		src, err := img.NewSynthetic(p.execWidth(), p.execHeight(), p.Seed)
		if err != nil {
			return nil, 0, err
		}
		// Run through the codec exactly like rank 0 of the parallel run.
		var buf bytes.Buffer
		if err := src.EncodePPM(&buf); err != nil {
			return nil, 0, err
		}
		decoded, err := img.DecodePPM(&buf)
		if err != nil {
			return nil, 0, err
		}
		out = img.MeanFilterSteps(decoded, p.Steps)
	}
	values := float64(p.Width * p.Height * img.Channels)
	t := model.SerialComputeTime(kernelWork.Scale(values * float64(p.Steps)))
	t += 2 * model.SerialComputeTime(decodeWork.Scale(values))
	fullPPM := p.Width*p.Height*img.Channels + 20
	t += 2 * model.StorageTime(fullPPM)
	return out, t, nil
}
