package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Timeline renders section events as a coarse per-rank ASCII chart: one row
// per rank, time flowing left to right, each column colored by the section
// that was innermost for the majority of that column's time slice. It is
// the terminal cousin of the paper's Fig. 3 temporal layout.
//
// Only events whose label is in focus (all section labels when focus is
// empty) are considered. width is the number of character columns.
func Timeline(events []Event, width int, focus ...string) string {
	if width <= 0 {
		width = 80
	}
	focusSet := map[string]bool{}
	for _, f := range focus {
		focusSet[f] = true
	}
	keep := func(label string) bool {
		return len(focusSet) == 0 || focusSet[label]
	}

	// Replay in deterministic order regardless of how the caller assembled
	// the slice: time, then rank, then kind (leave before enter on ties) —
	// the same tie-break Buffer.Events uses, so golden timelines are stable
	// under any -j scheduling.
	events = append([]Event(nil), events...)
	SortEvents(events)

	// Collect intervals per rank by replaying the enter/leave stream.
	type ival struct {
		from, to float64
		label    string
	}
	var (
		maxT     float64
		ranks    = map[int]bool{}
		open     = map[int][]ival{} // per-rank stack
		perRank  = map[int][]ival{}
		labelSet = map[string]bool{}
	)
	for _, e := range events {
		if e.T > maxT {
			maxT = e.T
		}
		switch e.Kind {
		case KindSectionEnter:
			if !keep(e.Label) {
				continue
			}
			ranks[e.Rank] = true
			open[e.Rank] = append(open[e.Rank], ival{from: e.T, label: e.Label})
		case KindSectionLeave:
			if !keep(e.Label) {
				continue
			}
			st := open[e.Rank]
			if n := len(st); n > 0 && st[n-1].label == e.Label {
				iv := st[n-1]
				iv.to = e.T
				open[e.Rank] = st[:n-1]
				perRank[e.Rank] = append(perRank[e.Rank], iv)
				labelSet[e.Label] = true
			}
		}
	}
	if maxT <= 0 || len(perRank) == 0 {
		return "(empty timeline)\n"
	}

	// Assign one glyph per label, deterministic order.
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	glyphs := "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	glyphOf := map[string]byte{}
	for i, l := range labels {
		glyphOf[l] = glyphs[i%len(glyphs)]
	}

	rankIDs := make([]int, 0, len(perRank))
	for r := range perRank {
		rankIDs = append(rankIDs, r)
	}
	sort.Ints(rankIDs)

	var sb strings.Builder
	dt := maxT / float64(width)
	for _, r := range rankIDs {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		// Innermost wins: paint outer intervals first (longer first). Length
		// ties break on start time then label so equal-length intervals
		// paint in one fixed order.
		ivs := perRank[r]
		sort.SliceStable(ivs, func(i, j int) bool {
			di, dj := ivs[i].to-ivs[i].from, ivs[j].to-ivs[j].from
			if di != dj {
				return di > dj
			}
			if ivs[i].from != ivs[j].from {
				return ivs[i].from < ivs[j].from
			}
			return ivs[i].label < ivs[j].label
		})
		for _, iv := range ivs {
			lo := int(iv.from / dt)
			hi := int(iv.to / dt)
			if hi >= width {
				hi = width - 1
			}
			for col := lo; col <= hi; col++ {
				row[col] = glyphOf[iv.label]
			}
		}
		fmt.Fprintf(&sb, "rank %4d |%s|\n", r, row)
	}
	sb.WriteString("legend: ")
	for i, l := range labels {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%c=%s", glyphOf[l], l)
	}
	fmt.Fprintf(&sb, "  (%.4gs full scale)\n", maxT)
	return sb.String()
}
