package trace

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// TestReadCSVTruncatedPrefix pins the crashed-run recovery contract: a
// stream cut mid-row parses to exactly the rows before the cut plus a
// *CorruptError naming the damaged record.
func TestReadCSVTruncatedPrefix(t *testing.T) {
	buf := NewBuffer(0)
	for i := 0; i < 3; i++ {
		buf.Add(Event{T: float64(i), Rank: i, Kind: KindMarker, Label: "m"})
	}
	var full bytes.Buffer
	if err := buf.WriteCSV(&full); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(full.String(), "\n")
	if len(lines) < 4 {
		t.Fatalf("want >=4 lines, got %d", len(lines))
	}
	// Cut the last data row in half.
	trunc := strings.Join(lines[:3], "") + lines[3][:len(lines[3])/2]
	events, err := ReadCSV(strings.NewReader(trunc))
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if ce.Row != 4 {
		t.Errorf("CorruptError.Row = %d, want 4", ce.Row)
	}
	if len(events) != 2 {
		t.Fatalf("prefix has %d events, want 2", len(events))
	}
	for i, e := range events {
		if e.Rank != i || e.Kind != KindMarker {
			t.Errorf("prefix event %d = %+v", i, e)
		}
	}
	// A corrupt middle row also yields the prefix before it.
	mid := lines[0] + lines[1] + "garbage,row\n" + lines[3]
	events, err = ReadCSV(strings.NewReader(mid))
	if !errors.As(err, &ce) || ce.Row != 3 {
		t.Fatalf("mid-corruption: err = %v, want CorruptError at record 3", err)
	}
	if len(events) != 1 {
		t.Fatalf("mid-corruption prefix has %d events, want 1", len(events))
	}
}

// FuzzReadCSV hammers the CSV decoder with arbitrary byte streams —
// malformed rows, broken quoting, binary garbage, huge fields. The decoder
// must either return an error or a well-formed event slice; it must never
// panic. When a stream parses, re-encoding the events and parsing again
// must reproduce them (decode∘encode = id on the decoder's image).
func FuzzReadCSV(f *testing.F) {
	// Seed corpus: a valid stream, then progressively broken variants.
	var valid bytes.Buffer
	buf := NewBuffer(0)
	buf.Add(Event{T: 0.5, Rank: 0, Kind: KindSectionEnter, Comm: 1, Label: "HALO"})
	buf.Add(Event{T: 1.25, Rank: 0, Kind: KindSectionLeave, Comm: 1, Label: "HALO"})
	buf.Add(Event{T: 0.75, Rank: 1, Kind: KindSend, Comm: 1, Peer: 0, Bytes: 4096})
	if err := buf.WriteCSV(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("t,rank,kind,comm,label,peer,bytes\n"))
	f.Add([]byte("t,rank,kind,comm,label,peer,bytes\n1,0,section-enter,0,A,0\n"))   // short row
	f.Add([]byte("t,rank,kind,comm,label,peer,bytes\nNaN,0,bogus-kind,0,A,0,0\n"))  // bad kind
	f.Add([]byte("t,rank,kind,comm,label,peer,bytes\n1,0,send,0,\"unclosed,0,0\n")) // broken quote
	f.Add([]byte("t,rank,kind,comm,label,peer,bytes\n1,x,send,0,A,0,0\n"))          // bad int
	f.Add([]byte("wrong,header,entirely\n1,2,3\n"))                                 // wrong header
	f.Add([]byte("t,rank,kind,comm,label,peer,bytes\n1e309,0,send,0,A,0,0\n"))      // float overflow
	f.Add([]byte("t,rank,kind,comm,label,peer,bytes\n1,0,marker,0," +
		strings.Repeat("x", 1<<16) + ",0,0\n")) // huge field
	// Truncation seeds: a valid stream cut mid-row at several depths — the
	// shape a crashed writer leaves behind.
	for _, cut := range []int{1, len(valid.Bytes()) / 2, len(valid.Bytes()) - 3} {
		f.Add(valid.Bytes()[:cut])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			// Corruption must still yield a usable, re-encodable prefix;
			// any other error must come with no events at all.
			var ce *CorruptError
			if !errors.As(err, &ce) {
				if len(events) != 0 {
					t.Fatalf("non-corrupt error %v returned %d events", err, len(events))
				}
				return
			}
			var out bytes.Buffer
			if werr := WriteEventsCSV(&out, events); werr != nil {
				t.Fatalf("prefix re-encode failed: %v", werr)
			}
			again, rerr := ReadCSV(&out)
			if rerr != nil || len(again) != len(events) {
				t.Fatalf("prefix round trip: %d events, err %v (want %d, nil)", len(again), rerr, len(events))
			}
			return
		}
		// Accepted input: the parsed events must survive a write/read cycle.
		b := NewBuffer(0)
		for _, e := range events {
			b.Add(e)
		}
		var out bytes.Buffer
		if err := b.WriteCSV(&out); err != nil {
			t.Fatalf("re-encode failed for accepted input: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("re-parse failed for accepted input: %v\n%s", err, out.String())
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(again))
		}
	})
}

// TestCSVRoundTripProperty is the satellites' events→CSV→events property:
// for arbitrary generated event sets, WriteCSV∘ReadCSV preserves every
// field exactly (the 'g'/17 float format is lossless for float64).
func TestCSVRoundTripProperty(t *testing.T) {
	gen := func(tRaw []uint32, rankRaw []uint8, kindRaw []uint8, labels []string) bool {
		n := len(tRaw)
		if len(rankRaw) < n {
			n = len(rankRaw)
		}
		if len(kindRaw) < n {
			n = len(kindRaw)
		}
		if len(labels) < n {
			n = len(labels)
		}
		buf := NewBuffer(0)
		want := make([]Event, 0, n)
		for i := 0; i < n; i++ {
			// Keep timestamps finite and distinct enough to make the sort
			// deterministic; labels must not embed \r (the csv reader
			// normalizes \r\n inside quoted fields, by design).
			label := strings.Map(func(r rune) rune {
				if r == '\r' {
					return '_'
				}
				return r
			}, labels[i])
			e := Event{
				T:     float64(tRaw[i]) + float64(i)/1024,
				Rank:  int(rankRaw[i]),
				Kind:  Kind(int(kindRaw[i]) % len(kindNames)),
				Comm:  int64(i),
				Label: label,
				Peer:  int(rankRaw[i]) - 3,
				Bytes: int(tRaw[i] % 1e6),
			}
			if math.IsInf(e.T, 0) || math.IsNaN(e.T) {
				continue
			}
			buf.Add(e)
			want = append(want, e)
		}
		var csvOut bytes.Buffer
		if err := buf.WriteCSV(&csvOut); err != nil {
			t.Log(err)
			return false
		}
		got, err := ReadCSV(bytes.NewReader(csvOut.Bytes()))
		if err != nil {
			t.Log(err)
			return false
		}
		// ReadCSV yields WriteCSV's time-sorted order; compare against the
		// buffer's own sorted view.
		return reflect.DeepEqual(got, buf.Events())
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBufferWarning pins the truncation surfacing contract: a capped
// buffer that dropped events must say so, an intact one must stay silent.
func TestBufferWarning(t *testing.T) {
	b := NewBuffer(2)
	for i := 0; i < 5; i++ {
		b.Add(Event{T: float64(i), Kind: KindMarker})
	}
	if b.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", b.Dropped())
	}
	w := b.Warning()
	if !strings.Contains(w, "dropped 3 events") || !strings.Contains(w, "2-event limit") {
		t.Fatalf("warning does not surface the loss: %q", w)
	}
	ok := NewBuffer(0)
	ok.Add(Event{Kind: KindMarker})
	if w := ok.Warning(); w != "" {
		t.Fatalf("intact buffer warns: %q", w)
	}
}
