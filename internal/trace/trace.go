// Package trace records timestamped runtime events (section boundaries,
// messages, collectives) from the mpi tool layer and renders them as CSV,
// JSON lines, or a coarse ASCII timeline. It is the "temporal trace viewer"
// substrate the paper's §5.3 sketches: section events give a coarse-grained
// overview that a GUI tool could zoom into.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	KindSectionEnter Kind = iota
	KindSectionLeave
	KindSend
	KindRecv
	KindCollective
	KindPcontrol
	KindMarker
	KindCollectiveEnd
	// KindFault is an injected fault (fault.Kill/Drop/Delay/Trunc); the
	// fault kind string rides in Label, the link target in Peer, and an
	// injected delay (seconds) in ArrT.
	KindFault
	// KindDeadPeer is the observed consequence of a peer death: the
	// blocking operation's section rides in Label, the dead peer in Peer,
	// and the moment the operation started blocking in PostT (so T-PostT
	// is the time lost waiting on the dead rank).
	KindDeadPeer
	// KindVerify is a runtime-verifier violation (internal/verify): the
	// violation class and detail ride in Label ("class: detail"), and the
	// offending rank in Rank.
	KindVerify
	// KindOmpRegion is one modeled thread-team compute region (an OpenMP
	// parallel loop or region executed via Comm.ComputeParallel). The
	// 11-column CSV schema is unchanged — the region's fields ride in
	// existing columns: the team size in Bytes, the region's start in PostT
	// (T is its end), and the single-thread duration of the same work in
	// ArrT. These are the inputs of the POP MPI+OpenMP inefficiency split
	// (internal/pop).
	KindOmpRegion
)

var kindNames = map[Kind]string{
	KindSectionEnter:  "section-enter",
	KindSectionLeave:  "section-leave",
	KindSend:          "send",
	KindRecv:          "recv",
	KindCollective:    "collective",
	KindPcontrol:      "pcontrol",
	KindMarker:        "marker",
	KindCollectiveEnd: "collective-end",
	KindFault:         "fault",
	KindDeadPeer:      "dead-peer",
	KindVerify:        "verify",
	KindOmpRegion:     "omp-region",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind inverts Kind.String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown kind %q", s)
}

// Event is one timestamped record. Peer and Bytes are kind-dependent
// (message endpoints and sizes; Pcontrol level rides in Bytes). Tag is the
// message tag on send/recv events (collective-internal traffic carries
// negative tags). SendT, PostT and ArrT are the matched-pair timestamps of
// recv events (mpi.MatchInfo: matching send's post time, this receive's
// post time, modeled payload arrival) — zero on every other kind.
type Event struct {
	T     float64 `json:"t"`
	Rank  int     `json:"rank"`
	Kind  Kind    `json:"kind"`
	Comm  int64   `json:"comm"`
	Label string  `json:"label"`
	Peer  int     `json:"peer"`
	Bytes int     `json:"bytes"`
	Tag   int     `json:"tag,omitempty"`
	SendT float64 `json:"sendt,omitempty"`
	PostT float64 `json:"postt,omitempty"`
	ArrT  float64 `json:"arrt,omitempty"`
}

// Buffer accumulates events from concurrent ranks. The zero value is ready.
type Buffer struct {
	mu     sync.Mutex
	events []Event
	limit  int // 0 = unbounded
	drops  int
}

// NewBuffer returns a buffer that keeps at most limit events (0 for
// unbounded); past the limit new events are counted as dropped, which is
// the "event selectivity" safeguard large traces need.
func NewBuffer(limit int) *Buffer {
	return &Buffer{limit: limit}
}

// Add appends one event.
func (b *Buffer) Add(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limit > 0 && len(b.events) >= b.limit {
		b.drops++
		return
	}
	b.events = append(b.events, e)
}

// Len reports the number of stored events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Dropped reports how many events were discarded due to the limit.
func (b *Buffer) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.drops
}

// Warning returns a human-readable caveat when the limit discarded events
// — every aggregate derived from a truncated buffer is incomplete — and
// "" when nothing was lost. Report renderers print it verbatim.
func (b *Buffer) Warning() string {
	b.mu.Lock()
	drops, limit, kept := b.drops, b.limit, len(b.events)
	b.mu.Unlock()
	if drops == 0 {
		return ""
	}
	return fmt.Sprintf("warning: trace buffer dropped %d events past the %d-event limit (%d kept); derived aggregates are incomplete",
		drops, limit, kept)
}

// Events returns the events sorted by time (ties by rank, then kind order),
// as a copy safe to retain.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	b.mu.Unlock()
	SortEvents(out)
	return out
}

// SortEvents sorts events in the canonical replay order every consumer in
// this repository uses: time, then rank, then kind (section leaves before
// same-timestamp enters so interval replays stay well nested). For boundary
// events the sort stays stable beyond that — two nested section enters can
// share a timestamp and their recording order (outer before inner) IS the
// nesting information, so no payload field may reorder them. KindVerify
// events carry no such ordering and several can share (t, rank, kind) when
// one operation trips multiple checks, so for those the payload columns
// (comm, label, peer, bytes, tag) break the tie: verifier violations land
// in the same order regardless of -j worker count or buffer arrival
// interleaving. Offline analyses (internal/waitstate) normalize their
// input with it.
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if ka, kb := kindOrder(a.Kind), kindOrder(b.Kind); ka != kb {
			return ka < kb
		}
		if a.Kind != KindVerify {
			return false // stable: keep recording order
		}
		if a.Comm != b.Comm {
			return a.Comm < b.Comm
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		if a.Bytes != b.Bytes {
			return a.Bytes < b.Bytes
		}
		return a.Tag < b.Tag
	})
}

// kindOrder breaks timestamp ties so that interval replays stay well
// nested: a section leave at time t precedes a sibling enter at the same t.
func kindOrder(k Kind) int {
	if k == KindSectionLeave {
		return -1
	}
	return int(k)
}

// Filter returns the stored events satisfying keep, time-sorted.
func (b *Buffer) Filter(keep func(Event) bool) []Event {
	all := b.Events()
	out := all[:0]
	for _, e := range all {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// csvHeader is the stable column set of the CSV codec. The tag and
// matched-pair timestamp columns (tag, sendt, postt, arrt) carry the
// wait-state analysis inputs; they are zero for non-message kinds.
var csvHeader = []string{"t", "rank", "kind", "comm", "label", "peer", "bytes", "tag", "sendt", "postt", "arrt"}

// WriteCSV streams the buffer's time-sorted events as CSV with a header.
func (b *Buffer) WriteCSV(w io.Writer) error {
	return WriteEventsCSV(w, b.Events())
}

// WriteEventsCSV streams an already-assembled event slice as CSV with the
// standard header — the replayable interchange format cmd/secanalyze
// -waitstate consumes.
func WriteEventsCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, e := range events {
		rec := []string{
			strconv.FormatFloat(e.T, 'g', 17, 64),
			strconv.Itoa(e.Rank),
			e.Kind.String(),
			strconv.FormatInt(e.Comm, 10),
			e.Label,
			strconv.Itoa(e.Peer),
			strconv.Itoa(e.Bytes),
			strconv.Itoa(e.Tag),
			strconv.FormatFloat(e.SendT, 'g', 17, 64),
			strconv.FormatFloat(e.PostT, 'g', 17, 64),
			strconv.FormatFloat(e.ArrT, 'g', 17, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CorruptError reports a CSV stream that was readable only up to a point —
// a truncated final line from a crashed run, or a corrupt row in the
// middle. Row is the 1-based record number (the header is record 1) of the
// first unreadable record; Err is the underlying parse failure. ReadCSV
// pairs it with the events parsed before the damage, so consumers can
// analyze the intact prefix after warning.
type CorruptError struct {
	Row int
	Err error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("trace: corrupt CSV at record %d: %v (prefix before it is intact)", e.Row, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// ReadCSV parses a stream produced by WriteCSV. It decodes row by row: a
// missing or foreign header fails outright (nil events), while a truncated
// or corrupt data row stops the parse and returns every event decoded
// before it together with a *CorruptError — the trace of a crashed or
// killed run remains analyzable up to the damage.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: empty or unreadable CSV header: %w", err)
	}
	if strings.Join(header, ",") != strings.Join(csvHeader, ",") {
		return nil, fmt.Errorf("trace: unexpected header %v", header)
	}
	out := make([]Event, 0, 64)
	for rec := 2; ; rec++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, &CorruptError{Row: rec, Err: err}
		}
		e, err := parseRow(row)
		if err != nil {
			return out, &CorruptError{Row: rec, Err: err}
		}
		out = append(out, e)
	}
}

// parseRow decodes one full-width CSV record into an Event.
func parseRow(row []string) (Event, error) {
	var e Event
	var err error
	if e.T, err = strconv.ParseFloat(row[0], 64); err != nil {
		return e, fmt.Errorf("time: %w", err)
	}
	if e.Rank, err = strconv.Atoi(row[1]); err != nil {
		return e, fmt.Errorf("rank: %w", err)
	}
	if e.Kind, err = ParseKind(row[2]); err != nil {
		return e, err
	}
	if e.Comm, err = strconv.ParseInt(row[3], 10, 64); err != nil {
		return e, fmt.Errorf("comm: %w", err)
	}
	e.Label = row[4]
	if e.Peer, err = strconv.Atoi(row[5]); err != nil {
		return e, fmt.Errorf("peer: %w", err)
	}
	if e.Bytes, err = strconv.Atoi(row[6]); err != nil {
		return e, fmt.Errorf("bytes: %w", err)
	}
	if e.Tag, err = strconv.Atoi(row[7]); err != nil {
		return e, fmt.Errorf("tag: %w", err)
	}
	if e.SendT, err = strconv.ParseFloat(row[8], 64); err != nil {
		return e, fmt.Errorf("sendt: %w", err)
	}
	if e.PostT, err = strconv.ParseFloat(row[9], 64); err != nil {
		return e, fmt.Errorf("postt: %w", err)
	}
	if e.ArrT, err = strconv.ParseFloat(row[10], 64); err != nil {
		return e, fmt.Errorf("arrt: %w", err)
	}
	return e, nil
}

// SectionSummary aggregates a trace's section events offline: per label,
// the number of completed intervals, total and mean duration, and the time
// span covered. It lets cmd/secanalyze summarize a trace CSV without the
// live profiler.
type SectionSummary struct {
	Label     string
	Intervals int
	Total     float64
	Mean      float64
	First     float64
	Last      float64
}

// Summarize replays section enter/leave events (per rank, per label stack)
// and returns one summary per label, sorted by total duration descending.
func Summarize(events []Event) []SectionSummary {
	type openKey struct {
		rank  int
		label string
	}
	open := map[openKey][]float64{} // stack of enter times
	acc := map[string]*SectionSummary{}
	// Events must be replayed in time order with leave-before-enter ties.
	sorted := append([]Event(nil), events...)
	SortEvents(sorted)
	for _, e := range sorted {
		switch e.Kind {
		case KindSectionEnter:
			k := openKey{e.Rank, e.Label}
			open[k] = append(open[k], e.T)
		case KindSectionLeave:
			k := openKey{e.Rank, e.Label}
			st := open[k]
			if len(st) == 0 {
				continue // unmatched leave: drop
			}
			enterT := st[len(st)-1]
			open[k] = st[:len(st)-1]
			s := acc[e.Label]
			if s == nil {
				s = &SectionSummary{Label: e.Label, First: enterT, Last: e.T}
				acc[e.Label] = s
			}
			s.Intervals++
			s.Total += e.T - enterT
			if enterT < s.First {
				s.First = enterT
			}
			if e.T > s.Last {
				s.Last = e.T
			}
		}
	}
	out := make([]SectionSummary, 0, len(acc))
	for _, s := range acc {
		if s.Intervals > 0 {
			s.Mean = s.Total / float64(s.Intervals)
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// WriteJSON streams the events as JSON lines (one event per line).
func (b *Buffer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range b.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
