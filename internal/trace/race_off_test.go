//go:build !race

package trace

// raceEnabled mirrors the mpi package's convention: allocation-count tests
// are meaningless under the race detector's shadow allocations.
const raceEnabled = false
