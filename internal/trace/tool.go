package trace

import (
	"repro/internal/fault"
	"repro/internal/mpi"
)

// Collector is an mpi.Tool that records runtime events into a Buffer.
// Attach it via mpi.Config.Tools.
type Collector struct {
	mpi.BaseTool
	buf *Buffer

	// Sections controls whether section events are recorded (default on).
	Sections bool
	// Messages controls whether point-to-point events are recorded.
	Messages bool
	// Collectives controls whether collective begin/end are recorded.
	Collectives bool
	// Faults controls whether fault events are recorded (default on —
	// failures are rare and load-bearing for post-mortems).
	Faults bool
	// Omp controls whether thread-team compute regions are recorded
	// (KindOmpRegion; opt-in like Messages — pure-MPI runs emit none and
	// hybrid runs can emit one per parallel loop).
	Omp bool
}

// NewCollector returns a Collector recording into a buffer capped at limit
// events (0 = unbounded), with section recording enabled and message /
// collective recording disabled (the high-volume kinds are opt-in).
func NewCollector(limit int) *Collector {
	return &Collector{buf: NewBuffer(limit), Sections: true, Faults: true}
}

// Buffer exposes the underlying event buffer.
func (c *Collector) Buffer() *Buffer { return c.buf }

// Dropped reports how many events the capped buffer discarded.
func (c *Collector) Dropped() int { return c.buf.Dropped() }

// Warning returns the buffer's truncation caveat ("" when complete).
func (c *Collector) Warning() string { return c.buf.Warning() }

// SectionEnter implements mpi.Tool.
//
//seclint:hotpath
func (c *Collector) SectionEnter(cm *mpi.Comm, label string, t float64, _ *mpi.ToolData) {
	if !c.Sections {
		return
	}
	c.buf.Add(Event{T: t, Rank: cm.WorldRank(), Kind: KindSectionEnter, Comm: cm.ID(), Label: label})
}

// SectionLeave implements mpi.Tool.
//
//seclint:hotpath
func (c *Collector) SectionLeave(cm *mpi.Comm, label string, t float64, _ *mpi.ToolData) {
	if !c.Sections {
		return
	}
	c.buf.Add(Event{T: t, Rank: cm.WorldRank(), Kind: KindSectionLeave, Comm: cm.ID(), Label: label})
}

// MessageSent implements mpi.Tool.
//
//seclint:hotpath
func (c *Collector) MessageSent(cm *mpi.Comm, dst, tag, bytes int, t float64) {
	if !c.Messages {
		return
	}
	c.buf.Add(Event{T: t, Rank: cm.WorldRank(), Kind: KindSend, Comm: cm.ID(), Peer: dst, Bytes: bytes, Tag: tag})
}

// MessageRecv implements mpi.Tool. The matched-pair timestamps ride along
// so an offline replay (internal/waitstate) can classify wait states
// without re-matching sends to receives.
//
//seclint:hotpath
func (c *Collector) MessageRecv(cm *mpi.Comm, src, tag, bytes int, t float64, m mpi.MatchInfo) {
	if !c.Messages {
		return
	}
	c.buf.Add(Event{
		T: t, Rank: cm.WorldRank(), Kind: KindRecv, Comm: cm.ID(), Peer: src, Bytes: bytes, Tag: tag,
		SendT: m.SendT, PostT: m.PostT, ArrT: m.Arrival,
	})
}

// CollectiveBegin implements mpi.Tool.
//
//seclint:hotpath
func (c *Collector) CollectiveBegin(cm *mpi.Comm, name string, t float64) {
	if !c.Collectives {
		return
	}
	c.buf.Add(Event{T: t, Rank: cm.WorldRank(), Kind: KindCollective, Comm: cm.ID(), Label: name})
}

// CollectiveEnd implements mpi.Tool: the exit edge of a rank's collective
// participation span (paired with the KindCollective begin event).
//
//seclint:hotpath
func (c *Collector) CollectiveEnd(cm *mpi.Comm, name string, t float64) {
	if !c.Collectives {
		return
	}
	c.buf.Add(Event{T: t, Rank: cm.WorldRank(), Kind: KindCollectiveEnd, Comm: cm.ID(), Label: name})
}

// Pcontrol implements mpi.Tool.
func (c *Collector) Pcontrol(cm *mpi.Comm, level int, t float64) {
	c.buf.Add(Event{T: t, Rank: cm.WorldRank(), Kind: KindPcontrol, Comm: cm.ID(), Bytes: level})
}

// FaultEvent implements mpi.FaultObserver: injected faults and their
// observed consequences land in the trace next to the sections and messages
// they disrupted. The 11-column CSV schema is unchanged — fault fields ride
// in existing columns (see the KindFault / KindDeadPeer docs).
func (c *Collector) FaultEvent(ev fault.Event) {
	if !c.Faults {
		return
	}
	if ev.Kind == fault.DeadPeer {
		c.buf.Add(Event{
			T: ev.T, Rank: ev.Rank, Kind: KindDeadPeer, Comm: ev.Comm,
			Label: ev.Section, Peer: ev.Src, PostT: ev.PostT,
		})
		return
	}
	c.buf.Add(Event{
		T: ev.T, Rank: ev.Rank, Kind: KindFault, Comm: ev.Comm,
		Label: ev.Kind.String(), Peer: ev.Dst, Bytes: ev.Bytes, ArrT: ev.Delay,
	})
}

// ComputeRegion implements mpi.ComputeObserver: thread-team compute
// regions land in the trace so the offline POP analysis can split hybrid
// inefficiency into its OpenMP-region and serial-region parts. Field reuse
// per the KindOmpRegion docs: team in Bytes, start in PostT, single-thread
// duration in ArrT.
//
//seclint:hotpath
func (c *Collector) ComputeRegion(cm *mpi.Comm, team int, start, end, single float64) {
	if !c.Omp {
		return
	}
	c.buf.Add(Event{
		T: end, Rank: cm.WorldRank(), Kind: KindOmpRegion, Comm: cm.ID(),
		Bytes: team, PostT: start, ArrT: single,
	})
}

var _ mpi.Tool = (*Collector)(nil)
var _ mpi.FaultObserver = (*Collector)(nil)
var _ mpi.ComputeObserver = (*Collector)(nil)
