package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mpi"
)

func TestKindStrings(t *testing.T) {
	for k, want := range kindNames {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", int(k), k.String())
		}
		back, err := ParseKind(want)
		if err != nil || back != k {
			t.Errorf("ParseKind(%q) = %v, %v", want, back, err)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind string wrong")
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
}

func TestBufferOrderingAndCopy(t *testing.T) {
	b := NewBuffer(0)
	b.Add(Event{T: 3, Rank: 0, Kind: KindMarker})
	b.Add(Event{T: 1, Rank: 1, Kind: KindMarker})
	b.Add(Event{T: 1, Rank: 0, Kind: KindMarker})
	ev := b.Events()
	if ev[0].T != 1 || ev[0].Rank != 0 || ev[1].Rank != 1 || ev[2].T != 3 {
		t.Errorf("ordering wrong: %+v", ev)
	}
	ev[0].T = 99 // must not corrupt the buffer
	if b.Events()[0].T == 99 {
		t.Error("Events returned aliased storage")
	}
}

// TestSortEventsTotalOrder: verifier events from a -j run share T, Rank,
// and Kind, so the sort must fall back to the payload fields to stay
// deterministic regardless of arrival order.
func TestSortEventsTotalOrder(t *testing.T) {
	base := []Event{
		{T: 1, Rank: 0, Kind: KindVerify, Comm: 1, Label: "section-mismatch: a"},
		{T: 1, Rank: 0, Kind: KindVerify, Comm: 1, Label: "section-mismatch: b"},
		{T: 1, Rank: 0, Kind: KindVerify, Comm: 2, Label: "section-mismatch: a"},
		{T: 1, Rank: 0, Kind: KindVerify, Comm: 1, Label: "collective-order-divergence: x"},
		{T: 1, Rank: 0, Kind: KindVerify, Comm: 1, Label: "section-mismatch: a", Peer: 1},
		{T: 1, Rank: 0, Kind: KindVerify, Comm: 1, Label: "section-mismatch: a", Peer: 1, Tag: 1},
		{T: 1, Rank: 0, Kind: KindVerify, Comm: 1, Label: "section-mismatch: a", Peer: 1, Bytes: 8},
		{T: 1, Rank: 0, Kind: KindVerify, Comm: 3, Label: "section-unclosed: y"},
	}
	want := append([]Event(nil), base...)
	SortEvents(want)
	for seed := int64(0); seed < 20; seed++ {
		got := append([]Event(nil), base...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(got), func(i, j int) { got[i], got[j] = got[j], got[i] })
		SortEvents(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: sort order not deterministic:\n got %+v\nwant %+v", seed, got, want)
		}
	}
}

// TestSortEventsKeepsNestingOrder pins the boundary-event contract the
// verifier tie-break must not disturb: nested section enters recorded at
// the same timestamp keep their arrival order (outer before inner), even
// when a payload sort would swap them alphabetically.
func TestSortEventsKeepsNestingOrder(t *testing.T) {
	events := []Event{
		{T: 0, Rank: 0, Kind: KindSectionEnter, Label: "MPI_MAIN"},
		{T: 0, Rank: 0, Kind: KindSectionEnter, Label: "LOAD"}, // sorts before MPI_MAIN by label
		{T: 1, Rank: 0, Kind: KindSectionLeave, Label: "LOAD"},
		{T: 1, Rank: 0, Kind: KindSectionLeave, Label: "MPI_MAIN"},
	}
	want := append([]Event(nil), events...)
	SortEvents(events)
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("sort reordered same-timestamp nested boundaries:\n got %+v\nwant %+v", events, want)
	}
}

func TestBufferLimitAndDrops(t *testing.T) {
	b := NewBuffer(2)
	for i := 0; i < 5; i++ {
		b.Add(Event{T: float64(i)})
	}
	if b.Len() != 2 || b.Dropped() != 3 {
		t.Errorf("len=%d dropped=%d", b.Len(), b.Dropped())
	}
}

func TestFilter(t *testing.T) {
	b := NewBuffer(0)
	b.Add(Event{T: 1, Kind: KindSend})
	b.Add(Event{T: 2, Kind: KindRecv})
	b.Add(Event{T: 3, Kind: KindSend})
	got := b.Filter(func(e Event) bool { return e.Kind == KindSend })
	if len(got) != 2 || got[0].T != 1 || got[1].T != 3 {
		t.Errorf("filter = %+v", got)
	}
}

func TestCSVRoundtrip(t *testing.T) {
	f := func(ts []float64, ranks []uint8, labels []string) bool {
		b := NewBuffer(0)
		n := len(ts)
		if len(ranks) < n {
			n = len(ranks)
		}
		if len(labels) < n {
			n = len(labels)
		}
		var want []Event
		for i := 0; i < n; i++ {
			tm := ts[i]
			if tm != tm || tm < 0 { // NaN or negative: not producible by the clock
				tm = float64(i)
			}
			lbl := strings.Map(func(r rune) rune {
				if r == '\n' || r == '\r' {
					return '_'
				}
				return r
			}, labels[i])
			e := Event{
				T: tm, Rank: int(ranks[i]), Kind: Kind(i % len(kindNames)),
				Comm: int64(i), Label: lbl, Peer: i * 2, Bytes: i * 3,
			}
			b.Add(e)
			want = append(want, e)
		}
		var buf bytes.Buffer
		if err := b.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, b.Events()) && len(got) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("bad header accepted")
	}
	bad := "t,rank,kind,comm,label,peer,bytes\nxx,0,send,0,l,0,0\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad float accepted")
	}
	bad = "t,rank,kind,comm,label,peer,bytes\n1,0,nokind,0,l,0,0\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestWriteJSON(t *testing.T) {
	b := NewBuffer(0)
	b.Add(Event{T: 1.5, Rank: 2, Kind: KindSectionEnter, Label: "phase"})
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var e Event
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.T != 1.5 || e.Rank != 2 || e.Label != "phase" {
		t.Errorf("json roundtrip = %+v", e)
	}
}

func TestCollectorRecordsSections(t *testing.T) {
	col := NewCollector(0)
	cfg := mpi.Config{
		Ranks:   2,
		Model:   machine.Ideal(2, 1),
		Seed:    1,
		Tools:   []mpi.Tool{col},
		Timeout: 30 * time.Second,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		c.SectionEnter("compute")
		c.Sleep(1)
		c.SectionExit("compute")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	enters := col.Buffer().Filter(func(e Event) bool {
		return e.Kind == KindSectionEnter && e.Label == "compute"
	})
	leaves := col.Buffer().Filter(func(e Event) bool {
		return e.Kind == KindSectionLeave && e.Label == "compute"
	})
	if len(enters) != 2 || len(leaves) != 2 {
		t.Errorf("enter/leave counts: %d/%d", len(enters), len(leaves))
	}
	for i := range enters {
		if leaves[i].T-enters[i].T < 1 {
			t.Errorf("section shorter than the sleep: %g", leaves[i].T-enters[i].T)
		}
	}
}

func TestCollectorMessageOptIn(t *testing.T) {
	quiet := NewCollector(0)
	chatty := NewCollector(0)
	chatty.Messages = true
	chatty.Collectives = true
	cfg := mpi.Config{
		Ranks:   2,
		Model:   machine.Ideal(2, 1),
		Seed:    1,
		Tools:   []mpi.Tool{quiet, chatty},
		Timeout: 30 * time.Second,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, []byte("x")); err != nil {
				return err
			}
		} else {
			if _, _, err := c.Recv(0, 0); err != nil {
				return err
			}
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	isMsg := func(e Event) bool { return e.Kind == KindSend || e.Kind == KindRecv }
	if n := len(quiet.Buffer().Filter(isMsg)); n != 0 {
		t.Errorf("quiet collector recorded %d messages", n)
	}
	if n := len(chatty.Buffer().Filter(isMsg)); n < 2 {
		t.Errorf("chatty collector recorded %d message events", n)
	}
	isColl := func(e Event) bool { return e.Kind == KindCollective }
	if n := len(chatty.Buffer().Filter(isColl)); n != 2 {
		t.Errorf("collective events = %d, want 2", n)
	}
}

func TestCollectorSectionsOptOut(t *testing.T) {
	col := NewCollector(0)
	col.Sections = false
	cfg := mpi.Config{
		Ranks: 1, Model: machine.Ideal(1, 1), Seed: 1,
		Tools: []mpi.Tool{col}, Timeout: 30 * time.Second,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		c.SectionEnter("s")
		c.SectionExit("s")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if col.Buffer().Len() != 0 {
		t.Errorf("opted-out collector recorded %d events", col.Buffer().Len())
	}
}

func TestCollectorPcontrol(t *testing.T) {
	col := NewCollector(0)
	cfg := mpi.Config{
		Ranks: 1, Model: machine.Ideal(1, 1), Seed: 1,
		Tools: []mpi.Tool{col}, Timeout: 30 * time.Second,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		c.Pcontrol(7)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := col.Buffer().Filter(func(e Event) bool { return e.Kind == KindPcontrol })
	if len(got) != 1 || got[0].Bytes != 7 {
		t.Errorf("pcontrol events = %+v", got)
	}
}

func TestTimelineRendering(t *testing.T) {
	events := []Event{
		{T: 0, Rank: 0, Kind: KindSectionEnter, Label: "compute"},
		{T: 6, Rank: 0, Kind: KindSectionLeave, Label: "compute"},
		{T: 6, Rank: 0, Kind: KindSectionEnter, Label: "halo"},
		{T: 10, Rank: 0, Kind: KindSectionLeave, Label: "halo"},
		{T: 0, Rank: 1, Kind: KindSectionEnter, Label: "compute"},
		{T: 8, Rank: 1, Kind: KindSectionLeave, Label: "compute"},
		{T: 8, Rank: 1, Kind: KindSectionEnter, Label: "halo"},
		{T: 10, Rank: 1, Kind: KindSectionLeave, Label: "halo"},
	}
	out := Timeline(events, 40)
	if !strings.Contains(out, "rank    0") || !strings.Contains(out, "rank    1") {
		t.Errorf("missing rank rows:\n%s", out)
	}
	if !strings.Contains(out, "A=compute") || !strings.Contains(out, "B=halo") {
		t.Errorf("missing legend:\n%s", out)
	}
	// Rank 0 spends 60% in compute: its row should contain both glyphs.
	line := strings.SplitN(out, "\n", 2)[0]
	if !strings.Contains(line, "A") || !strings.Contains(line, "B") {
		t.Errorf("row glyphs wrong: %q", line)
	}
}

func TestTimelineFocusAndEmpty(t *testing.T) {
	if got := Timeline(nil, 40); !strings.Contains(got, "empty") {
		t.Errorf("empty timeline = %q", got)
	}
	events := []Event{
		{T: 0, Rank: 0, Kind: KindSectionEnter, Label: "a"},
		{T: 1, Rank: 0, Kind: KindSectionLeave, Label: "a"},
		{T: 1, Rank: 0, Kind: KindSectionEnter, Label: "b"},
		{T: 2, Rank: 0, Kind: KindSectionLeave, Label: "b"},
	}
	out := Timeline(events, 10, "a")
	if strings.Contains(out, "=b") {
		t.Errorf("focus leaked other labels:\n%s", out)
	}
	// Default width on nonsense input.
	if got := Timeline(events, -5); got == "" {
		t.Error("negative width produced nothing")
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{T: 0, Rank: 0, Kind: KindSectionEnter, Label: "a"},
		{T: 2, Rank: 0, Kind: KindSectionLeave, Label: "a"},
		{T: 3, Rank: 0, Kind: KindSectionEnter, Label: "a"},
		{T: 7, Rank: 0, Kind: KindSectionLeave, Label: "a"},
		{T: 1, Rank: 1, Kind: KindSectionEnter, Label: "b"},
		{T: 2, Rank: 1, Kind: KindSectionLeave, Label: "b"},
		// Unmatched leave: ignored.
		{T: 9, Rank: 2, Kind: KindSectionLeave, Label: "ghost"},
	}
	sums := Summarize(events)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d: %+v", len(sums), sums)
	}
	a := sums[0] // largest total first
	if a.Label != "a" || a.Intervals != 2 || a.Total != 6 || a.Mean != 3 {
		t.Errorf("a summary = %+v", a)
	}
	if a.First != 0 || a.Last != 7 {
		t.Errorf("a span = [%g, %g]", a.First, a.Last)
	}
	if sums[1].Label != "b" || sums[1].Total != 1 {
		t.Errorf("b summary = %+v", sums[1])
	}
}

func TestSummarizeNested(t *testing.T) {
	events := []Event{
		{T: 0, Rank: 0, Kind: KindSectionEnter, Label: "outer"},
		{T: 1, Rank: 0, Kind: KindSectionEnter, Label: "outer"}, // recursive
		{T: 2, Rank: 0, Kind: KindSectionLeave, Label: "outer"},
		{T: 4, Rank: 0, Kind: KindSectionLeave, Label: "outer"},
	}
	sums := Summarize(events)
	if len(sums) != 1 || sums[0].Intervals != 2 {
		t.Fatalf("summaries = %+v", sums)
	}
	// Inner (2-1) + outer (4-0) = 5.
	if sums[0].Total != 5 {
		t.Errorf("nested total = %g, want 5", sums[0].Total)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil); len(got) != 0 {
		t.Errorf("empty summarize = %+v", got)
	}
}

func TestTimelineNestedInnermostWins(t *testing.T) {
	events := []Event{
		{T: 0, Rank: 0, Kind: KindSectionEnter, Label: "outer"},
		{T: 4, Rank: 0, Kind: KindSectionEnter, Label: "inner"},
		{T: 6, Rank: 0, Kind: KindSectionLeave, Label: "inner"},
		{T: 10, Rank: 0, Kind: KindSectionLeave, Label: "outer"},
	}
	out := Timeline(events, 10)
	row := strings.SplitN(out, "\n", 2)[0]
	if !strings.Contains(row, "A") || !strings.Contains(row, "B") {
		t.Errorf("nested rendering wrong: %q", row)
	}
}

// TestCollectorFaultMapping pins how fault events land in the unchanged
// 11-column schema: kind string / section in Label, link target / dead peer
// in Peer, injected delay in ArrT, blocking start in PostT.
func TestCollectorFaultMapping(t *testing.T) {
	c := NewCollector(0)
	c.FaultEvent(fault.Event{T: 1.5, Kind: fault.Delay, Rank: 0, Src: 0, Dst: 3, Comm: 7, Bytes: 64, Delay: 0.25})
	c.FaultEvent(fault.Event{T: 2.5, Kind: fault.DeadPeer, Rank: 1, Src: 2, Dst: 1, Comm: 7, Section: "HALO", PostT: 2.0})
	got := c.Buffer().Events()
	want := []Event{
		{T: 1.5, Rank: 0, Kind: KindFault, Comm: 7, Label: "delay", Peer: 3, Bytes: 64, ArrT: 0.25},
		{T: 2.5, Rank: 1, Kind: KindDeadPeer, Comm: 7, Label: "HALO", Peer: 2, PostT: 2.0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mapped events = %+v, want %+v", got, want)
	}
	// The mapping must survive the CSV codec (header unchanged).
	var buf bytes.Buffer
	if err := WriteEventsCSV(&buf, got); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "t,rank,kind,comm,label,peer,bytes,tag,sendt,postt,arrt\n") {
		t.Fatalf("header changed: %q", buf.String())
	}
	back, err := ReadCSV(&buf)
	if err != nil || !reflect.DeepEqual(back, want) {
		t.Fatalf("CSV round trip: %+v, err %v", back, err)
	}
	off := NewCollector(0)
	off.Faults = false
	off.FaultEvent(fault.Event{Kind: fault.Kill})
	if off.Buffer().Len() != 0 {
		t.Error("Faults=false still recorded")
	}
}
