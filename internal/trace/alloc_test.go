package trace

import (
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mpi"
)

// The sweep fast path must stay allocation-free with the full POP
// collector attached — sections, messages, collectives AND thread-team
// compute regions all recording. The buffer is deliberately small so it
// saturates during warmup: the steady state then exercises every hook
// (including the ComputeRegion path ComputeParallel takes only when an
// observer is registered) against a full buffer, which must count drops
// without allocating. GC is disabled for the window, matching the mpi
// package's alloc tests.

// popStep is one synchronized round trip plus a 2-thread compute region on
// each rank — the hybrid sweep's inner-loop shape.
func popStep(c *mpi.Comm, payload []byte) error {
	peer := 1 - c.Rank()
	work := mpi.WorkUnit{Flops: 1000, Bytes: 256}
	if c.Rank() == 0 {
		if err := c.Send(peer, 0, payload); err != nil {
			return err
		}
		buf, _, err := c.Recv(peer, 0)
		if err != nil {
			return err
		}
		mpi.Release(buf)
		c.ComputeParallel(work, 2)
		return nil
	}
	buf, _, err := c.Recv(peer, 0)
	if err != nil {
		return err
	}
	mpi.Release(buf)
	if err := c.Send(peer, 0, payload); err != nil {
		return err
	}
	c.ComputeParallel(work, 2)
	return nil
}

func TestSteadyStateAllocsWithPOPCollector(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates shadow memory; alloc counts are meaningless")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const warmup, runs = 64, 100
	payload := make([]byte, 1024)
	col := NewCollector(64) // tiny cap: full after warmup, steady state = drop path
	col.Messages = true
	col.Collectives = true
	col.Omp = true
	cfg := mpi.Config{Ranks: 2, Model: machine.Ideal(2, 1), Seed: 1,
		Tools: []mpi.Tool{col}, Timeout: time.Minute}
	var avg float64
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		for i := 0; i < warmup; i++ {
			if err := popStep(c, payload); err != nil {
				return err
			}
		}
		if c.Rank() != 0 {
			// Mirror rank 0's AllocsPerRun schedule: one warmup call plus
			// `runs` measured calls.
			for i := 0; i < runs+1; i++ {
				if err := popStep(c, payload); err != nil {
					return err
				}
			}
			return nil
		}
		var stepErr error
		avg = testing.AllocsPerRun(runs, func() {
			if stepErr == nil {
				stepErr = popStep(c, payload)
			}
		})
		return stepErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("steady state with POP collector: %v allocs/op, want 0", avg)
	}
	if col.Dropped() == 0 {
		t.Fatal("buffer never saturated; the test did not exercise the drop path")
	}
	var omps int
	for _, e := range col.Buffer().Events() {
		if e.Kind == KindOmpRegion {
			omps++
		}
	}
	if omps == 0 {
		t.Fatal("collector recorded no thread-team compute regions")
	}
}
