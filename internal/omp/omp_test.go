package omp

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mpi"
)

// runSingle executes fn on a 1-rank world with the given model and returns
// the final virtual clock.
func runSingle(t *testing.T, model *machine.Model, threadsPerRank int, fn func(c *mpi.Comm)) float64 {
	t.Helper()
	cfg := mpi.Config{
		Ranks:          1,
		ThreadsPerRank: threadsPerRank,
		Model:          model,
		Seed:           1,
		Timeout:        30 * time.Second,
	}
	rep, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		fn(c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep.WallTime
}

func quietBroadwell() *machine.Model {
	m := machine.DualBroadwell()
	m.Noise = machine.Noise{}
	return m
}

func TestParallelForExecutesEveryIteration(t *testing.T) {
	model := quietBroadwell()
	sum := 0
	runSingle(t, model, 4, func(c *mpi.Comm) {
		team := New(c, 4)
		team.ParallelFor(100, machine.Work{Flops: 1}, func(i int) { sum += i })
	})
	if sum != 4950 {
		t.Errorf("iterations wrong: sum = %d", sum)
	}
}

func TestParallelForZeroAndNegativeN(t *testing.T) {
	model := quietBroadwell()
	called := false
	wall := runSingle(t, model, 2, func(c *mpi.Comm) {
		team := New(c, 2)
		team.ParallelFor(0, machine.Work{Flops: 1e9}, func(int) { called = true })
		team.ParallelFor(-5, machine.Work{Flops: 1e9}, func(int) { called = true })
	})
	if called {
		t.Error("body called for empty loop")
	}
	if wall != 0 {
		t.Errorf("empty loops charged %g seconds", wall)
	}
}

func TestTeamSizeClamped(t *testing.T) {
	team := New(nil, 0)
	if team.Threads() != 1 {
		t.Errorf("Threads = %d, want 1", team.Threads())
	}
	if New(nil, -5).Threads() != 1 {
		t.Error("negative size not clamped")
	}
}

func TestMoreThreadsFasterUntilOverhead(t *testing.T) {
	model := quietBroadwell()
	w := machine.Work{Flops: 1e10}
	var t1, t8 float64
	runSingle(t, model, 8, func(c *mpi.Comm) {
		team1 := New(c, 1)
		t0 := c.Now()
		team1.ParallelFor(1000, w.Scale(1e-3), func(int) {})
		t1 = c.Now() - t0
		team8 := New(c, 8)
		t0 = c.Now()
		team8.ParallelFor(1000, w.Scale(1e-3), func(int) {})
		t8 = c.Now() - t0
	})
	if t8 >= t1 {
		t.Errorf("8 threads (%g) not faster than 1 (%g)", t8, t1)
	}
	// But 8 threads cannot be a perfect 8x: fork/join overhead exists.
	if t1/t8 >= 8 {
		t.Errorf("speedup %g ≥ 8: overhead missing", t1/t8)
	}
}

func TestStaticTailImbalanceCharged(t *testing.T) {
	model := quietBroadwell()
	w := machine.Work{Flops: 1e7}
	var even, uneven float64
	runSingle(t, model, 4, func(c *mpi.Comm) {
		team := New(c, 4)
		t0 := c.Now()
		team.ParallelFor(8, w, func(int) {}) // 2 iters/thread
		even = c.Now() - t0
		t0 = c.Now()
		team.ParallelFor(9, w, func(int) {}) // 3 on one thread
		uneven = c.Now() - t0
	})
	// 9 iterations statically on 4 threads must cost like 12 (3 per
	// thread), not like 9.
	if uneven <= even*1.2 {
		t.Errorf("tail imbalance not charged: 8 iters %g, 9 iters %g", even, uneven)
	}
}

func TestDynamicBeatsStaticOnTail(t *testing.T) {
	model := quietBroadwell()
	w := machine.Work{Flops: 1e7}
	var static, dynamic float64
	runSingle(t, model, 4, func(c *mpi.Comm) {
		team := New(c, 4)
		t0 := c.Now()
		team.ParallelForSched(Static, 0, 9, w, func(int) {})
		static = c.Now() - t0
		t0 = c.Now()
		team.ParallelForSched(Dynamic, 1, 9, w, func(int) {})
		dynamic = c.Now() - t0
	})
	if dynamic >= static {
		t.Errorf("dynamic (%g) not better than static (%g) on a 9/4 tail", dynamic, static)
	}
}

func TestDynamicChunkDefaulted(t *testing.T) {
	model := quietBroadwell()
	ran := 0
	runSingle(t, model, 2, func(c *mpi.Comm) {
		team := New(c, 2)
		team.ParallelForSched(Dynamic, 0, 10, machine.Work{Flops: 1}, func(int) { ran++ })
	})
	if ran != 10 {
		t.Errorf("dynamic with chunk 0 ran %d iters", ran)
	}
}

func TestParallelForRangeCoversAll(t *testing.T) {
	model := quietBroadwell()
	covered := make([]bool, 103)
	runSingle(t, model, 4, func(c *mpi.Comm) {
		team := New(c, 4)
		team.ParallelForRange(len(covered), machine.Work{Flops: 1}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Errorf("index %d visited twice", i)
				}
				covered[i] = true
			}
		})
	})
	for i, ok := range covered {
		if !ok {
			t.Errorf("index %d not covered", i)
		}
	}
}

func TestParallelForRangeTimingMatchesParallelFor(t *testing.T) {
	model := quietBroadwell()
	w := machine.Work{Flops: 1e6}
	var a, b float64
	runSingle(t, model, 8, func(c *mpi.Comm) {
		team := New(c, 8)
		t0 := c.Now()
		team.ParallelFor(1000, w, func(int) {})
		a = c.Now() - t0
		t0 = c.Now()
		team.ParallelForRange(1000, w, func(lo, hi int) {})
		b = c.Now() - t0
	})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("range and indexed variants charge differently: %g vs %g", a, b)
	}
}

func TestRegionAndSerial(t *testing.T) {
	model := quietBroadwell()
	w := machine.Work{Flops: 1e9}
	var region, serial float64
	ranRegion, ranSerial := false, false
	runSingle(t, model, 4, func(c *mpi.Comm) {
		team := New(c, 4)
		t0 := c.Now()
		team.Region(w, func() { ranRegion = true })
		region = c.Now() - t0
		t0 = c.Now()
		team.Serial(w, func() { ranSerial = true })
		serial = c.Now() - t0
	})
	if !ranRegion || !ranSerial {
		t.Error("bodies not executed")
	}
	if region >= serial {
		t.Errorf("region with 4 threads (%g) not faster than serial (%g)", region, serial)
	}
	// Nil bodies are legal (pure time accounting).
	runSingle(t, model, 2, func(c *mpi.Comm) {
		team := New(c, 2)
		team.Region(w, nil)
		team.Serial(w, nil)
	})
}

func TestSingleThreadTeamHasNoForkCost(t *testing.T) {
	model := quietBroadwell()
	w := machine.Work{Flops: 1e9}
	var teamed, direct float64
	runSingle(t, model, 1, func(c *mpi.Comm) {
		team := New(c, 1)
		t0 := c.Now()
		team.ParallelFor(10, w.Scale(0.1), func(int) {})
		teamed = c.Now() - t0
		t0 = c.Now()
		c.Compute(w)
		direct = c.Now() - t0
	})
	if math.Abs(teamed-direct) > 1e-12 {
		t.Errorf("1-thread team charged %g, plain compute %g", teamed, direct)
	}
}

// TestKNLInflexionExists: on the KNL model, for a fixed mid-sized workload
// there is a thread count past which adding threads makes the region
// slower — the paper's inflexion-point phenomenon (Fig. 10).
func TestKNLInflexionExists(t *testing.T) {
	model := machine.KNL()
	model.Noise = machine.Noise{}
	// Region-sized work: ~18 ms serial per region, the granularity of a
	// timestep-loop phase at a mid problem size.
	w := machine.Work{Flops: 2e7, Bytes: 2e6}
	times := map[int]float64{}
	threadCounts := []int{1, 2, 4, 8, 16, 24, 32, 48, 64, 128, 256}
	runSingle(t, model, 1, func(c *mpi.Comm) {
		for _, th := range threadCounts {
			team := New(c, th)
			t0 := c.Now()
			for step := 0; step < 50; step++ { // many small regions, as in a timestep loop
				team.ParallelFor(1000, w.Scale(1e-3), func(int) {})
			}
			times[th] = c.Now() - t0
		}
	})
	if times[8] >= times[1] {
		t.Errorf("8 threads (%g) not faster than 1 (%g)", times[8], times[1])
	}
	if times[256] <= times[24] {
		t.Errorf("no inflexion: 256 threads (%g) still faster than 24 (%g)",
			times[256], times[24])
	}
}

func TestStringer(t *testing.T) {
	model := quietBroadwell()
	runSingle(t, model, 2, func(c *mpi.Comm) {
		team := New(c, 2)
		s := team.String()
		if !strings.Contains(s, "threads: 2") {
			t.Errorf("String() = %q", s)
		}
	})
}
