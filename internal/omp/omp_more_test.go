package omp

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
)

func TestForModeledExecutesRealChargesModel(t *testing.T) {
	model := quietBroadwell()
	w := machine.Work{Flops: 1e7}
	ran := 0
	var scaled, full float64
	runSingle(t, model, 4, func(c *mpi.Comm) {
		team := New(c, 4)
		t0 := c.Now()
		// Execute 10 real iterations, charge 100 modeled ones.
		team.ForModeled(100, 10, w, func(i int) { ran++ })
		scaled = c.Now() - t0
		t0 = c.Now()
		team.ParallelFor(100, w, func(int) {})
		full = c.Now() - t0
	})
	if ran != 10 {
		t.Errorf("real iterations = %d, want 10", ran)
	}
	if math.Abs(scaled-full) > 1e-12 {
		t.Errorf("modeled charge %g != full loop %g", scaled, full)
	}
}

func TestForModeledZeroModelN(t *testing.T) {
	model := quietBroadwell()
	ran := 0
	wall := runSingle(t, model, 2, func(c *mpi.Comm) {
		team := New(c, 2)
		team.ForModeled(0, 3, machine.Work{Flops: 1e9}, func(int) { ran++ })
	})
	if ran != 3 {
		t.Errorf("real iterations = %d", ran)
	}
	if wall != 0 {
		t.Errorf("zero modelN charged %g", wall)
	}
}

func TestCommAccessor(t *testing.T) {
	model := quietBroadwell()
	runSingle(t, model, 2, func(c *mpi.Comm) {
		team := New(c, 2)
		if team.Comm() != c {
			t.Error("Comm accessor lost the communicator")
		}
	})
}

func TestOversubscribedTeamOnCrowdedNodeSlower(t *testing.T) {
	// The Fig. 9 mechanism in isolation: the same 8-thread region costs
	// more when 27 ranks share the KNL than when one rank owns it.
	model := machine.KNL()
	model.Noise = machine.Noise{}
	w := machine.Work{Flops: 1e8}
	timeAt := func(ranks int) float64 {
		var dur float64
		cfg := mpi.Config{
			Ranks: ranks, ThreadsPerRank: 8, Model: model, Seed: 1,
		}
		_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
			team := New(c, 8)
			t0 := c.Now()
			team.ParallelFor(64, w.Scale(1.0/64), func(int) {})
			dur = c.Now() - t0
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return dur
	}
	alone := timeAt(1)
	crowded := timeAt(27)
	if crowded <= alone {
		t.Errorf("crowded node not slower: %g vs %g", crowded, alone)
	}
}
