// Package omp provides the OpenMP-like shared-memory runtime of the MPI+X
// experiments. A Team executes parallel loops over real data inside one MPI
// rank; their duration is charged to the rank's virtual clock through the
// machine model (fork/join overhead, hyper-thread yield, memory roofline,
// oversubscription), which is how the paper's Figs. 8–10 — OpenMP scaling
// observed purely from MPI-level sections — are reproduced.
//
// Iterations execute sequentially inside the rank goroutine; parallelism is
// simulated in time, not in host threads. This keeps runs deterministic and
// lets a 272-hardware-thread KNL be modeled on any host.
package omp

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mpi"
)

// Schedule selects the loop-scheduling policy, mirroring OpenMP's static
// and dynamic schedules. Dynamic scheduling removes the tail imbalance of
// uneven static chunks at the price of a per-chunk dispatch cost.
type Schedule int

// Supported schedules.
const (
	Static Schedule = iota
	Dynamic
)

// dynChunkOverhead is the modeled dispatch cost of one dynamic chunk.
const dynChunkOverhead = 2e-7

// Team is a thread team bound to one MPI rank.
type Team struct {
	comm    *mpi.Comm
	threads int
}

// New creates a team of the given size for the rank owning c. Sizes below
// one default to one. Sizes above the machine's hardware threads are legal
// (the model charges oversubscription).
func New(c *mpi.Comm, threads int) *Team {
	if threads < 1 {
		threads = 1
	}
	return &Team{comm: c, threads: threads}
}

// Threads reports the team size.
func (t *Team) Threads() int { return t.threads }

// Comm reports the MPI communicator handle the team belongs to.
func (t *Team) Comm() *mpi.Comm { return t.comm }

// ParallelFor executes body(i) for i in [0, n) and charges the region's
// modeled duration: fork/join overhead plus the parallel execution of n
// iterations costing perIter each, under static scheduling.
func (t *Team) ParallelFor(n int, perIter machine.Work, body func(i int)) {
	t.ParallelForSched(Static, 0, n, perIter, body)
}

// ParallelForSched is ParallelFor with an explicit schedule. chunk is the
// dynamic chunk size (ignored for Static; defaults to 1 when <= 0).
func (t *Team) ParallelForSched(sched Schedule, chunk, n int, perIter machine.Work, body func(i int)) {
	if n <= 0 {
		return
	}
	for i := 0; i < n; i++ {
		body(i)
	}
	t.chargeLoop(sched, chunk, n, perIter)
}

// ParallelForRange executes body(lo, hi) once per modeled chunk boundary —
// useful when the body vectorizes over a slice — with the same time
// accounting as ParallelFor. The chunking handed to the body is the static
// per-thread partition, so callers can exploit contiguity.
func (t *Team) ParallelForRange(n int, perIter machine.Work, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	per := (n + t.threads - 1) / t.threads
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		body(lo, hi)
	}
	t.chargeLoop(Static, 0, n, perIter)
}

// chargeLoop advances the rank's virtual clock by the modeled loop time.
func (t *Team) chargeLoop(sched Schedule, chunk, n int, perIter machine.Work) {
	th := t.threads
	var w machine.Work
	switch {
	case th == 1:
		w = perIter.Scale(float64(n))
	case sched == Dynamic:
		if chunk <= 0 {
			chunk = 1
		}
		// Dynamic scheduling balances perfectly up to one trailing chunk,
		// but pays a dispatch cost per chunk.
		nChunks := (n + chunk - 1) / chunk
		w = perIter.Scale(float64(n))
		t.comm.Sleep(dynChunkOverhead * float64(nChunks) / float64(th))
	default:
		// Static: the slowest thread runs ceil(n/th) iterations; model the
		// region as that thread's work replicated across the team, which
		// the roofline then divides by team throughput.
		per := (n + th - 1) / th
		w = perIter.Scale(float64(per * th))
	}
	t.comm.ComputeParallel(w, th)
}

// ForModeled executes body for realN iterations while charging the cost of
// a static loop of modelN iterations at perIter each. It is the
// scaled-execution device: a benchmark running a reduced mesh passes the
// full mesh's iteration count as modelN so chunking and tail imbalance are
// modeled at full scale.
func (t *Team) ForModeled(modelN, realN int, perIter machine.Work, body func(i int)) {
	for i := 0; i < realN; i++ {
		body(i)
	}
	if modelN > 0 {
		t.chargeLoop(Static, 0, modelN, perIter)
	}
}

// Region executes body once and charges it as a parallel region processing
// total work w with the whole team (an OpenMP "parallel" block around
// hand-divided work).
func (t *Team) Region(w machine.Work, body func()) {
	if body != nil {
		body()
	}
	t.comm.ComputeParallel(w, t.threads)
}

// Serial executes body on the master thread only, charging single-threaded
// time with no fork/join cost — the serialized section between regions.
func (t *Team) Serial(w machine.Work, body func()) {
	if body != nil {
		body()
	}
	t.comm.Compute(w)
}

// String implements fmt.Stringer for diagnostics.
func (t *Team) String() string {
	return fmt.Sprintf("omp.Team{threads: %d, rank: %d}", t.threads, t.comm.Rank())
}
