// Package machine models the execution substrates of the paper — a Nehalem
// cluster (456 cores), an Intel KNL node (68 cores × 4 hyper-threads) and a
// dual-socket Broadwell node (2×18 cores × 2 hyper-threads) — as explicit
// cost models. The MPI runtime charges computation, communication, OpenMP
// fork/join and storage accesses against these models on a virtual clock,
// which is what lets 456-rank experiments run faithfully inside a single
// process.
//
// All durations are float64 seconds; all rates are bytes/s or flop/s.
package machine

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Work describes a quantum of computation in machine-independent units.
// Compute time is the roofline maximum of the flop-limited and the
// memory-bandwidth-limited time.
type Work struct {
	Flops float64 // floating-point operations
	Bytes float64 // bytes moved to/from memory
}

// Add returns the element-wise sum of two work quanta.
func (w Work) Add(o Work) Work {
	return Work{Flops: w.Flops + o.Flops, Bytes: w.Bytes + o.Bytes}
}

// Scale returns the work multiplied by k.
func (w Work) Scale(k float64) Work {
	return Work{Flops: w.Flops * k, Bytes: w.Bytes * k}
}

// Network describes the interconnect between and within nodes.
type Network struct {
	LatencyIntra   float64 // one-way latency between ranks on the same node (s)
	LatencyInter   float64 // one-way latency across nodes (s)
	BandwidthIntra float64 // pairwise bandwidth on-node (B/s)
	BandwidthInter float64 // pairwise bandwidth across nodes (B/s)
	SwitchBW       float64 // aggregate backplane bandwidth shared by all inter-node traffic (B/s); 0 disables contention
	SendOverhead   float64 // CPU-side software overhead per send (s)
	RecvOverhead   float64 // CPU-side software overhead per recv (s)
	JitterSigma    float64 // lognormal sigma applied to the latency term
}

// interBW reports the effective per-pair inter-node bandwidth when
// contenders pairs communicate simultaneously through the shared switch.
func (n *Network) interBW(contenders int) float64 {
	bw := n.BandwidthInter
	if n.SwitchBW > 0 && contenders > 1 {
		if shared := n.SwitchBW / float64(contenders); shared < bw {
			bw = shared
		}
	}
	return bw
}

// OMP parameterizes the fork-join overhead of the OpenMP-like runtime.
// Region cost = ForkBase + ForkPerThread*t + BarrierBase*log2(t) on top of
// the parallel work itself.
type OMP struct {
	ForkBase      float64 // fixed cost to open a parallel region (s)
	ForkPerThread float64 // additional cost per team member (s)
	BarrierBase   float64 // per-log2(t) cost of the implicit region barrier (s)
}

// Noise models operating-system interference: while a rank computes for d
// seconds it accumulates extra detours with the given rate (events/s of
// compute) and exponentially-distributed durations with the given mean.
// This is the jitter source that the convolution experiment amplifies at
// scale (paper §5.1).
type Noise struct {
	EventRate    float64 // expected preemptions per second of computation
	MeanDuration float64 // mean duration of one preemption (s)
}

// Model is a complete machine description.
type Model struct {
	Name           string
	Nodes          int
	CoresPerNode   int     // physical cores per node
	ThreadsPerCore int     // hardware threads per core (>= 1)
	FlopsPerCore   float64 // effective scalar rate of one core (flop/s)
	MemBWPerNode   float64 // aggregate memory bandwidth per node (B/s)
	HTYield        float64 // marginal throughput of a hyper-thread vs a core (0..1)
	OversubEff     float64 // throughput retained when software threads exceed hw threads (0..1)
	StorageBW      float64 // sequential file I/O bandwidth (B/s)
	StorageLatency float64 // per-file open/close latency (s)
	Net            Network
	OMP            OMP
	Noise          Noise
}

// Validate reports a descriptive error when the model is not usable.
func (m *Model) Validate() error {
	switch {
	case m.Nodes <= 0:
		return fmt.Errorf("machine %q: Nodes must be positive, got %d", m.Name, m.Nodes)
	case m.CoresPerNode <= 0:
		return fmt.Errorf("machine %q: CoresPerNode must be positive, got %d", m.Name, m.CoresPerNode)
	case m.ThreadsPerCore <= 0:
		return fmt.Errorf("machine %q: ThreadsPerCore must be positive, got %d", m.Name, m.ThreadsPerCore)
	case m.FlopsPerCore <= 0:
		return fmt.Errorf("machine %q: FlopsPerCore must be positive", m.Name)
	case m.MemBWPerNode <= 0:
		return fmt.Errorf("machine %q: MemBWPerNode must be positive", m.Name)
	case m.HTYield < 0 || m.HTYield > 1:
		return fmt.Errorf("machine %q: HTYield must be in [0,1], got %g", m.Name, m.HTYield)
	case m.OversubEff <= 0 || m.OversubEff > 1:
		return fmt.Errorf("machine %q: OversubEff must be in (0,1], got %g", m.Name, m.OversubEff)
	}
	return nil
}

// HWThreadsPerNode reports the hardware-thread capacity of one node.
func (m *Model) HWThreadsPerNode() int { return m.CoresPerNode * m.ThreadsPerCore }

// TotalCores reports the number of physical cores of the whole machine.
func (m *Model) TotalCores() int { return m.Nodes * m.CoresPerNode }

// effCores converts n software threads on one node into "effective cores":
// full cores first, hyper-threads at HTYield, and a global OversubEff
// de-rating once software threads exceed the hardware capacity.
func (m *Model) effCores(n int) float64 {
	if n <= 0 {
		return 0
	}
	c := m.CoresPerNode
	cap := m.HWThreadsPerNode()
	switch {
	case n <= c:
		return float64(n)
	case n <= cap:
		return float64(c) + float64(n-c)*m.HTYield
	default:
		full := float64(c) + float64(cap-c)*m.HTYield
		return full * m.OversubEff
	}
}

// NodeThroughput reports the aggregate flop rate of a node running n
// software threads.
func (m *Model) NodeThroughput(n int) float64 {
	return m.FlopsPerCore * m.effCores(n)
}

// ComputeTime reports how long one rank needs for work w when it runs
// threads software threads and shares its node with nodeThreads total
// software threads (nodeThreads >= threads). The result is the roofline
// max of the flop-limited and bandwidth-limited times.
func (m *Model) ComputeTime(w Work, threads, nodeThreads int) float64 {
	if threads <= 0 {
		threads = 1
	}
	if nodeThreads < threads {
		nodeThreads = threads
	}
	share := float64(threads) / float64(nodeThreads)
	flopRate := m.NodeThroughput(nodeThreads) * share
	bwRate := m.MemBWPerNode * share
	var t float64
	if w.Flops > 0 {
		t = w.Flops / flopRate
	}
	if w.Bytes > 0 {
		if bt := w.Bytes / bwRate; bt > t {
			t = bt
		}
	}
	return t
}

// SerialComputeTime is ComputeTime for a single thread alone on its node —
// the configuration of the sequential baseline runs.
func (m *Model) SerialComputeTime(w Work) float64 {
	return m.ComputeTime(w, 1, 1)
}

// NoiseSample returns the OS-noise detour accumulated during d seconds of
// computation, drawn from rng. It is 0 when the model has no noise or d <= 0.
func (m *Model) NoiseSample(d float64, rng *stats.RNG) float64 {
	if d <= 0 || m.Noise.EventRate <= 0 || m.Noise.MeanDuration <= 0 {
		return 0
	}
	// Expected number of events in d seconds of compute; sample a Poisson
	// count via inversion for small means, normal approximation otherwise.
	mean := m.Noise.EventRate * d
	n := poisson(mean, rng)
	var total float64
	for i := 0; i < n; i++ {
		total += rng.Exp(1 / m.Noise.MeanDuration)
	}
	return total
}

// poisson draws a Poisson(mean) sample.
func poisson(mean float64, rng *stats.RNG) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation, clamped at zero.
		v := rng.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// MsgTime reports the transfer component of a message of the given size:
// latency (jittered when rng is non-nil) plus serialization time at the
// contention-adjusted bandwidth. contenders is the number of rank pairs
// assumed to be using the inter-node switch concurrently (use 1 when
// unknown). The sender/receiver software overheads are charged separately
// via Net.SendOverhead / Net.RecvOverhead.
func (m *Model) MsgTime(bytes int, sameNode bool, contenders int, rng *stats.RNG) float64 {
	lat := m.Net.LatencyInter
	bw := m.Net.interBW(contenders)
	if sameNode {
		lat = m.Net.LatencyIntra
		bw = m.Net.BandwidthIntra
	}
	t := lat
	if bytes > 0 && bw > 0 {
		t += float64(bytes) / bw
	}
	if rng != nil && m.Net.JitterSigma > 0 && !sameNode {
		// Multiplicative lognormal jitter with median 1 on the whole
		// transfer: congested fabrics delay entire messages, not just
		// their first byte.
		t *= rng.LogNormal(0, m.Net.JitterSigma)
	}
	return t
}

// ForkJoinOverhead reports the OpenMP region management cost for a team of
// t threads (0 for a team of one, matching a serialized region) on a node
// running nodeThreads software threads in total. When the node's physical
// cores are oversubscribed, fork/barrier costs inflate proportionally —
// teams contend for cores with each other's (and their own) threads, which
// is what makes hybrid OpenMP counterproductive at high MPI density on the
// KNL (paper Fig. 9, p ∈ {27, 64}).
func (m *Model) ForkJoinOverhead(t, nodeThreads int) float64 {
	if t <= 1 {
		return 0
	}
	over := m.OMP.ForkBase + m.OMP.ForkPerThread*float64(t) +
		m.OMP.BarrierBase*math.Log2(float64(t))
	if load := float64(nodeThreads) / float64(m.CoresPerNode); load > 1 {
		over *= load
	}
	return over
}

// StorageTime reports the time to read or write n bytes of file data.
func (m *Model) StorageTime(n int) float64 {
	if m.StorageBW <= 0 {
		return 0
	}
	return m.StorageLatency + float64(n)/m.StorageBW
}
