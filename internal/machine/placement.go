package machine

import "fmt"

// Placement maps MPI ranks onto the nodes of a Model, block-wise: ranks
// fill a node before spilling to the next one, which is how the paper's
// runs were scheduled (e.g. 8 ranks per Nehalem node). Each rank may run a
// team of software threads; the placement records how many software threads
// end up on each node so the cost model can charge bandwidth and core
// sharing correctly.
type Placement struct {
	model          *Model
	ranks          int
	threadsPerRank int
	nodeOf         []int
	threadsOnNode  []int
	// nodesInUse/interNodePairs are derived once at construction: the
	// placement is immutable, and NodesInUse sits on the per-message send
	// path, where an O(nodes) recount at 10k ranks would dominate the
	// transfer-time model itself.
	nodesInUse     int
	interNodePairs int
}

// NewPlacement distributes ranks block-wise over the model's nodes. Ranks
// per node is chosen so that, when possible, a node's hardware threads are
// not oversubscribed; when the machine is too small for ranks*threads the
// ranks are spread evenly and the compute model's oversubscription path
// takes over (this is a legal configuration in the paper's KNL runs, e.g.
// 64 ranks × 8 threads on 272 hardware threads).
func NewPlacement(m *Model, ranks, threadsPerRank int) (*Placement, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("machine: placement needs at least one rank, got %d", ranks)
	}
	if threadsPerRank <= 0 {
		threadsPerRank = 1
	}
	// How many ranks fit on one node without oversubscribing hw threads.
	perNode := m.HWThreadsPerNode() / threadsPerRank
	if perNode < 1 {
		perNode = 1
	}
	// If even at that density the machine cannot hold all ranks, pack
	// evenly (ceiling division) and let oversubscription happen.
	if perNode*m.Nodes < ranks {
		perNode = (ranks + m.Nodes - 1) / m.Nodes
	}
	p := &Placement{
		model:          m,
		ranks:          ranks,
		threadsPerRank: threadsPerRank,
		nodeOf:         make([]int, ranks),
		threadsOnNode:  make([]int, m.Nodes),
	}
	for r := 0; r < ranks; r++ {
		n := r / perNode
		if n >= m.Nodes {
			n = m.Nodes - 1
		}
		p.nodeOf[r] = n
		p.threadsOnNode[n] += threadsPerRank
	}
	for _, t := range p.threadsOnNode {
		if t > 0 {
			p.nodesInUse++
		}
	}
	for r := 1; r < ranks; r++ {
		if !p.SameNode(r-1, r) {
			p.interNodePairs++
		}
	}
	if p.interNodePairs == 0 {
		p.interNodePairs = 1
	}
	return p, nil
}

// Model returns the machine model this placement was built for.
func (p *Placement) Model() *Model { return p.model }

// Ranks reports the number of placed ranks.
func (p *Placement) Ranks() int { return p.ranks }

// ThreadsPerRank reports the software team size of each rank.
func (p *Placement) ThreadsPerRank() int { return p.threadsPerRank }

// NodeOf reports the node index hosting rank r.
func (p *Placement) NodeOf(r int) int { return p.nodeOf[r] }

// SameNode reports whether two ranks share a node.
func (p *Placement) SameNode(a, b int) bool { return p.nodeOf[a] == p.nodeOf[b] }

// NodeThreads reports the total software threads on the node hosting rank r
// — the denominator for per-rank shares of node throughput and bandwidth.
func (p *Placement) NodeThreads(r int) int { return p.threadsOnNode[p.nodeOf[r]] }

// ComputeTime charges work w to rank r running team software threads
// (team <= threadsPerRank normally; pass 1 for serial phases).
func (p *Placement) ComputeTime(r int, w Work, team int) float64 {
	if team <= 0 {
		team = 1
	}
	return p.model.ComputeTime(w, team, p.NodeThreads(r))
}

// NodesInUse reports how many distinct nodes host at least one rank — the
// number of switch uplinks that can be busy at once, used as the default
// contention figure for inter-node transfers. O(1): computed at
// construction, since this sits on the per-message send path.
func (p *Placement) NodesInUse() int { return p.nodesInUse }

// InterNodePairs estimates the number of rank pairs whose traffic crosses
// the switch when every rank exchanges with neighbors simultaneously; it is
// the contention figure handed to Model.MsgTime for stencil-style phases.
// O(1): computed at construction.
func (p *Placement) InterNodePairs() int { return p.interNodePairs }
