package machine

// The presets below are calibrated so that the paper's headline measurements
// land in the right ballpark on the virtual clock (see EXPERIMENTS.md for
// paper-vs-measured numbers). They are models, not datasheets: effective
// per-core rates account for the unoptimized, double-precision, scalar
// nature of the benchmarks, exactly as the paper's wall-clock numbers do.

// NehalemCluster models the paper's convolution test system: 57 nodes, one
// 8-core Intel Xeon X5560 each, hyper-threading disabled, 24 GB per node
// (456 cores total). The shared-switch bandwidth and jitter are calibrated
// so that the HALO exchange becomes the dominant, noisy speedup bound past
// ~64 ranks, as in Figs. 5–6.
func NehalemCluster() *Model {
	return &Model{
		Name:           "nehalem-cluster",
		Nodes:          57,
		CoresPerNode:   8,
		ThreadsPerCore: 1,
		FlopsPerCore:   1.0e9, // effective scalar rate of the naive kernel
		MemBWPerNode:   15e9,  // triple-channel DDR3
		HTYield:        0,     // HT disabled
		OversubEff:     0.7,
		StorageBW:      300e6, // shared filesystem, sequential access
		StorageLatency: 5e-3,
		Net: Network{
			LatencyIntra:   8e-7,
			LatencyInter:   4e-5,
			BandwidthIntra: 3e9,
			BandwidthInter: 150e6, // entry-class test-cluster fabric
			SwitchBW:       120e6, // oversubscribed backplane: HALO grows with p
			SendOverhead:   2e-6,
			RecvOverhead:   2e-6,
			JitterSigma:    0.7,
		},
		OMP: OMP{ForkBase: 4e-6, ForkPerThread: 1.5e-6, BarrierBase: 2e-6},
		Noise: Noise{
			EventRate:    0.3, // OS daemons on a loosely synchronized cluster
			MeanDuration: 2.5e-2,
		},
	}
}

// KNL models the paper's Intel Knights Landing node: 68 cores with 4
// hyper-threads each (272 hardware threads). Fork/join overhead per thread
// is the large, rapidly growing term the paper observes ("OpenMP overhead
// tends to increase more rapidly than on the Broadwell"), and it is what
// produces the inflexion point near 24 threads in Fig. 10 at the LULESH
// s=48 problem size.
func KNL() *Model {
	return &Model{
		Name:           "knl",
		Nodes:          1,
		CoresPerNode:   68,
		ThreadsPerCore: 4,
		FlopsPerCore:   1.1e9, // weak single-thread core
		MemBWPerNode:   90e9,  // DDR-mode bandwidth
		HTYield:        0.3,
		OversubEff:     0.55,
		StorageBW:      500e6,
		StorageLatency: 2e-3,
		Net: Network{ // intra-node shared-memory MPI
			LatencyIntra:   6e-7,
			LatencyInter:   6e-7,
			BandwidthIntra: 4e9,
			BandwidthInter: 4e9,
			SendOverhead:   4e-7,
			RecvOverhead:   4e-7,
			JitterSigma:    0.15,
		},
		// Large per-thread region-management cost: the paper observes that
		// "the OpenMP overhead tends to increase more rapidly than on the
		// Broadwell", and this slope is what puts the LULESH s=48
		// inflexion point near 24 threads (Fig. 10).
		OMP: OMP{ForkBase: 2e-5, ForkPerThread: 6e-5, BarrierBase: 8e-6},
		Noise: Noise{
			EventRate:    0.02,
			MeanDuration: 5e-3,
		},
	}
}

// DualBroadwell models the paper's dual-socket Broadwell node: 2 sockets ×
// 18 cores × 2 hyper-threads (72 hardware threads). Stronger cores and
// cheaper OpenMP management than the KNL.
func DualBroadwell() *Model {
	return &Model{
		Name:           "dual-broadwell",
		Nodes:          1,
		CoresPerNode:   36,
		ThreadsPerCore: 2,
		FlopsPerCore:   2.6e9,
		MemBWPerNode:   120e9,
		HTYield:        0.2,
		OversubEff:     0.6,
		StorageBW:      800e6,
		StorageLatency: 1e-3,
		Net: Network{
			LatencyIntra:   4e-7,
			LatencyInter:   4e-7,
			BandwidthIntra: 6e9,
			BandwidthInter: 6e9,
			SendOverhead:   3e-7,
			RecvOverhead:   3e-7,
			JitterSigma:    0.1,
		},
		OMP: OMP{ForkBase: 6e-6, ForkPerThread: 8e-6, BarrierBase: 3e-6},
		Noise: Noise{
			EventRate:    0.02,
			MeanDuration: 3e-3,
		},
	}
}

// ExtremeCluster models the extrapolated system the "scaling past the
// paper" sweeps run on: 640 nodes with one 16-core Sandy-Bridge-class
// socket each (10,240 cores), a full bisection-bandwidth fat tree instead
// of the Nehalem test cluster's oversubscribed backplane, and modern fabric
// latencies. It is deliberately Nehalem-like in compute character so
// extreme-scale results read as "the paper's experiment, bigger machine":
// the speedup-bound analyses see the same kernel rates, while the fabric no
// longer collapses at hundreds of ranks (which would make 10k-rank points
// pure noise).
func ExtremeCluster() *Model {
	return &Model{
		Name:           "extreme-cluster",
		Nodes:          640,
		CoresPerNode:   16,
		ThreadsPerCore: 1,
		FlopsPerCore:   1.2e9,
		MemBWPerNode:   50e9,
		HTYield:        0,
		OversubEff:     0.7,
		StorageBW:      2e9, // parallel filesystem
		StorageLatency: 1e-3,
		Net: Network{
			LatencyIntra:   6e-7,
			LatencyInter:   1.5e-6,
			BandwidthIntra: 6e9,
			BandwidthInter: 10e9,
			SwitchBW:       5e9, // fat tree: contention grows slowly with p
			SendOverhead:   1e-6,
			RecvOverhead:   1e-6,
			JitterSigma:    0.3,
		},
		OMP: OMP{ForkBase: 4e-6, ForkPerThread: 1.5e-6, BarrierBase: 2e-6},
		Noise: Noise{
			EventRate:    0.1,
			MeanDuration: 1e-2,
		},
	}
}

// Ideal is a frictionless machine: zero latency and overhead, no jitter,
// no noise, effectively infinite bandwidth. It is used by tests that verify
// pure speedup algebra (perfect scaling baselines) and by property tests
// that need deterministic timing.
func Ideal(nodes, coresPerNode int) *Model {
	return &Model{
		Name:           "ideal",
		Nodes:          nodes,
		CoresPerNode:   coresPerNode,
		ThreadsPerCore: 1,
		FlopsPerCore:   1e9,
		MemBWPerNode:   1e15,
		HTYield:        0,
		OversubEff:     1,
		StorageBW:      1e15,
		Net: Network{
			BandwidthIntra: 1e15,
			BandwidthInter: 1e15,
		},
	}
}
