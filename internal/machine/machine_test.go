package machine

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestValidate(t *testing.T) {
	presets := []*Model{NehalemCluster(), KNL(), DualBroadwell(), Ideal(4, 8)}
	for _, m := range presets {
		if err := m.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", m.Name, err)
		}
	}
	bad := []Model{
		{Name: "n0", CoresPerNode: 1, ThreadsPerCore: 1, FlopsPerCore: 1, MemBWPerNode: 1, OversubEff: 1},
		{Name: "c0", Nodes: 1, ThreadsPerCore: 1, FlopsPerCore: 1, MemBWPerNode: 1, OversubEff: 1},
		{Name: "t0", Nodes: 1, CoresPerNode: 1, FlopsPerCore: 1, MemBWPerNode: 1, OversubEff: 1},
		{Name: "f0", Nodes: 1, CoresPerNode: 1, ThreadsPerCore: 1, MemBWPerNode: 1, OversubEff: 1},
		{Name: "b0", Nodes: 1, CoresPerNode: 1, ThreadsPerCore: 1, FlopsPerCore: 1, OversubEff: 1},
		{Name: "ht", Nodes: 1, CoresPerNode: 1, ThreadsPerCore: 1, FlopsPerCore: 1, MemBWPerNode: 1, HTYield: 2, OversubEff: 1},
		{Name: "os", Nodes: 1, CoresPerNode: 1, ThreadsPerCore: 1, FlopsPerCore: 1, MemBWPerNode: 1, OversubEff: 0},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("model %q accepted", bad[i].Name)
		}
	}
}

func TestWorkAlgebra(t *testing.T) {
	w := Work{Flops: 10, Bytes: 4}.Add(Work{Flops: 5, Bytes: 6})
	if w.Flops != 15 || w.Bytes != 10 {
		t.Errorf("Add = %+v", w)
	}
	w = Work{Flops: 2, Bytes: 3}.Scale(4)
	if w.Flops != 8 || w.Bytes != 12 {
		t.Errorf("Scale = %+v", w)
	}
}

func TestEffCoresRegions(t *testing.T) {
	m := KNL() // 68 cores, 4 HT, HTYield 0.3, OversubEff 0.55
	if got := m.effCores(0); got != 0 {
		t.Errorf("effCores(0) = %g", got)
	}
	if got := m.effCores(10); got != 10 {
		t.Errorf("linear region: effCores(10) = %g, want 10", got)
	}
	if got := m.effCores(68); got != 68 {
		t.Errorf("effCores(68) = %g, want 68", got)
	}
	want := 68 + 0.3*(100-68)
	if got := m.effCores(100); math.Abs(got-want) > 1e-12 {
		t.Errorf("HT region: effCores(100) = %g, want %g", got, want)
	}
	full := 68 + 0.3*float64(272-68)
	if got := m.effCores(272); math.Abs(got-full) > 1e-12 {
		t.Errorf("effCores(272) = %g, want %g", got, full)
	}
	if got := m.effCores(500); math.Abs(got-full*0.55) > 1e-12 {
		t.Errorf("oversubscribed: effCores(500) = %g, want %g", got, full*0.55)
	}
}

func TestComputeTimeRoofline(t *testing.T) {
	m := Ideal(1, 8)
	m.MemBWPerNode = 100 // deliberately tiny to force the memory roof
	flopOnly := m.ComputeTime(Work{Flops: 1e9}, 1, 1)
	if math.Abs(flopOnly-1.0) > 1e-12 {
		t.Errorf("flop-bound time = %g, want 1", flopOnly)
	}
	memBound := m.ComputeTime(Work{Flops: 1, Bytes: 1000}, 1, 1)
	if math.Abs(memBound-10) > 1e-9 {
		t.Errorf("memory-bound time = %g, want 10", memBound)
	}
}

func TestComputeTimePerfectScalingOnIdeal(t *testing.T) {
	m := Ideal(1, 64)
	w := Work{Flops: 64e9}
	t1 := m.ComputeTime(w, 1, 1)
	t64 := m.ComputeTime(w, 64, 64)
	if math.Abs(t1/t64-64) > 1e-9 {
		t.Errorf("ideal speedup = %g, want 64", t1/t64)
	}
}

func TestComputeTimeShareOfNode(t *testing.T) {
	m := Ideal(1, 8)
	w := Work{Flops: 8e9}
	alone := m.ComputeTime(w, 1, 1)
	// Same single-threaded rank, but the node is full: the flop share is
	// unchanged (1 core's worth) so time must be identical on a linear
	// machine.
	shared := m.ComputeTime(w, 1, 8)
	if math.Abs(alone-shared) > 1e-9 {
		t.Errorf("linear-region share changed time: %g vs %g", alone, shared)
	}
}

func TestComputeTimeDefensiveArgs(t *testing.T) {
	m := Ideal(1, 8)
	w := Work{Flops: 1e9}
	if got := m.ComputeTime(w, 0, 0); got != m.ComputeTime(w, 1, 1) {
		t.Errorf("zero threads not defaulted: %g", got)
	}
	// nodeThreads below threads must be clamped up.
	if got := m.ComputeTime(w, 4, 1); got != m.ComputeTime(w, 4, 4) {
		t.Errorf("nodeThreads clamp failed: %g", got)
	}
}

func TestComputeTimeMonotoneInThreads(t *testing.T) {
	// On every preset, adding threads to an otherwise empty node never
	// increases pure compute time (overhead is modeled separately).
	for _, m := range []*Model{NehalemCluster(), KNL(), DualBroadwell()} {
		w := Work{Flops: 1e10, Bytes: 1e8}
		prev := math.Inf(1)
		for threads := 1; threads <= m.HWThreadsPerNode(); threads *= 2 {
			got := m.ComputeTime(w, threads, threads)
			if got > prev*(1+1e-12) {
				t.Errorf("%s: compute time rose from %g to %g at %d threads",
					m.Name, prev, got, threads)
			}
			prev = got
		}
	}
}

func TestNoiseSampleZeroWhenDisabled(t *testing.T) {
	m := Ideal(1, 1)
	rng := stats.NewRNG(1)
	if got := m.NoiseSample(10, rng); got != 0 {
		t.Errorf("noise on ideal machine = %g", got)
	}
	n := NehalemCluster()
	if got := n.NoiseSample(0, rng); got != 0 {
		t.Errorf("noise for zero duration = %g", got)
	}
	if got := n.NoiseSample(-1, rng); got != 0 {
		t.Errorf("noise for negative duration = %g", got)
	}
}

func TestNoiseSampleMean(t *testing.T) {
	m := NehalemCluster()
	rng := stats.NewRNG(99)
	var w stats.Welford
	const d = 5.0
	for i := 0; i < 20000; i++ {
		w.Add(m.NoiseSample(d, rng))
	}
	want := m.Noise.EventRate * d * m.Noise.MeanDuration
	if math.Abs(w.Mean()-want)/want > 0.05 {
		t.Errorf("noise mean = %g, want ~%g", w.Mean(), want)
	}
}

func TestPoissonSmallAndLargeMeans(t *testing.T) {
	rng := stats.NewRNG(5)
	for _, mean := range []float64{0.5, 3, 50} {
		var w stats.Welford
		for i := 0; i < 50000; i++ {
			w.Add(float64(poisson(mean, rng)))
		}
		if math.Abs(w.Mean()-mean)/mean > 0.05 {
			t.Errorf("poisson(%g) mean = %g", mean, w.Mean())
		}
	}
	if poisson(0, rng) != 0 {
		t.Error("poisson(0) != 0")
	}
}

func TestMsgTimeIntraVsInter(t *testing.T) {
	m := NehalemCluster()
	intra := m.MsgTime(1<<20, true, 1, nil)
	inter := m.MsgTime(1<<20, false, 1, nil)
	if intra >= inter {
		t.Errorf("intra-node (%g) should beat inter-node (%g)", intra, inter)
	}
	wantInter := m.Net.LatencyInter + float64(1<<20)/m.Net.BandwidthInter
	if math.Abs(inter-wantInter) > 1e-12 {
		t.Errorf("inter = %g, want %g", inter, wantInter)
	}
}

func TestMsgTimeContention(t *testing.T) {
	m := NehalemCluster()
	one := m.MsgTime(1<<20, false, 1, nil)
	many := m.MsgTime(1<<20, false, 64, nil)
	if many <= one {
		t.Errorf("contention did not slow transfer: %g vs %g", many, one)
	}
	// Intra-node traffic never sees switch contention.
	a := m.MsgTime(1<<20, true, 1, nil)
	b := m.MsgTime(1<<20, true, 1000, nil)
	if a != b {
		t.Errorf("intra-node affected by contention: %g vs %g", a, b)
	}
}

func TestMsgTimeZeroBytes(t *testing.T) {
	m := NehalemCluster()
	got := m.MsgTime(0, false, 1, nil)
	if got != m.Net.LatencyInter {
		t.Errorf("zero-byte message = %g, want latency %g", got, m.Net.LatencyInter)
	}
}

func TestMsgTimeJitterPositive(t *testing.T) {
	m := NehalemCluster()
	rng := stats.NewRNG(17)
	base := m.MsgTime(1<<16, false, 1, nil)
	varied := false
	for i := 0; i < 100; i++ {
		got := m.MsgTime(1<<16, false, 1, rng)
		if got <= 0 {
			t.Fatalf("jittered time not positive: %g", got)
		}
		if math.Abs(got-base) > base*0.01 {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter never moved the transfer time")
	}
}

func TestForkJoinOverhead(t *testing.T) {
	m := KNL()
	if m.ForkJoinOverhead(1, 1) != 0 {
		t.Error("team of one must have zero fork cost")
	}
	if m.ForkJoinOverhead(0, 0) != 0 {
		t.Error("degenerate team must have zero fork cost")
	}
	lo, hi := m.ForkJoinOverhead(2, 2), m.ForkJoinOverhead(64, 64)
	if hi <= lo {
		t.Errorf("fork overhead not increasing: %g vs %g", lo, hi)
	}
	// Oversubscribing the node inflates the same team's fork cost.
	fit := m.ForkJoinOverhead(8, 64)
	crowded := m.ForkJoinOverhead(8, 8*64)
	if crowded <= fit {
		t.Errorf("node oversubscription not penalized: %g vs %g", crowded, fit)
	}
}

func TestStorageTime(t *testing.T) {
	m := NehalemCluster()
	want := m.StorageLatency + 300e6/m.StorageBW
	if got := m.StorageTime(300e6); math.Abs(got-want) > 1e-12 {
		t.Errorf("StorageTime = %g, want %g", got, want)
	}
	zero := Model{}
	if zero.StorageTime(100) != 0 {
		t.Error("StorageTime without a model must be 0")
	}
}

func TestPlacementBlockFill(t *testing.T) {
	m := NehalemCluster() // 57 nodes × 8 cores
	p, err := NewPlacement(m, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ranks() != 64 || p.ThreadsPerRank() != 1 {
		t.Fatalf("placement metadata wrong: %d/%d", p.Ranks(), p.ThreadsPerRank())
	}
	// 8 ranks per node, block-wise.
	for r := 0; r < 64; r++ {
		if want := r / 8; p.NodeOf(r) != want {
			t.Fatalf("rank %d on node %d, want %d", r, p.NodeOf(r), want)
		}
	}
	if !p.SameNode(0, 7) || p.SameNode(7, 8) {
		t.Error("SameNode boundaries wrong")
	}
	if p.NodeThreads(0) != 8 {
		t.Errorf("NodeThreads(0) = %d, want 8", p.NodeThreads(0))
	}
}

func TestPlacementHybrid(t *testing.T) {
	m := KNL() // single node, 272 hw threads
	p, err := NewPlacement(m, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if p.NodeOf(r) != 0 {
			t.Fatalf("single-node machine placed rank %d on node %d", r, p.NodeOf(r))
		}
	}
	if p.NodeThreads(0) != 128 {
		t.Errorf("NodeThreads = %d, want 128", p.NodeThreads(0))
	}
}

func TestPlacementOversubscription(t *testing.T) {
	m := KNL()
	// 64 ranks × 8 threads = 512 software threads on 272 hw threads: legal,
	// handled by the oversubscription path.
	p, err := NewPlacement(m, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.NodeThreads(0) != 512 {
		t.Errorf("NodeThreads = %d, want 512", p.NodeThreads(0))
	}
	slow := p.ComputeTime(0, Work{Flops: 1e9}, 8)
	fit, err := NewPlacement(m, 16, 8) // 128 threads: fits
	if err != nil {
		t.Fatal(err)
	}
	fast := fit.ComputeTime(0, Work{Flops: 1e9}, 8)
	if slow <= fast {
		t.Errorf("oversubscription not penalized: %g vs %g", slow, fast)
	}
}

func TestPlacementErrors(t *testing.T) {
	m := NehalemCluster()
	if _, err := NewPlacement(m, 0, 1); err == nil {
		t.Error("zero ranks accepted")
	}
	bad := &Model{}
	if _, err := NewPlacement(bad, 1, 1); err == nil {
		t.Error("invalid model accepted")
	}
	// Zero threads defaults to one.
	p, err := NewPlacement(m, 4, 0)
	if err != nil || p.ThreadsPerRank() != 1 {
		t.Errorf("threads defaulting failed: %v %d", err, p.ThreadsPerRank())
	}
}

func TestPlacementInterNodePairs(t *testing.T) {
	m := NehalemCluster()
	p, _ := NewPlacement(m, 64, 1) // 8 nodes → 7 boundaries
	if got := p.InterNodePairs(); got != 7 {
		t.Errorf("InterNodePairs = %d, want 7", got)
	}
	single, _ := NewPlacement(KNL(), 16, 1)
	if got := single.InterNodePairs(); got != 1 {
		t.Errorf("single-node InterNodePairs = %d, want 1", got)
	}
}

func TestPlacementPropertyAllRanksPlaced(t *testing.T) {
	m := NehalemCluster()
	f := func(ranks, threads uint8) bool {
		r := int(ranks%200) + 1
		th := int(threads%8) + 1
		p, err := NewPlacement(m, r, th)
		if err != nil {
			return false
		}
		total := 0
		for n := 0; n < m.Nodes; n++ {
			total += p.threadsOnNode[n]
		}
		if total != r*th {
			return false
		}
		for i := 0; i < r; i++ {
			if p.NodeOf(i) < 0 || p.NodeOf(i) >= m.Nodes {
				return false
			}
			// Block placement is monotone in rank.
			if i > 0 && p.NodeOf(i) < p.NodeOf(i-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNodesInUse(t *testing.T) {
	m := NehalemCluster()
	p, err := NewPlacement(m, 64, 1) // 8 ranks/node → 8 nodes
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NodesInUse(); got != 8 {
		t.Errorf("NodesInUse = %d, want 8", got)
	}
	single, _ := NewPlacement(KNL(), 32, 4)
	if got := single.NodesInUse(); got != 1 {
		t.Errorf("single-node NodesInUse = %d", got)
	}
}
