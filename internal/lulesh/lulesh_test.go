package lulesh

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/prof"
)

func idealCfg(ranks, threads int) mpi.Config {
	return mpi.Config{
		Ranks:          ranks,
		ThreadsPerRank: threads,
		Model:          machine.Ideal(ranks, max(1, threads)),
		Seed:           1,
		Timeout:        120 * time.Second,
	}
}

func TestValidate(t *testing.T) {
	good := Params{S: 8, Steps: 2, Threads: 1, Scale: 1}
	if err := good.Validate(8); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	cases := []struct {
		p     Params
		ranks int
	}{
		{Params{S: 0, Steps: 1, Threads: 1, Scale: 1}, 1},
		{Params{S: 8, Steps: 0, Threads: 1, Scale: 1}, 1},
		{Params{S: 8, Steps: 1, Threads: 0, Scale: 1}, 1},
		{Params{S: 8, Steps: 1, Threads: 1, Scale: 0}, 1},
		{Params{S: 8, Steps: 1, Threads: 1, Scale: 3}, 1}, // does not divide
		{Params{S: 8, Steps: 1, Threads: 1, Scale: 8}, 1}, // executed edge 1
		{Params{S: 8, Steps: 1, Threads: 1, Scale: 1}, 5}, // not a cube
		{Params{S: 8, Steps: 1, Threads: 1, Scale: 1}, 0},
	}
	for i, c := range cases {
		if err := c.p.Validate(c.ranks); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCubeRoot(t *testing.T) {
	for _, c := range []struct{ n, want int }{
		{1, 1}, {8, 2}, {27, 3}, {64, 4}, {125, 5}, {2, -1}, {9, -1}, {0, -1}, {-8, -1},
	} {
		if got := cubeRoot(c.n); got != c.want {
			t.Errorf("cubeRoot(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTable7TotalElements(t *testing.T) {
	for _, cfg := range Table7() {
		if got := cfg.Ranks * cfg.S * cfg.S * cfg.S; got != 110592 {
			t.Errorf("config %+v has %d elements, want 110592", cfg, got)
		}
	}
}

func TestSectionsCount(t *testing.T) {
	if got := len(Sections()); got != 21 {
		t.Errorf("instrumented sections = %d, want the paper's 21", got)
	}
}

func TestConservationSequential(t *testing.T) {
	p := Params{S: 8, Steps: 20, Threads: 1, Scale: 1, SedovEnergy: 1e4}
	res, err := Run(idealCfg(1, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diag
	if relErr(d.Mass0, d.Mass1) > 1e-12 {
		t.Errorf("mass not conserved: %g -> %g", d.Mass0, d.Mass1)
	}
	if relErr(d.Energy0, d.Energy1) > 1e-12 {
		t.Errorf("energy not conserved: %g -> %g", d.Energy0, d.Energy1)
	}
	if d.MinRho <= 0 {
		t.Errorf("density went non-positive: %g", d.MinRho)
	}
	if d.MinP < pFloor/2 {
		t.Errorf("pressure under floor: %g", d.MinP)
	}
	if d.MaxRho <= 1 {
		t.Errorf("no shock formed: max rho = %g", d.MaxRho)
	}
	if d.FinalDt <= 0 {
		t.Errorf("bad final dt %g", d.FinalDt)
	}
}

func relErr(a, b float64) float64 {
	if a == 0 {
		return math.Abs(b)
	}
	return math.Abs(a-b) / math.Abs(a)
}

// TestDecompositionBitwiseEquivalence: the same global mesh solved on 1, 8
// and 27 ranks must yield the same final density field bit-for-bit, and the
// same timestep history (FinalDt). Global mesh: 12³.
func TestDecompositionBitwiseEquivalence(t *testing.T) {
	type out struct {
		hash uint64
		dt   float64
		m1   float64
	}
	results := map[int]out{}
	for _, cfg := range []struct{ ranks, s int }{{1, 12}, {8, 6}, {27, 4}} {
		p := Params{S: cfg.s, Steps: 15, Threads: 1, Scale: 1, SedovEnergy: 1e4}
		res, err := Run(idealCfg(cfg.ranks, 1), p)
		if err != nil {
			t.Fatalf("ranks=%d: %v", cfg.ranks, err)
		}
		results[cfg.ranks] = out{hash: res.Diag.FieldHash, dt: res.Diag.FinalDt, m1: res.Diag.Mass1}
	}
	base := results[1]
	for ranks, got := range results {
		if got.hash != base.hash {
			t.Errorf("ranks=%d: field hash %x != sequential %x", ranks, got.hash, base.hash)
		}
		if got.dt != base.dt {
			t.Errorf("ranks=%d: dt %g != sequential %g", ranks, got.dt, base.dt)
		}
		if relErr(got.m1, base.m1) > 1e-9 {
			t.Errorf("ranks=%d: mass %g != %g", ranks, got.m1, base.m1)
		}
	}
}

// TestThreadCountDoesNotChangePhysics: team size is a pure timing knob.
func TestThreadCountDoesNotChangePhysics(t *testing.T) {
	var hashes []uint64
	for _, threads := range []int{1, 4, 16} {
		p := Params{S: 6, Steps: 10, Threads: threads, Scale: 1, SedovEnergy: 1e4}
		res, err := Run(idealCfg(1, threads), p)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, res.Diag.FieldHash)
	}
	if hashes[0] != hashes[1] || hashes[1] != hashes[2] {
		t.Errorf("thread count changed the physics: %x", hashes)
	}
}

// TestScaleChargesFullCost: quarter-scale execution must cost the same
// virtual time as full-scale (within tolerance from loop-grain rounding).
func TestScaleChargesFullCost(t *testing.T) {
	model := machine.KNL()
	model.Noise = machine.Noise{}
	var walls []float64
	for _, scale := range []int{1, 4} {
		p := Params{S: 16, Steps: 4, Threads: 4, Scale: scale, SedovEnergy: 1e4}
		cfg := mpi.Config{Ranks: 1, ThreadsPerRank: 4, Model: model, Seed: 1, Timeout: 120 * time.Second}
		res, err := Run(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		walls = append(walls, res.Report.WallTime)
	}
	rel := math.Abs(walls[0]-walls[1]) / walls[0]
	if rel > 0.05 {
		t.Errorf("scale changed virtual cost by %g: %v", rel, walls)
	}
}

// TestSectionsProfiled: all 21 sections appear with the right instance
// counts and the timeloop dominates (the paper's "99% of main").
func TestSectionsProfiled(t *testing.T) {
	profiler := prof.New()
	cfg := idealCfg(8, 1)
	cfg.Model = machine.NehalemCluster() // non-zero times
	cfg.Tools = []mpi.Tool{profiler}
	cfg.CheckSections = true
	p := Params{S: 4, Steps: 5, Threads: 1, Scale: 1, SedovEnergy: 1e4}
	if _, err := Run(cfg, p); err != nil {
		t.Fatal(err)
	}
	profile, err := profiler.Result()
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range Sections() {
		s := profile.Section(label)
		if s == nil {
			t.Errorf("section %s missing", label)
			continue
		}
		switch label {
		case SecMain, SecInit, SecTimeLoop, SecFinalOutput:
			if s.Instances != 1 {
				t.Errorf("%s instances = %d, want 1", label, s.Instances)
			}
		default:
			if s.Instances != p.Steps {
				t.Errorf("%s instances = %d, want %d", label, s.Instances, p.Steps)
			}
		}
	}
	main := profile.Section(SecMain).TotalTime()
	loop := profile.Section(SecTimeLoop).TotalTime()
	if loop/main < 0.9 {
		t.Errorf("timeloop is only %.0f%% of main", 100*loop/main)
	}
	// The two Lagrange phases must dominate the leapfrog.
	leap := profile.Section(SecLeapFrog).TotalTime()
	lag := profile.Section(SecNodal).TotalTime() + profile.Section(SecElements).TotalTime()
	if lag/leap < 0.8 {
		t.Errorf("Lagrange phases only %.0f%% of leapfrog", 100*lag/leap)
	}
}

// TestOpenMPInflexionOnKNL: single rank, s=48-class problem (scaled), the
// walltime must improve from 1 to ~24 threads and degrade well beyond —
// Fig. 10's shape.
func TestOpenMPInflexionOnKNL(t *testing.T) {
	model := machine.KNL()
	model.Noise = machine.Noise{}
	wall := map[int]float64{}
	for _, threads := range []int{1, 24, 256} {
		p := Params{S: 48, Steps: 2, Threads: threads, Scale: 4, SedovEnergy: 1e4}
		cfg := mpi.Config{Ranks: 1, ThreadsPerRank: threads, Model: model, Seed: 1,
			Timeout: 120 * time.Second}
		res, err := Run(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		wall[threads] = res.Report.WallTime
	}
	if wall[24] >= wall[1] {
		t.Errorf("24 threads (%g) not faster than 1 (%g)", wall[24], wall[1])
	}
	if wall[256] <= wall[24] {
		t.Errorf("no degradation past the inflexion: 256 threads %g vs 24 threads %g",
			wall[256], wall[24])
	}
}

// TestMPIBeatsOpenMPStrongScaling: 8 MPI ranks outrun 8 OpenMP threads on
// the same Broadwell problem — the paper's Fig. 8 conclusion.
func TestMPIBeatsOpenMPStrongScaling(t *testing.T) {
	model := machine.DualBroadwell()
	model.Noise = machine.Noise{}

	pOMP := Params{S: 16, Steps: 2, Threads: 8, Scale: 2, SedovEnergy: 1e4}
	cfgOMP := mpi.Config{Ranks: 1, ThreadsPerRank: 8, Model: model, Seed: 1, Timeout: 120 * time.Second}
	resOMP, err := Run(cfgOMP, pOMP)
	if err != nil {
		t.Fatal(err)
	}

	pMPI := Params{S: 8, Steps: 2, Threads: 1, Scale: 2, SedovEnergy: 1e4}
	cfgMPI := mpi.Config{Ranks: 8, ThreadsPerRank: 1, Model: model, Seed: 1, Timeout: 120 * time.Second}
	resMPI, err := Run(cfgMPI, pMPI)
	if err != nil {
		t.Fatal(err)
	}
	if resMPI.Report.WallTime >= resOMP.Report.WallTime {
		t.Errorf("8 MPI ranks (%g) not faster than 8 OpenMP threads (%g)",
			resMPI.Report.WallTime, resOMP.Report.WallTime)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(idealCfg(5, 1), Params{S: 4, Steps: 1, Threads: 1, Scale: 1}); err == nil {
		t.Error("non-cube rank count accepted")
	}
}

func TestDefaultSedovEnergy(t *testing.T) {
	p := Params{S: 4, Steps: 2, Threads: 1, Scale: 1} // SedovEnergy 0 → default
	res, err := Run(idealCfg(1, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diag.MaxRho <= 1 {
		t.Error("default Sedov energy produced no shock")
	}
}

func TestRunAllTable7Configs(t *testing.T) {
	for _, cfg := range Table7() {
		cfg := cfg
		t.Run(fmt.Sprintf("p=%d_s=%d", cfg.Ranks, cfg.S), func(t *testing.T) {
			scale := 4
			if cfg.S%scale != 0 || cfg.S/scale < 2 {
				scale = 2
			}
			p := Params{S: cfg.S, Steps: 2, Threads: 1, Scale: scale, SedovEnergy: 1e4}
			res, err := Run(idealCfg(cfg.Ranks, 1), p)
			if err != nil {
				t.Fatal(err)
			}
			if relErr(res.Diag.Mass0, res.Diag.Mass1) > 1e-9 {
				t.Errorf("mass drift at %+v", cfg)
			}
		})
	}
}
