package lulesh

import (
	"fmt"
	"math"
)

// Physical constants of the ideal-gas solver.
const (
	gammaGas = 1.4
	cflLimit = 0.3
	rhoFloor = 1e-12
	pFloor   = 1e-12
)

// initState allocates and initializes the per-rank state: uniform quiescent
// gas with a Sedov energy deposit in the global corner cell (owned by rank
// (0,0,0)), mirroring LULESH's -s Sedov setup.
func initState(s *state) {
	v := s.volume()
	s.rho = make([]float64, v)
	s.mx = make([]float64, v)
	s.my = make([]float64, v)
	s.mz = make([]float64, v)
	s.en = make([]float64, v)
	s.nrho = make([]float64, v)
	s.nmx = make([]float64, v)
	s.nmy = make([]float64, v)
	s.nmz = make([]float64, v)
	s.nen = make([]float64, v)
	for k := 1; k <= s.n; k++ {
		for j := 1; j <= s.n; j++ {
			for i := 1; i <= s.n; i++ {
				id := s.idx(i, j, k)
				s.rho[id] = 1.0
				s.en[id] = 1e-6 // quiescent background internal energy
			}
		}
	}
	if s.ix == 0 && s.iy == 0 && s.iz == 0 {
		// Corner energy deposit (energy density), like LULESH's Sedov -s
		// setup with the blast origin at the global (0,0,0) element.
		s.en[s.idx(1, 1, 1)] = s.p.SedovEnergy
	}
}

// soundSpeed returns c for one cell's conserved state.
func soundSpeed(rho, mx, my, mz, en float64) float64 {
	u, v, w := mx/rho, my/rho, mz/rho
	ke := 0.5 * rho * (u*u + v*v + w*w)
	p := (gammaGas - 1) * (en - ke)
	if p < pFloor {
		p = pFloor
	}
	return math.Sqrt(gammaGas * p / rho)
}

// pressure returns p for one cell.
func pressure(rho, mx, my, mz, en float64) float64 {
	u, v, w := mx/rho, my/rho, mz/rho
	ke := 0.5 * rho * (u*u + v*v + w*w)
	p := (gammaGas - 1) * (en - ke)
	if p < pFloor {
		p = pFloor
	}
	return p
}

// flux computes the Euler flux component along the given axis
// (0=x, 1=y, 2=z) for one conserved state.
func flux(axis int, rho, mx, my, mz, en float64) (frho, fmx, fmy, fmz, fen float64) {
	u := mx / rho
	switch axis {
	case 1:
		u = my / rho
	case 2:
		u = mz / rho
	}
	p := pressure(rho, mx, my, mz, en)
	frho = rho * u
	fmx = mx * u
	fmy = my * u
	fmz = mz * u
	switch axis {
	case 0:
		fmx += p
	case 1:
		fmy += p
	case 2:
		fmz += p
	}
	fen = (en + p) * u
	return
}

// rusanov computes the Rusanov (local Lax–Friedrichs) numerical flux along
// axis between left state L and right state R.
func rusanov(axis int, rhoL, mxL, myL, mzL, enL, rhoR, mxR, myR, mzR, enR float64) (f [5]float64) {
	fl0, fl1, fl2, fl3, fl4 := flux(axis, rhoL, mxL, myL, mzL, enL)
	fr0, fr1, fr2, fr3, fr4 := flux(axis, rhoR, mxR, myR, mzR, enR)
	var uL, uR float64
	switch axis {
	case 0:
		uL, uR = mxL/rhoL, mxR/rhoR
	case 1:
		uL, uR = myL/rhoL, myR/rhoR
	case 2:
		uL, uR = mzL/rhoL, mzR/rhoR
	}
	sL := math.Abs(uL) + soundSpeed(rhoL, mxL, myL, mzL, enL)
	sR := math.Abs(uR) + soundSpeed(rhoR, mxR, myR, mzR, enR)
	smax := math.Max(sL, sR)
	f[0] = 0.5*(fl0+fr0) - 0.5*smax*(rhoR-rhoL)
	f[1] = 0.5*(fl1+fr1) - 0.5*smax*(mxR-mxL)
	f[2] = 0.5*(fl2+fr2) - 0.5*smax*(myR-myL)
	f[3] = 0.5*(fl3+fr3) - 0.5*smax*(mzR-mzL)
	f[4] = 0.5*(fl4+fr4) - 0.5*smax*(enR-enL)
	return
}

// computeIncrements fills the scratch arrays with dt/dx times the flux
// divergence of every interior cell in plane k (the "force" computation,
// the solver's dominant loop). The increments are stored negated so the
// later phases simply add them.
func (s *state) computeIncrements(k int) {
	st := s.stride()
	lam := s.dt / s.dx
	offs := [3]int{1, st, st * st} // +x, +y, +z neighbor strides
	for j := 1; j <= s.n; j++ {
		for i := 1; i <= s.n; i++ {
			id := s.idx(i, j, k)
			var d [5]float64
			for axis := 0; axis < 3; axis++ {
				o := offs[axis]
				lo, hi := id-o, id+o
				fm := rusanov(axis,
					s.rho[lo], s.mx[lo], s.my[lo], s.mz[lo], s.en[lo],
					s.rho[id], s.mx[id], s.my[id], s.mz[id], s.en[id])
				fp := rusanov(axis,
					s.rho[id], s.mx[id], s.my[id], s.mz[id], s.en[id],
					s.rho[hi], s.mx[hi], s.my[hi], s.mz[hi], s.en[hi])
				for c := 0; c < 5; c++ {
					d[c] += fp[c] - fm[c]
				}
			}
			s.nrho[id] = -lam * d[0]
			s.nmx[id] = -lam * d[1]
			s.nmy[id] = -lam * d[2]
			s.nmz[id] = -lam * d[3]
			s.nen[id] = -lam * d[4]
		}
	}
}

// applyMomentum adds the momentum increments in plane k ("acceleration").
func (s *state) applyMomentum(k int) {
	for j := 1; j <= s.n; j++ {
		for i := 1; i <= s.n; i++ {
			id := s.idx(i, j, k)
			s.nmx[id] += s.mx[id]
			s.nmy[id] += s.my[id]
			s.nmz[id] += s.mz[id]
		}
	}
}

// applyContinuity adds the density increments in plane k ("kinematics":
// the volume/density change of the Lagrange element update).
func (s *state) applyContinuity(k int) {
	for j := 1; j <= s.n; j++ {
		for i := 1; i <= s.n; i++ {
			id := s.idx(i, j, k)
			v := s.nrho[id] + s.rho[id]
			if v < rhoFloor {
				v = rhoFloor
			}
			s.nrho[id] = v
		}
	}
}

// applyEnergy adds the energy increments in plane k and floors internal
// energy ("apply material properties": the EOS/energy update).
func (s *state) applyEnergy(k int) {
	for j := 1; j <= s.n; j++ {
		for i := 1; i <= s.n; i++ {
			id := s.idx(i, j, k)
			e := s.nen[id] + s.en[id]
			if e < pFloor {
				e = pFloor
			}
			s.nen[id] = e
		}
	}
}

// viscosityScan computes the artificial-viscosity diagnostic of plane k:
// the maximum q = ρ·c·|Δu| over faces — the quantity LULESH's CalcQForElems
// produces; for the Rusanov scheme it measures the built-in dissipation.
func (s *state) viscosityScan(k int) float64 {
	st := s.stride()
	maxQ := 0.0
	for j := 1; j <= s.n; j++ {
		for i := 1; i <= s.n; i++ {
			id := s.idx(i, j, k)
			u0 := s.mx[id] / s.rho[id]
			du := math.Abs(s.mx[id+1]/s.rho[id+1]-u0) +
				math.Abs(s.my[id+st]/s.rho[id+st]-s.my[id]/s.rho[id]) +
				math.Abs(s.mz[id+st*st]/s.rho[id+st*st]-s.mz[id]/s.rho[id])
			q := s.rho[id] * soundSpeed(s.rho[id], s.mx[id], s.my[id], s.mz[id], s.en[id]) * du
			if q > maxQ {
				maxQ = q
			}
		}
	}
	return maxQ
}

// swapState promotes the scratch arrays to current ("update volumes") and
// returns the plane's maximum relative density change — the raw material of
// the hydro timestep constraint.
func (s *state) swapState(k int) float64 {
	maxRate := 0.0
	for j := 1; j <= s.n; j++ {
		for i := 1; i <= s.n; i++ {
			id := s.idx(i, j, k)
			rate := math.Abs(s.nrho[id]-s.rho[id]) / s.rho[id]
			if rate > maxRate {
				maxRate = rate
			}
			s.rho[id] = s.nrho[id]
			s.mx[id] = s.nmx[id]
			s.my[id] = s.nmy[id]
			s.mz[id] = s.nmz[id]
			s.en[id] = s.nen[id]
		}
	}
	return maxRate
}

// courantScan returns the maximum wavespeed |u|+c in plane k.
func (s *state) courantScan(k int) float64 {
	m := 0.0
	for j := 1; j <= s.n; j++ {
		for i := 1; i <= s.n; i++ {
			id := s.idx(i, j, k)
			rho := s.rho[id]
			u := math.Abs(s.mx[id] / rho)
			v := math.Abs(s.my[id] / rho)
			w := math.Abs(s.mz[id] / rho)
			speed := math.Max(u, math.Max(v, w)) + soundSpeed(rho, s.mx[id], s.my[id], s.mz[id], s.en[id])
			if speed > m {
				m = speed
			}
		}
	}
	return m
}

// velocityScan returns the maximum |velocity component| of plane k based on
// the freshly updated momentum ("calc velocity for nodes").
func (s *state) velocityScan(k int) float64 {
	m := 0.0
	for j := 1; j <= s.n; j++ {
		for i := 1; i <= s.n; i++ {
			id := s.idx(i, j, k)
			// New momentum over the pre-update density: the predictor
			// velocity (the density update happens in LagrangeElements).
			rho := s.rho[id]
			for _, mom := range [3]float64{s.nmx[id], s.nmy[id], s.nmz[id]} {
				if v := math.Abs(mom / rho); v > m {
					m = v
				}
			}
		}
	}
	return m
}

// displacementScan sums |u|·dt over plane k — the Lagrangian marker motion
// of "calc position for nodes" (a pure diagnostic; it never feeds back).
func (s *state) displacementScan(k int) float64 {
	sum := 0.0
	for j := 1; j <= s.n; j++ {
		for i := 1; i <= s.n; i++ {
			id := s.idx(i, j, k)
			rho := s.rho[id]
			sum += s.dt * (math.Abs(s.mx[id]) + math.Abs(s.my[id]) + math.Abs(s.mz[id])) / rho
		}
	}
	return sum
}

// boundaryScan verifies finiteness of wall-adjacent cells — the (cheap,
// serialized) boundary-condition pass.
func (s *state) boundaryScan() error {
	check := func(id int) error {
		if math.IsNaN(s.rho[id]) || math.IsInf(s.rho[id], 0) ||
			math.IsNaN(s.en[id]) || math.IsInf(s.en[id], 0) {
			return fmt.Errorf("lulesh: non-finite boundary state at %d", id)
		}
		return nil
	}
	for j := 1; j <= s.n; j++ {
		for i := 1; i <= s.n; i++ {
			for _, id := range []int{
				s.idx(i, j, 1), s.idx(i, j, s.n),
				s.idx(i, 1, j), s.idx(i, s.n, j),
				s.idx(1, i, j), s.idx(s.n, i, j),
			} {
				if err := check(id); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
