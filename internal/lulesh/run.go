package lulesh

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/omp"
)

// Tags for the face exchanges (one pair per axis) and the final gather.
const (
	tagFaceLow = 500 + 2*iota
	tagFaceLowY
	tagFaceLowZ
	tagGatherField
)

func faceTags(axis int) (low, high int) {
	base := tagFaceLow + 2*axis
	return base, base + 1
}

// runRank executes the solver on one rank and returns diagnostics (only
// rank 0's return value is meaningful).
func runRank(c *mpi.Comm, p Params) (Diagnostics, error) {
	var diag Diagnostics
	px := cubeRoot(c.Size())
	s := &state{
		c:     c,
		team:  omp.New(c, p.Threads),
		p:     p,
		px:    px,
		n:     p.S / p.Scale,
		fullN: p.S,
	}
	s.ix = c.Rank() % px
	s.iy = (c.Rank() / px) % px
	s.iz = c.Rank() / (px * px)
	s.globalN = s.n * px
	s.dx = 1.0 / float64(s.globalN)
	if p.SedovEnergy <= 0 {
		s.p.SedovEnergy = 1e4
	}

	c.SectionEnter(SecMain)
	defer c.SectionExit(SecMain)

	// ---- InitMeshDecomp: allocate, set Sedov state, initial constraints.
	err := c.Section(SecInit, func() error {
		initState(s)
		s.maxWave = 0
		for k := 1; k <= s.n; k++ {
			if w := s.courantScan(k); w > s.maxWave {
				s.maxWave = w
			}
		}
		// Modeled mesh-construction cost: ~300 flops/element once.
		c.Compute(machine.Work{Flops: 300 * s.elemsFull(), Bytes: 64 * s.elemsFull()})
		return nil
	})
	if err != nil {
		return diag, err
	}
	diag.Mass0, diag.Energy0, err = s.totals()
	if err != nil {
		return diag, err
	}

	// ---- timeloop: the 99% section.
	err = c.Section(SecTimeLoop, func() error {
		for step := 0; step < p.Steps; step++ {
			if err := s.doStep(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return diag, err
	}

	// ---- FinalOutput: diagnostics + field gather for the checksum.
	err = c.Section(SecFinalOutput, func() error {
		var err error
		diag.Mass1, diag.Energy1, err = s.totals()
		if err != nil {
			return err
		}
		minRho, maxRho, minP := math.Inf(1), math.Inf(-1), math.Inf(1)
		for k := 1; k <= s.n; k++ {
			for j := 1; j <= s.n; j++ {
				for i := 1; i <= s.n; i++ {
					id := s.idx(i, j, k)
					if s.rho[id] < minRho {
						minRho = s.rho[id]
					}
					if s.rho[id] > maxRho {
						maxRho = s.rho[id]
					}
					pv := pressure(s.rho[id], s.mx[id], s.my[id], s.mz[id], s.en[id])
					if pv < minP {
						minP = pv
					}
				}
			}
		}
		var agg []float64
		agg, err = c.Allreduce([]float64{-minRho, maxRho, -minP}, mpi.OpMax)
		if err != nil {
			return err
		}
		diag.MinRho, diag.MaxRho, diag.MinP = -agg[0], agg[1], -agg[2]
		diag.FinalDt = s.dt
		diag.FieldHash, err = s.gatherFieldHash()
		return err
	})
	return diag, err
}

// doStep advances one explicit timestep with the paper's section anatomy.
func (s *state) doStep() error {
	c := s.c
	// TimeIncrement: global CFL timestep from the previous constraints.
	err := c.Section(SecTimeIncrement, func() error {
		local := cflLimit * s.dx / math.Max(s.maxWave, 1e-30)
		dt, err := c.AllreduceFloat64(-local, mpi.OpMax) // min via negated max
		if err != nil {
			return err
		}
		s.dt = -dt
		s.team.Serial(s.charge(workTable.dtSerial), nil)
		return nil
	})
	if err != nil {
		return err
	}

	return c.Section(SecLeapFrog, func() error {
		if err := s.lagrangeNodal(); err != nil {
			return err
		}
		if err := s.lagrangeElements(); err != nil {
			return err
		}
		return s.calcTimeConstraints()
	})
}

// lagrangeNodal: halo exchange, force (flux) computation, momentum update,
// boundary handling, velocity and position passes.
func (s *state) lagrangeNodal() error {
	c := s.c
	return c.Section(SecNodal, func() error {
		if err := c.Section(SecCommSBN, s.exchangeHalos); err != nil {
			return err
		}
		if err := c.Section(SecForce, func() error {
			s.team.ForModeled(s.fullN, s.n, s.perPlane(workTable.force), s.planeBody(s.computeIncrements))
			return nil
		}); err != nil {
			return err
		}
		if err := c.Section(SecAccel, func() error {
			s.team.ForModeled(s.fullN, s.n, s.perPlane(workTable.accel), s.planeBody(s.applyMomentum))
			return nil
		}); err != nil {
			return err
		}
		if err := c.Section(SecAccelBC, func() error {
			var scanErr error
			s.team.Serial(s.charge(workTable.bcSerial), func() {
				scanErr = s.boundaryScan()
			})
			return scanErr
		}); err != nil {
			return err
		}
		if err := c.Section(SecVelocity, func() error {
			maxV := 0.0
			s.team.ForModeled(s.fullN, s.n, s.perPlane(workTable.velocity), func(k int) {
				if v := s.velocityScan(k + 1); v > maxV {
					maxV = v
				}
			})
			s.velMax = maxV
			return nil
		}); err != nil {
			return err
		}
		return c.Section(SecPosition, func() error {
			total := 0.0
			s.team.ForModeled(s.fullN, s.n, s.perPlane(workTable.position), func(k int) {
				total += s.displacementScan(k + 1)
			})
			s.team.Serial(s.charge(workTable.positionSerial), nil)
			s.displacement += total
			return nil
		})
	})
}

// lagrangeElements: continuity, artificial viscosity, EOS/energy, volume
// promotion.
func (s *state) lagrangeElements() error {
	c := s.c
	return c.Section(SecElements, func() error {
		if err := c.Section(SecKinematics, func() error {
			s.team.ForModeled(s.fullN, s.n, s.perPlane(workTable.kinematics), s.planeBody(s.applyContinuity))
			return nil
		}); err != nil {
			return err
		}
		if err := c.Section(SecQ, func() error {
			maxQ := 0.0
			s.team.ForModeled(s.fullN, s.n, s.perPlane(workTable.q), func(k int) {
				if q := s.viscosityScan(k + 1); q > maxQ {
					maxQ = q
				}
			})
			s.qMax = maxQ
			s.team.Serial(s.charge(workTable.qSerial), nil)
			return nil
		}); err != nil {
			return err
		}
		if err := c.Section(SecMaterial, func() error {
			s.team.ForModeled(s.fullN, s.n, s.perPlane(workTable.material), s.planeBody(s.applyEnergy))
			return nil
		}); err != nil {
			return err
		}
		return c.Section(SecUpdateVol, func() error {
			maxRate := 0.0
			s.team.ForModeled(s.fullN, s.n, s.perPlane(workTable.updateVol), func(k int) {
				if r := s.swapState(k + 1); r > maxRate {
					maxRate = r
				}
			})
			s.hydroRate = maxRate
			return nil
		})
	})
}

// calcTimeConstraints: courant + hydro scans feeding the next TimeIncrement.
func (s *state) calcTimeConstraints() error {
	c := s.c
	return c.Section(SecTimeConstraints, func() error {
		if err := c.Section(SecCourant, func() error {
			maxW := 0.0
			s.team.ForModeled(s.fullN, s.n, s.perPlane(workTable.courant), func(k int) {
				if w := s.courantScan(k + 1); w > maxW {
					maxW = w
				}
			})
			s.maxWave = maxW
			return nil
		}); err != nil {
			return err
		}
		return c.Section(SecHydro, func() error {
			// The hydro constraint tightens dt when density changes too
			// fast; fold it into the wavespeed-based constraint so the
			// next TimeIncrement sees a single local bound.
			s.team.ForModeled(s.fullN, s.n, s.perPlane(workTable.hydro), func(k int) {})
			if s.hydroRate > 0.25 {
				s.maxWave *= s.hydroRate / 0.25
			}
			return nil
		})
	})
}

// perPlane converts a per-element work rate into per-FULL-SCALE-plane work
// for the OpenMP loops: loop timing is modeled over fullN planes even when
// only n execute (ForModeled), so chunk-tail imbalance reflects the real
// problem size.
func (s *state) perPlane(w perElem) machine.Work {
	return s.charge(w).Scale(1 / float64(s.fullN))
}

// planeBody adapts a plane-indexed method to ParallelFor's 0-based index.
func (s *state) planeBody(f func(k int)) func(int) {
	return func(k int) { f(k + 1) }
}

// exchangeHalos refreshes the ghost layer: mirror walls at the global
// boundary, Sendrecv with cube neighbors elsewhere. Virtual message sizes
// are the full-scale face sizes.
func (s *state) exchangeHalos() error {
	fields := [5][]float64{s.rho, s.mx, s.my, s.mz, s.en}
	// Which momentum component flips at a mirror wall, per axis.
	flip := [3]int{1, 2, 3}
	vbytes := int(s.faceElemsFull() * 5 * 8)

	for axis := 0; axis < 3; axis++ {
		lowTag, highTag := faceTags(axis)
		for _, side := range [2]int{-1, +1} {
			var off [3]int
			off[axis] = side
			nb := s.neighbor(off[0], off[1], off[2])
			if nb < 0 {
				s.mirrorWall(axis, side, fields, flip[axis])
				continue
			}
			sendTag, recvTag := lowTag, highTag
			if side > 0 {
				sendTag, recvTag = highTag, lowTag
			}
			payload := s.packFace(axis, side, fields)
			s.packBuf = payload
			face, _, err := s.c.SendrecvFloat64sInto(nb, sendTag, payload,
				vbytes, nb, recvTag, s.faceBuf)
			if err != nil {
				return err
			}
			s.faceBuf = face
			if err := s.unpackFace(axis, side, fields, face); err != nil {
				return err
			}
		}
	}
	return nil
}

// facePlane iterates the (j2, j1) coordinates of a face and calls f with
// the source (interior) and destination (ghost) flat indices for the given
// axis/side.
func (s *state) facePlane(axis, side int, f func(interior, ghost int)) {
	inner, outer := 1, s.n
	ghostIn, ghostOut := 0, s.n+1
	var fixed, gfixed int
	if side < 0 {
		fixed, gfixed = inner, ghostIn
	} else {
		fixed, gfixed = outer, ghostOut
	}
	for b := 1; b <= s.n; b++ {
		for a := 1; a <= s.n; a++ {
			var ii, gi int
			switch axis {
			case 0:
				ii, gi = s.idx(fixed, a, b), s.idx(gfixed, a, b)
			case 1:
				ii, gi = s.idx(a, fixed, b), s.idx(a, gfixed, b)
			default:
				ii, gi = s.idx(a, b, fixed), s.idx(a, b, gfixed)
			}
			f(ii, gi)
		}
	}
}

// packFace flattens the interior boundary plane of every field into the
// reusable pack buffer.
func (s *state) packFace(axis, side int, fields [5][]float64) []float64 {
	out := s.packBuf[:0]
	if cap(out) < 5*s.n*s.n {
		out = make([]float64, 0, 5*s.n*s.n)
	}
	for _, fld := range fields {
		s.facePlane(axis, side, func(interior, _ int) {
			out = append(out, fld[interior])
		})
	}
	return out
}

// unpackFace writes a received neighbor plane into the ghost layer.
func (s *state) unpackFace(axis, side int, fields [5][]float64, face []float64) error {
	if len(face) != 5*s.n*s.n {
		return fmt.Errorf("lulesh: face payload %d != %d", len(face), 5*s.n*s.n)
	}
	pos := 0
	for _, fld := range fields {
		s.facePlane(axis, side, func(_, ghost int) {
			fld[ghost] = face[pos]
			pos++
		})
	}
	return nil
}

// mirrorWall fills a global-boundary ghost plane with the mirrored interior
// state, negating the wall-normal momentum (reflective BC).
func (s *state) mirrorWall(axis, side int, fields [5][]float64, flipField int) {
	for fi, fld := range fields {
		sign := 1.0
		if fi == flipField {
			sign = -1
		}
		s.facePlane(axis, side, func(interior, ghost int) {
			fld[ghost] = sign * fld[interior]
		})
	}
}

// totals computes global mass and energy (cell volume × densities).
func (s *state) totals() (mass, energy float64, err error) {
	var m, e float64
	for k := 1; k <= s.n; k++ {
		for j := 1; j <= s.n; j++ {
			for i := 1; i <= s.n; i++ {
				id := s.idx(i, j, k)
				m += s.rho[id]
				e += s.en[id]
			}
		}
	}
	cell := s.dx * s.dx * s.dx
	agg, err := s.c.Allreduce([]float64{m * cell, e * cell}, mpi.OpSum)
	if err != nil {
		return 0, 0, err
	}
	return agg[0], agg[1], nil
}

// gatherFieldHash assembles the global density field on rank 0 (in global
// index order, independent of the decomposition) and hashes it; the hash is
// then broadcast so every rank returns the same value.
func (s *state) gatherFieldHash() (uint64, error) {
	c := s.c
	// Flatten my interior in local order.
	local := make([]float64, 0, s.n*s.n*s.n)
	for k := 1; k <= s.n; k++ {
		for j := 1; j <= s.n; j++ {
			for i := 1; i <= s.n; i++ {
				local = append(local, s.rho[s.idx(i, j, k)])
			}
		}
	}
	parts, err := c.Gather(0, mpi.Float64sToBytes(local))
	if err != nil {
		return 0, err
	}
	var hash uint64
	if c.Rank() == 0 {
		g := s.globalN
		global := make([]float64, g*g*g)
		for r, raw := range parts {
			vals, err := mpi.BytesToFloat64s(raw)
			if err != nil {
				return 0, err
			}
			mpi.Release(raw)
			rx := r % s.px
			ry := (r / s.px) % s.px
			rz := r / (s.px * s.px)
			pos := 0
			for k := 0; k < s.n; k++ {
				for j := 0; j < s.n; j++ {
					for i := 0; i < s.n; i++ {
						gi := rx*s.n + i
						gj := ry*s.n + j
						gk := rz*s.n + k
						global[(gk*g+gj)*g+gi] = vals[pos]
						pos++
					}
				}
			}
		}
		h := fnv.New64a()
		var buf [8]byte
		for _, v := range global {
			bits := math.Float64bits(v)
			for b := 0; b < 8; b++ {
				buf[b] = byte(bits >> (8 * b))
			}
			if _, err := h.Write(buf[:]); err != nil {
				return 0, err
			}
		}
		hash = h.Sum64()
	}
	got, err := c.Bcast(0, []byte(fmt.Sprintf("%d", hash)))
	if err != nil {
		return 0, err
	}
	if _, err := fmt.Sscan(string(got), &hash); err != nil {
		return 0, err
	}
	return hash, nil
}
