// Package lulesh is this repository's stand-in for the LULESH CORAL
// benchmark the paper instruments in §5.2: an explicit shock-hydrodynamics
// mini-app on a structured 3-D mesh, MPI-decomposed over a cube of ranks
// with face halo exchanges, OpenMP-parallel element loops, and the paper's
// 21 MPI_Sections outlining the Lagrange phases.
//
// The physics is a real (simplified) compressible-Euler solver — ideal-gas
// Sedov blast from a corner energy deposit, first-order Rusanov fluxes,
// reflective walls, CFL-controlled global timestep — so the code has
// LULESH's execution anatomy (dominant LagrangeNodal/LagrangeElements
// phases inside a 99% time loop, a global MPI reduction per step) while
// remaining exactly verifiable: mass and total energy are conserved to
// round-off and any domain decomposition or thread count reproduces the
// sequential field bit-for-bit. Work is charged to the virtual clock at
// hexahedral-hydro cost rates (see workTable), which is how the Table 7 /
// Figs. 8–10 configurations are reproduced at full scale.
package lulesh

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/omp"
)

// Section labels: the 21 sections instrumented in the paper's main source
// file, organized as in LULESH 2.0.
const (
	SecMain            = "main"
	SecInit            = "InitMeshDecomp"
	SecTimeLoop        = "timeloop"
	SecTimeIncrement   = "TimeIncrement"
	SecLeapFrog        = "LagrangeLeapFrog"
	SecNodal           = "LagrangeNodal"
	SecCommSBN         = "CommSBN"
	SecForce           = "CalcForceForNodes"
	SecAccel           = "CalcAccelerationForNodes"
	SecAccelBC         = "ApplyAccelerationBoundaryConditions"
	SecVelocity        = "CalcVelocityForNodes"
	SecPosition        = "CalcPositionForNodes"
	SecElements        = "LagrangeElements"
	SecKinematics      = "CalcLagrangeElements"
	SecQ               = "CalcQForElems"
	SecMaterial        = "ApplyMaterialPropertiesForElems"
	SecUpdateVol       = "UpdateVolumesForElems"
	SecTimeConstraints = "CalcTimeConstraints"
	SecCourant         = "CalcCourantConstraintForElems"
	SecHydro           = "CalcHydroConstraintForElems"
	SecFinalOutput     = "FinalOutput"
)

// Sections lists all 21 instrumented labels.
func Sections() []string {
	return []string{
		SecMain, SecInit, SecTimeLoop, SecTimeIncrement, SecLeapFrog,
		SecNodal, SecCommSBN, SecForce, SecAccel, SecAccelBC, SecVelocity,
		SecPosition, SecElements, SecKinematics, SecQ, SecMaterial,
		SecUpdateVol, SecTimeConstraints, SecCourant, SecHydro, SecFinalOutput,
	}
}

// Params configures one run.
type Params struct {
	// S is the per-rank edge length in elements (LULESH -s). The global
	// mesh is a cube of edge S·∛ranks.
	S int
	// Steps is the number of explicit timesteps to run.
	Steps int
	// Threads is the OpenMP team size per rank.
	Threads int
	// Scale divides the edge length of the really-executed mesh (>= 1);
	// virtual costs always correspond to the full S.
	Scale int
	// SedovEnergy is the corner energy deposit (default 3.948746e+7-like
	// LULESH magnitude is irrelevant here; any positive value works).
	SedovEnergy float64
}

// Table7 returns the paper's strong-scaling configurations (Fig. 7):
// (p, s) pairs keeping the global element count at 110592.
func Table7() []struct{ Ranks, S int } {
	return []struct{ Ranks, S int }{
		{1, 48}, {8, 24}, {27, 16}, {64, 12},
	}
}

// Validate checks p against a rank count; ranks must be a perfect cube.
func (p Params) Validate(ranks int) error {
	if p.S <= 0 {
		return fmt.Errorf("lulesh: S must be positive, got %d", p.S)
	}
	if p.Steps <= 0 {
		return fmt.Errorf("lulesh: Steps must be positive, got %d", p.Steps)
	}
	if p.Scale < 1 {
		return fmt.Errorf("lulesh: Scale must be >= 1, got %d", p.Scale)
	}
	if p.Threads < 1 {
		return fmt.Errorf("lulesh: Threads must be >= 1, got %d", p.Threads)
	}
	if cubeRoot(ranks) < 0 {
		return fmt.Errorf("lulesh: ranks must be a cube, got %d", ranks)
	}
	if p.S%p.Scale != 0 {
		return fmt.Errorf("lulesh: Scale %d must divide S %d", p.Scale, p.S)
	}
	if p.S/p.Scale < 2 {
		return fmt.Errorf("lulesh: executed edge %d too small (need >= 2)", p.S/p.Scale)
	}
	return nil
}

// cubeRoot returns the integer cube root of n, or -1 when n is not a cube.
func cubeRoot(n int) int {
	if n <= 0 {
		return -1
	}
	r := int(math.Round(math.Cbrt(float64(n))))
	for d := r - 1; d <= r+1; d++ {
		if d > 0 && d*d*d == n {
			return d
		}
	}
	return -1
}

// Diagnostics carries physical invariants and a decomposition-independent
// checksum of the final density field.
type Diagnostics struct {
	Mass0, Mass1     float64 // total mass before / after
	Energy0, Energy1 float64 // total energy before / after
	MinRho, MaxRho   float64 // final density extrema
	MinP             float64 // final pressure minimum
	FinalDt          float64
	FieldHash        uint64 // FNV-1a over the global final density field
}

// Result of one run.
type Result struct {
	Report *mpi.Report
	Diag   Diagnostics
}

// Run executes the proxy under cfg. cfg.ThreadsPerRank should equal
// p.Threads so placement matches the team size.
func Run(cfg mpi.Config, p Params) (*Result, error) {
	if err := p.Validate(cfg.Ranks); err != nil {
		return nil, err
	}
	if cfg.ThreadsPerRank == 0 {
		cfg.ThreadsPerRank = p.Threads
	}
	var diag Diagnostics
	rep, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		d, err := runRank(c, p)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			diag = d
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Report: rep, Diag: diag}, nil
}

// state is the per-rank solver state.
type state struct {
	c    *mpi.Comm
	team *omp.Team
	p    Params

	px         int // ranks per axis
	ix, iy, iz int // my coordinates in the rank cube
	n          int // executed local edge (elements)
	fullN      int // full local edge for cost charging
	globalN    int // executed global edge
	dx         float64

	// Conserved fields with one ghost layer: (n+2)^3 each.
	rho, mx, my, mz, en []float64
	// Scratch for the update.
	nrho, nmx, nmy, nmz, nen []float64
	// Persistent halo-exchange buffers: the outgoing packed face and the
	// received neighbor face are reused across all 6 exchanges × all steps,
	// keeping the steady-state timeloop allocation-free.
	packBuf, faceBuf []float64
	// Per-step outputs.
	maxWave      float64 // local max wavespeed (courant)
	hydroRate    float64 // local max relative density change (hydro)
	velMax       float64 // velocity-pass diagnostic
	qMax         float64 // artificial-viscosity diagnostic
	displacement float64 // accumulated Lagrangian marker motion
	dt           float64
}

func (s *state) stride() int { return s.n + 2 }
func (s *state) volume() int { return (s.n + 2) * (s.n + 2) * (s.n + 2) }
func (s *state) idx(i, j, k int) int {
	st := s.stride()
	return (k*st+j)*st + i
}

// neighbor returns the rank of the cube neighbor at offset (dx,dy,dz), or
// -1 at a global boundary.
func (s *state) neighbor(dx, dy, dz int) int {
	x, y, z := s.ix+dx, s.iy+dy, s.iz+dz
	if x < 0 || y < 0 || z < 0 || x >= s.px || y >= s.px || z >= s.px {
		return -1
	}
	return (z*s.px+y)*s.px + x
}

// elemsFull is the full-scale per-rank element count for cost charges.
func (s *state) elemsFull() float64 {
	f := float64(s.fullN)
	return f * f * f
}

// faceElemsFull is the full-scale per-face element count.
func (s *state) faceElemsFull() float64 {
	f := float64(s.fullN)
	return f * f
}

// charge converts a per-element work rate into a machine.Work for this
// rank's full-scale subdomain.
func (s *state) charge(w perElem) machine.Work {
	return machine.Work{Flops: w.flops * s.elemsFull(), Bytes: w.bytes * s.elemsFull()}
}

// perElem is a per-element-per-step cost rate.
type perElem struct{ flops, bytes float64 }

// workTable models the cost of full hexahedral Lagrangian hydro (stress +
// hourglass force integration dominates, as in real LULESH), NOT the cost
// of the simplified solver that actually executes. Total ≈ 4185 flops and
// ≈ 1 KiB of traffic per element per step.
var workTable = struct {
	force, accel, velocity, position            perElem
	kinematics, q, material, updateVol          perElem
	courant, hydro                              perElem
	bcSerial, positionSerial, qSerial, dtSerial perElem
}{
	force:      perElem{2200, 520},
	accel:      perElem{300, 96},
	velocity:   perElem{200, 96},
	position:   perElem{160, 96},
	kinematics: perElem{300, 80},
	q:          perElem{400, 96},
	material:   perElem{250, 48},
	updateVol:  perElem{100, 24},
	courant:    perElem{60, 16},
	hydro:      perElem{40, 16},
	// Serialized remainder (~4.2% of the step): boundary conditions,
	// position fix-ups, the monotonic-Q setup, timestep bookkeeping — the
	// Amdahl fraction that keeps the paper's OpenMP speedup at 8.08 rather
	// than 24 (Fig. 10). It lives inside the Lagrange sections, as in real
	// LULESH, so their partial bound stays tight against the measured
	// speedup.
	bcSerial:       perElem{60, 16},
	positionSerial: perElem{40, 8},
	qSerial:        perElem{70, 16},
	dtSerial:       perElem{5, 4},
}
