package lulesh

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/omp"
)

// Physics validation of the Sedov solver itself: symmetry, propagation and
// flux identities — the correctness substrate under the timing experiments.

func TestFluxConsistency(t *testing.T) {
	// The Rusanov flux of two identical states is the exact Euler flux:
	// the dissipation term vanishes.
	rho, mx, my, mz, en := 1.3, 0.2, -0.1, 0.05, 2.7
	for axis := 0; axis < 3; axis++ {
		f := rusanov(axis, rho, mx, my, mz, en, rho, mx, my, mz, en)
		e0, e1, e2, e3, e4 := flux(axis, rho, mx, my, mz, en)
		exact := [5]float64{e0, e1, e2, e3, e4}
		for c := 0; c < 5; c++ {
			if math.Abs(f[c]-exact[c]) > 1e-14 {
				t.Errorf("axis %d component %d: rusanov %g != flux %g", axis, c, f[c], exact[c])
			}
		}
	}
}

func TestFluxSymmetryProperty(t *testing.T) {
	// Mirror symmetry: flipping the axis velocity negates the mass flux
	// and preserves pressure contribution in the momentum flux.
	f := func(rhoRaw, uRaw, eRaw uint16) bool {
		rho := float64(rhoRaw)/1000 + 0.1
		u := (float64(uRaw) - 32768) / 10000
		e := float64(eRaw)/100 + 1
		en := e + 0.5*rho*u*u
		f0p, _, _, _, _ := flux(0, rho, rho*u, 0, 0, en)
		f0m, _, _, _, _ := flux(0, rho, -rho*u, 0, 0, en)
		return math.Abs(f0p+f0m) < 1e-10*(math.Abs(f0p)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPressurePositivityFloor(t *testing.T) {
	// Kinetic energy exceeding total energy must floor, not go negative.
	p := pressure(1, 10, 0, 0, 1) // ke = 50 >> 1
	if p < pFloor {
		t.Errorf("pressure below floor: %g", p)
	}
	c := soundSpeed(1, 10, 0, 0, 1)
	if math.IsNaN(c) || c <= 0 {
		t.Errorf("sound speed invalid: %g", c)
	}
}

// TestSedovSymmetry: the corner blast is symmetric under permutations of
// the axes, so the final density field must be invariant under coordinate
// transposition.
func TestSedovSymmetry(t *testing.T) {
	p := Params{S: 10, Steps: 12, Threads: 1, Scale: 1, SedovEnergy: 1e4}
	var field []float64
	n := p.S
	cfg := mpi.Config{Ranks: 1, Model: machine.Ideal(1, 1), Seed: 1, Timeout: 60 * time.Second}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		s := &state{c: c, team: teamOf(c), p: p, px: 1, n: n, fullN: n}
		s.globalN = n
		s.dx = 1.0 / float64(n)
		initState(s)
		s.maxWave = 0
		for k := 1; k <= s.n; k++ {
			if w := s.courantScan(k); w > s.maxWave {
				s.maxWave = w
			}
		}
		for step := 0; step < p.Steps; step++ {
			if err := s.doStep(); err != nil {
				return err
			}
		}
		field = make([]float64, n*n*n)
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					field[(k*n+j)*n+i] = s.rho[s.idx(i+1, j+1, k+1)]
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	at := func(i, j, k int) float64 { return field[(k*n+j)*n+i] }
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				// All 6 axis permutations must agree.
				v := at(i, j, k)
				for _, w := range []float64{
					at(j, i, k), at(k, j, i), at(i, k, j), at(j, k, i), at(k, i, j),
				} {
					if math.Abs(v-w) > 1e-12*math.Max(1, math.Abs(v)) {
						t.Fatalf("asymmetry at (%d,%d,%d): %g vs %g", i, j, k, v, w)
					}
				}
			}
		}
	}
}

// teamOf builds a 1-thread team for direct state manipulation in tests.
func teamOf(c *mpi.Comm) *omp.Team { return omp.New(c, 1) }

// TestShockPropagates: the blast front moves away from the corner — the
// density maximum's distance from the origin grows with time.
func TestShockPropagates(t *testing.T) {
	radiusAfter := func(steps int) float64 {
		p := Params{S: 12, Steps: steps, Threads: 1, Scale: 1, SedovEnergy: 1e4}
		var radius float64
		cfg := mpi.Config{Ranks: 1, Model: machine.Ideal(1, 1), Seed: 1, Timeout: 60 * time.Second}
		_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
			s := &state{c: c, team: teamOf(c), p: p, px: 1, n: 12, fullN: 12}
			s.globalN = 12
			s.dx = 1.0 / 12
			initState(s)
			s.maxWave = 0
			for k := 1; k <= s.n; k++ {
				if w := s.courantScan(k); w > s.maxWave {
					s.maxWave = w
				}
			}
			for step := 0; step < steps; step++ {
				if err := s.doStep(); err != nil {
					return err
				}
			}
			best := 0.0
			for k := 1; k <= s.n; k++ {
				for j := 1; j <= s.n; j++ {
					for i := 1; i <= s.n; i++ {
						if s.rho[s.idx(i, j, k)] > best {
							best = s.rho[s.idx(i, j, k)]
							radius = math.Sqrt(float64((i-1)*(i-1) + (j-1)*(j-1) + (k-1)*(k-1)))
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return radius
	}
	early := radiusAfter(4)
	late := radiusAfter(30)
	if late <= early {
		t.Errorf("shock did not propagate: radius %g -> %g", early, late)
	}
}
