package prof

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/mpi"
)

// profForPerRank builds a 2-rank profile where each rank's "work" instances
// last exactly rank+1 seconds, twice.
func profForPerRank(t *testing.T) *Profile {
	t.Helper()
	return runProfiled(t, 2, func(c *mpi.Comm) error {
		for i := 0; i < 2; i++ {
			c.SectionEnter("work")
			c.Sleep(float64(c.Rank() + 1))
			c.SectionExit("work")
		}
		return nil
	})
}

func TestPerRankCSV(t *testing.T) {
	profile := profForPerRank(t)
	var buf bytes.Buffer
	if err := profile.WritePerRankCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadPerRankCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// 2 sections (work + MPI_MAIN) × 2 ranks.
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var work []PerRankRow
	for _, r := range rows {
		if r.Label == "work" {
			work = append(work, r)
		}
	}
	if len(work) != 2 {
		t.Fatalf("work rows = %d", len(work))
	}
	for _, r := range work {
		wantTotal := 2.0 * float64(r.Rank+1) // 2 instances of (rank+1)s
		if math.Abs(r.Total-wantTotal) > 1e-9 {
			t.Errorf("rank %d total = %g, want %g", r.Rank, r.Total, wantTotal)
		}
		if r.Instances != 2 {
			t.Errorf("rank %d instances = %d", r.Rank, r.Instances)
		}
		if math.Abs(r.DurMean-float64(r.Rank+1)) > 1e-9 {
			t.Errorf("rank %d mean = %g", r.Rank, r.DurMean)
		}
		if r.DurStd > 1e-9 {
			t.Errorf("rank %d std = %g, want 0 (constant durations)", r.Rank, r.DurStd)
		}
	}
}

func TestReadPerRankCSVErrors(t *testing.T) {
	if _, err := ReadPerRankCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadPerRankCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("wrong header accepted")
	}
	bad := strings.Join(perRankCSVHeader, ",") + "\n0,l,x,2,1,1,1,1,1\n"
	if _, err := ReadPerRankCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad rank field accepted")
	}
}
