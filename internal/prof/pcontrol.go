package prof

import (
	"sort"
	"sync"

	"repro/internal/mpi"
	"repro/internal/stats"
)

// PcontrolProfiler is the IPM-style baseline the paper's related-work
// section discusses: phases are outlined by MPI_Pcontrol calls whose
// semantics the tool, not the MPI standard, defines. Here the convention
// (IPM's) is: Pcontrol(level > 0) enters phase `level`, Pcontrol(0) exits
// the current phase. Contrast with MPI_Section: no labels, no nesting, no
// collective semantics, no cross-rank instance matching — which is exactly
// the expressiveness gap the paper's proposal fills.
type PcontrolProfiler struct {
	mpi.BaseTool
	mu      sync.Mutex
	open    map[int]pcOpen // key: world rank
	perRank map[int]map[int]*stats.Welford
}

type pcOpen struct {
	level  int
	enterT float64
	active bool
}

// NewPcontrol returns an empty PcontrolProfiler.
func NewPcontrol() *PcontrolProfiler {
	return &PcontrolProfiler{
		open:    map[int]pcOpen{},
		perRank: map[int]map[int]*stats.Welford{},
	}
}

// Pcontrol implements mpi.Tool.
func (p *PcontrolProfiler) Pcontrol(c *mpi.Comm, level int, t float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := c.WorldRank()
	cur := p.open[r]
	if level > 0 {
		// Entering a phase implicitly closes the previous one (IPM's flat
		// model cannot nest).
		if cur.active {
			p.recordLocked(r, cur.level, t-cur.enterT)
		}
		p.open[r] = pcOpen{level: level, enterT: t, active: true}
		return
	}
	if cur.active {
		p.recordLocked(r, cur.level, t-cur.enterT)
		p.open[r] = pcOpen{}
	}
}

func (p *PcontrolProfiler) recordLocked(rank, level int, dur float64) {
	m := p.perRank[rank]
	if m == nil {
		m = map[int]*stats.Welford{}
		p.perRank[rank] = m
	}
	w := m[level]
	if w == nil {
		w = &stats.Welford{}
		m[level] = w
	}
	w.Add(dur)
}

// PhaseTotal reports the summed duration of the numbered phase across all
// ranks.
func (p *PcontrolProfiler) PhaseTotal(level int) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0.0
	for _, m := range p.perRank {
		if w := m[level]; w != nil {
			total += w.Mean() * float64(w.N())
		}
	}
	return total
}

// Levels lists the phase numbers observed, ascending.
func (p *PcontrolProfiler) Levels() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	set := map[int]bool{}
	for _, m := range p.perRank {
		for l := range m {
			set[l] = true
		}
	}
	out := make([]int, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

var _ mpi.Tool = (*PcontrolProfiler)(nil)
