package prof

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/mpi"
)

// CommMatrix is a tool recording the point-to-point traffic volume between
// world ranks — the classic communication-matrix view IPM popularized and
// the paper's related work references. Attach via mpi.Config.Tools.
//
// Collective participation is tracked separately: CollectiveBegin/End spans
// are counted and timed per rank, and traffic sent while a rank is inside a
// collective (the algorithm's internal tag<0 messages) is attributed to the
// collective matrices rather than the user point-to-point ones.
type CommMatrix struct {
	mpi.BaseTool
	mu    sync.Mutex
	size  int
	bytes [][]int64 // [src][dst] user p2p payload bytes
	msgs  [][]int64 // [src][dst] user p2p message count
	// collective-internal traffic, keyed like the user matrices
	collBytes [][]int64
	collMsgs  [][]int64
	// per-rank collective participation spans
	collDepth []int     // current nesting depth
	collEnter []float64 // enter time of the outermost open span
	collCount []int64   // completed outermost spans
	collTime  []float64 // summed outermost span duration
}

// NewCommMatrix returns an empty collector.
func NewCommMatrix() *CommMatrix { return &CommMatrix{} }

// Init implements mpi.Tool.
func (m *CommMatrix) Init(w *mpi.WorldInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.size = w.Size
	m.bytes = make([][]int64, w.Size)
	m.msgs = make([][]int64, w.Size)
	m.collBytes = make([][]int64, w.Size)
	m.collMsgs = make([][]int64, w.Size)
	for i := range m.bytes {
		m.bytes[i] = make([]int64, w.Size)
		m.msgs[i] = make([]int64, w.Size)
		m.collBytes[i] = make([]int64, w.Size)
		m.collMsgs[i] = make([]int64, w.Size)
	}
	m.collDepth = make([]int, w.Size)
	m.collEnter = make([]float64, w.Size)
	m.collCount = make([]int64, w.Size)
	m.collTime = make([]float64, w.Size)
}

// MessageSent implements mpi.Tool.
func (m *CommMatrix) MessageSent(c *mpi.Comm, dst, tag, bytes int, t float64) {
	src := c.WorldRank()
	d := c.WorldRankOf(dst)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bytes == nil || src >= m.size || d >= m.size {
		return
	}
	// A negative tag or an open participation span marks algorithm-internal
	// collective traffic; keep it out of the user p2p matrix.
	if tag < 0 || (src < len(m.collDepth) && m.collDepth[src] > 0) {
		m.collBytes[src][d] += int64(bytes)
		m.collMsgs[src][d]++
		return
	}
	m.bytes[src][d] += int64(bytes)
	m.msgs[src][d]++
}

// CollectiveBegin implements mpi.Tool: it opens the rank's participation
// span (nested collectives extend the outermost span).
func (m *CommMatrix) CollectiveBegin(c *mpi.Comm, name string, t float64) {
	r := c.WorldRank()
	m.mu.Lock()
	defer m.mu.Unlock()
	if r >= len(m.collDepth) {
		return
	}
	if m.collDepth[r] == 0 {
		m.collEnter[r] = t
	}
	m.collDepth[r]++
}

// CollectiveEnd implements mpi.Tool: it closes the participation span and
// folds its duration into the per-rank totals.
func (m *CommMatrix) CollectiveEnd(c *mpi.Comm, name string, t float64) {
	r := c.WorldRank()
	m.mu.Lock()
	defer m.mu.Unlock()
	if r >= len(m.collDepth) || m.collDepth[r] == 0 {
		return
	}
	m.collDepth[r]--
	if m.collDepth[r] == 0 {
		m.collCount[r]++
		m.collTime[r] += t - m.collEnter[r]
	}
}

// Bytes reports the traffic volume from src to dst.
func (m *CommMatrix) Bytes(src, dst int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if src < 0 || dst < 0 || src >= m.size || dst >= m.size {
		return 0
	}
	return m.bytes[src][dst]
}

// Messages reports the message count from src to dst.
func (m *CommMatrix) Messages(src, dst int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if src < 0 || dst < 0 || src >= m.size || dst >= m.size {
		return 0
	}
	return m.msgs[src][dst]
}

// CollectiveBytes reports the collective-internal traffic from src to dst.
func (m *CommMatrix) CollectiveBytes(src, dst int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if src < 0 || dst < 0 || src >= m.size || dst >= m.size {
		return 0
	}
	return m.collBytes[src][dst]
}

// CollectiveMessages reports the collective-internal message count from src
// to dst.
func (m *CommMatrix) CollectiveMessages(src, dst int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if src < 0 || dst < 0 || src >= m.size || dst >= m.size {
		return 0
	}
	return m.collMsgs[src][dst]
}

// CollectiveSpans reports how many outermost collective participation spans
// rank completed and their summed duration.
func (m *CommMatrix) CollectiveSpans(rank int) (count int64, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rank < 0 || rank >= len(m.collCount) {
		return 0, 0
	}
	return m.collCount[rank], m.collTime[rank]
}

// TotalBytes reports all recorded traffic.
func (m *CommMatrix) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, row := range m.bytes {
		for _, v := range row {
			total += v
		}
	}
	return total
}

// matrixGlyphs maps normalized volume to a character, cold to hot.
const matrixGlyphs = " .:-=+*#%@"

// Render draws the byte matrix as an ASCII heat map (rows = senders,
// columns = receivers), normalized to the hottest pair.
func (m *CommMatrix) Render() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.size == 0 {
		return "(no communication recorded)\n"
	}
	// Scale by payload volume; when every message was empty (pure
	// synchronization traffic, e.g. barriers) fall back to message counts
	// so the pattern still shows.
	grid, unit := m.bytes, "B"
	var maxV int64
	for _, row := range grid {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		grid, unit = m.msgs, "msgs"
		for _, row := range grid {
			for _, v := range row {
				if v > maxV {
					maxV = v
				}
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "communication matrix (%d ranks, rows send → columns receive, max %d %s/pair)\n",
		m.size, maxV, unit)
	for src := 0; src < m.size; src++ {
		fmt.Fprintf(&sb, "%4d |", src)
		for dst := 0; dst < m.size; dst++ {
			idx := 0
			if maxV > 0 {
				idx = int(float64(grid[src][dst]) / float64(maxV) * float64(len(matrixGlyphs)-1))
			}
			sb.WriteByte(matrixGlyphs[idx])
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

var _ mpi.Tool = (*CommMatrix)(nil)
