package prof

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/mpi"
)

// CommMatrix is a tool recording the point-to-point traffic volume between
// world ranks — the classic communication-matrix view IPM popularized and
// the paper's related work references. Attach via mpi.Config.Tools.
type CommMatrix struct {
	mpi.BaseTool
	mu    sync.Mutex
	size  int
	bytes [][]int64 // [src][dst] payload bytes
	msgs  [][]int64 // [src][dst] message count
}

// NewCommMatrix returns an empty collector.
func NewCommMatrix() *CommMatrix { return &CommMatrix{} }

// Init implements mpi.Tool.
func (m *CommMatrix) Init(w *mpi.WorldInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.size = w.Size
	m.bytes = make([][]int64, w.Size)
	m.msgs = make([][]int64, w.Size)
	for i := range m.bytes {
		m.bytes[i] = make([]int64, w.Size)
		m.msgs[i] = make([]int64, w.Size)
	}
}

// MessageSent implements mpi.Tool.
func (m *CommMatrix) MessageSent(c *mpi.Comm, dst, tag, bytes int, t float64) {
	src := c.WorldRank()
	d := c.WorldRankOf(dst)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bytes == nil || src >= m.size || d >= m.size {
		return
	}
	m.bytes[src][d] += int64(bytes)
	m.msgs[src][d]++
}

// Bytes reports the traffic volume from src to dst.
func (m *CommMatrix) Bytes(src, dst int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if src < 0 || dst < 0 || src >= m.size || dst >= m.size {
		return 0
	}
	return m.bytes[src][dst]
}

// Messages reports the message count from src to dst.
func (m *CommMatrix) Messages(src, dst int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if src < 0 || dst < 0 || src >= m.size || dst >= m.size {
		return 0
	}
	return m.msgs[src][dst]
}

// TotalBytes reports all recorded traffic.
func (m *CommMatrix) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, row := range m.bytes {
		for _, v := range row {
			total += v
		}
	}
	return total
}

// matrixGlyphs maps normalized volume to a character, cold to hot.
const matrixGlyphs = " .:-=+*#%@"

// Render draws the byte matrix as an ASCII heat map (rows = senders,
// columns = receivers), normalized to the hottest pair.
func (m *CommMatrix) Render() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.size == 0 {
		return "(no communication recorded)\n"
	}
	// Scale by payload volume; when every message was empty (pure
	// synchronization traffic, e.g. barriers) fall back to message counts
	// so the pattern still shows.
	grid, unit := m.bytes, "B"
	var maxV int64
	for _, row := range grid {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		grid, unit = m.msgs, "msgs"
		for _, row := range grid {
			for _, v := range row {
				if v > maxV {
					maxV = v
				}
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "communication matrix (%d ranks, rows send → columns receive, max %d %s/pair)\n",
		m.size, maxV, unit)
	for src := 0; src < m.size; src++ {
		fmt.Fprintf(&sb, "%4d |", src)
		for dst := 0; dst < m.size; dst++ {
			idx := 0
			if maxV > 0 {
				idx = int(float64(grid[src][dst]) / float64(maxV) * float64(len(matrixGlyphs)-1))
			}
			sb.WriteByte(matrixGlyphs[idx])
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

var _ mpi.Tool = (*CommMatrix)(nil)
