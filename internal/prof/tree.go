package prof

import (
	"fmt"
	"sort"
	"strings"
)

// Tree renders the section hierarchy of one communicator as an indented
// profile tree: inclusive time, share of the parent's inclusive time, and
// exclusive time per node. It is the "proposed profile breakdown over
// sections" of the paper's §5.3, shaped like a classic call-tree report but
// over semantic phases instead of stack frames.
func (p *Profile) Tree(comm int64) string {
	// Collect this communicator's sections and index them by label.
	byLabel := map[string]*SectionStats{}
	children := map[string][]string{}
	var roots []string
	for _, s := range p.Sections {
		if s.Comm != comm {
			continue
		}
		byLabel[s.Label] = s
	}
	if len(byLabel) == 0 {
		return "(no sections on this communicator)\n"
	}
	for label, s := range byLabel {
		if s.Parent != "" && byLabel[s.Parent] != nil {
			children[s.Parent] = append(children[s.Parent], label)
		} else {
			roots = append(roots, label)
		}
	}
	sortByTotal := func(labels []string) {
		sort.Slice(labels, func(i, j int) bool {
			ti := byLabel[labels[i]].TotalTime()
			tj := byLabel[labels[j]].TotalTime()
			if ti != tj {
				return ti > tj
			}
			return labels[i] < labels[j]
		})
	}
	sortByTotal(roots)
	for _, c := range children {
		sortByTotal(c)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-44s %12s %8s %12s\n", "section tree", "incl(s)", "%parent", "excl(s)")
	var render func(label string, depth int, parentTotal float64)
	render = func(label string, depth int, parentTotal float64) {
		s := byLabel[label]
		share := "-"
		if parentTotal > 0 {
			share = fmt.Sprintf("%.1f%%", 100*s.TotalTime()/parentTotal)
		}
		name := strings.Repeat("  ", depth) + label
		if len(name) > 44 {
			name = name[:41] + "..."
		}
		fmt.Fprintf(&sb, "%-44s %12.5g %8s %12.5g\n",
			name, s.TotalTime(), share, s.TotalExclusive())
		for _, c := range children[label] {
			render(c, depth+1, s.TotalTime())
		}
	}
	for _, r := range roots {
		render(r, 0, 0)
	}
	return sb.String()
}

// WorldTree renders the hierarchy of the world communicator (comm 0), the
// common case.
func (p *Profile) WorldTree() string { return p.Tree(0) }
