package prof

import (
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mpi"
)

func runWithMatrix(t *testing.T, ranks int, fn func(*mpi.Comm) error) *CommMatrix {
	t.Helper()
	m := NewCommMatrix()
	cfg := mpi.Config{
		Ranks: ranks, Model: machine.Ideal(ranks, 1), Seed: 1,
		Tools: []mpi.Tool{m}, Timeout: 60 * time.Second,
	}
	if _, err := mpi.Run(cfg, fn); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCommMatrixRecordsTraffic(t *testing.T) {
	m := runWithMatrix(t, 3, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, make([]byte, 100)); err != nil {
				return err
			}
			return c.Send(2, 0, make([]byte, 200))
		}
		_, _, err := c.Recv(0, 0)
		return err
	})
	if got := m.Bytes(0, 1); got != 100 {
		t.Errorf("Bytes(0,1) = %d", got)
	}
	if got := m.Bytes(0, 2); got != 200 {
		t.Errorf("Bytes(0,2) = %d", got)
	}
	if got := m.Bytes(1, 0); got != 0 {
		t.Errorf("Bytes(1,0) = %d, want 0", got)
	}
	if got := m.Messages(0, 1); got != 1 {
		t.Errorf("Messages(0,1) = %d", got)
	}
	if got := m.TotalBytes(); got != 300 {
		t.Errorf("TotalBytes = %d", got)
	}
}

func TestCommMatrixVirtualSizes(t *testing.T) {
	// SendSized records the modeled size, consistent with what the
	// machine model charged.
	m := runWithMatrix(t, 2, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return c.SendSized(1, 0, []byte{1}, 4096)
		}
		_, _, err := c.Recv(0, 0)
		return err
	})
	if got := m.Bytes(0, 1); got != 4096 {
		t.Errorf("virtual bytes = %d, want 4096", got)
	}
}

func TestCommMatrixSubcommunicatorTraffic(t *testing.T) {
	// Traffic on a split communicator is attributed to world ranks.
	m := runWithMatrix(t, 4, func(c *mpi.Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		// Odd subcomm: world ranks 1 and 3; rank 0 of it is world rank 1.
		if c.Rank()%2 == 1 {
			if sub.Rank() == 0 {
				return sub.Send(1, 0, make([]byte, 64))
			}
			_, _, err := sub.Recv(0, 0)
			return err
		}
		return nil
	})
	if got := m.Bytes(1, 3); got != 64 {
		t.Errorf("world-attributed bytes(1,3) = %d, want 64", got)
	}
}

func TestCommMatrixStencilShape(t *testing.T) {
	// A ring exchange fills exactly the two off-diagonals (plus corners).
	const p = 6
	m := runWithMatrix(t, p, func(c *mpi.Comm) error {
		right := (c.Rank() + 1) % p
		left := (c.Rank() - 1 + p) % p
		_, _, err := c.Sendrecv(right, 0, make([]byte, 10), left, 0)
		return err
	})
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			want := int64(0)
			if dst == (src+1)%p {
				want = 10
			}
			if got := m.Bytes(src, dst); got != want {
				t.Errorf("Bytes(%d,%d) = %d, want %d", src, dst, got, want)
			}
		}
	}
}

func TestCommMatrixRender(t *testing.T) {
	m := runWithMatrix(t, 4, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send(3, 0, make([]byte, 1000))
		}
		if c.Rank() == 3 {
			_, _, err := c.Recv(0, 0)
			return err
		}
		return nil
	})
	out := m.Render()
	if !strings.Contains(out, "communication matrix (4 ranks") {
		t.Errorf("header missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "@") { // row of rank 0 has the hot cell
		t.Errorf("hot cell missing:\n%s", out)
	}
	empty := NewCommMatrix()
	if !strings.Contains(empty.Render(), "no communication") {
		t.Error("empty matrix render wrong")
	}
}

func TestCommMatrixBoundsSafe(t *testing.T) {
	m := NewCommMatrix()
	if m.Bytes(0, 0) != 0 || m.Messages(-1, 5) != 0 || m.TotalBytes() != 0 {
		t.Error("uninitialized matrix not zero-safe")
	}
	if c, s := m.CollectiveSpans(2); c != 0 || s != 0 {
		t.Error("uninitialized collective spans not zero-safe")
	}
}

func TestCommMatrixSeparatesCollectiveTraffic(t *testing.T) {
	// A barrier's internal messages must land in the collective matrices
	// and every rank must get one participation span — while user p2p
	// traffic in the same run stays in the plain matrices.
	const p = 4
	m := runWithMatrix(t, p, func(c *mpi.Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			return c.Send(1, 0, make([]byte, 128))
		}
		if c.Rank() == 1 {
			_, _, err := c.Recv(0, 0)
			return err
		}
		return nil
	})
	if got := m.Bytes(0, 1); got != 128 {
		t.Errorf("user Bytes(0,1) = %d, want 128", got)
	}
	var collMsgs int64
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			collMsgs += m.CollectiveMessages(src, dst)
			// The barrier's internal traffic must NOT pollute the p2p view.
			if src == 0 && dst == 1 {
				continue
			}
			if got := m.Messages(src, dst); got != 0 {
				t.Errorf("collective traffic leaked into p2p Messages(%d,%d) = %d", src, dst, got)
			}
		}
	}
	if collMsgs == 0 {
		t.Error("no collective-internal messages recorded for the barrier")
	}
	for r := 0; r < p; r++ {
		count, seconds := m.CollectiveSpans(r)
		if count != 1 {
			t.Errorf("rank %d: %d collective spans, want 1", r, count)
		}
		if seconds < 0 {
			t.Errorf("rank %d: negative span time %g", r, seconds)
		}
	}
}
