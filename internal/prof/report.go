package prof

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table renders the profile as an aligned text report: one row per section,
// sorted by total inclusive time, with the Fig. 3 aggregate metrics.
func (p *Profile) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "walltime %.6gs over %d ranks\n", p.WallTime, len(p.RankTimes))
	fmt.Fprintf(&sb, "%-24s %9s %12s %12s %12s %10s %10s %10s\n",
		"section", "instances", "total(s)", "avg/proc(s)", "excl(s)", "entry-imb", "imb", "lb(max/µ-1)")
	for _, s := range p.Sections {
		fmt.Fprintf(&sb, "%-24s %9d %12.5g %12.5g %12.5g %10.4g %10.4g %10.4g\n",
			s.Label, s.Instances, s.TotalTime(), s.AvgPerProcess(),
			s.TotalExclusive(), s.EntryImb.Mean(), s.Imb.Mean(), s.LoadImbalance())
	}
	return sb.String()
}

// profileCSVHeader is the stable column set for WriteCSV/ReadCSV.
var profileCSVHeader = []string{
	"comm", "label", "ranks", "instances",
	"total", "avg_per_proc", "excl_total",
	"dur_mean", "dur_std", "entry_imb_mean", "imb_mean", "span_total",
}

// WriteCSV emits one row per section, machine-readable, for cmd/secanalyze
// and external plotting.
func (p *Profile) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(profileCSVHeader); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }
	for _, s := range p.Sections {
		rec := []string{
			strconv.FormatInt(s.Comm, 10),
			s.Label,
			strconv.Itoa(s.Ranks),
			strconv.Itoa(s.Instances),
			g(s.TotalTime()),
			g(s.AvgPerProcess()),
			g(s.TotalExclusive()),
			g(s.Dur.Mean()),
			g(s.Dur.Std()),
			g(s.EntryImb.Mean()),
			g(s.Imb.Mean()),
			g(s.SpanTotal),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVRow is one parsed row of a profile CSV (aggregates only — Welford
// state is not serialized, so round-tripping keeps summary statistics).
type CSVRow struct {
	Comm         int64
	Label        string
	Ranks        int
	Instances    int
	Total        float64
	AvgPerProc   float64
	ExclTotal    float64
	DurMean      float64
	DurStd       float64
	EntryImbMean float64
	ImbMean      float64
	SpanTotal    float64
}

// ReadCSV parses a stream produced by WriteCSV.
func ReadCSV(r io.Reader) ([]CSVRow, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 || strings.Join(rows[0], ",") != strings.Join(profileCSVHeader, ",") {
		return nil, fmt.Errorf("prof: not a profile CSV")
	}
	out := make([]CSVRow, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(profileCSVHeader) {
			return nil, fmt.Errorf("prof: row %d has %d fields", i+2, len(row))
		}
		var c CSVRow
		var err error
		fail := func(what string, e error) error {
			return fmt.Errorf("prof: row %d %s: %w", i+2, what, e)
		}
		if c.Comm, err = strconv.ParseInt(row[0], 10, 64); err != nil {
			return nil, fail("comm", err)
		}
		c.Label = row[1]
		if c.Ranks, err = strconv.Atoi(row[2]); err != nil {
			return nil, fail("ranks", err)
		}
		if c.Instances, err = strconv.Atoi(row[3]); err != nil {
			return nil, fail("instances", err)
		}
		floats := []*float64{
			&c.Total, &c.AvgPerProc, &c.ExclTotal, &c.DurMean,
			&c.DurStd, &c.EntryImbMean, &c.ImbMean, &c.SpanTotal,
		}
		for j, dst := range floats {
			if *dst, err = strconv.ParseFloat(row[4+j], 64); err != nil {
				return nil, fail(profileCSVHeader[4+j], err)
			}
		}
		out = append(out, c)
	}
	return out, nil
}
