package prof

import (
	"strings"
	"testing"

	"repro/internal/mpi"
)

func TestTreeHierarchy(t *testing.T) {
	profile := runProfiled(t, 2, func(c *mpi.Comm) error {
		for i := 0; i < 3; i++ {
			c.SectionEnter("step")
			c.SectionEnter("halo")
			c.Sleep(0.5)
			c.SectionExit("halo")
			c.SectionEnter("compute")
			c.Sleep(1.5)
			c.SectionExit("compute")
			c.SectionExit("step")
		}
		return nil
	})
	// Parent links.
	if got := profile.Section("step").Parent; got != mpi.MainSection {
		t.Errorf("step parent = %q", got)
	}
	if got := profile.Section("halo").Parent; got != "step" {
		t.Errorf("halo parent = %q", got)
	}

	out := profile.WorldTree()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + MAIN + step + compute + halo
		t.Fatalf("tree lines = %d:\n%s", len(lines), out)
	}
	// Indentation encodes depth.
	if !strings.HasPrefix(lines[1], mpi.MainSection) {
		t.Errorf("root line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "  step") {
		t.Errorf("step line = %q", lines[2])
	}
	// Children sorted by inclusive time: compute (4.5s×2) before halo.
	if !strings.HasPrefix(lines[3], "    compute") || !strings.HasPrefix(lines[4], "    halo") {
		t.Errorf("child order wrong:\n%s", out)
	}
	// Share column: step is ~100% of MAIN; compute ~75% of step.
	if !strings.Contains(lines[3], "75.0%") {
		t.Errorf("compute share missing:\n%s", out)
	}
}

func TestTreeUnknownComm(t *testing.T) {
	profile := runProfiled(t, 1, func(c *mpi.Comm) error { return nil })
	if out := profile.Tree(999); !strings.Contains(out, "no sections") {
		t.Errorf("unknown comm tree = %q", out)
	}
}

func TestTreeOrphanParent(t *testing.T) {
	// A section on a subcommunicator whose parent label only exists on the
	// world comm must render as a root of its own comm's tree.
	profile := runProfiled(t, 2, func(c *mpi.Comm) error {
		sub, err := c.Dup()
		if err != nil {
			return err
		}
		sub.SectionEnter("island")
		c.Sleep(1)
		sub.SectionExit("island")
		return nil
	})
	var subComm int64 = -1
	for _, s := range profile.Sections {
		if s.Label == "island" {
			subComm = s.Comm
		}
	}
	if subComm < 0 {
		t.Fatal("island section missing")
	}
	out := profile.Tree(subComm)
	if !strings.Contains(out, "island") {
		t.Errorf("island not rendered:\n%s", out)
	}
}
