package prof

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mpi"
)

// runProfiled executes fn under a fresh Profiler and returns the profile.
func runProfiled(t *testing.T, ranks int, fn func(*mpi.Comm) error) *Profile {
	t.Helper()
	p := New()
	cfg := mpi.Config{
		Ranks:   ranks,
		Model:   machine.Ideal(ranks, 1),
		Seed:    1,
		Tools:   []mpi.Tool{p},
		Timeout: 30 * time.Second,
	}
	if _, err := mpi.Run(cfg, fn); err != nil {
		t.Fatal(err)
	}
	prof, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestResultBeforeRun(t *testing.T) {
	if _, err := New().Result(); err == nil {
		t.Error("Result before run did not error")
	}
}

func TestBasicSectionDurations(t *testing.T) {
	prof := runProfiled(t, 2, func(c *mpi.Comm) error {
		c.SectionEnter("work")
		c.Sleep(2)
		c.SectionExit("work")
		return nil
	})
	s := prof.Section("work")
	if s == nil {
		t.Fatalf("section missing; have %v", prof.Labels())
	}
	if s.Instances != 1 || s.Ranks != 2 {
		t.Errorf("instances/ranks = %d/%d", s.Instances, s.Ranks)
	}
	if math.Abs(s.TotalTime()-4) > 1e-9 { // 2s on each of 2 ranks
		t.Errorf("TotalTime = %g, want 4", s.TotalTime())
	}
	if math.Abs(s.AvgPerProcess()-2) > 1e-9 {
		t.Errorf("AvgPerProcess = %g, want 2", s.AvgPerProcess())
	}
	if math.Abs(s.Dur.Mean()-2) > 1e-9 || s.Dur.N() != 2 {
		t.Errorf("Dur = %g over %d", s.Dur.Mean(), s.Dur.N())
	}
	// MPI_MAIN must be present and as long as the run.
	main := prof.Section(mpi.MainSection)
	if main == nil || main.Dur.Mean() < 2 {
		t.Errorf("MPI_MAIN missing or short: %+v", main)
	}
}

func TestFig3MetricsOnSkewedEntry(t *testing.T) {
	// Rank r sleeps r seconds before entering, then everyone works 1s.
	// Tmin = 0 (rank 0 enters first); for rank r: Tin = r, Tout = r+1.
	// Tmax = p-1+1 = p. Entry imbalance of rank r = r.
	// Tsection(r) = Tout − Tmin = r+1; imb(r) = (Tmax−Tmin) − Tsection = p−r−1.
	const p = 4
	prof := runProfiled(t, p, func(c *mpi.Comm) error {
		c.Sleep(float64(c.Rank()))
		c.SectionEnter("skewed")
		c.Sleep(1)
		c.SectionExit("skewed")
		return nil
	})
	s := prof.Section("skewed")
	if s == nil {
		t.Fatal("section missing")
	}
	// Mean entry imbalance = (0+1+2+3)/4 = 1.5.
	if math.Abs(s.EntryImb.Mean()-1.5) > 1e-9 {
		t.Errorf("EntryImb mean = %g, want 1.5", s.EntryImb.Mean())
	}
	if math.Abs(s.EntryImb.Max()-3) > 1e-9 {
		t.Errorf("EntryImb max = %g, want 3", s.EntryImb.Max())
	}
	// Mean imb = mean of (p-1-r) = 1.5 as well.
	if math.Abs(s.Imb.Mean()-1.5) > 1e-9 {
		t.Errorf("Imb mean = %g, want 1.5", s.Imb.Mean())
	}
	// Span = Tmax − Tmin = 4.
	if math.Abs(s.SpanTotal-4) > 1e-9 {
		t.Errorf("SpanTotal = %g, want 4", s.SpanTotal)
	}
}

func TestExclusiveVsInclusive(t *testing.T) {
	prof := runProfiled(t, 1, func(c *mpi.Comm) error {
		c.SectionEnter("outer")
		c.Sleep(1)
		c.SectionEnter("inner")
		c.Sleep(2)
		c.SectionExit("inner")
		c.Sleep(0.5)
		c.SectionExit("outer")
		return nil
	})
	outer, inner := prof.Section("outer"), prof.Section("inner")
	if outer == nil || inner == nil {
		t.Fatal("sections missing")
	}
	if math.Abs(outer.TotalTime()-3.5) > 1e-9 {
		t.Errorf("outer inclusive = %g, want 3.5", outer.TotalTime())
	}
	if math.Abs(outer.TotalExclusive()-1.5) > 1e-9 {
		t.Errorf("outer exclusive = %g, want 1.5", outer.TotalExclusive())
	}
	if math.Abs(inner.TotalExclusive()-2) > 1e-9 {
		t.Errorf("inner exclusive = %g, want 2", inner.TotalExclusive())
	}
	// MPI_MAIN's exclusive time is zero here (everything inside outer).
	main := prof.Section(mpi.MainSection)
	if main.TotalExclusive() > 1e-9 {
		t.Errorf("MAIN exclusive = %g, want 0", main.TotalExclusive())
	}
}

func TestManyInstancesAggregate(t *testing.T) {
	const steps = 100
	prof := runProfiled(t, 3, func(c *mpi.Comm) error {
		for i := 0; i < steps; i++ {
			c.SectionEnter("step")
			c.Sleep(0.01)
			c.SectionExit("step")
		}
		return nil
	})
	s := prof.Section("step")
	if s.Instances != steps {
		t.Errorf("Instances = %d, want %d", s.Instances, steps)
	}
	if s.Dur.N() != steps*3 {
		t.Errorf("Dur.N = %d, want %d", s.Dur.N(), steps*3)
	}
	if math.Abs(s.TotalTime()-3*steps*0.01) > 1e-6 {
		t.Errorf("TotalTime = %g", s.TotalTime())
	}
}

func TestPerRankTotalsAndLoadImbalance(t *testing.T) {
	prof := runProfiled(t, 2, func(c *mpi.Comm) error {
		c.SectionEnter("uneven")
		c.Sleep(float64(1 + 2*c.Rank())) // rank0: 1s, rank1: 3s
		c.SectionExit("uneven")
		return nil
	})
	s := prof.Section("uneven")
	if math.Abs(s.PerRankTotal[0]-1) > 1e-9 || math.Abs(s.PerRankTotal[1]-3) > 1e-9 {
		t.Errorf("PerRankTotal = %v", s.PerRankTotal)
	}
	if math.Abs(s.LoadImbalance()-0.5) > 1e-9 { // max/mean - 1 = 3/2 - 1
		t.Errorf("LoadImbalance = %g, want 0.5", s.LoadImbalance())
	}
}

func TestSectionsSortedByTotal(t *testing.T) {
	prof := runProfiled(t, 1, func(c *mpi.Comm) error {
		c.SectionEnter("small")
		c.Sleep(0.1)
		c.SectionExit("small")
		c.SectionEnter("big")
		c.Sleep(5)
		c.SectionExit("big")
		return nil
	})
	if prof.Sections[0].Label != mpi.MainSection || prof.Sections[1].Label != "big" {
		t.Errorf("order = %v", prof.Labels())
	}
}

func TestShares(t *testing.T) {
	prof := runProfiled(t, 1, func(c *mpi.Comm) error {
		c.SectionEnter("a")
		c.Sleep(3)
		c.SectionExit("a")
		c.SectionEnter("b")
		c.Sleep(1)
		c.SectionExit("b")
		return nil
	})
	shares := prof.Shares()
	if math.Abs(shares["a"]-0.75) > 1e-9 || math.Abs(shares["b"]-0.25) > 1e-9 {
		t.Errorf("shares = %v", shares)
	}
	sum := 0.0
	for _, v := range shares {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %g", sum)
	}
}

func TestSubcommunicatorSectionsSeparate(t *testing.T) {
	prof := runProfiled(t, 4, func(c *mpi.Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		sub.SectionEnter("subphase")
		c.Sleep(1)
		sub.SectionExit("subphase")
		return nil
	})
	// Two communicators produce two distinct "subphase" stats with 2 ranks
	// each.
	count := 0
	for _, s := range prof.Sections {
		if s.Label == "subphase" {
			count++
			if s.Ranks != 2 || s.Instances != 1 {
				t.Errorf("subphase stats wrong: %+v", s)
			}
		}
	}
	if count != 2 {
		t.Errorf("subphase sections = %d, want 2", count)
	}
}

func TestMisnestedEventsDropped(t *testing.T) {
	// The runtime reports the misnesting as a run error (tested in mpi);
	// here we check the profiler stays consistent despite it.
	p := New()
	cfg := mpi.Config{
		Ranks: 1, Model: machine.Ideal(1, 1), Seed: 1,
		Tools: []mpi.Tool{p}, Timeout: 30 * time.Second,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		c.SectionEnter("a")
		c.SectionExit("zzz") // bogus: profiler must ignore, runtime force-pops "a"
		c.SectionEnter("b")
		c.SectionExit("b")
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "innermost") {
		t.Fatalf("expected the runtime's misnesting error, got %v", err)
	}
	prof, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	if s := prof.Section("zzz"); s != nil {
		t.Error("bogus exit created a section")
	}
	if s := prof.Section("b"); s == nil || s.Instances != 1 {
		t.Error("profiler state corrupted after misnesting")
	}
	_ = prof
}

func TestTableRendering(t *testing.T) {
	prof := runProfiled(t, 2, func(c *mpi.Comm) error {
		c.SectionEnter("phase-x")
		c.Sleep(1)
		c.SectionExit("phase-x")
		return nil
	})
	table := prof.Table()
	for _, want := range []string{"section", "phase-x", mpi.MainSection, "instances"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestCSVRoundtrip(t *testing.T) {
	prof := runProfiled(t, 2, func(c *mpi.Comm) error {
		c.SectionEnter("phase")
		c.Sleep(1.5)
		c.SectionExit("phase")
		return nil
	})
	var buf bytes.Buffer
	if err := prof.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(prof.Sections) {
		t.Fatalf("rows = %d, want %d", len(rows), len(prof.Sections))
	}
	var phase *CSVRow
	for i := range rows {
		if rows[i].Label == "phase" {
			phase = &rows[i]
		}
	}
	if phase == nil {
		t.Fatal("phase row missing")
	}
	if phase.Ranks != 2 || phase.Instances != 1 {
		t.Errorf("row = %+v", phase)
	}
	if math.Abs(phase.Total-3) > 1e-9 || math.Abs(phase.AvgPerProc-1.5) > 1e-9 {
		t.Errorf("row totals = %g/%g", phase.Total, phase.AvgPerProc)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("x,y\n1,2\n")); err == nil {
		t.Error("wrong header accepted")
	}
	bad := strings.Join(profileCSVHeader, ",") + "\n0,l,x,1,1,1,1,1,1,1,1,1\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad ranks field accepted")
	}
}

func TestPcontrolProfilerPhases(t *testing.T) {
	pc := NewPcontrol()
	cfg := mpi.Config{
		Ranks: 2, Model: machine.Ideal(2, 1), Seed: 1,
		Tools: []mpi.Tool{pc}, Timeout: 30 * time.Second,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		c.Pcontrol(1)
		c.Sleep(1)
		c.Pcontrol(0) // close phase 1
		c.Pcontrol(2)
		c.Sleep(2)
		c.Pcontrol(3) // implicit close of 2, open 3
		c.Sleep(0.5)
		c.Pcontrol(0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pc.Levels(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("levels = %v", got)
	}
	if math.Abs(pc.PhaseTotal(1)-2) > 1e-9 { // 1s × 2 ranks
		t.Errorf("phase 1 total = %g, want 2", pc.PhaseTotal(1))
	}
	if math.Abs(pc.PhaseTotal(2)-4) > 1e-9 {
		t.Errorf("phase 2 total = %g, want 4", pc.PhaseTotal(2))
	}
	if math.Abs(pc.PhaseTotal(3)-1) > 1e-9 {
		t.Errorf("phase 3 total = %g, want 1", pc.PhaseTotal(3))
	}
	if pc.PhaseTotal(9) != 0 {
		t.Error("unknown phase must be 0")
	}
}

func TestPcontrolDanglingPhaseIgnored(t *testing.T) {
	pc := NewPcontrol()
	cfg := mpi.Config{
		Ranks: 1, Model: machine.Ideal(1, 1), Seed: 1,
		Tools: []mpi.Tool{pc}, Timeout: 30 * time.Second,
	}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		c.Pcontrol(0) // exit with nothing open: no-op
		c.Pcontrol(5) // never closed
		c.Sleep(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pc.PhaseTotal(5) != 0 {
		t.Error("unclosed phase recorded time")
	}
}
