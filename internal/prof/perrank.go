package prof

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Per-rank profile export: one row per (section, rank), carrying the
// per-rank totals and per-instance distribution summary. cmd/secanalyze
// feeds these rows to the internal/balance analysis offline.

var perRankCSVHeader = []string{
	"comm", "label", "rank", "ranks",
	"total", "excl", "dur_mean", "dur_std", "instances",
}

// PerRankRow is one parsed row.
type PerRankRow struct {
	Comm      int64
	Label     string
	Rank      int
	Ranks     int
	Total     float64
	Excl      float64
	DurMean   float64
	DurStd    float64
	Instances int
}

// WritePerRankCSV emits every section × rank combination.
func (p *Profile) WritePerRankCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(perRankCSVHeader); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }
	for _, s := range p.Sections {
		for r := 0; r < s.Ranks; r++ {
			var mean, std float64
			n := 0
			if r < len(s.PerRank) {
				mean = s.PerRank[r].Mean()
				std = s.PerRank[r].Std()
				n = s.PerRank[r].N()
			}
			rec := []string{
				strconv.FormatInt(s.Comm, 10),
				s.Label,
				strconv.Itoa(r),
				strconv.Itoa(s.Ranks),
				g(s.PerRankTotal[r]),
				g(s.PerRankExcl[r]),
				g(mean),
				g(std),
				strconv.Itoa(n),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPerRankCSV parses a stream produced by WritePerRankCSV.
func ReadPerRankCSV(r io.Reader) ([]PerRankRow, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 || strings.Join(rows[0], ",") != strings.Join(perRankCSVHeader, ",") {
		return nil, fmt.Errorf("prof: not a per-rank profile CSV")
	}
	out := make([]PerRankRow, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(perRankCSVHeader) {
			return nil, fmt.Errorf("prof: per-rank row %d has %d fields", i+2, len(row))
		}
		var pr PerRankRow
		var err error
		fail := func(what string, e error) error {
			return fmt.Errorf("prof: per-rank row %d %s: %w", i+2, what, e)
		}
		if pr.Comm, err = strconv.ParseInt(row[0], 10, 64); err != nil {
			return nil, fail("comm", err)
		}
		pr.Label = row[1]
		if pr.Rank, err = strconv.Atoi(row[2]); err != nil {
			return nil, fail("rank", err)
		}
		if pr.Ranks, err = strconv.Atoi(row[3]); err != nil {
			return nil, fail("ranks", err)
		}
		floats := []*float64{&pr.Total, &pr.Excl, &pr.DurMean, &pr.DurStd}
		for j, dst := range floats {
			if *dst, err = strconv.ParseFloat(row[4+j], 64); err != nil {
				return nil, fail(perRankCSVHeader[4+j], err)
			}
		}
		if pr.Instances, err = strconv.Atoi(row[8]); err != nil {
			return nil, fail("instances", err)
		}
		out = append(out, pr)
	}
	return out, nil
}
