// Package prof implements the reference section-profiling tool of the
// paper: it intercepts MPI_Section events through the runtime's PMPI-like
// tool layer and derives the temporal metrics of the paper's Fig. 3 —
// Tmin (first entry), per-rank Tin/Tout, Tsection = Tout − Tmin, Tmax (last
// exit), entry imbalance imb_in = Tin − Tmin, and section imbalance
// imb = (Tmax − Tmin) − Tsection — aggregated over every instance of every
// section, plus inclusive/exclusive per-rank time totals for speedup and
// load-balance analysis.
package prof

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mpi"
	"repro/internal/stats"
)

// SectionStats aggregates every instance of one (communicator, label)
// section.
type SectionStats struct {
	Comm  int64
	Label string
	// Ranks is the communicator size.
	Ranks int
	// Instances counts completed section instances (entered and left by
	// every rank of the communicator).
	Instances int
	// Dur aggregates per-rank inclusive durations (Tout − Tin).
	Dur stats.Welford
	// Excl aggregates per-rank exclusive durations (inclusive minus time
	// spent in nested sections).
	Excl stats.Welford
	// EntryImb aggregates per-rank entry imbalance imb_in = Tin − Tmin.
	EntryImb stats.Welford
	// Imb aggregates the paper's per-rank section imbalance
	// imb = (Tmax − Tmin) − Tsection, with Tsection = Tout − Tmin.
	Imb stats.Welford
	// SpanTotal sums the distributed span Tmax − Tmin over instances.
	SpanTotal float64
	// PerRankTotal[r] is rank r's summed inclusive time in the section.
	PerRankTotal []float64
	// PerRankExcl[r] is rank r's summed exclusive time.
	PerRankExcl []float64
	// PerRank[r] aggregates rank r's per-instance inclusive durations,
	// the raw material of the load-balance analysis (internal/balance):
	// cross-rank variance of the means is persistent imbalance, the mean
	// of the per-rank variances is transient imbalance.
	PerRank []stats.Welford
	// Parent is the label of the section this one was first observed
	// nested inside ("" for top-level sections). Together with the perfect
	// nesting invariant it reconstructs the section hierarchy for
	// Profile.Tree.
	Parent string
}

// TotalTime reports the summed inclusive time across all ranks — the
// paper's "Tot. Section Time" (Fig. 6 uses it for HALO).
func (s *SectionStats) TotalTime() float64 { return stats.Sum(s.PerRankTotal) }

// TotalExclusive reports the summed exclusive time across all ranks.
func (s *SectionStats) TotalExclusive() float64 { return stats.Sum(s.PerRankExcl) }

// AvgPerProcess reports TotalTime divided by the communicator size —
// Fig. 5(c)'s "average time per process".
func (s *SectionStats) AvgPerProcess() float64 {
	if s.Ranks == 0 {
		return 0
	}
	return s.TotalTime() / float64(s.Ranks)
}

// LoadImbalance reports max/mean − 1 over the per-rank inclusive totals.
func (s *SectionStats) LoadImbalance() float64 {
	v, err := stats.Imbalance(s.PerRankTotal)
	if err != nil {
		return 0
	}
	return v
}

// Profile is the result of one profiled run.
type Profile struct {
	// WallTime is the virtual makespan of the run.
	WallTime float64
	// RankTimes are the final per-rank clocks.
	RankTimes []float64
	// Sections, sorted by decreasing total inclusive time.
	Sections []*SectionStats
}

// Section returns the stats for the first section with the given label
// (across communicators), or nil.
func (p *Profile) Section(label string) *SectionStats {
	for _, s := range p.Sections {
		if s.Label == label {
			return s
		}
	}
	return nil
}

// Labels lists the section labels in the profile's order.
func (p *Profile) Labels() []string {
	out := make([]string, len(p.Sections))
	for i, s := range p.Sections {
		out[i] = s.Label
	}
	return out
}

// Shares reports each section's fraction of the total exclusive time —
// the paper's Fig. 5(a) percentage breakdown. MPI_MAIN's exclusive
// remainder participates like any other section.
func (p *Profile) Shares() map[string]float64 {
	total := 0.0
	for _, s := range p.Sections {
		total += s.TotalExclusive()
	}
	out := make(map[string]float64, len(p.Sections))
	if total == 0 {
		return out
	}
	for _, s := range p.Sections {
		out[s.Label] = s.TotalExclusive() / total
	}
	return out
}

// --- the tool ---------------------------------------------------------------

type secKey struct {
	comm  int64
	label string
}

type instKey struct {
	comm  int64
	label string
	index int
}

type rankKey struct {
	comm int64
	rank int
}

// openFrame is a live section on one rank.
type openFrame struct {
	label     string
	parent    string
	enterT    float64
	childTime float64
	index     int
}

// instAcc gathers one instance's per-rank entries and exits until every
// rank of the communicator has contributed, then folds into the aggregate.
type instAcc struct {
	enters []float64
	ranks  []int
	leaves []float64
	lrank  []int
}

// Profiler is the mpi.Tool. Attach via mpi.Config.Tools, run, then call
// Result.
type Profiler struct {
	mpi.BaseTool
	mu       sync.Mutex
	sections map[secKey]*SectionStats
	stacks   map[rankKey][]openFrame
	nextIdx  map[rankKey]map[string]int
	inst     map[instKey]*instAcc
	profile  *Profile
	finished bool
}

// New returns an empty Profiler.
func New() *Profiler {
	return &Profiler{
		sections: map[secKey]*SectionStats{},
		stacks:   map[rankKey][]openFrame{},
		nextIdx:  map[rankKey]map[string]int{},
		inst:     map[instKey]*instAcc{},
	}
}

// Init implements mpi.Tool.
func (p *Profiler) Init(*mpi.WorldInfo) {}

// SectionEnter implements mpi.Tool.
func (p *Profiler) SectionEnter(c *mpi.Comm, label string, t float64, _ *mpi.ToolData) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rk := rankKey{comm: c.ID(), rank: c.Rank()}
	idxs := p.nextIdx[rk]
	if idxs == nil {
		idxs = map[string]int{}
		p.nextIdx[rk] = idxs
	}
	idx := idxs[label]
	idxs[label] = idx + 1
	parent := ""
	if st := p.stacks[rk]; len(st) > 0 {
		parent = st[len(st)-1].label
	}
	p.stacks[rk] = append(p.stacks[rk], openFrame{label: label, parent: parent, enterT: t, index: idx})

	ik := instKey{comm: c.ID(), label: label, index: idx}
	acc := p.inst[ik]
	if acc == nil {
		acc = &instAcc{}
		p.inst[ik] = acc
	}
	acc.enters = append(acc.enters, t)
	acc.ranks = append(acc.ranks, c.Rank())
}

// SectionLeave implements mpi.Tool.
func (p *Profiler) SectionLeave(c *mpi.Comm, label string, t float64, _ *mpi.ToolData) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rk := rankKey{comm: c.ID(), rank: c.Rank()}
	st := p.stacks[rk]
	if len(st) == 0 || st[len(st)-1].label != label {
		// Misnested usage: the runtime reports it; the profiler just
		// drops the sample rather than corrupting its state.
		return
	}
	frame := st[len(st)-1]
	p.stacks[rk] = st[:len(st)-1]
	dur := t - frame.enterT
	excl := dur - frame.childTime
	if n := len(p.stacks[rk]); n > 0 {
		p.stacks[rk][n-1].childTime += dur
	}

	sk := secKey{comm: c.ID(), label: label}
	s := p.sections[sk]
	if s == nil {
		s = &SectionStats{
			Comm:         c.ID(),
			Label:        label,
			Ranks:        c.Size(),
			PerRankTotal: make([]float64, c.Size()),
			PerRankExcl:  make([]float64, c.Size()),
			PerRank:      make([]stats.Welford, c.Size()),
			Parent:       frame.parent,
		}
		p.sections[sk] = s
	}
	s.Dur.Add(dur)
	s.Excl.Add(excl)
	s.PerRankTotal[c.Rank()] += dur
	s.PerRankExcl[c.Rank()] += excl
	s.PerRank[c.Rank()].Add(dur)

	ik := instKey{comm: c.ID(), label: label, index: frame.index}
	acc := p.inst[ik]
	if acc == nil {
		return
	}
	acc.leaves = append(acc.leaves, t)
	acc.lrank = append(acc.lrank, c.Rank())
	if len(acc.leaves) == c.Size() {
		p.foldInstance(s, acc)
		delete(p.inst, ik)
	}
}

// foldInstance computes the Fig. 3 metrics for one completed instance.
func (p *Profiler) foldInstance(s *SectionStats, acc *instAcc) {
	tmin, _ := stats.Min(acc.enters)
	tmax, _ := stats.Max(acc.leaves)
	s.SpanTotal += tmax - tmin
	s.Instances++
	for _, tin := range acc.enters {
		s.EntryImb.Add(tin - tmin)
	}
	for _, tout := range acc.leaves {
		tsection := tout - tmin
		s.Imb.Add((tmax - tmin) - tsection)
	}
}

// Finalize implements mpi.Tool: it freezes the profile.
func (p *Profiler) Finalize(r *mpi.Report) {
	p.mu.Lock()
	defer p.mu.Unlock()
	prof := &Profile{WallTime: r.WallTime}
	prof.RankTimes = append(prof.RankTimes, r.RankTimes...)
	for _, s := range p.sections {
		prof.Sections = append(prof.Sections, s)
	}
	sort.Slice(prof.Sections, func(i, j int) bool {
		ti, tj := prof.Sections[i].TotalTime(), prof.Sections[j].TotalTime()
		if ti != tj {
			return ti > tj
		}
		return prof.Sections[i].Label < prof.Sections[j].Label
	})
	p.profile = prof
	p.finished = true
}

// Result returns the profile; it errs when the run has not finished.
func (p *Profiler) Result() (*Profile, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.finished {
		return nil, fmt.Errorf("prof: run not finalized")
	}
	return p.profile, nil
}

var _ mpi.Tool = (*Profiler)(nil)
