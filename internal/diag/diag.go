// Package diag wires Go's runtime profilers into the benchmark binaries so
// the hot paths of the simulation core stay inspectable: every command
// exposes -cpuprofile/-memprofile flags backed by StartProfiles, and
// cmd/secmon additionally serves the net/http/pprof endpoints.
package diag

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts a CPU profile at cpuPath and arranges for a heap
// profile at memPath; either may be empty to skip that profile. The
// returned stop function ends the CPU profile and writes the heap profile,
// and must be called exactly once (on the success path — a profile cut
// short by a fatal error is not written).
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("diag: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("diag: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("diag: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state live set
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("diag: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
