// Package verify is the runtime twin of the seclint static suite
// (internal/analysis): a MUST-style correctness tool that attaches through
// the standard mpi.Tool interface and checks, on the live execution, the
// contracts the paper's section semantics rest on — perfect nesting per
// communicator on every rank, matched section enters across ranks, and
// cross-rank collective-order consistency.
//
// The tool is deliberately pay-for-what-you-check: the point-to-point hot
// path (MessageSent/MessageRecv) keeps the embedded no-op hooks, so an
// attached verifier adds zero allocations per message — sections and
// collectives, which are orders of magnitude rarer, carry the bookkeeping.
//
// Violations surface four ways: the structured Violations list, per-class
// counters (exported as section_verify_violations_total Prometheus
// counters), trace events of kind "verify" on an attached trace buffer,
// and a summary error for CLI exit codes.
package verify

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mpi"
	"repro/internal/trace"
)

// Violation classes.
const (
	// ClassUnderflow: a SectionExit with no section open on this rank.
	ClassUnderflow = "section-underflow"
	// ClassMismatch: a SectionExit whose label is not the innermost open
	// section — broken nesting.
	ClassMismatch = "section-mismatch"
	// ClassUnclosed: a section still open when the run finalized.
	ClassUnclosed = "section-unclosed"
	// ClassEnterDivergence: ranks of one communicator entered a label a
	// different number of times.
	ClassEnterDivergence = "section-enter-divergence"
	// ClassCollectiveOrder: ranks of one communicator issued different
	// collective sequences.
	ClassCollectiveOrder = "collective-order-divergence"
)

// Violation is one detected contract breach.
type Violation struct {
	T      float64 `json:"t"`
	Rank   int     `json:"rank"` // world rank
	Comm   int64   `json:"comm"`
	Class  string  `json:"class"`
	Detail string  `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.6g rank=%d comm=%d %s: %s", v.T, v.Rank, v.Comm, v.Class, v.Detail)
}

// rankState is the bookkeeping of one world rank. Each instance is touched
// only by its own rank goroutine (tool hooks run inline on the rank), so no
// lock guards it.
type rankState struct {
	// stacks holds the open-section labels per communicator.
	stacks map[int64][]string
	// enters counts SectionEnter per communicator and label.
	enters map[int64]map[string]int
	// commRank remembers this world rank's rank within each communicator.
	commRank map[int64]int
	_        [64]byte // pad out false sharing between rank goroutines
}

// collSeq is the canonical collective sequence of one communicator:
// whichever rank reaches position i first defines entry i, later ranks
// must agree (the same first-writer scheme the runtime's CheckSections
// uses for sections).
type collSeq struct {
	canonical []string
	pos       map[int]int // per world rank
	flagged   map[int]bool
}

// Tool is the runtime verifier. Attach with mpi.Config.Tools (or the
// -verify flag of the benchmark drivers) and inspect after the run.
type Tool struct {
	mpi.BaseTool

	ranks []rankState

	mu         sync.Mutex
	colls      map[int64]*collSeq
	violations []Violation
	counts     map[string]uint64
	sink       *trace.Buffer
}

// New returns an unattached verifier.
func New() *Tool {
	return &Tool{counts: map[string]uint64{}, colls: map[int64]*collSeq{}}
}

// SetTraceSink makes the verifier mirror every violation into b as an
// event of kind "verify" (class and detail in the label). Call before the
// run starts.
func (v *Tool) SetTraceSink(b *trace.Buffer) { v.sink = b }

// Init implements mpi.Tool.
func (v *Tool) Init(w *mpi.WorldInfo) {
	v.ranks = make([]rankState, w.Size)
	for i := range v.ranks {
		v.ranks[i] = rankState{
			stacks:   map[int64][]string{},
			enters:   map[int64]map[string]int{},
			commRank: map[int64]int{},
		}
	}
}

// record registers one violation (cold path).
func (v *Tool) record(viol Violation) {
	v.mu.Lock()
	v.violations = append(v.violations, viol)
	v.counts[viol.Class]++
	v.mu.Unlock()
	if v.sink != nil {
		v.sink.Add(trace.Event{
			T:     viol.T,
			Rank:  viol.Rank,
			Kind:  trace.KindVerify,
			Comm:  viol.Comm,
			Label: viol.Class + ": " + viol.Detail,
		})
	}
}

// SectionEnter implements mpi.Tool: push the label and count the enter.
func (v *Tool) SectionEnter(c *mpi.Comm, label string, t float64, _ *mpi.ToolData) {
	wr := c.WorldRank()
	st := &v.ranks[wr]
	id := c.ID()
	st.stacks[id] = append(st.stacks[id], label)
	m := st.enters[id]
	if m == nil {
		m = map[string]int{}
		st.enters[id] = m
	}
	m[label]++
	st.commRank[id] = c.Rank()
}

// SectionLeave implements mpi.Tool: the label must close the innermost
// open section of this communicator.
func (v *Tool) SectionLeave(c *mpi.Comm, label string, t float64, _ *mpi.ToolData) {
	wr := c.WorldRank()
	st := &v.ranks[wr]
	id := c.ID()
	stack := st.stacks[id]
	if len(stack) == 0 {
		v.record(Violation{T: t, Rank: wr, Comm: id, Class: ClassUnderflow,
			Detail: fmt.Sprintf("SectionExit(%q) with no section open", label)})
		return
	}
	top := stack[len(stack)-1]
	if top != label {
		v.record(Violation{T: t, Rank: wr, Comm: id, Class: ClassMismatch,
			Detail: fmt.Sprintf("SectionExit(%q) but %q is innermost", label, top)})
	}
	// Force-pop, mirroring the runtime, so one mismatch does not cascade.
	st.stacks[id] = stack[:len(stack)-1]
}

// CollectiveBegin implements mpi.Tool: every rank of a communicator must
// issue the same collective sequence. First writer defines the canonical
// order; divergence is flagged once per rank per communicator.
func (v *Tool) CollectiveBegin(c *mpi.Comm, name string, t float64) {
	wr := c.WorldRank()
	id := c.ID()
	v.mu.Lock()
	seq := v.colls[id]
	if seq == nil {
		seq = &collSeq{pos: map[int]int{}, flagged: map[int]bool{}}
		v.colls[id] = seq
	}
	pos := seq.pos[wr]
	seq.pos[wr] = pos + 1
	var viol *Violation
	if pos == len(seq.canonical) {
		seq.canonical = append(seq.canonical, name)
	} else if pos < len(seq.canonical) && seq.canonical[pos] != name && !seq.flagged[wr] {
		seq.flagged[wr] = true
		viol = &Violation{T: t, Rank: wr, Comm: id, Class: ClassCollectiveOrder,
			Detail: fmt.Sprintf("rank called %s at collective step %d, other ranks called %s", name, pos, seq.canonical[pos])}
	}
	v.mu.Unlock()
	if viol != nil {
		v.record(*viol)
	}
}

// Finalize implements mpi.Tool: cross-rank checks that need the complete
// run — unclosed sections, per-label enter counts, and collective sequence
// lengths. Ranks the runtime reports dead are exempt (a killed rank
// legitimately leaves its sections open).
func (v *Tool) Finalize(r *mpi.Report) {
	dead := map[int]bool{}
	wallT := 0.0
	if r != nil {
		for _, d := range r.Dead {
			dead[d] = true
		}
		wallT = r.WallTime
	}

	// Unclosed sections per live rank, innermost last.
	for wr := range v.ranks {
		if dead[wr] {
			continue
		}
		st := &v.ranks[wr]
		ids := sortedCommIDs(st.stacks)
		for _, id := range ids {
			for _, label := range st.stacks[id] {
				v.record(Violation{T: wallT, Rank: wr, Comm: id, Class: ClassUnclosed,
					Detail: fmt.Sprintf("section %q still open at finalize", label)})
			}
		}
	}

	// Per-communicator, per-label enter counts must agree across the live
	// ranks that used the communicator at all.
	type commLabel struct {
		id    int64
		label string
	}
	counts := map[commLabel]map[int]int{} // -> world rank -> count
	for wr := range v.ranks {
		if dead[wr] {
			continue
		}
		for id, m := range v.ranks[wr].enters {
			for label, n := range m {
				k := commLabel{id, label}
				if counts[k] == nil {
					counts[k] = map[int]int{}
				}
				counts[k][wr] = n
			}
		}
	}
	participants := map[int64]map[int]bool{} // comm -> live ranks seen on it
	for wr := range v.ranks {
		if dead[wr] {
			continue
		}
		for id := range v.ranks[wr].enters {
			if participants[id] == nil {
				participants[id] = map[int]bool{}
			}
			participants[id][wr] = true
		}
	}
	keys := make([]commLabel, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].id != keys[j].id {
			return keys[i].id < keys[j].id
		}
		return keys[i].label < keys[j].label
	})
	for _, k := range keys {
		perRank := counts[k]
		// A participant of the communicator that never entered this label
		// counts as zero. Scan in rank order so the reported extremes are
		// deterministic.
		ranks := make([]int, 0, len(participants[k.id]))
		for wr := range participants[k.id] {
			ranks = append(ranks, wr)
		}
		sort.Ints(ranks)
		minN, maxN := -1, -1
		minRank, maxRank := -1, -1
		for _, wr := range ranks {
			n := perRank[wr]
			if minN == -1 || n < minN {
				minN, minRank = n, wr
			}
			if maxN == -1 || n > maxN {
				maxN, maxRank = n, wr
			}
		}
		if minN != maxN {
			v.record(Violation{T: wallT, Rank: minRank, Comm: k.id, Class: ClassEnterDivergence,
				Detail: fmt.Sprintf("section %q entered %d times on rank %d but %d times on rank %d", k.label, minN, minRank, maxN, maxRank)})
		}
	}

	// Collective sequence lengths: a rank that stopped issuing collectives
	// early diverged even if every call it made matched the canonical
	// order.
	v.mu.Lock()
	collIDs := make([]int64, 0, len(v.colls))
	for id := range v.colls {
		collIDs = append(collIDs, id)
	}
	sort.Slice(collIDs, func(i, j int) bool { return collIDs[i] < collIDs[j] })
	var lags []Violation
	for _, id := range collIDs {
		seq := v.colls[id]
		ranks := make([]int, 0, len(seq.pos))
		for wr := range seq.pos {
			ranks = append(ranks, wr)
		}
		sort.Ints(ranks)
		for _, wr := range ranks {
			if dead[wr] || seq.flagged[wr] {
				continue
			}
			if n := seq.pos[wr]; n < len(seq.canonical) {
				lags = append(lags, Violation{T: wallT, Rank: wr, Comm: id, Class: ClassCollectiveOrder,
					Detail: fmt.Sprintf("rank issued %d collectives, other ranks issued %d (next missing: %s)", n, len(seq.canonical), seq.canonical[n])})
			}
		}
	}
	v.mu.Unlock()
	for _, l := range lags {
		v.record(l)
	}
}

// sortedCommIDs returns the map's keys ascending, for deterministic
// violation order.
func sortedCommIDs(m map[int64][]string) []int64 {
	out := make([]int64, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Violations returns the recorded violations in deterministic order:
// time, then world rank, then communicator, class, detail.
func (v *Tool) Violations() []Violation {
	v.mu.Lock()
	out := make([]Violation, len(v.violations))
	copy(out, v.violations)
	v.mu.Unlock()
	SortViolations(out)
	return out
}

// SortViolations sorts violations into the package's canonical reporting
// order (total over distinct violations, so reports are stable across
// scheduling and worker counts).
func SortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		a, b := &vs[i], &vs[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Comm != b.Comm {
			return a.Comm < b.Comm
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Detail < b.Detail
	})
}

// Counts returns a copy of the per-class violation counters.
func (v *Tool) Counts() map[string]uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]uint64, len(v.counts))
	for k, n := range v.counts {
		out[k] = n
	}
	return out
}

// OK reports whether no violation has been recorded.
func (v *Tool) OK() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.violations) == 0
}

// Err returns nil when the run verified clean, and otherwise an error
// naming the first violation and the total count — the benchmark drivers'
// nonzero-exit signal.
func (v *Tool) Err() error {
	vs := v.Violations()
	if len(vs) == 0 {
		return nil
	}
	return fmt.Errorf("verify: %d violation(s), first: %s", len(vs), vs[0])
}

var _ mpi.Tool = (*Tool)(nil)
