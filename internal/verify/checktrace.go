package verify

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// CheckTrace replays a recorded event stream offline and returns the
// violations a live verifier would have reported: per-rank nesting
// (underflow, mismatch, unclosed), per-label enter counts across ranks,
// and collective-order consistency. It is how cmd/secanalyze -verify
// audits a trace CSV after the fact; only section and collective events
// are consulted, so traces recorded without message events verify fine.
//
// Ranks that die in the trace (a KindFault kill event) are exempt from the
// finalize-time checks from their death onward, matching the live tool's
// treatment of mpi.Report.Dead.
func CheckTrace(events []trace.Event) []Violation {
	sorted := append([]trace.Event(nil), events...)
	trace.SortEvents(sorted)

	type rankComm struct {
		rank int
		comm int64
	}
	stacks := map[rankComm][]string{}
	enters := map[rankComm]map[string]int{}
	colls := map[int64]*collSeq{}
	dead := map[int]bool{}
	var out []Violation
	var wallT float64

	for _, e := range sorted {
		if e.T > wallT {
			wallT = e.T
		}
		switch e.Kind {
		case trace.KindFault:
			// Only the kill fault removes a rank; drops/delays/truncations
			// leave it running.
			if e.Label == "kill" {
				dead[e.Rank] = true
			}
		case trace.KindSectionEnter:
			k := rankComm{e.Rank, e.Comm}
			stacks[k] = append(stacks[k], e.Label)
			m := enters[k]
			if m == nil {
				m = map[string]int{}
				enters[k] = m
			}
			m[e.Label]++
		case trace.KindSectionLeave:
			k := rankComm{e.Rank, e.Comm}
			st := stacks[k]
			if len(st) == 0 {
				out = append(out, Violation{T: e.T, Rank: e.Rank, Comm: e.Comm, Class: ClassUnderflow,
					Detail: fmt.Sprintf("SectionExit(%q) with no section open", e.Label)})
				continue
			}
			if top := st[len(st)-1]; top != e.Label {
				out = append(out, Violation{T: e.T, Rank: e.Rank, Comm: e.Comm, Class: ClassMismatch,
					Detail: fmt.Sprintf("SectionExit(%q) but %q is innermost", e.Label, top)})
			}
			stacks[k] = st[:len(st)-1]
		case trace.KindCollective:
			seq := colls[e.Comm]
			if seq == nil {
				seq = &collSeq{pos: map[int]int{}, flagged: map[int]bool{}}
				colls[e.Comm] = seq
			}
			pos := seq.pos[e.Rank]
			seq.pos[e.Rank] = pos + 1
			if pos == len(seq.canonical) {
				seq.canonical = append(seq.canonical, e.Label)
			} else if pos < len(seq.canonical) && seq.canonical[pos] != e.Label && !seq.flagged[e.Rank] {
				seq.flagged[e.Rank] = true
				out = append(out, Violation{T: e.T, Rank: e.Rank, Comm: e.Comm, Class: ClassCollectiveOrder,
					Detail: fmt.Sprintf("rank called %s at collective step %d, other ranks called %s", e.Label, pos, seq.canonical[pos])})
			}
		}
	}

	// Finalize-equivalent checks over the replayed state.
	stackKeys := make([]rankComm, 0, len(stacks))
	for k := range stacks {
		stackKeys = append(stackKeys, k)
	}
	sort.Slice(stackKeys, func(i, j int) bool {
		if stackKeys[i].rank != stackKeys[j].rank {
			return stackKeys[i].rank < stackKeys[j].rank
		}
		return stackKeys[i].comm < stackKeys[j].comm
	})
	for _, k := range stackKeys {
		if dead[k.rank] {
			continue
		}
		for _, label := range stacks[k] {
			out = append(out, Violation{T: wallT, Rank: k.rank, Comm: k.comm, Class: ClassUnclosed,
				Detail: fmt.Sprintf("section %q still open at finalize", label)})
		}
	}

	// Enter counts per communicator and label across live participants.
	type commLabel struct {
		comm  int64
		label string
	}
	counts := map[commLabel]map[int]int{}
	participants := map[int64]map[int]bool{}
	for k, m := range enters {
		if dead[k.rank] {
			continue
		}
		if participants[k.comm] == nil {
			participants[k.comm] = map[int]bool{}
		}
		participants[k.comm][k.rank] = true
		for label, n := range m {
			ck := commLabel{k.comm, label}
			if counts[ck] == nil {
				counts[ck] = map[int]int{}
			}
			counts[ck][k.rank] = n
		}
	}
	countKeys := make([]commLabel, 0, len(counts))
	for k := range counts {
		countKeys = append(countKeys, k)
	}
	sort.Slice(countKeys, func(i, j int) bool {
		if countKeys[i].comm != countKeys[j].comm {
			return countKeys[i].comm < countKeys[j].comm
		}
		return countKeys[i].label < countKeys[j].label
	})
	for _, k := range countKeys {
		perRank := counts[k]
		ranks := make([]int, 0, len(participants[k.comm]))
		for wr := range participants[k.comm] {
			ranks = append(ranks, wr)
		}
		sort.Ints(ranks)
		minN, maxN, minRank, maxRank := -1, -1, -1, -1
		for _, wr := range ranks {
			n := perRank[wr]
			if minN == -1 || n < minN {
				minN, minRank = n, wr
			}
			if maxN == -1 || n > maxN {
				maxN, maxRank = n, wr
			}
		}
		if minN != maxN {
			out = append(out, Violation{T: wallT, Rank: minRank, Comm: k.comm, Class: ClassEnterDivergence,
				Detail: fmt.Sprintf("section %q entered %d times on rank %d but %d times on rank %d", k.label, minN, minRank, maxN, maxRank)})
		}
	}

	// Collective sequence lengths.
	collIDs := make([]int64, 0, len(colls))
	for id := range colls {
		collIDs = append(collIDs, id)
	}
	sort.Slice(collIDs, func(i, j int) bool { return collIDs[i] < collIDs[j] })
	for _, id := range collIDs {
		seq := colls[id]
		ranks := make([]int, 0, len(seq.pos))
		for wr := range seq.pos {
			ranks = append(ranks, wr)
		}
		sort.Ints(ranks)
		for _, wr := range ranks {
			if dead[wr] || seq.flagged[wr] {
				continue
			}
			if n := seq.pos[wr]; n < len(seq.canonical) {
				out = append(out, Violation{T: wallT, Rank: wr, Comm: id, Class: ClassCollectiveOrder,
					Detail: fmt.Sprintf("rank issued %d collectives, other ranks issued %d (next missing: %s)", n, len(seq.canonical), seq.canonical[n])})
			}
		}
	}

	SortViolations(out)
	return out
}
