//go:build race

package verify

// raceEnabled reports whether the race detector instruments this build;
// its shadow allocations make alloc-count assertions meaningless.
const raceEnabled = true
