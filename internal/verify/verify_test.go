package verify

import (
	"fmt"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/trace"
)

func testCfg(ranks int, tools ...mpi.Tool) mpi.Config {
	return mpi.Config{
		Ranks:   ranks,
		Model:   machine.Ideal(ranks, 1),
		Seed:    1,
		Tools:   tools,
		Timeout: time.Minute,
	}
}

// TestCleanRunVerifies: a well-formed program produces zero violations.
func TestCleanRunVerifies(t *testing.T) {
	v := New()
	_, err := mpi.Run(testCfg(4, v), func(c *mpi.Comm) error {
		for i := 0; i < 3; i++ {
			c.SectionEnter("step")
			c.SectionEnter("halo")
			c.SectionExit("halo")
			c.SectionExit("step")
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK() {
		t.Fatalf("clean run reported violations: %v", v.Violations())
	}
	if err := v.Err(); err != nil {
		t.Errorf("Err() = %v, want nil", err)
	}
}

// TestUnbalancedSectionGroundTruth injects a deliberately unbalanced
// section on rank 1 and asserts the exact violation report. The missing
// exit cascades exactly as the live stack model predicts: the exit of
// "work" closes over the still-open "lopsided", the implicit MPI_MAIN exit
// then closes over "work", MPI_MAIN itself is left open at finalize, and
// the enter counts for "lopsided" diverge between the ranks.
func TestUnbalancedSectionGroundTruth(t *testing.T) {
	v := New()
	buf := trace.NewBuffer(0)
	v.SetTraceSink(buf)
	rep, err := mpi.Run(testCfg(2, v), func(c *mpi.Comm) error {
		c.SectionEnter("work")
		if c.Rank() == 1 {
			c.SectionEnter("lopsided") // never exited, and never entered on rank 0
		}
		c.SectionExit("work")
		return nil
	})
	// The runtime's own bookkeeping reports the broken nesting as a run
	// error; the verifier's report is the structured version of the same
	// ground truth.
	if err == nil {
		t.Fatal("runtime did not surface the nesting violation")
	}
	if rep == nil {
		t.Fatal("no report from the run")
	}

	vs := v.Violations()
	if len(vs) != 4 {
		t.Fatalf("got %d violations, want 4: %v", len(vs), vs)
	}
	wantDetails := map[string]string{
		ClassEnterDivergence: `section "lopsided" entered 0 times on rank 0 but 1 times on rank 1`,
		ClassUnclosed:        `section "MPI_MAIN" still open at finalize`,
	}
	wantMismatches := map[string]bool{
		`SectionExit("work") but "lopsided" is innermost`: false,
		`SectionExit("MPI_MAIN") but "work" is innermost`: false,
	}
	for _, viol := range vs {
		switch viol.Class {
		case ClassMismatch:
			if viol.Rank != 1 {
				t.Errorf("mismatch on rank %d, want 1: %+v", viol.Rank, viol)
			}
			if _, ok := wantMismatches[viol.Detail]; !ok {
				t.Errorf("unexpected mismatch detail %q", viol.Detail)
			}
			wantMismatches[viol.Detail] = true
		case ClassUnclosed:
			if viol.Rank != 1 || viol.Detail != wantDetails[ClassUnclosed] || viol.T != rep.WallTime {
				t.Errorf("unclosed = %+v, want rank-1 %q at wall time %g", viol, wantDetails[ClassUnclosed], rep.WallTime)
			}
		case ClassEnterDivergence:
			if viol.Detail != wantDetails[ClassEnterDivergence] {
				t.Errorf("enter divergence detail = %q, want %q", viol.Detail, wantDetails[ClassEnterDivergence])
			}
		default:
			t.Errorf("unexpected violation class %q: %+v", viol.Class, viol)
		}
	}
	for detail, seen := range wantMismatches {
		if !seen {
			t.Errorf("missing mismatch violation %q", detail)
		}
	}

	// Counters match the classes.
	counts := v.Counts()
	if counts[ClassMismatch] != 2 || counts[ClassUnclosed] != 1 || counts[ClassEnterDivergence] != 1 {
		t.Errorf("counts = %v, want 2 mismatch / 1 unclosed / 1 enter-divergence", counts)
	}

	// Every violation is mirrored as a trace event of kind "verify".
	var verifyEvents []trace.Event
	for _, e := range buf.Events() {
		if e.Kind == trace.KindVerify {
			verifyEvents = append(verifyEvents, e)
		}
	}
	if len(verifyEvents) != 4 {
		t.Fatalf("got %d verify trace events, want 4: %v", len(verifyEvents), verifyEvents)
	}
	found := false
	for _, e := range verifyEvents {
		if e.Label == ClassMismatch+`: SectionExit("work") but "lopsided" is innermost` && e.Rank == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no verify trace event for the work/lopsided mismatch: %v", verifyEvents)
	}

	// Err() reflects the failure for CLI exit codes.
	if err := v.Err(); err == nil || !strings.Contains(err.Error(), "4 violation(s)") {
		t.Errorf("Err() = %v, want 4-violation summary", err)
	}
}

// TestSectionUnderflow: exiting with only the implicit root section open
// first mismatches against MPI_MAIN, and the forced pop then makes the
// runtime's own MPI_MAIN exit underflow.
func TestSectionUnderflow(t *testing.T) {
	v := New()
	_, err := mpi.Run(testCfg(1, v), func(c *mpi.Comm) error {
		c.SectionExit("ghost")
		return nil
	})
	if err == nil {
		t.Fatal("runtime did not surface the underflow")
	}
	vs := v.Violations()
	var gotMismatch, gotUnderflow bool
	for _, viol := range vs {
		switch viol.Class {
		case ClassMismatch:
			if strings.Contains(viol.Detail, `"MPI_MAIN" is innermost`) {
				gotMismatch = true
			}
		case ClassUnderflow:
			if viol.Detail == `SectionExit("MPI_MAIN") with no section open` {
				gotUnderflow = true
			}
		}
	}
	if !gotMismatch || !gotUnderflow {
		t.Errorf("violations = %v, want a MPI_MAIN mismatch and an MPI_MAIN underflow", vs)
	}
}

// TestCollectiveOrderDivergence: rank 0 calls Allreduce while rank 1 runs
// the wire-compatible manual Reduce+Bcast pair. The payloads match, so the
// run completes — but the collective *sequences* differ ("Allreduce,
// Reduce, Bcast" vs "Reduce, Bcast"), which is exactly the divergence the
// verifier exists to catch.
func TestCollectiveOrderDivergence(t *testing.T) {
	v := New()
	_, err := mpi.Run(testCfg(2, v), func(c *mpi.Comm) error {
		xs := []float64{float64(c.Rank() + 1)}
		if c.Rank() == 0 {
			_, err := c.Allreduce(xs, mpi.OpSum)
			return err
		}
		if _, err := c.Reduce(0, xs, mpi.OpSum); err != nil {
			return err
		}
		b, err := c.Bcast(0, nil)
		if err != nil {
			return err
		}
		mpi.Release(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, viol := range v.Violations() {
		if viol.Class == ClassCollectiveOrder {
			found = true
		}
	}
	if !found {
		t.Errorf("no %s violation in %v", ClassCollectiveOrder, v.Violations())
	}
}

// TestDeadRankExempt: a rank killed mid-section (panic skips even the
// implicit MPI_MAIN exit) must not produce unclosed or divergence
// violations — its sections legitimately never close.
func TestDeadRankExempt(t *testing.T) {
	v := New()
	_, err := mpi.Run(testCfg(2, v), func(c *mpi.Comm) error {
		c.SectionEnter("phase")
		if c.Rank() == 1 {
			panic("injected rank death")
		}
		c.SectionExit("phase")
		return nil
	})
	if err == nil {
		t.Fatal("expected the injected rank death to surface")
	}
	if vs := v.Violations(); len(vs) != 0 {
		t.Errorf("dead-rank run produced violations: %v", vs)
	}
}

// TestViolationOrderDeterministic: the report order is a pure function of
// the violations, not of goroutine scheduling.
func TestViolationOrderDeterministic(t *testing.T) {
	run := func() []Violation {
		v := New()
		// Each rank opens a rank-private section and never closes it; the
		// runtime also objects, which is fine — only the verifier's report
		// order is under test.
		mpi.Run(testCfg(4, v), func(c *mpi.Comm) error { //nolint:errcheck
			c.SectionEnter(fmt.Sprintf("only-%d", c.Rank()))
			return nil
		})
		return v.Violations()
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("expected violations from per-rank unclosed sections")
	}
	for i := 0; i < 10; i++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("run %d: %d violations vs %d", i, len(got), len(first))
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("run %d: violation %d = %+v, want %+v", i, j, got[j], first[j])
			}
		}
	}
}

// TestVerifiedHotPathAllocs pins the EXPERIMENTS.md claim: attaching the
// verifier adds zero allocations per message on the p2p fast path (its
// message hooks are the embedded no-ops; only sections and collectives
// carry bookkeeping).
func TestVerifiedHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates shadow memory; alloc counts are meaningless")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const warmup, runs = 64, 100
	payload := make([]byte, 1024)
	v := New()
	pingPong := func(c *mpi.Comm) error {
		peer := 1 - c.Rank()
		if c.Rank() == 0 {
			if err := c.Send(peer, 0, payload); err != nil {
				return err
			}
			buf, _, err := c.Recv(peer, 0)
			if err != nil {
				return err
			}
			mpi.Release(buf)
			return nil
		}
		buf, _, err := c.Recv(peer, 0)
		if err != nil {
			return err
		}
		mpi.Release(buf)
		return c.Send(peer, 0, payload)
	}
	var avg float64
	_, err := mpi.Run(testCfg(2, v), func(c *mpi.Comm) error {
		for i := 0; i < warmup; i++ {
			if err := pingPong(c); err != nil {
				return err
			}
		}
		if c.Rank() != 0 {
			// Mirror rank 0's AllocsPerRun schedule: one warmup call plus
			// `runs` measured calls.
			for i := 0; i < runs+1; i++ {
				if err := pingPong(c); err != nil {
					return err
				}
			}
			return nil
		}
		var stepErr error
		avg = testing.AllocsPerRun(runs, func() {
			if stepErr == nil {
				stepErr = pingPong(c)
			}
		})
		return stepErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("steady-state Send/Recv with verifier attached: %v allocs/op, want 0", avg)
	}
	if !v.OK() {
		t.Errorf("verifier flagged the clean ping-pong: %v", v.Violations())
	}
}

// TestCheckTrace: the offline replay finds the same violation classes in a
// recorded stream that the live tool finds on the run.
func TestCheckTrace(t *testing.T) {
	events := []trace.Event{
		{T: 1, Rank: 0, Kind: trace.KindSectionEnter, Comm: 1, Label: "a"},
		{T: 1, Rank: 1, Kind: trace.KindSectionEnter, Comm: 1, Label: "a"},
		{T: 2, Rank: 0, Kind: trace.KindSectionLeave, Comm: 1, Label: "a"},
		// Rank 1 exits "b" while "a" is innermost (force-pop clears "a").
		{T: 2, Rank: 1, Kind: trace.KindSectionLeave, Comm: 1, Label: "b"},
		// Rank 0 then exits with nothing open.
		{T: 3, Rank: 0, Kind: trace.KindSectionLeave, Comm: 1, Label: "a"},
		// Divergent collectives: step 0 is Barrier on rank 0, Bcast on rank 1.
		{T: 4, Rank: 0, Kind: trace.KindCollective, Comm: 1, Label: "Barrier"},
		{T: 5, Rank: 1, Kind: trace.KindCollective, Comm: 1, Label: "Bcast"},
	}
	vs := CheckTrace(events)
	want := map[string]int{
		ClassMismatch:        1, // rank 1 exits "b" over "a"
		ClassUnderflow:       1, // rank 0's second exit of "a"
		ClassCollectiveOrder: 1, // Bcast vs Barrier at step 0
	}
	got := map[string]int{}
	for _, viol := range vs {
		got[viol.Class]++
	}
	for class, n := range want {
		if got[class] != n {
			t.Errorf("CheckTrace: %d %s violations, want %d (all: %v)", got[class], class, n, vs)
		}
	}
	if got[ClassUnclosed] != 0 {
		t.Errorf("unexpected unclosed violations (force-pop should have cleared): %v", vs)
	}

	// A kill fault exempts the dead rank from finalize checks.
	killed := []trace.Event{
		{T: 1, Rank: 0, Kind: trace.KindSectionEnter, Comm: 1, Label: "a"},
		{T: 1, Rank: 1, Kind: trace.KindSectionEnter, Comm: 1, Label: "a"},
		{T: 2, Rank: 0, Kind: trace.KindSectionLeave, Comm: 1, Label: "a"},
		{T: 2, Rank: 1, Kind: trace.KindFault, Comm: 1, Label: "kill"},
	}
	if vs := CheckTrace(killed); len(vs) != 0 {
		t.Errorf("dead rank produced violations offline: %v", vs)
	}

	if vs := CheckTrace(nil); len(vs) != 0 {
		t.Errorf("empty trace produced violations: %v", vs)
	}
}
