package telemetry

import "sync/atomic"

// The time grid is the HLRS-style time-resolved view: a fixed number of
// bins over the run so far, each holding message count, payload bytes and
// blocked-wait picoseconds, plus a bounded rank-group × bin wait heatmap.
// When an event lands past the covered span the grid folds pairs of bins
// and doubles the bin width — constant memory for any run length, and
// order-independent: folding halves indices by floor, and
// floor(floor(t/w)/2) == floor(t/(2w)), so an event bins identically
// whether it arrives before or after any rescale.

type grid struct {
	bins  int
	base  float64
	scale int64 // current bin width = base × scale (power of two)

	rowLo, rows int // global heat-row span of this shard

	msgs  []int64
	bytes []int64
	waitP []int64
	heat  []int64 // rows × bins wait picoseconds
}

//seclint:allocs-ok bin-grid construction: once per shard
func (g *grid) init(bins int, base float64, rowLo, rows int) {
	g.bins = bins
	g.base = base
	g.scale = 1
	g.rowLo, g.rows = rowLo, rows
	g.msgs = make([]int64, bins)
	g.bytes = make([]int64, bins)
	g.waitP = make([]int64, bins)
	g.heat = make([]int64, rows*bins)
}

// index maps a timestamp to its bin, rescaling until it fits. Guarded by
// the shard mutex.
func (g *grid) index(t float64) int {
	if t < 0 {
		t = 0
	}
	for {
		idx := int(t / (g.base * float64(g.scale)))
		if idx < g.bins {
			return idx
		}
		g.rescale()
	}
}

// rescale folds bin pairs and doubles the width.
//
//seclint:allocs-ok log-grid refold: rare, amortized O(log T) over a run
func (g *grid) rescale() {
	fold := func(a []int64) {
		half := len(a) / 2
		for i := 0; i < half; i++ {
			a[i] = a[2*i] + a[2*i+1]
		}
		for i := half; i < len(a); i++ {
			a[i] = 0
		}
	}
	fold(g.msgs)
	fold(g.bytes)
	fold(g.waitP)
	for r := 0; r < g.rows; r++ {
		fold(g.heat[r*g.bins : (r+1)*g.bins])
	}
	g.scale <<= 1
}

// add folds one event into the grid; row is the event's global heat row.
func (g *grid) add(t float64, row int, msgs, bytes, waitP int64) {
	idx := g.index(t)
	g.msgs[idx] += msgs
	g.bytes[idx] += bytes
	g.waitP[idx] += waitP
	if waitP != 0 {
		if r := row - g.rowLo; r >= 0 && r < g.rows {
			g.heat[r*g.bins+idx] += waitP
		}
	}
}

// foldTo re-bins a channel to a coarser scale (factor = target/g.scale ≥ 1)
// and adds it into dst.
func foldInto(dst, src []int64, factor int64) {
	for i, v := range src {
		if v != 0 {
			dst[int64(i)/factor] += v
		}
	}
}

// ---- exemplar reservoir ----------------------------------------------------

// exemplar is one sampled receive linking the aggregates back to a concrete
// message.
type exemplar struct {
	h                    uint64
	rank, peer, tag, sec int32
	bytes                int64
	t, wait, lat         float64
}

// exReservoir keeps the k receives with the smallest deterministic hash —
// a bottom-k sketch whose final content is independent of arrival order.
// The threshold is the current kth-smallest hash, readable without the
// shard lock so the steady state rejects in one atomic load.
type exReservoir struct {
	k      int
	thresh atomic.Uint64
	items  []exemplar
}

//seclint:allocs-ok reservoir construction: once per shard
func (r *exReservoir) init(k int) {
	r.k = k
	r.items = make([]exemplar, 0, k)
	r.thresh.Store(^uint64(0))
}

// insert is called under the shard mutex after a threshold pre-check.
func (r *exReservoir) insert(e exemplar) {
	if len(r.items) < r.k {
		r.items = append(r.items, e)
		if len(r.items) == r.k {
			r.thresh.Store(r.maxH())
		}
		return
	}
	var worst int
	for i := range r.items {
		if r.items[i].h > r.items[worst].h {
			worst = i
		}
	}
	if e.h >= r.items[worst].h {
		return
	}
	r.items[worst] = e
	r.thresh.Store(r.maxH())
}

func (r *exReservoir) maxH() uint64 {
	var m uint64
	for i := range r.items {
		if r.items[i].h > m {
			m = r.items[i].h
		}
	}
	return m
}
