// Package telemetry is the constant-memory streaming observability layer:
// an mpi.Tool that attaches to a run of any size and maintains, online, the
// paper's headline quantities — per-section profiles with the Fig. 3
// imbalance metrics, the live Eq. 6 partial speedup bounds, and the POP
// efficiency factor tree — plus time-binned interval series, a bounded
// rank×time wait heatmap, power-of-two latency/size histograms, and a
// deterministic sample of exemplar receives.
//
// Unlike the tracer (internal/trace) and the wait-state engine
// (internal/waitstate), which buffer an event per operation and analyze
// after the fact, this package folds every hook into fixed-size
// accumulators at event time. Memory is O(sections × shards + bins), never
// O(events) and never O(ranks × sections): rank state shards in groups of
// 256 world ranks (mirroring the runtime's own sharding) and each shard's
// slabs materialize lazily on first event, so a 10k-rank run with sparse
// activity pays only for what it touches.
//
// # Determinism
//
// The scheduler interleaves rank goroutines nondeterministically, yet the
// profile must serialize byte-identically across runs and across -j worker
// counts. Three mechanisms deliver that:
//
//   - Durations accumulate as picosecond int64 atomics. Integer addition is
//     associative, so any interleaving of atomic adds yields identical
//     sums; extrema fold through CAS loops over order-preserving float
//     bits (biased by one so 0.0 is distinguishable from the empty cell).
//   - The time grid folds bins pairwise when the run outgrows its span.
//     floor(floor(t/w)/2) == floor(t/(2w)), so an event lands in the same
//     final bin whether it arrives before or after any rescale.
//   - Exemplars are a bottom-k sketch keyed by a splitmix64 hash of
//     (world rank, per-rank receive ordinal) — a pure function of the
//     program, independent of arrival order, unlike classic reservoir
//     sampling.
//
// The one caveat is the Fig. 3 instance ring: in-flight instances per
// section are bounded (ringSlots), and an instance arriving more than
// ringSlots generations ahead of an unfinished one is skipped and counted.
// Imbalance means are exact and deterministic exactly when imb_skipped is
// zero, which every synchronized workload at practical real-time skew
// achieves; the skip counter makes the residual visible when it is not.
//
// # Accuracy trade-offs
//
// The streamed wait split classifies each receive at completion time from
// its MatchInfo (late-sender vs. transfer vs. collective), matching the
// trace-driven classification. What streaming cannot reproduce is
// attribution requiring future knowledge — e.g. the wait-state engine's
// per-rank useful time subtracts waits at the enclosing-run level after
// seeing the whole trace; the live global scope approximates each rank's
// span as (first event, wall-so-far) and converges to the trace answer at
// Finalize. Interval series and heatmaps are bounded-resolution by design:
// bin width doubles as the run grows, so long runs trade time resolution
// for constant memory.
//
// # Hot-path cost
//
// Per-event work is a few atomic adds plus, for messages, one short
// critical section on the rank's shard mutex (grid fold; exemplar inserts
// are pre-filtered by an atomic threshold load). No hook allocates after
// the first event on a shard: the 0 allocs/op contract is pinned by
// TestTelemetryZeroAlloc.
package telemetry
