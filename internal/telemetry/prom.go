package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// PromOptions bounds the Prometheus exposition.
type PromOptions struct {
	// MaxSections caps the per-section label cardinality (default 24): the
	// top sections by total time keep their own series, the remainder folds
	// into the "(other)" label, and every suppressed series increments
	// telemetry_series_dropped_total.
	MaxSections int
}

func (o PromOptions) withDefaults() PromOptions {
	if o.MaxSections <= 0 {
		o.MaxSections = 24
	}
	return o
}

// perSectionFamilies is how many per-section series one section label emits
// (seconds, instances, four wait causes, two imbalance kinds, bound).
const perSectionFamilies = 9

// WritePrometheus exposes the current snapshot in the Prometheus text
// format. Cardinality is bounded: at most o.MaxSections section labels plus
// "(other)", whatever the workload registers, and the running total of
// series suppressed by the cap is itself exported as
// telemetry_series_dropped_total.
func (tl *Tool) WritePrometheus(w io.Writer, o PromOptions) error {
	o = o.withDefaults()
	p := tl.Snapshot()

	kept := p.Sections
	var folded SectionProfile
	foldedAny := false
	if len(kept) > o.MaxSections {
		over := kept[o.MaxSections:]
		kept = kept[:o.MaxSections]
		folded = SectionProfile{Section: OtherLabel}
		for i := range over {
			s := &over[i]
			folded.Count += s.Count
			folded.TotalSeconds += s.TotalSeconds
			folded.WaitSeconds += s.WaitSeconds
			folded.LateSenderSeconds += s.LateSenderSeconds
			folded.TransferSeconds += s.TransferSeconds
			folded.CollWaitSeconds += s.CollWaitSeconds
			folded.DeadWaitSeconds += s.DeadWaitSeconds
			folded.Instances += s.Instances
			// Means cannot fold without the sample weights; the folded slot
			// reports totals only, and its per-section gauges are suppressed.
			tl.promDropped.Add(perSectionFamilies)
		}
		foldedAny = true
	}

	bw := bufio.NewWriter(w)
	sec := func(name, help, typ string, val func(*SectionProfile) (float64, bool)) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		emit := func(s *SectionProfile) {
			if v, ok := val(s); ok {
				fmt.Fprintf(bw, "%s{section=\"%s\"} %g\n", name, sanitizeLabel(s.Section), v)
			}
		}
		for i := range kept {
			emit(&kept[i])
		}
		if foldedAny {
			emit(&folded)
		}
	}

	sec("telemetry_section_seconds_total", "Inclusive section time summed over ranks.", "counter",
		func(s *SectionProfile) (float64, bool) { return s.TotalSeconds, true })
	sec("telemetry_section_instances_total", "Completed synchronized section instances.", "counter",
		func(s *SectionProfile) (float64, bool) { return float64(s.Instances), true })

	fmt.Fprintf(bw, "# HELP telemetry_section_wait_seconds_total Classified blocked wait inside the section.\n")
	fmt.Fprintf(bw, "# TYPE telemetry_section_wait_seconds_total counter\n")
	emitWaits := func(s *SectionProfile) {
		label := sanitizeLabel(s.Section)
		for _, c := range []struct {
			cause string
			v     float64
		}{
			{causeLateSender, s.LateSenderSeconds},
			{causeTransfer, s.TransferSeconds},
			{causeCollectiveWait, s.CollWaitSeconds},
			{causeDeadPeer, s.DeadWaitSeconds},
		} {
			if c.v > 0 {
				fmt.Fprintf(bw, "telemetry_section_wait_seconds_total{section=\"%s\",cause=\"%s\"} %g\n",
					label, c.cause, c.v)
			}
		}
	}
	for i := range kept {
		emitWaits(&kept[i])
	}
	if foldedAny {
		emitWaits(&folded)
	}

	sec("telemetry_section_imb_in_seconds", "Mean entry imbalance Tin-Tmin per instance sample (Fig. 3).", "gauge",
		func(s *SectionProfile) (float64, bool) { return s.ImbInMean, s.Instances > 0 })
	sec("telemetry_section_imb_seconds", "Mean section imbalance (Tmax-Tmin)-Tsection per instance sample (Fig. 3).", "gauge",
		func(s *SectionProfile) (float64, bool) { return s.ImbMean, s.Instances > 0 })
	sec("telemetry_section_bound", "Live Eq. 6 partial speedup bound seq/avg_per_proc.", "gauge",
		func(s *SectionProfile) (float64, bool) { return s.Bound, s.Bound > 0 })

	if p.Global != nil && p.Global.Factors != nil {
		f := p.Global.Factors
		fmt.Fprintf(bw, "# HELP telemetry_pop_efficiency POP multiplicative efficiency factors for the whole run.\n")
		fmt.Fprintf(bw, "# TYPE telemetry_pop_efficiency gauge\n")
		for _, e := range []struct {
			factor string
			v      float64
		}{
			{"parallel", f.Parallel}, {"load-balance", f.LoadBalance}, {"comm", f.Comm},
			{"transfer", f.Transfer}, {"serialisation", f.Serialisation},
			{"thread", f.Thread}, {"omp-region", f.OmpRegion}, {"serial-region", f.SerialRegion},
			{"total", f.Total},
		} {
			fmt.Fprintf(bw, "telemetry_pop_efficiency{factor=\"%s\"} %g\n", e.factor, e.v)
		}
	}

	fmt.Fprintf(bw, "# HELP telemetry_messages_total Point-to-point messages sent.\n")
	fmt.Fprintf(bw, "# TYPE telemetry_messages_total counter\ntelemetry_messages_total %d\n", p.Messages)
	fmt.Fprintf(bw, "# HELP telemetry_message_bytes_total Point-to-point payload bytes sent.\n")
	fmt.Fprintf(bw, "# TYPE telemetry_message_bytes_total counter\ntelemetry_message_bytes_total %d\n", p.MessageBytes)

	fmt.Fprintf(bw, "# HELP telemetry_message_latency_seconds Send-to-receive latency of matched messages.\n")
	fmt.Fprintf(bw, "# TYPE telemetry_message_latency_seconds histogram\n")
	var cum int64
	for _, b := range p.Latency {
		cum += b.Count
		fmt.Fprintf(bw, "telemetry_message_latency_seconds_bucket{le=\"%g\"} %d\n", b.Le, cum)
	}
	fmt.Fprintf(bw, "telemetry_message_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(bw, "telemetry_message_latency_seconds_sum %g\n", p.LatencySum)
	fmt.Fprintf(bw, "telemetry_message_latency_seconds_count %d\n", cum)

	fmt.Fprintf(bw, "# HELP telemetry_ranks Rank population by runtime state.\n")
	fmt.Fprintf(bw, "# TYPE telemetry_ranks gauge\n")
	fmt.Fprintf(bw, "telemetry_ranks{state=\"declared\"} %d\n", p.Ranks)
	if p.ActiveRanks > 0 || p.MaterializedRanks > 0 {
		fmt.Fprintf(bw, "telemetry_ranks{state=\"active\"} %d\n", p.ActiveRanks)
		fmt.Fprintf(bw, "telemetry_ranks{state=\"materialized\"} %d\n", p.MaterializedRanks)
	}

	fmt.Fprintf(bw, "# HELP telemetry_wall_seconds Wall time covered by the profile so far.\n")
	fmt.Fprintf(bw, "# TYPE telemetry_wall_seconds gauge\ntelemetry_wall_seconds %g\n", p.Wall)
	fmt.Fprintf(bw, "# HELP telemetry_degraded 1 when faults or dead-peer waits degraded the run.\n")
	fmt.Fprintf(bw, "# TYPE telemetry_degraded gauge\ntelemetry_degraded %d\n", boolInt(p.Degraded))

	fmt.Fprintf(bw, "# HELP telemetry_series_dropped_total Per-section series suppressed by the cardinality cap.\n")
	fmt.Fprintf(bw, "# TYPE telemetry_series_dropped_total counter\ntelemetry_series_dropped_total %d\n",
		tl.promDropped.Load())
	fmt.Fprintf(bw, "# HELP telemetry_section_table_overflow_total Events aggregated into the overflow section slot.\n")
	fmt.Fprintf(bw, "# TYPE telemetry_section_table_overflow_total counter\ntelemetry_section_table_overflow_total %d\n",
		p.SectionsDropped)
	return bw.Flush()
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
