package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteJSON serializes the profile as indented JSON (trailing newline). The
// encoder walks fixed struct fields, so identical profiles serialize to
// identical bytes whatever the parallelism that produced them.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteFile writes the profile summary to path.
func (p *Profile) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := p.WriteJSON(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSummary parses a profile summary previously produced by WriteJSON.
func ReadSummary(r io.Reader) (*Profile, error) {
	dec := json.NewDecoder(r)
	var p Profile
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("telemetry summary: %w", err)
	}
	if p.Schema != 1 {
		return nil, fmt.Errorf("telemetry summary: unsupported schema %d", p.Schema)
	}
	return &p, nil
}

// ReadSummaryFile parses the summary at path.
func ReadSummaryFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSummary(f)
}

// LooksLikeSummary reports whether the file at path is a telemetry JSON
// summary (first non-space byte '{') rather than some other profile format.
func LooksLikeSummary(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		b, err := br.ReadByte()
		if err != nil {
			return false
		}
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		default:
			return b == '{'
		}
	}
}

// WriteHeatmapCSV renders the rank×time wait heatmap as CSV: one row per
// rank group, one column per time bin, cells in seconds of blocked wait.
func (p *Profile) WriteHeatmapCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if p.Heatmap == nil || len(p.Heatmap.Rows) == 0 {
		fmt.Fprintf(bw, "rank_lo,rank_hi\n")
		return bw.Flush()
	}
	hm := p.Heatmap
	bw.WriteString("rank_lo,rank_hi")
	for i := range hm.Rows[0].WaitSeconds {
		fmt.Fprintf(bw, ",t%g", float64(i)*hm.BinSeconds)
	}
	bw.WriteByte('\n')
	for _, row := range hm.Rows {
		fmt.Fprintf(bw, "%d,%d", row.RankLo, row.RankHi)
		for _, v := range row.WaitSeconds {
			fmt.Fprintf(bw, ",%g", v)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteChromeCounters emits the interval series as Chrome-trace counter
// events (phase "C"), loadable next to the tracer's JSON in about://tracing
// or Perfetto: three tracks — messages, bytes and wait seconds per bin.
// The output is a complete JSON-array trace document.
func (p *Profile) WriteChromeCounters(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	emit := func(name string, ts float64, args string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, `  {"name":%q,"ph":"C","pid":0,"tid":0,"ts":%g,"args":{%s}}`,
			name, ts*1e6, args)
	}
	for _, iv := range p.Intervals {
		ts := iv.From
		emit("telemetry: messages", ts, fmt.Sprintf(`"messages":%d`, iv.Msgs))
		emit("telemetry: bytes", ts, fmt.Sprintf(`"bytes":%d`, iv.Bytes))
		emit("telemetry: wait (s)", ts, fmt.Sprintf(`"wait":%g`, iv.WaitSeconds))
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// RenderTo writes the terminal report to w.
func (p *Profile) RenderTo(w io.Writer) error {
	_, err := io.WriteString(w, p.Render())
	return err
}

// Summary returns the binding diagnosis, or a one-line fallback when no
// section bound the run.
func (p *Profile) Summary() string {
	if p.Diagnosis != "" {
		return p.Diagnosis
	}
	return fmt.Sprintf("p=%d wall %.6g s: no section bound the run", p.Ranks, p.Wall)
}

// sanitizeLabel maps a section label into a safe Prometheus label value.
func sanitizeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(s)
}
