package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/convolution"
	"repro/internal/export"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/pop"
	"repro/internal/trace"
	"repro/internal/waitstate"
)

// The ground-truth contract: on runs small enough for the trace-driven
// pipeline, the streamed aggregates must agree with the wait-state engine,
// the POP factor tree and the exporter's Fig. 3 means — the telemetry layer
// is the constant-memory twin of those analyses, not an approximation of
// them. Quantization (picosecond rounding per event) bounds the tolerance.

const eqTol = 1e-6

func approxEq(a, b float64) bool {
	d := math.Abs(a - b)
	if d <= eqTol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= eqTol*m
}

// convRun executes one small convolution run with the full analysis tool
// stack attached: trace collector (ground truth), exporter (Fig. 3 ground
// truth), and the streaming telemetry tool under test.
func convRun(t *testing.T, ranks, steps int, seq float64) (*Profile, []trace.Event, []export.SectionSnapshot) {
	t.Helper()
	col := trace.NewCollector(0)
	col.Messages = true
	col.Collectives = true
	col.Omp = true
	rec := export.NewRecorder(export.Options{Messages: true, Collectives: true})
	if seq > 0 {
		rec.SetSeqTime(seq)
	}
	tl := New(Options{SeqTime: seq})
	cfg := mpi.Config{
		Ranks: ranks, Model: machine.NehalemCluster(), Seed: 7,
		Tools: []mpi.Tool{col, rec, tl}, Timeout: 2 * time.Minute,
	}
	params := convolution.Params{
		Width: 5616, Height: 3744, Steps: steps, Scale: 16, Seed: 7, SkipKernel: true,
	}
	if _, err := convolution.Run(cfg, params); err != nil {
		t.Fatal(err)
	}
	return tl.Snapshot(), col.Buffer().Events(), rec.Sections()
}

func TestEquivalenceWithWaitstate(t *testing.T) {
	const seq = 100.0
	p, events, _ := convRun(t, 8, 3, seq)
	a, err := waitstate.Analyze(events, waitstate.Options{SeqTime: seq})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Finished {
		t.Fatal("profile not finalized")
	}
	if !approxEq(p.Wall, a.Wall) {
		t.Errorf("wall = %g, waitstate %g", p.Wall, a.Wall)
	}
	matched := 0
	for _, ws := range a.Sections {
		if ws.Section == "(no section)" {
			continue
		}
		sp := p.Section(ws.Section)
		if sp == nil {
			t.Errorf("section %q missing from profile", ws.Section)
			continue
		}
		matched++
		checks := []struct {
			name string
			got  float64
			want float64
		}{
			{"total", sp.TotalSeconds, ws.Total},
			{"avg_per_proc", sp.AvgPerProc, ws.AvgPerProc},
			{"wait_in", sp.WaitSeconds, ws.WaitIn},
			{"late_sender", sp.LateSenderSeconds, ws.LateSender},
			{"transfer", sp.TransferSeconds, ws.Transfer},
			{"coll_wait", sp.CollWaitSeconds, ws.CollWait},
			{"recvs", float64(sp.Recvs), float64(ws.Recvs)},
			{"late_recvs", float64(sp.LateRecvs), float64(ws.LateRecvN)},
		}
		for _, c := range checks {
			if !approxEq(c.got, c.want) {
				t.Errorf("section %s %s = %g, waitstate %g", ws.Section, c.name, c.got, c.want)
			}
		}
		if ws.Bound > 0 && !approxEq(sp.Bound, ws.Bound) {
			t.Errorf("section %s bound = %g, waitstate %g", ws.Section, sp.Bound, ws.Bound)
		}
	}
	if matched < 3 {
		t.Fatalf("only %d sections matched; equivalence test degenerate", matched)
	}
	// The binding verdict — which section caps the speedup, and why — must
	// agree exactly.
	b := a.Binding()
	if b == nil {
		t.Fatal("waitstate yields no binding section")
	}
	if p.Binding != b.Section {
		t.Errorf("binding = %q, waitstate %q", p.Binding, b.Section)
	}
	bp := p.Section(p.Binding)
	if bp == nil || bp.Cause != b.DominantCause {
		t.Errorf("binding cause = %q, waitstate %q", bp.Cause, b.DominantCause)
	}
}

func TestEquivalenceWithPOP(t *testing.T) {
	const seq = 100.0
	p, events, _ := convRun(t, 8, 3, seq)
	tree, err := pop.Analyze(events, pop.Options{SeqTime: seq})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Global == nil || tree.Global.Factors == nil {
		t.Fatal("trace-driven POP tree has no global factors")
	}
	if p.Global == nil || p.Global.Factors == nil {
		t.Fatal("streamed profile has no global factors")
	}
	got, want := p.Global.Factors, tree.Global.Factors
	checks := []struct {
		name      string
		got, want float64
	}{
		{"parallel", got.Parallel, want.Parallel},
		{"load_balance", got.LoadBalance, want.LoadBalance},
		{"comm", got.Comm, want.Comm},
		{"transfer", got.Transfer, want.Transfer},
		{"serialisation", got.Serialisation, want.Serialisation},
		{"thread", got.Thread, want.Thread},
		{"total", got.Total, want.Total},
	}
	for _, c := range checks {
		if !approxEq(c.got, c.want) {
			t.Errorf("global %s = %g, pop %g", c.name, c.got, c.want)
		}
	}
	// Per-section factor records must agree too, not just the global roll-up.
	for _, ps := range tree.Sections {
		sp := p.Section(ps.Section)
		if sp == nil || sp.Efficiency == nil {
			t.Errorf("section %q missing streamed efficiency", ps.Section)
			continue
		}
		if ps.Factors == nil || sp.Efficiency.Factors == nil {
			continue
		}
		if !approxEq(sp.Efficiency.Factors.LoadBalance, ps.Factors.LoadBalance) ||
			!approxEq(sp.Efficiency.Factors.Comm, ps.Factors.Comm) {
			t.Errorf("section %s factors (LB %g, comm %g), pop (LB %g, comm %g)",
				ps.Section, sp.Efficiency.Factors.LoadBalance, sp.Efficiency.Factors.Comm,
				ps.Factors.LoadBalance, ps.Factors.Comm)
		}
	}
}

func TestEquivalenceWithExporterFig3(t *testing.T) {
	p, _, snaps := convRun(t, 8, 3, 0)
	if p.ImbSkipped != 0 {
		t.Fatalf("instance ring skipped %d instances on a synchronized 8-rank run", p.ImbSkipped)
	}
	matched := 0
	for _, snap := range snaps {
		sp := p.Section(snap.Label)
		if sp == nil {
			continue
		}
		matched++
		if int64(snap.Instances) != sp.Instances {
			t.Errorf("section %s instances = %d, exporter %d", snap.Label, sp.Instances, snap.Instances)
		}
		if !approxEq(sp.ImbInMean, snap.EntryImbMean) {
			t.Errorf("section %s entry_imb_mean = %g, exporter %g", snap.Label, sp.ImbInMean, snap.EntryImbMean)
		}
		if !approxEq(sp.ImbMean, snap.ImbMean) {
			t.Errorf("section %s imb_mean = %g, exporter %g", snap.Label, sp.ImbMean, snap.ImbMean)
		}
	}
	if matched < 3 {
		t.Fatalf("only %d sections matched the exporter; Fig. 3 equivalence degenerate", matched)
	}
}

// TestDeterminism runs the identical configuration twice — rank goroutines
// interleave differently every run — and requires byte-identical summaries.
func TestDeterminism(t *testing.T) {
	var docs [2]bytes.Buffer
	for i := range docs {
		p, _, _ := convRun(t, 8, 3, 100)
		if err := p.WriteJSON(&docs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(docs[0].Bytes(), docs[1].Bytes()) {
		t.Error("identical runs produced different telemetry summaries")
	}
}

// TestHybridComputeRegions drives the MPI+OpenMP split: thread-team compute
// regions must land in the POP thread factors the same way the trace path
// scores them.
func TestHybridComputeRegions(t *testing.T) {
	col := trace.NewCollector(0)
	col.Messages = true
	col.Collectives = true
	col.Omp = true
	tl := New(Options{})
	cfg := mpi.Config{Ranks: 2, Model: machine.Ideal(2, 4), Seed: 1,
		Tools: []mpi.Tool{col, tl}, Timeout: time.Minute}
	work := mpi.WorkUnit{Flops: 5e6, Bytes: 1024}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		return c.Section("WORK", func() error {
			for i := 0; i < 4; i++ {
				c.ComputeParallel(work, 2)
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	p := tl.Snapshot()
	if p.Threads != 2 {
		t.Errorf("threads = %d, want 2", p.Threads)
	}
	tree, err := pop.Analyze(col.Buffer().Events(), pop.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Global == nil || p.Global.Factors == nil || tree.Global == nil || tree.Global.Factors == nil {
		t.Fatal("missing global factors")
	}
	if !approxEq(p.Global.Factors.OmpRegion, tree.Global.Factors.OmpRegion) {
		t.Errorf("omp-region = %g, pop %g", p.Global.Factors.OmpRegion, tree.Global.Factors.OmpRegion)
	}
	if !approxEq(p.Global.Factors.SerialRegion, tree.Global.Factors.SerialRegion) {
		t.Errorf("serial-region = %g, pop %g", p.Global.Factors.SerialRegion, tree.Global.Factors.SerialRegion)
	}
}

// TestSummaryRoundTrip pins the offline pipeline: WriteJSON → ReadSummary
// must reproduce the document, and the renderers must not panic on it.
func TestSummaryRoundTrip(t *testing.T) {
	p, _, _ := convRun(t, 4, 2, 100)
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSummary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("summary does not round-trip through JSON")
	}
	out := back.Render()
	if !strings.Contains(out, "binds at p=4") {
		t.Errorf("rendered report lacks a binding diagnosis:\n%s", out)
	}
	var heat, chrome bytes.Buffer
	if err := back.WriteHeatmapCSV(&heat); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(heat.String(), "rank_lo,rank_hi") {
		t.Errorf("heatmap CSV header malformed: %q", heat.String()[:40])
	}
	if err := back.WriteChromeCounters(&chrome); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"ph":"C"`) {
		t.Error("Chrome counter export lacks counter events")
	}
}

// TestPromCardinalityGuard registers more sections than the exposition cap
// and requires the overflow to fold into "(other)" with the drop counter
// accounting for every suppressed series.
func TestPromCardinalityGuard(t *testing.T) {
	tl := New(Options{})
	cfg := mpi.Config{Ranks: 2, Model: machine.Ideal(2, 1), Seed: 1,
		Tools: []mpi.Tool{tl}, Timeout: time.Minute}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		for i := 0; i < 8; i++ {
			name := string(rune('A'+i)) + "_SEC"
			if err := c.Section(name, func() error {
				return c.Barrier()
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tl.WritePrometheus(&buf, PromOptions{MaxSections: 3}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `section="(other)"`) {
		t.Error("exposition lacks the (other) overflow label")
	}
	kept := strings.Count(out, "telemetry_section_seconds_total{")
	if kept != 4 { // 3 kept + (other)
		t.Errorf("exposition carries %d section series, want 4 (cap 3 + overflow)", kept)
	}
	if !strings.Contains(out, "telemetry_series_dropped_total") {
		t.Fatal("exposition lacks telemetry_series_dropped_total")
	}
	if strings.Contains(out, "telemetry_series_dropped_total 0\n") {
		t.Error("drop counter still zero despite suppressed sections")
	}
	// An uncapped exposition drops nothing further.
	var full bytes.Buffer
	if err := tl.WritePrometheus(&full, PromOptions{MaxSections: 64}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full.String(), `section="MPI_MAIN"`) {
		t.Error("uncapped exposition lacks MPI_MAIN")
	}
}

// TestSectionTableOverflow exhausts the fixed section table and requires
// events past the cap to aggregate into "(other)" instead of growing it.
func TestSectionTableOverflow(t *testing.T) {
	tl := New(Options{})
	cfg := mpi.Config{Ranks: 1, Model: machine.Ideal(1, 1), Seed: 1,
		Tools: []mpi.Tool{tl}, Timeout: time.Minute}
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		for i := 0; i < MaxSections+8; i++ {
			name := "S" + strings.Repeat("x", i%7) + string(rune('a'+i%26)) + string(rune('0'+i/26))
			if err := c.Section(name, func() error { return nil }); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p := tl.Snapshot()
	if p.SectionsDropped == 0 {
		t.Fatal("section table never overflowed; the test is degenerate")
	}
	other := p.Section(OtherLabel)
	if other == nil || other.Count == 0 {
		t.Fatal("overflow events did not land in the (other) slot")
	}
	if len(p.Sections) > nSlots {
		t.Errorf("profile carries %d sections, cap is %d", len(p.Sections), nSlots)
	}
}

// TestLiveSnapshotMidRun takes a snapshot while ranks are still executing:
// it must be well-formed (no panic, monotone wall, unfinished flag).
func TestLiveSnapshotMidRun(t *testing.T) {
	tl := New(Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	cfg := mpi.Config{Ranks: 2, Model: machine.Ideal(2, 1), Seed: 1,
		Tools: []mpi.Tool{tl}, Timeout: time.Minute}
	done := make(chan error, 1)
	go func() {
		_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
			return c.Section("WORK", func() error {
				if err := c.Barrier(); err != nil {
					return err
				}
				if c.Rank() == 0 {
					close(started)
					<-release
				}
				return c.Barrier()
			})
		})
		done <- err
	}()
	<-started
	p := tl.Snapshot()
	if p.Finished {
		t.Error("mid-run snapshot claims the run finished")
	}
	if p.Ranks != 2 {
		t.Errorf("mid-run snapshot ranks = %d, want 2", p.Ranks)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	final := tl.Snapshot()
	if !final.Finished {
		t.Error("post-run snapshot not finalized")
	}
	if final.Wall < p.Wall {
		t.Errorf("wall went backward: %g then %g", p.Wall, final.Wall)
	}
}
