//go:build race

package telemetry

// raceEnabled reports whether the race detector is active; allocation and
// RSS pins are skipped under it (instrumentation allocates).
const raceEnabled = true
