package telemetry

import "sync/atomic"

// Fig. 3 instance tracking. An instance of a section is one synchronized
// enter/leave round across the communicator's ranks; its metrics are
// imb_in = Tin − Tmin per rank (entry imbalance) and
// imb = (Tmax − Tmin) − Tsection per rank (section imbalance). A full
// tracer keys instances per (comm, label, ordinal); the streaming layer
// keeps a fixed ring of in-flight instances per section, claimed by CAS and
// folded by the last leaver, so memory stays constant however many
// instances a run produces.
//
// A slot's generation word packs (ordinal+1) << 32 | commID₁₆ << 16 | size:
// a single atomic both claims the slot and publishes the communicator size
// the folder needs, with no two-word ordering hazard. An instance arriving
// more than ringSlots generations ahead of an unfinished one (possible only
// under extreme real-time skew between rank goroutines — virtual time does
// not bound real-time progress) finds its slot occupied and is skipped;
// skips are counted, so imb aggregates are exact and deterministic exactly
// when Skipped == 0, which every synchronized workload at practical skew
// achieves.

type instSlot struct {
	gen    atomic.Uint64
	leaves atomic.Int64
	sumIn  atomic.Int64 // Σ pico(Tin)
	sumOut atomic.Int64 // Σ pico(Tout)
	minIn  atomic.Uint64
	maxOut atomic.Uint64
}

type instRing struct {
	slots [ringSlots]instSlot

	instances atomic.Int64 // completed instances
	samples   atomic.Int64 // Σ communicator sizes over completed instances
	imbInPico atomic.Int64 // Σ_instances Σ_ranks (Tin − Tmin)
	imbPico   atomic.Int64 // Σ_instances Σ_ranks ((Tmax−Tmin) − Tsection)
	spanPico  atomic.Int64 // Σ_instances (Tmax − Tmin)
	skipped   atomic.Int64
}

//seclint:allocs-ok instance-ring construction: once per section
func newInstRing() *instRing { return &instRing{} }

func packGen(idx uint32, commID uint64, size int) uint64 {
	return uint64(idx+1)<<32 | (commID&0xFFFF)<<16 | uint64(size)
}

// enter claims (or joins) the instance and folds the rank's entry time.
// The return reports whether the rank joined; a false return means the
// matching leave must not contribute either.
func (rg *instRing) enter(idx uint32, commID uint64, size int, t float64) bool {
	if size <= 0 || size >= 1<<16 {
		rg.skipped.Add(1)
		return false
	}
	want := packGen(idx, commID, size)
	s := &rg.slots[idx%ringSlots]
	g := s.gen.Load()
	if g != want {
		if g != 0 || !s.gen.CompareAndSwap(0, want) {
			if s.gen.Load() != want {
				rg.skipped.Add(1)
				return false
			}
		}
	}
	s.sumIn.Add(pico(t))
	atomicMinT(&s.minIn, t)
	return true
}

// leave folds the rank's exit time; the size-th leaver computes the
// instance's imbalance contributions and recycles the slot. Each rank's
// sum/extrema stores precede its leaves increment, so when the count
// reaches size every contribution is visible to the folder.
func (rg *instRing) leave(idx uint32, commID uint64, size int, _, tout float64) {
	want := packGen(idx, commID, size)
	s := &rg.slots[idx%ringSlots]
	if s.gen.Load() != want {
		return
	}
	s.sumOut.Add(pico(tout))
	atomicMaxT(&s.maxOut, tout)
	if s.leaves.Add(1) != int64(size) {
		return
	}
	minIn, _ := loadT(&s.minIn)
	maxOut, _ := loadT(&s.maxOut)
	n := int64(size)
	span := pico(maxOut) - pico(minIn)
	rg.instances.Add(1)
	rg.samples.Add(n)
	rg.spanPico.Add(span)
	rg.imbInPico.Add(s.sumIn.Load() - n*pico(minIn))
	// Per rank: imb = (Tmax−Tmin) − Tsection with Tsection measured from the
	// instance's Tmin (the exporter's Fig. 3 convention), so the sum
	// telescopes to Σ (Tmax − Tout_r).
	rg.imbPico.Add(n*pico(maxOut) - s.sumOut.Load())
	s.leaves.Store(0)
	s.sumIn.Store(0)
	s.sumOut.Store(0)
	s.minIn.Store(0)
	s.maxOut.Store(0)
	s.gen.Store(0)
}
