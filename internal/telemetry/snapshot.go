package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/mpi"
	"repro/internal/pop"
)

// Cause labels mirror the wait-state engine's so both paths speak the same
// diagnosis vocabulary.
const (
	causeCompute        = "compute"
	causeLateSender     = "late-sender"
	causeTransfer       = "transfer"
	causeCollectiveWait = "collective-wait"
	causeDeadPeer       = "dead-peer"
)

// SectionProfile is one section's streamed aggregate.
type SectionProfile struct {
	Section string `json:"section"`
	// Count is completed enter/leave pairs summed over ranks.
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	AvgPerProc   float64 `json:"avg_per_proc_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	// The wait split follows the Scalasca-style classification: WaitSeconds
	// is all blocked receive time inside the section, decomposed into
	// late-sender, transfer, collective and dead-peer components.
	WaitSeconds       float64 `json:"wait_in_seconds"`
	LateSenderSeconds float64 `json:"late_sender_seconds"`
	TransferSeconds   float64 `json:"transfer_seconds"`
	CollWaitSeconds   float64 `json:"collective_wait_seconds"`
	DeadWaitSeconds   float64 `json:"dead_peer_wait_seconds,omitempty"`
	DeadPeerN         int64   `json:"dead_peer_total,omitempty"`
	Recvs             int64   `json:"recv_total"`
	LateRecvs         int64   `json:"late_receiver_total"`
	Sends             int64   `json:"send_total"`
	SendBytes         int64   `json:"send_bytes"`
	Colls             int64   `json:"collective_total"`
	CollSeconds       float64 `json:"collective_seconds"`
	// Fig. 3 instance metrics over completed synchronized instances:
	// entry imbalance mean (Tin − Tmin) and section imbalance mean
	// ((Tmax − Tmin) − Tsection), per (instance, rank) sample.
	Instances  int64   `json:"instances"`
	ImbInMean  float64 `json:"entry_imb_mean_seconds"`
	ImbMean    float64 `json:"imb_mean_seconds"`
	SpanMean   float64 `json:"span_mean_seconds"`
	ImbSkipped int64   `json:"imb_skipped,omitempty"`
	// Bound is the live Eq. 6 partial speedup bound (0 without a baseline);
	// Cause the dominant wait-state verdict.
	Bound float64 `json:"partial_bound,omitempty"`
	Cause string  `json:"dominant_cause"`
	// Efficiency is the POP factor tree computed from the streamed per-rank
	// totals (factors withheld on degraded runs).
	Efficiency *pop.SectionEfficiency `json:"efficiency,omitempty"`
}

// Interval is one bin of the time-resolved series.
type Interval struct {
	From        float64 `json:"from_seconds"`
	To          float64 `json:"to_seconds"`
	Msgs        int64   `json:"messages"`
	Bytes       int64   `json:"bytes"`
	WaitSeconds float64 `json:"wait_seconds"`
}

// HeatRow is one rank group's wait time per bin.
type HeatRow struct {
	RankLo      int       `json:"rank_lo"`
	RankHi      int       `json:"rank_hi"`
	WaitSeconds []float64 `json:"wait_seconds"`
}

// Heatmap is the bounded rank×time wait view.
type Heatmap struct {
	RowRanks   int       `json:"row_ranks"`
	BinSeconds float64   `json:"bin_seconds"`
	Rows       []HeatRow `json:"rows"`
}

// HistBucket is one power-of-two histogram bucket: Count events with value
// ≤ Le (upper bound, non-cumulative counts).
type HistBucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Exemplar is one sampled receive.
type Exemplar struct {
	Rank    int     `json:"rank"`
	Peer    int     `json:"peer"`
	Tag     int     `json:"tag"`
	Bytes   int64   `json:"bytes"`
	Section string  `json:"section"`
	T       float64 `json:"t_seconds"`
	Wait    float64 `json:"wait_seconds"`
	Latency float64 `json:"latency_seconds"`
}

// Profile is a consistent point-in-time view of the telemetry aggregates —
// the /profile.json document, the -profile summary file, and the input of
// every offline renderer. Field order is fixed, so serialization is
// byte-deterministic.
type Profile struct {
	Schema            int     `json:"schema"`
	Ranks             int     `json:"ranks"`
	ActiveRanks       int     `json:"active_ranks,omitempty"`
	MaterializedRanks int     `json:"materialized_ranks,omitempty"`
	Threads           int     `json:"threads"`
	Finished          bool    `json:"finished"`
	Degraded          bool    `json:"degraded"`
	Faults            int64   `json:"faults,omitempty"`
	DeadWaits         int64   `json:"dead_peer_waits,omitempty"`
	Wall              float64 `json:"wall_seconds"`
	SeqTime           float64 `json:"seq_seconds,omitempty"`
	Messages          int64   `json:"messages"`
	MessageBytes      int64   `json:"message_bytes"`
	LatencySum        float64 `json:"latency_sum_seconds"`
	SectionsDropped   int64   `json:"section_table_overflow,omitempty"`
	DepthDropped      int64   `json:"depth_dropped,omitempty"`
	ImbSkipped        int64   `json:"imb_skipped,omitempty"`

	Sections []SectionProfile `json:"sections"`
	// Global is the whole-run POP scope ("(run)").
	Global *pop.SectionEfficiency `json:"global,omitempty"`
	// Binding names the section holding the tightest Eq. 6 bound;
	// Diagnosis is its one-line verdict.
	Binding   string `json:"binding,omitempty"`
	Diagnosis string `json:"diagnosis,omitempty"`

	Intervals []Interval   `json:"intervals"`
	Heatmap   *Heatmap     `json:"heatmap,omitempty"`
	Latency   []HistBucket `json:"message_latency,omitempty"`
	Sizes     []HistBucket `json:"message_sizes,omitempty"`
	Exemplars []Exemplar   `json:"exemplars"`
}

// Section returns the named section's record, or nil.
func (p *Profile) Section(name string) *SectionProfile {
	for i := range p.Sections {
		if p.Sections[i].Section == name {
			return &p.Sections[i]
		}
	}
	return nil
}

// Snapshot assembles a consistent profile from the live accumulators. Safe
// at any time from any goroutine; aggregates observed mid-run cover the
// events completed so far.
func (tl *Tool) Snapshot() *Profile {
	tab := tl.tab.Load()
	p := &Profile{
		Schema:          1,
		Ranks:           tl.ranks,
		Threads:         int(tl.threads.Load()),
		Finished:        tl.finished.Load(),
		Faults:          tl.faults.Load(),
		DeadWaits:       tl.deadWaits.Load(),
		SeqTime:         tl.seqTime(),
		SectionsDropped: tl.secDropped.Load(),
		DepthDropped:    tl.depthDropped.Load(),
		Sections:        []SectionProfile{},
		Intervals:       []Interval{},
		Exemplars:       []Exemplar{},
	}
	p.Degraded = p.Faults > 0 || p.DeadWaits > 0
	if tl.stats != nil {
		p.ActiveRanks = tl.stats.ActiveRanks()
		p.MaterializedRanks = tl.stats.MaterializedRanks()
	}
	p.Wall = tl.wall()

	// Per-section fold plus the POP join.
	labels := append(append(make([]string, 0, len(tab.labels)+1), tab.labels...), OtherLabel)
	for sid, label := range labels {
		slot := int32(sid)
		if label == OtherLabel {
			slot = otherSlot
		}
		sp, rows := tl.foldSection(label, slot)
		if sp == nil {
			continue
		}
		if p.SeqTime > 0 && sp.AvgPerProc > 0 {
			sp.Bound = p.SeqTime / sp.AvgPerProc
		}
		sp.Cause = dominantCause(sp)
		eff := pop.FromTotals(label, tl.ranks, rows, p.Degraded)
		eff.Bound = sp.Bound
		eff.Cause = sp.Cause
		sp.Efficiency = &eff
		p.ImbSkipped += sp.ImbSkipped
		p.Messages += sp.Sends
		p.MessageBytes += sp.SendBytes
		p.Sections = append(p.Sections, *sp)
	}
	sort.Slice(p.Sections, func(i, j int) bool {
		if p.Sections[i].TotalSeconds != p.Sections[j].TotalSeconds {
			return p.Sections[i].TotalSeconds > p.Sections[j].TotalSeconds
		}
		return p.Sections[i].Section < p.Sections[j].Section
	})

	// Eq. 6 binding: the section with the largest per-process average,
	// excluding the whole-run wrapper and the overflow slot (mirrors
	// waitstate.Analysis.Binding).
	var binding *SectionProfile
	for i := range p.Sections {
		s := &p.Sections[i]
		if s.Section == mpi.MainSection || s.Section == OtherLabel || s.TotalSeconds <= 0 {
			continue
		}
		if binding == nil || s.AvgPerProc > binding.AvgPerProc ||
			(s.AvgPerProc == binding.AvgPerProc && s.Section < binding.Section) {
			binding = s
		}
	}
	if binding != nil {
		p.Binding = binding.Section
		p.Diagnosis = p.diagnose(binding)
	}

	// Whole-run scope.
	p.Global = tl.globalScope(p.Wall, p.Degraded)

	tl.foldGrid(p)
	tl.foldHists(p)
	tl.foldExemplars(p, tab)
	return p
}

// wall returns the best wall-time estimate: the report's makespan once
// finalized, else the largest event time observed so far.
func (tl *Tool) wall() float64 {
	if tl.finished.Load() {
		if w, ok := loadT0(tl.wallBits.Load()); ok {
			return w
		}
	}
	var wall float64
	if tl.stats != nil {
		wall = tl.stats.Frontier()
	}
	for i := range tl.cur {
		if t, ok := loadT(&tl.cur[i].lastT); ok && t > wall {
			wall = t
		}
	}
	return wall
}

// loadT0 unpacks raw (unbiased) float bits, treating 0 as unset.
func loadT0(b uint64) (float64, bool) {
	if b == 0 {
		return 0, false
	}
	return math.Float64frombits(b), true
}

// foldSection sums one section slot across shards; nil when the slot never
// saw an event.
func (tl *Tool) foldSection(label string, sid int32) (*SectionProfile, []pop.RankTotals) {
	sp := &SectionProfile{Section: label}
	var minB, maxB uint64
	var sumP, waitP, lateP, transP, collWP, deadP, collP int64
	var rows []pop.RankTotals
	for i := range tl.shards {
		sh := &tl.shards[i]
		if !sh.ready.Load() {
			continue
		}
		a := &sh.secs[sid]
		sp.Count += a.left.Load()
		sumP += a.sumPico.Load()
		waitP += a.waitPico.Load()
		lateP += a.latePico.Load()
		transP += a.transferPico.Load()
		collWP += a.collWaitPico.Load()
		deadP += a.deadPico.Load()
		collP += a.collPico.Load()
		sp.Recvs += a.recvs.Load()
		sp.LateRecvs += a.lateRecvs.Load()
		sp.DeadPeerN += a.deadN.Load()
		sp.Sends += a.sends.Load()
		sp.SendBytes += a.sendBytes.Load()
		sp.Colls += a.colls.Load()
		if b := a.minDur.Load(); b != 0 && (minB == 0 || b < minB) {
			minB = b
		}
		if b := a.maxDur.Load(); b > maxB {
			maxB = b
		}
		if slab := sh.pops[sid].Load(); slab != nil {
			for r := 0; r < sh.n; r++ {
				row := &slab[r]
				t, w := secs(row.t.Load()), secs(row.wait.Load())
				oe := secs(row.ompElapsed.Load())
				if t == 0 && w == 0 && oe == 0 {
					continue
				}
				rows = append(rows, pop.RankTotals{
					T: t, Useful: t - w, Transfer: secs(row.transfer.Load()),
					OmpElapsed: oe, OmpSingle: secs(row.ompSingle.Load()),
					OmpBusy: secs(row.ompBusy.Load()), MaxTeam: int(row.maxTeam.Load()),
				})
			}
		}
	}
	if sp.Count == 0 && sp.Recvs == 0 && sp.Sends == 0 && sp.Colls == 0 && sp.DeadPeerN == 0 {
		return nil, nil
	}
	sp.TotalSeconds = secs(sumP)
	if tl.ranks > 0 {
		sp.AvgPerProc = sp.TotalSeconds / float64(tl.ranks)
	}
	if minB != 0 {
		sp.MinSeconds = math.Float64frombits(minB - 1)
	}
	if maxB != 0 {
		sp.MaxSeconds = math.Float64frombits(maxB - 1)
	}
	sp.WaitSeconds = secs(waitP)
	sp.LateSenderSeconds = secs(lateP)
	sp.TransferSeconds = secs(transP)
	sp.CollWaitSeconds = secs(collWP)
	sp.DeadWaitSeconds = secs(deadP)
	sp.CollSeconds = secs(collP)
	if rg := tl.rings[sid].Load(); rg != nil {
		sp.Instances = rg.instances.Load()
		sp.ImbSkipped = rg.skipped.Load()
		if samples := rg.samples.Load(); samples > 0 {
			sp.ImbInMean = secs(rg.imbInPico.Load()) / float64(samples)
			sp.ImbMean = secs(rg.imbPico.Load()) / float64(samples)
		}
		if sp.Instances > 0 {
			sp.SpanMean = secs(rg.spanPico.Load()) / float64(sp.Instances)
		}
	}
	return sp, rows
}

// globalScope builds the whole-run POP record: each rank spans from its
// first event to the end of the run, so early finishers read as load
// imbalance — the same accounting the trace-driven tree applies.
func (tl *Tool) globalScope(wall float64, degraded bool) *pop.SectionEfficiency {
	type rankAgg struct {
		wait, transfer, oe, os, ob float64
		maxTeam                    int
	}
	aggs := make([]rankAgg, tl.ranks)
	for i := range tl.shards {
		sh := &tl.shards[i]
		if !sh.ready.Load() {
			continue
		}
		for sid := 0; sid < nSlots; sid++ {
			slab := sh.pops[sid].Load()
			if slab == nil {
				continue
			}
			for r := 0; r < sh.n; r++ {
				row := &slab[r]
				ag := &aggs[sh.lo+r]
				ag.wait += secs(row.wait.Load())
				ag.transfer += secs(row.transfer.Load())
				ag.oe += secs(row.ompElapsed.Load())
				ag.os += secs(row.ompSingle.Load())
				ag.ob += secs(row.ompBusy.Load())
				if mt := int(row.maxTeam.Load()); mt > ag.maxTeam {
					ag.maxTeam = mt
				}
			}
		}
	}
	var rows []pop.RankTotals
	for r := range tl.cur {
		first, ok := loadT(&tl.cur[r].firstT)
		if !ok {
			continue
		}
		last, ok := loadT(&tl.cur[r].lastT)
		if !ok {
			last = first
		}
		t := wall - first
		if t < 0 {
			t = 0
		}
		useful := (last - first) - aggs[r].wait
		if useful < 0 {
			useful = 0
		}
		rows = append(rows, pop.RankTotals{
			T: t, Useful: useful, Transfer: aggs[r].transfer,
			OmpElapsed: aggs[r].oe, OmpSingle: aggs[r].os, OmpBusy: aggs[r].ob,
			MaxTeam: aggs[r].maxTeam,
		})
	}
	if len(rows) == 0 {
		return nil
	}
	g := pop.FromTotals("(run)", tl.ranks, rows, degraded)
	return &g
}

// foldGrid merges the per-shard time grids to the coarsest scale in use and
// emits the interval series and heatmap.
func (tl *Tool) foldGrid(p *Profile) {
	bins := tl.o.TimeBins
	var maxScale int64 = 1
	any := false
	for i := range tl.shards {
		sh := &tl.shards[i]
		if !sh.ready.Load() {
			continue
		}
		any = true
		sh.mu.Lock()
		if sh.grid.scale > maxScale {
			maxScale = sh.grid.scale
		}
		sh.mu.Unlock()
	}
	if !any {
		return
	}
	msgs := make([]int64, bins)
	bytesB := make([]int64, bins)
	waitP := make([]int64, bins)
	nrows := (tl.ranks + tl.rowGroup - 1) / tl.rowGroup
	heat := make([]int64, nrows*bins)
	for i := range tl.shards {
		sh := &tl.shards[i]
		if !sh.ready.Load() {
			continue
		}
		sh.mu.Lock()
		factor := maxScale / sh.grid.scale
		foldInto(msgs, sh.grid.msgs, factor)
		foldInto(bytesB, sh.grid.bytes, factor)
		foldInto(waitP, sh.grid.waitP, factor)
		for r := 0; r < sh.grid.rows; r++ {
			foldInto(heat[(sh.grid.rowLo+r)*bins:(sh.grid.rowLo+r+1)*bins],
				sh.grid.heat[r*bins:(r+1)*bins], factor)
		}
		sh.mu.Unlock()
	}
	width := tl.o.BaseBin * float64(maxScale)
	last := 0
	for i := 0; i < bins; i++ {
		if msgs[i] != 0 || bytesB[i] != 0 || waitP[i] != 0 {
			last = i
		}
	}
	if w := int(p.Wall / width); w > last && w < bins {
		last = w
	}
	for i := 0; i <= last; i++ {
		p.Intervals = append(p.Intervals, Interval{
			From: float64(i) * width, To: float64(i+1) * width,
			Msgs: msgs[i], Bytes: bytesB[i], WaitSeconds: secs(waitP[i]),
		})
	}
	hm := &Heatmap{RowRanks: tl.rowGroup, BinSeconds: width}
	for r := 0; r < nrows; r++ {
		hi := (r+1)*tl.rowGroup - 1
		if hi >= tl.ranks {
			hi = tl.ranks - 1
		}
		row := HeatRow{RankLo: r * tl.rowGroup, RankHi: hi, WaitSeconds: make([]float64, last+1)}
		for i := 0; i <= last; i++ {
			row.WaitSeconds[i] = secs(heat[r*bins+i])
		}
		hm.Rows = append(hm.Rows, row)
	}
	p.Heatmap = hm
}

// foldHists merges the per-shard power-of-two histograms.
func (tl *Tool) foldHists(p *Profile) {
	var lat, size [hBuckets]int64
	var latSum int64
	for i := range tl.shards {
		sh := &tl.shards[i]
		if !sh.ready.Load() {
			continue
		}
		for b := 0; b < hBuckets; b++ {
			lat[b] += sh.latHist[b].Load()
			size[b] += sh.sizeHist[b].Load()
		}
		latSum += sh.latPico.Load()
	}
	p.LatencySum = secs(latSum)
	for b := 0; b < hBuckets; b++ {
		if lat[b] != 0 {
			p.Latency = append(p.Latency, HistBucket{Le: float64(uint64(1)<<uint(b)) * 1e-12, Count: lat[b]})
		}
		if size[b] != 0 {
			p.Sizes = append(p.Sizes, HistBucket{Le: float64(uint64(1) << uint(b)), Count: size[b]})
		}
	}
}

// foldExemplars gathers the per-shard bottom-k sketches and keeps the
// global bottom-k by hash — deterministic whatever the shard interleaving.
func (tl *Tool) foldExemplars(p *Profile, tab *secTable) {
	var all []exemplar
	for i := range tl.shards {
		sh := &tl.shards[i]
		if !sh.ready.Load() {
			continue
		}
		sh.mu.Lock()
		all = append(all, sh.ex.items...)
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].h < all[j].h })
	if len(all) > tl.o.Exemplars {
		all = all[:tl.o.Exemplars]
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].t != all[j].t {
			return all[i].t < all[j].t
		}
		return all[i].rank < all[j].rank
	})
	for _, e := range all {
		label := OtherLabel
		if int(e.sec) < len(tab.labels) {
			label = tab.labels[e.sec]
		}
		p.Exemplars = append(p.Exemplars, Exemplar{
			Rank: int(e.rank), Peer: int(e.peer), Tag: int(e.tag), Bytes: e.bytes,
			Section: label, T: e.t, Wait: e.wait, Latency: e.lat,
		})
	}
}

// dominantCause mirrors the wait-state engine's verdict formula.
func dominantCause(s *SectionProfile) string {
	if s.TotalSeconds <= 0 || s.WaitSeconds <= 0 {
		return causeCompute
	}
	if s.WaitSeconds/s.TotalSeconds < commFrac {
		return causeCompute
	}
	cause, best := causeLateSender, s.LateSenderSeconds
	if s.TransferSeconds > best {
		cause, best = causeTransfer, s.TransferSeconds
	}
	if s.CollWaitSeconds > best {
		cause, best = causeCollectiveWait, s.CollWaitSeconds
	}
	if s.DeadWaitSeconds > best {
		cause = causeDeadPeer
	}
	return cause
}

// diagnose renders the one-line verdict for the binding section, matching
// the trace-driven tree's wording.
func (p *Profile) diagnose(s *SectionProfile) string {
	if p.Degraded {
		return fmt.Sprintf("%s binds at p=%d: degraded run (%d faults, %d dead-peer waits); efficiencies withheld",
			s.Section, p.Ranks, p.Faults, p.DeadWaits)
	}
	line := fmt.Sprintf("%s binds at p=%d", s.Section, p.Ranks)
	if s.Efficiency != nil && s.Efficiency.Factors != nil {
		name, v := s.Efficiency.Factors.Dominant()
		line += fmt.Sprintf(": %s efficiency %.2f", name, v)
	}
	if s.Bound > 0 {
		line += fmt.Sprintf(" (Eq. 6 bound %.3g×)", s.Bound)
	}
	return line
}

// Render prints the profile as a terminal report: the section table,
// binding diagnosis, POP tree and the supporting gauges.
func (p *Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "streaming telemetry profile: p=%d", p.Ranks)
	if p.MaterializedRanks > 0 {
		fmt.Fprintf(&b, " (active %d, materialized %d)", p.ActiveRanks, p.MaterializedRanks)
	}
	fmt.Fprintf(&b, ", wall %.6g s", p.Wall)
	if p.SeqTime > 0 {
		fmt.Fprintf(&b, ", seq %.6g s", p.SeqTime)
	}
	if !p.Finished {
		b.WriteString(" [running]")
	}
	if p.Degraded {
		fmt.Fprintf(&b, " [degraded: %d faults, %d dead-peer waits]", p.Faults, p.DeadWaits)
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "%-22s %9s %11s %12s %11s %10s %10s %10s %s\n",
		"section", "count", "total(s)", "avg/proc(s)", "wait(s)", "imb_in(s)", "imb(s)", "bound B", "dominant")
	for i := range p.Sections {
		s := &p.Sections[i]
		bound := "-"
		if s.Bound > 0 {
			bound = fmt.Sprintf("%.5g", s.Bound)
		}
		fmt.Fprintf(&b, "%-22s %9d %11.5g %12.5g %11.5g %10.4g %10.4g %10s %s\n",
			s.Section, s.Count, s.TotalSeconds, s.AvgPerProc, s.WaitSeconds,
			s.ImbInMean, s.ImbMean, bound, s.Cause)
	}
	if p.Diagnosis != "" {
		fmt.Fprintf(&b, "\ndiagnosis: %s\n", p.Diagnosis)
	}
	if p.Global != nil {
		b.WriteString(renderEfficiency("(run)", p.Global))
	}
	if p.Binding != "" {
		if s := p.Section(p.Binding); s != nil && s.Efficiency != nil {
			b.WriteString(renderEfficiency(p.Binding, s.Efficiency))
		}
	}
	fmt.Fprintf(&b, "\nmessages: %d (%d bytes), latency sum %.6g s\n",
		p.Messages, p.MessageBytes, p.LatencySum)
	if n := len(p.Intervals); n > 0 {
		peak, peakIdx := 0.0, 0
		for i, iv := range p.Intervals {
			if iv.WaitSeconds > peak {
				peak, peakIdx = iv.WaitSeconds, i
			}
		}
		fmt.Fprintf(&b, "intervals: %d bins × %.4g s; peak wait %.5g s in [%.4g, %.4g)\n",
			n, p.Intervals[0].To-p.Intervals[0].From, peak,
			p.Intervals[peakIdx].From, p.Intervals[peakIdx].To)
	}
	if len(p.Exemplars) > 0 {
		b.WriteString("exemplar receives (deterministic sample):\n")
		for _, e := range p.Exemplars {
			fmt.Fprintf(&b, "  t=%.6g rank %d <- %d tag %d %dB wait %.4g s lat %.4g s in %s\n",
				e.T, e.Rank, e.Peer, e.Tag, e.Bytes, e.Wait, e.Latency, e.Section)
		}
	}
	if p.ImbSkipped > 0 {
		fmt.Fprintf(&b, "note: %d instance(s) skipped by the bounded ring; imbalance means cover the rest\n", p.ImbSkipped)
	}
	if p.SectionsDropped > 0 {
		fmt.Fprintf(&b, "note: %d event(s) beyond the %d-section table aggregated into %s\n",
			p.SectionsDropped, MaxSections, OtherLabel)
	}
	return b.String()
}

func renderEfficiency(name string, e *pop.SectionEfficiency) string {
	if e.Factors == nil {
		return fmt.Sprintf("POP [%s]: factors withheld (degraded run)\n", name)
	}
	f := e.Factors
	return fmt.Sprintf("POP [%s]: total %.3f = parallel %.3f (LB %.3f × comm %.3f; transfer %.3f, serialisation %.3f) × thread %.3f (region %.3f × serial %.3f)\n",
		name, f.Total, f.Parallel, f.LoadBalance, f.Comm, f.Transfer, f.Serialisation,
		f.Thread, f.OmpRegion, f.SerialRegion)
}
