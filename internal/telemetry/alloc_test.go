package telemetry

import (
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mpi"
)

// The p2p fast path must stay allocation-free with telemetry attached: the
// tool's whole claim is that it rides along on 10k-rank runs, and one
// alloc per message would dominate the runtime there. Warmup materializes
// the shard slabs and fills the exemplar reservoir; the steady state then
// exercises every hook — sends, receives (grid + threshold-rejected
// exemplars), sections, collectives and thread-team compute regions —
// without a single heap allocation.

func telStep(c *mpi.Comm, payload []byte) error {
	return c.Section("STEP", func() error {
		peer := 1 - c.Rank()
		work := mpi.WorkUnit{Flops: 1000, Bytes: 256}
		if c.Rank() == 0 {
			if err := c.Send(peer, 0, payload); err != nil {
				return err
			}
			buf, _, err := c.Recv(peer, 0)
			if err != nil {
				return err
			}
			mpi.Release(buf)
			c.ComputeParallel(work, 2)
			return nil
		}
		buf, _, err := c.Recv(peer, 0)
		if err != nil {
			return err
		}
		mpi.Release(buf)
		if err := c.Send(peer, 0, payload); err != nil {
			return err
		}
		c.ComputeParallel(work, 2)
		return nil
	})
}

func TestTelemetryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates shadow memory; alloc counts are meaningless")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const warmup, runs = 64, 100
	payload := make([]byte, 1024)
	tl := New(Options{SeqTime: 10})
	cfg := mpi.Config{Ranks: 2, Model: machine.Ideal(2, 1), Seed: 1,
		Tools: []mpi.Tool{tl}, Timeout: time.Minute}
	var avg float64
	_, err := mpi.Run(cfg, func(c *mpi.Comm) error {
		for i := 0; i < warmup; i++ {
			if err := telStep(c, payload); err != nil {
				return err
			}
		}
		if c.Rank() != 0 {
			// Mirror rank 0's AllocsPerRun schedule: one warmup call plus
			// `runs` measured calls.
			for i := 0; i < runs+1; i++ {
				if err := telStep(c, payload); err != nil {
					return err
				}
			}
			return nil
		}
		var stepErr error
		avg = testing.AllocsPerRun(runs, func() {
			if stepErr == nil {
				stepErr = telStep(c, payload)
			}
		})
		return stepErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("steady state with telemetry attached: %v allocs/op, want 0", avg)
	}
	p := tl.Snapshot()
	if s := p.Section("STEP"); s == nil || s.Recvs == 0 || s.Sends == 0 {
		t.Fatal("telemetry recorded no STEP traffic; the test is degenerate")
	}
}
