package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/mpi"
)

const (
	// MaxSections is the fixed section-table capacity. The 65th slot is the
	// "(other)" overflow: events from labels past the cap (and events outside
	// any section) aggregate there instead of growing memory.
	MaxSections = 64
	nSlots      = MaxSections + 1
	otherSlot   = MaxSections
	// OtherLabel names the overflow slot in every rendered view.
	OtherLabel = "(other)"

	// shardBits mirrors the runtime's rank sharding (internal/mpi): 256
	// consecutive world ranks share one accumulator shard, so contention and
	// slab granularity track the runtime's own layout.
	shardBits = 8
	shardSize = 1 << shardBits
	shardMask = shardSize - 1

	// maxStack bounds the tracked section nesting depth per rank; deeper
	// pushes are counted and dropped (LULESH's deepest tree is 5).
	maxStack = 16
	// maxColl bounds the tracked collective nesting depth per rank.
	maxColl = 8
	// ringSlots bounds the in-flight Fig. 3 instances per section; an
	// instance more than ringSlots generations ahead of an unfinished one is
	// skipped (counted, not accumulated).
	ringSlots = 64
	// hBuckets is the power-of-two histogram resolution (index by bit
	// length, so bucket i covers [2^(i-1), 2^i)).
	hBuckets = 64

	// lateEps matches waitstate.DefaultEps so the late-receiver count agrees
	// with the trace-driven classification.
	lateEps = 1e-12
	// commFrac matches the wait-state engine's "communication-bound" knee
	// for the dominant-cause verdict.
	commFrac = 0.2
)

// Options configures a telemetry Tool. The zero value is usable: every
// field has a bounded default.
type Options struct {
	// SeqTime is the sequential baseline Σ_j f_j(n0, 1); when positive every
	// section carries its live Eq. 6 partial speedup bound. Settable later
	// via SetSeqTime (monitors learn the baseline after attach).
	SeqTime float64
	// TimeBins is the fixed resolution of the time-binned interval series
	// and the heatmap's time axis (default 64). The bin width starts at
	// BaseBin and doubles whenever the run outgrows the span — constant
	// memory at any run length.
	TimeBins int
	// HeatRows bounds the rank axis of the wait heatmap (default 256):
	// consecutive ranks fold into ceil(ranks/HeatRows) groups per row.
	HeatRows int
	// Exemplars is the per-shard budget of sampled receive events linking
	// the aggregates back to concrete messages (default 8). The global
	// snapshot keeps the bottom-k by deterministic hash across shards.
	Exemplars int
	// BaseBin is the initial time-bin width in virtual seconds (default
	// 1e-6).
	BaseBin float64
}

func (o Options) withDefaults() Options {
	if o.TimeBins <= 0 {
		o.TimeBins = 64
	}
	if o.HeatRows <= 0 {
		o.HeatRows = 256
	}
	if o.Exemplars <= 0 {
		o.Exemplars = 8
	}
	if o.BaseBin <= 0 {
		o.BaseBin = 1e-6
	}
	return o
}

// ---- picosecond integer time ----------------------------------------------

// Durations accumulate as picosecond int64s: integer addition is
// associative, so concurrent atomic adds from any interleaving produce the
// same sums — the root of the byte-identical-output contract. One pico is
// 1e-12 s, matching waitstate.DefaultEps; rounding error stays below half
// an eps per recorded event.

func pico(s float64) int64 {
	if s <= 0 {
		return 0
	}
	p := s*1e12 + 0.5
	if p >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(p)
}

func secs(p int64) float64 { return float64(p) * 1e-12 }

// ---- atomic float min/max --------------------------------------------------

// Non-negative float64s have order-preserving bit patterns; biasing by one
// keeps 0.0 distinguishable from the empty slot (raw 0), so min/max fold
// lock-free with plain CAS loops and remain order-independent.

func biasBits(v float64) uint64 { return math.Float64bits(v) + 1 }

func atomicMinT(a *atomic.Uint64, v float64) {
	nb := biasBits(v)
	for {
		cur := a.Load()
		if cur != 0 && cur <= nb {
			return
		}
		if a.CompareAndSwap(cur, nb) {
			return
		}
	}
}

func atomicMaxT(a *atomic.Uint64, v float64) {
	nb := biasBits(v)
	for {
		cur := a.Load()
		if cur >= nb {
			return
		}
		if a.CompareAndSwap(cur, nb) {
			return
		}
	}
}

// loadT unpacks a biased min/max cell; ok is false while nothing folded in.
func loadT(a *atomic.Uint64) (v float64, ok bool) {
	b := a.Load()
	if b == 0 {
		return 0, false
	}
	return math.Float64frombits(b - 1), true
}

// exHash is the deterministic exemplar key: a splitmix64 finalizer over the
// (world rank, per-rank receive sequence) pair. Rank program order fixes
// seq, so the global bottom-k set is a pure function of the run — no
// arrival-order dependence, unlike classic reservoir sampling.
func exHash(rank int, seq uint64) uint64 {
	x := uint64(rank)*0x9E3779B97F4A7C15 + seq
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// histBucket indexes a value into the power-of-two histogram.
func histBucket(v uint64) int {
	b := bits.Len64(v)
	if b >= hBuckets {
		return hBuckets - 1
	}
	return b
}

// ---- per-section shard accumulators ---------------------------------------

// secAcc is one (shard, section) profile cell. Every field is a wait-free
// atomic: sums in picoseconds, extrema as biased float bits.
type secAcc struct {
	left         atomic.Int64 // completed enter/leave pairs
	sumPico      atomic.Int64 // Σ inclusive duration
	minDur       atomic.Uint64
	maxDur       atomic.Uint64
	waitPico     atomic.Int64 // classified blocked receive time
	latePico     atomic.Int64
	transferPico atomic.Int64
	collWaitPico atomic.Int64
	deadPico     atomic.Int64
	recvs        atomic.Int64
	lateRecvs    atomic.Int64
	deadN        atomic.Int64
	sends        atomic.Int64
	sendBytes    atomic.Int64
	colls        atomic.Int64
	collPico     atomic.Int64
}

// popRow is one (rank, section) POP-input cell: exactly the per-rank totals
// pop.FromTotals scores. Slabs of 256 rows materialize lazily per (shard,
// section) — a run touching s sections costs s·shards slabs, not
// sections·ranks rows.
type popRow struct {
	t          atomic.Int64
	wait       atomic.Int64
	transfer   atomic.Int64
	ompElapsed atomic.Int64
	ompSingle  atomic.Int64
	ompBusy    atomic.Int64
	maxTeam    atomic.Int32
	_          [4]byte
}

type popSlab [shardSize]popRow

// telShard aggregates up to 256 consecutive world ranks. The profile cells
// and histograms are wait-free; the time grid and exemplar reservoir share
// the shard mutex (amortized over the shard's ranks, never allocating).
type telShard struct {
	ready atomic.Bool
	mu    sync.Mutex

	lo, n int // world-rank span

	secs     []secAcc
	pops     [nSlots]atomic.Pointer[popSlab]
	grid     grid
	ex       exReservoir
	latHist  [hBuckets]atomic.Int64
	sizeHist [hBuckets]atomic.Int64
	latPico  atomic.Int64 // Σ message latency (histogram _sum)
}

//seclint:allocs-ok telemetry shard bring-up: once per shard
func (sh *telShard) materialize(o Options, rowGroup int) {
	if sh.ready.Load() {
		return
	}
	sh.mu.Lock()
	if !sh.ready.Load() {
		sh.secs = make([]secAcc, nSlots)
		rowLo := sh.lo / rowGroup
		rowHi := (sh.lo + sh.n - 1) / rowGroup
		sh.grid.init(o.TimeBins, o.BaseBin, rowLo, rowHi-rowLo+1)
		sh.ex.init(o.Exemplars)
		sh.ready.Store(true)
	}
	sh.mu.Unlock()
}

// pop returns the (section, rank) POP cell, materializing the slab on first
// touch with a lock-free CAS publish.
func (sh *telShard) pop(sid int32, worldRank int) *popRow {
	p := sh.pops[sid].Load()
	if p == nil {
		//seclint:allocs-ok POP slab first touch: once per section per shard, CAS-published
		np := new(popSlab)
		if sh.pops[sid].CompareAndSwap(nil, np) {
			p = np
		} else {
			p = sh.pops[sid].Load()
		}
	}
	return &p[worldRank&shardMask]
}

// recordRecv folds the receive's grid contribution and (rarely) an exemplar
// under one shard-mutex acquisition. The atomic threshold rejects almost
// every event before the lock.
func (sh *telShard) recordRecv(t float64, row int, waitP int64, e exemplar) {
	keep := e.h < sh.ex.thresh.Load()
	sh.mu.Lock()
	sh.grid.add(t, row, 0, 0, waitP)
	if keep {
		sh.ex.insert(e)
	}
	sh.mu.Unlock()
}

// recordSend folds the send's grid contribution.
func (sh *telShard) recordSend(t float64, row int, bytes int64) {
	sh.mu.Lock()
	sh.grid.add(t, row, 1, bytes, 0)
	sh.mu.Unlock()
}

// ---- per-rank cursor -------------------------------------------------------

// stackFrame is one open section instance on a rank.
type stackFrame struct {
	sec     int32
	claimed bool // contributed to the instance ring at enter
	idx     uint32
	enterT  float64
}

// rankCur is the single-writer cursor of one rank: only that rank's
// goroutine touches the stacks and counters, so they are plain fields; the
// first/last-event cells are atomics because live snapshots read them.
type rankCur struct {
	depth     int32
	over      int32 // pushes dropped past maxStack (balanced on leave)
	collDepth int32
	seq       uint64 // per-rank receive counter (exemplar hash input)
	stack     [maxStack]stackFrame
	collT     [maxColl]float64
	instIdx   [nSlots]uint32
	firstT    atomic.Uint64
	lastT     atomic.Uint64
}

// top returns the innermost open section, or the overflow slot outside any.
func (c *rankCur) top() int32 {
	if c.depth == 0 {
		return otherSlot
	}
	return c.stack[c.depth-1].sec
}

// ---- section table ---------------------------------------------------------

// secTable is the copy-on-write label→slot map; readers take one atomic
// pointer load and an allocation-free map read.
type secTable struct {
	ids    map[string]int32
	labels []string
}

// ---- the tool --------------------------------------------------------------

// Tool is the streaming telemetry mpi.Tool: attach one per run via
// Config.Tools. All hooks are safe for concurrent use; Snapshot may be
// called at any time, including while the ranks are still executing.
type Tool struct {
	o        Options
	rowGroup int

	ranks int
	stats *mpi.RuntimeStats

	tab   atomic.Pointer[secTable]
	tabMu sync.Mutex

	rings [nSlots]atomic.Pointer[instRing]

	cur    []rankCur
	shards []telShard

	seqBits      atomic.Uint64
	threads      atomic.Int32
	faults       atomic.Int64
	deadWaits    atomic.Int64
	wallBits     atomic.Uint64
	finished     atomic.Bool
	secDropped   atomic.Int64 // events landed in the overflow slot
	depthDropped atomic.Int64
	promDropped  atomic.Int64 // series suppressed by the exposition cap
}

var (
	_ mpi.Tool            = (*Tool)(nil)
	_ mpi.ComputeObserver = (*Tool)(nil)
	_ mpi.FaultObserver   = (*Tool)(nil)
)

// New builds a telemetry tool for one run.
func New(o Options) *Tool {
	tl := &Tool{o: o.withDefaults()}
	tl.tab.Store(&secTable{ids: map[string]int32{}})
	tl.SetSeqTime(tl.o.SeqTime)
	tl.threads.Store(1)
	return tl
}

// SetSeqTime installs (or replaces) the sequential baseline the Eq. 6
// bounds divide; safe at any time, including mid-run.
func (tl *Tool) SetSeqTime(s float64) { tl.seqBits.Store(math.Float64bits(s)) }

func (tl *Tool) seqTime() float64 { return math.Float64frombits(tl.seqBits.Load()) }

// Init implements mpi.Tool: it sizes the per-rank cursors and shard headers
// for the declared world. Shard slabs stay unmaterialized until a rank in
// their span produces an event, mirroring the runtime's lazy bring-up.
func (tl *Tool) Init(w *mpi.WorldInfo) {
	tl.ranks = w.Size
	tl.stats = w.Stats
	tl.rowGroup = (w.Size + tl.o.HeatRows - 1) / tl.o.HeatRows
	if tl.rowGroup < 1 {
		tl.rowGroup = 1
	}
	tl.cur = make([]rankCur, w.Size)
	nsh := (w.Size + shardSize - 1) / shardSize
	tl.shards = make([]telShard, nsh)
	for i := range tl.shards {
		sh := &tl.shards[i]
		sh.lo = i * shardSize
		sh.n = w.Size - sh.lo
		if sh.n > shardSize {
			sh.n = shardSize
		}
	}
}

// Finalize implements mpi.Tool.
func (tl *Tool) Finalize(r *mpi.Report) {
	tl.wallBits.Store(math.Float64bits(r.WallTime))
	tl.finished.Store(true)
}

// shardFor returns the (materialized) shard of a world rank.
func (tl *Tool) shardFor(worldRank int) *telShard {
	sh := &tl.shards[worldRank>>shardBits]
	if !sh.ready.Load() {
		sh.materialize(tl.o, tl.rowGroup)
	}
	return sh
}

// sid resolves a section label to its slot, registering it on first use.
func (tl *Tool) sid(label string) int32 {
	if id, ok := tl.tab.Load().ids[label]; ok {
		return id
	}
	return tl.addSection(label)
}

//seclint:allocs-ok section interning: first sight of a label, amortized over the run
func (tl *Tool) addSection(label string) int32 {
	tl.tabMu.Lock()
	defer tl.tabMu.Unlock()
	t := tl.tab.Load()
	if id, ok := t.ids[label]; ok {
		return id
	}
	if len(t.labels) >= MaxSections {
		tl.secDropped.Add(1)
		return otherSlot
	}
	id := int32(len(t.labels))
	nt := &secTable{
		ids:    make(map[string]int32, len(t.labels)+1),
		labels: append(append(make([]string, 0, len(t.labels)+1), t.labels...), label),
	}
	for k, v := range t.ids {
		nt.ids[k] = v
	}
	nt.ids[label] = id
	tl.rings[id].CompareAndSwap(nil, newInstRing())
	tl.tab.Store(nt)
	return id
}

// SectionEnter implements mpi.Tool.
//
//seclint:hotpath
func (tl *Tool) SectionEnter(c *mpi.Comm, label string, t float64, _ *mpi.ToolData) {
	wr := c.WorldRank()
	cur := &tl.cur[wr]
	atomicMinT(&cur.firstT, t)
	sid := tl.sid(label)
	if int(cur.depth) >= maxStack {
		cur.over++
		tl.depthDropped.Add(1)
		return
	}
	f := &cur.stack[cur.depth]
	f.sec, f.enterT, f.claimed = sid, t, false
	if rg := tl.rings[sid].Load(); rg != nil {
		idx := cur.instIdx[sid]
		cur.instIdx[sid] = idx + 1
		f.idx = idx
		f.claimed = rg.enter(idx, uint64(c.ID()), c.Size(), t)
	}
	cur.depth++
}

// SectionLeave implements mpi.Tool.
//
//seclint:hotpath
func (tl *Tool) SectionLeave(c *mpi.Comm, label string, t float64, _ *mpi.ToolData) {
	wr := c.WorldRank()
	cur := &tl.cur[wr]
	if cur.over > 0 {
		cur.over--
		return
	}
	if cur.depth == 0 {
		return
	}
	cur.depth--
	f := cur.stack[cur.depth]
	dur := t - f.enterT
	if dur < 0 {
		dur = 0
	}
	sh := tl.shardFor(wr)
	a := &sh.secs[f.sec]
	a.left.Add(1)
	a.sumPico.Add(pico(dur))
	atomicMinT(&a.minDur, dur)
	atomicMaxT(&a.maxDur, dur)
	sh.pop(f.sec, wr).t.Add(pico(dur))
	if f.claimed {
		if rg := tl.rings[f.sec].Load(); rg != nil {
			rg.leave(f.idx, uint64(c.ID()), c.Size(), f.enterT, t)
		}
	}
	atomicMaxT(&cur.lastT, t)
}

// Pcontrol implements mpi.Tool (no-op: phases are IPM's concern).
func (tl *Tool) Pcontrol(*mpi.Comm, int, float64) {}

// MessageSent implements mpi.Tool.
//
//seclint:hotpath
func (tl *Tool) MessageSent(c *mpi.Comm, _, _, bytes int, t float64) {
	wr := c.WorldRank()
	sh := tl.shardFor(wr)
	a := &sh.secs[tl.cur[wr].top()]
	a.sends.Add(1)
	a.sendBytes.Add(int64(bytes))
	sh.sizeHist[histBucket(uint64(bytes))].Add(1)
	sh.recordSend(t, wr/tl.rowGroup, int64(bytes))
}

// MessageRecv implements mpi.Tool: the wait-state split (late-sender vs.
// transfer vs. collective) follows the Scalasca-style classification the
// trace-driven engine applies, evaluated inline from MatchInfo.
//
//seclint:hotpath
func (tl *Tool) MessageRecv(c *mpi.Comm, src, tag, bytes int, t float64, m mpi.MatchInfo) {
	wr := c.WorldRank()
	cur := &tl.cur[wr]
	sid := cur.top()
	sh := tl.shardFor(wr)
	a := &sh.secs[sid]
	wait := t - m.PostT
	if wait < 0 {
		wait = 0
	}
	wp := pico(wait)
	a.recvs.Add(1)
	a.waitPico.Add(wp)
	row := sh.pop(sid, wr)
	row.wait.Add(wp)
	if m.PostT-m.Arrival > lateEps {
		a.lateRecvs.Add(1)
	}
	var lat float64
	if tag < 0 {
		a.collWaitPico.Add(wp)
	} else {
		late := m.SendT - m.PostT
		if late < 0 {
			late = 0
		}
		if late > wait {
			late = wait
		}
		lp := pico(late)
		a.latePico.Add(lp)
		a.transferPico.Add(wp - lp)
		row.transfer.Add(wp - lp)
		lat = t - m.SendT
		if lat < 0 {
			lat = 0
		}
		latP := pico(lat)
		sh.latHist[histBucket(uint64(latP))].Add(1)
		sh.latPico.Add(latP)
	}
	cur.seq++
	sh.recordRecv(t, wr/tl.rowGroup, wp, exemplar{
		h: exHash(wr, cur.seq), rank: int32(wr), peer: int32(c.WorldRankOf(src)),
		tag: int32(tag), sec: sid, bytes: int64(bytes), t: t, wait: wait, lat: lat,
	})
	atomicMaxT(&cur.lastT, t)
}

// CollectiveBegin implements mpi.Tool.
//
//seclint:hotpath
func (tl *Tool) CollectiveBegin(c *mpi.Comm, _ string, t float64) {
	cur := &tl.cur[c.WorldRank()]
	if int(cur.collDepth) < maxColl {
		cur.collT[cur.collDepth] = t
	}
	cur.collDepth++
}

// CollectiveEnd implements mpi.Tool.
//
//seclint:hotpath
func (tl *Tool) CollectiveEnd(c *mpi.Comm, _ string, t float64) {
	wr := c.WorldRank()
	cur := &tl.cur[wr]
	if cur.collDepth == 0 {
		return
	}
	cur.collDepth--
	if int(cur.collDepth) >= maxColl {
		return
	}
	dur := t - cur.collT[cur.collDepth]
	if dur < 0 {
		dur = 0
	}
	sh := tl.shardFor(wr)
	a := &sh.secs[cur.top()]
	a.colls.Add(1)
	a.collPico.Add(pico(dur))
	atomicMaxT(&cur.lastT, t)
}

// ComputeRegion implements mpi.ComputeObserver: thread-team regions feed
// the POP MPI+OpenMP split.
//
//seclint:hotpath
func (tl *Tool) ComputeRegion(c *mpi.Comm, team int, start, end, single float64) {
	wr := c.WorldRank()
	sh := tl.shardFor(wr)
	row := sh.pop(tl.cur[wr].top(), wr)
	el := end - start
	if el < 0 {
		el = 0
	}
	row.ompElapsed.Add(pico(el))
	row.ompSingle.Add(pico(single))
	row.ompBusy.Add(pico(float64(team) * el))
	atomicMaxI32(&row.maxTeam, int32(team))
	atomicMaxI32(&tl.threads, int32(team))
}

// FaultEvent implements mpi.FaultObserver: injected faults flag the profile
// degraded (efficiency factors are withheld, like the trace-driven tree);
// dead-peer waits are charged to the stamped section so the wait split
// stays truthful on failing runs.
func (tl *Tool) FaultEvent(ev fault.Event) {
	if ev.Kind != fault.DeadPeer {
		tl.faults.Add(1)
		return
	}
	tl.deadWaits.Add(1)
	wait := ev.T - ev.PostT
	if wait < 0 {
		wait = 0
	}
	sid := int32(otherSlot)
	if ev.Section != "" {
		sid = tl.sid(ev.Section)
	}
	if ev.Rank < 0 || ev.Rank >= len(tl.cur) {
		return
	}
	sh := tl.shardFor(ev.Rank)
	a := &sh.secs[sid]
	wp := pico(wait)
	a.waitPico.Add(wp)
	a.deadPico.Add(wp)
	a.deadN.Add(1)
	sh.pop(sid, ev.Rank).wait.Add(wp)
	atomicMaxT(&tl.cur[ev.Rank].lastT, ev.T)
}

func atomicMaxI32(a *atomic.Int32, v int32) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
