package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// A Baseline is the committed ledger of findings a repository has chosen
// to live with: the CI gate fails on any finding NOT in the baseline, so
// new debt cannot land silently while old debt is paid down entry by
// entry. Entries match on (analyzer, file, message) but deliberately not
// on line numbers — unrelated edits above a baselined finding must not
// churn the file — and carry a count so two identical findings in one
// file need two entries' worth of budget, not a blanket waiver.

// BaselineEntry matches findings by analyzer, repo-relative slash-separated
// file path, and exact message.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	// Count is how many simultaneous findings this entry absorbs
	// (0 means 1).
	Count int `json:"count,omitempty"`
}

// Baseline is the document committed as seclint.baseline.json.
type Baseline struct {
	// Comment is free-form provenance ("why is this file here").
	Comment  string          `json:"comment,omitempty"`
	Findings []BaselineEntry `json:"findings"`
}

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// ReadBaseline loads a baseline file. A missing file is an empty
// baseline, not an error, so repositories opt in by committing one.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// Filter splits findings into those not covered by the baseline (kept,
// in their original order) and the number suppressed. Each entry absorbs
// at most Count findings; extras past the budget are kept.
func (b *Baseline) Filter(findings []Finding, baseDir string) (kept []Finding, suppressed int) {
	budget := make(map[string]int, len(b.Findings))
	for _, e := range b.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[baselineKey(e.Analyzer, e.File, e.Message)] += n
	}
	kept = findings[:0:0]
	for _, f := range findings {
		key := baselineKey(f.Analyzer, relArtifact(f.Pos.Filename, baseDir), f.Message)
		if budget[key] > 0 {
			budget[key]--
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	return kept, suppressed
}

// NewBaseline builds a baseline document covering exactly the given
// findings, with identical findings coalesced into one counted entry and
// entries sorted for a stable committed file.
func NewBaseline(findings []Finding, baseDir string) *Baseline {
	counts := map[BaselineEntry]int{}
	for _, f := range findings {
		counts[BaselineEntry{
			Analyzer: f.Analyzer,
			File:     relArtifact(f.Pos.Filename, baseDir),
			Message:  f.Message,
		}]++
	}
	b := &Baseline{
		Comment:  "Accepted seclint findings. Entries match on (analyzer, file, message); remove one to re-arm the gate for that finding.",
		Findings: make([]BaselineEntry, 0, len(counts)),
	}
	for e, n := range counts {
		if n > 1 {
			e.Count = n
		}
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// WriteTo renders the baseline as indented JSON with a trailing newline,
// the form committed to the repository.
func (b *Baseline) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}
