package analysis

import (
	"go/ast"
	"go/types"
)

// RevokedErr checks that error results of mpi operations are not silently
// discarded. Since PR 4 the runtime returns mpi.ErrRevoked from any
// operation on a revoked communicator; a dropped error turns a recoverable
// revocation into silent data corruption (the operation did not happen,
// but the caller's control flow continues as if it did).
var RevokedErr = &Analyzer{
	Name: "revokederr",
	Doc: "check that error returns from mpi operations are handled\n\n" +
		"Every mpi operation that can observe a revoked communicator returns\n" +
		"an error (mpi.ErrRevoked among others). Discarding it — a bare call\n" +
		"statement, `_ =`, go/defer of an error-returning op — means the\n" +
		"caller cannot distinguish a completed operation from one the\n" +
		"runtime refused.",
	Run: runRevokedErr,
}

// revokedErrExempt lists mpi entry points whose error result may be
// ignored by design (none today; the hook keeps the policy explicit).
var revokedErrExempt = map[string]bool{}

func runRevokedErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscard(pass, call, "")
				}
			case *ast.GoStmt:
				checkDiscard(pass, n.Call, "go ")
			case *ast.DeferStmt:
				checkDiscard(pass, n.Call, "defer ")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscard reports call when it is an mpi operation returning an error
// used as a statement (the result vanishes).
func checkDiscard(pass *Pass, call *ast.CallExpr, how string) {
	name, sig, ok := mpiCallSig(pass, call)
	if !ok || revokedErrExempt[name] {
		return
	}
	if !lastResultIsError(sig) {
		return
	}
	pass.Reportf(call.Pos(), "%sresult of %s is discarded: the error (e.g. mpi.ErrRevoked) must be handled or propagated", how, name)
}

// checkBlankAssign reports `_ = c.Send(...)` and multi-assigns that blank
// the error position of an mpi call.
func checkBlankAssign(pass *Pass, as *ast.AssignStmt) {
	// Single call on the RHS, possibly multi-value on the LHS.
	if len(as.Rhs) == 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		name, sig, ok := mpiCallSig(pass, call)
		if !ok || revokedErrExempt[name] || !lastResultIsError(sig) {
			return
		}
		last := as.Lhs[len(as.Lhs)-1]
		if isBlank(last) {
			pass.Reportf(last.Pos(), "error result of %s is assigned to _: handle or propagate it (it may be mpi.ErrRevoked)", name)
		}
		return
	}
	// Parallel assign: a, b = f(), g().
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		name, sig, ok := mpiCallSig(pass, call)
		if !ok || revokedErrExempt[name] || !lastResultIsError(sig) {
			continue
		}
		if sig.Results().Len() == 1 && isBlank(as.Lhs[i]) {
			pass.Reportf(as.Lhs[i].Pos(), "error result of %s is assigned to _: handle or propagate it (it may be mpi.ErrRevoked)", name)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// lastResultIsError reports whether sig's final result is the error type.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	t := res.At(res.Len() - 1).Type()
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}
