package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// This file is the golden-file test harness (the analysistest idiom):
// fixture packages live under testdata/src GOPATH-style, and each line that
// should be flagged carries a `// want "regexp"` comment. RunFixture loads
// the fixture, runs one analyzer, and diffs reported diagnostics against
// the expectations — unmatched diagnostics and unsatisfied expectations are
// both failures.

// wantRe matches the quoted expectations of one want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one `// want` pattern at one line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// TB is the subset of testing.TB the harness needs (keeps the package's
// non-test sources free of a testing import).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunFixture runs one analyzer over testdata/src/<pkg> and checks the
// diagnostics against the fixture's want comments.
func RunFixture(t TB, a *Analyzer, pkg string) {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatalf("analysistest: cannot locate testdata")
	}
	srcRoot := filepath.Join(filepath.Dir(thisFile), "testdata", "src")
	dir := filepath.Join(srcRoot, filepath.FromSlash(pkg))

	pkgs, err := Load(LoadConfig{Dir: dir, SrcRoot: srcRoot, Tests: true}, ".")
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", pkg, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("analysistest: load %s: got %d packages, want 1", pkg, len(pkgs))
	}
	p := pkgs[0]
	for _, terr := range p.TypeErrors {
		t.Errorf("analysistest: %s: type error: %v", pkg, terr)
	}

	wants, err := collectWants(p)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	findings, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: run %s on %s: %v", a.Name, pkg, err)
	}

	for _, f := range findings {
		if !claim(wants, f.Pos, f.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s (%s)",
				filepath.Base(f.Pos.Filename), f.Pos.Line, f.Message, a.Name)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

// collectWants extracts the `// want "re"` expectations from the fixture's
// comments, in file/line order.
func collectWants(p *Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(text, -1) {
					var pat string
					if strings.HasPrefix(q, "`") {
						pat = strings.Trim(q, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}

// claim marks the first unmatched expectation on the diagnostic's line that
// matches its message.
func claim(wants []*expectation, pos token.Position, message string) bool {
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.pattern.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
