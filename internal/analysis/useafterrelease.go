package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UseAfterRelease checks the mpi.Release ownership contract: once a payload
// buffer variable has been passed to Release, the function must not read or
// write it (the bytes will be handed to an unrelated future message), and
// must not Release it again. Reassigning the variable reclaims it.
var UseAfterRelease = &Analyzer{
	Name: "useafterrelease",
	Doc: "check that payload buffers are not used after mpi.Release\n\n" +
		"Release hands a buffer back to the runtime's pool; a later read\n" +
		"observes bytes of an unrelated message and a later write corrupts\n" +
		"one. The pass tracks released variables through straight-line code\n" +
		"and branches; a reassignment of the variable clears its state.",
	Run: runUseAfterRelease,
}

// uarState maps a released variable to the position of its Release call.
type uarState map[types.Object]token.Pos

func (s uarState) clone() uarState {
	c := make(uarState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// absorb unions other into s (released on either arm counts as released).
func (s uarState) absorb(other uarState) {
	for k, v := range other {
		s[k] = v
	}
}

type uarChecker struct {
	pass *Pass
}

func runUseAfterRelease(pass *Pass) error {
	c := &uarChecker{pass: pass}
	funcBodies(pass.Files, func(body *ast.BlockStmt) {
		c.block(body, uarState{})
	})
	return nil
}

func (c *uarChecker) block(b *ast.BlockStmt, st uarState) {
	for _, s := range b.List {
		c.stmt(s, st)
	}
}

func (c *uarChecker) stmt(s ast.Stmt, st uarState) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.block(s, st)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.scan(s.Cond, st)
		thenSt := st.clone()
		c.block(s.Body, thenSt)
		elseSt := st.clone()
		if s.Else != nil {
			c.stmt(s.Else, elseSt)
		}
		st.absorb(thenSt)
		st.absorb(elseSt)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.scan(s.Cond, st)
		// Two passes over the body: the first finds releases, the second
		// catches a use in iteration i+1 of a buffer released in iteration
		// i (the classic release-then-loop-back shape).
		it := st.clone()
		c.block(s.Body, it)
		if s.Post != nil {
			c.stmt(s.Post, it)
		}
		c.block(s.Body, it.clone())
		st.absorb(it)
	case *ast.RangeStmt:
		c.scan(s.X, st)
		it := st.clone()
		c.clearRangeVars(s, it)
		c.block(s.Body, it)
		// The range construct reassigns the key/value variables before the
		// next iteration, so a released buffer held in one of them is
		// reclaimed at the loop head.
		c.clearRangeVars(s, it)
		c.block(s.Body, it.clone())
		st.absorb(it)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.scan(s.Tag, st)
		c.clauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.clauses(s.Body, st)
	case *ast.SelectStmt:
		c.clauses(s.Body, st)
	case *ast.AssignStmt:
		// RHS first (evaluation order), then plain LHS identifiers are
		// redefined and cleared; an indexed or field LHS on a released
		// buffer is a write-after-release and counts as a use.
		for _, r := range s.Rhs {
			c.scan(r, st)
		}
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				var obj types.Object
				if o := c.pass.TypesInfo.Defs[id]; o != nil {
					obj = o
				} else if o := c.pass.TypesInfo.Uses[id]; o != nil {
					obj = o
				}
				if obj != nil {
					delete(st, obj)
				}
				continue
			}
			c.scan(l, st)
		}
	case *ast.DeferStmt:
		// `defer mpi.Release(b)` runs at return: not a release now, and
		// later uses of b in the body are fine.
		if name, ok := mpiCall(c.pass, s.Call); ok && name == "Release" {
			return
		}
		c.scan(s.Call, st)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, st)
	default:
		// ExprStmt, ReturnStmt, GoStmt, SendStmt, IncDecStmt, DeclStmt...
		c.scan(s, st)
	}
}

// clearRangeVars drops the range statement's key/value variables from the
// released set — the construct redefines them every iteration.
func (c *uarChecker) clearRangeVars(s *ast.RangeStmt, st uarState) {
	for _, e := range []ast.Expr{s.Key, s.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			delete(st, obj)
		} else if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			delete(st, obj)
		}
	}
}

// clauses walks each case body of a switch/select as an alternative arm
// over a copy of the state, then unions the outcomes.
func (c *uarChecker) clauses(body *ast.BlockStmt, st uarState) {
	for _, cl := range body.List {
		arm := st.clone()
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.scan(e, arm)
			}
			for _, bs := range cl.Body {
				c.stmt(bs, arm)
			}
		case *ast.CommClause:
			if cl.Comm != nil {
				c.stmt(cl.Comm, arm)
			}
			for _, bs := range cl.Body {
				c.stmt(bs, arm)
			}
		}
		st.absorb(arm)
	}
}

// scan walks n for uses of released variables and for Release calls,
// handling the Release argument specially (a re-release gets the
// double-release message, not a generic use report).
func (c *uarChecker) scan(n ast.Node, st uarState) {
	if n == nil {
		return
	}
	inspectShallow(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if name, ok := mpiCall(c.pass, call); ok && name == "Release" {
				c.releaseCall(call, st)
				return false
			}
		}
		if id, ok := m.(*ast.Ident); ok {
			c.useOf(id, st)
		}
		return true
	})
}

// useOf reports id when it refers to a released variable.
func (c *uarChecker) useOf(id *ast.Ident, st uarState) {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	if _, released := st[obj]; released {
		c.pass.Reportf(id.Pos(), "use of %s after mpi.Release: the buffer may already back an unrelated message", id.Name)
		// One report per variable per path is enough.
		delete(st, obj)
	}
}

// releaseCall marks the argument of one mpi.Release call as released,
// reporting a double release when it already is.
func (c *uarChecker) releaseCall(call *ast.CallExpr, st uarState) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	// Unwrap b[:n]-style reslices: releasing a reslice releases the backing
	// array the variable still points at.
	for {
		if sl, ok := arg.(*ast.SliceExpr); ok {
			arg = sl.X
			continue
		}
		break
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		// A released expression the pass cannot name (field, call result):
		// still scan it for uses of other released variables.
		c.scan(arg, st)
		return
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	if _, released := st[obj]; released {
		c.pass.Reportf(call.Pos(), "double mpi.Release of %s: the buffer would be pooled twice and handed to two future messages", id.Name)
		return
	}
	st[obj] = call.Pos()
}
