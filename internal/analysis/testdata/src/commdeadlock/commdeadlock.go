// Fixture for the commdeadlock pass. Tags are chosen so every send/recv
// pair matches program-wide except the two deliberate orphans; the
// exchange cases exercise the CFG ordering and the rank-dependent-branch
// exemption.
package commdeadlock

import "mpi"

// selfRecv blocks forever: nothing can post an envelope from our own rank
// before we receive it.
func selfRecv(c *mpi.Comm) {
	rank := c.Rank()
	_, _ = c.Recv(rank, 1) // want `Recv from the caller's own rank can execute before any Send to self`
}

// selfRecvOK is the legal self-exchange: the eager Send has already
// buffered the envelope on every path reaching the Recv.
func selfRecvOK(c *mpi.Comm) {
	rank := c.Rank()
	_ = c.Send(rank, 1, nil)
	_, _ = c.Recv(rank, 1)
}

// exchangeBad is the classic butterfly deadlock: every rank blocks in Recv
// and no rank ever reaches its Send.
func exchangeBad(c *mpi.Comm) {
	peer := c.Rank() ^ 1
	b, _ := c.Recv(peer, 2) // want `symmetric exchange receives from rank\^1 before sending`
	_ = c.Send(peer, 2, b)
}

// exchangeGood sends first; the partner's Recv is satisfied by the eager
// buffer.
func exchangeGood(c *mpi.Comm) {
	peer := c.Rank() ^ 1
	_ = c.Send(peer, 2, nil)
	_, _ = c.Recv(peer, 2)
}

// shiftBad receives from the up-neighbor before sending to it: the chain
// has no rank that sends first.
func shiftBad(c *mpi.Comm) {
	up := c.Rank() + 1
	_, _ = c.Recv(up, 3) // want `symmetric exchange receives from rank\+1 before sending`
	_ = c.Send(up, 3, nil)
}

// guarded is master/worker: the Recv sits under a rank-dependent branch,
// so the orders legitimately differ across ranks.
func guarded(c *mpi.Comm) {
	peer := c.Rank() ^ 1
	if c.Rank()%2 == 0 {
		_, _ = c.Recv(peer, 4)
		_ = c.Send(peer, 4, nil)
	} else {
		_ = c.Send(peer, 4, nil)
		_, _ = c.Recv(peer, 4)
	}
}

// orphans use tags no other op in the program mentions.
func orphans(c *mpi.Comm) {
	_ = c.Send(0, 99, nil) // want `no Recv in the program uses tag 99`
	_, _ = c.Recv(0, 42)   // want `Recv with tag 42: no Send in the program uses tag 42`
}

// doCollective performs a collective on behalf of its callers.
func doCollective(c *mpi.Comm) error {
	return c.Barrier()
}

// divergent calls a collective-performing helper from under a
// rank-dependent branch: ranks taking the other arm skip the Barrier.
func divergent(c *mpi.Comm) {
	if c.Rank() == 0 {
		_ = doCollective(c) // want `call to commdeadlock.doCollective under a rank-dependent branch performs collectives \(Barrier\)`
	}
}

// convergent calls the same helper unconditionally: every rank reaches the
// Barrier in the same order.
func convergent(c *mpi.Comm) {
	_ = doCollective(c)
}
