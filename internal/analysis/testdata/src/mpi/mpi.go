// Package mpi is a minimal stand-in for the real runtime, carrying just
// enough surface for the fixture packages to type-check. The passes match
// entry points by package name, so this stub exercises them exactly as the
// real package does.
package mpi

import "errors"

// ErrRevoked mirrors the runtime's revoked-communicator sentinel.
var ErrRevoked = errors.New("mpi: communicator revoked")

// Comm is the stub communicator.
type Comm struct{}

func (c *Comm) Rank() int { return 0 }
func (c *Comm) Size() int { return 1 }

func (c *Comm) SectionEnter(label string) {}
func (c *Comm) SectionExit(label string)  {}
func (c *Comm) Section(label string, body func() error) error {
	c.SectionEnter(label)
	defer c.SectionExit(label)
	return body()
}

func (c *Comm) Barrier() error                              { return nil }
func (c *Comm) Bcast(root int, b []byte) ([]byte, error)    { return b, nil }
func (c *Comm) Reduce(root int, v float64) (float64, error) { return v, nil }
func (c *Comm) Allreduce(v float64) (float64, error)        { return v, nil }
func (c *Comm) Agree(flag bool) (bool, error)               { return flag, nil }
func (c *Comm) Gather(root int, b []byte) ([][]byte, error) { return nil, nil }

func (c *Comm) Send(dst, tag int, b []byte) error { return nil }
func (c *Comm) Recv(src, tag int) ([]byte, error) { return nil, nil }

// Release returns a payload buffer to the runtime's pool.
func Release(b []byte) {}
