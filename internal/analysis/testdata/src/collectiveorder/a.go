// Fixture for the collectiveorder pass: collectives under rank-dependent
// control flow versus safely hoisted ones.
package collectiveorder

import "mpi"

// collective directly under a Rank() comparison.
func rankGuarded(c *mpi.Comm) error {
	if c.Rank() == 0 {
		if err := c.Barrier(); err != nil { // want `collective Barrier reached under a rank-dependent branch`
			return err
		}
	}
	return nil
}

// the rank reaches the condition through a local variable.
func derivedVar(c *mpi.Comm, b []byte) {
	r := c.Rank()
	if r == 0 {
		_, _ = c.Bcast(0, b) // want `collective Bcast reached under a rank-dependent branch`
	}
}

// sections are collective over the communicator too.
func sectionGuarded(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.SectionEnter("io") // want `collective SectionEnter reached under a rank-dependent branch`
		c.SectionExit("io")  // want `collective SectionExit reached under a rank-dependent branch`
	}
}

// a loop whose trip count depends on the rank diverges the same way.
func rankLoop(c *mpi.Comm) {
	for i := 0; i < c.Rank(); i++ {
		_ = c.Barrier() // want `collective Barrier reached under a rank-dependent branch`
	}
}

// a rank-dependent switch arm.
func rankSwitch(c *mpi.Comm, v float64) {
	switch c.Rank() {
	case 0:
		_, _ = c.Reduce(0, v) // want `collective Reduce reached under a rank-dependent branch`
	}
}

// collective before the branch, rank-dependent work after: clean.
func hoisted(c *mpi.Comm) error {
	if err := c.Barrier(); err != nil {
		return err
	}
	if c.Rank() == 0 {
		logRoot()
	}
	return nil
}

// point-to-point under a rank branch is the normal pattern: clean.
func pointToPoint(c *mpi.Comm, b []byte) error {
	if c.Rank() == 0 {
		return c.Send(1, 0, b)
	}
	return nil
}

// a branch on non-rank state: clean.
func dataGuarded(c *mpi.Comm, ready bool) error {
	if ready {
		return c.Barrier()
	}
	return nil
}

func logRoot() {}
