// Fixture for the sectionpair pass: balanced, deferred, and broken
// enter/exit shapes, including the loop-nesting and branch-divergence
// cases from the paper's section contract.
package sectionpair

import "mpi"

const secHalo = "halo"

// balanced straight-line pair: clean.
func balanced(c *mpi.Comm) {
	c.SectionEnter(secHalo)
	c.SectionExit(secHalo)
}

// deferred exit covers every return path: clean.
func deferred(c *mpi.Comm, fail bool) error {
	c.SectionEnter(secHalo)
	defer c.SectionExit(secHalo)
	if fail {
		return mpi.ErrRevoked
	}
	return nil
}

// early return escapes the open section.
func earlyReturn(c *mpi.Comm, fail bool) error {
	c.SectionEnter(secHalo) // want `section "halo" entered here is not exited on every path`
	if fail {
		return mpi.ErrRevoked
	}
	c.SectionExit(secHalo)
	return nil
}

// crossed exits break perfect nesting.
func crossed(c *mpi.Comm) {
	c.SectionEnter("a")
	c.SectionEnter("b")
	c.SectionExit("a") // want `SectionExit\("a"\) does not match the innermost open section "b"`
	c.SectionExit("b") // want `SectionExit\("b"\) does not match the innermost open section "a"`
}

// exit with nothing open.
func unmatchedExit(c *mpi.Comm) {
	c.SectionExit(secHalo) // want `SectionExit\("halo"\) without a matching SectionEnter on this path`
}

// only one arm opens a section.
func divergentIf(c *mpi.Comm, cond bool) {
	if cond { // want `branches leave different sections open`
		c.SectionEnter(secHalo)
	}
	c.SectionExit(secHalo)
}

// both arms open the same section before a common exit: clean.
func bothArms(c *mpi.Comm, cond bool) {
	if cond {
		c.SectionEnter(secHalo)
	} else {
		c.SectionEnter(secHalo)
	}
	c.SectionExit(secHalo)
}

// a loop iteration must leave the stack as it found it.
func loopUnbalanced(c *mpi.Comm, n int) {
	for i := 0; i < n; i++ { // want `loop body changes the open-section stack`
		c.SectionEnter(secHalo)
	}
}

// balanced within the iteration: clean.
func loopBalanced(c *mpi.Comm, n int) {
	for i := 0; i < n; i++ {
		c.SectionEnter(secHalo)
		c.SectionExit(secHalo)
	}
}

// proper nesting across two levels: clean.
func nested(c *mpi.Comm) {
	c.SectionEnter("outer")
	c.SectionEnter("inner")
	c.SectionExit("inner")
	c.SectionExit("outer")
}

// a deferred enter can never pair correctly.
func deferEnter(c *mpi.Comm) {
	defer c.SectionEnter(secHalo) // want `deferred SectionEnter is always a nesting error`
}

// the deferred exit closes a different section than the one left open.
func deferMismatch(c *mpi.Comm) {
	c.SectionEnter("a")
	defer c.SectionExit("b") // want `deferred SectionExit\("b"\) does not match the innermost open section "a"`
}

// every switch arm balances: clean.
func switchBalanced(c *mpi.Comm, k int) {
	switch k {
	case 0:
		c.SectionEnter(secHalo)
		c.SectionExit(secHalo)
	default:
	}
}

// one switch arm leaves a section open.
func switchDivergent(c *mpi.Comm, k int) {
	switch k { // want `branches leave different sections open`
	case 0:
		c.SectionEnter(secHalo)
	default:
	}
}

// the Section wrapper nests by construction: clean.
func wrapper(c *mpi.Comm) error {
	return c.Section(secHalo, func() error {
		c.SectionEnter("inner")
		c.SectionExit("inner")
		return nil
	})
}
